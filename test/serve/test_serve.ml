(** Overload-safe serving suite: admission backpressure, deadline
    propagation down to solver budgets, structured load shedding
    (never "no threat"), cooperative cancellation of in-flight batched
    audits, and poison-app quarantine that survives journal recovery.

    Runs as its own executable (like [test/store] and [test/faults])
    because it arms the global solver fault hook, which must never leak
    into the main suite. *)

module Admission = Homeguard_serve.Admission
module Deadline = Homeguard_serve.Deadline
module Shed = Homeguard_serve.Shed
module Quarantine = Homeguard_serve.Quarantine
module Broker = Homeguard_serve.Broker
module Budget = Homeguard_solver.Budget
module Fault = Homeguard_solver.Fault
module Detector = Homeguard_detector.Detector
module Schedule = Homeguard_detector.Schedule
module Home = Homeguard_store.Home
module Install_flow = Homeguard_frontend.Install_flow
module Rule = Homeguard_rules.Rule
module Extract = Homeguard_symexec.Extract

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test name f = Alcotest.test_case name `Quick f
let check_bool m = Alcotest.(check bool) m
let check_int m = Alcotest.(check int) m

let tmp_counter = ref 0

let fresh_dir () =
  incr tmp_counter;
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "hg_serve_%d_%d" (Unix.getpid ()) !tmp_counter)
  in
  ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)));
  dir

let corpus_source name =
  match
    List.find_opt
      (fun e -> e.Homeguard_corpus.App_entry.name = name)
      Homeguard_corpus.Corpus.all
  with
  | Some e -> e.Homeguard_corpus.App_entry.source
  | None -> Alcotest.failf "no corpus app %s" name

(* A manual clock: tests move time by hand, so deadline behaviour is
   deterministic and instantaneous. *)
let manual_clock () =
  let now = ref 0.0 in
  ((fun () -> !now), fun ms -> now := !now +. ms)

(* -- admission ---------------------------------------------------------------- *)

let admission_backpressure =
  test "a full queue refuses with a positive retry hint; release frees it" (fun () ->
      let a = Admission.create ~max_per_home:2 ~max_global:8 ~est_service_ms:40 () in
      let t1 =
        match Admission.try_admit a ~home:"h" Admission.Interactive with
        | Ok t -> t
        | Error _ -> Alcotest.fail "first admit refused"
      in
      let _t2 =
        match Admission.try_admit a ~home:"h" Admission.Interactive with
        | Ok t -> t
        | Error _ -> Alcotest.fail "second admit refused"
      in
      (match Admission.try_admit a ~home:"h" Admission.Interactive with
      | Ok _ -> Alcotest.fail "third admit should hit the per-home bound"
      | Error retry_after_ms ->
        check_bool "positive retry hint" true (retry_after_ms > 0));
      (* a different home still has room: the bound is per-home *)
      (match Admission.try_admit a ~home:"other" Admission.Interactive with
      | Ok t -> Admission.release a t
      | Error _ -> Alcotest.fail "other home should be admitted");
      Admission.release a t1;
      (match Admission.try_admit a ~home:"h" Admission.Interactive with
      | Ok _ -> ()
      | Error _ -> Alcotest.fail "release should free a slot");
      (* double release is idempotent *)
      Admission.release a t1;
      Admission.release a t1;
      check_int "in flight" 2 (Admission.in_flight a))

let admission_interactive_reserve =
  test "background work cannot occupy the interactive reserve" (fun () ->
      let a =
        Admission.create ~max_per_home:10 ~max_global:4 ~interactive_reserve:2 ()
      in
      let admit p = Admission.try_admit a ~home:"h" p in
      check_bool "bg 1" true (Result.is_ok (admit Admission.Background));
      check_bool "bg 2" true (Result.is_ok (admit Admission.Background));
      check_bool "bg 3 refused at max_global - reserve" true
        (Result.is_error (admit Admission.Background));
      check_bool "interactive still admitted" true
        (Result.is_ok (admit Admission.Interactive));
      check_bool "interactive up to max_global" true
        (Result.is_ok (admit Admission.Interactive));
      check_bool "then even interactive is refused" true
        (Result.is_error (admit Admission.Interactive)))

(* -- deadlines ---------------------------------------------------------------- *)

let deadline_budget_derivation =
  test "remaining deadline becomes the budget timeout, clamped by the base" (fun () ->
      let clock, advance = manual_clock () in
      let dl = Deadline.make ~clock ~timeout_ms:500.0 () in
      let base = { Budget.default_spec with Budget.timeout_ms = Some 10_000.0 } in
      (match (Deadline.budget_spec ~base dl).Budget.timeout_ms with
      | Some t -> check_bool "full allowance" true (t = 500.0)
      | None -> Alcotest.fail "expected a timeout");
      advance 400.0;
      (match (Deadline.budget_spec ~base dl).Budget.timeout_ms with
      | Some t -> check_bool "queueing ate 400 ms" true (t = 100.0)
      | None -> Alcotest.fail "expected a timeout");
      (* a base tighter than the deadline wins: propagation only ever
         shrinks budgets *)
      let tight = { Budget.default_spec with Budget.timeout_ms = Some 50.0 } in
      (match (Deadline.budget_spec ~base:tight dl).Budget.timeout_ms with
      | Some t -> check_bool "base caps the derived timeout" true (t = 50.0)
      | None -> Alcotest.fail "expected a timeout");
      check_bool "not yet expired" false (Deadline.expired dl);
      advance 100.0;
      check_bool "expired exactly at the deadline" true (Deadline.expired dl);
      check_bool "remaining never negative" true (Deadline.remaining_ms dl = 0.0);
      (match (Deadline.budget_spec ~base dl).Budget.timeout_ms with
      | Some t -> check_bool "expired allowance is zero" true (t = 0.0)
      | None -> Alcotest.fail "expected a timeout");
      check_bool "cancel probe fires" true (Deadline.cancel dl ());
      (* unbounded deadlines change nothing *)
      let unb = Deadline.make ~clock () in
      check_bool "unbounded" true (Deadline.unbounded unb);
      check_bool "base passes through" true (Deadline.budget_spec ~base unb = base))

(* -- cancellation ------------------------------------------------------------- *)

let map_batches_cancellation =
  test "map_batches stops claiming batches once cancel fires" (fun () ->
      let items = Array.init 64 Fun.id in
      let seen = ref 0 in
      let cancel () = !seen >= 8 in
      let results =
        Schedule.map_batches ~cancel ~jobs:1
          (fun batch ->
            seen := !seen + Array.length batch;
            Array.length batch)
          items
      in
      let ran = Array.to_list results |> List.filter_map Fun.id in
      let skipped = Array.to_list results |> List.filter (( = ) None) |> List.length in
      check_bool "some batches ran" true (ran <> []);
      check_bool "some batches were skipped" true (skipped > 0);
      check_bool "work stopped early" true (!seen < 64))

let audit_cancellation_counts_shed =
  test "a cancelled batched audit reports shed pairs, never a clean bill" (fun () ->
      let apps =
        List.map
          (fun n -> (Extract.extract_source ~name:n (corpus_source n)).Extract.app)
          [ "AtticFanController"; "BathroomFanTimer"; "SmokeVent"; "AutoHumidify" ]
      in
      let ctx = Detector.create Detector.offline_config in
      let pairs = Detector.candidate_pairs ctx apps in
      check_bool "plan is non-trivial" true (Array.length pairs >= 2);
      (* cancel immediately: everything is shed *)
      let all_shed =
        Detector.audit_pairs ~cancel:(fun () -> true) ctx pairs
      in
      check_int "no pair audited" (Array.length pairs) all_shed.Detector.shed;
      check_bool "no threats claimed" true (all_shed.Detector.threats = []);
      (* cancel after the first pair: partial results plus a shed count *)
      let count = ref 0 in
      let ctx2 = Detector.create Detector.offline_config in
      let partial =
        Detector.audit_pairs
          ~cancel:(fun () ->
            incr count;
            !count > 1)
          ctx2 pairs
      in
      check_bool "remainder shed" true (partial.Detector.shed > 0);
      check_bool "shed + audited covers the plan" true
        (partial.Detector.shed <= Array.length pairs))

(* -- quarantine policy -------------------------------------------------------- *)

let quarantine_policy =
  test "K consecutive failures trip quarantine; successes reset the streak"
    (fun () ->
      let q = Quarantine.create ~threshold:3 () in
      check_bool "1st" true (Quarantine.note_failure q ~app:"P" ~reason:"r1" = `Counted 1);
      check_bool "2nd" true (Quarantine.note_failure q ~app:"P" ~reason:"r2" = `Counted 2);
      (* a success in between resets the streak *)
      Quarantine.note_success q "P";
      check_bool "reset" true (Quarantine.note_failure q ~app:"P" ~reason:"r3" = `Counted 1);
      check_bool "2nd again" true
        (Quarantine.note_failure q ~app:"P" ~reason:"r4" = `Counted 2);
      (match Quarantine.note_failure q ~app:"P" ~reason:"crash" with
      | `Quarantined why -> check_bool "reason mentions the last failure" true
          (String.length why > 0)
      | `Counted _ -> Alcotest.fail "3rd consecutive failure must quarantine");
      check_bool "sticky" true
        (match Quarantine.note_failure q ~app:"P" ~reason:"again" with
        | `Quarantined _ -> true
        | `Counted _ -> false);
      check_bool "is_quarantined" true (Quarantine.is_quarantined q "P");
      check_bool "clear lifts" true (Quarantine.clear q "P");
      check_bool "cleared" false (Quarantine.is_quarantined q "P");
      check_int "history forgotten" 0 (Quarantine.failure_count q "P"))

(* -- broker end-to-end -------------------------------------------------------- *)

let broker_backpressure_and_shed =
  test "queued jobs hit the bound with busy; expired jobs drain as Degraded"
    (fun () ->
      let dir = fresh_dir () in
      let home, _ = Home.open_ ~fsync:false ~dir () in
      let clock, advance = manual_clock () in
      let config =
        {
          Broker.default_config with
          Broker.max_queue = 2;
          Broker.deadline_ms = Some 100.0;
          Broker.clock = clock;
        }
      in
      let broker = Broker.create ~config () in
      Broker.add_home broker ~id:"home" home;
      let j1 =
        match Broker.submit_audit broker ~home:"home" () with
        | Ok id -> id
        | Error _ -> Alcotest.fail "first submit refused"
      in
      (match Broker.submit_audit broker ~home:"home" () with
      | Ok _ -> ()
      | Error _ -> Alcotest.fail "second submit refused");
      (* the per-home bound is reached: explicit backpressure *)
      (match Broker.submit_audit broker ~home:"home" () with
      | Ok _ -> Alcotest.fail "third submit should be refused"
      | Error retry_after_ms -> check_bool "retry hint" true (retry_after_ms > 0));
      (* let both deadlines lapse while the jobs sit queued *)
      advance 200.0;
      let outcomes = Broker.drain broker in
      check_int "both jobs replied to" 2 (List.length outcomes);
      List.iter
        (function
          | Broker.Shed_job { reason = Shed.Deadline_expired; _ } -> ()
          | Broker.Shed_job { reason; _ } ->
            Alcotest.failf "wrong shed reason: %s" (Shed.describe_reason reason)
          | Broker.Audited _ -> Alcotest.fail "expired job must shed, not audit")
        outcomes;
      check_bool "first job was j1" true
        (match outcomes with Broker.Shed_job { id; _ } :: _ -> id = j1 | _ -> false);
      (* tickets were released: the queue accepts work again *)
      (match Broker.submit_audit broker ~home:"home" () with
      | Ok _ -> ()
      | Error _ -> Alcotest.fail "queue should be free after drain");
      ignore (Broker.drain broker);
      Home.close home)

let broker_quarantine_end_to_end =
  test "K injected crashes quarantine the app, exclude it, survive recovery"
    (fun () ->
      let dir = fresh_dir () in
      let src_attic = corpus_source "AtticFanController" in
      let src_fan = corpus_source "BathroomFanTimer" in
      let home, _ = Home.open_ ~fsync:false ~dir () in
      let config = { Broker.default_config with Broker.quarantine_after = 2 } in
      let broker = Broker.create ~config () in
      Broker.add_home broker ~id:"home" home;
      (* a healthy install first *)
      (match Broker.install broker ~home:"home" ~name:"AtticFanController" ~source:src_attic () with
      | Broker.Proposed _ -> Home.decide home Install_flow.Keep
      | _ -> Alcotest.fail "healthy install refused");
      (* arm crash injection on every solve: the proposed app's pair
         detections crash, and every crashed pair counts one failure
         against both of its apps — a single install can trip the
         threshold when several pairs crash *)
      Fault.arm ~rate_per_thousand:1000 Fault.Raise;
      let saw_failures = ref false in
      (try
         for _ = 1 to 5 do
           match Broker.install broker ~home:"home" ~name:"BathroomFanTimer" ~source:src_fan () with
           | Broker.Proposed { report; _ } ->
             if report.Install_flow.audit.Detector.failures <> [] then
               saw_failures := true;
             Home.decide home Install_flow.Reject
           | Broker.Quarantined_app _ -> raise Exit
           | Broker.Busy _ | Broker.Install_failed _ ->
             Alcotest.fail "unexpected reply under crash injection"
         done
       with Exit -> ());
      Fault.disarm ();
      check_bool "crashed pairs were reported, not hidden" true !saw_failures;
      check_bool "quarantined after K crashed audits" true
        (Home.is_quarantined home "BathroomFanTimer");
      (* a quarantined app is refused before extraction *)
      (match Broker.install broker ~home:"home" ~name:"BathroomFanTimer" ~source:src_fan () with
      | Broker.Quarantined_app { app; _ } ->
        check_bool "refused by name" true (app = "BathroomFanTimer")
      | _ -> Alcotest.fail "quarantined app must be refused");
      Home.close home;
      (* recovery: the journaled quarantine survives a restart *)
      let home2, _ = Home.open_ ~fsync:false ~dir () in
      check_bool "quarantine recovered from the journal" true
        (Home.is_quarantined home2 "BathroomFanTimer");
      let broker2 = Broker.create ~config () in
      Broker.add_home broker2 ~id:"home" home2;
      (match Broker.install broker2 ~home:"home" ~name:"BathroomFanTimer" ~source:src_fan () with
      | Broker.Quarantined_app _ -> ()
      | _ -> Alcotest.fail "recovered broker must still refuse");
      (* compaction re-emits the quarantine into the snapshot *)
      Home.compact home2;
      Home.close home2;
      let home3, _ = Home.open_ ~fsync:false ~dir () in
      check_bool "quarantine survives compaction" true
        (Home.is_quarantined home3 "BathroomFanTimer");
      (* clearing is journaled too *)
      check_bool "clear" true (Home.unquarantine home3 "BathroomFanTimer");
      Home.close home3;
      let home4, _ = Home.open_ ~fsync:false ~dir () in
      check_bool "clearance survives restart" false
        (Home.is_quarantined home4 "BathroomFanTimer");
      Home.close home4)

let quarantined_app_excluded_from_audit =
  test "a quarantined app's pairs vanish from batch audits" (fun () ->
      Fault.disarm ();
      let dir = fresh_dir () in
      let home, _ = Home.open_ ~fsync:false ~dir () in
      let install name =
        let src = corpus_source name in
        ignore (Home.propose home (Extract.extract_source ~name src).Extract.app);
        Home.decide home Install_flow.Keep
      in
      install "AtticFanController";
      install "BathroomFanTimer";
      let before = Home.audit home in
      check_bool "the pair conflicts before quarantine" true
        (before.Detector.threats <> []);
      Home.quarantine home ~app:"BathroomFanTimer" ~reason:"test";
      let after = Home.audit home in
      check_bool "its threats vanish with it" true (after.Detector.threats = []);
      check_bool "still installed" true
        (List.exists
           (fun (a : Rule.smartapp) -> a.Rule.name = "BathroomFanTimer")
           (Home.installed_apps home));
      (* audit_text carries the quarantine line: the recovery invariant
         covers it *)
      check_bool "audit_text mentions quarantine" true
        (contains ~sub:"quarantined: [BathroomFanTimer" (Home.audit_text home));
      Home.close home)

(* -- replay determinism -------------------------------------------------------- *)

let replay_determinism =
  test "seeded workloads recover byte-identically, even after damage" (fun () ->
      Fault.disarm ();
      let rng = Random.State.make [| 0xd3a1; 7 |] in
      let names =
        [ "AtticFanController"; "BathroomFanTimer"; "BonVoyage"; "SleepyTime" ]
      in
      let pick () = List.nth names (Random.State.int rng (List.length names)) in
      let dir = fresh_dir () in
      let home, _ = Home.open_ ~fsync:false ~dir () in
      let seq = ref 0 in
      for _ = 1 to 40 do
        match Random.State.int rng 4 with
        | 0 ->
          let name = pick () in
          if not (Home.is_quarantined home name) then
            ignore
              (Home.install_app home
                 (Extract.extract_source ~name (corpus_source name)).Extract.app)
        | 1 ->
          incr seq;
          ignore
            (Home.deliver home ~seq:!seq
               (Printf.sprintf "http://my.com/appname:%s/threshold1:%d/" (pick ())
                  (Random.State.int rng 100)))
        | 2 -> Home.quarantine home ~app:(pick ()) ~reason:"replay-test"
        | _ -> ignore (Home.unquarantine home (pick ()))
      done;
      Home.close home;
      let recover_text () =
        let h, _ = Home.open_ ~fsync:false ~dir () in
        let txt = Home.state_text h in
        Home.close h;
        txt
      in
      let t1 = recover_text () in
      check_bool "recovered something" true (String.length t1 > 0);
      check_bool "two clean recoveries are byte-identical" true
        (t1 = recover_text ());
      (* flip one journal byte mid-file: the repairing recovery
         quarantines or truncates, and the repaired journal must again
         replay deterministically *)
      let jpath = Filename.concat dir "journal" in
      let ic = open_in_bin jpath in
      let raw = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let b = Bytes.of_string raw in
      let mid = Bytes.length b / 2 in
      Bytes.set b mid (Char.chr (Char.code (Bytes.get b mid) lxor 0x10));
      let oc = open_out_bin jpath in
      output_bytes oc b;
      close_out oc;
      let d1 = recover_text () in
      check_bool "two post-damage recoveries are byte-identical" true
        (d1 = recover_text ()))

let admission_retry_hint_scales =
  test "refusal hints scale with the depth of the queue ahead" (fun () ->
      let hint bound =
        let a =
          Admission.create ~max_per_home:bound ~max_global:64 ~est_service_ms:40 ()
        in
        for _ = 1 to bound do
          match Admission.try_admit a ~home:"h" Admission.Interactive with
          | Ok _ -> ()
          | Error _ -> Alcotest.fail "should admit up to the bound"
        done;
        match Admission.try_admit a ~home:"h" Admission.Interactive with
        | Error ms -> ms
        | Ok _ -> Alcotest.fail "bound should refuse"
      in
      check_int "per-home depth 2" 80 (hint 2);
      check_int "per-home depth 4 pushes further out" 160 (hint 4);
      (* global refusals scale with the global backlog, not a constant *)
      let a =
        Admission.create ~max_per_home:8 ~max_global:4 ~interactive_reserve:2
          ~est_service_ms:50 ()
      in
      for i = 1 to 4 do
        match
          Admission.try_admit a ~home:(string_of_int i) Admission.Interactive
        with
        | Ok _ -> ()
        | Error _ -> Alcotest.fail "distinct homes should fill the global pool"
      done;
      match Admission.try_admit a ~home:"late" Admission.Interactive with
      | Error ms -> check_int "global depth 4" 200 ms
      | Ok _ -> Alcotest.fail "global bound should refuse")

let () =
  Alcotest.run "homeguard-serve"
    [
      ( "admission",
        [
          admission_backpressure;
          admission_interactive_reserve;
          admission_retry_hint_scales;
        ] );
      ("replay", [ replay_determinism ]);
      ("deadline", [ deadline_budget_derivation ]);
      ("cancel", [ map_batches_cancellation; audit_cancellation_counts_shed ]);
      ("quarantine-policy", [ quarantine_policy ]);
      ( "broker",
        [
          broker_backpressure_and_shed;
          broker_quarantine_end_to_end;
          quarantined_app_excluded_from_audit;
        ] );
    ]
