
definition(name: "AtticFanController", description: "Exhaust the attic when it bakes")

preferences {
  section("Attic temperature...") {
    input "atticTemp", "capability.temperatureMeasurement", title: "Where?"
  }
  section("Run this fan...") {
    input "atticFan", "capability.switch", title: "Attic fan"
  }
}

def installed() {
  subscribe(atticTemp, "temperature", temperatureHandler)
}

def updated() {
  unsubscribe()
  subscribe(atticTemp, "temperature", temperatureHandler)
}

def temperatureHandler(evt) {
  def t = evt.integerValue
  if (t > 100) {
    atticFan.on()
  } else {
    if (t < 85) {
      atticFan.off()
    }
  }
}
