
definition(name: "BathroomFanTimer", description: "Run the bathroom fan for a while after the light goes off")

preferences {
  section("When this light turns off...") {
    input "bathLight", "capability.switch", title: "Bathroom light"
  }
  section("Run this fan...") {
    input "bathFan", "capability.switch", title: "Bathroom fan"
  }
}

def installed() {
  subscribe(bathLight, "switch.off", lightOffHandler)
}

def updated() {
  unsubscribe()
  subscribe(bathLight, "switch.off", lightOffHandler)
}

def lightOffHandler(evt) {
  bathFan.on()
  runIn(600, fanOff)
}

def fanOff() {
  bathFan.off()
}
