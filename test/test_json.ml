(** JSON printer/parser and rule-file serialization tests. *)

module Json = Homeguard_rules.Json
module Rule_json = Homeguard_rules.Rule_json
module Rule = Homeguard_rules.Rule
open Helpers

let json = Alcotest.testable (fun fmt j -> Format.fprintf fmt "%s" (Json.to_string j)) ( = )

let print_basic =
  test "printing basics" (fun () ->
      check_string "obj" {|{"a":1,"b":[true,null],"c":"x"}|}
        (Json.to_string
           (Json.Obj
              [ ("a", Json.Int 1); ("b", Json.List [ Json.Bool true; Json.Null ]);
                ("c", Json.String "x");
              ])))

let escape_string =
  test "string escaping" (fun () ->
      check_string "escaped" {|"a\"b\\c\nd"|} (Json.to_string (Json.String "a\"b\\c\nd")))

let parse_basic =
  test "parsing basics" (fun () ->
      Alcotest.check json "roundtrip"
        (Json.Obj [ ("k", Json.List [ Json.Int 1; Json.Float 2.5; Json.String "s" ]) ])
        (Json.of_string {| {"k": [1, 2.5, "s"]} |}))

let parse_negative =
  test "negative numbers" (fun () ->
      Alcotest.check json "neg" (Json.Int (-42)) (Json.of_string "-42"))

let parse_errors =
  test "malformed input raises" (fun () ->
      List.iter
        (fun src ->
          match Json.of_string src with
          | exception Json.Parse_error _ -> ()
          | _ -> Alcotest.failf "expected parse error on %s" src)
        [ "{"; "[1,"; "tru"; "\"unterminated"; "{\"a\" 1}"; "1 2" ])

let gen_json =
  let open QCheck2.Gen in
  sized
    (fix (fun self n ->
         let leaf =
           oneof
             [
               return Json.Null;
               map (fun b -> Json.Bool b) bool;
               map (fun i -> Json.Int i) (int_range (-1000) 1000);
               map (fun s -> Json.String s) (string_size ~gen:(char_range 'a' 'z') (int_bound 8));
             ]
         in
         if n <= 0 then leaf
         else
           oneof
             [
               leaf;
               map (fun l -> Json.List l) (list_size (int_bound 3) (self (n / 2)));
               map
                 (fun kvs ->
                   (* keys must be distinct for roundtrip equality *)
                   Json.Obj (List.mapi (fun i (k, v) -> (Printf.sprintf "%s%d" k i, v)) kvs))
                 (list_size (int_bound 3)
                    (pair (string_size ~gen:(char_range 'a' 'z') (int_range 1 5)) (self (n / 2))));
             ]))

let roundtrip_prop =
  qtest ~count:300 "JSON print/parse round-trip" gen_json (fun j ->
      Json.of_string (Json.to_string j) = j)

let rule_file_roundtrip =
  test "rule files round-trip for every corpus app" (fun () ->
      List.iter
        (fun (e : Homeguard_corpus.App_entry.t) ->
          let app = extract ~name:e.Homeguard_corpus.App_entry.name e.Homeguard_corpus.App_entry.source in
          let s = Rule_json.to_string app in
          let app' = Rule_json.of_string s in
          if app' <> app then Alcotest.failf "roundtrip failed for %s" app.Rule.name)
        Homeguard_corpus.Corpus.all)

let rule_file_string_fixpoint =
  test "serialized rule files are a fixpoint of parse/print" (fun () ->
      (* the journal detects duplicate installs by comparing serialized
         rule files byte-for-byte, so to_string(of_string s) = s must
         hold for every serialized corpus app *)
      List.iter
        (fun (e : Homeguard_corpus.App_entry.t) ->
          let app =
            extract ~name:e.Homeguard_corpus.App_entry.name e.Homeguard_corpus.App_entry.source
          in
          let s = Rule_json.to_string app in
          let s' = Rule_json.to_string (Rule_json.of_string s) in
          if s' <> s then Alcotest.failf "string fixpoint failed for %s" app.Rule.name)
        Homeguard_corpus.Corpus.all)

let rule_file_size_reasonable =
  test "rule files are KB-scale (paper: ~6.2KB per app)" (fun () ->
      let sizes =
        List.map
          (fun (e : Homeguard_corpus.App_entry.t) ->
            String.length
              (Rule_json.to_string
                 (extract ~name:e.Homeguard_corpus.App_entry.name
                    e.Homeguard_corpus.App_entry.source)))
          Homeguard_corpus.Corpus.rule_defining
      in
      let avg = List.fold_left ( + ) 0 sizes / List.length sizes in
      check_bool "average between 200B and 20KB" true (avg > 200 && avg < 20_000))

let decode_error =
  test "rule decoding rejects foreign JSON" (fun () ->
      match Rule_json.of_string {|{"not": "a rule file"}|} with
      | exception Rule_json.Decode_error _ -> ()
      | _ -> Alcotest.fail "expected Decode_error")

let tests =
  [
    print_basic;
    escape_string;
    parse_basic;
    parse_negative;
    parse_errors;
    roundtrip_prop;
    rule_file_roundtrip;
    rule_file_string_fixpoint;
    rule_file_size_reasonable;
    decode_error;
  ]

(* appended: randomized rule-file round-trips beyond the corpus *)
module Formula = Homeguard_solver.Formula
module Term = Homeguard_solver.Term

let gen_term =
  let open QCheck2.Gen in
  sized
    (fix (fun self n ->
         let leaf =
           oneof
             [
               map (fun i -> Term.Int i) (int_range (-500) 500);
               map (fun s -> Term.Str s) (oneofl [ "on"; "off"; "Home"; "rainy" ]);
               map (fun v -> Term.Var v) (oneofl [ "a.b"; "x"; "location.mode" ]);
             ]
         in
         if n <= 0 then leaf
         else
           let sub = self (n / 2) in
           oneof
             [
               leaf;
               map2 (fun a b -> Term.Add (a, b)) sub sub;
               map2 (fun a b -> Term.Sub (a, b)) sub sub;
               map (fun a -> Term.Neg a) sub;
             ]))

let gen_formula_small =
  let open QCheck2.Gen in
  let atom =
    let* cmp = oneofl Formula.[ Eq; Neq; Lt; Le; Gt; Ge ] in
    let* a = gen_term and* b = gen_term in
    return (Formula.Atom (cmp, a, b))
  in
  let rec gen n =
    if n <= 0 then atom
    else
      oneof
        [
          atom;
          return Formula.True;
          map (fun fs -> Formula.And fs) (list_size (int_range 1 3) (gen (n / 2)));
          map (fun fs -> Formula.Or fs) (list_size (int_range 1 3) (gen (n / 2)));
          map (fun f -> Formula.Not f) (gen (n / 2));
        ]
  in
  sized (fun n -> gen (min n 6))

let gen_rule =
  let open QCheck2.Gen in
  let* trig_kind = bool in
  let* constraint_ = gen_formula_small in
  let* predicate = gen_formula_small in
  let* data = list_size (int_bound 3) (pair (oneofl [ "t"; "u"; "v" ]) gen_term) in
  let* when_ = int_bound 900 in
  let* cmd = oneofl [ "on"; "off"; "lock"; "setLevel" ] in
  let* params = list_size (int_bound 2) gen_term in
  let trigger =
    if trig_kind then
      Rule.Event { subject = Rule.Device "dev1"; attribute = "switch"; constraint_ }
    else Rule.Scheduled { at_minutes = Some 420; period_seconds = None }
  in
  return
    {
      Rule.app_name = "Gen";
      rule_id = "Gen#1";
      trigger;
      condition = { Rule.data; predicate };
      actions =
        [
          { Rule.target = Rule.Act_device "dev1"; command = cmd; params; when_; period = 0;
            action_data = [] };
        ];
    }

let random_rule_roundtrip =
  Helpers.qtest ~count:300 "random rules survive JSON round-trips" gen_rule (fun r ->
      Rule_json.rule_of_json (Rule_json.rule_to_json r) = r)

let random_rule_interpreter_total =
  Helpers.qtest ~count:300 "the interpreter renders random rules without raising" gen_rule
    (fun r ->
      String.length (Homeguard_frontend.Rule_interpreter.describe r) > 0)

let tests = tests @ [ random_rule_roundtrip; random_rule_interpreter_total ]
