(** Handling subsystem tests: §VII decisions, the compiled mediator, and
    the E2 exploitation scenarios replayed under runtime mediation. The
    acceptance bar: the AR flap, the CT covert action, and the LT loop
    must all disappear under the per-category default decisions, and
    mediation off must be byte-identical to an unmediated engine. *)

module Policy = Homeguard_handling.Policy
module Mediator = Homeguard_handling.Mediator
module Detector = Homeguard_detector.Detector
module Threat = Homeguard_detector.Threat
module Engine = Homeguard_sim.Engine
module Env_model = Homeguard_sim.Env_model
module Trace = Homeguard_sim.Trace
module Scenario = Homeguard_sim.Scenario
module Device = Homeguard_st.Device
module Env = Homeguard_st.Env_feature
module Install_flow = Homeguard_frontend.Install_flow
module Rule = Homeguard_rules.Rule
open Helpers

let detect_threats apps = Detector.detect_all (Detector.create Detector.offline_config) apps

let default_mediator ?defer_delay_ms ?max_deferrals threats =
  Mediator.create ?defer_delay_ms ?max_deferrals (Policy.create ()) threats

(* -- policy: defaults and stable ids ---------------------------------------- *)

let defaults_per_category =
  test "§VII defaults: AR prioritizes rule1, DC confirms, LT gets two hops" (fun () ->
      let threats = detect_threats [ extract_corpus "ComfortTV"; extract_corpus "ColdDefender" ] in
      let ar = List.find (fun (t : Threat.t) -> t.Threat.category = Threat.AR) threats in
      (match Policy.default_decision ar with
      | Policy.Prioritize { winner } ->
        check_string "winner is rule1" (Policy.rule_key ar.Threat.app1 ar.Threat.rule1) winner
      | _ -> Alcotest.fail "AR default should be Prioritize");
      let dc =
        List.find
          (fun (t : Threat.t) -> t.Threat.category = Threat.DC)
          (detect_threats [ extract_corpus "BurglarFinder"; extract_corpus "NightCare" ])
      in
      check_bool "DC default is Confirm" true (Policy.default_decision dc = Policy.Confirm);
      check_int "LT hop budget" 2 (Policy.default_hop_budget Threat.LT);
      check_int "CT hop budget" 0 (Policy.default_hop_budget Threat.CT))

let threat_id_stability =
  test "threat ids: symmetric categories canonicalize, directional ones do not" (fun () ->
      let comfort = extract_corpus "ComfortTV" and cold = extract_corpus "ColdDefender" in
      let r1 = the_rule comfort and r2 = the_rule cold in
      let ar_a = Threat.make Threat.AR (comfort, r1) (cold, r2) "x" in
      let ar_b = Threat.make Threat.AR (cold, r2) (comfort, r1) "x" in
      check_string "AR id independent of detection order" (Policy.threat_id ar_a)
        (Policy.threat_id ar_b);
      let ct_a = Threat.make Threat.CT (comfort, r1) (cold, r2) "x" in
      let ct_b = Threat.make Threat.CT (cold, r2) (comfort, r1) "x" in
      check_bool "CT id keeps the interference direction" true
        (Policy.threat_id ct_a <> Policy.threat_id ct_b))

let store_explicit_overrides =
  test "the decision store: explicit beats default, keyed by stable id" (fun () ->
      let comfort = extract_corpus "ComfortTV" and cold = extract_corpus "ColdDefender" in
      let t1 = Threat.make Threat.AR (comfort, the_rule comfort) (cold, the_rule cold) "x" in
      let t2 = Threat.make Threat.AR (cold, the_rule cold) (comfort, the_rule comfort) "x" in
      let store = Policy.create () in
      check_bool "no explicit decision yet" true (Policy.explicit store t1 = None);
      Policy.set store t1 Policy.Allow;
      check_bool "explicit wins" true (Policy.decision_for store t1 = Policy.Allow);
      check_bool "reaches the canonicalized twin too" true
        (Policy.decision_for store t2 = Policy.Allow);
      Policy.set_by_id store (Policy.threat_id t1) (Policy.Block { rule = "a/b" });
      check_bool "set_by_id overwrites" true
        (Policy.decision_for store t1 = Policy.Block { rule = "a/b" }))

(* -- mediator unit behaviour ------------------------------------------------- *)

let gc_block_suppresses_rule =
  test "GC: Block suppresses every command of the losing rule only" (fun () ->
      let comfort = extract_corpus "ComfortTV" and cold = extract_corpus "ColdDefender" in
      let gc = Threat.make Threat.GC (comfort, the_rule comfort) (cold, the_rule cold) "x" in
      let m = default_mediator [ gc ] in
      let query app rule command =
        { Mediator.app; rule; device = "Window"; command; provenance = []; deferrals = 0 }
      in
      (match Mediator.judge m ~at:0 (query "ColdDefender" "ColdDefender#1" "off") with
      | Mediator.Suppress _ -> ()
      | _ -> Alcotest.fail "blocked rule must be suppressed");
      check_bool "winning rule untouched" true
        (Mediator.judge m ~at:0 (query "ComfortTV" "ComfortTV#1" "on") = Mediator.Allow);
      check_int "one suppression logged" 1 (Mediator.stats m).Mediator.suppressed)

let confirm_expires_into_suppression =
  test "Confirm: defers up to max_deferrals, then suppresses" (fun () ->
      let night = extract_corpus "NightCare" and burglar = extract_corpus "BurglarFinder" in
      let dc = Threat.make Threat.DC (night, the_rule night) (burglar, the_rule burglar) "x" in
      let m = default_mediator ~defer_delay_ms:1_000 ~max_deferrals:2 [ dc ] in
      let q deferrals =
        {
          Mediator.app = "NightCare";
          rule = "NightCare#1";
          device = "Lamp";
          command = "off";
          provenance = [];
          deferrals;
        }
      in
      (match Mediator.judge m ~at:0 (q 0) with
      | Mediator.Defer { delay_ms; _ } -> check_int "configured delay" 1_000 delay_ms
      | _ -> Alcotest.fail "first attempt should defer");
      (match Mediator.judge m ~at:2_000 (q 2) with
      | Mediator.Suppress _ -> ()
      | _ -> Alcotest.fail "expired deferrals should suppress");
      Mediator.confirm m (Policy.threat_id dc);
      check_bool "confirmed commands are allowed" true (Mediator.judge m ~at:3_000 (q 0) = Mediator.Allow);
      check_bool "the confirmed allow is logged" true
        (List.exists
           (fun (e : Mediator.log_entry) -> e.Mediator.outcome = "allowed: confirmed")
           (Mediator.log m)))

(* -- E2 scenarios under mediation -------------------------------------------- *)

let window = Device.make ~label:"Window" ~device_type:"window" [ "switch" ]
let tv = Device.make ~label:"TV" ~device_type:"tv" [ "switch" ]
let tsensor = Device.make ~label:"Thermo" ~device_type:"temp" [ "temperatureMeasurement" ]
let weather = Device.make ~label:"Weather" ~device_type:"weather" [ "weatherSensor" ]
let voice = Device.make ~label:"Voice" ~device_type:"speaker" [ "musicPlayer" ]
let motion = Device.make ~label:"Motion" ~device_type:"motion" [ "motionSensor" ]

let install_comfort t =
  Engine.install t (extract_corpus "ComfortTV")
    [ ("tv1", Engine.B_device tv); ("tSensor", Engine.B_device tsensor);
      ("threshold1", Engine.B_int 30); ("window1", Engine.B_device window) ]

let race_setup t =
  install_comfort t;
  Engine.install t (extract_corpus "ColdDefender")
    [ ("tv2", Engine.B_device tv); ("wSensor", Engine.B_device weather);
      ("window2", Engine.B_device window) ];
  Engine.stimulate t tsensor.Device.id "temperature" "31";
  Engine.stimulate t weather.Device.id "weather" "rainy";
  Engine.stimulate t tv.Device.id "switch" "on"

let race_threats = lazy (detect_threats [ extract_corpus "ComfortTV"; extract_corpus "ColdDefender" ])

let ar_flap_killed =
  test "AR mediated: flap_count 0 on the contested switch, suppression logged" (fun () ->
      let m = default_mediator (Lazy.force race_threats) in
      let o =
        Scenario.run_once ~seed:3 ~mediator:m ~until_ms:10_000 ~setup:race_setup
          ~watch:[ ("Window", "switch") ] ()
      in
      let trace = o.Scenario.trace in
      check_int "flap 0" 0 (Trace.flap_count trace "Window" "switch");
      check_bool "no opposite commands" false
        (Trace.opposite_commands_within trace "Window" ~window_ms:10_000
           ~opposites:[ ("on", "off") ]);
      check_bool "winner landed" true (Trace.final_attribute trace "Window" "switch" = Some "on");
      check_bool "loser suppressed in the trace" true (Trace.suppressed_commands trace "Window" <> []);
      check_int "one suppression" 1 (Mediator.stats m).Mediator.suppressed;
      check_bool "enforcement log non-empty" true (Mediator.log m <> []))

let ar_deterministic_across_seeds =
  test "AR mediated: every seed converges to the winner's outcome" (fun () ->
      let outcomes =
        Scenario.race_outcomes
          ~seeds:(List.init 12 (fun i -> i + 1))
          ~mediator:(fun () -> default_mediator (Lazy.force race_threats))
          ~until_ms:10_000 ~setup:race_setup ~device:"Window" ~attribute:"switch" ()
      in
      check_int "a single distinct outcome" 1 (List.length outcomes);
      match outcomes with
      | [ (timeline, final) ] ->
        check_bool "no on/off churn" true (List.length timeline <= 1);
        check_bool "window stays open" true (final = Some "on")
      | _ -> ())

let ar_override_changes_winner =
  test "AR mediated: an explicit Prioritize override flips the winner" (fun () ->
      let threats = Lazy.force race_threats in
      let ar = List.find (fun (t : Threat.t) -> t.Threat.category = Threat.AR) threats in
      let _, k2 = Policy.threat_keys ar in
      let store = Policy.create () in
      (* make the default loser the winner *)
      Policy.set store ar (Policy.Prioritize { winner = k2 });
      let m = Mediator.create store threats in
      let o =
        Scenario.run_once ~seed:3 ~mediator:m ~until_ms:10_000 ~setup:race_setup
          ~watch:[ ("Window", "switch") ] ()
      in
      let trace = o.Scenario.trace in
      check_int "still no flap" 0 (Trace.flap_count trace "Window" "switch");
      (* the default winner's "on" is now the suppressed side: the window
         never opens *)
      check_bool "no on command dispatched" true
        (not (List.mem "on" (List.map snd (Trace.commands_on trace "Window"))));
      check_bool "the on was suppressed" true
        (List.mem "on" (List.map snd (Trace.suppressed_commands trace "Window"))))

let ct_covert_suppressed =
  test "CT mediated: the covert window-open is cut, the overt TV-on is not" (fun () ->
      let threats = detect_threats [ extract_corpus "ComfortTV"; extract_corpus "CatchLiveShow" ] in
      let m = default_mediator threats in
      let t = Engine.create ~mediator:m () in
      install_comfort t;
      Engine.install t (extract_corpus "CatchLiveShow")
        [ ("voicePlayer", Engine.B_device voice); ("tv3", Engine.B_device tv) ];
      Engine.stimulate t tsensor.Device.id "temperature" "31";
      Engine.stimulate t voice.Device.id "status" "playing";
      Engine.run t ~until_ms:10_000;
      let trace = Engine.trace t in
      check_bool "tv still turned on" true (Trace.final_attribute trace "TV" "switch" = Some "on");
      check_bool "window never opened" true (Trace.final_attribute trace "Window" "switch" = None);
      check_bool "the downstream rule was suppressed" true
        (List.exists
           (function Trace.Suppressed { app = "ComfortTV"; _ } -> true | _ -> false)
           trace))

let dc_defer_keeps_alarm_armed =
  test "DC mediated: the lamp-off defers then expires; the alarm fires" (fun () ->
      let lamp = Device.make ~label:"Floor lamp" ~device_type:"light" [ "switch" ] in
      let siren = Device.make ~label:"Siren" ~device_type:"alarm" [ "alarm" ] in
      let threats = detect_threats [ extract_corpus "BurglarFinder"; extract_corpus "NightCare" ] in
      let m = default_mediator threats in
      let t = Engine.create ~mediator:m () in
      Engine.install t (extract_corpus "BurglarFinder")
        [ ("motion1", Engine.B_device motion); ("floorLamp", Engine.B_device lamp);
          ("alarm1", Engine.B_device siren) ];
      Engine.install t (extract_corpus "NightCare") [ ("lamp5", Engine.B_device lamp) ];
      Engine.set_mode t "Night";
      Engine.run t ~until_ms:1_000;
      Engine.stimulate t lamp.Device.id "switch" "on";
      Engine.run t ~until_ms:400_000;
      Engine.stimulate t motion.Device.id "motion" "active";
      Engine.run t ~until_ms:500_000;
      let trace = Engine.trace t in
      check_bool "lamp never turned off" true
        (Trace.final_attribute trace "Floor lamp" "switch" = Some "on");
      check_bool "alarm fired" true (Trace.final_attribute trace "Siren" "alarm" <> None);
      let deferred =
        List.length (List.filter (function Trace.Deferred _ -> true | _ -> false) trace)
      in
      check_int "three deferrals before expiry" 3 deferred;
      check_bool "then suppressed" true (Trace.suppressed_commands trace "Floor lamp" <> []))

let dc_confirm_restores_behaviour =
  test "DC mediated: user confirmation lets the lamp-off through again" (fun () ->
      let lamp = Device.make ~label:"Floor lamp" ~device_type:"light" [ "switch" ] in
      let siren = Device.make ~label:"Siren" ~device_type:"alarm" [ "alarm" ] in
      let threats = detect_threats [ extract_corpus "BurglarFinder"; extract_corpus "NightCare" ] in
      let dc = List.find (fun (t : Threat.t) -> t.Threat.category = Threat.DC) threats in
      let m = default_mediator threats in
      Mediator.confirm m (Policy.threat_id dc);
      let t = Engine.create ~mediator:m () in
      Engine.install t (extract_corpus "BurglarFinder")
        [ ("motion1", Engine.B_device motion); ("floorLamp", Engine.B_device lamp);
          ("alarm1", Engine.B_device siren) ];
      Engine.install t (extract_corpus "NightCare") [ ("lamp5", Engine.B_device lamp) ];
      Engine.set_mode t "Night";
      Engine.run t ~until_ms:1_000;
      Engine.stimulate t lamp.Device.id "switch" "on";
      Engine.run t ~until_ms:400_000;
      check_bool "confirmed lamp-off went through" true
        (Trace.final_attribute (Engine.trace t) "Floor lamp" "switch" = Some "off"))

let lt_loop_halts =
  test "LT mediated: the illuminance loop halts within the hop budget" (fun () ->
      let app = extract_corpus "LightUpTheNight" in
      let r1, r2 =
        match app.Rule.rules with
        | [ a; b ] -> (a, b)
        | rs -> Alcotest.failf "expected 2 rules, got %d" (List.length rs)
      in
      let ctx = Detector.create Detector.offline_config in
      let lt =
        List.filter
          (fun (t : Threat.t) -> t.Threat.category = Threat.LT)
          (Detector.detect_pair ctx (app, r1) (app, r2))
      in
      check_bool "LT detected between the two rules" true (lt <> []);
      let run mediator =
        let lux = Device.make ~label:"Lux" ~device_type:"lux" [ "illuminanceMeasurement" ] in
        let lamp = Device.make ~label:"Night lamp" ~device_type:"light" [ "switch" ] in
        let t = Engine.create ~sample_interval_ms:5_000 ?mediator () in
        Engine.install t app
          [ ("lightSensor", Engine.B_device lux); ("lights", Engine.B_device lamp) ];
        Env_model.set_value t.Engine.env Env.Illuminance 10.0;
        Env_model.set_baseline t.Engine.env Env.Illuminance 10.0;
        Engine.run t ~until_ms:1_800_000;
        Engine.trace t
      in
      let plain = run None in
      (* the mediator sees ONLY the LT threat: the loop must be stopped by
         the chain breaker, not by AR priorities on the same rule pair *)
      let mediated = run (Some (default_mediator lt)) in
      let budget = Policy.default_hop_budget Threat.LT in
      let plain_flaps = Trace.flap_count plain "Night lamp" "switch" in
      let mediated_flaps = Trace.flap_count mediated "Night lamp" "switch" in
      check_bool "unmediated loop keeps flapping" true (plain_flaps > 2 * budget);
      check_bool "mediated loop halts within the budget" true (mediated_flaps <= 2 * budget);
      check_bool "the breaker actually tripped" true
        (Trace.suppressed_commands mediated "Night lamp" <> []))

let mediation_off_identical =
  test "no mediator and an empty mediator produce byte-identical traces" (fun () ->
      let run mediator =
        let o = Scenario.run_once ~seed:5 ?mediator ~until_ms:10_000 ~setup:race_setup ~watch:[] () in
        Trace.to_string o.Scenario.trace
      in
      check_string "identical trace text" (run None) (run (Some (default_mediator []))))

(* -- install-flow wiring ------------------------------------------------------ *)

let install_flow_end_to_end =
  test "install flow: propose/keep surfaces recommendations and arms the mediator" (fun () ->
      let flow = Install_flow.create () in
      let r1 = Install_flow.propose flow (extract_corpus "ComfortTV") in
      check_bool "first app: nothing to recommend" true (r1.Install_flow.recommendations = []);
      Install_flow.decide flow Install_flow.Keep;
      let r2 = Install_flow.propose flow (extract_corpus "ColdDefender") in
      check_bool "threats detected" true (r2.Install_flow.threats <> []);
      check_int "one recommendation per threat"
        (List.length r2.Install_flow.threats)
        (List.length r2.Install_flow.recommendations);
      check_bool "handling text rendered" true (r2.Install_flow.handling_text <> "");
      Install_flow.decide flow Install_flow.Keep;
      check_bool "kept threats recorded" true (Install_flow.kept_threats flow <> []);
      (* the flow-compiled mediator enforces the defaults *)
      let o =
        Scenario.run_once ~seed:3 ~mediator:(Install_flow.mediator flow) ~until_ms:10_000
          ~setup:race_setup ~watch:[] ()
      in
      check_int "flap killed by the flow's mediator" 0
        (Trace.flap_count o.Scenario.trace "Window" "switch");
      (* an explicit Allow override disarms that threat *)
      let ar =
        List.find
          (fun (t : Threat.t) -> t.Threat.category = Threat.AR)
          (Install_flow.kept_threats flow)
      in
      Install_flow.set_decision flow (Policy.threat_id ar) Policy.Allow;
      let o2 =
        Scenario.run_once ~seed:3 ~mediator:(Install_flow.mediator flow) ~until_ms:10_000
          ~setup:race_setup ~watch:[] ()
      in
      check_bool "race is back under Allow" true
        (Trace.opposite_commands_within o2.Scenario.trace "Window" ~window_ms:10_000
           ~opposites:[ ("on", "off") ]))

let tests =
  [
    defaults_per_category;
    threat_id_stability;
    store_explicit_overrides;
    gc_block_suppresses_rule;
    confirm_expires_into_suppression;
    ar_flap_killed;
    ar_deterministic_across_seeds;
    ar_override_changes_winner;
    ct_covert_suppressed;
    dc_defer_keeps_alarm_armed;
    dc_confirm_restores_behaviour;
    lt_loop_halts;
    mediation_off_identical;
    install_flow_end_to_end;
  ]
