(** Totality of the analysis front end: lexing, parsing and rule
    extraction must be total functions over arbitrary byte strings —
    any input, however hostile, yields either a result or a structured
    {!Extract.Extraction_error}, never an uncaught exception. This is
    the serving layer's first line of defence: a poison app must fail
    {e cleanly} so it can be counted, quarantined and refused, not
    crash the process that was auditing it. *)

module Extract = Homeguard_symexec.Extract

(* Run one input through the full pipeline; [Ok ()] covers both
   successful extraction and the structured error. Anything else is a
   totality violation. *)
let classify src =
  match Extract.extract_source ~name:"fuzz" src with
  | _ -> Ok ()
  | exception Extract.Extraction_error _ -> Ok ()
  | exception e -> Error (Printexc.to_string e)

let check_total src =
  match classify src with
  | Ok () -> true
  | Error exn ->
    Printf.eprintf "uncaught exception on %S: %s\n" src exn;
    false

(* Arbitrary bytes: the raw fuzz surface. *)
let arbitrary_bytes =
  QCheck.(string_gen_of_size (Gen.int_range 0 2048) Gen.char)

(* Groovy-flavoured fragments: random splices of tokens the lexer and
   parser actually branch on, which reach far deeper than raw bytes. *)
let groovy_fragment =
  let tokens =
    [|
      "definition"; "preferences"; "section"; "input"; "def "; "if"; "else";
      "subscribe"; "schedule"; "runIn"; "{"; "}"; "("; ")"; "["; "]"; ":";
      ";"; ","; "."; "=="; "!="; "="; "&&"; "||"; "!"; "+"; "-"; "*"; "/";
      "\""; "\\"; "'"; "$"; "\n"; " "; "\t"; "0"; "42"; "3.14"; "true";
      "false"; "null"; "it"; "app"; "evt.value"; "location.mode"; "état";
      "\xff"; "\x00"; "/* "; "*/"; "//"; "name:"; "title:"; "capability.switch";
    |]
  in
  QCheck.Gen.(
    list_size (int_range 0 200) (oneofa tokens) >|= String.concat "")
  |> QCheck.make ~print:(Printf.sprintf "%S")

let prop_raw_bytes_total =
  QCheck.Test.make ~count:500 ~name:"extraction is total on arbitrary bytes"
    arbitrary_bytes check_total

let prop_fragments_total =
  QCheck.Test.make ~count:500 ~name:"extraction is total on Groovy-token splices"
    groovy_fragment check_total

(* Mutated real sources: flip, delete and duplicate bytes of corpus
   apps — inputs that are almost valid stress the deepest paths. *)
let mutated_corpus_total =
  let sources =
    List.map (fun e -> e.Homeguard_corpus.App_entry.source) Homeguard_corpus.Corpus.all
  in
  let mutate rand src =
    if String.length src = 0 then src
    else
      let b = Bytes.of_string src in
      let n = 1 + Random.State.int rand 8 in
      for _ = 1 to n do
        let i = Random.State.int rand (Bytes.length b) in
        match Random.State.int rand 3 with
        | 0 -> Bytes.set b i (Char.chr (Random.State.int rand 256))
        | 1 -> Bytes.set b i ' '
        | _ -> Bytes.set b i '{'
      done;
      Bytes.to_string b
  in
  Alcotest.test_case "extraction is total on mutated corpus sources" `Quick (fun () ->
      let rand = Random.State.make [| 0x70745 |] in
      let violations = ref 0 in
      List.iter
        (fun src ->
          for _ = 1 to 5 do
            if not (check_total (mutate rand src)) then incr violations
          done)
        sources;
      Alcotest.(check int) "no uncaught exceptions" 0 !violations)

let tests =
  [
    QCheck_alcotest.to_alcotest ~long:false prop_raw_bytes_total;
    QCheck_alcotest.to_alcotest ~long:false prop_fragments_total;
    mutated_corpus_total;
  ]
