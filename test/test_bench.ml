(** The bench support library: JSON round-trips, nearest-rank
    percentiles, trajectory compare semantics and the in-process
    recursive remove. *)

module Json = Homeguard_bench.Json
module Stats = Homeguard_bench.Stats
module Trajectory = Homeguard_bench.Trajectory
module Fsutil = Homeguard_bench.Fsutil

(* -- JSON ---------------------------------------------------------------- *)

let json_roundtrip =
  Helpers.test "print/parse round-trip" (fun () ->
      let v =
        Json.Obj
          [
            ("s", Json.Str "a \"quoted\"\nline\twith\\slashes");
            ("i", Json.Int (-42));
            ("f", Json.Float 3.25);
            ("b", Json.Bool true);
            ("n", Json.Null);
            ("l", Json.List [ Json.Int 1; Json.Str "x"; Json.Obj [] ]);
            ("empty", Json.List []);
          ]
      in
      match Json.of_string (Json.to_string v) with
      | Ok v' -> Helpers.check_bool "equal after round-trip" true (v = v')
      | Error e -> Alcotest.failf "parse failed: %s" e)

let json_accepts_standard =
  Helpers.test "parses standard JSON with escapes and exponents" (fun () ->
      match Json.of_string {|{"a":[1,2.5e2,"A\n"],"b":false}|} with
      | Ok v ->
        Helpers.check_bool "exponent" true
          (Json.member "a" v |> Option.get |> Json.to_list |> Option.get |> fun l ->
           List.nth l 1 |> Json.to_number = Some 250.0);
        Helpers.check_bool "unicode escape" true
          (Json.member "a" v |> Option.get |> Json.to_list |> Option.get |> fun l ->
           List.nth l 2 |> Json.to_str = Some "A\n")
      | Error e -> Alcotest.failf "parse failed: %s" e)

let json_rejects_garbage =
  Helpers.test "rejects malformed input" (fun () ->
      List.iter
        (fun s ->
          match Json.of_string s with
          | Ok _ -> Alcotest.failf "accepted %S" s
          | Error _ -> ())
        [ "{"; "[1,]"; "{\"a\" 1}"; "tru"; "1 2"; "\"unterminated" ])

(* -- percentiles --------------------------------------------------------- *)

let percentile_nearest_rank =
  Helpers.test "nearest-rank, not truncation" (fun () ->
      let sample = List.init 20 (fun i -> float_of_int (i + 1)) in
      (* p95 of 20 samples is rank ceil(0.95*20)=19, value 19.0; the old
         truncating index gave 20.0 (the maximum) *)
      Helpers.check_bool "p95" true (Stats.percentile 0.95 sample = Some 19.0);
      Helpers.check_bool "p100 is max" true (Stats.percentile 1.0 sample = Some 20.0);
      Helpers.check_bool "p0 clamps to min" true (Stats.percentile 0.0 sample = Some 1.0);
      Helpers.check_bool "median of singleton" true (Stats.percentile 0.5 [ 7.0 ] = Some 7.0))

let percentile_empty =
  Helpers.test "empty sample yields None, not a raise" (fun () ->
      Helpers.check_bool "percentile" true (Stats.percentile 0.95 [] = None);
      Helpers.check_bool "mean" true (Stats.mean [] = None))

(* -- trajectory ---------------------------------------------------------- *)

let key = { Trajectory.dataset_id = "d"; snapshot_hash = "h"; config = "c"; code_version = "v" }

let traj sections = { Trajectory.key; sections }

let sec title metrics = { Trajectory.title; metrics }

let trajectory_roundtrip =
  Helpers.test "trajectory file round-trips" (fun () ->
      let t =
        traj
          [
            sec "P1"
              Trajectory.
                [
                  metric ~direction:Exact "threats" 3845.0;
                  metric ~unit_:"ms" ~direction:Lower_better "wall_ms" 123.456;
                ];
            sec "A3" Trajectory.[ metric ~unit_:"us" ~direction:Lower_better "dnf" 39.0 ];
          ]
      in
      match Trajectory.of_string (Trajectory.to_string t) with
      | Ok t' -> Helpers.check_bool "equal" true (t = t')
      | Error e -> Alcotest.failf "parse failed: %s" e)

let compare_directions =
  Helpers.test "compare honors per-metric directions" (fun () ->
      let base =
        traj
          [
            sec "S"
              Trajectory.
                [
                  metric ~direction:Exact "count" 10.0;
                  metric ~direction:Lower_better "ms" 100.0;
                  metric ~direction:Higher_better "rate" 100.0;
                  metric ~direction:Info "noise" 100.0;
                ];
          ]
      in
      let cur =
        traj
          [
            sec "S"
              Trajectory.
                [
                  metric ~direction:Exact "count" 11.0;
                  metric ~direction:Lower_better "ms" 110.0;
                  metric ~direction:Higher_better "rate" 60.0;
                  metric ~direction:Info "noise" 900.0;
                ];
          ]
      in
      let status name deltas =
        (List.find (fun d -> d.Trajectory.metric_name = name) deltas).Trajectory.status
      in
      let d25 = Trajectory.compare ~threshold_pct:25.0 ~baseline:base ~current:cur in
      Helpers.check_bool "exact drift regresses" true (status "count" d25 = Trajectory.Regressed);
      Helpers.check_bool "+10% under 25% threshold ok" true
        (status "ms" d25 = Trajectory.Unchanged);
      Helpers.check_bool "-40% throughput regresses" true
        (status "rate" d25 = Trajectory.Regressed);
      Helpers.check_bool "info never gates" true (status "noise" d25 = Trajectory.Unchanged);
      let d5 = Trajectory.compare ~threshold_pct:5.0 ~baseline:base ~current:cur in
      Helpers.check_bool "+10% over 5% threshold regresses" true
        (status "ms" d5 = Trajectory.Regressed);
      Helpers.check_bool "regression detected" true (Trajectory.has_regression d5))

let compare_missing_added =
  Helpers.test "missing and added metrics never fail the comparison" (fun () ->
      let base = traj [ sec "S" Trajectory.[ metric ~direction:Exact "gone" 1.0 ] ] in
      let cur = traj [ sec "S" Trajectory.[ metric ~direction:Exact "new" 1.0 ] ] in
      let deltas = Trajectory.compare ~threshold_pct:25.0 ~baseline:base ~current:cur in
      Helpers.check_int "two rows" 2 (List.length deltas);
      Helpers.check_bool "no regression" false (Trajectory.has_regression deltas))

let compare_improvement =
  Helpers.test "improvements are reported, not penalized" (fun () ->
      let base = traj [ sec "S" Trajectory.[ metric ~direction:Lower_better "ms" 100.0 ] ] in
      let cur = traj [ sec "S" Trajectory.[ metric ~direction:Lower_better "ms" 30.0 ] ] in
      match Trajectory.compare ~threshold_pct:25.0 ~baseline:base ~current:cur with
      | [ d ] -> Helpers.check_bool "improved" true (d.Trajectory.status = Trajectory.Improved)
      | _ -> Alcotest.fail "expected one delta")

let key_drift =
  Helpers.test "key drift is surfaced field by field" (fun () ->
      let other = { key with Trajectory.snapshot_hash = "h2"; code_version = "v2" } in
      let drift =
        Trajectory.key_drift ~baseline:(traj []) ~current:{ Trajectory.key = other; sections = [] }
      in
      Helpers.check_int "two drifting fields" 2 (List.length drift))

(* -- rm_rf --------------------------------------------------------------- *)

let rm_rf_tree =
  Helpers.test "removes a nested tree and tolerates absence" (fun () ->
      let root =
        Filename.concat (Filename.get_temp_dir_name ())
          (Printf.sprintf "hg_test_rmrf_%d" (Unix.getpid ()))
      in
      Unix.mkdir root 0o755;
      Unix.mkdir (Filename.concat root "sub") 0o755;
      let write p = Out_channel.with_open_text p (fun oc -> output_string oc "x") in
      write (Filename.concat root "a");
      write (Filename.concat root "sub/b");
      Unix.symlink "a" (Filename.concat root "link");
      Fsutil.rm_rf root;
      Helpers.check_bool "gone" false (Sys.file_exists root);
      (* second removal is a no-op, not an error *)
      Fsutil.rm_rf root)

let tests =
  [
    json_roundtrip;
    json_accepts_standard;
    json_rejects_garbage;
    percentile_nearest_rank;
    percentile_empty;
    trajectory_roundtrip;
    compare_directions;
    compare_missing_added;
    compare_improvement;
    key_drift;
    rm_rf_tree;
  ]
