(** Constraint-solver tests: satisfiability, entailment, DNF, model
    soundness, agreement with brute force and with the DPLL-style
    variant. *)

open Homeguard_solver
open Formula
open Term

let sat ?(store = Store.empty) f = Solver.sat store f

let model ?(store = Store.empty) f = Solver.satisfiable store f

let simple_sat =
  Helpers.test "x > 5 is satisfiable" (fun () ->
      Helpers.check_bool "sat" true (sat (gt (Var "x") (Int 5))))

let simple_unsat =
  Helpers.test "x > 5 && x < 3 is unsat" (fun () ->
      Helpers.check_bool "unsat" false
        (sat (conj [ gt (Var "x") (Int 5); lt (Var "x") (Int 3) ])))

let equality_chain =
  Helpers.test "transitive equality propagates" (fun () ->
      Helpers.check_bool "unsat" false
        (sat
           (conj
              [ eq (Var "a") (Var "b"); eq (Var "b") (Var "c"); gt (Var "a") (Int 10);
                lt (Var "c") (Int 5);
              ])))

let arithmetic =
  Helpers.test "x + y == 10 with bounds" (fun () ->
      let f =
        conj
          [ eq (Add (Var "x", Var "y")) (Int 10); ge (Var "x") (Int 0); ge (Var "y") (Int 0);
            gt (Var "x") (Int 8);
          ]
      in
      match model f with
      | Some m ->
        let get v = List.assoc v m in
        (match (get "x", get "y") with
        | Domain.Int x, Domain.Int y ->
          Helpers.check_int "sum" 10 (x + y);
          Helpers.check_bool "x > 8" true (x > 8)
        | _ -> Alcotest.fail "non-int model")
      | None -> Alcotest.fail "expected sat")

let subtraction =
  Helpers.test "x - y > 0 && x < y is unsat" (fun () ->
      Helpers.check_bool "unsat" false
        (sat (conj [ gt (Sub (Var "x", Var "y")) (Int 0); lt (Var "x") (Var "y") ])))

let multiplication_by_const =
  Helpers.test "2 * x == 7 is unsat over ints" (fun () ->
      Helpers.check_bool "unsat" false (sat (eq (Mul (Int 2, Var "x")) (Int 7))))

let multiplication_sat =
  Helpers.test "3 * x == 12 solves to 4" (fun () ->
      match model (eq (Mul (Int 3, Var "x")) (Int 12)) with
      | Some [ ("x", Domain.Int 4) ] -> ()
      | Some _ -> Alcotest.fail "wrong model"
      | None -> Alcotest.fail "expected sat")

let negation_pushing =
  Helpers.test "Not flips comparators" (fun () ->
      Helpers.check_bool "unsat" false
        (sat (conj [ gt (Var "x") (Int 5); Not (gt (Var "x") (Int 3)) ])))

let enum_sat =
  Helpers.test "enum equality with store" (fun () ->
      let store = Store.of_list [ ("sw", Domain.enums [ "on"; "off" ]) ] in
      Helpers.check_bool "sat" true (sat ~store (eq (Var "sw") (Str "on")));
      Helpers.check_bool "unsat" false (sat ~store (eq (Var "sw") (Str "open"))))

let enum_neq_chain =
  Helpers.test "exhausting an enum domain is unsat" (fun () ->
      let store = Store.of_list [ ("sw", Domain.enums [ "on"; "off" ]) ] in
      Helpers.check_bool "unsat" false
        (sat ~store (conj [ neq (Var "sw") (Str "on"); neq (Var "sw") (Str "off") ])))

let enum_inference =
  Helpers.test "untyped enum vars get inferred universes" (fun () ->
      (* without a store, an extra __other__ value keeps Neq satisfiable *)
      Helpers.check_bool "sat" true
        (sat (conj [ neq (Var "mode") (Str "Home"); neq (Var "mode") (Str "Away") ])))

let enum_join =
  Helpers.test "var-var enum equality joins universes" (fun () ->
      Helpers.check_bool "sat" true
        (sat (conj [ eq (Var "a") (Var "b"); eq (Var "b") (Str "on") ])))

let mixed_types_eq_unsat =
  Helpers.test "int = string is unsat" (fun () ->
      let store = Store.of_list [ ("x", Domain.interval 0 5) ] in
      Helpers.check_bool "unsat" false (sat ~store (eq (Var "x") (Str "on"))))

let disjunction =
  Helpers.test "disjunction explores both branches" (fun () ->
      let f =
        conj
          [ disj [ gt (Var "x") (Int 100); lt (Var "x") (Int (-100)) ]; ge (Var "x") (Int 0) ]
      in
      match model f with
      | Some [ ("x", Domain.Int x) ] -> Helpers.check_bool "x > 100" true (x > 100)
      | _ -> Alcotest.fail "expected model")

let entails_works =
  Helpers.test "entailment" (fun () ->
      Helpers.check_bool "x>5 |= x>3" true
        (Solver.entails Store.empty (gt (Var "x") (Int 5)) (gt (Var "x") (Int 3)));
      Helpers.check_bool "x>3 |/= x>5" false
        (Solver.entails Store.empty (gt (Var "x") (Int 3)) (gt (Var "x") (Int 5))))

let conflicts_works =
  Helpers.test "conflict detection" (fun () ->
      Helpers.check_bool "conflict" true
        (Solver.conflicts Store.empty (gt (Var "x") (Int 5)) (lt (Var "x") (Int 2)));
      Helpers.check_bool "no conflict" false
        (Solver.conflicts Store.empty (gt (Var "x") (Int 5)) (lt (Var "x") (Int 9))))

let true_false =
  Helpers.test "True/False literals" (fun () ->
      Helpers.check_bool "true sat" true (sat True);
      Helpers.check_bool "false unsat" false (sat False);
      Helpers.check_bool "conj false" false (sat (conj [ True; False ])))

(* -- DNF ------------------------------------------------------------------- *)

let dnf_shape =
  Helpers.test "DNF distributes" (fun () ->
      let f =
        conj [ disj [ eq (Var "a") (Int 1); eq (Var "a") (Int 2) ]; eq (Var "b") (Int 3) ]
      in
      Helpers.check_int "conjuncts" 2 (List.length (Dnf.of_formula f)))

let dnf_true_false =
  Helpers.test "DNF of True/False" (fun () ->
      Helpers.check_bool "true" true (Dnf.of_formula True = [ [] ]);
      Helpers.check_bool "false" true (Dnf.of_formula False = []))

(* -- budgets, three-valued verdicts and fault injection -------------------- *)

(* A 3-coloring-style conjunct: satisfiable, but only by splitting on
   several variables, so a depth cap of 1 cannot decide it. *)
let tri_atoms : Dnf.conjunct =
  [ (Neq, Var "x", Var "y"); (Neq, Var "y", Var "z"); (Neq, Var "x", Var "z") ]

let tri_store = Store.of_list (List.map (fun v -> (v, Domain.interval 0 2)) [ "x"; "y"; "z" ])

let depth_cap_regression =
  Helpers.test "regression: tiny depth cap answers Unknown, never unsat" (fun () ->
      (match Search.solve ~max_depth:1 tri_store tri_atoms with
      | Budget.Unknown { Budget.trip = Budget.Depth; _ } -> ()
      | Budget.Unknown _ -> Alcotest.fail "wrong trip for the depth cap"
      | Budget.Unsat -> Alcotest.fail "depth cap leaked as unsat (soundness hole)"
      | Budget.Sat _ -> Alcotest.fail "cannot decide within depth 1");
      match Search.solve tri_store tri_atoms with
      | Budget.Sat _ -> ()
      | _ -> Alcotest.fail "satisfiable at the default depth")

let node_fuel_trips =
  Helpers.test "search-node fuel exhaustion answers Unknown (Node_fuel)" (fun () ->
      let b = Budget.start { Budget.unlimited_spec with Budget.search_nodes = Some 1 } in
      match Search.solve ~budget:b tri_store tri_atoms with
      | Budget.Unknown { Budget.trip = Budget.Node_fuel; _ } -> ()
      | _ -> Alcotest.fail "expected Unknown Node_fuel")

let prop_fuel_trips =
  Helpers.test "propagation fuel exhaustion answers Unknown (Prop_fuel)" (fun () ->
      let b = Budget.start { Budget.unlimited_spec with Budget.prop_steps = Some 1 } in
      let f = conj [ gt (Var "x") (Int 5); lt (Var "x") (Int 3); eq (Var "y") (Var "x") ] in
      match Solver.solve ~budget:b Store.empty f with
      | Budget.Unknown { Budget.trip = Budget.Prop_fuel; _ } -> ()
      | _ -> Alcotest.fail "expected Unknown Prop_fuel")

let generous_budget_decides =
  Helpers.test "default budgets decide rule-sized formulas" (fun () ->
      let b = Budget.start Budget.default_spec in
      match Solver.solve ~budget:b tri_store (conj [ neq (Var "x") (Var "y") ]) with
      | Budget.Sat _ -> ()
      | _ -> Alcotest.fail "expected Sat under the default budgets")

let escalate_and_fingerprint =
  Helpers.test "escalate multiplies finite limits; fingerprints distinguish specs" (fun () ->
      let s = Budget.spec_of_nodes 10 in
      let e = Budget.escalate s in
      Helpers.check_bool "nodes escalated" true (e.Budget.search_nodes = Some 80);
      Helpers.check_bool "unlimited stays unlimited" true
        (Budget.escalate Budget.unlimited_spec = Budget.unlimited_spec);
      Helpers.check_bool "distinct fingerprints" true
        (Budget.fingerprint s <> Budget.fingerprint e);
      Helpers.check_bool "stable fingerprint" true
        (Budget.fingerprint s = Budget.fingerprint (Budget.spec_of_nodes 10)))

let fault_injection_modes =
  Helpers.test "armed faults: Exhaust -> Unknown, Raise -> Injected, disarm restores" (fun () ->
      let f = gt (Var "x") (Int 5) in
      Fun.protect ~finally:Fault.disarm (fun () ->
          Fault.arm ~seed:1 ~rate_per_thousand:1000 Fault.Exhaust;
          (match Solver.solve Store.empty f with
          | Budget.Unknown _ -> ()
          | _ -> Alcotest.fail "expected Unknown under an Exhaust fault");
          (match Solver.satisfiable Store.empty f with
          | exception Budget.Exhausted _ -> ()
          | _ -> Alcotest.fail "satisfiable must refuse to decide, not guess");
          Fault.disarm ();
          Fault.arm ~seed:1 ~rate_per_thousand:1000 Fault.Raise;
          match Solver.solve Store.empty f with
          | exception Fault.Injected _ -> ()
          | _ -> Alcotest.fail "expected the injected crash to propagate");
      Helpers.check_bool "clean after disarm" true (sat f))

let fault_once_lets_retry_succeed =
  Helpers.test "once-mode faults fire per key only on the first solve" (fun () ->
      let f = gt (Var "x") (Int 5) in
      Fun.protect ~finally:Fault.disarm (fun () ->
          Fault.arm ~once:true ~seed:1 ~rate_per_thousand:1000 Fault.Exhaust;
          (match Solver.solve Store.empty f with
          | Budget.Unknown _ -> ()
          | _ -> Alcotest.fail "first solve should trip");
          match Solver.solve Store.empty f with
          | Budget.Sat _ -> ()
          | _ -> Alcotest.fail "retry of the same key should succeed"))

(* -- property tests -------------------------------------------------------- *)

let var_pool = [ "p"; "q"; "r" ]

let gen_formula =
  let open QCheck2.Gen in
  let gen_var = oneofl var_pool in
  let gen_term =
    oneof
      [ map (fun v -> Var v) gen_var; map (fun n -> Int n) (int_range 0 6) ]
  in
  let gen_atom =
    let* cmp = oneofl [ Eq; Neq; Lt; Le; Gt; Ge ] in
    let* a = gen_term and* b = gen_term in
    return (Atom (cmp, a, b))
  in
  (* size is capped: adversarial thousand-atom formulas are out of scope
     for rule-sized solving and would make the property run unbounded *)
  let rec gen n =
    if n <= 0 then gen_atom
    else
      let sub = gen (n / 2) in
      oneof
        [
          gen_atom;
          map (fun fs -> And fs) (list_size (int_range 1 3) sub);
          map (fun fs -> Or fs) (list_size (int_range 1 3) sub);
          map (fun f -> Not f) sub;
        ]
  in
  sized (fun n -> gen (min n 10))

let small_store =
  Store.of_list (List.map (fun v -> (v, Domain.interval 0 6)) var_pool)

let brute_force_sat f =
  let rec assign vars acc =
    match vars with
    | [] -> Formula.eval (fun v -> Domain.Int (List.assoc v acc)) f
    | v :: rest ->
      List.exists (fun n -> assign rest ((v, n) :: acc)) [ 0; 1; 2; 3; 4; 5; 6 ]
  in
  assign var_pool []

let prop_agrees_with_brute_force =
  Helpers.qtest ~count:300 "solver agrees with brute force on small domains" gen_formula
    (fun f -> Solver.sat small_store f = brute_force_sat f)

let prop_model_satisfies =
  Helpers.qtest ~count:300 "returned models satisfy the formula" gen_formula (fun f ->
      match Solver.satisfiable small_store f with
      | None -> true
      | Some m ->
        let env v =
          match List.assoc_opt v m with
          | Some value -> value
          | None -> Domain.Int 0 (* unconstrained *)
        in
        Formula.eval env f)

let prop_dpll_agrees =
  Helpers.qtest ~count:300 "DPLL variant agrees with DNF solver" gen_formula (fun f ->
      Option.is_some (Solver.satisfiable_dpll small_store f) = Solver.sat small_store f)

let prop_nnf_preserves =
  Helpers.qtest ~count:300 "NNF preserves semantics" gen_formula (fun f ->
      let g = Formula.nnf f in
      let rec assign vars acc =
        match vars with
        | [] ->
          let env v = Domain.Int (List.assoc v acc) in
          Formula.eval env f = Formula.eval env g
        | v :: rest -> List.for_all (fun n -> assign rest ((v, n) :: acc)) [ 0; 3; 6 ]
      in
      assign var_pool [])

let prop_dnf_preserves =
  Helpers.qtest ~count:200 "DNF preserves semantics" gen_formula (fun f ->
      match Dnf.of_formula f with
      | conjuncts ->
        let g = Dnf.to_formula conjuncts in
        let rec assign vars acc =
          match vars with
          | [] ->
            let env v = Domain.Int (List.assoc v acc) in
            Formula.eval env f = Formula.eval env g
          | v :: rest -> List.for_all (fun n -> assign rest ((v, n) :: acc)) [ 0; 2; 5 ]
        in
        assign var_pool []
      | exception Dnf.Too_large -> true)

let relevant_vars_deduped =
  Helpers.test "relevant_vars: a variable in several atoms appears once" (fun () ->
      let atoms =
        [ (Gt, Var "x", Int 1); (Lt, Var "x", Int 5); (Neq, Var "x", Var "y");
          (Eq, Add (Var "y", Var "x"), Int 4);
        ]
      in
      let vars = Search.relevant_vars atoms in
      Helpers.check_bool "no duplicate variables" true
        (List.length vars = List.length (List.sort_uniq compare vars));
      Helpers.check_bool "both variables present" true
        (List.mem "x" vars && List.mem "y" vars))

let witness_bindings_unique =
  Helpers.test "witness models carry one binding per variable" (fun () ->
      let f =
        conj
          [ gt (Var "x") (Int 1); lt (Var "x") (Int 5); neq (Var "x") (Int 3);
            eq (Var "y") (Var "x");
          ]
      in
      match model f with
      | Some m ->
        let names = List.map fst m in
        Helpers.check_bool "unique bindings" true
          (List.length names = List.length (List.sort_uniq compare names))
      | None -> Alcotest.fail "expected a model")

let tests =
  [
    relevant_vars_deduped;
    witness_bindings_unique;
    simple_sat;
    simple_unsat;
    equality_chain;
    arithmetic;
    subtraction;
    multiplication_by_const;
    multiplication_sat;
    negation_pushing;
    enum_sat;
    enum_neq_chain;
    enum_inference;
    enum_join;
    mixed_types_eq_unsat;
    disjunction;
    entails_works;
    conflicts_works;
    true_false;
    dnf_shape;
    dnf_true_false;
    depth_cap_regression;
    node_fuel_trips;
    prop_fuel_trips;
    generous_budget_decides;
    escalate_and_fingerprint;
    fault_injection_modes;
    fault_once_lets_retry_succeed;
    prop_agrees_with_brute_force;
    prop_model_satisfies;
    prop_dpll_agrees;
    prop_nnf_preserves;
    prop_dnf_preserves;
  ]
