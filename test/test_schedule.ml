(** Scheduler tests: batching invariants, the Mutex/Condition work
    queue fan-out, plan soundness and parallel-vs-sequential detection
    determinism. *)

module Rule = Homeguard_rules.Rule
module Detector = Homeguard_detector.Detector
module Schedule = Homeguard_detector.Schedule
module Threat = Homeguard_detector.Threat
open Helpers

let demo_apps =
  lazy
    (List.map
       (fun (e : Homeguard_corpus.App_entry.t) ->
         extract ~name:e.Homeguard_corpus.App_entry.name e.Homeguard_corpus.App_entry.source)
       Homeguard_corpus.Apps_demo.all)

let batches_partition =
  test "batches: concatenation restores the input, in order" (fun () ->
      List.iter
        (fun (jobs, n) ->
          let items = Array.init n (fun i -> i) in
          let bs = Schedule.batches ~jobs items in
          let flat = Array.concat (Array.to_list bs) in
          check_bool
            (Printf.sprintf "jobs=%d n=%d" jobs n)
            true
            (flat = items && Array.for_all (fun b -> Array.length b > 0) bs))
        [ (1, 0); (1, 1); (1, 17); (3, 17); (4, 4); (4, 100); (16, 5) ])

let map_batches_matches_sequential =
  test "map_batches: parallel result equals sequential map" (fun () ->
      let items = Array.init 257 (fun i -> i) in
      let f batch = Array.fold_left (fun acc x -> acc + (x * x)) 0 batch in
      let total jobs =
        Array.fold_left
          (fun acc -> function Some x -> acc + x | None -> acc)
          0
          (Schedule.map_batches ~jobs f items)
      in
      let expected = Array.fold_left (fun a x -> a + (x * x)) 0 items in
      check_int "sequential sum of squares" expected (total 1);
      check_int "parallel sum of squares" expected (total 4))

let map_batches_uses_every_item =
  test "map_batches: every item processed exactly once under contention" (fun () ->
      let items = Array.init 1000 (fun i -> i) in
      let results = Schedule.map_batches ~jobs:8 Array.to_list items in
      let flat =
        List.concat (List.filter_map Fun.id (Array.to_list results))
      in
      check_int "item count" 1000 (List.length flat);
      check_bool "order preserved" true (flat = Array.to_list items))

let plan_is_sound =
  test "plan: pre-filters never drop a threat-bearing pair" (fun () ->
      let apps = Lazy.force demo_apps in
      let c = Detector.create Detector.offline_config in
      let tagged =
        List.concat_map (fun app -> List.map (fun r -> (app, r)) app.Rule.rules) apps
      in
      let rec pairs = function
        | [] -> []
        | p :: rest -> List.map (fun q -> (p, q)) rest @ pairs rest
      in
      List.iter
        (fun (((app1, _) as p1), ((app2, _) as p2)) ->
          if app1.Rule.name <> app2.Rule.name then
            let threats = Detector.detect_pair c p1 p2 in
            if threats <> [] then
              check_bool
                (Printf.sprintf "%s vs %s is a candidate" app1.Rule.name app2.Rule.name)
                true
                (Detector.pair_candidate c p1 p2))
        (pairs tagged))

let detect_all_jobs_deterministic =
  test "detect_all: --jobs 1 and --jobs 4 produce the identical threat list" (fun () ->
      let apps = Lazy.force demo_apps in
      let run jobs =
        let c = Detector.create Detector.offline_config in
        let threats = Detector.detect_all ~jobs c apps in
        (List.map Threat.to_string threats, c.Detector.solver_calls)
      in
      let seq, seq_calls = run 1 in
      let par, par_calls = run 4 in
      check_bool "non-trivial workload" true (seq <> []);
      check_bool "identical, identically ordered threats" true (seq = par);
      check_int "merged solver-call count matches sequential" seq_calls par_calls)

let detect_all_matches_unplanned_pairwise =
  test "detect_all: planned output equals exhaustive pairwise detection" (fun () ->
      let apps = Lazy.force demo_apps in
      let c = Detector.create Detector.offline_config in
      let planned = List.map Threat.to_string (Detector.detect_all c apps) in
      let tagged =
        List.concat_map (fun app -> List.map (fun r -> (app, r)) app.Rule.rules) apps
      in
      let rec pairs = function
        | [] -> []
        | p :: rest -> List.map (fun q -> (p, q)) rest @ pairs rest
      in
      let c' = Detector.create Detector.offline_config in
      let exhaustive =
        List.concat_map
          (fun (((app1, _) as p1), ((app2, _) as p2)) ->
            if app1.Rule.name = app2.Rule.name then []
            else Detector.detect_pair c' p1 p2)
          (pairs tagged)
        |> List.map Threat.to_string
      in
      check_bool "same threats" true (planned = exhaustive))

let detect_new_app_jobs_deterministic =
  test "detect_new_app: parallel install-time check matches sequential" (fun () ->
      let db = Homeguard_rules.Rule_db.create () in
      List.iter
        (fun app -> ignore (Homeguard_rules.Rule_db.install db app : int))
        [ extract_corpus "ComfortTV"; extract_corpus "CatchLiveShow" ];
      let newcomer = extract_corpus "ColdDefender" in
      let run jobs =
        let c = Detector.create Detector.offline_config in
        List.map Threat.to_string (Detector.detect_new_app ~jobs c db newcomer)
      in
      let seq = run 1 in
      check_bool "finds the Fig 3 race" true (seq <> []);
      check_bool "jobs=3 identical" true (seq = run 3))

let audit_all_jobs_deterministic =
  test "audit_all: threats, undecided and failures identical across job counts" (fun () ->
      let apps = Lazy.force demo_apps in
      let run jobs =
        let c = Detector.create Detector.offline_config in
        let r = Detector.audit_all ~jobs c apps in
        ( List.map Threat.to_string r.Detector.threats,
          r.Detector.undecided,
          r.Detector.failures,
          r.Detector.retried )
      in
      let ((threats1, undecided1, failures1, retried1) as seq) = run 1 in
      check_bool "clean run: no undecided pairs" true (undecided1 = 0);
      check_bool "clean run: no failures" true (failures1 = [] && retried1 = 0);
      check_bool "non-trivial workload" true (threats1 <> []);
      check_bool "jobs=4 identical audit" true (seq = run 4))

let capture_isolates_exceptions =
  test "Schedule.capture: a raising item becomes a structured Error" (fun () ->
      (match Schedule.capture (fun () -> 42) with
      | Ok n -> check_int "value passes through" 42 n
      | Error _ -> Alcotest.fail "no error expected");
      match Schedule.capture (fun () -> failwith "boom") with
      | Ok _ -> Alcotest.fail "expected Error"
      | Error info ->
        check_bool "exception recorded" true
          (String.length info.Schedule.exn > 0
          && String.length ("x" ^ info.Schedule.backtrace) > 0))

let default_budgets_leave_corpus_decided =
  test "corpus audit under default budgets reports zero undecided pairs" (fun () ->
      let apps =
        List.map
          (fun (e : Homeguard_corpus.App_entry.t) ->
            extract ~name:e.Homeguard_corpus.App_entry.name e.Homeguard_corpus.App_entry.source)
          Homeguard_corpus.Corpus.audit_apps
      in
      let c = Detector.create Detector.offline_config in
      let r = Detector.audit_all ~jobs:1 c apps in
      check_bool "zero undecided" true (r.Detector.undecided = 0);
      check_bool "zero undecided solves" true (c.Detector.undecided_solves = 0);
      check_bool "zero failures" true (r.Detector.failures = []);
      check_bool "threats found" true (r.Detector.threats <> []))

let merged_ctx_counts =
  test "parallel run merges per-domain solver calls into the caller's ctx" (fun () ->
      let apps = Lazy.force demo_apps in
      let c = Detector.create Detector.offline_config in
      ignore (Detector.detect_all ~jobs:4 c apps);
      check_bool "solver calls visible after merge" true (c.Detector.solver_calls > 0);
      check_bool "overlap cache merged" true (Hashtbl.length c.Detector.overlap_cache > 0))

let tests =
  [
    batches_partition;
    map_batches_matches_sequential;
    map_batches_uses_every_item;
    plan_is_sound;
    detect_all_jobs_deterministic;
    detect_all_matches_unplanned_pairwise;
    detect_new_app_jobs_deterministic;
    audit_all_jobs_deterministic;
    capture_isolates_exceptions;
    default_budgets_leave_corpus_decided;
    merged_ctx_counts;
  ]
