(** Configuration-collection tests: URI codec, instrumentation pass,
    messaging latency model and the recorder. *)

module Config_uri = Homeguard_config.Config_uri
module Instrument = Homeguard_config.Instrument
module Messaging = Homeguard_config.Messaging
module Recorder = Homeguard_config.Recorder
module Rule = Homeguard_rules.Rule
module Term = Homeguard_solver.Term
module Parser = Homeguard_groovy.Parser
module Ast = Homeguard_groovy.Ast
open Helpers

let sample_id = String.make 32 'a'
let other_id = "0123456789abcdef0123456789abcdef"

let uri_roundtrip_basic =
  test "URI encode/decode round-trip" (fun () ->
      let u =
        {
          Config_uri.app_name = "ComfortTV";
          devices = [ ("tv1", sample_id); ("window1", other_id) ];
          values = [ ("threshold1", "30") ];
        }
      in
      check_bool "roundtrip" true (Config_uri.decode (Config_uri.encode u) = u))

let uri_format_matches_paper =
  test "URI format matches Listing 3 / Fig 7a" (fun () ->
      let u =
        { Config_uri.app_name = "A"; devices = [ ("d", sample_id) ]; values = [ ("v", "1") ] }
      in
      check_string "format"
        (Printf.sprintf "http://my.com/appname:A/d:%s/v:1/" sample_id)
        (Config_uri.encode u))

let uri_rejects_garbage =
  test "URI decoding rejects malformed input" (fun () ->
      List.iter
        (fun s ->
          match Config_uri.decode s with
          | exception Config_uri.Malformed _ -> ()
          | _ -> Alcotest.failf "expected Malformed on %s" s)
        [ "https://other.com/appname:A/"; "http://my.com/noappname/"; "http://my.com/devonly" ])

let gen_uri =
  let open QCheck2.Gen in
  let name = string_size ~gen:(char_range 'a' 'z') (int_range 1 10) in
  let hex_id =
    map
      (fun n -> Homeguard_st.Device.id_of_seed (string_of_int n))
      (int_bound 10_000)
  in
  let* app_name = name in
  let* devices = list_size (int_bound 4) (pair name hex_id) in
  let* values = list_size (int_bound 4) (pair name (map string_of_int (int_bound 999))) in
  return { Config_uri.app_name; devices; values }

let uri_roundtrip_prop =
  qtest "URI round-trip property" gen_uri (fun u ->
      Config_uri.decode (Config_uri.encode u) = u)

(* -- instrumentation -------------------------------------------------------- *)

let comfort_src = (Option.get (Homeguard_corpus.Corpus.find "ComfortTV")).Homeguard_corpus.App_entry.source

let instrumented_parses =
  test "instrumented source parses" (fun () ->
      let src = Instrument.instrument_source ~app_name:"ComfortTV" comfort_src in
      ignore (Parser.parse src))

let instrumented_has_phone_input =
  test "instrumentation adds the patchedphone input (Listing 3 line 3)" (fun () ->
      let prog =
        Instrument.instrument_program ~app_name:"ComfortTV" (Parser.parse comfort_src)
      in
      let inputs = Homeguard_symexec.Extract.scan_inputs prog in
      check_bool "patchedphone present" true
        (List.exists (fun i -> i.Rule.var = "patchedphone") inputs))

let instrumented_updated_collects =
  test "updated() gains the collection preamble" (fun () ->
      let prog =
        Instrument.instrument_program ~app_name:"ComfortTV" (Parser.parse comfort_src)
      in
      match Ast.find_method prog "updated" with
      | None -> Alcotest.fail "no updated method"
      | Some m ->
        let calls =
          Ast.fold_exprs_stmts
            (fun acc e ->
              match e with Ast.Call (None, n, _) -> n :: acc | _ -> acc)
            [] m.Ast.body
        in
        check_bool "collectConfigInfo called" true (List.mem "collectConfigInfo" calls))

let instrumented_helper_sends_sms =
  test "collectConfigInfo helper is appended and sends SMS" (fun () ->
      let prog =
        Instrument.instrument_program ~app_name:"ComfortTV" (Parser.parse comfort_src)
      in
      match Ast.find_method prog "collectConfigInfo" with
      | None -> Alcotest.fail "helper missing"
      | Some m ->
        let calls =
          Ast.fold_exprs_stmts
            (fun acc e ->
              match e with Ast.Call (None, n, _) -> n :: acc | _ -> acc)
            [] m.Ast.body
        in
        check_bool "sendSmsMessage" true (List.mem "sendSmsMessage" calls))

let instrumented_http_variant =
  test "HTTP transport variant posts instead" (fun () ->
      let prog =
        Instrument.instrument_program ~transport:`Http ~app_name:"ComfortTV"
          (Parser.parse comfort_src)
      in
      match Ast.find_method prog "collectConfigInfo" with
      | None -> Alcotest.fail "helper missing"
      | Some m ->
        let calls =
          Ast.fold_exprs_stmts
            (fun acc e ->
              match e with Ast.Call (None, n, _) -> n :: acc | _ -> acc)
            [] m.Ast.body
        in
        check_bool "httpPost" true (List.mem "httpPost" calls))

let instrumentation_preserves_rules =
  test "instrumentation does not change extracted automation rules" (fun () ->
      let before = extract ~name:"ComfortTV" comfort_src in
      let after =
        extract ~name:"ComfortTV"
          (Instrument.instrument_source ~app_name:"ComfortTV" comfort_src)
      in
      (* the collection code adds messaging sinks in updated(), but the
         event-triggered automation rules must be identical *)
      let event_rules app =
        List.filter
          (fun (r : Rule.t) ->
            match r.Rule.trigger with Rule.Event _ -> true | Rule.Scheduled _ -> false)
          app.Rule.rules
      in
      check_bool "same automation rules" true (event_rules before = event_rules after))

let missing_updated_gets_created =
  test "apps without updated() get one" (fun () ->
      let src = {|
input "sw1", "capability.switch"
def installed() { subscribe(sw1, "switch", h) }
def h(evt) { sw1.off() }
|} in
      let prog = Instrument.instrument_program ~app_name:"X" (Parser.parse src) in
      check_bool "updated created" true (Ast.find_method prog "updated" <> None))

let collected_uri_matches =
  test "collected_uri mirrors the instrumented app's output" (fun () ->
      let uri =
        Instrument.collected_uri ~app_name:"ComfortTV"
          ~device_bindings:[ ("tv1", sample_id) ]
          ~value_bindings:[ ("threshold1", "30") ]
      in
      let decoded = Config_uri.decode uri in
      check_string "app" "ComfortTV" decoded.Config_uri.app_name;
      check_bool "device" true (decoded.Config_uri.devices = [ ("tv1", sample_id) ]);
      check_bool "value" true (decoded.Config_uri.values = [ ("threshold1", "30") ]))

(* -- messaging ---------------------------------------------------------------- *)

let sms_latency_band =
  test "SMS latency averages near the paper's 3120ms" (fun () ->
      let m = Messaging.create ~seed:11 () in
      let mean = Messaging.measure_mean m Messaging.Sms ~trials:100 in
      check_bool "in band" true (mean > 2_500.0 && mean < 3_800.0))

let http_latency_band =
  test "HTTP latency averages near the paper's 1058ms" (fun () ->
      let m = Messaging.create ~seed:11 () in
      let mean = Messaging.measure_mean m Messaging.Http ~trials:100 in
      check_bool "in band" true (mean > 800.0 && mean < 1_400.0))

let http_faster_than_sms =
  test "HTTP beats SMS (the paper's transport comparison)" (fun () ->
      let m = Messaging.create ~seed:5 () in
      let sms = Messaging.measure_mean m Messaging.Sms ~trials:50 in
      let http = Messaging.measure_mean m Messaging.Http ~trials:50 in
      check_bool "http < sms" true (http < sms))

let messaging_deterministic =
  test "latencies are reproducible by seed" (fun () ->
      let run () = Messaging.measure_mean (Messaging.create ~seed:3 ()) Messaging.Sms ~trials:20 in
      check_bool "equal" true (run () = run ()))

let loss_injection =
  test "loss injection drops messages" (fun () ->
      let m = Messaging.create ~seed:3 ~loss_per_thousand:500 () in
      let delivered = ref 0 in
      for _ = 1 to 100 do
        match Messaging.send m Messaging.Http "u" with
        | Some _ -> incr delivered
        | None -> ()
      done;
      check_bool "some lost" true (Messaging.lost_count m > 0);
      check_bool "some delivered" true (!delivered > 0))

let retry_lossless_single_attempt =
  test "send_with_retry: lossless transport delivers on the first attempt" (fun () ->
      let m = Messaging.create ~seed:9 () in
      match Messaging.send_with_retry m Messaging.Http "u" with
      | Some (total, attempts) ->
        check_bool "one attempt" true (attempts = 1);
        check_bool "no backoff added" true (total > 0.0 && total < 5_000.0)
      | None -> Alcotest.fail "lossless send cannot fail")

let retry_raises_delivery_probability =
  test "send_with_retry: backoff retries lift delivery under 50% loss" (fun () ->
      let trials = 200 in
      let count send =
        let m = Messaging.create ~seed:21 ~loss_per_thousand:500 () in
        let ok = ref 0 in
        for _ = 1 to trials do
          if send m then incr ok
        done;
        !ok
      in
      let single = count (fun m -> Messaging.send m Messaging.Http "u" <> None) in
      let retried =
        count (fun m ->
            Messaging.send_with_retry ~max_attempts:4 ~backoff_ms:100.0 m Messaging.Http "u"
            <> None)
      in
      (* per-attempt loss 1/2 => expected delivery ~1 - 2^-4 = 93.75% *)
      check_bool "retries beat single sends" true (retried > single);
      check_bool "near the expected probability" true
        (float_of_int retried /. float_of_int trials >= 0.85))

let retry_accounts_backoff_and_is_deterministic =
  test "send_with_retry: totals include backoff and reproduce by seed" (fun () ->
      let run () =
        let m = Messaging.create ~seed:3 ~loss_per_thousand:500 () in
        let acc = ref [] in
        for _ = 1 to 50 do
          acc := Messaging.send_with_retry ~backoff_ms:250.0 m Messaging.Http "u" :: !acc
        done;
        !acc
      in
      let a = run () and b = run () in
      check_bool "deterministic" true (a = b);
      List.iter
        (function
          | Some (total, attempts) when attempts >= 2 ->
            (* attempts-1 jittered waits, each in [base, cap] *)
            let waits = float_of_int (attempts - 1) in
            check_bool "total covers minimum backoff" true (total >= waits *. 250.0)
          | _ -> ())
        a)

let retry_backoff_is_capped =
  test "send_with_retry: backoff never exceeds the cap per wait" (fun () ->
      (* loss 100%: every attempt fails, so the total is exactly the sum
         of the (attempts-1 = 9) jittered waits *)
      let m = Messaging.create ~seed:5 ~loss_per_thousand:1000 () in
      let r =
        Messaging.send_with_retry ~max_attempts:10 ~backoff_ms:200.0 ~max_backoff_ms:600.0 m
          Messaging.Http "u"
      in
      check_bool "all lost" true (r = None);
      (* re-run observing each wait via a tiny cap equal to the base:
         jitter collapses, waits become exactly base *)
      let m = Messaging.create ~seed:5 ~loss_per_thousand:500 () in
      let deterministic_totals = ref true in
      for _ = 1 to 50 do
        match
          Messaging.send_with_retry ~max_attempts:6 ~backoff_ms:100.0 ~max_backoff_ms:100.0 m
            Messaging.Http "u"
        with
        | Some (total, attempts) when attempts >= 2 ->
          let backoff = float_of_int (attempts - 1) *. 100.0 in
          (* total = delivery latency + exact backoff; latency < 5s *)
          if not (total >= backoff && total <= backoff +. 5_000.0) then
            deterministic_totals := false
        | _ -> ()
      done;
      check_bool "cap = base collapses jitter to exact waits" true !deterministic_totals)

let retry_fleet_desynchronizes =
  test "send_with_retry: differently-seeded homes draw different backoffs" (fun () ->
      (* a fleet of homes loses the same broadcast; decorrelated jitter
         should spread their retry schedules instead of thundering back
         in lockstep *)
      let schedule seed =
        let m = Messaging.create ~seed ~loss_per_thousand:900 () in
        let acc = ref [] in
        for _ = 1 to 20 do
          acc := Messaging.send_with_retry ~max_attempts:8 m Messaging.Http "u" :: !acc
        done;
        !acc
      in
      let distinct =
        [ 11; 12; 13; 14 ] |> List.map schedule |> List.sort_uniq compare |> List.length
      in
      check_bool "four seeds give four schedules" true (distinct = 4))

let retry_respects_deadline =
  test "send_with_retry: backoff spend never exceeds the caller's deadline" (fun () ->
      (* 100% loss: every attempt fails, so the only question is how
         long we keep retrying. With waits of exactly 100 ms (cap =
         base collapses jitter) and a 250 ms deadline, at most two
         waits fit; without a deadline all 9 waits are spent *)
      let attempt_with deadline_ms =
        let m = Messaging.create ~seed:7 ~loss_per_thousand:1000 () in
        Messaging.send_with_retry ~max_attempts:10 ~backoff_ms:100.0 ~max_backoff_ms:100.0
          ?deadline_ms m Messaging.Http "u"
      in
      check_bool "all lost either way" true
        (attempt_with None = None && attempt_with (Some 250.0) = None);
      (* deadline caps delivered totals too: under 50% loss, every
         successful delivery's backoff spend fits inside the deadline *)
      let m = Messaging.create ~seed:7 ~loss_per_thousand:500 () in
      let within = ref true in
      for _ = 1 to 100 do
        match
          Messaging.send_with_retry ~max_attempts:8 ~backoff_ms:100.0 ~max_backoff_ms:100.0
            ~deadline_ms:250.0 m Messaging.Http "u"
        with
        | Some (_total, attempts) ->
          (* attempts - 1 waits of exactly 100 ms = the backoff spend *)
          let backoff = float_of_int (attempts - 1) *. 100.0 in
          if backoff > 250.0 then within := false
        | None -> ()
      done;
      check_bool "backoff spend bounded by the deadline" true !within;
      (* a zero deadline still allows the free first attempt *)
      let m = Messaging.create ~seed:9 () in
      check_bool "first attempt is free" true
        (Messaging.send_with_retry ~deadline_ms:0.0 m Messaging.Http "u" <> None))

(* -- recorder ------------------------------------------------------------------ *)

let recorder_same_device =
  test "recorder same-device is id equality" (fun () ->
      let r = Recorder.create () in
      Recorder.record r
        { Recorder.app_name = "A"; devices = [ ("sw", sample_id) ]; values = [] };
      Recorder.record r
        { Recorder.app_name = "B"; devices = [ ("light", sample_id); ("other", other_id) ]; values = [] };
      let appA = { Rule.name = "A"; description = ""; inputs = []; rules = []; uses_web_services = false } in
      let appB = { appA with Rule.name = "B" } in
      check_bool "same id" true (Recorder.same_device r appA "sw" appB "light");
      check_bool "different id" false (Recorder.same_device r appA "sw" appB "other"))

let recorder_values_become_constraints =
  test "recorded values become solver constraints" (fun () ->
      let r = Recorder.create () in
      Recorder.record_uri r
        (Config_uri.decode
           (Instrument.collected_uri ~app_name:"A" ~device_bindings:[]
              ~value_bindings:[ ("threshold1", "30"); ("modeName", "Night") ]));
      let appA = { Rule.name = "A"; description = ""; inputs = []; rules = []; uses_web_services = false } in
      let cs = Recorder.app_constraints r appA in
      check_bool "int value" true (List.mem ("threshold1", Term.Int 30) cs);
      check_bool "string value" true (List.mem ("modeName", Term.Str "Night") cs))

let recorder_plain_decimal_only =
  test "record_uri parses plain decimals only, not OCaml literal forms" (fun () ->
      let r = Recorder.create () in
      Recorder.record_uri r
        (Config_uri.decode
           (Instrument.collected_uri ~app_name:"A" ~device_bindings:[]
              ~value_bindings:
                [
                  ("hex", "0x1f");
                  ("bin", "0b10");
                  ("sep", "1_000");
                  ("dec", "30");
                  ("neg", "-5");
                ]));
      let appA =
        { Rule.name = "A"; description = ""; inputs = []; rules = []; uses_web_services = false }
      in
      let cs = Recorder.app_constraints r appA in
      (* "0x1f" means the string the user typed, not 31 *)
      check_bool "hex stays a string" true (List.mem ("hex", Term.Str "0x1f") cs);
      check_bool "binary stays a string" true (List.mem ("bin", Term.Str "0b10") cs);
      check_bool "underscores stay a string" true (List.mem ("sep", Term.Str "1_000") cs);
      check_bool "decimal is numeric" true (List.mem ("dec", Term.Int 30) cs);
      check_bool "negative decimal is numeric" true (List.mem ("neg", Term.Int (-5)) cs);
      check_bool "empty rejected" true (Recorder.decimal_of_string_opt "" = None);
      check_bool "bare minus rejected" true (Recorder.decimal_of_string_opt "-" = None);
      check_bool "trailing junk rejected" true (Recorder.decimal_of_string_opt "12a" = None))

let recorder_update_replaces =
  test "re-recording an app replaces its config" (fun () ->
      let r = Recorder.create () in
      Recorder.record r { Recorder.app_name = "A"; devices = [ ("sw", sample_id) ]; values = [] };
      Recorder.record r { Recorder.app_name = "A"; devices = [ ("sw", other_id) ]; values = [] };
      check_bool "latest id wins" true (Recorder.device_id r "A" "sw" = Some other_id))

let tests =
  [
    uri_roundtrip_basic;
    uri_format_matches_paper;
    uri_rejects_garbage;
    uri_roundtrip_prop;
    instrumented_parses;
    instrumented_has_phone_input;
    instrumented_updated_collects;
    instrumented_helper_sends_sms;
    instrumented_http_variant;
    instrumentation_preserves_rules;
    missing_updated_gets_created;
    collected_uri_matches;
    sms_latency_band;
    http_latency_band;
    http_faster_than_sms;
    messaging_deterministic;
    loss_injection;
    retry_lossless_single_attempt;
    retry_raises_delivery_probability;
    retry_accounts_backoff_and_is_deterministic;
    retry_backoff_is_capped;
    retry_fleet_desynchronizes;
    retry_respects_deadline;
    recorder_same_device;
    recorder_values_become_constraints;
    recorder_plain_decimal_only;
    recorder_update_replaces;
  ]
