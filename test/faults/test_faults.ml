(** Fault-injection suite: audits under deterministic injected solver
    failures (crash / budget-exhaust / timeout).

    Runs as its own executable so the global {!Fault} hook never leaks
    into the main suite. The injection rate and seed are overridable via
    [HOMEGUARD_FAULT_RATE] / [HOMEGUARD_FAULT_SEED] (CI runs a second,
    hotter configuration); every assertion below must hold for any rate,
    because fault selection is a pure function of the armed seed and the
    solve key — never of call order or domain count. *)

module Rule = Homeguard_rules.Rule
module Extract = Homeguard_symexec.Extract
module Detector = Homeguard_detector.Detector
module Threat = Homeguard_detector.Threat
module Fault = Homeguard_solver.Fault

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> ( match int_of_string_opt s with Some n -> n | None -> default)
  | None -> default

let rate = env_int "HOMEGUARD_FAULT_RATE" 200
let seed = env_int "HOMEGUARD_FAULT_SEED" 42

let demo_apps =
  lazy
    (List.map
       (fun (e : Homeguard_corpus.App_entry.t) ->
         (Extract.extract_source ~name:e.Homeguard_corpus.App_entry.name
            e.Homeguard_corpus.App_entry.source)
           .Extract.app)
       Homeguard_corpus.Apps_demo.all)

let audit ~jobs () =
  let c = Detector.create Detector.offline_config in
  Detector.audit_all ~jobs c (Lazy.force demo_apps)

(* Comparable snapshot of an audit: threat strings with severities,
   undecided count, failure pairs+messages, retry count. *)
let snapshot (r : Detector.audit_result) =
  ( List.map
      (fun (t : Threat.t) ->
        (Threat.to_string t, Threat.severity_to_string t.Threat.severity))
      r.Detector.threats,
    r.Detector.undecided,
    List.map (fun (f : Detector.failure) -> (f.Detector.pair, f.Detector.exn)) r.Detector.failures,
    r.Detector.retried )

let clean_snapshot = lazy (Fault.disarm (); snapshot (audit ~jobs:1 ()))

let with_faults ?once mode f =
  Fun.protect ~finally:Fault.disarm (fun () ->
      Fault.arm ?once ~seed ~rate_per_thousand:rate mode;
      f ())

let check_bool = Alcotest.(check bool)
let test name f = Alcotest.test_case name `Quick f

let subset_of ~clean threats =
  List.for_all (fun t -> List.mem t clean) threats

(* 1. A worker crash never tears down the audit: with every solve
   raising, the audit still completes, every solver-dependent pair lands
   in the structured error summary, and surviving threats are a subset
   of the clean run's. *)
let crash_isolation_total =
  test "audit completes when every solve crashes; failures are structured" (fun () ->
      let clean_threats, _, _, _ = Lazy.force clean_snapshot in
      Fun.protect ~finally:Fault.disarm (fun () ->
          Fault.arm ~seed ~rate_per_thousand:1000 Fault.Raise;
          let r = audit ~jobs:1 () in
          check_bool "some pairs failed" true (r.Detector.failures <> []);
          check_bool "failures were retried first" true
            (r.Detector.retried >= List.length r.Detector.failures);
          List.iter
            (fun (f : Detector.failure) ->
              check_bool "pair label present" true
                (String.length f.Detector.pair > 0
                && String.index_opt f.Detector.pair '~' <> None);
              check_bool "injected exception recorded" true
                (String.length f.Detector.exn > 0))
            r.Detector.failures;
          let faulty =
            List.map
              (fun (t : Threat.t) ->
                (Threat.to_string t, Threat.severity_to_string t.Threat.severity))
              r.Detector.threats
          in
          check_bool "no invented threats" true (subset_of ~clean:clean_threats faulty)))

(* 2. Determinism under faults: identical threat list, undecided set and
   error summary at jobs=1 and jobs=4, for the env-configured rate, in
   both crash and exhaust modes. *)
let deterministic_across_jobs mode label =
  test
    (Printf.sprintf "jobs=1 and jobs=4 agree under injected %s faults" label)
    (fun () ->
      with_faults mode (fun () ->
          let s1 = snapshot (audit ~jobs:1 ()) in
          Fault.disarm ();
          Fault.arm ~seed ~rate_per_thousand:rate mode;
          let s4 = snapshot (audit ~jobs:4 ()) in
          check_bool "identical audits" true (s1 = s4)))

(* 3. Exhaust faults in once-mode are fully absorbed by the escalation
   retry: the second solve of each tripped key decides, so the audit
   matches the clean run exactly (and records the escalations). *)
let escalation_absorbs_transient_exhaustion =
  test "once-mode exhaust faults: escalation retry restores the clean audit" (fun () ->
      let clean = Lazy.force clean_snapshot in
      with_faults ~once:true Fault.Exhaust (fun () ->
          let c = Detector.create Detector.offline_config in
          let r = Detector.audit_all ~jobs:1 c (Lazy.force demo_apps) in
          check_bool "audit equals the clean run" true (snapshot r = clean);
          check_bool "undecided fully recovered" true (r.Detector.undecided = 0);
          if rate > 0 then
            check_bool "escalations happened" true (c.Detector.escalations > 0)))

(* 4. Crash faults in once-mode exercise the coordinator retry path:
   first attempts crash, retries run with the fired keys spent. The
   audit completes deterministically whatever subset of retries
   succeeds. *)
let coordinator_retry_under_transient_crashes =
  test "once-mode crashes: coordinator retries run and audit completes" (fun () ->
      with_faults ~once:true Fault.Raise (fun () ->
          let r1 = snapshot (audit ~jobs:1 ()) in
          let _, _, failures, retried = r1 in
          if rate > 0 then check_bool "some pair was retried" true (retried > 0);
          check_bool "retries recovered at least one pair" true
            (List.length failures < retried || retried = 0);
          Fault.disarm ();
          Fault.arm ~once:true ~seed ~rate_per_thousand:rate Fault.Raise;
          check_bool "jobs=4 identical" true (snapshot (audit ~jobs:4 ()) = r1)))

(* 5. Timeout-mode faults surface as Unknown (Deadline), i.e. undecided
   threats or absorbed escalations — never as silent "no threat" and
   never as a crash. *)
let timeouts_never_crash =
  test "timeout faults yield a completed audit with no failures" (fun () ->
      with_faults Fault.Timeout (fun () ->
          let r = audit ~jobs:1 () in
          check_bool "no crashes from timeouts" true (r.Detector.failures = [])))

(* 6. Disarming restores the clean audit bit-for-bit. *)
let disarm_restores_clean =
  test "disarm restores the clean audit" (fun () ->
      with_faults Fault.Raise (fun () -> ignore (audit ~jobs:1 ()));
      check_bool "clean again" true (snapshot (audit ~jobs:1 ()) = Lazy.force clean_snapshot))

let () =
  Printf.printf "fault injection: rate=%d/1000 seed=%d\n%!" rate seed;
  Alcotest.run "homeguard-faults"
    [
      ( "faults",
        [
          crash_isolation_total;
          deterministic_across_jobs Fault.Raise "crash";
          deterministic_across_jobs Fault.Exhaust "exhaust";
          escalation_absorbs_transient_exhaustion;
          coordinator_retry_under_transient_crashes;
          timeouts_never_crash;
          disarm_restores_clean;
        ] );
    ]
