(** Threat-detector tests: each CAI category on the paper's own
    examples, candidate filtering, device matching and solver reuse. *)

module Rule = Homeguard_rules.Rule
module Detector = Homeguard_detector.Detector
module Threat = Homeguard_detector.Threat
module Effects = Homeguard_detector.Effects
module Channels = Homeguard_detector.Channels
module Formula = Homeguard_solver.Formula
module Term = Homeguard_solver.Term
open Helpers

let ctx () = Detector.create Detector.offline_config

let tagged app = List.map (fun r -> (app, r)) app.Rule.rules

let detect_between app1 app2 =
  let c = ctx () in
  List.concat_map
    (fun p1 -> List.concat_map (fun p2 -> Detector.detect_pair c p1 p2) (tagged app2))
    (tagged app1)

let has cat threats = List.exists (fun (t : Threat.t) -> t.Threat.category = cat) threats

let cats threats =
  List.sort_uniq compare (List.map (fun (t : Threat.t) -> t.Threat.category) threats)

(* -- paper examples -------------------------------------------------------- *)

let fig3_actuator_race =
  test "Fig 3: ComfortTV vs ColdDefender is an Actuator Race" (fun () ->
      let threats = detect_between (extract_corpus "ComfortTV") (extract_corpus "ColdDefender") in
      check_bool "AR found" true (has Threat.AR threats);
      let ar = List.find (fun (t : Threat.t) -> t.Threat.category = Threat.AR) threats in
      check_bool "witness provided" true (ar.Threat.witness <> None))

let fig4_covert_triggering =
  test "Fig 4: CatchLiveShow covertly triggers ComfortTV" (fun () ->
      let threats =
        detect_between (extract_corpus "CatchLiveShow") (extract_corpus "ComfortTV")
      in
      check_bool "CT found" true (has Threat.CT threats);
      let ct = List.find (fun (t : Threat.t) -> t.Threat.category = Threat.CT) threats in
      check_string "direction: CatchLiveShow first" "CatchLiveShow"
        ct.Threat.app1.Rule.name)

let fig5_disabling_condition =
  test "Fig 5: NightCare disables BurglarFinder's condition" (fun () ->
      let threats = detect_between (extract_corpus "NightCare") (extract_corpus "BurglarFinder") in
      check_bool "DC found" true (has Threat.DC threats))

let self_disabling_energy =
  test "§VIII-B(5): EnergySaver self-disables ItsTooHot" (fun () ->
      let threats = detect_between (extract_corpus "ItsTooHot") (extract_corpus "EnergySaver") in
      check_bool "SD found" true (has Threat.SD threats);
      check_bool "CT found (AC raises power)" true (has Threat.CT threats))

let loop_triggering_light =
  test "§VIII-B(6): LightUpTheNight loop-triggers itself across rules" (fun () ->
      let app = extract_corpus "LightUpTheNight" in
      check_int "two rules" 2 (List.length app.Rule.rules);
      let c = ctx () in
      let threats =
        match app.Rule.rules with
        | [ r1; r2 ] -> Detector.detect_pair c (app, r1) (app, r2)
        | _ -> []
      in
      (* same-app pairs are also analyzed (paper §III) *)
      check_bool "LT found" true (has Threat.LT threats))

let covert_rule_switch_mode_lock =
  test "§VIII-B(1): SwitchChangesMode + MakeItSo covert rule" (fun () ->
      let threats =
        detect_between (extract_corpus "SwitchChangesMode") (extract_corpus "MakeItSo")
      in
      check_bool "CT via mode" true (has Threat.CT threats))

let nfc_vs_lock_it =
  test "§VIII-B(3): NFCTagToggle races LockItWhenILeave on the lock" (fun () ->
      let threats =
        detect_between (extract_corpus "NFCTagToggle") (extract_corpus "LockItWhenILeave")
      in
      (* the unlock branch races/undoes the automatic lock *)
      check_bool "some threat" true (threats <> []);
      check_bool "GC or AR or CT" true
        (has Threat.GC threats || has Threat.AR threats || has Threat.CT threats
        || has Threat.EC threats))

let let_there_be_dark_races =
  test "§VIII-B(4): LetThereBeDark races other light controllers" (fun () ->
      let threats =
        detect_between (extract_corpus "LetThereBeDark") (extract_corpus "UndeadEarlyWarning")
      in
      check_bool "AR candidate pair detected" true
        (has Threat.AR threats || has Threat.CT threats || has Threat.EC threats))

(* -- synthetic unit cases -------------------------------------------------- *)

let mk_input ?(title = None) var input_type = { Rule.var; input_type; title; multiple = false }

let mk_app name inputs rules =
  { Rule.name; description = ""; inputs; rules; uses_web_services = false }

let dev_action ?(when_ = 0) var command =
  { Rule.target = Rule.Act_device var; command; params = []; when_; period = 0; action_data = [] }

let simple_rule app_name id ~trigger_var ~attr ~value ~actions =
  {
    Rule.app_name;
    rule_id = id;
    trigger =
      Rule.Event
        {
          subject = Rule.Device trigger_var;
          attribute = attr;
          constraint_ = Formula.eq (Term.Var (trigger_var ^ "." ^ attr)) (Term.Str value);
        };
    condition = { Rule.data = []; predicate = Formula.True };
    actions;
  }

let ar_same_trigger_detected =
  test "AR: same trigger, opposite commands, overlapping conditions" (fun () ->
      let app1 =
        mk_app "A"
          [ mk_input "m" "capability.motionSensor"; mk_input "sw" "capability.switch" ]
          [ simple_rule "A" "A#1" ~trigger_var:"m" ~attr:"motion" ~value:"active"
              ~actions:[ dev_action "sw" "on" ] ]
      in
      let app2 =
        mk_app "B"
          [ mk_input "m2" "capability.motionSensor"; mk_input "sw2" "capability.switch" ]
          [ simple_rule "B" "B#1" ~trigger_var:"m2" ~attr:"motion" ~value:"active"
              ~actions:[ dev_action "sw2" "off" ] ]
      in
      check_bool "AR" true (has Threat.AR (detect_between app1 app2)))

let ar_disjoint_conditions_not_detected =
  test "AR: contradictory commands but disjoint conditions -> no threat" (fun () ->
      let rule app id pred cmd =
        {
          (simple_rule app id ~trigger_var:"m" ~attr:"motion" ~value:"active"
             ~actions:[ dev_action "sw" cmd ])
          with
          Rule.condition = { Rule.data = []; predicate = pred };
        }
      in
      let app1 =
        mk_app "A"
          [ mk_input "m" "capability.motionSensor"; mk_input "sw" "capability.switch";
            mk_input "t" "capability.temperatureMeasurement" ]
          [ rule "A" "A#1" (Formula.gt (Term.Var "t.temperature") (Term.Int 80)) "on" ]
      in
      let app2 =
        mk_app "B"
          [ mk_input "m" "capability.motionSensor"; mk_input "sw" "capability.switch";
            mk_input "t" "capability.temperatureMeasurement" ]
          [ rule "B" "B#1" (Formula.lt (Term.Var "t.temperature") (Term.Int 40)) "off" ]
      in
      check_bool "no AR (temperature ranges disjoint)" false
        (has Threat.AR (detect_between app1 app2)))

let ar_different_devices_not_detected =
  test "AR: opposite commands on different device classes -> no race" (fun () ->
      let app1 =
        mk_app "A"
          [ mk_input "m" "capability.motionSensor";
            mk_input ~title:(Some "Desk lamp") "sw" "capability.switch" ]
          [ simple_rule "A" "A#1" ~trigger_var:"m" ~attr:"motion" ~value:"active"
              ~actions:[ dev_action "sw" "on" ] ]
      in
      let app2 =
        mk_app "B"
          [ mk_input "m" "capability.motionSensor";
            mk_input ~title:(Some "Ceiling fan") "sw" "capability.switch" ]
          [ simple_rule "B" "B#1" ~trigger_var:"m" ~attr:"motion" ~value:"active"
              ~actions:[ dev_action "sw" "off" ] ]
      in
      check_bool "no AR" false (has Threat.AR (detect_between app1 app2)))

let gc_heater_vs_window =
  test "GC: heater on vs window open conflict over temperature" (fun () ->
      let app1 =
        mk_app "HeatApp"
          [ mk_input "m" "capability.motionSensor";
            mk_input ~title:(Some "Space heater") "heater" "capability.switch" ]
          [ simple_rule "HeatApp" "H#1" ~trigger_var:"m" ~attr:"motion" ~value:"active"
              ~actions:[ dev_action "heater" "on" ] ]
      in
      let app2 =
        mk_app "WindowApp"
          [ mk_input "c" "capability.contactSensor";
            mk_input ~title:(Some "Window opener") "window" "capability.switch" ]
          [ simple_rule "WindowApp" "W#1" ~trigger_var:"c" ~attr:"contact" ~value:"open"
              ~actions:[ dev_action "window" "on" ] ]
      in
      let threats = detect_between app1 app2 in
      check_bool "GC over temperature" true
        (List.exists
           (fun (t : Threat.t) ->
             t.Threat.category = Threat.GC
             && String.length t.Threat.detail > 0
             &&
             let rec contains s sub i =
               i + String.length sub <= String.length s
               && (String.sub s i (String.length sub) = sub || contains s sub (i + 1))
             in
             contains t.Threat.detail "temperature" 0)
           threats))

let directional_ct =
  test "CT edges are directional" (fun () ->
      let trigger_app =
        mk_app "Trigger"
          [ mk_input "m" "capability.motionSensor";
            mk_input ~title:(Some "Hall light") "l1" "capability.switch" ]
          [ simple_rule "Trigger" "T#1" ~trigger_var:"m" ~attr:"motion" ~value:"active"
              ~actions:[ dev_action "l1" "on" ] ]
      in
      let reactive_app =
        mk_app "React"
          [ mk_input ~title:(Some "Hall light") "l2" "capability.switch";
            mk_input "siren" "capability.alarm" ]
          [ simple_rule "React" "R#1" ~trigger_var:"l2" ~attr:"switch" ~value:"on"
              ~actions:[ dev_action "siren" "siren" ] ]
      in
      let threats = detect_between trigger_app reactive_app in
      let ct = List.filter (fun (t : Threat.t) -> t.Threat.category = Threat.CT) threats in
      check_int "exactly one CT" 1 (List.length ct);
      check_string "direction" "Trigger" (List.hd ct).Threat.app1.Rule.name)

let ct_value_mismatch_filtered =
  test "CT: written value incompatible with trigger constraint -> filtered" (fun () ->
      let off_app =
        mk_app "OffApp"
          [ mk_input "m" "capability.motionSensor";
            mk_input ~title:(Some "Hall light") "l1" "capability.switch" ]
          [ simple_rule "OffApp" "O#1" ~trigger_var:"m" ~attr:"motion" ~value:"active"
              ~actions:[ dev_action "l1" "off" ] ]
      in
      let on_watcher =
        mk_app "Watcher"
          [ mk_input ~title:(Some "Hall light") "l2" "capability.switch";
            mk_input "siren" "capability.alarm" ]
          [ simple_rule "Watcher" "W#1" ~trigger_var:"l2" ~attr:"switch" ~value:"on"
              ~actions:[ dev_action "siren" "siren" ] ]
      in
      let threats = detect_between off_app on_watcher in
      check_bool "no CT (off cannot satisfy switch==on)" false (has Threat.CT threats))

let ec_dc_direction =
  test "EC vs DC depends on written value vs condition" (fun () ->
      let writer value =
        mk_app "Writer"
          [ mk_input "m" "capability.motionSensor";
            mk_input ~title:(Some "Porch light") "l1" "capability.switch" ]
          [ simple_rule "Writer" "W#1" ~trigger_var:"m" ~attr:"motion" ~value:"active"
              ~actions:[ dev_action "l1" value ] ]
      in
      let checker =
        mk_app "Checker"
          [ mk_input "c" "capability.contactSensor";
            mk_input ~title:(Some "Porch light") "l2" "capability.switch";
            mk_input "siren" "capability.alarm" ]
          [
            {
              (simple_rule "Checker" "C#1" ~trigger_var:"c" ~attr:"contact" ~value:"open"
                 ~actions:[ dev_action "siren" "siren" ])
              with
              Rule.condition =
                {
                  Rule.data = [];
                  predicate = Formula.eq (Term.Var "l2.switch") (Term.Str "on");
                };
            };
          ]
      in
      check_bool "on enables" true (has Threat.EC (detect_between (writer "on") checker));
      check_bool "off disables" true (has Threat.DC (detect_between (writer "off") checker)))

let condition_unifier_shared_device =
  test "condition interference unifies shared devices (regression)" (fun () ->
      (* Writer copies a shared temperature sensor's reading into the
         level of a shared dimmer; Checker's condition wants the dimmer
         above 50 while the same sensor reads below 10. Unified, the
         written value IS the cold reading, so the condition can only be
         disabled (DC). Without the unifier the action parameter was a
         free unconstrained variable and the solve was spuriously
         satisfiable (EC). *)
      let writer =
        let act =
          { (dev_action "d1" "setLevel") with Rule.params = [ Term.Var "t1.temperature" ] }
        in
        mk_app "Writer"
          [ mk_input "m" "capability.motionSensor";
            mk_input ~title:(Some "Desk lamp") "d1" "capability.switchLevel";
            mk_input "t1" "capability.temperatureMeasurement" ]
          [ simple_rule "Writer" "W#1" ~trigger_var:"m" ~attr:"motion" ~value:"active"
              ~actions:[ act ] ]
      in
      let checker =
        mk_app "Checker"
          [ mk_input "c" "capability.contactSensor";
            mk_input ~title:(Some "Desk lamp") "d2" "capability.switchLevel";
            mk_input "t2" "capability.temperatureMeasurement";
            mk_input "siren" "capability.alarm" ]
          [
            {
              (simple_rule "Checker" "C#1" ~trigger_var:"c" ~attr:"contact" ~value:"open"
                 ~actions:[ dev_action "siren" "siren" ])
              with
              Rule.condition =
                {
                  Rule.data = [];
                  predicate =
                    Formula.conj
                      [ Formula.gt (Term.Var "d2.level") (Term.Int 50);
                        Formula.lt (Term.Var "t2.temperature") (Term.Int 10) ];
                };
            };
          ]
      in
      let threats = detect_between writer checker in
      check_bool "DC (unified value cannot enable the condition)" true
        (has Threat.DC threats);
      check_bool "no spurious EC" false (has Threat.EC threats))

let symmetric_cache_hits_reverse_direction =
  test "overlap cache is direction-symmetric (regression)" (fun () ->
      let a = extract_corpus "ComfortTV" and b = extract_corpus "ColdDefender" in
      let c = ctx () in
      let p1 = (a, List.hd a.Rule.rules) and p2 = (b, List.hd b.Rule.rules) in
      ignore (Detector.conditions_overlap c p1 p2);
      let after_forward = c.Detector.solver_calls in
      check_bool "forward direction solved" true (after_forward > 0);
      ignore (Detector.conditions_overlap c p2 p1);
      check_int "reverse direction served from the cache" after_forward
        c.Detector.solver_calls;
      ignore (Detector.situations_overlap c p1 p2);
      let after_sit = c.Detector.solver_calls in
      check_bool "situation overlap is a distinct entry" true (after_sit > after_forward);
      ignore (Detector.situations_overlap c p2 p1);
      check_int "reverse situation also cached" after_sit c.Detector.solver_calls)

let solver_reuse_reduces_calls =
  test "memoization reduces solver calls (Fig 9 green lines)" (fun () ->
      let a = extract_corpus "ComfortTV" and b = extract_corpus "ColdDefender" in
      let run reuse =
        let c = Detector.create { Detector.offline_config with Detector.reuse } in
        List.iter
          (fun p1 -> List.iter (fun p2 -> ignore (Detector.detect_pair c p1 p2)) (tagged b))
          (tagged a);
        c.Detector.solver_calls
      in
      check_bool "reuse <= no-reuse" true (run true <= run false))

let same_rule_skipped =
  test "a rule is not compared against itself" (fun () ->
      let app = extract_corpus "ComfortTV" in
      let c = ctx () in
      let r = List.hd app.Rule.rules in
      check_int "no threats" 0 (List.length (Detector.detect_pair c (app, r) (app, r))))

(* -- classification and channels ------------------------------------------- *)

let classify_titles =
  test "switch classification uses input titles first" (fun () ->
      let app =
        mk_app "X"
          [ mk_input ~title:(Some "Window opener switch") "w" "capability.switch";
            mk_input ~title:(Some "Which TV?") "tv" "capability.switch" ]
          []
      in
      check_bool "window" true (Effects.classify app "w" = Effects.Window_opener);
      check_bool "tv" true (Effects.classify app "tv" = Effects.Tv))

let classify_from_var_name =
  test "switch classification falls back to variable names" (fun () ->
      let app = mk_app "X" [ mk_input "porchLight" "capability.switch" ] [] in
      check_bool "light" true (Effects.classify app "porchLight" = Effects.Light))

let classify_non_switch =
  test "non-switch capabilities classify by capability" (fun () ->
      let app =
        mk_app "X" [ mk_input "l" "capability.lock"; mk_input "t" "capability.thermostat" ] []
      in
      check_bool "lock" true (Effects.classify app "l" = Effects.Lock_device);
      check_bool "thermostat" true (Effects.classify app "t" = Effects.Thermostat_device))

let effects_of_heater =
  test "M_GC: heater on raises temperature and power" (fun () ->
      let app =
        mk_app "X" [ mk_input ~title:(Some "Space heater") "h" "capability.switch" ] []
      in
      let effs = Effects.effects_of_action app (dev_action "h" "on") in
      check_bool "temperature +" true
        (List.mem (Homeguard_st.Env_feature.Temperature, Effects.Incr) effs);
      check_bool "power +" true (List.mem (Homeguard_st.Env_feature.Power, Effects.Incr) effs))

let conflicting_goals_excludes_power =
  test "GC goal overlap excludes power/energy" (fun () ->
      let e1 = [ (Homeguard_st.Env_feature.Power, Effects.Incr) ] in
      let e2 = [ (Homeguard_st.Env_feature.Power, Effects.Decr) ] in
      check_int "no conflict" 0 (List.length (Effects.conflicting_goals e1 e2)))

let attribute_writes_fixed =
  test "attribute writes: fixed values from the registry" (fun () ->
      let app = mk_app "X" [ mk_input "l" "capability.lock" ] [] in
      match Channels.attribute_writes app (dev_action "l" "lock") with
      | [ { Channels.w_attr = "lock"; w_value = Some (Term.Str "locked"); _ } ] -> ()
      | _ -> Alcotest.fail "expected lock write")

let attribute_writes_param =
  test "attribute writes: parameterized values" (fun () ->
      let app = mk_app "X" [ mk_input "d" "capability.switchLevel" ] [] in
      let action =
        { (dev_action "d" "setLevel") with Rule.params = [ Term.Var "lvl" ] }
      in
      match Channels.attribute_writes app action with
      | [ { Channels.w_attr = "level"; w_value = Some (Term.Var "lvl"); _ } ] -> ()
      | _ -> Alcotest.fail "expected level write")

let direction_needs_analysis =
  test "direction_needs reads comparison atoms" (fun () ->
      let f = Formula.gt (Term.Var "s.temperature") (Term.Int 30) in
      check_bool "incr satisfies" true
        (Channels.polarity_can_satisfy f "s.temperature" Effects.Incr);
      check_bool "decr does not" false
        (Channels.polarity_can_satisfy f "s.temperature" Effects.Decr))

let offline_same_device_rules =
  test "offline same-device matching" (fun () ->
      let mk name title =
        mk_app name [ mk_input ~title:(Some title) "sw" "capability.switch" ] []
      in
      let lamp1 = mk "A" "Floor lamp" and lamp2 = mk "B" "Desk lamp bulb" in
      let fan = mk "C" "Ceiling fan" in
      check_bool "lamp = lamp" true (Detector.offline_same_device lamp1 "sw" lamp2 "sw");
      check_bool "lamp <> fan" false (Detector.offline_same_device lamp1 "sw" fan "sw"))

let tests =
  [
    fig3_actuator_race;
    fig4_covert_triggering;
    fig5_disabling_condition;
    self_disabling_energy;
    loop_triggering_light;
    covert_rule_switch_mode_lock;
    nfc_vs_lock_it;
    let_there_be_dark_races;
    ar_same_trigger_detected;
    ar_disjoint_conditions_not_detected;
    ar_different_devices_not_detected;
    gc_heater_vs_window;
    directional_ct;
    ct_value_mismatch_filtered;
    ec_dc_direction;
    condition_unifier_shared_device;
    symmetric_cache_hits_reverse_direction;
    solver_reuse_reduces_calls;
    same_rule_skipped;
    classify_titles;
    classify_from_var_name;
    classify_non_switch;
    effects_of_heater;
    conflicting_goals_excludes_power;
    attribute_writes_fixed;
    attribute_writes_param;
    direction_needs_analysis;
    offline_same_device_rules;
  ]
