(** Fleet suite: circuit-breaker state machine, heartbeat health
    checks, supervised restart and rebalance, the seeded chaos smoke
    campaign and the synthetic-home generator.

    Runs as its own executable (like [test/serve] and [test/faults])
    because chaos campaigns arm the global storage fault hook, which
    must never leak into the main suite. *)

module Breaker = Homeguard_fleet.Breaker
module Health = Homeguard_fleet.Health
module Shard = Homeguard_fleet.Shard
module Supervisor = Homeguard_fleet.Supervisor
module Chaos = Homeguard_fleet.Chaos
module Broker = Homeguard_serve.Broker
module Shed = Homeguard_serve.Shed
module Home = Homeguard_store.Home
module Fence = Homeguard_store.Fence
module Scrub = Homeguard_store.Scrub
module Journal = Homeguard_store.Journal
module Policy = Homeguard_handling.Policy
module Fault = Homeguard_solver.Fault
module Repro = Homeguard_fleet.Repro
module Vcache = Homeguard_vcache.Vcache
module Extract = Homeguard_symexec.Extract
module Rule = Homeguard_rules.Rule
module Corpus = Homeguard_corpus.Corpus
module Synth = Homeguard_corpus.Synth
module App_entry = Homeguard_corpus.App_entry

let test name f = Alcotest.test_case name `Quick f
let check_bool m = Alcotest.(check bool) m
let check_int m = Alcotest.(check int) m

let tmp_counter = ref 0

let fresh_dir () =
  incr tmp_counter;
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "hg_fleet_%d_%d" (Unix.getpid ()) !tmp_counter)
  in
  ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)));
  dir

let manual_clock () =
  let now = ref 0.0 in
  ((fun () -> !now), fun ms -> now := !now +. ms)

let corpus_app name =
  match
    List.find_opt (fun e -> e.App_entry.name = name) Corpus.audit_apps
  with
  | Some e -> (Extract.extract_source ~name e.App_entry.source).Extract.app
  | None -> Alcotest.failf "no corpus app %s" name

(* -- circuit breaker ---------------------------------------------------------- *)

let breaker_trips_at_threshold =
  test "the breaker trips after N consecutive failures, not before" (fun () ->
      let clock, advance = manual_clock () in
      let b =
        Breaker.create ~failure_threshold:3 ~reset_timeout_ms:100.0
          ~half_open_probes:2 clock
      in
      check_bool "starts closed" true (Breaker.state b = Breaker.Closed);
      Breaker.note_failure b;
      Breaker.note_failure b;
      check_bool "two failures stay closed" true (Breaker.state b = Breaker.Closed);
      (* a success resets the streak *)
      Breaker.note_success b;
      Breaker.note_failure b;
      Breaker.note_failure b;
      check_bool "streak was reset" true (Breaker.state b = Breaker.Closed);
      Breaker.note_failure b;
      check_bool "third consecutive failure trips" true (Breaker.state b = Breaker.Open);
      check_int "one trip" 1 (Breaker.trips b);
      (match Breaker.allow b with
      | `Reject ms -> check_bool "positive shed window" true (ms > 0.0 && ms <= 100.0)
      | _ -> Alcotest.fail "open breaker must reject");
      (* the shed window shrinks as time passes *)
      advance 60.0;
      (match Breaker.allow b with
      | `Reject ms -> check_bool "window shrinks" true (ms <= 40.0)
      | _ -> Alcotest.fail "still open"))

let breaker_half_open_probes =
  test "after the reset timeout, K probe successes close the breaker" (fun () ->
      let clock, advance = manual_clock () in
      let b =
        Breaker.create ~failure_threshold:1 ~reset_timeout_ms:100.0
          ~half_open_probes:2 clock
      in
      Breaker.note_failure b;
      check_bool "tripped" true (Breaker.state b = Breaker.Open);
      advance 100.0;
      (match Breaker.allow b with
      | `Probe -> ()
      | _ -> Alcotest.fail "elapsed reset timeout must admit a probe");
      check_bool "half-open now" true (Breaker.state b = Breaker.Half_open);
      Breaker.note_success b;
      check_bool "one success is not enough" true
        (Breaker.state b = Breaker.Half_open);
      (match Breaker.allow b with `Probe -> () | _ -> Alcotest.fail "second probe");
      Breaker.note_success b;
      check_bool "closed after K probe successes" true
        (Breaker.state b = Breaker.Closed);
      (match Breaker.allow b with `Admit -> () | _ -> Alcotest.fail "admits again"))

let breaker_probe_failure_reopens =
  test "a probe failure re-opens immediately and restarts the clock" (fun () ->
      let clock, advance = manual_clock () in
      let b =
        Breaker.create ~failure_threshold:1 ~reset_timeout_ms:100.0
          ~half_open_probes:2 clock
      in
      Breaker.note_failure b;
      advance 100.0;
      (match Breaker.allow b with `Probe -> () | _ -> Alcotest.fail "probe");
      Breaker.note_failure b;
      check_bool "reopened" true (Breaker.state b = Breaker.Open);
      check_int "second trip counted" 2 (Breaker.trips b);
      (match Breaker.allow b with
      | `Reject ms -> check_bool "full window again" true (ms > 99.0)
      | _ -> Alcotest.fail "must reject after reopening"))

let breaker_begin_probing =
  test "begin_probing skips the shed window after a supervised restart" (fun () ->
      let clock, _ = manual_clock () in
      let b =
        Breaker.create ~failure_threshold:1 ~reset_timeout_ms:1000.0
          ~half_open_probes:1 clock
      in
      Breaker.note_failure b;
      (match Breaker.allow b with `Reject _ -> () | _ -> Alcotest.fail "open");
      Breaker.begin_probing b;
      check_bool "half-open without waiting" true
        (Breaker.state b = Breaker.Half_open);
      (match Breaker.allow b with `Probe -> () | _ -> Alcotest.fail "probe now");
      Breaker.note_success b;
      check_bool "closed" true (Breaker.state b = Breaker.Closed))

(* -- health ------------------------------------------------------------------- *)

let health_missed_beats =
  test "missed whole intervals escalate Alive -> Late -> Failed" (fun () ->
      let clock, advance = manual_clock () in
      let h = Health.create ~interval_ms:100.0 ~miss_threshold:3 clock in
      check_bool "fresh is alive" true (Health.status h = Health.Alive);
      advance 150.0;
      (match Health.status h with
      | Health.Late 1 -> ()
      | _ -> Alcotest.fail "one missed interval is Late 1");
      Health.beat h;
      check_bool "a beat restores Alive" true (Health.status h = Health.Alive);
      advance 320.0;
      (match Health.status h with
      | Health.Failed n -> check_int "three whole intervals missed" 3 n
      | _ -> Alcotest.fail "must be Failed at the threshold");
      check_int "explicit beats counted (creation is not one)" 1 (Health.beats h))

(* -- supervisor --------------------------------------------------------------- *)

let sup_config ~clock ?(shards = 2) ?(restart_budget = 3) () =
  {
    Supervisor.default_config with
    Supervisor.shards;
    heartbeat_interval_ms = 100.0;
    miss_threshold = 2;
    failure_threshold = 2;
    reset_timeout_ms = 200.0;
    half_open_probes = 1;
    restart_budget;
    backoff_base_ms = 50.0;
    backoff_cap_ms = 200.0;
    seed = 7;
    fsync = false;
    clock;
  }

let homes4 = [ "alpha"; "beta"; "gamma"; "delta" ]

let settle t advance =
  (* drive restarts to completion under the manual clock *)
  let shards = (Supervisor.stats t).Supervisor.shards in
  let rec go n =
    let restarting =
      List.exists
        (fun i -> Supervisor.shard_state t i = `Restarting)
        (List.init shards Fun.id)
    in
    if restarting && n > 0 then begin
      advance 50.0;
      Supervisor.beat_all t;
      Supervisor.tick t;
      go (n - 1)
    end
  in
  go 100

let supervisor_restart_preserves_state =
  test "a killed shard restarts from its journals with state intact" (fun () ->
      let clock, advance = manual_clock () in
      let dir = fresh_dir () in
      let t =
        Supervisor.create ~config:(sup_config ~clock ()) ~dir ~homes:homes4 ()
      in
      let victim_home = "alpha" in
      let owner =
        match Supervisor.owner_of t victim_home with
        | Some s -> s
        | None -> Alcotest.fail "alpha must be placed"
      in
      (* durable state on the victim: an install, a decision, a
         quarantine *)
      (match
         Supervisor.run t ~home:victim_home (fun sh ->
             let h = Broker.home (Shard.broker sh) victim_home in
             ignore (Home.install_app h (corpus_app "AtticFanController"));
             Home.set_decision h "AtticFanController#1" Policy.Confirm;
             Home.quarantine h ~app:"Gatekeeper" ~reason:"test";
             Home.last_seq h)
       with
      | Supervisor.Done _ -> ()
      | _ -> Alcotest.fail "healthy shard must serve");
      check_bool "killed" true (Supervisor.kill t owner);
      check_bool "restarting" true (Supervisor.shard_state t owner = `Restarting);
      (* while down: honest Unavailable with a positive hint, and the
         degraded outcome names the shard *)
      (match Supervisor.run t ~home:victim_home (fun _ -> ()) with
      | Supervisor.Unavailable { shard; retry_after_ms; _ } ->
        check_int "routed to the owner" owner shard;
        check_bool "positive hint" true (retry_after_ms > 0);
        (match Supervisor.to_outcome (Supervisor.run t ~home:victim_home (fun _ -> ())) with
        | Shed.Degraded { reason = Shed.Shard_unavailable { shard = label; _ }; _ } ->
          check_bool "outcome names the shard" true
            (label = Supervisor.shard_label owner)
        | _ -> Alcotest.fail "unavailable must map to Degraded/Shard_unavailable")
      | _ -> Alcotest.fail "a restarting shard must reply Unavailable");
      (* the other shard keeps serving while the victim is down *)
      let other_home =
        match
          List.find_opt
            (fun h -> Supervisor.owner_of t h <> Some owner)
            homes4
        with
        | Some h -> h
        | None -> Alcotest.fail "expected a home on the surviving shard"
      in
      (match Supervisor.run t ~home:other_home (fun _ -> `ok) with
      | Supervisor.Done { value = `ok; _ } -> ()
      | _ -> Alcotest.fail "healthy shards must keep serving");
      settle t advance;
      check_bool "victim is back" true (Supervisor.shard_state t owner = `Running);
      (match
         Supervisor.run t ~home:victim_home (fun sh ->
             let h = Broker.home (Shard.broker sh) victim_home in
             ( List.exists
                 (fun (a : Rule.smartapp) -> a.Rule.name = "AtticFanController")
                 (Home.installed_apps h),
               List.mem_assoc "AtticFanController#1"
                 (Policy.decisions
                    (Homeguard_frontend.Install_flow.policies (Home.flow h))),
               Home.is_quarantined h "Gatekeeper" ))
       with
      | Supervisor.Done { value = (true, true, true); _ } -> ()
      | Supervisor.Done { value = (i, d, q); _ } ->
        Alcotest.failf "state lost across restart: install=%b decision=%b quarantine=%b"
          i d q
      | _ -> Alcotest.fail "restarted shard must serve");
      let st = Supervisor.stats t in
      check_bool "restart counted" true (st.Supervisor.restarts >= 1);
      check_bool "recoveries recorded" true (st.Supervisor.recoveries > 0);
      Supervisor.close t)

let supervisor_rebalance_on_dead_shard =
  test "an out-of-budget shard goes Dead and its homes rebalance" (fun () ->
      let clock, _ = manual_clock () in
      let dir = fresh_dir () in
      let t =
        Supervisor.create
          ~config:(sup_config ~clock ~shards:3 ~restart_budget:0 ())
          ~dir ~homes:homes4 ()
      in
      (* seed state into every home so the moved ones prove journal
         recovery on their new shard *)
      List.iter
        (fun id ->
          match
            Supervisor.run t ~home:id (fun sh ->
                ignore
                  (Home.install_app
                     (Broker.home (Shard.broker sh) id)
                     (corpus_app "BonVoyage")))
          with
          | Supervisor.Done _ -> ()
          | _ -> Alcotest.fail "seeding must succeed")
        homes4;
      let victim =
        (* kill a shard that actually owns homes *)
        match List.find_map (Supervisor.owner_of t) homes4 with
        | Some s -> s
        | None -> Alcotest.fail "no owner found"
      in
      let moved = Supervisor.homes_of t victim in
      check_bool "victim owns homes" true (moved <> []);
      check_bool "killed" true (Supervisor.kill t victim);
      (* budget 0: the kill exhausts it immediately — no restart window *)
      check_bool "dead" true (Supervisor.shard_state t victim = `Dead);
      check_bool "no homes left on the corpse" true
        (Supervisor.homes_of t victim = []);
      List.iter
        (fun id ->
          (match Supervisor.owner_of t id with
          | Some s when s <> victim -> ()
          | Some _ -> Alcotest.failf "%s still owned by the dead shard" id
          | None -> Alcotest.failf "%s lost its owner" id);
          match
            Supervisor.run t ~home:id (fun sh ->
                List.exists
                  (fun (a : Rule.smartapp) -> a.Rule.name = "BonVoyage")
                  (Home.installed_apps (Broker.home (Shard.broker sh) id)))
          with
          | Supervisor.Done { value = true; _ } -> ()
          | Supervisor.Done { value = false; _ } ->
            Alcotest.failf "%s lost its install in the move" id
          | _ -> Alcotest.failf "%s must be servable after rebalance" id)
        moved;
      let st = Supervisor.stats t in
      check_int "one dead shard" 1 st.Supervisor.dead_shards;
      check_bool "rebalances counted" true
        (st.Supervisor.rebalanced_homes >= List.length moved);
      Supervisor.close t)

let supervisor_stall_detection =
  test "a stalled shard (no beats) is caught by tick and restarted" (fun () ->
      let clock, advance = manual_clock () in
      let dir = fresh_dir () in
      let t =
        Supervisor.create
          ~config:(sup_config ~clock ~shards:1 ())
          ~dir ~homes:[ "solo" ] ()
      in
      (* no beats while the clock runs: 2 whole intervals missed *)
      advance 250.0;
      Supervisor.tick t;
      check_bool "restart scheduled for the stalled shard" true
        (Supervisor.shard_state t 0 = `Restarting);
      settle t advance;
      check_bool "back up" true (Supervisor.shard_state t 0 = `Running);
      check_bool "kill counted" true ((Supervisor.stats t).Supervisor.kills >= 1);
      Supervisor.close t)

let crashed_reply_carries_retry_hint =
  test "a request that crashes its shard gets a positive retry hint" (fun () ->
      let clock, advance = manual_clock () in
      let dir = fresh_dir () in
      let t =
        Supervisor.create ~config:(sup_config ~clock ()) ~dir ~homes:homes4 ()
      in
      (match
         Supervisor.run t ~home:"alpha" (fun _ -> raise (Fault.Crashed "boom"))
       with
      | Supervisor.Crashed { retry_after_ms; error; _ } ->
        check_bool "positive hint on the crash reply" true (retry_after_ms > 0);
        check_bool "error text" true (error = "boom")
      | _ -> Alcotest.fail "a crashing request must reply Crashed");
      (* the degraded outcome carries the same honest hint — a zero
         hint would make clients hammer a shard that is mid-restart *)
      (match
         Supervisor.to_outcome
           (Supervisor.run t ~home:"alpha" (fun _ -> raise (Fault.Crashed "again")))
       with
      | Shed.Degraded { reason = Shed.Shard_unavailable { retry_after_ms; _ }; _ }
        ->
        check_bool "outcome hint positive" true (retry_after_ms > 0)
      | _ -> Alcotest.fail "crash must degrade with a shard-unavailable reason");
      settle t advance;
      Supervisor.close t)

let wedged_shard_is_fenced =
  test "a wedged shard's writes are fenced after its homes move on" (fun () ->
      let clock, advance = manual_clock () in
      let dir = fresh_dir () in
      let t =
        Supervisor.create
          ~config:(sup_config ~clock ~shards:2 ())
          ~dir ~homes:homes4 ()
      in
      let victim_home = "alpha" in
      let owner = Option.get (Supervisor.owner_of t victim_home) in
      (match
         Supervisor.run t ~home:victim_home (fun sh ->
             ignore
               (Home.install_app
                  (Broker.home (Shard.broker sh) victim_home)
                  (corpus_app "BonVoyage")))
       with
      | Supervisor.Done _ -> ()
      | _ -> Alcotest.fail "seed install must land");
      let before = Fence.rejections () in
      let zombie =
        match Supervisor.wedge t owner with
        | Some z -> z
        | None -> Alcotest.fail "a running shard must wedge"
      in
      (* the replacement comes up and re-acquires every home at a
         strictly higher epoch *)
      settle t advance;
      check_bool "replacement running" true
        (Supervisor.shard_state t owner = `Running);
      let zhome = Broker.home (Shard.broker zombie) victim_home in
      check_bool "epochs moved past the zombie" true
        (Fence.current (Home.dir zhome) > Home.epoch zhome);
      (* the revived stale owner tries to append: fenced, nothing lands *)
      (match Home.set_decision zhome "zombie-threat" Policy.Allow with
      | () -> Alcotest.fail "stale append must raise Fence.Stale"
      | exception Fence.Stale _ -> ());
      check_bool "rejection counted" true (Fence.rejections () > before);
      Shard.close zombie;
      (* the current owner still serves, and never saw the zombie's
         decision *)
      (match
         Supervisor.run t ~home:victim_home (fun sh ->
             let h = Broker.home (Shard.broker sh) victim_home in
             List.mem_assoc "zombie-threat"
               (Policy.decisions
                  (Homeguard_frontend.Install_flow.policies (Home.flow h))))
       with
      | Supervisor.Done { value = false; _ } -> ()
      | Supervisor.Done { value = true; _ } ->
        Alcotest.fail "the fenced decision leaked into the live home"
      | _ -> Alcotest.fail "current owner must serve");
      let st = Supervisor.stats t in
      check_bool "stale rejections surfaced in stats" true
        (st.Supervisor.stale_rejections > 0);
      Supervisor.close t)

let supervisor_scrub_converges =
  test "fleet scrub read-repairs damaged replicas and is idempotent" (fun () ->
      let clock, _ = manual_clock () in
      let dir = fresh_dir () in
      let t =
        Supervisor.create ~config:(sup_config ~clock ()) ~dir ~homes:homes4 ()
      in
      List.iter
        (fun id ->
          match
            Supervisor.run t ~home:id (fun sh ->
                ignore
                  (Home.install_app
                     (Broker.home (Shard.broker sh) id)
                     (corpus_app "BonVoyage")))
          with
          | Supervisor.Done _ -> ()
          | _ -> Alcotest.fail "seeding must succeed")
        homes4;
      (* destroy one home's replica copy behind the fleet's back *)
      let rj = Filename.concat dir "r1/h_alpha/journal" in
      check_bool "replica journal exists" true (Sys.file_exists rj);
      Sys.remove rj;
      let c = Supervisor.scrub t in
      check_int "every home covered" (List.length homes4) c.Scrub.homes;
      check_int "the damaged home was repaired" 1 c.Scrub.repaired_homes;
      check_bool "records healed into the recreated replica" true
        (c.Scrub.records_healed > 0);
      check_int "all homes converged" 0 c.Scrub.unconverged;
      check_bool "replica restored" true (Sys.file_exists rj);
      let c2 = Supervisor.scrub t in
      check_int "second pass all healthy" c2.Scrub.homes c2.Scrub.healthy;
      check_int "second pass repairs nothing" 0 c2.Scrub.repaired_homes;
      (* the scrubbed (live) home still serves writes afterwards *)
      (match
         Supervisor.run t ~home:"alpha" (fun sh ->
             Home.set_decision
               (Broker.home (Shard.broker sh) "alpha")
               "post-scrub" Policy.Confirm)
       with
      | Supervisor.Done _ -> ()
      | _ -> Alcotest.fail "scrubbed home must keep serving");
      Supervisor.close t)

(* -- chaos -------------------------------------------------------------------- *)

let chaos_smoke_campaign =
  test "the seeded smoke campaign passes all four invariants" (fun () ->
      let dir = fresh_dir () in
      let report = Chaos.run ~config:Chaos.smoke_config ~dir () in
      check_bool "campaign passed" true (Chaos.passed report);
      List.iter
        (fun (i : Chaos.invariant) ->
          if not i.Chaos.ok then
            Alcotest.failf "invariant %s violated: %s" i.Chaos.name i.Chaos.detail)
        report.Chaos.invariants;
      check_bool "killed at least 2 distinct shards" true
        (report.Chaos.shards_killed >= 2);
      check_bool "recovered at least 2 distinct shards" true
        (report.Chaos.shards_recovered >= 2);
      check_bool "healthy shards served while others were down" true
        (report.Chaos.served_while_impaired > 0);
      check_bool "render is non-empty" true
        (String.length (Chaos.render report) > 0);
      (* split-brain coverage: the stall-then-revive window produced a
         zombie whose appends were all fenced *)
      check_bool "zombie appends attempted" true (report.Chaos.zombie_rejected > 0);
      check_int "no stale append went durable" 0 report.Chaos.zombie_accepted;
      (* anti-entropy coverage: the scrub pass walked every home and
         converged the fleet; the second pass had nothing to do *)
      check_int "scrub covered the fleet" report.Chaos.config.Chaos.homes
        report.Chaos.scrub.Scrub.homes;
      check_int "scrub converged" 0 report.Chaos.scrub.Scrub.unconverged;
      check_int "rescrub repaired nothing" 0
        report.Chaos.scrub_second.Scrub.repaired_homes;
      List.iter
        (fun n ->
          if
            not
              (List.exists
                 (fun (i : Chaos.invariant) -> i.Chaos.name = n)
                 report.Chaos.invariants)
          then Alcotest.failf "replication invariant %s was not verified" n)
        [ "no-stale-epoch-accepted"; "scrub-convergence"; "scrub-idempotent" ];
      (* the fault hook must not leak out of the campaign *)
      check_bool "storage faults disarmed" true (not (Fault.storage_armed ())))

let chaos_cache_invariants =
  test "the verdict-cache invariants are verified and hold under chaos"
    (fun () ->
      let cfg = { Chaos.smoke_config with Chaos.steps = 80 } in
      let report = Chaos.run ~config:cfg ~dir:(fresh_dir ()) () in
      let names = List.map (fun (i : Chaos.invariant) -> i.Chaos.name) report.Chaos.invariants in
      List.iter
        (fun n ->
          if not (List.mem n names) then
            Alcotest.failf "cache invariant %s was not verified" n)
        [
          "cache-replay-determinism";
          "cache-no-poisoned-entry";
          "cache-no-conflicts";
          "cache-warm-restart";
        ];
      check_bool "campaign passed" true (Chaos.passed report);
      (* with the cache off, the cache invariants are not in scope *)
      let off =
        Chaos.run
          ~config:{ cfg with Chaos.vcache = false; Chaos.steps = 40 }
          ~dir:(fresh_dir ()) ()
      in
      check_bool "no cache invariants when disabled" true
        (List.for_all
           (fun (i : Chaos.invariant) ->
             not
               (String.length i.Chaos.name >= 6
               && String.sub i.Chaos.name 0 6 = "cache-"))
           off.Chaos.invariants);
      check_bool "uncached campaign passed" true (Chaos.passed off))

let chaos_is_deterministic =
  test "two campaigns with the same seed report identical workloads" (fun () ->
      let cfg = { Chaos.smoke_config with Chaos.steps = 60 } in
      let r1 = Chaos.run ~config:cfg ~dir:(fresh_dir ()) () in
      let r2 = Chaos.run ~config:cfg ~dir:(fresh_dir ()) () in
      check_int "same ops" r1.Chaos.ops r2.Chaos.ops;
      check_int "same installs" r1.Chaos.installs_acked r2.Chaos.installs_acked;
      check_int "same configs" r1.Chaos.configs_acked r2.Chaos.configs_acked;
      check_int "same kills" r1.Chaos.stats.Supervisor.kills
        r2.Chaos.stats.Supervisor.kills)

(* -- the cache durability contract -------------------------------------------- *)

let contains_sub sub s =
  let n = String.length sub and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
  at 0

let vcache_zombie_probe_never_lands =
  test "a wedged shard's cache writes are fenced: no stale byte on any replica"
    (fun () ->
      let clock, advance = manual_clock () in
      let dir = fresh_dir () in
      let t =
        Supervisor.create ~config:(sup_config ~clock ()) ~dir ~homes:homes4 ()
      in
      (* populate the shared cache through a real audited install *)
      (match
         Supervisor.run t ~home:"alpha" (fun sh ->
             ignore
               (Home.install_app
                  (Broker.home (Shard.broker sh) "alpha")
                  (corpus_app "BonVoyage")))
       with
      | Supervisor.Done _ -> ()
      | _ -> Alcotest.fail "seed install must land");
      (* two zombie generations: wedge the current owner, let the
         replacement attach a successor epoch under the same owner key,
         then drive the retained handle — every durable write fenced *)
      let fenced = ref 0 in
      for _gen = 1 to 2 do
        let victim = Option.get (Supervisor.owner_of t "alpha") in
        let z =
          match Supervisor.wedge t victim with
          | Some z -> z
          | None -> Alcotest.fail "a running shard must wedge"
        in
        settle t advance;
        let h = Option.get (Shard.vcache z) in
        check_bool "the successor attach moved the owner fence past the zombie"
          true
          (Fence.current (Vcache.fence_key h) > Vcache.handle_epoch h);
        for _ = 1 to 4 do
          match Vcache.probe_write h with
          | `Fenced -> incr fenced
          | `Accepted | `Dropped ->
            Alcotest.fail "a stale cache write went durable"
        done;
        check_bool "stale writes counted on the zombie handle" true
          ((Vcache.counters h).Vcache.stale_writes >= 4);
        Shard.close z
      done;
      check_int "every probe fenced" 8 !fenced;
      Supervisor.close t;
      (* durable evidence: no probe record on any cache replica file,
         and a warm reopen never surfaces one *)
      let cdirs =
        [ Filename.concat dir "vcache"; Filename.concat dir "r1/vcache" ]
      in
      List.iter
        (fun d ->
          List.iter
            (fun f ->
              let sc = Journal.scan (Filename.concat d f) in
              check_int
                (Printf.sprintf "no probe record in %s" (Filename.concat d f))
                0
                (List.length
                   (List.filter (contains_sub "~chaos/") sc.Journal.records)))
            [ "cache.snapshot"; "cache.journal" ])
        cdirs;
      let st =
        Vcache.open_store ~fsync:false
          ~replicas:[ Filename.concat dir "r1/vcache" ]
          ~dir:(Filename.concat dir "vcache") ()
      in
      check_bool "warm reopen has no probe key" true
        (List.for_all
           (fun (k, _) -> not (contains_sub "~chaos/" k))
           (Vcache.dump st));
      Vcache.close_store st)

let flip_byte_at path off =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      ignore (Unix.lseek fd off Unix.SEEK_SET);
      let b = Bytes.create 1 in
      check_int "read one byte" 1 (Unix.read fd b 0 1);
      Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x20));
      ignore (Unix.lseek fd off Unix.SEEK_SET);
      ignore (Unix.write fd b 0 1))

let cache_scrub_patches_frames =
  test "cache scrub patches only the damaged frame and is idempotent" (fun () ->
      let clock, _ = manual_clock () in
      let dir = fresh_dir () in
      let t =
        Supervisor.create ~config:(sup_config ~clock ()) ~dir ~homes:homes4 ()
      in
      (* real audits populate the cache journal with verdict entries —
         two mode-touching apps per home, so every audit has pairs to
         solve and cache *)
      List.iter
        (fun id ->
          List.iter
            (fun app ->
              match
                Supervisor.run t ~home:id (fun sh ->
                    ignore
                      (Home.install_app
                         (Broker.home (Shard.broker sh) id)
                         (corpus_app app)))
              with
              | Supervisor.Done _ -> ()
              | _ -> Alcotest.fail "seed install must land")
            [ "GoodNight"; "RiseAndShine"; "SunsetMode" ];
          match Supervisor.submit_audit t ~home:id () with
          | Supervisor.Done { value = Ok _; shard } ->
            ignore (Supervisor.drain t ~shard)
          | _ -> ())
        homes4;
      (* bit-rot one byte in the middle of the replica's cache journal *)
      let victim = Filename.concat dir "r1/vcache/cache.journal" in
      check_bool "replica cache journal exists" true (Sys.file_exists victim);
      let size = (Unix.stat victim).Unix.st_size in
      check_bool "cache journal is non-trivial" true (size > 64);
      flip_byte_at victim (size / 2);
      let r = Option.get (Supervisor.scrub_cache t) in
      check_bool "scrub converged the cache replicas" true r.Scrub.converged;
      check_int "exactly the damaged frame was patched" 1 r.Scrub.patched_frames;
      check_bool "repair I/O bounded by the damage, not the file size" true
        (r.Scrub.repair_bytes > 0 && r.Scrub.repair_bytes < size);
      let r2 = Option.get (Supervisor.scrub_cache t) in
      check_bool "second pass finds a healthy converged cache" true
        (r2.Scrub.healthy && r2.Scrub.converged);
      check_int "second pass writes nothing" 0 r2.Scrub.repair_bytes;
      Supervisor.close t)

(* -- repros and the shrinker --------------------------------------------------- *)

let repro_round_trip =
  test "repro text round-trips every event kind and rejects junk" (fun () ->
      let schedule =
        [
          { Chaos.at = 1; ev = Chaos.Kill { victim = 2 } };
          { Chaos.at = 2; ev = Chaos.Stall { victim = 0 } };
          { Chaos.at = 3; ev = Chaos.Storage_window { mode = 1; salt = 99 } };
          { Chaos.at = 4; ev = Chaos.Replica_destroy { home = 3; replica = 0 } };
          {
            Chaos.at = 5;
            ev = Chaos.Replica_corrupt { home = 1; replica = 1; file = 0; salt = 7 };
          };
          { Chaos.at = 6; ev = Chaos.Cache_destroy { replica = 0 } };
          {
            Chaos.at = 7;
            ev = Chaos.Cache_corrupt { replica = 1; file = 1; salt = 8 };
          };
          { Chaos.at = 8; ev = Chaos.Split_brain { victim = 1 } };
        ]
      in
      let t =
        {
          Repro.config = Chaos.smoke_config;
          schedule;
          invariant = "no-stale-epoch-accepted";
          fence_enforced = false;
        }
      in
      check_bool "of_text inverts to_text" true
        (Repro.of_text (Repro.to_text t) = t);
      let d = fresh_dir () in
      Unix.mkdir d 0o755;
      let path = Filename.concat d "x.repro" in
      Repro.save t ~path;
      check_bool "save/load round-trips" true (Repro.load ~path = t);
      (match Repro.of_text "hg-chaos-repro v2\ninvariant x\n" with
      | _ -> Alcotest.fail "a version mismatch must be rejected"
      | exception Failure _ -> ());
      match Repro.of_text (Repro.to_text t ^ "event at=9 meteor-strike\n") with
      | _ -> Alcotest.fail "an unknown event kind must be rejected"
      | exception Failure _ -> ())

let chaos_shrinker_minimizes_fence_bug =
  test "ddmin shrinks a fence-bug campaign to a tiny deterministic repro"
    (fun () ->
      let cfg = { Chaos.smoke_config with Chaos.homes = 6; Chaos.steps = 80 } in
      let invariant = "cache-no-stale-epoch-byte" in
      let schedule = Chaos.schedule_of_config cfg in
      let minimal, trials =
        Chaos.shrink ~config:cfg ~enforce_fence:false ~dir:(fresh_dir ())
          ~invariant schedule
      in
      check_bool "the schedule shrank" true
        (List.length minimal < List.length schedule);
      check_bool "minimal repro is at most 3 events" true
        (List.length minimal <= 3);
      check_bool "the shrinker ran trial campaigns" true (trials > 1);
      (* the minimized schedule replays deterministically: two buggy
         runs violate identically, and an enforced run passes *)
      let repro =
        {
          Repro.config = cfg;
          schedule = minimal;
          invariant;
          fence_enforced = false;
        }
      in
      let r1 = Repro.replay repro ~dir:(fresh_dir ()) in
      let r2 = Repro.replay repro ~dir:(fresh_dir ()) in
      check_bool "both replays reproduce the violation" true
        (Repro.reproduces r1 repro && Repro.reproduces r2 repro);
      check_int "identical workloads" r1.Chaos.ops r2.Chaos.ops;
      check_bool "identical invariant verdicts" true
        (List.map (fun (i : Chaos.invariant) -> (i.Chaos.name, i.Chaos.ok))
           r1.Chaos.invariants
        = List.map (fun (i : Chaos.invariant) -> (i.Chaos.name, i.Chaos.ok))
            r2.Chaos.invariants);
      let fixed = Repro.replay ~enforce_fence:true repro ~dir:(fresh_dir ()) in
      check_bool "the same schedule passes with the fence enforced" true
        (Chaos.passed fixed))

let checked_in_repros_replay =
  test "checked-in minimized repros reproduce, and the fix holds" (fun () ->
      List.iter
        (fun name ->
          let path = Filename.concat "repros" name in
          let repro = Repro.load ~path in
          check_bool (name ^ " is minimized") true
            (List.length repro.Repro.schedule <= 3);
          let bug = Repro.replay repro ~dir:(fresh_dir ()) in
          check_bool (name ^ " reproduces as recorded") true
            (Repro.reproduces bug repro);
          let fixed = Repro.replay ~enforce_fence:true repro ~dir:(fresh_dir ()) in
          check_bool (name ^ " passes with the fence enforced") true
            (Chaos.passed fixed))
        [ "split-brain-home-journal.repro"; "split-brain-vcache.repro" ])

(* -- synthetic homes ---------------------------------------------------------- *)

let synth_deterministic =
  test "the same seed reproduces the same fleet byte-for-byte" (fun () ->
      let a = Corpus.synth ~seed:9 ~n_homes:200 in
      let b = Corpus.synth ~seed:9 ~n_homes:200 in
      check_int "200 homes" 200 (List.length a);
      check_bool "identical" true (a = b);
      let c = Corpus.synth ~seed:10 ~n_homes:200 in
      check_bool "a different seed differs" true (a <> c);
      let ids = List.map (fun h -> h.Synth.id) a in
      check_int "ids are distinct" 200 (List.length (List.sort_uniq compare ids));
      List.iter
        (fun h ->
          if h.Synth.apps = [] then Alcotest.failf "home %s has no apps" h.Synth.id;
          let names = List.map (fun e -> e.App_entry.name) h.Synth.apps in
          if List.length (List.sort_uniq compare names) <> List.length names then
            Alcotest.failf "home %s repeats an app" h.Synth.id)
        a)

let synth_bounds =
  test "generator bounds: app cap respected, bad inputs rejected" (fun () ->
      let homes = Corpus.synth ~seed:3 ~n_homes:50 in
      List.iter
        (fun h ->
          check_bool "app cap" true (List.length h.Synth.apps <= 8))
        homes;
      check_bool "zero homes is fine" true (Corpus.synth ~seed:1 ~n_homes:0 = []);
      (match Corpus.synth ~seed:1 ~n_homes:(-1) with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "negative count must be rejected");
      match Synth.generate ~pool:[] ~seed:1 ~n_homes:1 () with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "an empty pool must be rejected")

let () =
  Alcotest.run "homeguard-fleet"
    [
      ( "breaker",
        [
          breaker_trips_at_threshold;
          breaker_half_open_probes;
          breaker_probe_failure_reopens;
          breaker_begin_probing;
        ] );
      ("health", [ health_missed_beats ]);
      ( "supervisor",
        [
          supervisor_restart_preserves_state;
          supervisor_rebalance_on_dead_shard;
          supervisor_stall_detection;
          crashed_reply_carries_retry_hint;
          wedged_shard_is_fenced;
          supervisor_scrub_converges;
        ] );
      ("chaos",
        [ chaos_smoke_campaign; chaos_cache_invariants; chaos_is_deterministic ]);
      ( "cache-durability",
        [ vcache_zombie_probe_never_lands; cache_scrub_patches_frames ] );
      ( "repro",
        [
          repro_round_trip;
          chaos_shrinker_minimizes_fence_bug;
          checked_in_repros_replay;
        ] );
      ("synth", [ synth_deterministic; synth_bounds ]);
    ]
