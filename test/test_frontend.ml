(** Frontend tests: rule/threat interpreters and the install flow. *)

module Rule = Homeguard_rules.Rule
module Rule_interpreter = Homeguard_frontend.Rule_interpreter
module Threat_interpreter = Homeguard_frontend.Threat_interpreter
module Install_flow = Homeguard_frontend.Install_flow
module Threat = Homeguard_detector.Threat
module Detector = Homeguard_detector.Detector
open Helpers

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let describe_comfort_tv =
  test "rule interpreter renders ComfortTV readably" (fun () ->
      let app = extract_corpus "ComfortTV" in
      let text = Rule_interpreter.describe (the_rule app) in
      check_bool "mentions trigger value" true (contains text "switch of tv1 is on");
      check_bool "mentions temperature" true (contains text "temperature");
      check_bool "mentions window action" true (contains text "window1"))

let describe_delay =
  test "rule interpreter reports delays" (fun () ->
      let app = extract_corpus "NightCare" in
      let text = Rule_interpreter.describe (the_rule app) in
      check_bool "after 300 seconds" true (contains text "after 300 seconds"))

let describe_schedule =
  test "rule interpreter renders schedules" (fun () ->
      let app = extract_corpus "GoodMorningCoffee" in
      let text = Rule_interpreter.describe (the_rule app) in
      check_bool "daily time" true (contains text "day at 07:00"))

let describe_app_numbering =
  test "describe_app numbers the rules" (fun () ->
      let app = extract_corpus "LightUpTheNight" in
      let text = Rule_interpreter.describe_app app in
      check_bool "R1" true (contains text "R1.");
      check_bool "R2" true (contains text "R2."))

let describe_empty_app =
  test "describe_app handles rule-less apps" (fun () ->
      let app = extract_corpus "WebDashboard" in
      check_bool "no rules message" true
        (contains (Rule_interpreter.describe_app app) "no automation rules"))

let threat_description =
  test "threat interpreter explains category, apps and risk" (fun () ->
      let a = extract_corpus "ComfortTV" and b = extract_corpus "ColdDefender" in
      let ctx = Detector.create Detector.offline_config in
      let threats =
        Detector.detect_pair ctx (a, List.hd a.Rule.rules) (b, List.hd b.Rule.rules)
      in
      let ar = List.find (fun (t : Threat.t) -> t.Threat.category = Threat.AR) threats in
      let text = Threat_interpreter.describe ar in
      check_bool "names the category" true (contains text "Actuator Race");
      check_bool "names both apps" true
        (contains text "ComfortTV" && contains text "ColdDefender");
      check_bool "shows a situation" true (contains text "Example situation");
      check_bool "hides solver internals" false (contains text "__other__");
      check_bool "strips app qualifiers" false (contains text "::"))

let describe_all_empty =
  test "describe_all with no threats" (fun () ->
      check_bool "calm message" true
        (contains (Threat_interpreter.describe_all []) "No cross-app interference"))

let undecided_rendered_distinctly =
  test "threat interpreter marks undecided threats and their reason" (fun () ->
      let a = extract_corpus "ComfortTV" and b = extract_corpus "ColdDefender" in
      let t =
        Threat.make Threat.AR
          (a, List.hd a.Rule.rules)
          (b, List.hd b.Rule.rules)
          ~severity:(Threat.Undecided "search-node fuel exhausted in Search.solve")
          "contradictory commands on the same actuator (on vs off)"
      in
      let text = Threat_interpreter.describe t in
      check_bool "marked undecided" true (contains text "UNDECIDED");
      check_bool "reason shown" true (contains text "search-node fuel exhausted");
      check_bool "flagged conservative" true (contains text "potential threat");
      let all = Threat_interpreter.describe_all [ t ] in
      check_bool "summary counts undecided" true (contains all "1 undecided");
      check_bool "to_string carries the marker" true
        (contains (Threat.to_string t) "[AR?]"))

let install_flow_keep =
  test "install flow: keep installs and records allowed pairs" (fun () ->
      let flow = Install_flow.create () in
      let report1 = Install_flow.propose flow (extract_corpus "ComfortTV") in
      check_int "no threats for the first app" 0 (List.length report1.Install_flow.threats);
      Install_flow.decide flow Install_flow.Keep;
      let report2 = Install_flow.propose flow (extract_corpus "ColdDefender") in
      check_bool "threats against installed app" true (report2.Install_flow.threats <> []);
      Install_flow.decide flow Install_flow.Keep;
      check_int "both installed" 2 (List.length (Install_flow.installed_apps flow)))

let install_flow_reject =
  test "install flow: reject leaves the home unchanged" (fun () ->
      let flow = Install_flow.create () in
      ignore (Install_flow.propose flow (extract_corpus "ComfortTV"));
      Install_flow.decide flow Install_flow.Keep;
      ignore (Install_flow.propose flow (extract_corpus "ColdDefender"));
      Install_flow.decide flow Install_flow.Reject;
      check_int "only first installed" 1 (List.length (Install_flow.installed_apps flow)))

let install_flow_no_pending =
  test "deciding without a proposal raises" (fun () ->
      let flow = Install_flow.create () in
      match Install_flow.decide flow Install_flow.Keep with
      | exception Install_flow.No_pending_install -> ()
      | _ -> Alcotest.fail "expected No_pending_install")

let install_flow_chained =
  test "install flow: chains surface through the Allowed list" (fun () ->
      let flow = Install_flow.create () in
      (* SwitchChangesMode -> MakeItSo forms CT edges; keep both *)
      ignore (Install_flow.propose flow (extract_corpus "MakeItSo"));
      Install_flow.decide flow Install_flow.Keep;
      ignore (Install_flow.propose flow (extract_corpus "SwitchChangesMode"));
      Install_flow.decide flow Install_flow.Keep;
      (* CurlingIron turns on outlets; via SwitchChangesMode the mode
         flips, and MakeItSo then unlocks the door: a 3-rule chain *)
      let report = Install_flow.propose flow (extract_corpus "CurlingIron") in
      check_bool "chained threat reported" true (report.Install_flow.chains <> []))

let tests =
  [
    describe_comfort_tv;
    describe_delay;
    describe_schedule;
    describe_app_numbering;
    describe_empty_app;
    threat_description;
    describe_all_empty;
    undecided_rendered_distinctly;
    install_flow_keep;
    install_flow_reject;
    install_flow_no_pending;
    install_flow_chained;
  ]
