(** Test-suite entry point: one alcotest run across all modules. *)

let () =
  Alcotest.run "homeguard"
    [
      ("lexer", Test_lexer.tests);
      ("parser", Test_parser.tests);
      ("domain", Test_domain.tests);
      ("domain-model", Test_domain_model.tests);
      ("bench-lib", Test_bench.tests);
      ("solver", Test_solver.tests);
      ("capability", Test_capability.tests);
      ("rules", Test_rules.tests);
      ("json", Test_json.tests);
      ("symexec", Test_symexec.tests);
      ("detector", Test_detector.tests);
      ("schedule", Test_schedule.tests);
      ("exec-more", Test_exec_more.tests);
      ("chain", Test_chain.tests);
      ("ifttt", Test_ifttt.tests);
      ("simulator", Test_sim.tests);
      ("handling", Test_handling.tests);
      ("config", Test_config.tests);
      ("frontend", Test_frontend.tests);
      ("corpus", Test_corpus.tests);
      ("integration", Test_integration.tests);
      ("robustness", Test_robustness.tests);
      ("totality", Test_total.tests);
    ]
