(** The verdict-cache contract: key soundness over the synthetic-home
    corpus (cached sweeps byte-identical to uncached, distinct cells
    never share a key), witness-template rehydration, Unknown markers
    never served, single-flight dedup across domains, journal
    round-trip and damage tolerance, and FIFO eviction. *)

module Vcache = Homeguard_vcache.Vcache
module Abstract = Homeguard_vcache.Abstract
module Detector = Homeguard_detector.Detector
module Threat = Homeguard_detector.Threat
module Solver = Homeguard_solver.Solver
module Budget = Homeguard_solver.Budget
module Formula = Homeguard_solver.Formula
module Term = Homeguard_solver.Term
module Store = Homeguard_solver.Store
module Domain = Homeguard_solver.Domain
module Extract = Homeguard_symexec.Extract
module Recorder = Homeguard_config.Recorder
module Config_uri = Homeguard_config.Config_uri
module Corpus = Homeguard_corpus.Corpus
module Synth = Homeguard_corpus.Synth
module App_entry = Homeguard_corpus.App_entry

let test name f = (name, `Quick, f)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "hg-vcache-%d-%d" (Unix.getpid ()) !n)
    in
    Unix.mkdir dir 0o755;
    dir

(* -- shared helpers ------------------------------------------------------------ *)

let extract_app (e : App_entry.t) =
  (Extract.extract_source ~name:e.App_entry.name e.App_entry.source).Extract.app

(* One synthetic home audited exactly the way the fleet audits it:
   extracted apps, recorded configuration, exhaustive pairwise audit. *)
let home_threats ?hook ~jobs (h : Synth.home) =
  let apps = List.map extract_app h.Synth.apps in
  let recorder = Recorder.create () in
  List.iter
    (fun uri ->
      match Config_uri.decode uri with
      | u -> Recorder.record_uri recorder u
      | exception Config_uri.Malformed _ -> ())
    h.Synth.configs;
  let config =
    {
      Detector.offline_config with
      Detector.app_constraints = Recorder.app_constraints recorder;
      Detector.shared_cache = hook;
    }
  in
  let ctx = Detector.create config in
  let r = Detector.audit_all ~jobs ctx apps in
  List.map Threat.to_string r.Detector.threats

(* A minimal query family for exercising the cache directly: one
   abstractable threshold binding against a fixed device store. Homes
   in the family differ only in the threshold value. *)
let family_store =
  Store.of_list
    [ ("a.t", Domain.interval (-1000) 1000); ("dev", Domain.interval 0 1000) ]

let family_formula thresh =
  Formula.And
    [
      Formula.Atom (Formula.Eq, Term.Var "a.t", Term.Int thresh);
      Formula.Atom (Formula.Gt, Term.Var "dev", Term.Var "a.t");
    ]

let family_query thresh : Detector.solve_query =
  {
    Detector.q_kind = "t";
    q_apps = ("appA", "appB");
    q_formula = family_formula thresh;
    q_store = family_store;
    q_bindings = [ ("a.t", Term.Int thresh) ];
    q_fingerprint = "test-fp";
  }

let family_classify thresh =
  let q = family_query thresh in
  Abstract.classify ~kind:q.Detector.q_kind ~apps:q.Detector.q_apps
    ~fingerprint:q.Detector.q_fingerprint ~bindings:q.Detector.q_bindings
    ~store:q.Detector.q_store ~formula:q.Detector.q_formula

let solve_family thresh () = Solver.solve family_store (family_formula thresh)

let counting_hook h calls q thresh =
  Vcache.hook h q (fun () ->
      incr calls;
      solve_family thresh ())

(* -- key abstraction ----------------------------------------------------------- *)

let keys_same_cell =
  test "values in one predicate cell share a key; cell changes split it"
    (fun () ->
      let k200 = (family_classify 200).Abstract.key in
      let k300 = (family_classify 300).Abstract.key in
      let k990 = (family_classify 990).Abstract.key in
      check_bool "200 and 300 sit in the same cells" true (k200 = k300);
      check_bool "990 is near the 1000 breakpoint: different cell" true
        (k200 <> k990);
      (* fingerprint, kind and app pair all discriminate *)
      let q = family_query 200 in
      let reclass ~kind ~apps ~fingerprint =
        (Abstract.classify ~kind ~apps ~fingerprint
           ~bindings:q.Detector.q_bindings ~store:q.Detector.q_store
           ~formula:q.Detector.q_formula)
          .Abstract.key
      in
      check_bool "kind splits" true
        (reclass ~kind:"u" ~apps:q.Detector.q_apps ~fingerprint:"test-fp" <> k200);
      check_bool "fingerprint splits" true
        (reclass ~kind:"t" ~apps:q.Detector.q_apps ~fingerprint:"other" <> k200);
      check_bool "app pair splits" true
        (reclass ~kind:"t" ~apps:("appA", "appC") ~fingerprint:"test-fp" <> k200);
      check_bool "app order is normalized" true
        (reclass ~kind:"t" ~apps:("appB", "appA") ~fingerprint:"test-fp" = k200))

let keys_guard_arithmetic =
  test "arithmetic or oversized formulas are never abstracted" (fun () ->
      let arith =
        Formula.Atom
          (Formula.Gt, Term.Sub (Term.Var "dev", Term.Var "a.t"), Term.Int 5)
      in
      let cls =
        Abstract.classify ~kind:"t" ~apps:("a", "b") ~fingerprint:"fp"
          ~bindings:[ ("a.t", Term.Int 200) ]
          ~store:family_store ~formula:arith
      in
      check_int "no slots under arithmetic" 0 (Array.length cls.Abstract.slots);
      let big =
        Formula.And
          (List.init (Abstract.max_atoms + 1) (fun i ->
               Formula.Atom (Formula.Ge, Term.Var "dev", Term.Int i)))
      in
      let cls2 =
        Abstract.classify ~kind:"t" ~apps:("a", "b") ~fingerprint:"fp"
          ~bindings:[ ("a.t", Term.Int 200) ]
          ~store:family_store ~formula:big
      in
      check_int "no slots past the atom bound" 0 (Array.length cls2.Abstract.slots))

(* -- serving ------------------------------------------------------------------- *)

let rehydrated_witness_is_byte_identical =
  test "a confirmed template serves witnesses byte-identical to fresh solves"
    (fun () ->
      let st = Vcache.open_store ~fsync:false ~dir:(fresh_dir ()) () in
      let h = Vcache.attach st ~owner:"t" in
      let calls = ref 0 in
      let v200 = counting_hook h calls (family_query 200) 200 in
      check_int "first member computes" 1 !calls;
      let v300 = counting_hook h calls (family_query 300) 300 in
      check_int "second member is the confirming probe" 2 !calls;
      let v400 = counting_hook h calls (family_query 400) 400 in
      check_int "third member serves from the template" 2 !calls;
      check_bool "cached verdicts equal fresh solves" true
        (v200 = solve_family 200 ()
        && v300 = solve_family 300 ()
        && v400 = solve_family 400 ());
      let c = Vcache.counters h in
      check_int "no conflicts" 0 c.Vcache.conflicts;
      check_bool "the template hit counted" true (c.Vcache.hits >= 1);
      (* exact-value revisit serves the stored model *)
      let again = counting_hook h calls (family_query 200) 200 in
      check_int "no recompute on exact values" 2 !calls;
      check_bool "same verdict" true (again = v200);
      Vcache.close_store st)

let unknown_is_never_served =
  test "Unknown verdicts are markers, never answers" (fun () ->
      let st = Vcache.open_store ~fsync:false ~dir:(fresh_dir ()) () in
      let h = Vcache.attach st ~owner:"t" in
      let calls = ref 0 in
      let unknown =
        Budget.Unknown { Budget.trip = Budget.Prop_fuel; where = "test" }
      in
      let ask () =
        Vcache.hook h (family_query 200) (fun () ->
            incr calls;
            unknown)
      in
      check_bool "unknown returned" true (ask () = unknown);
      check_bool "unknown returned again" true (ask () = unknown);
      check_int "every lookup recomputed" 2 !calls;
      check_int "stale marker was seen" 1 (Vcache.counters h).Vcache.stale_unknowns;
      check_bool "marker is present" true
        (Vcache.verdict_kind st (family_classify 200).Abstract.key
        = Some "unknown");
      (* compaction expires the marker *)
      Vcache.compact st;
      check_int "compaction drops unknowns" 0 (Vcache.entries st);
      (* a later decisive verdict replaces the marker *)
      ignore (counting_hook h calls (family_query 200) 200);
      check_bool "decisive entry cached" true
        (Vcache.verdict_kind st (family_classify 200).Abstract.key = Some "sat");
      Vcache.close_store st)

let single_flight_dedup =
  test "concurrent lookups of one class solve once" (fun () ->
      let st = Vcache.open_store ~fsync:false ~dir:(fresh_dir ()) () in
      let h = Vcache.attach st ~owner:"t" in
      let calls = Atomic.make 0 in
      let ask () =
        Vcache.hook h (family_query 200) (fun () ->
            Atomic.incr calls;
            Unix.sleepf 0.05;
            solve_family 200 ())
      in
      let d1 = Stdlib.Domain.spawn ask and d2 = Stdlib.Domain.spawn ask in
      let v1 = Stdlib.Domain.join d1 and v2 = Stdlib.Domain.join d2 in
      check_int "one compute" 1 (Atomic.get calls);
      check_bool "both callers answered identically" true
        (v1 = v2 && v1 = solve_family 200 ());
      check_bool "the merge was counted" true
        ((Vcache.counters h).Vcache.single_flight_merges >= 1);
      Vcache.close_store st)

(* -- persistence --------------------------------------------------------------- *)

let fill _st h n =
  let calls = ref 0 in
  for i = 0 to n - 1 do
    (* spread values across distinct cells near distinct breakpoints *)
    ignore (counting_hook h calls (family_query (990 - i)) (990 - i))
  done

let reopen_round_trip =
  test "reopen replays the journal to an identical dump" (fun () ->
      let dir = fresh_dir () in
      let st = Vcache.open_store ~fsync:false ~dir () in
      let h = Vcache.attach st ~owner:"t" in
      fill st h 8;
      let live = Vcache.dump st in
      check_bool "entries cached" true (Vcache.entries st > 0);
      Vcache.close_store st;
      let st2 = Vcache.open_store ~fsync:false ~dir () in
      check_bool "dump identical across restart" true (Vcache.dump st2 = live);
      check_int "no damage" 0 (Vcache.replay_damage st2);
      (* compaction preserves decisive state *)
      Vcache.compact st2;
      check_bool "dump identical after compaction" true (Vcache.dump st2 = live);
      Vcache.close_store st2;
      let st3 = Vcache.open_store ~fsync:false ~dir () in
      check_bool "dump identical after compacted reopen" true
        (Vcache.dump st3 = live);
      Vcache.close_store st3)

let torn_tail_dropped =
  test "a torn cache journal replays its intact prefix, never a torn entry"
    (fun () ->
      let dir = fresh_dir () in
      let st = Vcache.open_store ~fsync:false ~dir () in
      let h = Vcache.attach st ~owner:"t" in
      fill st h 6;
      let live = Vcache.dump st in
      Vcache.close_store st;
      (* tear the last frame mid-write *)
      let path = Filename.concat dir "cache.journal" in
      let size = (Unix.stat path).Unix.st_size in
      let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
      Unix.ftruncate fd (size - 7);
      Unix.close fd;
      let st2 = Vcache.open_store ~fsync:false ~dir () in
      check_bool "damage surfaced" true (Vcache.replay_damage st2 > 0);
      let d2 = Vcache.dump st2 in
      check_bool "recovered state is a prefix-consistent subset" true
        (List.for_all (fun kv -> List.mem kv live) d2);
      check_bool "most entries survived" true
        (List.length d2 >= List.length live - 1);
      Vcache.close_store st2;
      (* the damage-triggered rewrite is durable: a second reopen is
         clean and identical *)
      let st3 = Vcache.open_store ~fsync:false ~dir () in
      check_int "journal rewritten clean" 0 (Vcache.replay_damage st3);
      check_bool "replay deterministic" true (Vcache.dump st3 = d2);
      Vcache.close_store st3)

let eviction_is_bounded_and_journaled =
  test "the capacity bound evicts oldest-first and survives replay" (fun () ->
      let dir = fresh_dir () in
      let st = Vcache.open_store ~fsync:false ~max_entries:4 ~dir () in
      let h = Vcache.attach st ~owner:"t" in
      fill st h 7;
      check_bool "bounded" true (Vcache.entries st <= 4);
      check_bool "evictions counted" true ((Vcache.counters h).Vcache.evicts >= 3);
      let live = Vcache.dump st in
      Vcache.close_store st;
      let st2 = Vcache.open_store ~fsync:false ~max_entries:4 ~dir () in
      check_bool "replay honors the deletions" true (Vcache.dump st2 = live);
      Vcache.close_store st2)

(* -- corpus property ----------------------------------------------------------- *)

let sweep_is_byte_identical =
  test "synthetic-fleet audits: cached == uncached, cold and warm, any jobs"
    (fun () ->
      let homes = Corpus.synth ~seed:11 ~n_homes:40 in
      let base = List.map (home_threats ~jobs:1) homes in
      let st = Vcache.open_store ~fsync:false ~dir:(fresh_dir ()) () in
      let h = Vcache.attach st ~owner:"prop" in
      let hook = Vcache.hook h in
      let cold = List.map (home_threats ~hook ~jobs:1) homes in
      check_bool "cold cached sweep is byte-identical" true (base = cold);
      let c = Vcache.counters h in
      check_bool "cross-home classes actually hit" true (c.Vcache.hits > 0);
      check_int "zero conflicts: the abstraction never lied" 0 c.Vcache.conflicts;
      let warm = List.map (home_threats ~hook ~jobs:1) homes in
      check_bool "warm cached sweep is byte-identical" true (base = warm);
      let parallel = List.map (home_threats ~hook ~jobs:2) homes in
      check_bool "parallel cached sweep is byte-identical" true (base = parallel);
      check_int "zero conflicts after every sweep" 0
        (Vcache.counters h).Vcache.conflicts;
      Vcache.close_store st)

let () =
  Alcotest.run "homeguard-vcache"
    [
      ("keys", [ keys_same_cell; keys_guard_arithmetic ]);
      ( "serving",
        [
          rehydrated_witness_is_byte_identical;
          unknown_is_never_served;
          single_flight_dedup;
        ] );
      ( "persistence",
        [ reopen_round_trip; torn_tail_dropped; eviction_is_bounded_and_journaled ]
      );
      ("property", [ sweep_is_byte_identical ]);
    ]
