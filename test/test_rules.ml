(** Rule IR and rule-database tests. *)

module Rule = Homeguard_rules.Rule
module Rule_db = Homeguard_rules.Rule_db
module Formula = Homeguard_solver.Formula
module Term = Homeguard_solver.Term
module Domain = Homeguard_solver.Domain
module Store = Homeguard_solver.Store
open Helpers

let mk_app ?(inputs = []) ?(rules = []) name =
  { Rule.name; description = ""; inputs; rules; uses_web_services = false }

let input var input_type = { Rule.var; input_type; title = None; multiple = false }

let mk_rule ?(app = "A") ?(id = "A#1") ?(data = []) ?(predicate = Formula.True)
    ?(actions = []) trigger =
  { Rule.app_name = app; rule_id = id; trigger; condition = { Rule.data; predicate }; actions }

let event_trigger ?(constraint_ = Formula.True) var attr =
  Rule.Event { subject = Rule.Device var; attribute = attr; constraint_ }

let capability_of_input =
  test "capability_of_input parses capability types" (fun () ->
      let app =
        mk_app "A" ~inputs:[ input "sw" "capability.switch"; input "n" "number" ]
      in
      check_bool "switch" true (Rule.capability_of_input app "sw" = Some "switch");
      check_bool "number" true (Rule.capability_of_input app "n" = None);
      check_bool "missing" true (Rule.capability_of_input app "zz" = None))

let device_inputs_test =
  test "device_inputs filters to capability-typed inputs" (fun () ->
      let app =
        mk_app "A"
          ~inputs:[ input "sw" "capability.switch"; input "n" "number"; input "l" "capability.lock" ]
      in
      Alcotest.(check (list string)) "devices" [ "sw"; "l" ] (Rule.device_inputs app))

let controls_devices_test =
  test "controls_devices distinguishes notification-only rules" (fun () ->
      let dev_rule =
        mk_rule (event_trigger "sw" "switch")
          ~actions:
            [ { Rule.target = Rule.Act_device "sw"; command = "on"; params = []; when_ = 0;
                period = 0; action_data = [] } ]
      in
      let msg_rule =
        mk_rule (event_trigger "sw" "switch")
          ~actions:
            [ { Rule.target = Rule.Act_messaging; command = "sendPush"; params = []; when_ = 0;
                period = 0; action_data = [] } ]
      in
      check_bool "device rule" true (Rule.controls_devices dev_rule);
      check_bool "messaging rule" false (Rule.controls_devices msg_rule))

let situation_combines =
  test "situation conjoins trigger, data and predicate" (fun () ->
      let r =
        mk_rule
          (event_trigger "sw" "switch"
             ~constraint_:(Formula.eq (Term.Var "sw.switch") (Term.Str "on")))
          ~data:[ ("t", Term.Var "s.temperature") ]
          ~predicate:(Formula.gt (Term.Var "t") (Term.Int 30))
      in
      let vars = Formula.free_vars (Rule.situation r) in
      check_bool "has trigger var" true (List.mem "sw.switch" vars);
      check_bool "has data var" true (List.mem "s.temperature" vars);
      check_bool "has predicate var" true (List.mem "t" vars))

let store_types_capability_attrs =
  test "store_for_vars types device attributes from the registry" (fun () ->
      let cap_of_var = function "sw" -> Some "switch" | _ -> None in
      let store = Rule.store_for_vars ~cap_of_var [ "sw.switch"; "location.mode"; "time.now" ] in
      (match Store.find_opt "sw.switch" store with
      | Some (Domain.Enums vs) -> check_bool "on in domain" true (List.mem "on" vs)
      | _ -> Alcotest.fail "switch attr untyped");
      (match Store.find_opt "location.mode" store with
      | Some (Domain.Enums _) -> ()
      | _ -> Alcotest.fail "mode untyped");
      match Store.find_opt "time.now" store with
      | Some (Domain.Ints _ | Domain.Bits _) -> ()
      | _ -> Alcotest.fail "time untyped")

let store_falls_back_on_attribute =
  test "store_for_vars falls back to any capability with the attribute" (fun () ->
      let store = Rule.store_for_vars ~cap_of_var:(fun _ -> None) [ "x.temperature" ] in
      match Store.find_opt "x.temperature" store with
      | Some (Domain.Ints _ | Domain.Bits _) -> ()
      | _ -> Alcotest.fail "temperature untyped")

let db_install_uninstall =
  test "rule db installs, updates, uninstalls" (fun () ->
      let db = Rule_db.create () in
      let r = mk_rule (event_trigger "sw" "switch") in
      let app = mk_app "A" ~rules:[ r ] in
      ignore (Rule_db.install db app);
      check_int "installed" 1 (List.length (Rule_db.installed_apps db));
      check_int "rules" 1 (Rule_db.rule_count db);
      Rule_db.update db { app with Rule.rules = [ r; { r with Rule.rule_id = "A#2" } ] };
      check_int "still one app" 1 (List.length (Rule_db.installed_apps db));
      check_int "two rules" 2 (Rule_db.rule_count db);
      Rule_db.uninstall db "A";
      check_int "empty" 0 (List.length (Rule_db.installed_apps db)))

let db_all_rules_tagged =
  test "all_rules tags rules with their app" (fun () ->
      let db = Rule_db.create () in
      let r = mk_rule (event_trigger "sw" "switch") in
      ignore (Rule_db.install db (mk_app "A" ~rules:[ r ]));
      ignore (Rule_db.install db (mk_app "B" ~rules:[ { r with Rule.app_name = "B" } ]));
      let tags = List.map (fun (a, _) -> a.Rule.name) (Rule_db.all_rules db) in
      Alcotest.(check (list string)) "apps in order" [ "A"; "B" ] tags)

let tests =
  [
    capability_of_input;
    device_inputs_test;
    controls_devices_test;
    situation_combines;
    store_types_capability_attrs;
    store_falls_back_on_attribute;
    db_install_uninstall;
    db_all_rules_tagged;
  ]
