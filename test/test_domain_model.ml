(** Model-based properties for the integer domain algebra: every
    operation is checked against a naive sorted-list-of-ints model, and
    each case runs under BOTH representations (interval sets and the
    small-domain bitset fast path), which must agree with the model and
    with each other. Cases come from a seeded LCG so failures replay. *)

open Homeguard_solver

(* -- deterministic generator --------------------------------------------- *)

(* Simple multiplicative LCG (63-bit-safe constants); the masked state
   keeps everything positive. *)
let make_rng seed = ref seed

let next r =
  r := ((!r * 2685821657736338717) + 1442695040888963407) land max_int;
  !r

let rand r bound = if bound <= 0 then 0 else next r mod bound

let pick r xs = List.nth xs (rand r (List.length xs))

(* An interval spec: (lo, len) with len small enough to enumerate. Pools
   mix the bitset sweet spot (small values near zero), wide offsets that
   force interval sets, and both ends of the int range. *)
let gen_lo r =
  match rand r 10 with
  | 0 | 1 | 2 | 3 | 4 -> rand r 101 - 50
  | 5 | 6 -> (rand r 200_001 - 100_000) * 97
  | 7 -> min_int + rand r 9
  | 8 -> max_int - 8 - rand r 9
  | _ -> pick r [ min_int; max_int - 8; -1; 0; 1 ]

let gen_spec r =
  List.init (rand r 5) (fun _ ->
      let lo = gen_lo r in
      let len = rand r 9 in
      let lo = if lo > max_int - len then max_int - len else lo in
      (lo, len))

(* Probe values: members, near-misses and extremes. *)
let gen_probe r spec =
  match (rand r 4, spec) with
  | 0, (lo, len) :: _ -> lo + rand r (len + 1)
  | 1, _ -> rand r 121 - 60
  | 2, _ -> pick r [ min_int; min_int + 1; max_int; max_int - 1; 0 ]
  | _ -> gen_lo r

(* -- the model: a sorted list of ints ------------------------------------ *)

let model_of_spec spec =
  List.sort_uniq compare
    (List.concat_map (fun (lo, len) -> List.init (len + 1) (fun i -> lo + i)) spec)

let m_inter a b = List.filter (fun n -> List.mem n b) a
let m_union a b = List.sort_uniq compare (a @ b)
let m_remove n a = List.filter (fun x -> x <> n) a
let m_at_most k a = List.filter (fun x -> x <= k) a
let m_at_least k a = List.filter (fun x -> x >= k) a
let m_mag n = if n >= 0 then n else if n = Stdlib.min_int then Stdlib.max_int else -n

(* -- bridging ------------------------------------------------------------ *)

let domain_of_spec spec =
  List.fold_left
    (fun acc (lo, len) -> Domain.union acc (Domain.interval lo (lo + len)))
    (Domain.Ints []) spec

let elements d =
  List.filter_map (function Domain.Int n -> Some n | Domain.Str _ -> None) (Domain.values d)

let with_rep bitset f =
  let saved = !Domain.bitset_enabled in
  Domain.bitset_enabled := bitset;
  Fun.protect ~finally:(fun () -> Domain.bitset_enabled := saved) f

let show_spec spec =
  "["
  ^ String.concat "; " (List.map (fun (lo, len) -> Printf.sprintf "(%d,+%d)" lo len) spec)
  ^ "]"

(* One generated case, checked under one representation. Returns the
   element lists of every derived domain so the two representations can
   also be diffed against each other. *)
let check_case ~ctx spec1 spec2 n k =
  let fail fmt = Printf.ksprintf (fun s -> Alcotest.failf "%s: %s" ctx s) fmt in
  let m1 = model_of_spec spec1 and m2 = model_of_spec spec2 in
  let d1 = domain_of_spec spec1 and d2 = domain_of_spec spec2 in
  let expect label expected d =
    let got = elements d in
    if got <> expected then
      fail "%s disagrees with model on %s / %s (n=%d k=%d)" label (show_spec spec1)
        (show_spec spec2) n k;
    got
  in
  let build = expect "normalize" m1 d1 in
  let inter = expect "inter" (m_inter m1 m2) (Domain.inter d1 d2) in
  let union = expect "union" (m_union m1 m2) (Domain.union d1 d2) in
  let remove = expect "remove_int" (m_remove n m1) (Domain.remove_int n d1) in
  let at_most = expect "at_most" (m_at_most k m1) (Domain.at_most k d1) in
  let at_least = expect "at_least" (m_at_least k m1) (Domain.at_least k d1) in
  if Domain.mem_int n d1 <> List.mem n m1 then
    fail "mem_int %d disagrees with model on %s" n (show_spec spec1);
  if Domain.size d1 <> List.length m1 then fail "size disagrees on %s" (show_spec spec1);
  (match m1 with
  | [] ->
    if Domain.choose d1 <> None then fail "choose on empty domain";
    if Domain.distance_to_zero d1 <> Stdlib.max_int then fail "distance_to_zero on empty"
  | _ ->
    let best = List.fold_left (fun acc x -> min acc (m_mag x)) Stdlib.max_int m1 in
    (match Domain.choose d1 with
    | Some (Domain.Int c) ->
      if not (List.mem c m1) then fail "choose picked a non-member %d" c;
      if m_mag c <> best then fail "choose %d is not closest to zero (best mag %d)" c best
    | _ -> fail "choose returned no int on %s" (show_spec spec1));
    if Domain.distance_to_zero d1 <> best then fail "distance_to_zero <> min magnitude");
  let split =
    if Domain.size d1 >= 2 then begin
      let l, r = Domain.split d1 in
      let el = elements l and er = elements r in
      if el = [] || er = [] then fail "split produced an empty half on %s" (show_spec spec1);
      if el @ er <> m1 then fail "split does not partition %s" (show_spec spec1);
      el @ [ Stdlib.max_int ] @ er
    end
    else []
  in
  [ build; inter; union; remove; at_most; at_least; split ]

let model_laws =
  Helpers.test "500 seeded cases agree with the set model under both reps" (fun () ->
      let r = make_rng 0x5eed in
      for i = 1 to 500 do
        let spec1 = gen_spec r and spec2 = gen_spec r in
        let n = gen_probe r spec1 and k = gen_probe r spec1 in
        let ctx rep = Printf.sprintf "case %d (%s)" i rep in
        let with_bits =
          with_rep true (fun () -> check_case ~ctx:(ctx "bitset") spec1 spec2 n k)
        in
        let without =
          with_rep false (fun () -> check_case ~ctx:(ctx "iset") spec1 spec2 n k)
        in
        if with_bits <> without then
          Alcotest.failf "case %d: representations disagree on %s / %s (n=%d k=%d)" i
            (show_spec spec1) (show_spec spec2) n k
      done)

(* -- representation sanity ----------------------------------------------- *)

let rep_selection =
  Helpers.test "small domains use the bitset path only when enabled" (fun () ->
      with_rep true (fun () ->
          (match Domain.interval 0 5 with
          | Domain.Bits _ -> ()
          | d -> Alcotest.failf "expected Bits, got %s" (Domain.to_string d));
          match Domain.interval 0 100 with
          | Domain.Ints _ -> ()
          | d -> Alcotest.failf "expected Ints for a wide span, got %s" (Domain.to_string d));
      with_rep false (fun () ->
          match Domain.interval 0 5 with
          | Domain.Ints _ -> ()
          | d -> Alcotest.failf "expected Ints with bitset disabled, got %s" (Domain.to_string d)))

(* -- min_int regressions ------------------------------------------------- *)

(* [abs min_int] is negative in OCaml; choose/distance_to_zero used to
   misorder any domain containing min_int. *)
let min_int_choose =
  Helpers.test "choose/distance on {min_int}" (fun () ->
      let d = Domain.interval Stdlib.min_int Stdlib.min_int in
      Helpers.check_bool "member" true (Domain.mem_int Stdlib.min_int d);
      (match Domain.choose d with
      | Some (Domain.Int n) -> Helpers.check_bool "chose min_int" true (n = Stdlib.min_int)
      | _ -> Alcotest.fail "no value chosen");
      Helpers.check_int "distance saturates" Stdlib.max_int (Domain.distance_to_zero d))

let min_int_mixed_signs =
  Helpers.test "choose prefers small magnitude over min_int/max_int" (fun () ->
      let d =
        Domain.union
          (Domain.interval Stdlib.min_int Stdlib.min_int)
          (Domain.union (Domain.interval (-3) (-1)) (Domain.interval 2 4))
      in
      (match Domain.choose d with
      | Some (Domain.Int n) -> Helpers.check_int "closest to zero" (-1) n
      | _ -> Alcotest.fail "no value chosen");
      Helpers.check_int "distance" 1 (Domain.distance_to_zero d);
      let extremes =
        Domain.union
          (Domain.interval Stdlib.min_int Stdlib.min_int)
          (Domain.interval Stdlib.max_int Stdlib.max_int)
      in
      Helpers.check_int "both extremes: distance is max_int" Stdlib.max_int
        (Domain.distance_to_zero extremes))

let min_int_remove =
  Helpers.test "remove_int at the int-range extremes" (fun () ->
      let d = Domain.remove_int Stdlib.min_int (Domain.interval Stdlib.min_int (Stdlib.min_int + 3)) in
      Helpers.check_int "size after removing min_int" 3 (Domain.size d);
      Helpers.check_bool "min_int gone" false (Domain.mem_int Stdlib.min_int d);
      let d' = Domain.remove_int Stdlib.max_int (Domain.interval (Stdlib.max_int - 3) Stdlib.max_int) in
      Helpers.check_int "size after removing max_int" 3 (Domain.size d');
      Helpers.check_bool "max_int gone" false (Domain.mem_int Stdlib.max_int d'))

let min_int_split =
  Helpers.test "split at the bottom of the int range" (fun () ->
      let d = Domain.interval Stdlib.min_int (Stdlib.min_int + 5) in
      let l, r = Domain.split d in
      Helpers.check_int "partition" 6 (Domain.size l + Domain.size r);
      Helpers.check_bool "disjoint" true (Domain.is_empty (Domain.inter l r)))

let tests =
  [
    model_laws;
    rep_selection;
    min_int_choose;
    min_int_mixed_signs;
    min_int_remove;
    min_int_split;
  ]
