(** Simulator tests: event queue, environment physics, rule execution,
    and dynamic verification of statically detected threats (the role
    the paper's SmartThings testbed plays in §VIII-A). *)

module Engine = Homeguard_sim.Engine
module Event_queue = Homeguard_sim.Event_queue
module Env_model = Homeguard_sim.Env_model
module Trace = Homeguard_sim.Trace
module Scenario = Homeguard_sim.Scenario
module Device = Homeguard_st.Device
module Env = Homeguard_st.Env_feature
open Helpers

(* -- event queue ----------------------------------------------------------- *)

let queue_ordering =
  test "events pop in time order" (fun () ->
      let q = Event_queue.create () in
      Event_queue.push q 30 "c";
      Event_queue.push q 10 "a";
      Event_queue.push q 20 "b";
      let order = List.init 3 (fun _ -> Option.get (Event_queue.pop q)) in
      Alcotest.(check (list (pair int string))) "order" [ (10, "a"); (20, "b"); (30, "c") ] order)

let queue_fifo_same_time =
  test "same-time events preserve insertion order" (fun () ->
      let q = Event_queue.create () in
      Event_queue.push q 5 "first";
      Event_queue.push q 5 "second";
      check_string "first" "first" (snd (Option.get (Event_queue.pop q)));
      check_string "second" "second" (snd (Option.get (Event_queue.pop q))))

let queue_empty =
  test "empty queue behaviour" (fun () ->
      let q = Event_queue.create () in
      check_bool "is_empty" true (Event_queue.is_empty q);
      check_bool "pop none" true (Event_queue.pop q = None);
      check_bool "peek none" true (Event_queue.peek_time q = None))

let queue_property =
  qtest "queue pops are globally time-sorted"
    QCheck2.Gen.(list_size (int_range 1 30) (int_bound 1000))
    (fun times ->
      let q = Event_queue.create () in
      List.iter (fun t -> Event_queue.push q t t) times;
      let rec drain acc =
        match Event_queue.pop q with None -> List.rev acc | Some (t, _) -> drain (t :: acc)
      in
      let popped = drain [] in
      popped = List.sort compare times)

let queue_pop_until_bound =
  test "pop_until respects the time bound" (fun () ->
      let q = Event_queue.create () in
      Event_queue.push q 10 "a";
      Event_queue.push q 20 "b";
      Event_queue.push q 30 "c";
      check_bool "pops at the bound" true (Event_queue.pop_until q 20 = Some (10, "a"));
      check_bool "pops exactly at the bound" true (Event_queue.pop_until q 20 = Some (20, "b"));
      check_bool "beyond the bound stays queued" true (Event_queue.pop_until q 20 = None);
      check_int "later entry survives" 1 (Event_queue.size q);
      check_bool "a wider bound releases it" true (Event_queue.pop_until q 30 = Some (30, "c")))

let queue_pop_until_fifo =
  test "pop_until keeps FIFO order among same-time entries" (fun () ->
      let q = Event_queue.create () in
      Event_queue.push q 7 "first";
      Event_queue.push q 7 "second";
      Event_queue.push q 7 "third";
      let order = List.init 3 (fun _ -> snd (Option.get (Event_queue.pop_until q 7))) in
      Alcotest.(check (list string)) "insertion order" [ "first"; "second"; "third" ] order)

(* -- environment model ------------------------------------------------------ *)

let env_relaxes_to_baseline =
  test "environment relaxes toward baseline" (fun () ->
      let env = Env_model.create () in
      Env_model.set_value env Env.Temperature 100.0;
      Env_model.step env ~dt_ms:600_000;
      let t = Env_model.value env Env.Temperature in
      check_bool "cooled toward 72" true (t < 100.0 && t > 72.0))

let env_influences_push =
  test "influences push features" (fun () ->
      let env = Env_model.create () in
      Env_model.set_influences env "heater" [ (Env.Temperature, 1.0) ];
      let before = Env_model.value env Env.Temperature in
      Env_model.step env ~dt_ms:600_000;
      check_bool "warmer" true (Env_model.value env Env.Temperature > before);
      Env_model.clear_influences env "heater";
      Env_model.set_value env Env.Temperature 90.0;
      Env_model.step env ~dt_ms:600_000;
      check_bool "relaxing after clear" true (Env_model.value env Env.Temperature < 90.0))

let env_power_instantaneous =
  test "power reflects active influences instantly" (fun () ->
      let env = Env_model.create () in
      Env_model.set_influences env "ac" [ (Env.Power, 900.0) ];
      Env_model.step env ~dt_ms:1000;
      check_bool "power above baseline" true (Env_model.value env Env.Power >= 900.0))

let env_energy_integrates =
  test "energy integrates power over time" (fun () ->
      let env = Env_model.create () in
      let e0 = Env_model.value env Env.Energy in
      Env_model.step env ~dt_ms:3_600_000;
      check_bool "energy grew" true (Env_model.value env Env.Energy > e0))

(* -- engine ------------------------------------------------------------------ *)

let motion = Device.make ~label:"Motion" ~device_type:"motion" [ "motionSensor" ]
let lamp = Device.make ~label:"Lamp" ~device_type:"light" [ "switch" ]

let install_brighten t =
  let app = extract_corpus "BrightenMyPath" in
  Engine.install t app
    [ ("motion1", Engine.B_device motion); ("pathLights", Engine.B_device lamp) ]

let rule_fires_on_event =
  test "a rule fires when its trigger event arrives" (fun () ->
      let t = Engine.create () in
      install_brighten t;
      Engine.stimulate t motion.Device.id "motion" "active";
      Engine.run t ~until_ms:5_000;
      check_bool "lamp turned on" true
        (Trace.final_attribute (Engine.trace t) "Lamp" "switch" = Some "on"))

let trigger_value_respected =
  test "trigger value constraints are respected" (fun () ->
      let t = Engine.create () in
      install_brighten t;
      (* motion.inactive must NOT fire the motion.active subscription *)
      Engine.stimulate t motion.Device.id "motion" "active";
      Engine.run t ~until_ms:2_000;
      Engine.stimulate t lamp.Device.id "switch" "off";
      Engine.stimulate t motion.Device.id "motion" "inactive";
      Engine.run t ~until_ms:10_000;
      check_bool "lamp stays off" true
        (Trace.final_attribute (Engine.trace t) "Lamp" "switch" = Some "off"))

let condition_blocks_execution =
  test "a false condition blocks the action" (fun () ->
      let t = Engine.create () in
      let app = extract_corpus "SmartSecurity" in
      let siren = Device.make ~label:"Siren" ~device_type:"alarm" [ "alarm" ] in
      Engine.install t app
        [ ("securityMotion", Engine.B_device motion); ("securityAlarm", Engine.B_device siren) ];
      (* mode is Home, not Away -> rule must not fire *)
      Engine.stimulate t motion.Device.id "motion" "active";
      Engine.run t ~until_ms:5_000;
      check_bool "no siren" true (Trace.final_attribute (Engine.trace t) "Siren" "alarm" = None))

let delayed_action_fires_late =
  test "runIn-delayed actions execute after the delay" (fun () ->
      let t = Engine.create () in
      let app = extract_corpus "TurnItOnFor5Minutes" in
      let contact = Device.make ~label:"Door" ~device_type:"contact" [ "contactSensor" ] in
      Engine.install t app
        [ ("contact1", Engine.B_device contact); ("timedLight", Engine.B_device lamp) ];
      Engine.stimulate t contact.Device.id "contact" "open";
      Engine.run t ~until_ms:400_000;
      let timeline = Trace.attribute_timeline (Engine.trace t) "Lamp" "switch" in
      (match timeline with
      | [ (t_on, "on"); (t_off, "off") ] ->
        check_bool "off about 300s after on" true (t_off - t_on >= 299_000)
      | _ -> Alcotest.fail "expected on-then-off timeline"))

let user_value_binding =
  test "user-configured thresholds drive conditions" (fun () ->
      let t = Engine.create () in
      let app = extract_corpus "ItsTooHot" in
      let sensor = Device.make ~label:"Thermo" ~device_type:"temp" [ "temperatureMeasurement" ] in
      let ac = Device.make ~label:"AC unit" ~device_type:"ac" [ "switch" ] in
      Engine.install t app
        [ ("tempSensor", Engine.B_device sensor); ("hotLimit", Engine.B_int 85);
          ("acSwitch", Engine.B_device ac) ];
      Engine.stimulate t sensor.Device.id "temperature" "80";
      Engine.run t ~until_ms:3_000;
      check_bool "below limit: AC stays off" true
        (Trace.final_attribute (Engine.trace t) "AC unit" "switch" = None);
      Engine.stimulate t sensor.Device.id "temperature" "90";
      Engine.run t ~until_ms:6_000;
      check_bool "above limit: AC on" true
        (Trace.final_attribute (Engine.trace t) "AC unit" "switch" = Some "on"))

let mode_events_fire_rules =
  test "location-mode changes trigger mode-subscribed rules" (fun () ->
      let t = Engine.create () in
      let app = extract_corpus "GoodNightLights" in
      Engine.install t app [ ("bedtimeLights", Engine.B_device lamp) ];
      Engine.stimulate t lamp.Device.id "switch" "on";
      Engine.run t ~until_ms:1_000;
      Engine.set_mode t "Night";
      Engine.run t ~until_ms:5_000;
      check_bool "lights off in Night mode" true
        (Trace.final_attribute (Engine.trace t) "Lamp" "switch" = Some "off"))

let scheduled_rule_fires =
  test "scheduled rules fire at their time of day" (fun () ->
      let t = Engine.create () in
      let app = extract_corpus "GoodMorningCoffee" in
      let coffee = Device.make ~label:"Coffee maker" ~device_type:"coffee" [ "switch" ] in
      Engine.install t app [ ("coffeeMaker", Engine.B_device coffee) ];
      (* 07:00 = 25_200_000 ms after the simulated midnight start *)
      Engine.run t ~until_ms:26_000_000;
      check_bool "coffee on" true
        (Trace.final_attribute (Engine.trace t) "Coffee maker" "switch" = Some "on"))

(* -- trace analyzers ---------------------------------------------------------- *)

let cmd at app device command = Trace.Command { at; app; rule = app ^ "#1"; device; command }

let opposites_symmetric =
  test "opposite_commands_within is symmetric in the pair order" (fun () ->
      (* the pair is declared (on, off) but the off lands first *)
      let trace = [ cmd 0 "A" "Plug" "off"; cmd 2_000 "B" "Plug" "on" ] in
      check_bool "reversed order still detected" true
        (Trace.opposite_commands_within trace "Plug" ~window_ms:5_000 ~opposites:[ ("on", "off") ]))

let opposites_no_self_match =
  test "opposite_commands_within never compares an entry with itself" (fun () ->
      (* a self-inverse command: one occurrence must not race itself... *)
      let one = [ cmd 0 "A" "Plug" "toggle" ] in
      check_bool "single toggle is not a race" false
        (Trace.opposite_commands_within one "Plug" ~window_ms:5_000
           ~opposites:[ ("toggle", "toggle") ]);
      (* ...but two distinct occurrences do *)
      let two = [ cmd 0 "A" "Plug" "toggle"; cmd 1_000 "B" "Plug" "toggle" ] in
      check_bool "two toggles race" true
        (Trace.opposite_commands_within two "Plug" ~window_ms:5_000
           ~opposites:[ ("toggle", "toggle") ]))

let opposites_window_respected =
  test "opposite_commands_within honours the time window" (fun () ->
      let trace = [ cmd 0 "A" "Plug" "on"; cmd 60_000 "B" "Plug" "off" ] in
      check_bool "outside the window" false
        (Trace.opposite_commands_within trace "Plug" ~window_ms:5_000 ~opposites:[ ("on", "off") ]);
      check_bool "inside a wider window" true
        (Trace.opposite_commands_within trace "Plug" ~window_ms:60_000
           ~opposites:[ ("on", "off") ]))

let attr at device attribute value = Trace.Attr_change { at; device; attribute; value }

let flap_count_counts_flips =
  test "flap_count counts value flips, not changes" (fun () ->
      let trace =
        [ attr 0 "Lamp" "switch" "on"; attr 1 "Lamp" "switch" "on"; attr 2 "Lamp" "switch" "off";
          attr 3 "Lamp" "switch" "off"; attr 4 "Lamp" "switch" "on" ]
      in
      check_int "on,on,off,off,on = 2 flips" 2 (Trace.flap_count trace "Lamp" "switch");
      check_int "empty trace" 0 (Trace.flap_count [] "Lamp" "switch");
      check_int "a single value cannot flip" 0
        (Trace.flap_count [ attr 0 "Lamp" "switch" "on" ] "Lamp" "switch"))

let attribute_timeline_filters =
  test "attribute_timeline filters by device and attribute" (fun () ->
      let trace =
        [ attr 0 "Lamp" "switch" "on"; attr 1 "Fan" "switch" "on"; attr 2 "Lamp" "level" "80";
          attr 3 "Lamp" "switch" "off"; cmd 4 "A" "Lamp" "off" ]
      in
      Alcotest.(check (list (pair int string)))
        "only Lamp.switch changes"
        [ (0, "on"); (3, "off") ]
        (Trace.attribute_timeline trace "Lamp" "switch");
      check_bool "final value" true (Trace.final_attribute trace "Lamp" "switch" = Some "off");
      check_bool "absent attribute" true (Trace.final_attribute trace "Fan" "level" = None))

(* -- dynamic verification of detected threats -------------------------------- *)

let window = Device.make ~label:"Window opener" ~device_type:"window" [ "switch" ]
let tv = Device.make ~label:"TV" ~device_type:"tv" [ "switch" ]
let tsensor = Device.make ~label:"Thermo" ~device_type:"temp" [ "temperatureMeasurement" ]
let weather = Device.make ~label:"Weather" ~device_type:"weather" [ "weatherSensor" ]

let race_setup t =
  Engine.install t (extract_corpus "ComfortTV")
    [ ("tv1", Engine.B_device tv); ("tSensor", Engine.B_device tsensor);
      ("threshold1", Engine.B_int 30); ("window1", Engine.B_device window) ];
  Engine.install t (extract_corpus "ColdDefender")
    [ ("tv2", Engine.B_device tv); ("wSensor", Engine.B_device weather);
      ("window2", Engine.B_device window) ];
  Engine.stimulate t tsensor.Device.id "temperature" "31";
  Engine.stimulate t weather.Device.id "weather" "rainy";
  Engine.stimulate t tv.Device.id "switch" "on"

let actuator_race_nondeterministic =
  test "§VIII-A: the Fig 3 race has nondeterministic outcomes across seeds" (fun () ->
      let outcomes =
        Scenario.race_outcomes
          ~seeds:(List.init 12 (fun i -> i + 1))
          ~until_ms:10_000 ~setup:race_setup ~device:"Window opener" ~attribute:"switch" ()
      in
      check_bool "more than one distinct outcome" true (List.length outcomes >= 2))

let race_commands_both_issued =
  test "both racing commands reach the actuator" (fun () ->
      let o =
        Scenario.run_once ~seed:3 ~until_ms:10_000 ~setup:race_setup
          ~watch:[ ("Window opener", "switch") ] ()
      in
      let cmds = List.map snd (Trace.commands_on o.Scenario.trace "Window opener") in
      check_bool "on and off both issued" true (List.mem "on" cmds && List.mem "off" cmds))

let dc_alarm_bypass =
  test "Fig 5 dynamically: NightCare turns the lamp off, disabling BurglarFinder" (fun () ->
      let floor_lamp = Device.make ~label:"Floor lamp" ~device_type:"light" [ "switch" ] in
      let siren = Device.make ~label:"Siren" ~device_type:"alarm" [ "alarm" ] in
      let t = Engine.create () in
      Engine.install t (extract_corpus "BurglarFinder")
        [ ("motion1", Engine.B_device motion); ("floorLamp", Engine.B_device floor_lamp);
          ("alarm1", Engine.B_device siren) ];
      Engine.install t (extract_corpus "NightCare") [ ("lamp5", Engine.B_device floor_lamp) ];
      Engine.set_mode t "Night";
      Engine.run t ~until_ms:1_000;
      Engine.stimulate t floor_lamp.Device.id "switch" "on";
      (* NightCare turns the lamp off after 300s... *)
      Engine.run t ~until_ms:400_000;
      check_bool "lamp was turned off" true
        (Trace.final_attribute (Engine.trace t) "Floor lamp" "switch" = Some "off");
      (* ...so the burglar's motion no longer raises the alarm *)
      Engine.stimulate t motion.Device.id "motion" "active";
      Engine.run t ~until_ms:500_000;
      check_bool "alarm never fired (false negative)" true
        (Trace.final_attribute (Engine.trace t) "Siren" "alarm" = None))

let lt_flapping =
  test "LightUpTheNight flaps when driven by its own illuminance" (fun () ->
      let lux = Device.make ~label:"Lux" ~device_type:"lux" [ "illuminanceMeasurement" ] in
      let lamp = Device.make ~label:"Night lamp" ~device_type:"light" [ "switch" ] in
      let t = Engine.create ~sample_interval_ms:5_000 () in
      Engine.install t (extract_corpus "LightUpTheNight")
        [ ("lightSensor", Engine.B_device lux); ("lights", Engine.B_device lamp) ];
      (* night: both the ambient level and its baseline are dark, so only
         the lamp's own light moves the sensor *)
      Homeguard_sim.Env_model.set_value t.Engine.env Env.Illuminance 10.0;
      Homeguard_sim.Env_model.set_baseline t.Engine.env Env.Illuminance 10.0;
      Engine.run t ~until_ms:600_000;
      let flaps = Trace.flap_count (Engine.trace t) "Night lamp" "switch" in
      check_bool "lamp flapped repeatedly" true (flaps >= 3))

let covert_trigger_chain =
  test "Fig 4 dynamically: CatchLiveShow opens the window via ComfortTV" (fun () ->
      let voice = Device.make ~label:"Voice player" ~device_type:"speaker" [ "musicPlayer" ] in
      let t = Engine.create () in
      Engine.install t (extract_corpus "ComfortTV")
        [ ("tv1", Engine.B_device tv); ("tSensor", Engine.B_device tsensor);
          ("threshold1", Engine.B_int 30); ("window1", Engine.B_device window) ];
      Engine.install t (extract_corpus "CatchLiveShow")
        [ ("voicePlayer", Engine.B_device voice); ("tv3", Engine.B_device tv) ];
      Engine.stimulate t tsensor.Device.id "temperature" "31";
      Engine.stimulate t voice.Device.id "status" "playing";
      Engine.run t ~until_ms:10_000;
      check_bool "tv turned on by CatchLiveShow" true
        (Trace.final_attribute (Engine.trace t) "TV" "switch" = Some "on");
      check_bool "window opened covertly" true
        (Trace.final_attribute (Engine.trace t) "Window opener" "switch" = Some "on"))

let tests =
  [
    queue_ordering;
    queue_fifo_same_time;
    queue_empty;
    queue_property;
    queue_pop_until_bound;
    queue_pop_until_fifo;
    env_relaxes_to_baseline;
    env_influences_push;
    env_power_instantaneous;
    env_energy_integrates;
    rule_fires_on_event;
    trigger_value_respected;
    condition_blocks_execution;
    delayed_action_fires_late;
    user_value_binding;
    mode_events_fire_rules;
    scheduled_rule_fires;
    opposites_symmetric;
    opposites_no_self_match;
    opposites_window_respected;
    flap_count_counts_flips;
    attribute_timeline_filters;
    actuator_race_nondeterministic;
    race_commands_both_issued;
    dc_alarm_bypass;
    lt_flapping;
    covert_trigger_chain;
  ]
