(** Durability suite: journal framing and recovery, idempotent
    ingestion, and the crash matrix.

    Runs as its own executable (like [test/faults]) so the global
    storage-fault hook never leaks into the main suite. The acceptance
    invariant for the crash matrix: for every injected crash point,
    torn write and bit flip, recovering the journal and re-running the
    workload idempotently yields a home whose full re-audit output is
    byte-identical to the uncrashed run. *)

module Crc32 = Homeguard_store.Crc32
module Journal = Homeguard_store.Journal
module Rjournal = Homeguard_store.Rjournal
module Fence = Homeguard_store.Fence
module Scrub = Homeguard_store.Scrub
module Event = Homeguard_store.Event
module Ingest = Homeguard_store.Ingest
module Home = Homeguard_store.Home
module Synth = Homeguard_corpus.Synth
module App_entry = Homeguard_corpus.App_entry
module Fault = Homeguard_solver.Fault
module Rule = Homeguard_rules.Rule
module Extract = Homeguard_symexec.Extract
module Install_flow = Homeguard_frontend.Install_flow
module Policy = Homeguard_handling.Policy
module Mediator = Homeguard_handling.Mediator

let test name f = Alcotest.test_case name `Quick f
let check_bool m = Alcotest.(check bool) m
let check_int m = Alcotest.(check int) m
let check_string m = Alcotest.(check string) m

let tmp_counter = ref 0

let fresh_dir () =
  incr tmp_counter;
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "hg_store_%d_%d" (Unix.getpid ()) !tmp_counter)
  in
  ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)));
  dir

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let corpus_app name =
  let open Homeguard_corpus in
  let e = Option.get (Corpus.find name) in
  (Extract.extract_source ~name:e.App_entry.name e.App_entry.source).Extract.app

(* -- CRC-32 ------------------------------------------------------------------- *)

let crc_vectors =
  test "CRC-32 matches the IEEE reference vectors" (fun () ->
      check_int "empty" 0 (Crc32.string "");
      check_int "check string" 0xCBF43926 (Crc32.string "123456789");
      check_int "fox" 0x414FA339 (Crc32.string "The quick brown fox jumps over the lazy dog"))

(* -- framing and scanning ----------------------------------------------------- *)

let payloads = [ "alpha"; "{\"k\": [1, 2]}"; String.make 300 'x'; "with\nnewlines\nand | bars" ]

let joined = String.concat "" (List.map Journal.frame payloads)

let scan_roundtrip =
  test "scan recovers every framed payload in order" (fun () ->
      let sc = Journal.scan_string joined in
      check_bool "no damage" true (sc.Journal.damage = []);
      check_bool "payloads" true (sc.Journal.records = payloads))

let scan_empty =
  test "scanning an empty or missing journal is sound" (fun () ->
      let sc = Journal.scan_string "" in
      check_bool "no records" true (sc.Journal.records = [] && sc.Journal.damage = []);
      let sc = Journal.scan "/nonexistent/journal" in
      check_bool "missing file" true (sc.Journal.records = []))

let torn_tail_every_cut =
  test "a tail torn at any byte loses only the last record" (fun () ->
      let keep = [ "one"; "two" ] in
      let prefix = String.concat "" (List.map Journal.frame keep) in
      let full = prefix ^ Journal.frame "three" in
      for cut = String.length prefix + 1 to String.length full - 1 do
        let sc = Journal.scan_string (String.sub full 0 cut) in
        if sc.Journal.records <> keep then
          Alcotest.failf "cut at %d recovered %d record(s)" cut
            (List.length sc.Journal.records);
        match sc.Journal.damage with
        | [ Journal.Torn_tail _ ] -> ()
        | _ -> Alcotest.failf "cut at %d: expected exactly a torn tail" cut
      done)

let flip_payload_quarantines =
  test "a bit flip in any payload byte quarantines only that record" (fun () ->
      let frame2 = Journal.frame "middle-record" in
      let before = Journal.frame "first" and after = Journal.frame "last" in
      let p0 = String.length before + Journal.header_len in
      for i = p0 to p0 + String.length "middle-record" - 1 do
        let b = Bytes.of_string (before ^ frame2 ^ after) in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x01));
        let sc = Journal.scan_string (Bytes.to_string b) in
        if sc.Journal.records <> [ "first"; "last" ] then
          Alcotest.failf "flip at %d: survivors wrong" i;
        if sc.Journal.first_damage_index <> Some 1 then
          Alcotest.failf "flip at %d: damage index wrong" i
      done)

let flip_length_field_resyncs =
  test "a corrupted length field mid-journal loses only that record" (fun () ->
      (* Regression: a bit flip in the length field can make a frame
         claim to extend past EOF. That must resynchronize at the next
         frame boundary — classifying it as a torn tail would silently
         truncate every valid record after it. *)
      let b = Bytes.of_string joined in
      let off = String.length (Journal.frame (List.nth payloads 0)) in
      (* force the second record's length field huge but still hex *)
      Bytes.set b (off + 5) 'f';
      let sc = Journal.scan_string (Bytes.to_string b) in
      check_bool "first survives" true (List.hd sc.Journal.records = "alpha");
      check_bool "records after the damage survive" true
        (List.mem (String.make 300 'x') sc.Journal.records);
      check_int "exactly one record lost" (List.length payloads - 1)
        (List.length sc.Journal.records);
      (match sc.Journal.damage with
      | [ Journal.Corrupt _ ] -> ()
      | _ -> Alcotest.fail "expected exactly one corrupt region, no torn tail");
      (* at EOF the same over-claiming frame is a genuine torn tail *)
      let only = Journal.frame "alpha" in
      let t = Bytes.of_string only in
      Bytes.set t 5 'f';
      match (Journal.scan_string (Bytes.to_string t)).Journal.damage with
      | [ Journal.Torn_tail _ ] -> ()
      | _ -> Alcotest.fail "final frame should still be a torn tail")

let flip_magic_resyncs =
  test "a damaged header resynchronizes at the next record" (fun () ->
      let b = Bytes.of_string joined in
      (* clobber the second record's magic *)
      let off = String.length (Journal.frame (List.nth payloads 0)) in
      Bytes.set b off 'X';
      let sc = Journal.scan_string (Bytes.to_string b) in
      check_bool "first survives" true (List.hd sc.Journal.records = "alpha");
      check_bool "later records recovered" true
        (List.mem (String.make 300 'x') sc.Journal.records);
      check_bool "damage noted" true (sc.Journal.damage <> []))

let recover_rewrites_and_quarantines =
  test "recover truncates, quarantines and leaves a clean journal" (fun () ->
      let dir = fresh_dir () in
      Unix.mkdir dir 0o755;
      let path = Filename.concat dir "j" in
      let b = Bytes.of_string (joined ^ "HGJ1 0000") in
      (* flip a payload byte of record 2 *)
      let off = String.length (Journal.frame "alpha") + Journal.header_len in
      Bytes.set b off '?';
      write_file path (Bytes.to_string b);
      let r = Journal.recover path in
      check_int "quarantined" 1 r.Journal.quarantined;
      check_int "torn bytes" 9 r.Journal.torn_bytes;
      check_bool "rewritten" true r.Journal.rewritten;
      check_bool "sidecar exists" true (Sys.file_exists (path ^ ".quarantine"));
      let sc = Journal.scan path in
      check_bool "clean after rewrite" true (sc.Journal.damage = []);
      check_bool "survivors" true (sc.Journal.records = r.Journal.recovered);
      (* recovering a clean journal is a no-op *)
      let r2 = Journal.recover path in
      check_bool "idempotent" true (not r2.Journal.rewritten))

let append_then_scan =
  test "append/scan round-trip through the filesystem" (fun () ->
      let dir = fresh_dir () in
      Unix.mkdir dir 0o755;
      let path = Filename.concat dir "j" in
      let j = Journal.open_append path in
      List.iter (Journal.append j) payloads;
      Journal.close j;
      let sc = Journal.scan path in
      check_bool "all back" true (sc.Journal.records = payloads && sc.Journal.damage = []))

(* -- events ------------------------------------------------------------------- *)

let event_roundtrip =
  test "every event constructor round-trips through JSON" (fun () ->
      let app = corpus_app "ComfortTV" in
      let events =
        [
          Event.Install app;
          Event.Uninstall "ComfortTV";
          Event.Config { seq = Some 3; uri = "http://my.com/appname:A/x:1/" };
          Event.Config { seq = None; uri = "http://my.com/appname:A/x:2/" };
          Event.Decision { threat_id = "AR:a<->b"; decision = Policy.Allow };
          Event.Decision
            { threat_id = "GC:a->b"; decision = Policy.Block { rule = "A/A#1" } };
          Event.Decision
            { threat_id = "AR:a<->b"; decision = Policy.Prioritize { winner = "A/A#1" } };
          Event.Decision
            { threat_id = "CT:a->b"; decision = Policy.Break_chain { hop_budget = 2 } };
          Event.Decision { threat_id = "DC:a<->b"; decision = Policy.Confirm };
          Event.Watermark 42;
          Event.Quarantine { app = "PoisonApp"; reason = "3 consecutive failures" };
          Event.Unquarantine "PoisonApp";
        ]
      in
      List.iter
        (fun e ->
          if Event.of_string (Event.to_string e) <> e then
            Alcotest.failf "event round-trip failed: %s" (Event.describe e))
        events;
      match Event.of_string "{\"nonsense\": 1}" with
      | exception Event.Decode_error _ -> ()
      | _ -> Alcotest.fail "expected Decode_error")

(* -- ingestion ---------------------------------------------------------------- *)

let ingest_outcomes =
  test "ingest dedups, buffers out-of-order and bounds the window" (fun () ->
      let applied = ref [] in
      let t = Ingest.create ~window:4 (fun ~seq p -> applied := (seq, p) :: !applied) in
      check_bool "in order" true (Ingest.receive t ~seq:1 "a" = Ingest.Applied 1);
      check_bool "dup of applied" true (Ingest.receive t ~seq:1 "a" = Ingest.Duplicate);
      check_bool "gap buffers" true (Ingest.receive t ~seq:3 "c" = Ingest.Buffered);
      check_bool "dup of buffered" true (Ingest.receive t ~seq:3 "c" = Ingest.Duplicate);
      check_bool "beyond window" true (Ingest.receive t ~seq:6 "f" = Ingest.Overflow);
      check_bool "gap fills, run drains" true (Ingest.receive t ~seq:2 "b" = Ingest.Applied 2);
      check_int "ack" 3 (Ingest.ack t);
      check_bool "apply order" true
        (List.rev !applied = [ (1, "a"); (2, "b"); (3, "c") ]);
      Ingest.force_last t 5;
      check_bool "stale after force" true (Ingest.receive t ~seq:4 "d" = Ingest.Duplicate);
      check_bool "next applies" true (Ingest.receive t ~seq:6 "f" = Ingest.Applied 1))

let ingest_window_boundaries =
  test "reorder window edges: at the edge buffers, one past overflows" (fun () ->
      let applied = ref [] in
      let t = Ingest.create ~window:4 (fun ~seq p -> applied := (seq, p) :: !applied) in
      check_bool "seed" true (Ingest.receive t ~seq:1 "a" = Ingest.Applied 1);
      check_int "watermark after seed" 1 (Ingest.ack t);
      (* last = 1, window = 4: 5 = last + window is the buffer's last
         admissible slot; 6 = last + window + 1 is one past it *)
      check_bool "exactly at the window edge buffers" true
        (Ingest.receive t ~seq:5 "e" = Ingest.Buffered);
      check_bool "one past the edge overflows" true
        (Ingest.receive t ~seq:6 "f" = Ingest.Overflow);
      check_int "watermark unmoved by buffering and overflow" 1 (Ingest.ack t);
      check_bool "nothing applied yet" true (!applied = [ (1, "a") ]);
      (* filling the gap drains the run up to the edge message *)
      check_bool "2 fills" true (Ingest.receive t ~seq:2 "b" = Ingest.Applied 1);
      check_bool "3 fills" true (Ingest.receive t ~seq:3 "c" = Ingest.Applied 1);
      check_bool "4 drains through the buffered edge" true
        (Ingest.receive t ~seq:4 "d" = Ingest.Applied 2);
      check_int "watermark at the edge" 5 (Ingest.ack t);
      (* the window slides with the watermark: 6 is now admissible *)
      check_bool "previously overflowed seq now applies" true
        (Ingest.receive t ~seq:6 "f" = Ingest.Applied 1);
      check_int "watermark follows" 6 (Ingest.ack t);
      check_bool "apply order" true
        (List.rev !applied = [ (1, "a"); (2, "b"); (3, "c"); (4, "d"); (5, "e"); (6, "f") ]))

let ingest_duplicate_after_ack =
  test "a duplicate arriving after its ack is dropped, watermark intact" (fun () ->
      let count = ref 0 in
      let t = Ingest.create ~window:4 (fun ~seq:_ _ -> incr count) in
      check_bool "1" true (Ingest.receive t ~seq:1 "a" = Ingest.Applied 1);
      check_bool "2" true (Ingest.receive t ~seq:2 "b" = Ingest.Applied 1);
      check_int "acked" 2 (Ingest.ack t);
      (* the sender never saw the ack and re-sends both *)
      check_bool "dup 1" true (Ingest.receive t ~seq:1 "a" = Ingest.Duplicate);
      check_bool "dup 2" true (Ingest.receive t ~seq:2 "b" = Ingest.Duplicate);
      check_int "applied exactly once each" 2 !count;
      check_int "watermark intact" 2 (Ingest.ack t);
      (* and the stream continues normally after the duplicates *)
      check_bool "3" true (Ingest.receive t ~seq:3 "c" = Ingest.Applied 1);
      check_int "watermark advances" 3 (Ingest.ack t))

let ingest_envelope =
  test "wire envelope round-trips and rejects junk" (fun () ->
      let w = Ingest.encode ~home:"home-1" ~seq:9 "pay|load" in
      check_bool "roundtrip" true (Ingest.decode w = Some ("home-1", 9, "pay|load"));
      check_bool "junk" true (Ingest.decode "nope" = None);
      check_bool "bad seq" true (Ingest.decode "hgm1|h|zero|p" = None))

let ingest_sender_redelivery_is_harmless =
  test "sender redelivery under loss never double-applies" (fun () ->
      let messaging = Homeguard_config.Messaging.create ~seed:3 ~loss_per_thousand:300 () in
      let s = Ingest.sender messaging Homeguard_config.Messaging.Http ~home:"h" in
      let count = ref 0 in
      let t = Ingest.create (fun ~seq:_ _ -> incr count) in
      let delivered = ref 0 in
      for i = 1 to 30 do
        let seq, outcome = Ingest.post s (Printf.sprintf "msg%d" i) in
        match outcome with
        | Some _ ->
          (* the transport may have delivered earlier lost-looking
             attempts too; replay every attempt at the receiver *)
          ignore (Ingest.receive t ~seq (Printf.sprintf "msg%d" i));
          ignore (Ingest.receive t ~seq (Printf.sprintf "msg%d" i));
          incr delivered
        | None -> ()
      done;
      check_bool "some delivered" true (!delivered > 0);
      check_int "each applied exactly once" !delivered !count)

(* -- the durable home ---------------------------------------------------------- *)

(** The canonical workload, written in idempotent operations so it can
    be re-run verbatim over a recovered home. Appends (in order):
    2 sequenced configs, 2 installs, 1 decision; then a compaction and
    one more unsequenced config. *)
let workload home =
  ignore (Home.deliver home ~seq:1 "http://my.com/appname:ComfortTV/threshold1:30/");
  ignore (Home.deliver home ~seq:2 "http://my.com/appname:ColdDefender/unused:1/");
  (* duplicate delivery: must change nothing *)
  ignore (Home.deliver home ~seq:1 "http://my.com/appname:ComfortTV/threshold1:30/");
  ignore (Home.install_app home (corpus_app "ComfortTV"));
  ignore (Home.install_app home (corpus_app "ColdDefender"));
  Home.set_decision home "EC:ColdDefender/ColdDefender#1->ComfortTV/ComfortTV#1"
    (Policy.Break_chain { hop_budget = 1 });
  Home.compact home;
  ignore (Home.record_uri home "http://my.com/appname:ComfortTV/threshold1:31/")

let reference_audit =
  lazy
    (let dir = fresh_dir () in
     let home, _ = Home.open_ ~dir () in
     workload home;
     let text = Home.audit_text home in
     Home.close home;
     text)

let home_persists =
  test "a reopened home re-audits byte-identically" (fun () ->
      let dir = fresh_dir () in
      let home, r0 = Home.open_ ~dir () in
      check_bool "fresh" true (r0.Home.snapshot_records = 0 && r0.Home.journal_records = 0);
      workload home;
      let before = Home.audit_text home in
      check_string "matches reference" (Lazy.force reference_audit) before;
      Home.close home;
      let home, r = Home.open_ ~dir () in
      check_int "no damage" 0 (r.Home.torn_bytes + r.Home.quarantined);
      check_bool "no skips" true (r.Home.skipped_events = 0);
      check_string "identical after reopen" before (Home.audit_text home);
      check_int "watermark" 2 (Home.last_seq home);
      (* the mediator's input (kept threats) is reconstructed too *)
      let _mediator = Home.mediator home in
      check_bool "kept threats survive reopen" true
        (Install_flow.kept_threats (Home.flow home) <> []);
      Home.close home)

let home_rerun_is_idempotent =
  test "re-running the workload over a live home changes nothing" (fun () ->
      let dir = fresh_dir () in
      let home, _ = Home.open_ ~dir () in
      workload home;
      let once = Home.audit_text home in
      workload home;
      check_string "idempotent" once (Home.audit_text home);
      Home.close home)

let home_out_of_order_equals_in_order =
  test "out-of-order and duplicated deliveries converge to in-order state" (fun () ->
      let dir = fresh_dir () in
      let home, _ = Home.open_ ~dir () in
      (* deliver 3,2,1 with duplicates interleaved *)
      check_bool "buffered" true
        (Home.deliver home ~seq:3 "http://my.com/appname:B/v:3/"
        = Home.Accepted Ingest.Buffered);
      ignore (Home.deliver home ~seq:2 "http://my.com/appname:A/v:2/");
      ignore (Home.deliver home ~seq:3 "http://my.com/appname:B/v:3/");
      check_bool "drains all three" true
        (Home.deliver home ~seq:1 "http://my.com/appname:A/v:1/"
        = Home.Accepted (Ingest.Applied 3));
      let ooo = Home.audit_text home in
      Home.close home;
      let dir2 = fresh_dir () in
      let home2, _ = Home.open_ ~dir:dir2 () in
      ignore (Home.deliver home2 ~seq:1 "http://my.com/appname:A/v:1/");
      ignore (Home.deliver home2 ~seq:2 "http://my.com/appname:A/v:2/");
      ignore (Home.deliver home2 ~seq:3 "http://my.com/appname:B/v:3/");
      check_string "same state" (Home.audit_text home2) ooo;
      Home.close home2)

let home_uninstall_and_update =
  test "uninstall and rule-file updates survive reopen" (fun () ->
      let dir = fresh_dir () in
      let home, _ = Home.open_ ~dir () in
      ignore (Home.install_app home (corpus_app "ComfortTV"));
      ignore (Home.install_app home (corpus_app "ColdDefender"));
      check_bool "second install dedups" true
        (Home.install_app home (corpus_app "ComfortTV") = Home.Unchanged);
      check_bool "uninstall" true (Home.uninstall home "ColdDefender");
      check_bool "gone" true (not (Home.uninstall home "ColdDefender"));
      let before = Home.audit_text home in
      check_bool "kept threats dropped" true
        (Install_flow.kept_threats (Home.flow home) = []);
      Home.close home;
      let home, _ = Home.open_ ~dir () in
      check_string "reopen" before (Home.audit_text home);
      check_bool "one app" true
        (List.map (fun (a : Rule.smartapp) -> a.Rule.name) (Home.installed_apps home)
        = [ "ComfortTV" ]);
      Home.close home)

let compaction_preserves_state =
  test "compaction truncates the journal and preserves the audit" (fun () ->
      let dir = fresh_dir () in
      let home, _ = Home.open_ ~dir () in
      workload home;
      let before = Home.audit_text home in
      let jsize = Home.journal_size home in
      check_bool "journal non-empty before" true (jsize > 0);
      Home.compact home;
      check_int "journal truncated" 0 (Home.journal_size home);
      check_bool "snapshot written" true (Home.snapshot_size home > 0);
      check_string "audit unchanged" before (Home.audit_text home);
      Home.close home;
      let home, r = Home.open_ ~dir () in
      check_bool "replays from snapshot alone" true (r.Home.journal_records = 0);
      check_string "audit unchanged after reopen" before (Home.audit_text home);
      Home.close home)

(* -- the crash matrix ---------------------------------------------------------- *)

(** One matrix cell: arm the storage fault aimed at [only], run the
    workload in a fresh home (absorbing the injected crash), disarm,
    recover, re-run the workload idempotently, and require the final
    re-audit to be byte-identical to the uncrashed reference. *)
let crash_cell mode only =
  let dir = fresh_dir () in
  let crashed =
    Fault.arm_storage ~seed:1 ~rate_per_thousand:1000 ~only mode;
    Fun.protect
      ~finally:(fun () -> Fault.disarm_storage ())
      (fun () ->
        let home, _ = Home.open_ ~dir () in
        match workload home with
        | () ->
          Home.close home;
          false
        | exception Fault.Crashed _ -> true)
  in
  (* recover and converge *)
  let home, report = Home.open_ ~dir () in
  workload home;
  let text = Home.audit_text home in
  Home.close home;
  (crashed, report, text)

let crash_matrix_points =
  (* appends 1..5 exist before the compaction; the rename points cover
     compaction's two atomic replacements *)
  List.concat_map
    (fun point -> List.map (fun n -> (Fault.Crash, Printf.sprintf "%s:journal#%d" point n)) [ 1; 2; 3; 4; 5 ])
    [ "journal/append/enter"; "journal/append/written"; "journal/append/synced" ]
  @ [ (Fault.Crash, "journal/rename:snapshot"); (Fault.Crash, "journal/rename:journal") ]
  (* the rename-durable window: renamed but the parent dirfd not yet
     fsynced — recovery must converge from either side of the dirsync *)
  @ [
      (Fault.Crash, "journal/rename/unsynced:snapshot");
      (Fault.Crash, "journal/rename/unsynced:journal");
    ]
  @ List.map (fun n -> (Fault.Torn, Printf.sprintf "journal/write:journal#%d" n)) [ 1; 2; 3; 4; 5 ]
  @ List.map (fun n -> (Fault.Flip, Printf.sprintf "journal/write:journal#%d" n)) [ 1; 2; 3; 4; 5 ]

let mode_name = function Fault.Crash -> "crash" | Fault.Torn -> "torn" | Fault.Flip -> "flip"

let crash_matrix =
  test "every crash point recovers to the uncrashed audit" (fun () ->
      let reference = Lazy.force reference_audit in
      let fired = ref 0 in
      List.iter
        (fun (mode, only) ->
          let crashed, _report, text = crash_cell mode only in
          if crashed then incr fired;
          if text <> reference then
            Alcotest.failf "%s@%s: recovered audit differs from reference" (mode_name mode)
              only)
        crash_matrix_points;
      (* Crash and Torn cells must actually crash; Flip cells are
         silent by design *)
      let loud =
        List.length (List.filter (fun (m, _) -> m <> Fault.Flip) crash_matrix_points)
      in
      check_int "every loud fault fired" loud !fired)

let torn_write_reports_damage =
  test "a torn write surfaces as truncated bytes on recovery" (fun () ->
      let crashed, report, _ = crash_cell Fault.Torn "journal/write:journal#4" in
      check_bool "crashed" true crashed;
      check_bool "damage seen" true
        (report.Home.torn_bytes > 0 || report.Home.quarantined > 0))

let flip_marks_changed_apps =
  test "a flipped install record lands in the re-audit set" (fun () ->
      (* append #4 is the ColdDefender install *)
      let dir = fresh_dir () in
      Fault.arm_storage ~seed:1 ~rate_per_thousand:1000 ~only:"journal/write:journal#4"
        Fault.Flip;
      Fun.protect
        ~finally:(fun () -> Fault.disarm_storage ())
        (fun () ->
          let home, _ = Home.open_ ~dir () in
          ignore (Home.deliver home ~seq:1 "http://my.com/appname:ComfortTV/threshold1:30/");
          ignore (Home.deliver home ~seq:2 "http://my.com/appname:ColdDefender/unused:1/");
          ignore (Home.install_app home (corpus_app "ComfortTV"));
          ignore (Home.install_app home (corpus_app "ColdDefender"));
          Home.close home);
      let home, report = Home.open_ ~dir () in
      check_int "one record quarantined" 1 report.Home.quarantined;
      check_bool "ColdDefender lost" true
        (not (List.exists (fun (a : Rule.smartapp) -> a.Rule.name = "ColdDefender")
                (Home.installed_apps home)));
      (* converge and verify against a cleanly built twin *)
      ignore (Home.install_app home (corpus_app "ColdDefender"));
      let recovered = Home.audit_text home in
      Home.close home;
      let dir2 = fresh_dir () in
      let home2, _ = Home.open_ ~dir:dir2 () in
      ignore (Home.deliver home2 ~seq:1 "http://my.com/appname:ComfortTV/threshold1:30/");
      ignore (Home.deliver home2 ~seq:2 "http://my.com/appname:ColdDefender/unused:1/");
      ignore (Home.install_app home2 (corpus_app "ComfortTV"));
      ignore (Home.install_app home2 (corpus_app "ColdDefender"));
      check_string "converged" (Home.audit_text home2) recovered;
      Home.close home2)

(* -- replication, epoch fencing and scrub -------------------------------------- *)

let epoch_frames =
  test "epoch-stamped frames round-trip; regressions are fingerprinted" (fun () ->
      (* epoch 0 renders in the legacy HGJ1 form *)
      check_string "epoch 0 is legacy" (Journal.frame "x")
        (Journal.frame_epoch ~epoch:0 "x");
      let s =
        Journal.frame "a"
        ^ Journal.frame_epoch ~epoch:3 "b"
        ^ Journal.frame_epoch ~epoch:7 "c"
      in
      let sc = Journal.scan_string s in
      check_bool "mixed frames all recovered" true
        (sc.Journal.records = [ "a"; "b"; "c" ] && sc.Journal.damage = []);
      check_int "max epoch" 7 sc.Journal.max_epoch;
      check_int "monotone stream has no regressions" 0 sc.Journal.epoch_regressions;
      (* a frame stamped below the running maximum is the durable
         fingerprint of an accepted stale-epoch append *)
      let stale =
        Journal.frame_epoch ~epoch:5 "new-owner"
        ^ Journal.frame_epoch ~epoch:2 "zombie"
        ^ Journal.frame_epoch ~epoch:5 "new-owner-again"
      in
      let sc = Journal.scan_string stale in
      check_int "regression counted" 1 sc.Journal.epoch_regressions;
      check_int "floor survives" 5 sc.Journal.max_epoch;
      (* write_atomic re-stamps at the given epoch and scan agrees *)
      let dir = fresh_dir () in
      Unix.mkdir dir 0o755;
      let p = Filename.concat dir "j" in
      Journal.write_atomic ~epoch:9 p [ "one"; "two" ];
      let sc = Journal.scan p in
      check_bool "payloads back" true (sc.Journal.records = [ "one"; "two" ]);
      check_int "stamped" 9 sc.Journal.max_epoch)

let rjournal_merge_repairs =
  test "merged recovery restores records surviving on any replica" (fun () ->
      let d0 = fresh_dir () and d1 = fresh_dir () in
      Unix.mkdir d0 0o755;
      Unix.mkdir d1 0o755;
      let p0 = Filename.concat d0 "journal" and p1 = Filename.concat d1 "journal" in
      let w = Rjournal.open_append ~epoch:4 [ p0; p1 ] in
      let records = [ "r1"; "r2"; "r3"; "r4"; "r5" ] in
      List.iter (Rjournal.append w) records;
      Rjournal.close w;
      (* destroy replica 0 entirely: everything survives on replica 1 *)
      Sys.remove p0;
      let r = Rjournal.recover [ p0; p1 ] in
      check_bool "all records back" true (r.Rjournal.recovered = records);
      check_bool "loss was not honest-loss" true (not r.Rjournal.all_replicas_damaged);
      check_int "destroyed replica healed" 5 r.Rjournal.healed;
      check_int "fencing floor survives the merge" 4 r.Rjournal.max_epoch;
      let sc0 = Journal.scan p0 in
      check_bool "replica 0 rewritten with the merge" true
        (sc0.Journal.records = records && sc0.Journal.max_epoch = 4);
      (* corrupt one record on replica 1 only: its sibling still holds
         it, so the merge keeps all five and read-repairs replica 1 *)
      let b = Bytes.of_string (read_file p1) in
      let off = String.length (Journal.frame_epoch ~epoch:4 "r1") + Journal.header_len2 in
      Bytes.set b off '?';
      write_file p1 (Bytes.to_string b);
      let r = Rjournal.recover [ p0; p1 ] in
      check_bool "merge keeps every record" true (r.Rjournal.recovered = records);
      check_int "one frame quarantined" 1 r.Rjournal.quarantined;
      check_bool "not honest-loss: a healthy replica survived" true
        (not r.Rjournal.all_replicas_damaged);
      check_bool "replica 1 sidecar written" true
        (Sys.file_exists (p1 ^ ".quarantine"));
      check_bool "replica 1 repaired" true
        ((Journal.scan p1).Journal.records = records);
      (* damage on one replica AND destruction of the other is honest
         loss: the record survived nowhere *)
      let b = Bytes.of_string (read_file p0) in
      Bytes.set b off '?';
      write_file p0 (Bytes.to_string b);
      Sys.remove p1;
      let r = Rjournal.recover [ p0; p1 ] in
      check_int "the doubly-lost record is gone" 4 (List.length r.Rjournal.recovered);
      check_bool "honest loss is carved out" true r.Rjournal.all_replicas_damaged)

let fence_rejects_stale_appends =
  test "a stale-epoch writer is fenced off before touching the disk" (fun () ->
      let dir = fresh_dir () in
      Unix.mkdir dir 0o755;
      let p = Filename.concat dir "journal" in
      let before = Fence.rejections_for dir in
      ignore (Fence.acquire dir 1);
      let old_owner = Rjournal.open_append ~epoch:1 ~fence_key:dir [ p ] in
      Rjournal.append old_owner "acked-before-handover";
      (* ownership moves on: a later epoch is granted for the home *)
      ignore (Fence.acquire dir 2);
      (match Rjournal.append old_owner "zombie-write" with
      | () -> Alcotest.fail "stale append must raise"
      | exception Fence.Stale { held; current; _ } ->
        check_int "held" 1 held;
        check_int "current" 2 current);
      Rjournal.close old_owner;
      check_int "rejection counted" (before + 1) (Fence.rejections_for dir);
      let sc = Journal.scan p in
      check_bool "nothing reached the disk" true
        (sc.Journal.records = [ "acked-before-handover" ]);
      (* the new owner writes through the same fence *)
      let new_owner = Rjournal.open_append ~epoch:2 ~fence_key:dir [ p ] in
      Rjournal.append new_owner "after-handover";
      Rjournal.close new_owner;
      check_bool "new owner appends fine" true
        ((Journal.scan p).Journal.records
        = [ "acked-before-handover"; "after-handover" ]);
      (* an old grant never lowers the fence *)
      check_int "acquire keeps the maximum" 2 (Fence.acquire dir 1))

let scrub_repairs_and_audit_is_identical =
  test "scrub read-repairs a damaged replica set; audit is byte-identical"
    (fun () ->
      let dir = fresh_dir () and rdir = fresh_dir () in
      let home, _ = Home.open_ ~replicas:[ rdir ] ~dir () in
      workload home;
      let reference = Home.audit_text home in
      Home.close home;
      (* destroy the replica's snapshot and corrupt the primary journal:
         each surviving copy repairs its damaged sibling *)
      Sys.remove (Filename.concat rdir "snapshot");
      let jp = Filename.concat dir "journal" in
      let b = Bytes.of_string (read_file jp) in
      Bytes.set b (Bytes.length b - 2) '#';
      write_file jp (Bytes.to_string b);
      let r = Scrub.scrub_home [ dir; rdir ] in
      check_bool "not healthy before repair" true (not r.Scrub.healthy);
      check_bool "converged after repair" true r.Scrub.converged;
      check_int "corrupt frame quarantined" 1 r.Scrub.frames_quarantined;
      check_bool "replicas repaired" true
        (r.Scrub.repaired_replicas + r.Scrub.recreated_replicas >= 2);
      check_bool "records healed across the set" true (r.Scrub.records_healed > 0);
      (* a second pass finds a healthy, converged home and rewrites
         nothing *)
      let r2 = Scrub.scrub_home [ dir; rdir ] in
      check_bool "idempotent" true (r2.Scrub.healthy && r2.Scrub.converged);
      check_string "digest stable" r.Scrub.digest r2.Scrub.digest;
      (* the repaired home re-audits byte-identically to the undamaged
         run *)
      let home, rep = Home.open_ ~replicas:[ rdir ] ~dir () in
      check_int "no residual damage" 0 (rep.Home.torn_bytes + rep.Home.quarantined);
      check_string "audit byte-identical after repair" reference
        (Home.audit_text home);
      Home.close home)

let replay_determinism_property =
  test "synth homes: live, recovered and rebalanced-in digests agree" (fun () ->
      let synth = Homeguard_corpus.Corpus.synth ~seed:11 ~n_homes:4 in
      List.iter
        (fun h ->
          let dir = fresh_dir () and rdir = fresh_dir () in
          let home, _ = Home.open_ ~replicas:[ rdir ] ~dir () in
          List.iter
            (fun (e : App_entry.t) ->
              let app =
                (Extract.extract_source ~name:e.App_entry.name e.App_entry.source)
                  .Extract.app
              in
              ignore (Home.install_app home app))
            h.Synth.apps;
          List.iteri
            (fun i uri -> ignore (Home.deliver home ~seq:(i + 1) uri))
            h.Synth.configs;
          let live = Home.state_digest home in
          Home.close home;
          (* plain recover-replay *)
          let home2, _ = Home.open_ ~replicas:[ rdir ] ~dir () in
          let replayed = Home.state_digest home2 in
          Home.close home2;
          (* rebalance-in: a fenced open at a strictly higher epoch, as
             a supervisor hands the home to a new shard *)
          let home3, rep =
            Home.open_ ~replicas:[ rdir ] ~epoch:(Fence.current dir + 5) ~dir ()
          in
          let rebalanced = Home.state_digest home3 in
          check_bool "fenced open granted a positive epoch" true (rep.Home.epoch > 0);
          Home.close home3;
          if live <> replayed then
            Alcotest.failf "home %s: recover replay diverges from live state"
              h.Synth.id;
          if live <> rebalanced then
            Alcotest.failf "home %s: rebalance-in replay diverges from live state"
              h.Synth.id)
        synth)

(* -- the checked-in corrupted fixture ------------------------------------------ *)

let fixture_recovers =
  test "the pre-baked corrupted journal recovers as documented" (fun () ->
      let dir = fresh_dir () in
      Unix.mkdir dir 0o755;
      let path = Filename.concat dir "journal" in
      let fixture =
        (* dune runtest runs in the test dir; dune exec in the root *)
        List.find Sys.file_exists
          [ "fixtures/corrupted.journal"; "test/store/fixtures/corrupted.journal" ]
      in
      write_file path (read_file fixture);
      let r = Journal.recover path in
      check_int "three records survive" 3 (List.length r.Journal.recovered);
      check_int "one quarantined" 1 r.Journal.quarantined;
      check_int "torn bytes" 17 r.Journal.torn_bytes;
      check_bool "damage index" true (r.Journal.damage_index = Some 2);
      (* the surviving records are decodable config events *)
      List.iter
        (fun p ->
          match Event.of_string p with
          | Event.Config _ -> ()
          | _ -> Alcotest.fail "expected a config event")
        r.Journal.recovered;
      (* and a Home opens over the recovered directory *)
      let home, hr = Home.open_ ~dir () in
      check_int "watermark from configs" 4 (Home.last_seq home);
      check_int "no further damage" 0 (hr.Home.torn_bytes + hr.Home.quarantined);
      Home.close home)

let () =
  Alcotest.run "homeguard-store"
    [
      ( "journal",
        [
          crc_vectors;
          scan_roundtrip;
          scan_empty;
          torn_tail_every_cut;
          flip_payload_quarantines;
          flip_length_field_resyncs;
          flip_magic_resyncs;
          recover_rewrites_and_quarantines;
          append_then_scan;
          event_roundtrip;
        ] );
      ( "ingest",
        [
          ingest_outcomes;
          ingest_window_boundaries;
          ingest_duplicate_after_ack;
          ingest_envelope;
          ingest_sender_redelivery_is_harmless;
        ] );
      ( "home",
        [
          home_persists;
          home_rerun_is_idempotent;
          home_out_of_order_equals_in_order;
          home_uninstall_and_update;
          compaction_preserves_state;
        ] );
      ( "crash-matrix",
        [ crash_matrix; torn_write_reports_damage; flip_marks_changed_apps ] );
      ( "replication",
        [
          epoch_frames;
          rjournal_merge_repairs;
          fence_rejects_stale_appends;
          scrub_repairs_and_audit_is_identical;
          replay_determinism_property;
        ] );
      ("fixture", [ fixture_recovers ]);
    ]
