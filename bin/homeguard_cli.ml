(** The [homeguard] command-line tool.

    Subcommands:
    - [extract FILE]: symbolically execute a SmartApp source file and
      print its rules (optionally as the JSON rule file).
    - [detect FILE...]: extract several apps and report pairwise CAI
      threats (offline device-type matching).
    - [audit]: run the corpus-wide audit and print Fig 8 statistics.
    - [instrument FILE]: print the instrumented source (Listing 3).
    - [simulate SCENARIO]: replay a §VIII-A exploitation scenario,
      optionally under runtime mediation ([--enforce]).
    - [handle FILE...]: report threats with their recommended handling
      decisions (§VII).
    - [corpus]: list the bundled corpus.
    - [serve --state-dir DIR]: run a durable home on a write-ahead
      journal, driven by a line protocol on stdin.
    - [recover --state-dir DIR]: recover a (possibly damaged) journal,
      report what was lost, and re-audit the apps touched by damage.
    - [compact --state-dir DIR]: fold the journal into a snapshot. *)

module Rule = Homeguard_rules.Rule
module Extract = Homeguard_symexec.Extract
module Detector = Homeguard_detector.Detector
module Threat = Homeguard_detector.Threat
module Rule_interpreter = Homeguard_frontend.Rule_interpreter
module Threat_interpreter = Homeguard_frontend.Threat_interpreter
module Policy = Homeguard_handling.Policy
module Mediator = Homeguard_handling.Mediator
open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_app path =
  let src = read_file path in
  let name = Filename.remove_extension (Filename.basename path) in
  Extract.extract_source ~name src

(* Shared --jobs option: how many domains the detection engine fans
   candidate pairs out across. 0 selects the hardware parallelism. *)
let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Number of detection domains. 1 (the default) detects \
           sequentially; 0 uses every core. The threat output is \
           identical for any value.")

let resolve_jobs n = if n <= 0 then Homeguard_detector.Schedule.default_jobs () else n

(* Shared --solver-budget option, in search nodes per solve. -1 keeps
   the default budgets, 0 disables budgeting entirely. *)
let budget_arg =
  Arg.(
    value & opt int (-1)
    & info [ "solver-budget" ] ~docv:"NODES"
        ~doc:
          "Per-solve search-node budget. A solve that exhausts it is \
           retried once with an 8x budget and then reported as \
           $(i,undecided) rather than decided. -1 (the default) uses \
           the built-in budgets; 0 removes all budgets.")

let resolve_budget n =
  let module Budget = Homeguard_solver.Budget in
  if n < 0 then Budget.default_spec
  else if n = 0 then Budget.unlimited_spec
  else Budget.spec_of_nodes n

let strict_arg =
  Arg.(
    value & flag
    & info [ "strict" ]
        ~doc:
          "Exit with status 3 if any rule pair was undecided (solver \
           budget exhausted) or failed (detection crashed), instead of \
           completing best-effort.")

(* Shared solver fast-path switches: A/B levers for the hot-path
   optimizations. Both default on; disabling them changes timing only —
   the threat output is identical either way. *)
let fastpath_arg =
  let no_bitset =
    Arg.(
      value & flag
      & info [ "no-bitset" ]
          ~doc:"Disable the solver's small-domain bitset fast path (debug/ablation).")
  in
  let no_memo =
    Arg.(
      value & flag
      & info [ "no-solver-memo" ]
          ~doc:
            "Disable formula hash-consing and NNF/DNF memoization in the solver \
             (debug/ablation).")
  in
  let apply no_bitset no_memo =
    if no_bitset then Homeguard_solver.Domain.bitset_enabled := false;
    if no_memo then Homeguard_solver.Formula.memo_enabled := false
  in
  Term.(const apply $ no_bitset $ no_memo)

let config_with_budget budget =
  { Detector.offline_config with Detector.budget = resolve_budget budget }

let print_audit_health (result : Detector.audit_result) =
  if result.Detector.undecided > 0 then
    Printf.printf "undecided threats (budget exhausted): %d\n" result.Detector.undecided;
  if result.Detector.failures <> [] then begin
    Printf.printf "failed pairs (detection crashed): %d\n"
      (List.length result.Detector.failures);
    List.iter
      (fun (f : Detector.failure) ->
        Printf.printf "  %s: %s\n" f.Detector.pair f.Detector.exn)
      result.Detector.failures
  end

let strict_violation strict (result : Detector.audit_result) =
  strict && (result.Detector.undecided > 0 || result.Detector.failures <> [])

(* -- extract ---------------------------------------------------------------- *)

let extract_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"SmartApp source file")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Print the JSON rule file instead of prose")
  in
  let run file json =
    match load_app file with
    | { Extract.app; diags } ->
      if json then print_endline (Homeguard_rules.Rule_json.to_string app)
      else begin
        Printf.printf "%s: %d rule(s)\n" app.Rule.name (List.length app.Rule.rules);
        print_endline (Rule_interpreter.describe_app app);
        if diags.Extract.unknown_calls <> [] then
          Printf.printf "note: unmodeled APIs encountered: %s\n"
            (String.concat ", " diags.Extract.unknown_calls);
        if diags.Extract.truncated then
          print_endline "warning: path budget exhausted, extraction may be partial"
      end;
      0
    | exception Extract.Extraction_error msg ->
      Printf.eprintf "error: %s\n" msg;
      1
  in
  Cmd.v
    (Cmd.info "extract" ~doc:"Extract automation rules from a SmartApp via symbolic execution")
    Term.(const run $ file $ json)

(* -- detect ----------------------------------------------------------------- *)

let detect_cmd =
  let files =
    Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE..." ~doc:"SmartApp source files")
  in
  let run files jobs budget strict =
    match List.map (fun f -> (load_app f).Extract.app) files with
    | apps ->
      let ctx = Detector.create (config_with_budget budget) in
      let result = Detector.audit_all ~jobs:(resolve_jobs jobs) ctx apps in
      print_endline (Threat_interpreter.describe_all result.Detector.threats);
      print_audit_health result;
      if strict_violation strict result then 3
      else if result.Detector.threats = [] then 0
      else 2
    | exception Extract.Extraction_error msg ->
      Printf.eprintf "error: %s\n" msg;
      1
  in
  Cmd.v
    (Cmd.info "detect" ~doc:"Detect cross-app interference threats among SmartApps")
    Term.(const (fun () -> run) $ fastpath_arg $ files $ jobs_arg $ budget_arg $ strict_arg)

(* -- audit ------------------------------------------------------------------ *)

let audit_cmd =
  let run jobs budget strict =
    let open Homeguard_corpus in
    let apps =
      List.map
        (fun (e : App_entry.t) ->
          (Extract.extract_source ~name:e.App_entry.name e.App_entry.source).Extract.app)
        Corpus.audit_apps
    in
    let jobs = resolve_jobs jobs in
    let ctx = Detector.create (config_with_budget budget) in
    let pairs = Detector.candidate_pairs ctx apps in
    let result = Detector.audit_all ~jobs ctx apps in
    let threats = result.Detector.threats in
    Printf.printf "%s\n" (Corpus.stats ());
    Printf.printf "candidate rule pairs after pre-filters: %d (jobs: %d, solver calls: %d)\n"
      (Array.length pairs) jobs ctx.Detector.solver_calls;
    if ctx.Detector.escalations > 0 then
      Printf.printf "budget escalations: %d\n" ctx.Detector.escalations;
    Printf.printf "threat instances: %d\n" (List.length threats);
    List.iter
      (fun cat ->
        Printf.printf "  %-3s %d\n"
          (Threat.category_to_string cat)
          (List.length
             (List.filter (fun (t : Threat.t) -> t.Threat.category = cat) threats)))
      Threat.all_categories;
    print_audit_health result;
    if strict_violation strict result then 3 else 0
  in
  Cmd.v
    (Cmd.info "audit" ~doc:"Audit the bundled corpus pairwise (the paper's §VIII-B run)")
    Term.(const (fun () -> run) $ fastpath_arg $ jobs_arg $ budget_arg $ strict_arg)

(* -- instrument -------------------------------------------------------------- *)

let instrument_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"SmartApp source file")
  in
  let http =
    Arg.(value & flag & info [ "http" ] ~doc:"Use HTTP/FCM messaging instead of SMS")
  in
  let run file http =
    let src = read_file file in
    let name = Filename.remove_extension (Filename.basename file) in
    let transport = if http then `Http else `Sms in
    print_endline (Homeguard_config.Instrument.instrument_source ~transport ~app_name:name src);
    0
  in
  Cmd.v
    (Cmd.info "instrument"
       ~doc:"Insert the configuration-collection code (paper Listing 3) into a SmartApp")
    Term.(const run $ file $ http)

(* -- simulate ----------------------------------------------------------------- *)

let simulate_cmd =
  let module Engine = Homeguard_sim.Engine in
  let module Trace = Homeguard_sim.Trace in
  let module Device = Homeguard_st.Device in
  let scenario =
    Arg.(
      required
      & pos 0 (some (enum [ ("race", `Race); ("covert", `Covert); ("disable", `Disable) ])) None
      & info [] ~docv:"SCENARIO" ~doc:"One of: race, covert, disable (the paper's §VIII-A runs)")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Jitter seed") in
  let enforce =
    Arg.(
      value & flag
      & info [ "enforce" ]
          ~doc:
            "Replay under runtime mediation: detect the scenario's \
             threats, compile a reference monitor with the default \
             handling decisions, and enforce it before every command. \
             Exits 4 if any threat witness survives mediation.")
  in
  let corpus_app name =
    let open Homeguard_corpus in
    let e = Option.get (Corpus.find name) in
    (Extract.extract_source ~name:e.App_entry.name e.App_entry.source).Extract.app
  in
  let run scenario seed enforce =
    let tv = Device.make ~label:"TV" ~device_type:"tv" [ "switch" ] in
    let window = Device.make ~label:"Window" ~device_type:"window" [ "switch" ] in
    let tsensor = Device.make ~label:"Thermo" ~device_type:"temp" [ "temperatureMeasurement" ] in
    let weather = Device.make ~label:"Weather" ~device_type:"weather" [ "weatherSensor" ] in
    let voice = Device.make ~label:"Voice" ~device_type:"speaker" [ "musicPlayer" ] in
    let lamp = Device.make ~label:"Floor lamp" ~device_type:"light" [ "switch" ] in
    let motion = Device.make ~label:"Motion" ~device_type:"motion" [ "motionSensor" ] in
    let siren = Device.make ~label:"Alarm" ~device_type:"alarm" [ "alarm" ] in
    let scenario_apps =
      match scenario with
      | `Race -> [ "ComfortTV"; "ColdDefender" ]
      | `Covert -> [ "ComfortTV"; "CatchLiveShow" ]
      | `Disable -> [ "BurglarFinder"; "NightCare" ]
    in
    let mediator =
      if not enforce then None
      else begin
        let apps = List.map corpus_app scenario_apps in
        let ctx = Detector.create Detector.offline_config in
        let result = Detector.audit_all ~jobs:1 ctx apps in
        Some (Mediator.create (Policy.create ()) result.Detector.threats)
      end
    in
    let t = Engine.create ~seed ?mediator () in
    let comfort () =
      Engine.install t (corpus_app "ComfortTV")
        [ ("tv1", Engine.B_device tv); ("tSensor", Engine.B_device tsensor);
          ("threshold1", Engine.B_int 30); ("window1", Engine.B_device window) ]
    in
    (match scenario with
    | `Race ->
      comfort ();
      Engine.install t (corpus_app "ColdDefender")
        [ ("tv2", Engine.B_device tv); ("wSensor", Engine.B_device weather);
          ("window2", Engine.B_device window) ];
      Engine.stimulate t tsensor.Device.id "temperature" "31";
      Engine.stimulate t weather.Device.id "weather" "rainy";
      Engine.stimulate t tv.Device.id "switch" "on";
      Engine.run t ~until_ms:10_000
    | `Covert ->
      comfort ();
      Engine.install t (corpus_app "CatchLiveShow")
        [ ("voicePlayer", Engine.B_device voice); ("tv3", Engine.B_device tv) ];
      Engine.stimulate t tsensor.Device.id "temperature" "31";
      Engine.stimulate t voice.Device.id "status" "playing";
      Engine.run t ~until_ms:10_000
    | `Disable ->
      Engine.install t (corpus_app "BurglarFinder")
        [ ("motion1", Engine.B_device motion); ("floorLamp", Engine.B_device lamp);
          ("alarm1", Engine.B_device siren) ];
      Engine.install t (corpus_app "NightCare") [ ("lamp5", Engine.B_device lamp) ];
      Engine.set_mode t "Night";
      Engine.run t ~until_ms:1_000;
      Engine.stimulate t lamp.Device.id "switch" "on";
      Engine.run t ~until_ms:400_000;
      Engine.stimulate t motion.Device.id "motion" "active";
      Engine.run t ~until_ms:500_000);
    let trace = Engine.trace t in
    print_endline (Trace.to_string trace);
    match mediator with
    | None -> 0
    | Some m ->
      print_newline ();
      print_endline "enforcement log:";
      let log = Mediator.log_to_string m in
      print_endline (if log = "" then "  (empty)" else log);
      (* the witness each scenario exists to exhibit, re-checked under
         mediation *)
      let surviving =
        match scenario with
        | `Race ->
          if
            Trace.flap_count trace "Window" "switch" > 0
            || Trace.opposite_commands_within trace "Window" ~window_ms:10_000
                 ~opposites:[ ("on", "off") ]
          then 1
          else 0
        | `Covert -> if Trace.final_attribute trace "Window" "switch" = Some "on" then 1 else 0
        | `Disable ->
          if
            Trace.final_attribute trace "Floor lamp" "switch" <> Some "on"
            || Trace.final_attribute trace "Alarm" "alarm" = None
          then 1
          else 0
      in
      Printf.printf "surviving threat witnesses: %d\n" surviving;
      if surviving = 0 then 0 else 4
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:
         "Replay one of the paper's exploitation scenarios in the home simulator, \
          optionally under runtime mediation (--enforce)")
    Term.(const run $ scenario $ seed $ enforce)

(* -- handle ------------------------------------------------------------------- *)

let handle_cmd =
  let files =
    Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE..." ~doc:"SmartApp source files")
  in
  let run files jobs budget strict =
    match List.map (fun f -> (load_app f).Extract.app) files with
    | apps ->
      let ctx = Detector.create (config_with_budget budget) in
      let result = Detector.audit_all ~jobs:(resolve_jobs jobs) ctx apps in
      let threats = result.Detector.threats in
      let store = Policy.create () in
      if threats = [] then print_endline "no threats; nothing to handle"
      else begin
        Printf.printf "%d threat(s); recommended handling decisions:\n" (List.length threats);
        List.iter
          (fun (th : Threat.t) ->
            Printf.printf "%s\n    %s\n    -> %s\n" (Policy.threat_id th) th.Threat.detail
              (Policy.describe (Policy.decision_for store th)))
          threats
      end;
      print_audit_health result;
      if strict_violation strict result then 3 else 0
    | exception Extract.Extraction_error msg ->
      Printf.eprintf "error: %s\n" msg;
      1
  in
  Cmd.v
    (Cmd.info "handle"
       ~doc:
         "Report detected threats with their recommended handling decisions (paper §VII); \
          the same defaults are enforced by simulate --enforce")
    Term.(const (fun () -> run) $ fastpath_arg $ files $ jobs_arg $ budget_arg $ strict_arg)

(* -- corpus ------------------------------------------------------------------ *)

let corpus_cmd =
  let run () =
    let open Homeguard_corpus in
    Printf.printf "%-34s %-28s %s\n" "name" "category" "rules (ground truth)";
    List.iter
      (fun (e : App_entry.t) ->
        Printf.printf "%-34s %-28s %s\n" e.App_entry.name
          (App_entry.category_to_string e.App_entry.category)
          (if e.App_entry.ground_truth_rules < 0 then "web service"
           else string_of_int e.App_entry.ground_truth_rules))
      Corpus.all;
    0
  in
  Cmd.v (Cmd.info "corpus" ~doc:"List the bundled SmartApp corpus") Term.(const run $ const ())

(* -- durable home state (serve / recover / compact) --------------------------- *)

module Home = Homeguard_store.Home
module Ingest = Homeguard_store.Ingest
module Broker = Homeguard_serve.Broker
module Serve_shed = Homeguard_serve.Shed
module Fault = Homeguard_solver.Fault
module Vcache = Homeguard_vcache.Vcache

let state_dir_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "state-dir" ] ~docv:"DIR"
        ~doc:"Directory holding the home's journal and snapshot (created if missing).")

let no_fsync_arg =
  Arg.(
    value & flag
    & info [ "no-fsync" ]
        ~doc:"Skip fsync after journal appends (faster, loses the crash-durability guarantee).")

let replica_root_arg =
  Arg.(
    value & opt_all string []
    & info [ "replica-root" ] ~docv:"DIR"
        ~doc:
          "Additional replica directory for this home's journals (repeatable). \
           Every journaled change is appended to all replicas in order; recovery \
           merges every record that survived on at least one replica and rewrites \
           damaged, stale or missing copies (read-repair).")

let online_arg =
  Arg.(
    value & flag
    & info [ "online" ]
        ~doc:
          "Match devices by exact recorded identity only (deployment-accurate online \
           mode). The default mixes offline device-type matching with recorded \
           configuration constraints.")

let home_mode online = if online then Home.Online else Home.Mixed

let print_recovery (r : Home.recovery_report) =
  Printf.printf "recovered: %d snapshot + %d journal record(s)\n" r.Home.snapshot_records
    r.Home.journal_records;
  if r.Home.torn_bytes > 0 then
    Printf.printf "torn tail truncated: %d byte(s)\n" r.Home.torn_bytes;
  if r.Home.quarantined > 0 then
    Printf.printf "corrupt records quarantined: %d\n" r.Home.quarantined;
  if r.Home.skipped_events > 0 then
    Printf.printf "undecodable events skipped: %d\n" r.Home.skipped_events;
  if r.Home.changed_apps <> [] then
    Printf.printf "apps touched by damage: %s\n" (String.concat ", " r.Home.changed_apps);
  if r.Home.repaired_replicas > 0 || r.Home.healed_records > 0 then
    Printf.printf "replicas repaired: %d (%d record(s) healed)\n"
      r.Home.repaired_replicas r.Home.healed_records;
  if r.Home.all_replicas_damaged then
    print_endline "every replica was damaged: acknowledged records may be lost";
  if r.Home.epoch > 0 then Printf.printf "ownership epoch: %d\n" r.Home.epoch

let print_delivery = function
  | Home.Accepted (Ingest.Applied n) -> Printf.printf "applied %d message(s)\n" n
  | Home.Accepted Ingest.Duplicate -> print_endline "duplicate (dropped)"
  | Home.Accepted Ingest.Buffered -> print_endline "buffered (out of order)"
  | Home.Accepted Ingest.Overflow -> print_endline "rejected: reorder window overflow"
  | Home.Malformed m -> Printf.printf "rejected: %s\n" m

(** Line protocol for [serve]: one command per line on stdin. *)
let serve_help =
  {|commands:
  install FILE      extract FILE, audit under the request deadline, leave the
                    proposal pending; replies: ok | busy retry-after-ms=N |
                    degraded (deadline cut the audit short) | quarantined
  keep              accept the pending proposal (journaled)
  reject            discard the pending proposal
  config URI        record a configuration URI (journaled)
  deliver SEQ URI   sequenced delivery (dedup + reordering, journaled)
  uninstall NAME    remove an installed app (journaled)
  decision ID D     override handling for threat ID; D one of
                    allow | confirm | block RULE | prioritize RULE | break N
  status            installed apps, watermark, journal size, queue occupancy
  audit             enqueue a background full re-audit (queued job=N | busy)
  audit now         synchronous full re-audit (the recovery invariant text)
  drain             run or shed every queued re-audit, in order
  quarantine        list quarantined apps
  quarantine clear NAME  lift a quarantine (journaled)
  inject stall MS [RATE] [ONLY]  arm solver latency injection (test hook)
  inject crash RATE [ONLY]       arm solver crash injection (test hook)
  inject off        disarm fault injection
  compact           fold the journal into a snapshot
  help              this text
  quit              close the journal and exit|}

let parse_decision = function
  | [ "allow" ] -> Some Policy.Allow
  | [ "confirm" ] -> Some Policy.Confirm
  | [ "block"; rule ] -> Some (Policy.Block { rule })
  | [ "prioritize"; winner ] -> Some (Policy.Prioritize { winner })
  | [ "break"; n ] -> (
    match int_of_string_opt n with
    | Some hop_budget -> Some (Policy.Break_chain { hop_budget })
    | None -> None)
  | _ -> None

let print_install_reply = function
  | Broker.Proposed { report; degraded; elapsed_ms } ->
    let threats = report.Homeguard_frontend.Install_flow.threats in
    let audit = report.Homeguard_frontend.Install_flow.audit in
    Printf.printf "%s%s: %d threat(s) elapsed-ms=%.0f\n"
      (if degraded then "degraded reason=deadline-expired " else "ok ")
      report.Homeguard_frontend.Install_flow.app.Rule.name (List.length threats)
      elapsed_ms;
    print_audit_health audit;
    if degraded || audit.Detector.failures <> [] then
      print_endline "incomplete audit: threats shown are a lower bound, not a clean bill";
    if threats <> [] then begin
      print_endline report.Homeguard_frontend.Install_flow.threats_text;
      print_endline report.Homeguard_frontend.Install_flow.handling_text
    end;
    Option.iter
      (fun note -> Printf.printf "note: %s\n" note)
      report.Homeguard_frontend.Install_flow.quarantine_note;
    print_endline "pending: keep | reject"
  | Broker.Busy { retry_after_ms } -> Printf.printf "busy retry-after-ms=%d\n" retry_after_ms
  | Broker.Quarantined_app { app; reason } ->
    Printf.printf "quarantined %s: %s — reject recommended (or: quarantine clear %s)\n" app
      reason app
  | Broker.Install_failed { app; error; quarantined } ->
    Printf.printf "error: %s\n" error;
    if quarantined then Printf.printf "quarantined %s after repeated failures\n" app

let print_audit_outcome = function
  | Broker.Audited { id; result; degraded; elapsed_ms; _ } ->
    Printf.printf "audited job=%d threats=%d shed=%d %s elapsed-ms=%.0f\n" id
      (List.length result.Detector.threats)
      result.Detector.shed
      (if degraded then "degraded" else "complete")
      elapsed_ms;
    print_audit_health result
  | Broker.Shed_job { id; reason; _ } ->
    Printf.printf "shed job=%d reason=%s\n" id (Serve_shed.describe_reason reason)

let parse_inject words =
  let rate_of s = int_of_string_opt s in
  match words with
  | [ "off" ] ->
    Fault.disarm ();
    Some "fault injection disarmed"
  | "stall" :: ms :: rest -> (
    match (float_of_string_opt ms, rest) with
    | Some ms, [] ->
      Fault.arm ~rate_per_thousand:1000 (Fault.Stall ms);
      Some (Printf.sprintf "armed: stall %.0f ms on every solve" ms)
    | Some ms, [ rate ] -> (
      match rate_of rate with
      | Some r ->
        Fault.arm ~rate_per_thousand:r (Fault.Stall ms);
        Some (Printf.sprintf "armed: stall %.0f ms at %d/1000" ms r)
      | None -> None)
    | Some ms, [ rate; only ] -> (
      match rate_of rate with
      | Some r ->
        Fault.arm ~only ~rate_per_thousand:r (Fault.Stall ms);
        Some (Printf.sprintf "armed: stall %.0f ms at %d/1000 only=%s" ms r only)
      | None -> None)
    | _ -> None)
  | "crash" :: rate :: rest -> (
    match (rate_of rate, rest) with
    | Some r, [] ->
      Fault.arm ~rate_per_thousand:r Fault.Raise;
      Some (Printf.sprintf "armed: crash at %d/1000" r)
    | Some r, [ only ] ->
      Fault.arm ~only ~rate_per_thousand:r Fault.Raise;
      Some (Printf.sprintf "armed: crash at %d/1000 only=%s" r only)
    | _ -> None)
  | _ -> None

(* The interactive serve loop fronts exactly one home, registered in
   the broker under this id. *)
let serve_home_id = "home"

let serve_line broker line =
  let home = Broker.home broker serve_home_id in
  let words = String.split_on_char ' ' (String.trim line) |> List.filter (( <> ) "") in
  match words with
  | [] -> ()
  | [ "install"; file ] -> (
    match read_file file with
    | source ->
      let name = Filename.remove_extension (Filename.basename file) in
      print_install_reply (Broker.install broker ~home:serve_home_id ~name ~source ())
    | exception Sys_error msg -> Printf.printf "error: %s\n" msg)
  | [ "keep" ] -> (
    match Home.decide home Homeguard_frontend.Install_flow.Keep with
    | () -> print_endline "kept"
    | exception Home.No_pending_install -> print_endline "error: nothing pending")
  | [ "reject" ] -> (
    match Home.decide home Homeguard_frontend.Install_flow.Reject with
    | () -> print_endline "rejected"
    | exception Home.No_pending_install -> print_endline "error: nothing pending")
  | [ "config"; uri ] -> print_delivery (Home.record_uri home uri)
  | [ "deliver"; seq; uri ] -> (
    match int_of_string_opt seq with
    | Some seq -> print_delivery (Home.deliver home ~seq uri)
    | None -> print_endline "error: SEQ must be an integer")
  | [ "uninstall"; name ] ->
    print_endline (if Home.uninstall home name then "uninstalled" else "error: not installed")
  | "decision" :: id :: rest -> (
    match parse_decision rest with
    | Some d ->
      Home.set_decision home id d;
      print_endline "recorded"
    | None -> print_endline "error: bad decision (see help)")
  | [ "status" ] ->
    Printf.printf "installed:%s\n"
      (String.concat ""
         (List.map (fun (a : Rule.smartapp) -> " " ^ a.Rule.name) (Home.installed_apps home)));
    Printf.printf "ack: %d\njournal: %d byte(s), snapshot: %d byte(s)\n" (Home.last_seq home)
      (Home.journal_size home) (Home.snapshot_size home);
    print_endline (Broker.status broker)
  | [ "audit" ] -> (
    match Broker.submit_audit broker ~home:serve_home_id () with
    | Ok id -> Printf.printf "queued job=%d\n" id
    | Error retry_after_ms -> Printf.printf "busy retry-after-ms=%d\n" retry_after_ms)
  | [ "audit"; "now" ] -> print_string (Home.audit_text home)
  | [ "drain" ] -> (
    match Broker.drain broker with
    | [] -> print_endline "nothing queued"
    | outcomes -> List.iter print_audit_outcome outcomes)
  | [ "quarantine" ] -> (
    match Broker.quarantined broker ~home:serve_home_id with
    | [] -> print_endline "quarantined: none"
    | qs -> List.iter (fun (app, reason) -> Printf.printf "quarantined %s: %s\n" app reason) qs)
  | [ "quarantine"; "clear"; name ] ->
    print_endline
      (if Broker.clear_quarantine broker ~home:serve_home_id name then "cleared"
       else "error: not quarantined")
  | "inject" :: rest -> (
    match parse_inject rest with
    | Some msg -> print_endline msg
    | None -> print_endline "error: bad inject (see help)")
  | [ "compact" ] ->
    Home.compact home;
    Printf.printf "compacted; snapshot: %d byte(s)\n" (Home.snapshot_size home)
  | [ "help" ] -> print_endline serve_help
  | _ -> print_endline "error: unknown command (try: help)"

let max_queue_arg =
  Arg.(
    value & opt int 4
    & info [ "max-queue" ] ~docv:"N"
        ~doc:
          "Bound on admitted work (running + queued) for this home. A request \
           arriving with the queue full gets an immediate $(i,busy \
           retry-after-ms=N) reply instead of unbounded queueing.")

let deadline_ms_arg =
  Arg.(
    value & opt float 0.0
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:
          "Default per-request deadline in milliseconds (0 = unbounded). The \
           remaining allowance is propagated down to the solver as its \
           wall-clock budget; an audit cut short replies $(i,degraded) and \
           never claims a clean bill.")

let quarantine_after_arg =
  Arg.(
    value & opt int 3
    & info [ "quarantine-after" ] ~docv:"K"
        ~doc:
          "Quarantine an app after K consecutive extraction/audit failures \
           (journaled; survives restarts). Quarantined apps are excluded from \
           batch audits until cleared.")

let cache_dir_arg =
  Arg.(
    value & opt string ""
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:
          "Attach a persistent shared verdict cache rooted at DIR (append-only \
           CRC-framed journal; warm across restarts). Omit to run uncached.")

let serve_cmd =
  let run dir replica_roots no_fsync online max_queue deadline_ms quarantine_after
      jobs cache_dir =
    let vcache =
      if cache_dir = "" then None
      else
        let st = Vcache.open_store ~fsync:(not no_fsync) ~dir:cache_dir () in
        Some (st, Vcache.attach st ~owner:"serve")
    in
    let configure =
      match vcache with None -> Fun.id | Some (_, h) -> Vcache.configure h
    in
    let home, report =
      Home.open_ ~fsync:(not no_fsync) ~mode:(home_mode online) ~configure
        ~replicas:replica_roots ~dir ()
    in
    print_recovery report;
    let config =
      {
        Broker.default_config with
        Broker.max_queue;
        Broker.deadline_ms = (if deadline_ms > 0.0 then Some deadline_ms else None);
        Broker.quarantine_after;
        Broker.jobs = resolve_jobs jobs;
      }
    in
    let broker = Broker.create ~config () in
    Broker.add_home broker ~id:serve_home_id home;
    (match Broker.quarantined broker ~home:serve_home_id with
    | [] -> ()
    | qs ->
      Printf.printf "quarantined (recovered): %s\n" (String.concat ", " (List.map fst qs)));
    print_endline "ready (try: help)";
    (try
       while true do
         let line = input_line stdin in
         if String.trim line = "quit" then raise Exit else serve_line broker line
       done
     with Exit | End_of_file -> ());
    Fault.disarm ();
    Home.close home;
    (match vcache with
    | None -> ()
    | Some (st, h) ->
      Printf.printf "cache: entries=%d %s\n" (Vcache.entries st)
        (Vcache.counters_text (Vcache.counters h));
      Vcache.close_store st);
    0
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run a durable home on a write-ahead journal, driven by a line protocol on \
          stdin; every accepted change is journaled and fsynced before it applies. \
          Requests pass admission control (bounded queues, busy replies), carry \
          deadlines down to the solver, and repeatedly-failing apps are quarantined")
    Term.(
      const (fun () -> run) $ fastpath_arg $ state_dir_arg $ replica_root_arg
      $ no_fsync_arg $ online_arg $ max_queue_arg $ deadline_ms_arg
      $ quarantine_after_arg $ jobs_arg $ cache_dir_arg)

let recover_cmd =
  let run dir replica_roots online jobs =
    let home, report =
      Home.open_ ~mode:(home_mode online) ~replicas:replica_roots ~dir ()
    in
    print_recovery report;
    Printf.printf "installed apps: %d, watermark: %d\n"
      (List.length (Home.installed_apps home))
      (Home.last_seq home);
    (match Home.quarantined home with
    | [] -> ()
    | qs ->
      List.iter
        (fun (app, reason) ->
          Printf.printf "quarantined %s: %s (excluded from re-audit)\n" app reason)
        qs);
    (match Home.reaudit_changed ~jobs:(resolve_jobs jobs) home report with
    | [] -> print_endline "incremental re-audit: nothing to re-check"
    | reaudits ->
      List.iter
        (fun (name, (result : Detector.audit_result)) ->
          Printf.printf "re-audit %s: %d threat(s)\n" name
            (List.length result.Detector.threats);
          print_audit_health result)
        reaudits);
    Home.close home;
    if
      report.Home.torn_bytes > 0
      || report.Home.quarantined > 0
      || report.Home.repaired_replicas > 0
    then 2
    else 0
  in
  Cmd.v
    (Cmd.info "recover"
       ~doc:
         "Recover a home's (possibly damaged) journal: truncate torn tails, quarantine \
          corrupt records, replay the rest — merging and read-repairing any replica \
          roots — and incrementally re-audit the apps the damage touched. Exits 2 \
          when damage was found and repaired")
    Term.(const run $ state_dir_arg $ replica_root_arg $ online_arg $ jobs_arg)

let compact_cmd =
  let run dir replica_roots online =
    let home, report =
      Home.open_ ~mode:(home_mode online) ~replicas:replica_roots ~dir ()
    in
    print_recovery report;
    let before = Home.journal_size home + Home.snapshot_size home in
    Home.compact home;
    let after = Home.journal_size home + Home.snapshot_size home in
    Printf.printf "compacted: %d -> %d byte(s)\n" before after;
    Home.close home;
    0
  in
  Cmd.v
    (Cmd.info "compact"
       ~doc:
         "Fold a home's journal into a minimal snapshot (current configs, installed \
          apps, explicit decisions, ingestion watermark) and truncate the journal")
    Term.(const run $ state_dir_arg $ replica_root_arg $ online_arg)

(* -- fleet ------------------------------------------------------------------- *)

module Chaos = Homeguard_fleet.Chaos
module Chaos_repro = Homeguard_fleet.Repro
module Supervisor = Homeguard_fleet.Supervisor
module Fleet_shard = Homeguard_fleet.Shard
module Synth = Homeguard_corpus.Synth
module Corpus_mod = Homeguard_corpus.Corpus
module App_entry = Homeguard_corpus.App_entry
module Install_flow_cli = Homeguard_frontend.Install_flow

module Fleet_scrub = Homeguard_store.Scrub

let no_vcache_arg =
  Arg.(
    value & flag
    & info [ "no-vcache" ]
        ~doc:
          "Disable the fleet-shared verdict cache (and, under chaos, skip the \
           cache invariants).")

let fleet_replicas_arg =
  Arg.(
    value & opt int 0
    & info [ "replicas" ] ~docv:"R"
        ~doc:
          "Replica directories per home (default 2; 1 keeps the unreplicated \
           layout). Replica $(i,k) lives under the distinct replica root \
           $(i,STATE-DIR/rk).")

let fleet_audit_cmd =
  let run dir seed n_homes shards replicas jobs no_vcache =
    let dir =
      if dir <> "" then dir
      else
        Filename.concat (Filename.get_temp_dir_name ())
          (Printf.sprintf "homeguard-fleet-%d" (Unix.getpid ()))
    in
    let synth = Corpus_mod.synth ~seed ~n_homes in
    let config =
      {
        Supervisor.default_config with
        Supervisor.shards;
        fsync = false;
        vcache = not no_vcache;
        replicas =
          (if replicas > 0 then replicas
           else Supervisor.default_config.Supervisor.replicas);
        broker = { Broker.default_config with Broker.jobs = resolve_jobs jobs };
      }
    in
    let sup =
      Supervisor.create ~config ~dir
        ~homes:(List.map (fun h -> h.Synth.id) synth)
        ()
    in
    (* populate: install every synthetic home's apps and deliver its
       configuration stream, accepting whatever the fleet acks *)
    List.iter
      (fun h ->
        let id = h.Synth.id in
        List.iter
          (fun (app : App_entry.t) ->
            ignore
              (Supervisor.run sup ~home:id (fun sh ->
                   let broker = Fleet_shard.broker sh in
                   match
                     Broker.install broker ~home:id ~name:app.App_entry.name
                       ~source:app.App_entry.source ()
                   with
                   | Broker.Proposed _ ->
                     Home.decide (Broker.home broker id) Install_flow_cli.Keep
                   | _ -> ())))
          h.Synth.apps;
        List.iteri
          (fun i uri -> ignore (Supervisor.deliver sup ~home:id ~seq:(i + 1) uri))
          h.Synth.configs)
      synth;
    let audit_pass () =
      let t0 = Unix.gettimeofday () in
      List.iter
        (fun h ->
          match Supervisor.submit_audit sup ~home:h.Synth.id () with
          | Supervisor.Done { value = Ok _; shard } ->
            ignore (Supervisor.drain sup ~shard)
          | _ -> ())
        synth;
      Unix.gettimeofday () -. t0
    in
    let s1 = audit_pass () in
    let s2 = audit_pass () in
    Printf.printf "audit pass 1: %d homes in %.3fs (%.0f homes/s)\n" n_homes s1
      (float_of_int n_homes /. Float.max 1e-9 s1);
    Printf.printf "audit pass 2 (warm): %d homes in %.3fs (%.0f homes/s)\n" n_homes
      s2
      (float_of_int n_homes /. Float.max 1e-9 s2);
    print_string (Supervisor.status sup);
    Supervisor.close sup;
    0
  in
  let seed_arg =
    Arg.(
      value & opt int 7
      & info [ "seed" ] ~docv:"N" ~doc:"Synthetic-home generator seed.")
  in
  let homes_arg =
    Arg.(
      value & opt int 50
      & info [ "homes" ] ~docv:"N" ~doc:"Synthetic homes to generate and audit.")
  in
  let shards_arg =
    Arg.(
      value & opt int 4 & info [ "shards" ] ~docv:"N" ~doc:"Shard workers.")
  in
  let dir_arg =
    Arg.(
      value & opt string ""
      & info [ "state-dir" ] ~docv:"DIR"
          ~doc:
            "Fleet state root (default: a fresh directory under the system \
             temp dir). Re-running against the same root starts with a warm \
             verdict cache.")
  in
  Cmd.v
    (Cmd.info "audit"
       ~doc:
         "Generate a synthetic-home fleet, install and configure every home, then \
          audit the whole fleet twice — the second pass exercises the shared \
          verdict cache — and print per-shard status including cache counters")
    Term.(
      const run $ dir_arg $ seed_arg $ homes_arg $ shards_arg $ fleet_replicas_arg
      $ jobs_arg $ no_vcache_arg)

let fleet_chaos_cmd =
  let run dir seed shards homes steps replicas smoke no_vcache replay
      enforce_fence break_fence shrink_on_failure =
    let dir =
      if dir <> "" then dir
      else Filename.concat (Filename.get_temp_dir_name ())
             (Printf.sprintf "homeguard-chaos-%d" (Unix.getpid ()))
    in
    match replay with
    | Some path ->
      (* replay a checked-in repro; the two regression directions are
         "still reproduces as recorded" (default) and "the fix holds
         under enforcement" (--enforce-fence) *)
      let repro = Chaos_repro.load ~path in
      let report =
        Chaos_repro.replay
          ?enforce_fence:(if enforce_fence then Some true else None)
          repro ~dir
      in
      print_string (Chaos.render report);
      if enforce_fence then begin
        Printf.printf "replay (fence enforced): campaign %s — fix %s\n"
          (if Chaos.passed report then "passed" else "FAILED")
          (if Chaos.passed report then "holds" else "REGRESSED");
        if Chaos.passed report then 0 else 1
      end
      else begin
        let live = Chaos_repro.reproduces report repro in
        Printf.printf "replay (as recorded): invariant %s %s\n"
          repro.Chaos_repro.invariant
          (if live then "still violated — repro reproduces"
           else "NOT violated — repro went stale");
        if live then 0 else 1
      end
    | None ->
      let base = if smoke then Chaos.smoke_config else Chaos.default_config in
      let config =
        {
          base with
          Chaos.seed;
          Chaos.shards = (if shards > 0 then shards else base.Chaos.shards);
          Chaos.homes = (if homes > 0 then homes else base.Chaos.homes);
          Chaos.steps = (if steps > 0 then steps else base.Chaos.steps);
          Chaos.replicas =
            (if replicas > 0 then replicas else base.Chaos.replicas);
          Chaos.vcache = not no_vcache;
        }
      in
      let module Fence = Homeguard_store.Fence in
      let campaign () = Chaos.run ~config ~dir () in
      let report =
        if break_fence then begin
          Fence.set_enforced false;
          Fun.protect ~finally:(fun () -> Fence.set_enforced true) campaign
        end
        else campaign ()
      in
      print_string (Chaos.render report);
      if Chaos.passed report then 0
      else begin
        (* persist the failure as a replayable repro, and optionally
           delta-debug the schedule down to a minimal one *)
        let violated =
          List.filter_map
            (fun i -> if i.Chaos.ok then None else Some i.Chaos.name)
            report.Chaos.invariants
        in
        (match violated with
        | [] -> ()
        | invariant :: _ ->
          let repro =
            {
              Chaos_repro.config;
              schedule = report.Chaos.schedule;
              invariant;
              fence_enforced = not break_fence;
            }
          in
          let path = Filename.concat dir "chaos.failed.repro" in
          Chaos_repro.save repro ~path;
          Printf.printf "failure repro written to %s\n" path;
          if shrink_on_failure then begin
            let minimal, trials =
              Chaos.shrink ~config
                ~enforce_fence:(not break_fence)
                ~dir:(Filename.concat dir "shrink")
                ~invariant report.Chaos.schedule
            in
            let min_path = Filename.concat dir "chaos.min.repro" in
            Chaos_repro.save { repro with schedule = minimal } ~path:min_path;
            Printf.printf
              "minimized %d event(s) to %d in %d trial campaign(s); repro \
               written to %s\n"
              (List.length report.Chaos.schedule)
              (List.length minimal) trials min_path
          end);
        1
      end
  in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Campaign seed; the kill schedule, fault windows and workload are all deterministic in it.")
  in
  let shards_arg =
    Arg.(value & opt int 0 & info [ "shards" ] ~docv:"N" ~doc:"Shard workers (default 4).")
  in
  let homes_arg =
    Arg.(value & opt int 0 & info [ "homes" ] ~docv:"N" ~doc:"Synthetic homes (default 24; 10 under --smoke).")
  in
  let steps_arg =
    Arg.(value & opt int 0 & info [ "steps" ] ~docv:"N" ~doc:"Campaign steps (default 400; 150 under --smoke).")
  in
  let smoke_arg =
    Arg.(value & flag & info [ "smoke" ] ~doc:"CI-sized campaign: fewer homes and steps, same invariants.")
  in
  let dir_arg =
    Arg.(value & opt string "" & info [ "state-dir" ] ~docv:"DIR" ~doc:"Fleet state root (default: a fresh directory under the system temp dir).")
  in
  let replay_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:
            "Replay a checked-in chaos repro instead of deriving a schedule: \
             run its recorded config, fault events and fence setting, and exit \
             0 when the recorded invariant is still violated (the repro \
             reproduces). With $(b,--enforce-fence), exit 0 when the campaign \
             passes instead (the fix holds).")
  in
  let enforce_fence_arg =
    Arg.(
      value & flag
      & info [ "enforce-fence" ]
          ~doc:
            "Under $(b,--replay): override the repro's recorded fence setting \
             and run with epoch fencing enforced — the regression direction \
             that proves the fix still holds.")
  in
  let break_fence_arg =
    Arg.(
      value & flag
      & info [ "break-fence" ]
          ~doc:
            "Deliberately reintroduce the split-brain bug: run the campaign \
             with epoch fencing disabled. The stale-epoch invariants must \
             catch it; combine with $(b,--shrink-on-failure) to minimize the \
             catching schedule.")
  in
  let shrink_arg =
    Arg.(
      value & flag
      & info [ "shrink-on-failure" ]
          ~doc:
            "When the campaign fails, delta-debug (ddmin) the fault schedule \
             down to a minimal event list that still violates the first \
             failed invariant, and write it to \
             $(i,STATE-DIR)/chaos.min.repro. A non-minimized \
             chaos.failed.repro is written on any failure regardless.")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run a seeded chaos campaign over a home-sharded fleet: an explicit \
          fault schedule of shard kills, stalls, storage faults, replica and \
          verdict-cache damage and split-brain windows layered over \
          synthetic-home traffic, then verify the fleet invariants (no acked \
          loss, deterministic recovery, quarantine/decision survival, no false \
          clean bill, zero stale-epoch appends, scrub convergence — plus the \
          cache-surface invariants unless --no-vcache). Failures persist a \
          replayable repro; see --replay and --shrink-on-failure. Exits 1 on \
          any violation")
    Term.(
      const run $ dir_arg $ seed_arg $ shards_arg $ homes_arg $ steps_arg
      $ fleet_replicas_arg $ smoke_arg $ no_vcache_arg $ replay_arg
      $ enforce_fence_arg $ break_fence_arg $ shrink_arg)

let fleet_scrub_cmd =
  let run dir replicas strict no_fsync =
    let replicas = if replicas > 0 then replicas else 2 in
    if not (Sys.file_exists dir && Sys.is_directory dir) then begin
      Printf.eprintf "error: no fleet root at %s\n" dir;
      1
    end
    else begin
      (* primary home dirs are h_<id> directly under the fleet root;
         replica k of each lives under the replica root r<k> *)
      let entries =
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun e ->
               String.length e > 2
               && String.sub e 0 2 = "h_"
               && Sys.is_directory (Filename.concat dir e))
        |> List.sort compare
      in
      let totals =
        List.fold_left
          (fun acc entry ->
            let dirs =
              Filename.concat dir entry
              :: List.init
                   (max 0 (replicas - 1))
                   (fun k ->
                     Filename.concat
                       (Filename.concat dir (Printf.sprintf "r%d" (k + 1)))
                       entry)
            in
            let r = Fleet_scrub.scrub_home ~fsync:(not no_fsync) dirs in
            if not r.Fleet_scrub.healthy then
              Printf.printf
                "%s: repaired=%d recreated=%d quarantined=%d torn=%d healed=%d%s\n"
                entry r.Fleet_scrub.repaired_replicas
                r.Fleet_scrub.recreated_replicas r.Fleet_scrub.frames_quarantined
                r.Fleet_scrub.torn_bytes r.Fleet_scrub.records_healed
                (if r.Fleet_scrub.converged then "" else " UNCONVERGED");
            Fleet_scrub.add acc r)
          Fleet_scrub.zero entries
      in
      print_endline (Fleet_scrub.counters_text totals);
      (* the verdict cache is a durable surface under the same contract:
         scrub its replica set too, at cache file names *)
      let cache_unconverged =
        let primary = Filename.concat dir "vcache" in
        if not (Sys.file_exists primary && Sys.is_directory primary) then 0
        else begin
          let dirs =
            primary
            :: List.init
                 (max 0 (replicas - 1))
                 (fun k ->
                   Filename.concat
                     (Filename.concat dir (Printf.sprintf "r%d" (k + 1)))
                     "vcache")
          in
          let r =
            Fleet_scrub.scrub_home ~fsync:(not no_fsync)
              ~files:[ "cache.snapshot"; "cache.journal" ]
              dirs
          in
          Printf.printf
            "vcache: converged=%b repaired=%d recreated=%d quarantined=%d \
             healed=%d patched-frames=%d repair-bytes=%d\n"
            r.Fleet_scrub.converged r.Fleet_scrub.repaired_replicas
            r.Fleet_scrub.recreated_replicas r.Fleet_scrub.frames_quarantined
            r.Fleet_scrub.records_healed r.Fleet_scrub.patched_frames
            r.Fleet_scrub.repair_bytes;
          if r.Fleet_scrub.converged then 0 else 1
        end
      in
      if strict && (totals.Fleet_scrub.unconverged > 0 || cache_unconverged > 0)
      then 1
      else 0
    end
  in
  let dir_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "state-dir" ] ~docv:"DIR" ~doc:"Fleet state root to scrub.")
  in
  let strict_arg =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:"Exit 1 when any home is still unconverged after repair.")
  in
  Cmd.v
    (Cmd.info "scrub"
       ~doc:
         "Anti-entropy pass over an offline fleet root: CRC-scan every replica of \
          every home and of the shared verdict cache, compare record-stream \
          digests, read-repair damaged, stale or missing replicas from the \
          surviving copies at frame granularity, and print per-kind repair \
          counters. Healthy surfaces are untouched, so a second pass reports \
          all-healthy and rewrites nothing")
    Term.(const run $ dir_arg $ fleet_replicas_arg $ strict_arg $ no_fsync_arg)

let fleet_cmd =
  Cmd.group
    (Cmd.info "fleet"
       ~doc:
         "Home-sharded fleet operations: supervisor with health checks, circuit \
          breakers, journal-backed shard recovery and a fleet-shared verdict cache")
    [ fleet_chaos_cmd; fleet_audit_cmd; fleet_scrub_cmd ]

let main =
  let doc = "detect and handle cross-app interference threats in smart homes" in
  Cmd.group
    (Cmd.info "homeguard" ~version:Homeguard_core.Homeguard.version ~doc)
    [
      extract_cmd;
      detect_cmd;
      audit_cmd;
      instrument_cmd;
      simulate_cmd;
      handle_cmd;
      corpus_cmd;
      serve_cmd;
      recover_cmd;
      compact_cmd;
      fleet_cmd;
    ]

let () = exit (Cmd.eval' main)
