(** The [homeguard] command-line tool.

    Subcommands:
    - [extract FILE]: symbolically execute a SmartApp source file and
      print its rules (optionally as the JSON rule file).
    - [detect FILE...]: extract several apps and report pairwise CAI
      threats (offline device-type matching).
    - [audit]: run the corpus-wide audit and print Fig 8 statistics.
    - [instrument FILE]: print the instrumented source (Listing 3).
    - [simulate SCENARIO]: replay a §VIII-A exploitation scenario,
      optionally under runtime mediation ([--enforce]).
    - [handle FILE...]: report threats with their recommended handling
      decisions (§VII).
    - [corpus]: list the bundled corpus. *)

module Rule = Homeguard_rules.Rule
module Extract = Homeguard_symexec.Extract
module Detector = Homeguard_detector.Detector
module Threat = Homeguard_detector.Threat
module Rule_interpreter = Homeguard_frontend.Rule_interpreter
module Threat_interpreter = Homeguard_frontend.Threat_interpreter
module Policy = Homeguard_handling.Policy
module Mediator = Homeguard_handling.Mediator
open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_app path =
  let src = read_file path in
  let name = Filename.remove_extension (Filename.basename path) in
  Extract.extract_source ~name src

(* Shared --jobs option: how many domains the detection engine fans
   candidate pairs out across. 0 selects the hardware parallelism. *)
let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Number of detection domains. 1 (the default) detects \
           sequentially; 0 uses every core. The threat output is \
           identical for any value.")

let resolve_jobs n = if n <= 0 then Homeguard_detector.Schedule.default_jobs () else n

(* Shared --solver-budget option, in search nodes per solve. -1 keeps
   the default budgets, 0 disables budgeting entirely. *)
let budget_arg =
  Arg.(
    value & opt int (-1)
    & info [ "solver-budget" ] ~docv:"NODES"
        ~doc:
          "Per-solve search-node budget. A solve that exhausts it is \
           retried once with an 8x budget and then reported as \
           $(i,undecided) rather than decided. -1 (the default) uses \
           the built-in budgets; 0 removes all budgets.")

let resolve_budget n =
  let module Budget = Homeguard_solver.Budget in
  if n < 0 then Budget.default_spec
  else if n = 0 then Budget.unlimited_spec
  else Budget.spec_of_nodes n

let strict_arg =
  Arg.(
    value & flag
    & info [ "strict" ]
        ~doc:
          "Exit with status 3 if any rule pair was undecided (solver \
           budget exhausted) or failed (detection crashed), instead of \
           completing best-effort.")

let config_with_budget budget =
  { Detector.offline_config with Detector.budget = resolve_budget budget }

let print_audit_health (result : Detector.audit_result) =
  if result.Detector.undecided > 0 then
    Printf.printf "undecided threats (budget exhausted): %d\n" result.Detector.undecided;
  if result.Detector.failures <> [] then begin
    Printf.printf "failed pairs (detection crashed): %d\n"
      (List.length result.Detector.failures);
    List.iter
      (fun (f : Detector.failure) ->
        Printf.printf "  %s: %s\n" f.Detector.pair f.Detector.exn)
      result.Detector.failures
  end

let strict_violation strict (result : Detector.audit_result) =
  strict && (result.Detector.undecided > 0 || result.Detector.failures <> [])

(* -- extract ---------------------------------------------------------------- *)

let extract_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"SmartApp source file")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Print the JSON rule file instead of prose")
  in
  let run file json =
    match load_app file with
    | { Extract.app; diags } ->
      if json then print_endline (Homeguard_rules.Rule_json.to_string app)
      else begin
        Printf.printf "%s: %d rule(s)\n" app.Rule.name (List.length app.Rule.rules);
        print_endline (Rule_interpreter.describe_app app);
        if diags.Extract.unknown_calls <> [] then
          Printf.printf "note: unmodeled APIs encountered: %s\n"
            (String.concat ", " diags.Extract.unknown_calls);
        if diags.Extract.truncated then
          print_endline "warning: path budget exhausted, extraction may be partial"
      end;
      0
    | exception Extract.Extraction_error msg ->
      Printf.eprintf "error: %s\n" msg;
      1
  in
  Cmd.v
    (Cmd.info "extract" ~doc:"Extract automation rules from a SmartApp via symbolic execution")
    Term.(const run $ file $ json)

(* -- detect ----------------------------------------------------------------- *)

let detect_cmd =
  let files =
    Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE..." ~doc:"SmartApp source files")
  in
  let run files jobs budget strict =
    match List.map (fun f -> (load_app f).Extract.app) files with
    | apps ->
      let ctx = Detector.create (config_with_budget budget) in
      let result = Detector.audit_all ~jobs:(resolve_jobs jobs) ctx apps in
      print_endline (Threat_interpreter.describe_all result.Detector.threats);
      print_audit_health result;
      if strict_violation strict result then 3
      else if result.Detector.threats = [] then 0
      else 2
    | exception Extract.Extraction_error msg ->
      Printf.eprintf "error: %s\n" msg;
      1
  in
  Cmd.v
    (Cmd.info "detect" ~doc:"Detect cross-app interference threats among SmartApps")
    Term.(const run $ files $ jobs_arg $ budget_arg $ strict_arg)

(* -- audit ------------------------------------------------------------------ *)

let audit_cmd =
  let run jobs budget strict =
    let open Homeguard_corpus in
    let apps =
      List.map
        (fun (e : App_entry.t) ->
          (Extract.extract_source ~name:e.App_entry.name e.App_entry.source).Extract.app)
        Corpus.audit_apps
    in
    let jobs = resolve_jobs jobs in
    let ctx = Detector.create (config_with_budget budget) in
    let pairs = Detector.candidate_pairs ctx apps in
    let result = Detector.audit_all ~jobs ctx apps in
    let threats = result.Detector.threats in
    Printf.printf "%s\n" (Corpus.stats ());
    Printf.printf "candidate rule pairs after pre-filters: %d (jobs: %d, solver calls: %d)\n"
      (Array.length pairs) jobs ctx.Detector.solver_calls;
    if ctx.Detector.escalations > 0 then
      Printf.printf "budget escalations: %d\n" ctx.Detector.escalations;
    Printf.printf "threat instances: %d\n" (List.length threats);
    List.iter
      (fun cat ->
        Printf.printf "  %-3s %d\n"
          (Threat.category_to_string cat)
          (List.length
             (List.filter (fun (t : Threat.t) -> t.Threat.category = cat) threats)))
      Threat.all_categories;
    print_audit_health result;
    if strict_violation strict result then 3 else 0
  in
  Cmd.v
    (Cmd.info "audit" ~doc:"Audit the bundled corpus pairwise (the paper's §VIII-B run)")
    Term.(const run $ jobs_arg $ budget_arg $ strict_arg)

(* -- instrument -------------------------------------------------------------- *)

let instrument_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"SmartApp source file")
  in
  let http =
    Arg.(value & flag & info [ "http" ] ~doc:"Use HTTP/FCM messaging instead of SMS")
  in
  let run file http =
    let src = read_file file in
    let name = Filename.remove_extension (Filename.basename file) in
    let transport = if http then `Http else `Sms in
    print_endline (Homeguard_config.Instrument.instrument_source ~transport ~app_name:name src);
    0
  in
  Cmd.v
    (Cmd.info "instrument"
       ~doc:"Insert the configuration-collection code (paper Listing 3) into a SmartApp")
    Term.(const run $ file $ http)

(* -- simulate ----------------------------------------------------------------- *)

let simulate_cmd =
  let module Engine = Homeguard_sim.Engine in
  let module Trace = Homeguard_sim.Trace in
  let module Device = Homeguard_st.Device in
  let scenario =
    Arg.(
      required
      & pos 0 (some (enum [ ("race", `Race); ("covert", `Covert); ("disable", `Disable) ])) None
      & info [] ~docv:"SCENARIO" ~doc:"One of: race, covert, disable (the paper's §VIII-A runs)")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Jitter seed") in
  let enforce =
    Arg.(
      value & flag
      & info [ "enforce" ]
          ~doc:
            "Replay under runtime mediation: detect the scenario's \
             threats, compile a reference monitor with the default \
             handling decisions, and enforce it before every command. \
             Exits 4 if any threat witness survives mediation.")
  in
  let corpus_app name =
    let open Homeguard_corpus in
    let e = Option.get (Corpus.find name) in
    (Extract.extract_source ~name:e.App_entry.name e.App_entry.source).Extract.app
  in
  let run scenario seed enforce =
    let tv = Device.make ~label:"TV" ~device_type:"tv" [ "switch" ] in
    let window = Device.make ~label:"Window" ~device_type:"window" [ "switch" ] in
    let tsensor = Device.make ~label:"Thermo" ~device_type:"temp" [ "temperatureMeasurement" ] in
    let weather = Device.make ~label:"Weather" ~device_type:"weather" [ "weatherSensor" ] in
    let voice = Device.make ~label:"Voice" ~device_type:"speaker" [ "musicPlayer" ] in
    let lamp = Device.make ~label:"Floor lamp" ~device_type:"light" [ "switch" ] in
    let motion = Device.make ~label:"Motion" ~device_type:"motion" [ "motionSensor" ] in
    let siren = Device.make ~label:"Alarm" ~device_type:"alarm" [ "alarm" ] in
    let scenario_apps =
      match scenario with
      | `Race -> [ "ComfortTV"; "ColdDefender" ]
      | `Covert -> [ "ComfortTV"; "CatchLiveShow" ]
      | `Disable -> [ "BurglarFinder"; "NightCare" ]
    in
    let mediator =
      if not enforce then None
      else begin
        let apps = List.map corpus_app scenario_apps in
        let ctx = Detector.create Detector.offline_config in
        let result = Detector.audit_all ~jobs:1 ctx apps in
        Some (Mediator.create (Policy.create ()) result.Detector.threats)
      end
    in
    let t = Engine.create ~seed ?mediator () in
    let comfort () =
      Engine.install t (corpus_app "ComfortTV")
        [ ("tv1", Engine.B_device tv); ("tSensor", Engine.B_device tsensor);
          ("threshold1", Engine.B_int 30); ("window1", Engine.B_device window) ]
    in
    (match scenario with
    | `Race ->
      comfort ();
      Engine.install t (corpus_app "ColdDefender")
        [ ("tv2", Engine.B_device tv); ("wSensor", Engine.B_device weather);
          ("window2", Engine.B_device window) ];
      Engine.stimulate t tsensor.Device.id "temperature" "31";
      Engine.stimulate t weather.Device.id "weather" "rainy";
      Engine.stimulate t tv.Device.id "switch" "on";
      Engine.run t ~until_ms:10_000
    | `Covert ->
      comfort ();
      Engine.install t (corpus_app "CatchLiveShow")
        [ ("voicePlayer", Engine.B_device voice); ("tv3", Engine.B_device tv) ];
      Engine.stimulate t tsensor.Device.id "temperature" "31";
      Engine.stimulate t voice.Device.id "status" "playing";
      Engine.run t ~until_ms:10_000
    | `Disable ->
      Engine.install t (corpus_app "BurglarFinder")
        [ ("motion1", Engine.B_device motion); ("floorLamp", Engine.B_device lamp);
          ("alarm1", Engine.B_device siren) ];
      Engine.install t (corpus_app "NightCare") [ ("lamp5", Engine.B_device lamp) ];
      Engine.set_mode t "Night";
      Engine.run t ~until_ms:1_000;
      Engine.stimulate t lamp.Device.id "switch" "on";
      Engine.run t ~until_ms:400_000;
      Engine.stimulate t motion.Device.id "motion" "active";
      Engine.run t ~until_ms:500_000);
    let trace = Engine.trace t in
    print_endline (Trace.to_string trace);
    match mediator with
    | None -> 0
    | Some m ->
      print_newline ();
      print_endline "enforcement log:";
      let log = Mediator.log_to_string m in
      print_endline (if log = "" then "  (empty)" else log);
      (* the witness each scenario exists to exhibit, re-checked under
         mediation *)
      let surviving =
        match scenario with
        | `Race ->
          if
            Trace.flap_count trace "Window" "switch" > 0
            || Trace.opposite_commands_within trace "Window" ~window_ms:10_000
                 ~opposites:[ ("on", "off") ]
          then 1
          else 0
        | `Covert -> if Trace.final_attribute trace "Window" "switch" = Some "on" then 1 else 0
        | `Disable ->
          if
            Trace.final_attribute trace "Floor lamp" "switch" <> Some "on"
            || Trace.final_attribute trace "Alarm" "alarm" = None
          then 1
          else 0
      in
      Printf.printf "surviving threat witnesses: %d\n" surviving;
      if surviving = 0 then 0 else 4
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:
         "Replay one of the paper's exploitation scenarios in the home simulator, \
          optionally under runtime mediation (--enforce)")
    Term.(const run $ scenario $ seed $ enforce)

(* -- handle ------------------------------------------------------------------- *)

let handle_cmd =
  let files =
    Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE..." ~doc:"SmartApp source files")
  in
  let run files jobs budget strict =
    match List.map (fun f -> (load_app f).Extract.app) files with
    | apps ->
      let ctx = Detector.create (config_with_budget budget) in
      let result = Detector.audit_all ~jobs:(resolve_jobs jobs) ctx apps in
      let threats = result.Detector.threats in
      let store = Policy.create () in
      if threats = [] then print_endline "no threats; nothing to handle"
      else begin
        Printf.printf "%d threat(s); recommended handling decisions:\n" (List.length threats);
        List.iter
          (fun (th : Threat.t) ->
            Printf.printf "%s\n    %s\n    -> %s\n" (Policy.threat_id th) th.Threat.detail
              (Policy.describe (Policy.decision_for store th)))
          threats
      end;
      print_audit_health result;
      if strict_violation strict result then 3 else 0
    | exception Extract.Extraction_error msg ->
      Printf.eprintf "error: %s\n" msg;
      1
  in
  Cmd.v
    (Cmd.info "handle"
       ~doc:
         "Report detected threats with their recommended handling decisions (paper §VII); \
          the same defaults are enforced by simulate --enforce")
    Term.(const run $ files $ jobs_arg $ budget_arg $ strict_arg)

(* -- corpus ------------------------------------------------------------------ *)

let corpus_cmd =
  let run () =
    let open Homeguard_corpus in
    Printf.printf "%-34s %-28s %s\n" "name" "category" "rules (ground truth)";
    List.iter
      (fun (e : App_entry.t) ->
        Printf.printf "%-34s %-28s %s\n" e.App_entry.name
          (App_entry.category_to_string e.App_entry.category)
          (if e.App_entry.ground_truth_rules < 0 then "web service"
           else string_of_int e.App_entry.ground_truth_rules))
      Corpus.all;
    0
  in
  Cmd.v (Cmd.info "corpus" ~doc:"List the bundled SmartApp corpus") Term.(const run $ const ())

let main =
  let doc = "detect and handle cross-app interference threats in smart homes" in
  Cmd.group
    (Cmd.info "homeguard" ~version:Homeguard_core.Homeguard.version ~doc)
    [ extract_cmd; detect_cmd; audit_cmd; instrument_cmd; simulate_cmd; handle_cmd; corpus_cmd ]

let () = exit (Cmd.eval' main)
