(** Equivalence-class abstraction of a detector solve (DESIGN.md §14).

    Two homes whose configuration values land in the same class must
    receive the same verdict from the solver; the class key captures
    everything a solve can discriminate on — rule structure, store
    typing, solver flags/budget fingerprint, and for each
    configuration value the predicate cells it occupies (clamped
    distances to every breakpoint constant, pairwise distances between
    configuration values, string-equality patterns). Values the
    abstraction cannot argue about (arithmetic over config variables,
    oversized formulas, non-constant bindings) stay concrete in the
    key: conservative, never unsound. *)

type svalue = I of int | S of string
(** A concrete configuration value, as it appears in the formula. *)

type slot = { s_name : string; s_value : svalue }
(** One abstracted configuration binding: its qualified variable name
    and this home's concrete value. Slot order is canonical (sorted by
    name), so slot indices are stable across class members. *)

type classified = {
  key : string;
      (** full canonical class key — byte-equal keys are the cache's
          equivalence relation *)
  slots : slot array;
      (** the abstracted bindings, in canonical order; empty when
          nothing was abstractable *)
}

val clamp_bound : int
(** Distances beyond [±clamp_bound] collapse to the bound: beyond it,
    integer gaps can no longer change satisfiability of bare
    comparisons in formulas under {!max_atoms} atoms. *)

val max_atoms : int
(** Formulas with more atoms are never abstracted (their chained
    comparisons could shift thresholds past {!clamp_bound}). *)

val classify :
  kind:string ->
  apps:string * string ->
  fingerprint:string ->
  bindings:(string * Homeguard_solver.Term.t) list ->
  store:Homeguard_solver.Store.t ->
  formula:Homeguard_solver.Formula.t ->
  classified
(** Canonicalize one solve into its class key. [bindings] are the
    qualified configuration equalities that may appear in the formula;
    only bindings whose equality atom actually occurs are abstracted,
    the rest render concretely inside the key. *)
