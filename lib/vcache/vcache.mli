(** Fleet-shared persistent verdict cache (DESIGN.md §14, §16).

    One {!store} per fleet, backed by a CRC-framed append-only journal
    ([cache.journal]) plus a compacted snapshot ([cache.snapshot]),
    replicated across [~replicas] roots and fenced by ownership epochs
    — the same durability contract as home journals. Opening runs the
    merged read-repairing recovery over the replica set (every record
    that survived anywhere is replayed; torn or corrupt frames are
    quarantined, never served); every durable append passes a
    {!Homeguard_store.Fence} check under the attaching owner's epoch
    before any byte is framed, so a superseded (zombie) handle can
    never poison the cache; {!scrub} converges the replicas at frame
    granularity. Shards attach a {!handle} each; the handle implements
    the detector's [shared_cache] hook and carries that shard's
    counters.

    Guarantees:
    - a hit returns a verdict byte-identical to what the local solve
      would have produced ([Sat] witnesses are rehydrated against the
      home's concrete configuration values from a template confirmed
      by two independent class members, validated against the concrete
      formula, and recomputed on any doubt);
    - [Unknown] verdicts are never served — they are stored only as
      stale markers with an attempt count and dropped at compaction;
    - concurrent lookups of one class compute it once (single-flight);
    - a failed journal append never fails the audit and never leaves
      the in-memory table inconsistent (write-ahead: memory applies
      only after the append returns). *)

module Detector = Homeguard_detector.Detector
module Solver = Homeguard_solver.Solver

type store
type handle

type counters = {
  mutable hits : int;  (** lookups served from the cache *)
  mutable misses : int;  (** lookups that ran the solver *)
  mutable inserts : int;  (** journaled entry writes (insert or update) *)
  mutable evicts : int;  (** entries dropped by the capacity bound *)
  mutable single_flight_merges : int;
      (** lookups that waited on another in-flight compute of the same
          class instead of solving *)
  mutable rehydrate_fallbacks : int;
      (** hits downgraded to a concrete solve because the witness
          template was unconfirmed, broken, or failed validation *)
  mutable conflicts : int;
      (** computed verdicts that contradicted a cached decisive
          verdict of the same class — 0 unless the abstraction is
          unsound; chaos and the property suite assert on it *)
  mutable stale_unknowns : int;
      (** lookups that found only a cached [Unknown] marker *)
  mutable journal_drops : int;
      (** cache appends dropped because the (fault-injected) journal
          write crashed; the entry is simply not cached *)
  mutable stale_writes : int;
      (** durable cache writes refused at the fence because this
          handle's ownership epoch was superseded — the zombie-shard
          trace; nothing reached disk or memory *)
  mutable pair_hits : int;
      (** whole app-pair audits served from the L1 pair tier *)
  mutable pair_misses : int;  (** app-pair audits planned and detected *)
  mutable pair_inserts : int;  (** pair matrices stored in the L1 tier *)
}

val zero_counters : unit -> counters
val add_counters : counters -> counters -> unit
(** [add_counters into from] accumulates [from] into [into]. *)

(** {2 Store lifecycle} *)

val open_store :
  ?fsync:bool ->
  ?max_entries:int ->
  ?replicas:string list ->
  ?fence_key:string ->
  dir:string ->
  unit ->
  store
(** Open (creating if needed) the cache rooted at [dir] plus the extra
    [~replicas] roots, running the merged read-repairing recovery over
    [cache.snapshot] then [cache.journal] across the whole set: every
    record that survived on at least one replica is replayed, and every
    stale, damaged or missing replica is rewritten with the merged
    stream. The fencing floor re-seeds from the highest epoch stamped
    on any frame, under [~fence_key] (default [dir]). [max_entries]
    (default 65536) bounds the table; overflow evicts oldest-first. *)

val close_store : store -> unit
val compact : store -> unit
(** Fold live decisive entries into the snapshot (on every replica) and
    truncate the journals. [Unknown] markers are dropped here — their
    TTL is the compaction epoch. *)

val scrub : store -> Homeguard_store.Scrub.home_report
(** Anti-entropy pass over the cache replica set at frame granularity:
    park the shared writer, quarantine damage, patch only the damaged
    or missing frames back from the surviving copies, reopen. Converges
    the replicas to one record-stream digest; a second pass is a no-op. *)

val replica_dirs : store -> string list
(** Primary directory first, then the replica roots. *)

val store_epoch : store -> int
(** The latest ownership epoch granted on this store. *)

val entries : store -> int
val pair_entries : store -> int
(** L1 pair-tier matrices currently held (in-memory, same
    [max_entries] bound, FIFO eviction). *)

val replay_damage : store -> int
(** Damaged frames dropped across all opens of this store. *)

val dump : store -> (string * string) list
(** [(class key, canonical entry text)] sorted by key — the
    replay-determinism and no-poisoned-entry invariants compare these
    across independent reopens. *)

val verdict_kind : store -> string -> string option
(** ["sat"], ["unsat"] or ["unknown"] for a class key, if present. *)

(** {2 Shard handles} *)

val attach : store -> owner:string -> handle
(** Attach one shard incarnation. Every attach is an ownership handover
    for [owner]: a strictly larger epoch is granted under the owner's
    fence key, so the previous incarnation's handle (a wedged zombie)
    goes stale and its durable writes are refused at the fence. *)

val owner : handle -> string
val counters : handle -> counters
val store_of : handle -> store

val handle_epoch : handle -> int
(** The ownership epoch this handle writes under. *)

val fence_key : handle -> string
(** The per-owner fence key this handle's epoch was granted under —
    chaos consults {!Homeguard_store.Fence.current} on it to decide
    whether a wedged handle has already been superseded. *)

val probe_write : handle -> [ `Accepted | `Fenced | `Dropped ]
(** One deliberately durable write under the handle's epoch — the chaos
    campaign's stale-writer probe, inserting an [Unsat] entry under the
    reserved key [~chaos/probe/<owner>]. A superseded handle must come
    back [`Fenced] with zero bytes written; [`Dropped] is a
    fault-injected journal crash. *)

val total_counters : store -> counters
(** Sum over every handle ever attached. *)

val hook : handle -> Detector.solve_query -> (unit -> Solver.verdict) -> Solver.verdict
(** The [shared_cache] implementation (L2: abstracted solve classes). *)

val pair_lookup : handle -> Detector.pair_audit -> Detector.pair_matrix option
val pair_store : handle -> Detector.pair_audit -> Detector.pair_matrix -> unit
(** The [pair_cache] implementation (L1): whole app-pair audit results
    under an exact key — both apps' rule digests, concrete
    configuration bindings, same-device relation and the pair
    fingerprint. Exactness is what lets a hit return the stored
    threats verbatim, witness bytes included. In-memory only: across
    restarts the journaled L2 tier re-warms solving instead. *)

val configure : handle -> Detector.config -> Detector.config
(** [configure h c] is [c] with [shared_cache] set to [hook h] and
    [pair_cache] set to the L1 tier. *)

val counters_text : counters -> string
(** One-line rendering for CLI stats. *)
