(** Equivalence-class abstraction of a detector solve — see the .mli
    and DESIGN.md §14 for the soundness argument. *)

module Formula = Homeguard_solver.Formula
module Term = Homeguard_solver.Term
module Store = Homeguard_solver.Store
module Domain = Homeguard_solver.Domain

type svalue = I of int | S of string
type slot = { s_name : string; s_value : svalue }
type classified = { key : string; slots : slot array }

(* Soundness bounds. Every satisfiability-relevant threshold a bare
   comparison chain can derive lies within (number of atoms) of a
   breakpoint constant, so clamping distances at [clamp_bound] is exact
   wherever gap counting can still matter, provided the formula has
   fewer than [max_atoms] atoms and no arithmetic (arithmetic can move
   thresholds arbitrarily far from any constant, so it disables
   abstraction entirely). *)
let clamp_bound = 64
let max_atoms = 48

let clamp d =
  if d > clamp_bound then clamp_bound
  else if d < -clamp_bound then -clamp_bound
  else d

(* -- formula facts -------------------------------------------------------- *)

let term_has_arith = function
  | Term.Int _ | Term.Str _ | Term.Var _ -> false
  | Term.Add _ | Term.Sub _ | Term.Mul _ | Term.Neg _ -> true

let rec formula_has_arith = function
  | Formula.True | Formula.False -> false
  | Formula.Atom (_, a, b) -> term_has_arith a || term_has_arith b
  | Formula.And fs | Formula.Or fs -> List.exists formula_has_arith fs
  | Formula.Not f -> formula_has_arith f

let rec atom_count = function
  | Formula.True | Formula.False -> 0
  | Formula.Atom _ -> 1
  | Formula.And fs | Formula.Or fs ->
    List.fold_left (fun n f -> n + atom_count f) 0 fs
  | Formula.Not f -> atom_count f

(* Is this atom the configuration-equality atom of [slot]? Matched
   occurrences are the ones replaced by a slot reference in the key. *)
let is_slot_atom slots cmp a b =
  if cmp <> Formula.Eq then None
  else
    let matches v value (s : slot) =
      s.s_name = v
      &&
      match (value, s.s_value) with
      | Term.Int n, I c -> n = c
      | Term.Str x, S c -> x = c
      | _ -> false
    in
    let find v value =
      let rec go i =
        if i >= Array.length slots then None
        else if matches v value slots.(i) then Some i
        else go (i + 1)
      in
      go 0
    in
    match (a, b) with
    | Term.Var v, ((Term.Int _ | Term.Str _) as value)
    | ((Term.Int _ | Term.Str _) as value), Term.Var v ->
      find v value
    | _ -> None

(* Breakpoint constants: every integer (resp. string) constant in the
   formula outside abstracted slot atoms, plus the store's domain
   endpoints (and the default integer range) — exactly the thresholds a
   chain of bare comparisons can push a configuration value against. *)
let collect_constants slots store formula =
  let ints = Hashtbl.create 32 and strs = Hashtbl.create 16 in
  let add_int n = Hashtbl.replace ints n () in
  let add_str s = Hashtbl.replace strs s () in
  let rec term = function
    | Term.Int n -> add_int n
    | Term.Str s -> add_str s
    | Term.Var _ -> ()
    | Term.Add (a, b) | Term.Sub (a, b) | Term.Mul (a, b) ->
      term a;
      term b
    | Term.Neg a -> term a
  in
  let rec go = function
    | Formula.True | Formula.False -> ()
    | Formula.Atom (cmp, a, b) -> (
      match is_slot_atom slots cmp a b with
      | Some _ -> ()
      | None ->
        term a;
        term b)
    | Formula.And fs | Formula.Or fs -> List.iter go fs
    | Formula.Not f -> go f
  in
  go formula;
  add_int Store.default_int_lo;
  add_int Store.default_int_hi;
  List.iter
    (fun (_, d) ->
      match d with
      | Domain.Ints _ | Domain.Bits _ ->
        List.iter
          (fun (lo, hi) ->
            add_int lo;
            add_int hi)
          (Domain.to_iset d)
      | Domain.Enums es -> List.iter add_str es)
    (Store.bindings store);
  let int_list = List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) ints []) in
  let str_list = List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) strs []) in
  (int_list, str_list)

(* -- canonical rendering --------------------------------------------------- *)

let render_formula slots f =
  let buf = Buffer.create 256 in
  let rec go = function
    | Formula.True -> Buffer.add_string buf "T"
    | Formula.False -> Buffer.add_string buf "F"
    | Formula.Atom (cmp, a, b) -> (
      match is_slot_atom slots cmp a b with
      | Some i ->
        (* order-normalized: always [var == $slot] *)
        Buffer.add_string buf slots.(i).s_name;
        Buffer.add_string buf "==$";
        Buffer.add_string buf (string_of_int i)
      | None ->
        Buffer.add_string buf (Term.to_string a);
        Buffer.add_char buf ' ';
        Buffer.add_string buf (Formula.cmp_to_string cmp);
        Buffer.add_char buf ' ';
        Buffer.add_string buf (Term.to_string b))
    | Formula.And fs ->
      Buffer.add_string buf "(&";
      List.iter
        (fun f ->
          Buffer.add_char buf ' ';
          go f)
        fs;
      Buffer.add_char buf ')'
    | Formula.Or fs ->
      Buffer.add_string buf "(|";
      List.iter
        (fun f ->
          Buffer.add_char buf ' ';
          go f)
        fs;
      Buffer.add_char buf ')'
    | Formula.Not f ->
      Buffer.add_string buf "!(";
      go f;
      Buffer.add_char buf ')'
  in
  go f;
  Buffer.contents buf

let render_domain d =
  match d with
  | Domain.Ints _ | Domain.Bits _ ->
    (* iset view so the two A/B representations of the same set render
       identically; the solver-mode split lives in the fingerprint *)
    "i"
    ^ String.concat ";"
        (List.map (fun (lo, hi) -> Printf.sprintf "%d..%d" lo hi) (Domain.to_iset d))
  | Domain.Enums es -> "e{" ^ String.concat "," es ^ "}"

let render_store store =
  let bs = List.sort (fun (a, _) (b, _) -> compare a b) (Store.bindings store) in
  String.concat " " (List.map (fun (v, d) -> v ^ ":" ^ render_domain d) bs)

let render_cells slots int_consts str_consts =
  let n = Array.length slots in
  let cell i =
    match slots.(i).s_value with
    | I c ->
      let near = List.map (fun k -> string_of_int (clamp (c - k))) int_consts in
      let pair =
        List.filter_map
          (fun j ->
            match slots.(j).s_value with
            | I c' -> Some (string_of_int (clamp (c - c')))
            | S _ -> None)
          (List.init (n - i - 1) (fun k -> i + 1 + k))
      in
      "i[" ^ String.concat "," near ^ "|" ^ String.concat "," pair ^ "]"
    | S s ->
      let near = List.map (fun k -> if s = k then "1" else "0") str_consts in
      let pair =
        List.filter_map
          (fun j ->
            match slots.(j).s_value with
            | S s' -> Some (if s = s' then "1" else "0")
            | I _ -> None)
          (List.init (n - i - 1) (fun k -> i + 1 + k))
      in
      "s[" ^ String.concat "" near ^ "|" ^ String.concat "" pair ^ "]"
  in
  String.concat " " (List.init n cell)

(* -- classification -------------------------------------------------------- *)

(* Which bindings are abstractable: constant-valued, unique by name,
   occurring in the formula as a configuration-equality atom, in a
   formula small enough (and arithmetic-free) for the cell argument to
   hold. Everything else stays concrete in the key. *)
let abstractable_slots ~bindings ~formula =
  if formula_has_arith formula || atom_count formula > max_atoms then [||]
  else begin
    let candidates =
      List.filter_map
        (fun (v, t) ->
          match t with
          | Term.Int n -> Some { s_name = v; s_value = I n }
          | Term.Str s -> Some { s_name = v; s_value = S s }
          | _ -> None)
        bindings
    in
    (* a name bound twice (even to the same value) is not abstracted:
       slot identity must be unambiguous *)
    let uniq =
      List.filter
        (fun s ->
          List.length (List.filter (fun (v, _) -> v = s.s_name) bindings) = 1)
        candidates
    in
    let sorted = List.sort (fun a b -> compare a.s_name b.s_name) uniq in
    let all = Array.of_list sorted in
    (* keep only slots whose equality atom occurs in the formula: a
       binding that never constrains the solve cannot affect it *)
    let occurs = Array.make (Array.length all) false in
    let rec mark = function
      | Formula.True | Formula.False -> ()
      | Formula.Atom (cmp, a, b) -> (
        match is_slot_atom all cmp a b with
        | Some i -> occurs.(i) <- true
        | None -> ())
      | Formula.And fs | Formula.Or fs -> List.iter mark fs
      | Formula.Not f -> mark f
    in
    mark formula;
    let kept = ref [] in
    for i = Array.length all - 1 downto 0 do
      if occurs.(i) then kept := all.(i) :: !kept
    done;
    Array.of_list !kept
  end

let classify ~kind ~apps ~fingerprint ~bindings ~store ~formula =
  let slots = abstractable_slots ~bindings ~formula in
  let int_consts, str_consts = collect_constants slots store formula in
  let lo, hi = apps in
  let lo, hi = if lo <= hi then (lo, hi) else (hi, lo) in
  let slot_sig =
    String.concat ","
      (Array.to_list
         (Array.map
            (fun s ->
              s.s_name ^ (match s.s_value with I _ -> ":i" | S _ -> ":s"))
            slots))
  in
  let key =
    String.concat "\n"
      [
        "vck1";
        "fp=" ^ fingerprint;
        "kind=" ^ kind;
        "apps=" ^ lo ^ "," ^ hi;
        "store=" ^ render_store store;
        "f=" ^ render_formula slots formula;
        "cfg=" ^ slot_sig;
        "cells=" ^ render_cells slots int_consts str_consts;
      ]
  in
  { key; slots }
