(** Fleet-shared persistent verdict cache: journaled store, witness
    templates, single-flight — see the .mli contract and DESIGN.md §14. *)

module Detector = Homeguard_detector.Detector
module Rule = Homeguard_rules.Rule
module Rule_json = Homeguard_rules.Rule_json
module Term = Homeguard_solver.Term
module Solver = Homeguard_solver.Solver
module Budget = Homeguard_solver.Budget
module Formula = Homeguard_solver.Formula
module Store = Homeguard_solver.Store
module Domain = Homeguard_solver.Domain
module Fault = Homeguard_solver.Fault
module Journal = Homeguard_store.Journal
module Rjournal = Homeguard_store.Rjournal
module Fence = Homeguard_store.Fence
module Scrub = Homeguard_store.Scrub

(* -- entries --------------------------------------------------------------- *)

(* How a Sat witness binding relates to the configuration slots: a
   class-invariant literal, or a clamped offset from slot [j]'s value
   (offset 0 = equality; the only string form). Confirmed templates are
   derived from two independent class members and re-validated against
   the concrete formula on every hit. *)
type wslot = Lit of Domain.value | Cfg of int * int

type tstate =
  | Probe  (** one sample: next hit recomputes to confirm the template *)
  | Confirmed of (string * wslot) list
  | Broken  (** no consistent template: verdicts hit, witnesses recompute *)

type sat_entry = {
  vals : Abstract.svalue array;  (** slot values of the first member *)
  model : (string * Domain.value) list;  (** its concrete witness *)
  mutable template : tstate;
}

type entry =
  | Sat_e of sat_entry
  | Unsat_e
  | Unknown_e of { reason : string; mutable attempts : int }
      (** stale marker, never served as a verdict; [attempts] is the
          escalation count, the TTL is the compaction epoch *)

type counters = {
  mutable hits : int;
  mutable misses : int;
  mutable inserts : int;
  mutable evicts : int;
  mutable single_flight_merges : int;
  mutable rehydrate_fallbacks : int;
  mutable conflicts : int;
  mutable stale_unknowns : int;
  mutable journal_drops : int;
  mutable stale_writes : int;
  mutable pair_hits : int;
  mutable pair_misses : int;
  mutable pair_inserts : int;
}

let zero_counters () =
  {
    hits = 0;
    misses = 0;
    inserts = 0;
    evicts = 0;
    single_flight_merges = 0;
    rehydrate_fallbacks = 0;
    conflicts = 0;
    stale_unknowns = 0;
    journal_drops = 0;
    stale_writes = 0;
    pair_hits = 0;
    pair_misses = 0;
    pair_inserts = 0;
  }

let add_counters into from =
  into.hits <- into.hits + from.hits;
  into.misses <- into.misses + from.misses;
  into.inserts <- into.inserts + from.inserts;
  into.evicts <- into.evicts + from.evicts;
  into.single_flight_merges <- into.single_flight_merges + from.single_flight_merges;
  into.rehydrate_fallbacks <- into.rehydrate_fallbacks + from.rehydrate_fallbacks;
  into.conflicts <- into.conflicts + from.conflicts;
  into.stale_unknowns <- into.stale_unknowns + from.stale_unknowns;
  into.journal_drops <- into.journal_drops + from.journal_drops;
  into.stale_writes <- into.stale_writes + from.stale_writes;
  into.pair_hits <- into.pair_hits + from.pair_hits;
  into.pair_misses <- into.pair_misses + from.pair_misses;
  into.pair_inserts <- into.pair_inserts + from.pair_inserts

let counters_text c =
  Printf.sprintf
    "hits=%d misses=%d inserts=%d evicts=%d single-flight=%d fallbacks=%d \
     conflicts=%d stale-unknowns=%d journal-drops=%d stale-writes=%d pair-hits=%d \
     pair-misses=%d pair-inserts=%d"
    c.hits c.misses c.inserts c.evicts c.single_flight_merges c.rehydrate_fallbacks
    c.conflicts c.stale_unknowns c.journal_drops c.stale_writes c.pair_hits
    c.pair_misses c.pair_inserts

type store = {
  dir : string;
  dirs : string list;  (** primary first, then replica roots *)
  fence_base : string;  (** fence-key namespace for this cache surface *)
  mutable epoch : int;  (** latest ownership epoch granted on this store *)
  fsync : bool;
  max_entries : int;
  mutex : Mutex.t;
  table : (string, entry) Hashtbl.t;
  queue : string Queue.t;  (** insertion order, for oldest-first eviction *)
  inflight : (string, Condition.t) Hashtbl.t;
  pair_table : (string, Detector.pair_matrix) Hashtbl.t;
      (** L1: whole app-pair audit results, exact-keyed. In-memory
          only — threats are served back verbatim within a process;
          across restarts the journaled verdict tier below re-warms
          the solver layer instead *)
  pair_queue : string Queue.t;  (** L1 insertion order, FIFO eviction *)
  digests : (string, Rule.smartapp * string) Hashtbl.t;
      (** app-name → (app, rule-structure digest) memo for L1 keys;
          revalidated by physical identity so a changed catalog entry
          under a reused name re-digests (and so changes every key it
          appears in) *)
  mutable journal : Rjournal.t option;
  mutable handles : handle list;
  mutable damage : int;  (** damaged/undecodable frames dropped on opens *)
}

and handle = {
  h_owner : string;
  h_key : string;  (** per-owner fence key: one zombie never fences its peers *)
  h_epoch : int;  (** the ownership epoch this incarnation writes under *)
  h_counters : counters;
  h_store : store;
}

let cache_files = [ "cache.snapshot"; "cache.journal" ]
let snap_paths st = List.map (fun d -> Filename.concat d "cache.snapshot") st.dirs
let journal_paths st = List.map (fun d -> Filename.concat d "cache.journal") st.dirs

(* Fence keys are per owner (shard slot), not per store: granting shard
   s2's replacement a fresh epoch must fence the wedged s2 zombie while
   leaving every other live shard's handle valid. *)
let owner_key st owner = st.fence_base ^ "#" ^ owner

(* -- serialization --------------------------------------------------------- *)

(* One payload per journal frame: tab-separated escaped fields; nested
   lists join with '\x01', nested pairs with '\x02' — both control
   characters, so [String.escaped] fields can never contain them raw. *)

let enc_sval = function
  | Abstract.I n -> "i" ^ string_of_int n
  | Abstract.S s -> "s" ^ String.escaped s

let dec_sval s =
  if s = "" then raise Exit
  else
    match (s.[0], String.sub s 1 (String.length s - 1)) with
    | 'i', n -> Abstract.I (int_of_string n)
    | 's', x -> Abstract.S (Scanf.unescaped x)
    | _ -> raise Exit

let enc_dval = function
  | Domain.Int n -> "i" ^ string_of_int n
  | Domain.Str s -> "s" ^ String.escaped s

let dec_dval s =
  if s = "" then raise Exit
  else
    match (s.[0], String.sub s 1 (String.length s - 1)) with
    | 'i', n -> Domain.Int (int_of_string n)
    | 's', x -> Domain.Str (Scanf.unescaped x)
    | _ -> raise Exit

let join1 = String.concat "\x01"
let split1 s = if s = "" then [] else String.split_on_char '\x01' s

let enc_model m =
  join1 (List.map (fun (v, x) -> String.escaped v ^ "\x02" ^ enc_dval x) m)

let dec_model s =
  List.map
    (fun item ->
      match String.index_opt item '\x02' with
      | None -> raise Exit
      | Some i ->
        ( Scanf.unescaped (String.sub item 0 i),
          dec_dval (String.sub item (i + 1) (String.length item - i - 1)) ))
    (split1 s)

let enc_wslot = function
  | Lit x -> "l" ^ enc_dval x
  | Cfg (j, d) -> Printf.sprintf "c%d:%d" j d

let dec_wslot s =
  if s = "" then raise Exit
  else
    match s.[0] with
    | 'l' -> Lit (dec_dval (String.sub s 1 (String.length s - 1)))
    | 'c' -> (
      match String.split_on_char ':' (String.sub s 1 (String.length s - 1)) with
      | [ j; d ] -> Cfg (int_of_string j, int_of_string d)
      | _ -> raise Exit)
    | _ -> raise Exit

let enc_template = function
  | Probe -> "P"
  | Broken -> "B"
  | Confirmed t ->
    "C\x01"
    ^ join1 (List.map (fun (v, w) -> String.escaped v ^ "\x02" ^ enc_wslot w) t)

let dec_template s =
  match split1 s with
  | [ "P" ] -> Probe
  | [ "B" ] -> Broken
  | "C" :: items ->
    Confirmed
      (List.map
         (fun item ->
           match String.index_opt item '\x02' with
           | None -> raise Exit
           | Some i ->
             ( Scanf.unescaped (String.sub item 0 i),
               dec_wslot (String.sub item (i + 1) (String.length item - i - 1)) ))
         items)
  | _ -> raise Exit

let enc_entry = function
  | Unsat_e -> "U"
  | Unknown_e u -> Printf.sprintf "K\t%d\t%s" u.attempts (String.escaped u.reason)
  | Sat_e se ->
    Printf.sprintf "S\t%s\t%s\t%s"
      (join1 (List.map enc_sval (Array.to_list se.vals)))
      (enc_model se.model) (enc_template se.template)

let dec_entry = function
  | [ "U" ] -> Unsat_e
  | [ "K"; attempts; reason ] ->
    Unknown_e { reason = Scanf.unescaped reason; attempts = int_of_string attempts }
  | [ "S"; vals; model; template ] ->
    Sat_e
      {
        vals = Array.of_list (List.map dec_sval (split1 vals));
        model = dec_model model;
        template = dec_template template;
      }
  | _ -> raise Exit

let enc_ins key e = "i\t" ^ String.escaped key ^ "\t" ^ enc_entry e
let enc_del key = "d\t" ^ String.escaped key

(* -- table mutation (mutex held) ------------------------------------------ *)

let table_put st key e =
  if not (Hashtbl.mem st.table key) then Queue.push key st.queue;
  Hashtbl.replace st.table key e

let apply_record st payload =
  match String.split_on_char '\t' payload with
  | "i" :: key :: rest -> table_put st (Scanf.unescaped key) (dec_entry rest)
  | [ "d"; key ] -> Hashtbl.remove st.table (Scanf.unescaped key)
  | _ -> raise Exit

(* The fence gate in front of every durable cache byte: an append made
   under a superseded ownership epoch is refused (and counted) before
   anything is framed, exactly as a home-journal append would be. *)
let fence_ok c ~fkey ~fepoch =
  match Fence.check ~key:fkey ~epoch:fepoch with
  | () -> true
  | exception Fence.Stale _ ->
    (match c with Some c -> c.stale_writes <- c.stale_writes + 1 | None -> ());
    false

(* Journal append that never fails the caller: the cache is advisory,
   so a fault-injected crash just drops the write (and, because memory
   applies only afterwards, leaves the table consistent). A mid-sequence
   crash may leave the record on a prefix of the replicas — scrub
   converges the set, and the merged reopen keeps the record. *)
let journal_append_raw st c payload =
  match st.journal with
  | None -> false
  | Some j -> (
    try
      Rjournal.append j payload;
      true
    with Fault.Crashed _ ->
      (match c with Some c -> c.journal_drops <- c.journal_drops + 1 | None -> ());
      false)

let journal_append st c ~fkey ~fepoch payload =
  fence_ok c ~fkey ~fepoch && journal_append_raw st c payload

let evict_overflow st c ~fkey ~fepoch =
  while Hashtbl.length st.table > st.max_entries && not (Queue.is_empty st.queue) do
    let key = Queue.pop st.queue in
    if Hashtbl.mem st.table key && not (Hashtbl.mem st.inflight key) then begin
      ignore (journal_append st c ~fkey ~fepoch (enc_del key));
      Hashtbl.remove st.table key;
      match c with Some c -> c.evicts <- c.evicts + 1 | None -> ()
    end
  done

let put_entry st c ~fkey ~fepoch key e =
  if journal_append st c ~fkey ~fepoch (enc_ins key e) then begin
    (match c with Some c -> c.inserts <- c.inserts + 1 | None -> ());
    table_put st key e;
    evict_overflow st c ~fkey ~fepoch
  end

(* -- snapshot / compaction ------------------------------------------------- *)

let sorted_keys st =
  List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) st.table [])

(* Unknown markers expire here: the snapshot keeps decisive verdicts
   only, so their TTL is one compaction epoch. Compaction is a
   store-level maintenance pass made under the store's current epoch —
   the fence check is vacuous for the live store and exists to keep the
   every-durable-byte-is-fenced contract literal. *)
let compact_locked st =
  if fence_ok None ~fkey:st.fence_base ~fepoch:st.epoch then begin
    Hashtbl.iter
      (fun k e -> match e with Unknown_e _ -> Hashtbl.remove st.table k | _ -> ())
      (Hashtbl.copy st.table);
    let payloads =
      List.map (fun k -> enc_ins k (Hashtbl.find st.table k)) (sorted_keys st)
    in
    Rjournal.write_atomic_all ~fsync:st.fsync ~epoch:st.epoch (snap_paths st) payloads;
    (match st.journal with Some j -> Rjournal.close j | None -> ());
    Rjournal.write_atomic_all ~fsync:st.fsync ~epoch:st.epoch (journal_paths st) [];
    st.journal <-
      Some (Rjournal.open_append ~fsync:st.fsync ~epoch:st.epoch (journal_paths st))
  end

let compact st =
  Mutex.lock st.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock st.mutex) (fun () -> compact_locked st)

(* -- lifecycle ------------------------------------------------------------- *)

let open_store ?(fsync = true) ?(max_entries = 65536) ?(replicas = []) ?fence_key
    ~dir () =
  let dirs = dir :: replicas in
  List.iter Rjournal.mkdirs dirs;
  let st =
    {
      dir;
      dirs;
      fence_base = Option.value fence_key ~default:dir;
      epoch = 0;
      fsync;
      max_entries;
      mutex = Mutex.create ();
      table = Hashtbl.create 1024;
      queue = Queue.create ();
      inflight = Hashtbl.create 8;
      pair_table = Hashtbl.create 1024;
      pair_queue = Queue.create ();
      digests = Hashtbl.create 64;
      journal = None;
      handles = [];
      damage = 0;
    }
  in
  (* merged, read-repairing recovery over the replica set: every record
     that survived on at least one replica is replayed, every stale,
     damaged or missing replica is rewritten with the merged stream *)
  let undecodable = ref 0 in
  let replay name =
    let rec_ = Rjournal.recover ~fsync (List.map (fun d -> Filename.concat d name) dirs) in
    st.damage <-
      st.damage + rec_.Rjournal.quarantined
      + List.length
          (List.filter
             (fun (r : Rjournal.replica_report) -> r.Rjournal.torn_bytes > 0)
             rec_.Rjournal.replicas);
    List.iter
      (fun payload ->
        try apply_record st payload
        with _ ->
          incr undecodable;
          st.damage <- st.damage + 1)
      rec_.Rjournal.recovered;
    rec_.Rjournal.max_epoch
  in
  let snap_epoch = replay "cache.snapshot" in
  let jour_epoch = replay "cache.journal" in
  (* seed the fencing floor from the frames, as home recovery does:
     grants made on this store resume above anything ever written *)
  st.epoch <- max snap_epoch jour_epoch;
  ignore (Fence.acquire st.fence_base st.epoch);
  evict_overflow st None ~fkey:st.fence_base ~fepoch:st.epoch;
  if !undecodable > 0 then
    (* a frame that decodes to no entry can never be served: drop it
       durably by folding the decoded table into a fresh snapshot *)
    compact_locked st
  else
    st.journal <-
      Some (Rjournal.open_append ~fsync ~epoch:st.epoch (journal_paths st));
  st

let close_store st =
  Mutex.lock st.mutex;
  (match st.journal with Some j -> Rjournal.close j | None -> ());
  st.journal <- None;
  Mutex.unlock st.mutex

(** Anti-entropy pass over the cache's replica set, frame-level like any
    other durable surface: the shared writer is parked, the replicas are
    converged (damage quarantined, lost frames patched back from the
    surviving copies), and the writer reopens at the same epoch. The
    in-memory table is not reloaded — scrub only restores records that
    were already appended, so replay on the next open subsumes it. *)
let scrub st =
  Mutex.lock st.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock st.mutex)
    (fun () ->
      (match st.journal with Some j -> Rjournal.close j | None -> ());
      st.journal <- None;
      let report = Scrub.scrub_home ~fsync:st.fsync ~files:cache_files st.dirs in
      st.journal <-
        Some (Rjournal.open_append ~fsync:st.fsync ~epoch:st.epoch (journal_paths st));
      report)

let entries st =
  Mutex.lock st.mutex;
  let n = Hashtbl.length st.table in
  Mutex.unlock st.mutex;
  n

let replay_damage st = st.damage

let dump st =
  Mutex.lock st.mutex;
  let out = List.map (fun k -> (k, enc_entry (Hashtbl.find st.table k))) (sorted_keys st) in
  Mutex.unlock st.mutex;
  out

let verdict_kind st key =
  Mutex.lock st.mutex;
  let k =
    match Hashtbl.find_opt st.table key with
    | Some (Sat_e _) -> Some "sat"
    | Some Unsat_e -> Some "unsat"
    | Some (Unknown_e _) -> Some "unknown"
    | None -> None
  in
  Mutex.unlock st.mutex;
  k

(* -- handles --------------------------------------------------------------- *)

(* Every attach is an ownership handover for that owner: a strictly
   larger epoch is granted under the owner's fence key, so the previous
   incarnation's handle (a wedged zombie shard, say) goes stale the
   moment its replacement attaches — its appends raise at the fence and
   never reach the disk. The shared writer reopens at the new epoch so
   later frames carry the grant. *)
let attach st ~owner =
  Mutex.lock st.mutex;
  st.epoch <- st.epoch + 1;
  ignore (Fence.acquire st.fence_base st.epoch);
  let fkey = owner_key st owner in
  let fepoch = Fence.acquire fkey st.epoch in
  (match st.journal with Some j -> Rjournal.close j | None -> ());
  st.journal <-
    Some (Rjournal.open_append ~fsync:st.fsync ~epoch:st.epoch (journal_paths st));
  let h =
    {
      h_owner = owner;
      h_key = fkey;
      h_epoch = fepoch;
      h_counters = zero_counters ();
      h_store = st;
    }
  in
  st.handles <- h :: st.handles;
  Mutex.unlock st.mutex;
  h

let owner h = h.h_owner
let counters h = h.h_counters
let store_of h = h.h_store
let handle_epoch h = h.h_epoch
let fence_key h = h.h_key
let store_epoch st = st.epoch
let replica_dirs st = st.dirs

(** One deliberately durable write under the handle's epoch — the chaos
    campaign's stale-writer probe. A fenced (zombie) handle must come
    back [`Fenced] with zero bytes written; [`Accepted] from a stale
    handle is the reintroduced split-brain bug the campaign invariants
    exist to catch. The reserved [~chaos/] key space never collides with
    abstraction keys and is asserted absent from every warm reopen. *)
let probe_write h =
  let st = h.h_store in
  Mutex.lock st.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock st.mutex)
    (fun () ->
      let key = "~chaos/probe/" ^ h.h_owner in
      if not (fence_ok (Some h.h_counters) ~fkey:h.h_key ~fepoch:h.h_epoch) then
        `Fenced
      else if journal_append_raw st (Some h.h_counters) (enc_ins key Unsat_e) then begin
        table_put st key Unsat_e;
        `Accepted
      end
      else `Dropped)

let total_counters st =
  let acc = zero_counters () in
  Mutex.lock st.mutex;
  List.iter (fun h -> add_counters acc h.h_counters) st.handles;
  Mutex.unlock st.mutex;
  acc

(* -- witness templates ----------------------------------------------------- *)

let slot_values (cls : Abstract.classified) =
  Array.map (fun (s : Abstract.slot) -> s.Abstract.s_value) cls.Abstract.slots

let rehydrate cur tmpl =
  try
    Some
      (List.map
         (fun (v, w) ->
           ( v,
             match w with
             | Lit x -> x
             | Cfg (j, d) ->
               if j < 0 || j >= Array.length cur then raise Exit
               else (
                 match cur.(j) with
                 | Abstract.I n -> Domain.Int (n + d)
                 | Abstract.S s -> if d = 0 then Domain.Str s else raise Exit) ))
         tmpl)
  with Exit -> None

(* Template consistent with two independent class members: a binding is
   a literal when both witnesses agree, otherwise an offset from the
   first slot explaining both. Anything else marks the class
   non-templatable — its verdicts still hit, its witnesses recompute. *)
let derive_template vals0 model0 vals1 model1 =
  let n = Array.length vals0 in
  if Array.length vals1 <> n || List.length model0 <> List.length model1 then Broken
  else
    try
      Confirmed
        (List.map2
           (fun (v0, x0) (v1, x1) ->
             if v0 <> v1 then raise Exit;
             if x0 = x1 then (v0, Lit x0)
             else
               let rec find j =
                 if j >= n then raise Exit
                 else
                   match (x0, x1, vals0.(j), vals1.(j)) with
                   | Domain.Int a0, Domain.Int a1, Abstract.I c0, Abstract.I c1
                     when a0 - c0 = a1 - c1 && abs (a0 - c0) <= Abstract.clamp_bound ->
                     (v0, Cfg (j, a0 - c0))
                   | Domain.Str s0, Domain.Str s1, Abstract.S t0, Abstract.S t1
                     when s0 = t0 && s1 = t1 ->
                     (v0, Cfg (j, 0))
                   | _ -> find (j + 1)
               in
               find 0)
           model0 model1)
    with Exit | Invalid_argument _ -> Broken

(* A rehydrated witness is served only if it provably satisfies the
   concrete formula: every binding in-domain, and the formula true
   under the model extended to a total assignment (extension preserves
   the satisfied conjunct, whose variables the model binds). *)
let validate qstore formula model =
  try
    List.for_all
      (fun (v, x) ->
        match Store.find_opt v qstore with
        | None -> true
        | Some d -> (
          match x with
          | Domain.Int n -> Domain.mem_int n d
          | Domain.Str s -> Domain.mem_str s d))
      model
    &&
    let inferred = Store.infer qstore formula in
    let tbl = Hashtbl.create 16 in
    List.iter (fun (v, x) -> Hashtbl.replace tbl v x) model;
    let env v =
      match Hashtbl.find_opt tbl v with
      | Some x -> x
      | None -> (
        match Store.find_opt v inferred with
        | Some d -> ( match Domain.choose d with Some x -> x | None -> raise Not_found)
        | None -> raise Not_found)
    in
    Formula.eval env formula
  with _ -> false

(* -- lookup ---------------------------------------------------------------- *)

let wait_inflight st c key =
  let merged = ref false in
  let rec go () =
    match Hashtbl.find_opt st.inflight key with
    | None -> ()
    | Some cond ->
      if not !merged then begin
        merged := true;
        c.single_flight_merges <- c.single_flight_merges + 1
      end;
      Condition.wait cond st.mutex;
      go ()
  in
  go ()

(* Run [compute] with [key] marked in-flight (mutex held on entry,
   released during the solve, released on return); [finish] applies the
   table/journal effects under the re-acquired lock. *)
let run_compute st key compute finish =
  let cond = Condition.create () in
  Hashtbl.replace st.inflight key cond;
  Mutex.unlock st.mutex;
  let result =
    try Ok (compute ()) with e -> Error (e, Printexc.get_raw_backtrace ())
  in
  Mutex.lock st.mutex;
  Hashtbl.remove st.inflight key;
  Condition.broadcast cond;
  (match result with
  | Ok v -> (
    try finish v
    with e ->
      Mutex.unlock st.mutex;
      raise e)
  | Error _ -> ());
  Mutex.unlock st.mutex;
  match result with
  | Ok v -> v
  | Error (e, bt) -> Printexc.raise_with_backtrace e bt

let entry_of_verdict cur ~unknown_attempts = function
  | Budget.Sat m -> Sat_e { vals = cur; model = m; template = Probe }
  | Budget.Unsat -> Unsat_e
  | Budget.Unknown r ->
    Unknown_e { reason = Budget.reason_to_string r; attempts = unknown_attempts }

let verdict_agrees entry v =
  match (entry, v) with
  | Sat_e _, Budget.Sat _ | Unsat_e, Budget.Unsat -> true
  | _, Budget.Unknown _ -> true (* a tripped budget contradicts nothing *)
  | _ -> false

let lookup_or_compute h (cls : Abstract.classified) ~qstore ~formula compute =
  let st = h.h_store and c = h.h_counters in
  let put_entry st c key e = put_entry st c ~fkey:h.h_key ~fepoch:h.h_epoch key e in
  let key = cls.Abstract.key in
  let cur = slot_values cls in
  Mutex.lock st.mutex;
  wait_inflight st c key;
  let serve_hit v =
    c.hits <- c.hits + 1;
    Mutex.unlock st.mutex;
    v
  in
  let compute_recording ?(unknown_attempts = 1) ?prev () =
    c.misses <- c.misses + 1;
    run_compute st key compute (fun v ->
        (match prev with
        | Some e when not (verdict_agrees e v) ->
          (* a decisive cached verdict contradicted by a fresh solve:
             the abstraction failed — surface loudly, trust the solve *)
          c.conflicts <- c.conflicts + 1
        | _ -> ());
        match v with
        | Budget.Unknown _ when (match prev with Some (Sat_e _ | Unsat_e) -> true | _ -> false)
          ->
          (* never downgrade a decisive entry to a stale marker *)
          ()
        | v -> put_entry st (Some c) key (entry_of_verdict cur ~unknown_attempts v))
  in
  match Hashtbl.find_opt st.table key with
  | Some Unsat_e -> serve_hit Budget.Unsat
  | Some (Sat_e se) when se.vals = cur -> serve_hit (Budget.Sat se.model)
  | Some (Sat_e se) -> (
    match se.template with
    | Confirmed tmpl -> (
      match rehydrate cur tmpl with
      | Some model when validate qstore formula model -> serve_hit (Budget.Sat model)
      | _ ->
        c.rehydrate_fallbacks <- c.rehydrate_fallbacks + 1;
        c.misses <- c.misses + 1;
        run_compute st key compute (fun v ->
            if verdict_agrees (Sat_e se) v then se.template <- Broken
            else begin
              c.conflicts <- c.conflicts + 1;
              put_entry st (Some c) key (entry_of_verdict cur ~unknown_attempts:1 v)
            end))
    | Probe ->
      (* second class member: compute concretely and use the pair of
         witnesses to confirm (or refute) a rehydration template *)
      c.misses <- c.misses + 1;
      run_compute st key compute (fun v ->
          match v with
          | Budget.Sat m ->
            se.template <- derive_template se.vals se.model cur m;
            put_entry st (Some c) key (Sat_e se)
          | Budget.Unknown _ -> ()
          | Budget.Unsat ->
            c.conflicts <- c.conflicts + 1;
            put_entry st (Some c) key Unsat_e)
    | Broken ->
      c.rehydrate_fallbacks <- c.rehydrate_fallbacks + 1;
      compute_recording ~prev:(Sat_e se) ())
  | Some (Unknown_e u) ->
    c.stale_unknowns <- c.stale_unknowns + 1;
    compute_recording ~unknown_attempts:(u.attempts + 1) ~prev:(Unknown_e u) ()
  | None -> compute_recording ()

(* -- pair tier (L1) --------------------------------------------------------- *)

(* Rule-structure digest of an app, memoized per store. Physical
   identity gates the memo: shards share one extracted app value per
   catalog entry, so steady state is one JSON render per app per
   process, while an updated catalog entry (new value, same name)
   re-digests and thereby invalidates every key it appears in. *)
let app_digest st (app : Rule.smartapp) =
  match Hashtbl.find_opt st.digests app.Rule.name with
  | Some (a, d) when a == app -> d
  | _ ->
    let d = Digest.to_hex (Digest.string (Rule_json.to_string app)) in
    Hashtbl.replace st.digests app.Rule.name (app, d);
    d

(* L1 keys are exact (no cell abstraction): the pair in install order —
   detection is orientation-sensitive — with each app's rule digest,
   its concrete configuration bindings and the same-device relation.
   Exactness is what lets hits return stored threats verbatim, witness
   bytes included. *)
let pair_key st (pa : Detector.pair_audit) =
  let a, b = pa.Detector.pa_apps in
  let ba, bb = pa.Detector.pa_bindings in
  let bindings bs =
    String.concat ";"
      (List.map
         (fun (v, t) -> v ^ "=" ^ Term.to_string t)
         (List.sort (fun (x, _) (y, _) -> compare x y) bs))
  in
  let unify =
    String.concat ";" (List.map (fun (v1, v2) -> v1 ^ "~" ^ v2) pa.Detector.pa_unify)
  in
  String.concat "\n"
    [
      "vcp1";
      pa.Detector.pa_fingerprint;
      a.Rule.name ^ ":" ^ app_digest st a;
      bindings ba;
      b.Rule.name ^ ":" ^ app_digest st b;
      bindings bb;
      unify;
    ]

let pair_lookup h pa =
  let st = h.h_store in
  Mutex.lock st.mutex;
  let r =
    let key = pair_key st pa in
    Hashtbl.find_opt st.pair_table key
  in
  (match r with
  | Some _ -> h.h_counters.pair_hits <- h.h_counters.pair_hits + 1
  | None -> h.h_counters.pair_misses <- h.h_counters.pair_misses + 1);
  Mutex.unlock st.mutex;
  r

let pair_store h pa m =
  let st = h.h_store in
  Mutex.lock st.mutex;
  let key = pair_key st pa in
  if not (Hashtbl.mem st.pair_table key) then begin
    Hashtbl.replace st.pair_table key m;
    Queue.push key st.pair_queue;
    h.h_counters.pair_inserts <- h.h_counters.pair_inserts + 1;
    while Hashtbl.length st.pair_table > st.max_entries do
      let oldest = Queue.pop st.pair_queue in
      Hashtbl.remove st.pair_table oldest
    done
  end;
  Mutex.unlock st.mutex

let pair_entries st =
  Mutex.lock st.mutex;
  let n = Hashtbl.length st.pair_table in
  Mutex.unlock st.mutex;
  n

(* -- detector hook --------------------------------------------------------- *)

let hook h (q : Detector.solve_query) compute =
  let cls =
    Abstract.classify ~kind:q.Detector.q_kind ~apps:q.Detector.q_apps
      ~fingerprint:q.Detector.q_fingerprint ~bindings:q.Detector.q_bindings
      ~store:q.Detector.q_store ~formula:q.Detector.q_formula
  in
  lookup_or_compute h cls ~qstore:q.Detector.q_store ~formula:q.Detector.q_formula compute

let configure h (c : Detector.config) =
  {
    c with
    Detector.shared_cache = Some (hook h);
    Detector.pair_cache =
      Some { Detector.pair_lookup = pair_lookup h; Detector.pair_store = pair_store h };
  }
