(** The discrete-event smart-home simulation engine.

    Substitutes for the paper's SmartThings testbed (§VIII-A/B): devices
    hold attribute state, the environment evolves under actuator
    influences, rules compiled from extracted {!Homeguard_rules.Rule}
    values subscribe to events and issue (possibly delayed) commands, and
    everything lands in a {!Trace}. Same-time command interleavings are
    perturbed by a seeded jitter so actuator races exhibit their
    nondeterministic outcomes across seeds. *)

module Rule = Homeguard_rules.Rule
module Term = Homeguard_solver.Term
module Formula = Homeguard_solver.Formula
module Device = Homeguard_st.Device
module Capability = Homeguard_st.Capability
module Location = Homeguard_st.Location
module Env = Homeguard_st.Env_feature
module Effects = Homeguard_detector.Effects
module Mediator = Homeguard_handling.Mediator

type binding = B_device of Device.t | B_int of int | B_str of string

type installed_app = { app : Rule.smartapp; bindings : (string * binding) list }

type device_state = {
  device : Device.t;
  mutable attrs : (string * string) list;  (** attribute -> rendered value *)
}

(** Causal provenance: the (app name, rule id) hops whose executions led
    to an event or command, oldest first, capped so pathological loops
    cannot grow it without bound. *)
type provenance = (string * string) list

type pending =
  | Deliver of
      { source : string option; attribute : string; value : string; prov : provenance }
      (** [source = None] means a location event *)
  | Execute of
      { iapp : installed_app; rule : Rule.t; action : Rule.action; prov : provenance;
        deferrals : int }
  | Sample  (** periodic environment sampling *)

type t = {
  devices : (string, device_state) Hashtbl.t;  (** keyed by device id *)
  env : Env_model.t;
  location : Location.t;
  queue : pending Event_queue.t;
  mutable now : int;
  mutable trace_rev : Trace.entry list;
  mutable apps : installed_app list;
  mutable rng : int;
  command_latency_ms : int;
  jitter_ms : int;
  sample_interval_ms : int;
  mutable mediator : Mediator.t option;
      (** reference monitor consulted before each Execute dispatch *)
  feature_prov : (Env.t, provenance) Hashtbl.t;
      (** provenance of the rule whose actuation last drove each
          environment feature, so env-mediated trigger chains survive
          the physical hop *)
  influence_feats : (string, Env.t list) Hashtbl.t;
      (** device id -> features it last influenced (for clear paths) *)
  mutable sample_scheduled : bool;  (** the periodic Sample chain is live *)
}

let create ?(seed = 1) ?(command_latency_ms = 40) ?(jitter_ms = 150)
    ?(sample_interval_ms = 30_000) ?mediator () =
  {
    devices = Hashtbl.create 16;
    env = Env_model.create ();
    location = Location.create ();
    queue = Event_queue.create ();
    now = 0;
    trace_rev = [];
    apps = [];
    rng = (seed * 2_654_435_761) land 0x3FFFFFFF;
    command_latency_ms;
    jitter_ms;
    sample_interval_ms;
    mediator;
    feature_prov = Hashtbl.create 8;
    influence_feats = Hashtbl.create 8;
    sample_scheduled = false;
  }

let set_mediator t m = t.mediator <- Some m

(* Keep the most recent hops: old hops stop mattering once a chain is
   this deep, and the cap keeps tight loops from accumulating state. *)
let max_prov_hops = 32

let cap_prov prov =
  let rec drop k l = if k <= 0 then l else match l with [] -> [] | _ :: tl -> drop (k - 1) tl in
  let n = List.length prov in
  if n <= max_prov_hops then prov else drop (n - max_prov_hops) prov

let next_random t bound =
  t.rng <- ((t.rng * 1_103_515_245) + 12_345) land 0x3FFFFFFF;
  if bound <= 0 then 0 else t.rng mod bound

let log t entry = t.trace_rev <- entry :: t.trace_rev

let trace t = List.rev t.trace_rev

(* -- devices --------------------------------------------------------------- *)

(* Devices start in their quiescent state. *)
let preferred_defaults =
  [ "off"; "closed"; "locked"; "inactive"; "not present"; "clear"; "dry"; "stopped"; "idle"; "unmuted"; "auto" ]

let default_attr_value = function
  | Capability.Enum values -> (
    match List.find_opt (fun v -> List.mem v preferred_defaults) values with
    | Some v -> v
    | None -> ( match values with v :: _ -> v | [] -> ""))
  | Capability.Numeric (lo, hi) -> string_of_int ((lo + hi) / 2)

(** Register a device; attributes start at capability defaults. *)
let add_device t device =
  let attrs =
    List.concat_map
      (fun cap_name ->
        match Capability.find cap_name with
        | Some cap ->
          List.map
            (fun a -> (a.Capability.attr_name, default_attr_value a.Capability.domain))
            cap.Capability.attributes
        | None -> [])
      device.Device.capabilities
  in
  Hashtbl.replace t.devices device.Device.id { device; attrs }

let device_state t id = Hashtbl.find_opt t.devices id

let set_attribute t ?(prov = []) id attribute value =
  match device_state t id with
  | None -> ()
  | Some ds ->
    let current = List.assoc_opt attribute ds.attrs in
    if current <> Some value then begin
      ds.attrs <- (attribute, value) :: List.remove_assoc attribute ds.attrs;
      log t (Trace.Attr_change { at = t.now; device = ds.device.Device.label; attribute; value });
      Event_queue.push t.queue (t.now + 10)
        (Deliver { source = Some id; attribute; value; prov })
    end

(** Externally inject a sensor reading / state change (test stimulus).
    External stimuli carry no rule provenance. *)
let stimulate t id attribute value = set_attribute t id attribute value

let set_mode ?(prov = []) t mode =
  if t.location.Location.current_mode <> mode then begin
    Location.set_mode t.location mode;
    log t (Trace.Mode_change { at = t.now; mode });
    Event_queue.push t.queue (t.now + 10)
      (Deliver { source = None; attribute = "mode"; value = mode; prov })
  end

(* -- app installation ------------------------------------------------------ *)

let install t app bindings =
  List.iter (fun (_, b) -> match b with B_device d -> if device_state t d.Device.id = None then add_device t d | _ -> ()) bindings;
  let iapp = { app; bindings } in
  t.apps <- t.apps @ [ iapp ];
  (* prime scheduled rules *)
  List.iter
    (fun (rule : Rule.t) ->
      match rule.Rule.trigger with
      | Rule.Scheduled { at_minutes; period_seconds } ->
        let first =
          match (at_minutes, period_seconds) with
          | Some m, _ -> m * 60_000
          | None, Some p -> p * 1000
          | None, None -> 60_000
        in
        List.iter
          (fun action ->
            Event_queue.push t.queue first
              (Execute { iapp; rule; action; prov = []; deferrals = 0 }))
          rule.Rule.actions
      | Rule.Event _ -> ())
    app.Rule.rules

let device_of_var iapp var =
  match List.assoc_opt var iapp.bindings with
  | Some (B_device d) -> Some d
  | _ -> None

(* -- concrete formula evaluation ------------------------------------------ *)

(* Value of a qualified variable in the current home state; [data] maps
   path-local names to their defining terms. *)
let rec var_value t iapp data var =
  match List.assoc_opt var data with
  | Some term -> term_value t iapp data term
  | None -> (
    if var = "location.mode" then Some (`S t.location.Location.current_mode)
    else if var = "time.now" then Some (`I (t.now / 60_000 mod 1440))
    else
      match String.rindex_opt var '.' with
      | Some i -> (
        let base = String.sub var 0 i in
        let attr = String.sub var (i + 1) (String.length var - i - 1) in
        match device_of_var iapp base with
        | Some d -> (
          match device_state t d.Device.id with
          | Some ds -> (
            match List.assoc_opt attr ds.attrs with
            | Some v -> (
              match int_of_string_opt v with Some n -> Some (`I n) | None -> Some (`S v))
            | None -> None)
          | None -> None)
        | None -> None)
      | None -> (
        match List.assoc_opt var iapp.bindings with
        | Some (B_int n) -> Some (`I n)
        | Some (B_str s) -> Some (`S s)
        | Some (B_device _) | None -> None))

and term_value t iapp data = function
  | Term.Int n -> Some (`I n)
  | Term.Str s -> Some (`S s)
  | Term.Var v -> var_value t iapp data v
  | Term.Add (a, b) -> arith t iapp data ( + ) a b
  | Term.Sub (a, b) -> arith t iapp data ( - ) a b
  | Term.Mul (a, b) -> arith t iapp data ( * ) a b
  | Term.Neg a -> (
    match term_value t iapp data a with Some (`I n) -> Some (`I (-n)) | _ -> None)

and arith t iapp data op a b =
  match (term_value t iapp data a, term_value t iapp data b) with
  | Some (`I x), Some (`I y) -> Some (`I (op x y))
  | _ -> None

(* Optimistic evaluation: atoms over unresolvable data (opaque symbols)
   hold, so controlled scenarios drive the rules they intend to. *)
let rec holds t iapp data = function
  | Formula.True -> true
  | Formula.False -> false
  | Formula.And fs -> List.for_all (holds t iapp data) fs
  | Formula.Or fs -> List.exists (holds t iapp data) fs
  | Formula.Not f -> not (holds t iapp data f)
  | Formula.Atom (cmp, a, b) -> (
    match (term_value t iapp data a, term_value t iapp data b) with
    | Some (`I x), Some (`I y) -> (
      match cmp with
      | Formula.Eq -> x = y
      | Formula.Neq -> x <> y
      | Formula.Lt -> x < y
      | Formula.Le -> x <= y
      | Formula.Gt -> x > y
      | Formula.Ge -> x >= y)
    | Some (`S x), Some (`S y) -> (
      match cmp with
      | Formula.Eq -> x = y
      | Formula.Neq -> x <> y
      | Formula.Lt | Formula.Le | Formula.Gt | Formula.Ge -> false)
    | Some (`I _), Some (`S _) | Some (`S _), Some (`I _) -> cmp = Formula.Neq
    | _ -> true)

(* -- rule firing ------------------------------------------------------------ *)

let trigger_matches t iapp (rule : Rule.t) ~source ~attribute ~value =
  match rule.Rule.trigger with
  | Rule.Scheduled _ -> false
  | Rule.Event { subject; attribute = sub_attr; constraint_ } ->
    sub_attr = attribute
    && (match (subject, source) with
       | Rule.Device var, Some id -> (
         match device_of_var iapp var with Some d -> d.Device.id = id | None -> false)
       | Rule.Location, None -> true
       | _ -> false)
    &&
    (* trigger constraint over the event value *)
    let subject_var =
      match subject with
      | Rule.Device var -> var ^ "." ^ attribute
      | Rule.Location -> "location." ^ attribute
      | Rule.App_touch -> "app.touch"
    in
    let data =
      (subject_var, match int_of_string_opt value with
       | Some n -> Term.Int n
       | None -> Term.Str value)
      :: rule.Rule.condition.Rule.data
    in
    holds t iapp data constraint_

let fire_rule t prov iapp (rule : Rule.t) =
  List.iter
    (fun (action : Rule.action) ->
      let delay =
        (action.Rule.when_ * 1000) + t.command_latency_ms + next_random t t.jitter_ms
      in
      Event_queue.push t.queue (t.now + delay)
        (Execute { iapp; rule; action; prov; deferrals = 0 }))
    rule.Rule.actions

let deliver t prov ~source ~attribute ~value =
  log t
    (Trace.Event_fired
       {
         at = t.now;
         source =
           (match source with
           | Some id -> (
             match device_state t id with
             | Some ds -> ds.device.Device.label
             | None -> id)
           | None -> "location");
         attribute;
         value;
       });
  List.iter
    (fun iapp ->
      List.iter
        (fun rule ->
          if trigger_matches t iapp rule ~source ~attribute ~value then
            if holds t iapp rule.Rule.condition.Rule.data rule.Rule.condition.Rule.predicate
            then fire_rule t prov iapp rule)
        iapp.app.Rule.rules)
    t.apps

(* Apply an actuator command: update the written attribute, adjust
   environment influences per the goal-effect map. [prov] is the causal
   chain that led here; the write provenance appends this rule. *)
let execute t prov iapp (rule : Rule.t) (action : Rule.action) =
  let wprov = cap_prov (prov @ [ (iapp.app.Rule.name, rule.Rule.rule_id) ]) in
  match action.Rule.target with
  | Rule.Act_location_mode -> (
    match action.Rule.params with
    | Term.Str mode :: _ ->
      log t
        (Trace.Command
           {
             at = t.now;
             app = iapp.app.Rule.name;
             rule = rule.Rule.rule_id;
             device = "location";
             command = "setLocationMode(" ^ mode ^ ")";
           });
      set_mode ~prov:wprov t mode
    | _ -> ())
  | Rule.Act_messaging | Rule.Act_http | Rule.Act_hub ->
    log t
      (Trace.Command
         {
           at = t.now;
           app = iapp.app.Rule.name;
           rule = rule.Rule.rule_id;
           device = Rule.target_to_string action.Rule.target;
           command = action.Rule.command;
         })
  | Rule.Act_device var -> (
    match device_of_var iapp var with
    | None -> ()
    | Some d ->
      log t
        (Trace.Command
           {
             at = t.now;
             app = iapp.app.Rule.name;
             rule = rule.Rule.rule_id;
             device = d.Device.label;
             command = action.Rule.command;
           });
      (* attribute write via the capability registry *)
      List.iter
        (fun (w : Homeguard_detector.Channels.attr_write) ->
          match w.Homeguard_detector.Channels.w_value with
          | Some (Term.Str v) ->
            set_attribute t ~prov:wprov d.Device.id w.Homeguard_detector.Channels.w_attr v
          | Some (Term.Int n) ->
            set_attribute t ~prov:wprov d.Device.id w.Homeguard_detector.Channels.w_attr
              (string_of_int n)
          | Some term -> (
            match term_value t iapp rule.Rule.condition.Rule.data term with
            | Some (`I n) ->
              set_attribute t ~prov:wprov d.Device.id w.Homeguard_detector.Channels.w_attr
                (string_of_int n)
            | Some (`S s) ->
              set_attribute t ~prov:wprov d.Device.id w.Homeguard_detector.Channels.w_attr s
            | None -> ())
          | None -> ())
        (Homeguard_detector.Channels.attribute_writes iapp.app action);
      (* environment influence; the driving rule's provenance sticks to
         the affected features so chains survive the physical hop *)
      let effects = Effects.effects_of_action iapp.app action in
      let deactivating = List.mem action.Rule.command [ "off"; "close"; "stop"; "pause" ] in
      if deactivating then begin
        Env_model.clear_influences t.env d.Device.id;
        match Hashtbl.find_opt t.influence_feats d.Device.id with
        | Some feats -> List.iter (fun f -> Hashtbl.replace t.feature_prov f wprov) feats
        | None -> ()
      end
      else if effects <> [] then begin
        let rates = Env_model.rates_of_effects effects in
        Env_model.set_influences t.env d.Device.id rates;
        let feats = List.map fst rates in
        Hashtbl.replace t.influence_feats d.Device.id feats;
        List.iter (fun f -> Hashtbl.replace t.feature_prov f wprov) feats
      end)

(* Sample: step the environment and refresh sensor readings. A sampled
   change inherits the provenance of the rule that last drove the
   feature, so env-mediated trigger chains stay attributable. *)
let sample t =
  Env_model.step t.env ~dt_ms:t.sample_interval_ms;
  Hashtbl.iter
    (fun id ds ->
      List.iter
        (fun attr ->
          match Env.of_sensor_attribute attr with
          | Some feature ->
            let v = int_of_float (Float.round (Env_model.value t.env feature)) in
            let prov = Option.value ~default:[] (Hashtbl.find_opt t.feature_prov feature) in
            set_attribute t ~prov id attr (string_of_int v)
          | None -> ())
        (Device.attributes ds.device))
    t.devices

(* The device label the mediator sees for an action — the same label
   [execute] logs in the trace. *)
let action_device iapp (action : Rule.action) =
  match action.Rule.target with
  | Rule.Act_device var -> (
    match device_of_var iapp var with Some d -> Some d.Device.label | None -> None)
  | Rule.Act_location_mode -> Some "location"
  | Rule.Act_messaging | Rule.Act_http | Rule.Act_hub ->
    Some (Rule.target_to_string action.Rule.target)

(* Consult the mediator (when armed) before dispatching a command. *)
let dispatch t iapp rule action prov deferrals =
  match t.mediator with
  | None -> execute t prov iapp rule action
  | Some m -> (
    match action_device iapp action with
    | None -> execute t prov iapp rule action
    | Some device -> (
      let query =
        {
          Mediator.app = iapp.app.Rule.name;
          rule = rule.Rule.rule_id;
          device;
          command = action.Rule.command;
          provenance = prov;
          deferrals;
        }
      in
      match Mediator.judge m ~at:t.now query with
      | Mediator.Allow -> execute t prov iapp rule action
      | Mediator.Suppress reason ->
        log t
          (Trace.Suppressed
             {
               at = t.now;
               app = iapp.app.Rule.name;
               rule = rule.Rule.rule_id;
               device;
               command = action.Rule.command;
               reason;
             })
      | Mediator.Defer { delay_ms; _ } ->
        let until = t.now + delay_ms in
        log t
          (Trace.Deferred
             {
               at = t.now;
               app = iapp.app.Rule.name;
               rule = rule.Rule.rule_id;
               device;
               command = action.Rule.command;
               until;
             });
        Event_queue.push t.queue until
          (Execute { iapp; rule; action; prov; deferrals = deferrals + 1 })))

(** Run the simulation until [until_ms]. Events scheduled past the
    horizon (a deferred command, the next sample) stay queued for later
    [run] calls. *)
let run t ~until_ms =
  if not t.sample_scheduled then begin
    t.sample_scheduled <- true;
    Event_queue.push t.queue (t.now + t.sample_interval_ms) Sample
  end;
  let rec loop () =
    match Event_queue.pop_until t.queue until_ms with
    | None -> ()
    | Some (time, item) ->
      t.now <- max t.now time;
      (match item with
      | Deliver { source; attribute; value; prov } -> deliver t prov ~source ~attribute ~value
      | Execute { iapp; rule; action; prov; deferrals } ->
        dispatch t iapp rule action prov deferrals
      | Sample ->
        sample t;
        Event_queue.push t.queue (t.now + t.sample_interval_ms) Sample);
      loop ()
  in
  loop ();
  t.now <- until_ms
