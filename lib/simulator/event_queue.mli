(** Deterministic time-ordered event queue: same-time entries pop in
    insertion order. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int
val push : 'a t -> int -> 'a -> unit
val pop : 'a t -> (int * 'a) option

val pop_until : 'a t -> int -> (int * 'a) option
(** [pop_until q bound] pops the earliest entry scheduled at or before
    [bound]; later entries stay queued. Same-time entries still pop in
    insertion order. *)

val peek_time : 'a t -> int option
