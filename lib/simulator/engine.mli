(** The discrete-event smart-home simulation engine — the stand-in for
    the paper's SmartThings testbed. Same-time command interleavings are
    perturbed by a seeded jitter so actuator races exhibit their
    nondeterminism across seeds. *)

module Rule = Homeguard_rules.Rule
module Device = Homeguard_st.Device
module Location = Homeguard_st.Location

type binding = B_device of Device.t | B_int of int | B_str of string

type installed_app = { app : Rule.smartapp; bindings : (string * binding) list }

type device_state = {
  device : Device.t;
  mutable attrs : (string * string) list;
}

type provenance = (string * string) list
(** Causal (app name, rule id) hops, oldest first, capped in length. *)

type pending =
  | Deliver of
      { source : string option; attribute : string; value : string; prov : provenance }
  | Execute of
      { iapp : installed_app; rule : Rule.t; action : Rule.action; prov : provenance;
        deferrals : int }
  | Sample

type t = {
  devices : (string, device_state) Hashtbl.t;
  env : Env_model.t;
  location : Location.t;
  queue : pending Event_queue.t;
  mutable now : int;
  mutable trace_rev : Trace.entry list;
  mutable apps : installed_app list;
  mutable rng : int;
  command_latency_ms : int;
  jitter_ms : int;
  sample_interval_ms : int;
  mutable mediator : Homeguard_handling.Mediator.t option;
  feature_prov : (Homeguard_st.Env_feature.t, provenance) Hashtbl.t;
  influence_feats : (string, Homeguard_st.Env_feature.t list) Hashtbl.t;
  mutable sample_scheduled : bool;
}

val create :
  ?seed:int ->
  ?command_latency_ms:int ->
  ?jitter_ms:int ->
  ?sample_interval_ms:int ->
  ?mediator:Homeguard_handling.Mediator.t ->
  unit ->
  t

val set_mediator : t -> Homeguard_handling.Mediator.t -> unit
(** Arm (or swap) the reference monitor; consulted before every
    subsequent Execute dispatch. *)

val trace : t -> Trace.t

val add_device : t -> Device.t -> unit
val device_state : t -> string -> device_state option

val stimulate : t -> string -> string -> string -> unit
(** [stimulate t device_id attribute value] — inject a state change or
    sensor reading (the test stimulus). *)

val set_mode : ?prov:provenance -> t -> string -> unit

val install : t -> Rule.smartapp -> (string * binding) list -> unit
(** Install an extracted app with concrete device/value bindings;
    scheduled rules are primed immediately. *)

val run : t -> until_ms:int -> unit
(** Drain the event queue up to the given simulation time. *)
