(** Simulation traces: the observable history of a run. *)

type entry =
  | Command of { at : int; app : string; rule : string; device : string; command : string }
      (** a rule issued a command to a device *)
  | Attr_change of { at : int; device : string; attribute : string; value : string }
  | Mode_change of { at : int; mode : string }
  | Event_fired of { at : int; source : string; attribute : string; value : string }
  | Suppressed of
      { at : int; app : string; rule : string; device : string; command : string; reason : string }
      (** the mediator suppressed a command before dispatch *)
  | Deferred of
      { at : int; app : string; rule : string; device : string; command : string; until : int }
      (** the mediator deferred a command; it is re-enqueued at [until] *)

type t = entry list  (** chronological order *)

let time_of = function
  | Command { at; _ }
  | Attr_change { at; _ }
  | Mode_change { at; _ }
  | Event_fired { at; _ }
  | Suppressed { at; _ }
  | Deferred { at; _ } ->
    at

let entry_to_string = function
  | Command { at; app; rule; device; command } ->
    Printf.sprintf "%6dms  %s/%s -> %s.%s()" at app rule device command
  | Attr_change { at; device; attribute; value } ->
    Printf.sprintf "%6dms  %s.%s := %s" at device attribute value
  | Mode_change { at; mode } -> Printf.sprintf "%6dms  location.mode := %s" at mode
  | Event_fired { at; source; attribute; value } ->
    Printf.sprintf "%6dms  event %s.%s = %s" at source attribute value
  | Suppressed { at; app; rule; device; command; reason } ->
    Printf.sprintf "%6dms  SUPPRESSED %s/%s -> %s.%s()  (%s)" at app rule device command reason
  | Deferred { at; app; rule; device; command; until } ->
    Printf.sprintf "%6dms  DEFERRED %s/%s -> %s.%s()  until %dms" at app rule device command
      until

let to_string trace = String.concat "\n" (List.map entry_to_string trace)

(** Commands issued to [device], in order. *)
let commands_on trace device =
  List.filter_map
    (function
      | Command { at; command; device = d; _ } when d = device -> Some (at, command)
      | _ -> None)
    trace

(** Successive values taken by [device.attribute]. *)
let attribute_timeline trace device attribute =
  List.filter_map
    (function
      | Attr_change { at; device = d; attribute = a; value } when d = device && a = attribute
        ->
        Some (at, value)
      | _ -> None)
    trace

(** Final value of [device.attribute], if it ever changed. *)
let final_attribute trace device attribute =
  match List.rev (attribute_timeline trace device attribute) with
  | (_, v) :: _ -> Some v
  | [] -> None

(** Number of value flips in an attribute timeline (flapping metric for
    Loop-Triggering verification). *)
let flap_count trace device attribute =
  let values = List.map snd (attribute_timeline trace device attribute) in
  let rec count = function
    | a :: (b :: _ as rest) -> (if a <> b then 1 else 0) + count rest
    | _ -> 0
  in
  count values

(** Commands the mediator suppressed on [device], in order. *)
let suppressed_commands trace device =
  List.filter_map
    (function
      | Suppressed { at; command; device = d; _ } when d = device -> Some (at, command)
      | _ -> None)
    trace

(** Did two contradictory commands land on [device] within [window_ms]?
    (Actuator-race witness.) The [opposites] pairs are unordered — either
    command of a pair may come first — and an entry never races itself. *)
let opposite_commands_within trace device ~window_ms ~opposites =
  let cmds = Array.of_list (commands_on trace device) in
  let opposed c1 c2 = List.mem (c1, c2) opposites || List.mem (c2, c1) opposites in
  let n = Array.length cmds in
  let found = ref false in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let t1, c1 = cmds.(i) and t2, c2 = cmds.(j) in
      if abs (t2 - t1) <= window_ms && opposed c1 c2 then found := true
    done
  done;
  !found
