(** Pre-built verification scenarios.

    The paper verifies discovered threats by installing the involved
    apps and observing behaviour (§VIII-A: "we observed a variety of
    results: the switch is turned on only, turned off only, turned on
    then off, and turned off then on"). These helpers build a home,
    install extracted apps with concrete bindings, inject stimuli and
    summarize what the trace shows. *)

module Rule = Homeguard_rules.Rule
module Device = Homeguard_st.Device

type outcome = {
  trace : Trace.t;
  final_states : (string * string * string option) list;
      (** device label, attribute, final value *)
}

(** Outcome of one seeded run of [setup; stimulate; run], optionally
    under a reference monitor. *)
let run_once ?(seed = 1) ?mediator ~until_ms ~setup ~watch () =
  let t = Engine.create ~seed ?mediator () in
  setup t;
  Engine.run t ~until_ms;
  let trace = Engine.trace t in
  {
    trace;
    final_states =
      List.map (fun (label, attr) -> (label, attr, Trace.final_attribute trace label attr)) watch;
  }

(** Run the same scenario under many seeds and collect the distinct
    final states of the watched attribute — the actuator-race
    nondeterminism measurement. *)
let race_outcomes ?(seeds = [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]) ?mediator ~until_ms ~setup
    ~device ~attribute () =
  let outcomes =
    List.map
      (fun seed ->
        let mediator = Option.map (fun make -> make ()) mediator in
        let o = run_once ~seed ?mediator ~until_ms ~setup ~watch:[ (device, attribute) ] () in
        let timeline = Trace.attribute_timeline o.trace device attribute in
        (List.map snd timeline, Trace.final_attribute o.trace device attribute))
      seeds
  in
  List.sort_uniq compare outcomes
