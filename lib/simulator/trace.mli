(** Simulation traces and the analyzers used to verify threats
    dynamically. *)

type entry =
  | Command of { at : int; app : string; rule : string; device : string; command : string }
  | Attr_change of { at : int; device : string; attribute : string; value : string }
  | Mode_change of { at : int; mode : string }
  | Event_fired of { at : int; source : string; attribute : string; value : string }
  | Suppressed of
      { at : int; app : string; rule : string; device : string; command : string; reason : string }
      (** the mediator suppressed a command before dispatch *)
  | Deferred of
      { at : int; app : string; rule : string; device : string; command : string; until : int }
      (** the mediator deferred a command; it re-enters the queue at [until] *)

type t = entry list

val time_of : entry -> int
val entry_to_string : entry -> string
val to_string : t -> string

val commands_on : t -> string -> (int * string) list

val suppressed_commands : t -> string -> (int * string) list
(** Commands the mediator suppressed on the device, in order. *)

val attribute_timeline : t -> string -> string -> (int * string) list
val final_attribute : t -> string -> string -> string option

val flap_count : t -> string -> string -> int
(** Value flips of an attribute (Loop-Triggering witness). *)

val opposite_commands_within :
  t -> string -> window_ms:int -> opposites:(string * string) list -> bool
(** Did contradictory commands land on the device within the window?
    (Actuator-race witness.) The [opposites] pairs are unordered, and an
    entry is never compared against itself. *)
