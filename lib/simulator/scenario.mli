(** Pre-built verification scenarios (the paper's install-and-observe
    methodology, §VIII-A). *)

type outcome = {
  trace : Trace.t;
  final_states : (string * string * string option) list;
}

val run_once :
  ?seed:int ->
  ?mediator:Homeguard_handling.Mediator.t ->
  until_ms:int ->
  setup:(Engine.t -> unit) ->
  watch:(string * string) list ->
  unit ->
  outcome

val race_outcomes :
  ?seeds:int list ->
  ?mediator:(unit -> Homeguard_handling.Mediator.t) ->
  until_ms:int ->
  setup:(Engine.t -> unit) ->
  device:string ->
  attribute:string ->
  unit ->
  (string list * string option) list
(** Distinct (timeline, final state) pairs of the watched attribute
    across seeded runs — the actuator-race nondeterminism measurement.
    [mediator] is a factory: each seeded run gets a fresh monitor so
    deferral and log state never leaks across seeds. *)
