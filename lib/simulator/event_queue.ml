(** Time-ordered event queue for the discrete-event simulator.

    A functional priority queue over [(time_ms, sequence)] keys;
    same-time entries preserve insertion order via the monotonically
    increasing sequence number, so runs are deterministic given a seed. *)

module Key = struct
  type t = int * int  (** time in ms, insertion sequence *)

  let compare (t1, s1) (t2, s2) =
    match compare t1 t2 with 0 -> compare s1 s2 | c -> c
end

module KMap = Map.Make (Key)

type 'a t = { mutable entries : 'a KMap.t; mutable seq : int }

let create () = { entries = KMap.empty; seq = 0 }

let is_empty q = KMap.is_empty q.entries

let size q = KMap.cardinal q.entries

(** [push q time item] enqueues [item] at [time] (ms). *)
let push q time item =
  q.seq <- q.seq + 1;
  q.entries <- KMap.add (time, q.seq) item q.entries

(** [pop q] removes and returns the earliest [(time, item)]. *)
let pop q =
  match KMap.min_binding_opt q.entries with
  | None -> None
  | Some (((time, _) as key), item) ->
    q.entries <- KMap.remove key q.entries;
    Some (time, item)

(** [pop_until q bound] removes and returns the earliest [(time, item)]
    with [time <= bound]; entries past the bound stay queued. *)
let pop_until q bound =
  match KMap.min_binding_opt q.entries with
  | Some (((time, _) as key), item) when time <= bound ->
    q.entries <- KMap.remove key q.entries;
    Some (time, item)
  | _ -> None

(** Earliest scheduled time, if any. *)
let peek_time q =
  Option.map (fun ((time, _), _) -> time) (KMap.min_binding_opt q.entries)
