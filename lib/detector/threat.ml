(** CAI threat categories and detection reports (paper Table I). *)

module Rule = Homeguard_rules.Rule

type category =
  | AR  (** Actuator Race: contradictory actions on the same actuator *)
  | GC  (** Goal Conflict: actions with contradictory goals *)
  | CT  (** Covert Triggering: rule 1's action triggers rule 2 *)
  | SD  (** Self Disabling: triggered rule 2 undoes rule 1's action *)
  | LT  (** Loop Triggering: mutual triggering with contradictory actions *)
  | EC  (** Enabling-Condition interference *)
  | DC  (** Disabling-Condition interference *)

let all_categories = [ AR; GC; CT; SD; LT; EC; DC ]

let category_to_string = function
  | AR -> "AR"
  | GC -> "GC"
  | CT -> "CT"
  | SD -> "SD"
  | LT -> "LT"
  | EC -> "EC"
  | DC -> "DC"

let category_name = function
  | AR -> "Actuator Race"
  | GC -> "Goal Conflict"
  | CT -> "Covert Triggering"
  | SD -> "Self Disabling"
  | LT -> "Loop Triggering"
  | EC -> "Enabling-Condition Interference"
  | DC -> "Disabling-Condition Interference"

(** Categories are directional except AR, GC and LT: the threat record
    always reads "rule1 interferes with rule2". *)
let is_directional = function CT | SD | EC | DC -> true | AR | GC | LT -> false

(** Verdict honesty: a [Confirmed] threat is backed by a decisive solver
    answer; [Undecided] means the overlap solve exhausted its budget (the
    string records which budget tripped and where), so the pair is a
    *potential* threat that must never be silently dropped. *)
type severity = Confirmed | Undecided of string

let severity_to_string = function
  | Confirmed -> "confirmed"
  | Undecided reason -> "undecided: " ^ reason

let is_undecided = function Confirmed -> false | Undecided _ -> true

type t = {
  category : category;
  app1 : Rule.smartapp;
  rule1 : Rule.t;
  app2 : Rule.smartapp;
  rule2 : Rule.t;
  witness : Homeguard_solver.Search.model option;
      (** a concrete situation in which the interference manifests *)
  severity : severity;  (** decisive solver verdict, or budget-undecided *)
  detail : string;  (** which devices/goals/attributes are involved *)
}

let make category (app1, rule1) (app2, rule2) ?witness ?(severity = Confirmed) detail =
  { category; app1; rule1; app2; rule2; witness; severity; detail }

let to_string t =
  Printf.sprintf "[%s%s] %s <-> %s: %s"
    (category_to_string t.category)
    (if is_undecided t.severity then "?" else "")
    t.rule1.Rule.rule_id t.rule2.Rule.rule_id t.detail
