(** CAI threat categories (paper Table I) and detection reports. *)

module Rule = Homeguard_rules.Rule

type category = AR | GC | CT | SD | LT | EC | DC

val all_categories : category list
val category_to_string : category -> string
val category_name : category -> string

val is_directional : category -> bool
(** CT/SD/EC/DC read "rule1 interferes with rule2". *)

type severity = Confirmed | Undecided of string
(** [Undecided reason]: the overlap solve ran out of budget, so this is
    a potential threat reported conservatively, never dropped. *)

val severity_to_string : severity -> string
val is_undecided : severity -> bool

type t = {
  category : category;
  app1 : Rule.smartapp;
  rule1 : Rule.t;
  app2 : Rule.smartapp;
  rule2 : Rule.t;
  witness : Homeguard_solver.Search.model option;
  severity : severity;
  detail : string;
}

val make :
  category ->
  Rule.smartapp * Rule.t ->
  Rule.smartapp * Rule.t ->
  ?witness:Homeguard_solver.Search.model ->
  ?severity:severity ->
  string ->
  t
(** Severity defaults to [Confirmed]. *)

val to_string : t -> string
