(** Batched parallel scheduling for detection workloads.

    The detection engine plans its work as an array of independent items
    (candidate rule pairs). This module partitions such an array into
    contiguous batches and fans the batches out across OCaml 5 domains
    through a [Mutex]/[Condition] work queue. Results are collected per
    batch and returned in batch order, so the caller's output is
    deterministic — identical at [~jobs:1] and [~jobs:N].

    This is the first step toward the ROADMAP's sharded/batched audit
    service: the scheduler is generic over the work item so the same
    fan-out can later drive extraction, simulation or remote shards. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the hardware parallelism. *)

type exn_info = { exn : string; backtrace : string }
(** A captured per-item failure, transportable across domains. *)

val exn_info_of : exn -> exn_info

val capture : (unit -> 'a) -> ('a, exn_info) result
(** Run one work item, converting a raised exception into [Error] so a
    crashing item is isolated: the rest of its batch still runs and the
    audit completes with a structured error summary. *)

val batches : jobs:int -> 'a array -> 'a array array
(** Partition an array into contiguous, order-preserving batches sized
    for [jobs] domains (several batches per domain so the work queue
    load-balances uneven batches). Concatenating the result restores the
    input; an empty input yields no batches. *)

val map_batches :
  ?cancel:(unit -> bool) -> jobs:int -> ('a array -> 'b) -> 'a array -> 'b option array
(** [map_batches ~jobs f items] applies [f] to every batch of [items]
    and returns the per-batch results indexed in batch order, regardless
    of which domain ran which batch. [jobs <= 1] (or a single batch)
    runs inline on the calling domain; otherwise [jobs] worker domains
    pull batches from a shared work queue until it drains. [f] must be
    safe to run on several domains at once (give each call its own
    mutable state and merge afterwards).

    [?cancel] (default: never) is polled cooperatively before each batch
    starts; once it reports [true], no further batch runs on any domain
    and the skipped batches return [None]. Batches already in flight
    complete — a cancelled map overshoots by at most one batch per
    domain — so callers that need finer granularity should also poll
    [cancel] inside [f]. Without cancellation every slot is [Some]. *)
