(** The CAI threat detection engine (paper §VI).

    Pairwise analysis of rules: candidate filtering against the action/
    channel maps, then overlapping-condition detection as constraint
    satisfaction. Solver results are memoized per rule pair so CT/SD/LT
    reuse the AR solve and DC reuses the EC solve (Fig 9's green lines);
    pass [~reuse:false] to measure the unmemoized cost (ablation A1). *)

module Rule = Homeguard_rules.Rule
module Formula = Homeguard_solver.Formula
module Term = Homeguard_solver.Term
module Solver = Homeguard_solver.Solver
module Store = Homeguard_solver.Store
module Domain = Homeguard_solver.Domain
module Budget = Homeguard_solver.Budget
module Capability = Homeguard_st.Capability
module Env = Homeguard_st.Env_feature

type tagged_rule = Rule.smartapp * Rule.t

(** One detector solve, described to an external (fleet-shared) verdict
    cache. The formula and store are exactly what {!budgeted_solve}
    would receive — the cache must return exactly what a concrete solve
    would, so construction here is byte-identical to the uncached path.
    [q_bindings] names the per-home configuration-value equalities that
    appear in the formula (qualified, post-unification), so the cache
    can abstract them into equivalence-class cells. *)
type solve_query = {
  q_kind : string;  (** "sit" | "cond" | "ct" | "fx" — debug partition *)
  q_apps : string * string;  (** order-normalized app-pair identity *)
  q_formula : Homeguard_solver.Formula.t;
  q_store : Homeguard_solver.Store.t;
  q_bindings : (string * Term.t) list;
  q_fingerprint : string;  (** {!solve_fingerprint} of the ctx config *)
}

(** One whole app-pair audit, described to an external pair-result
    cache. Unlike {!solve_query} this sits above planning: a hit skips
    the candidate pre-filters *and* every per-category analysis for the
    pair, so it is keyed on everything those depend on — both apps'
    full rule structure, both apps' configuration bindings and the
    solve fingerprint. The pair is in home install order (detection is
    orientation-sensitive: threats name the apps in argument order). *)
type pair_audit = {
  pa_apps : Rule.smartapp * Rule.smartapp;
  pa_bindings : (string * Term.t) list * (string * Term.t) list;
      (** [app_constraints] of each app, same order as [pa_apps] *)
  pa_unify : (string * string) list;
      (** the same-device relation over the two apps' device inputs
          (input-declaration order) — everything detection asks
          [config.same_device], so two homes with the same apps but
          different device assignments never share a key *)
  pa_fingerprint : string;  (** {!pair_fingerprint} of the ctx config *)
}

type pair_matrix = Threat.t list array array
(** Threats per rule pair: [m.(i).(j)] is [detect_pair] of the first
    app's rule [i] against the second app's rule [j]. *)

type pair_cache = {
  pair_lookup : pair_audit -> pair_matrix option;
  pair_store : pair_audit -> pair_matrix -> unit;
}

type config = {
  same_device : Rule.smartapp -> string -> Rule.smartapp -> string -> bool;
      (** do two input variables denote the same device? *)
  app_constraints : Rule.smartapp -> (string * Term.t) list;
      (** configuration values: user-input variable bindings *)
  reuse : bool;  (** memoize constraint solving across threat types *)
  budget : Budget.spec;
      (** per-solve resource budget; an exhausted solve is retried once
          with {!Budget.escalate} and then surfaced as [Undecided] *)
  escalate : bool;
      (** retry exhausted solves once with an 8x budget. Disable for
          deadline-derived budgets ({!Budget.of_deadline}): escalating a
          wall-clock timeout would let one solve outlive the request
          deadline it was cut from *)
  shared_cache : (solve_query -> (unit -> Solver.verdict) -> Solver.verdict) option;
      (** fleet-shared verdict cache hook: called with the query and the
          concrete compute thunk; must return either the thunk's result
          or a cached verdict byte-identical to what the thunk would
          produce. [None] (default) solves everything locally. *)
  pair_cache : pair_cache option;
      (** pair-level result cache: [audit_all] groups its plan by app
          pair and a lookup hit replaces planning and detection for the
          whole pair. A hit must be byte-identical to what the grouped
          compute would produce. [None] (default) plans flat. *)
}

(** Offline corpus mode: two inputs denote the same device when they
    share a capability, with [capability.switch] disambiguated by device
    class from titles/descriptions (paper §VIII-B). A generic,
    unclassifiable switch may be bound to any switch device, so it
    matches every switch class (this is what lets Energy Saver's generic
    "devices to turn off" disable It's Too Hot's air conditioner). *)
let offline_same_device app1 v1 app2 v2 =
  match (Rule.capability_of_input app1 v1, Rule.capability_of_input app2 v2) with
  | Some c1, Some c2 when c1 = c2 ->
    if c1 = "switch" || c1 = "switchLevel" then begin
      let cls1 = Effects.classify app1 v1 and cls2 = Effects.classify app2 v2 in
      cls1 = cls2 || cls1 = Effects.Generic_switch || cls2 = Effects.Generic_switch
    end
    else true
  | _ -> false

let offline_config =
  {
    same_device = offline_same_device;
    app_constraints = (fun _ -> []);
    reuse = true;
    budget = Budget.default_spec;
    escalate = true;
    shared_cache = None;
    pair_cache = None;
  }

(* The one cache-key fingerprint shared by the in-process overlap cache
   and any fleet-wide verdict cache behind [shared_cache]: budget tier
   (PR 2), solver A/B flags (PR 6), and whether escalation retries are
   on. Anything that can change what a solve returns must be in here. *)
let solve_fingerprint config =
  Budget.cache_fingerprint config.budget
  ^ ";" ^ Solver.flags_fingerprint ()
  ^ (if config.escalate then ";e1" else ";e0")

(* Pair-tier fingerprint: the solve fingerprint plus the memoization
   switch. [reuse] cannot change a verdict, but it can change which
   solver results back a witness, and pair-cache hits must be
   byte-identical to the grouped compute — so it keys. *)
let pair_fingerprint config =
  solve_fingerprint config ^ (if config.reuse then ";r1" else ";r0")

(* Pure planning facts recomputed for every pair an app participates in:
   device matching re-classifies switch text from titles/descriptions,
   channel maps re-scan the capability registry, and condition
   predicates are re-expanded per action. Each ctx caches them once —
   apps are identified by name, unique within an audit, and every worker
   domain owns its own ctx, so the tables need no locking. *)
type caches = {
  same_device_c : (string * string * string * string, bool) Hashtbl.t;
  unify_pairs_c : (string * string, (string * string) list) Hashtbl.t;
  attr_writes_c : (string * Rule.action, Channels.attr_write list) Hashtbl.t;
  env_effects_c : (string * Rule.action, (Env.t * Effects.polarity) list) Hashtbl.t;
  device_inputs_c : (string, string list) Hashtbl.t;
  cond_vars_c : (string * string, Formula.t * string list) Hashtbl.t;
  opposite_cmds_c : (string * string, bool) Hashtbl.t;
}

let create_caches () =
  {
    same_device_c = Hashtbl.create 256;
    unify_pairs_c = Hashtbl.create 64;
    attr_writes_c = Hashtbl.create 64;
    env_effects_c = Hashtbl.create 64;
    device_inputs_c = Hashtbl.create 16;
    cond_vars_c = Hashtbl.create 64;
    opposite_cmds_c = Hashtbl.create 64;
  }

type ctx = {
  config : config;
  overlap_cache : (string * string, Solver.verdict) Hashtbl.t;
      (** keys carry the budget fingerprint: an [Unknown] cached under a
          small budget can never answer for a larger one *)
  caches : caches;  (** memoized solver-free planning facts *)
  fingerprint : string;  (** {!solve_fingerprint} of [config], memoized *)
  pair_fp : string;  (** {!pair_fingerprint} of [config], memoized *)
  mutable solver_calls : int;  (** number of actual constraint solves *)
  mutable escalations : int;  (** undecided solves retried with a bigger budget *)
  mutable undecided_solves : int;  (** solves still undecided after escalation *)
}

(* [?caches] shares planning facts across ctxs: sound only when every
   sharing config's [same_device] behaves identically (the other tables
   are config-independent), and only from one domain at a time — the
   tables are unsynchronized. Fleet sweeps over many homes in one
   matching mode amortize device classification this way. *)
let create ?caches config =
  {
    config;
    overlap_cache = Hashtbl.create 64;
    caches = (match caches with Some c -> c | None -> create_caches ());
    fingerprint = solve_fingerprint config;
    pair_fp = pair_fingerprint config;
    solver_calls = 0;
    escalations = 0;
    undecided_solves = 0;
  }

let memo tbl key compute =
  match Hashtbl.find_opt tbl key with
  | Some v -> v
  | None ->
    let v = compute () in
    Hashtbl.add tbl key v;
    v

(* Memoizing views over the config matcher and the channel maps. *)
let same_device ctx (app1 : Rule.smartapp) v1 (app2 : Rule.smartapp) v2 =
  memo ctx.caches.same_device_c (app1.Rule.name, v1, app2.Rule.name, v2) (fun () ->
      ctx.config.same_device app1 v1 app2 v2)

let attribute_writes ctx (app : Rule.smartapp) a =
  memo ctx.caches.attr_writes_c (app.Rule.name, a) (fun () -> Channels.attribute_writes app a)

let environment_effects ctx (app : Rule.smartapp) a =
  memo ctx.caches.env_effects_c (app.Rule.name, a) (fun () -> Channels.environment_effects app a)

let device_inputs ctx (app : Rule.smartapp) =
  memo ctx.caches.device_inputs_c app.Rule.name (fun () -> Rule.device_inputs app)

(* Expanded condition predicate of a rule plus its free variables. *)
let expanded_condition ctx (app : Rule.smartapp) (r : Rule.t) =
  memo ctx.caches.cond_vars_c (app.Rule.name, r.Rule.rule_id) (fun () ->
      let cond = Rule.expanded_predicate r in
      (cond, Formula.free_vars cond))

let commands_opposite ctx c1 c2 =
  memo ctx.caches.opposite_cmds_c (c1, c2) (fun () ->
      List.exists
        (fun cap -> Capability.contradicts cap c1 c2)
        (Capability.capabilities_with_command c1))

(* Every detector solve goes through here: run under the configured
   budget and, if the verdict is Unknown, retry once with an escalated
   budget before surfacing the undecided answer. *)
let budgeted_solve ctx store f : Solver.verdict =
  ctx.solver_calls <- ctx.solver_calls + 1;
  match Solver.solve ~budget:(Budget.start ctx.config.budget) store f with
  | Budget.Unknown _ as verdict when not ctx.config.escalate ->
    ctx.undecided_solves <- ctx.undecided_solves + 1;
    verdict
  | Budget.Unknown _ ->
    ctx.escalations <- ctx.escalations + 1;
    ctx.solver_calls <- ctx.solver_calls + 1;
    let retry =
      Solver.solve ~budget:(Budget.start (Budget.escalate ctx.config.budget)) store f
    in
    (match retry with
    | Budget.Unknown _ -> ctx.undecided_solves <- ctx.undecided_solves + 1
    | _ -> ());
    retry
  | verdict -> verdict

let undecided_severity reason = Threat.Undecided (Budget.reason_to_string reason)

(* -- variable qualification and unification ------------------------------ *)

let is_shared_var var =
  var = "location.mode" || var = "app.touch"
  || (String.length var > 5 && String.sub var 0 5 = "time.")
  || (String.length var > 4 && String.sub var 0 4 = "env.")

let qualify app_name var = if is_shared_var var then var else app_name ^ "::" ^ var

(* Split a qualified variable "App::v.attr" into its base and attribute. *)
let split_attr var =
  match String.rindex_opt var '.' with
  | Some i -> (String.sub var 0 i, Some (String.sub var (i + 1) (String.length var - i - 1)))
  | None -> (var, None)

(* Build the unification renaming: matched device variables of app2 are
   renamed to app1's qualified name so shared state is shared in the
   solver. *)
let unifier ctx (app1 : Rule.smartapp) (app2 : Rule.smartapp) =
  let pairs =
    memo ctx.caches.unify_pairs_c (app1.Rule.name, app2.Rule.name) (fun () ->
        List.concat_map
          (fun v1 ->
            List.filter_map
              (fun v2 ->
                if same_device ctx app1 v1 app2 v2 then
                  Some (qualify app2.Rule.name v2, qualify app1.Rule.name v1)
                else None)
              (device_inputs ctx app2))
          (device_inputs ctx app1))
  in
  fun var ->
    let base, attr = split_attr var in
    match List.assoc_opt base pairs with
    | Some base' -> ( match attr with Some a -> base' ^ "." ^ a | None -> base')
    | None -> var

let rename_formula rename f =
  let sub = List.map (fun v -> (v, Term.Var (rename v))) (Formula.free_vars f) in
  Formula.subst sub f

(* An app's configuration-value bindings under the same qualification
   (and optional device unification) its formula variables get, so the
   binding names in a [solve_query] match the formula's atoms. *)
let qualified_bindings ctx ?(rename = fun v -> v) (app : Rule.smartapp) =
  List.map
    (fun (v, t) -> (rename (qualify app.Rule.name v), t))
    (ctx.config.app_constraints app)

(* Solve through the fleet-shared verdict cache when one is configured.
   The hook receives the exact formula/store a local solve would use and
   the compute thunk is [budgeted_solve] itself, so a cache miss is
   byte-identical to running without a cache. *)
let cached_solve ctx ~kind ~apps ~bindings store f =
  match ctx.config.shared_cache with
  | None -> budgeted_solve ctx store f
  | Some hook ->
    let a1, a2 = apps in
    let q_apps = if a1 <= a2 then (a1, a2) else (a2, a1) in
    hook
      {
        q_kind = kind;
        q_apps;
        q_formula = f;
        q_store = store;
        q_bindings = bindings;
        q_fingerprint = ctx.fingerprint;
      }
      (fun () -> budgeted_solve ctx store f)

(* Qualified situation (trigger constraint + data + predicate) of a rule,
   with app-level config-value constraints folded in. *)
let qualified_formula ctx ~situation (app : Rule.smartapp) (rule : Rule.t) rename =
  let base = if situation then Rule.situation rule else
      Formula.conj
        (List.map (fun (v, t) -> Formula.eq (Term.Var v) t) rule.Rule.condition.Rule.data
        @ [ rule.Rule.condition.Rule.predicate ])
  in
  let config_eqs =
    List.map
      (fun (v, t) -> Formula.eq (Term.Var v) t)
      (ctx.config.app_constraints app)
  in
  let f = Formula.conj (base :: config_eqs) in
  let qualified =
    rename_formula (fun v -> rename (qualify app.Rule.name v)) f
  in
  qualified

(* Store typing qualified variables by resolving each base back to its
   app's input declarations. *)
let store_for ctx apps formula =
  ignore ctx;
  let cap_of_var base =
    match String.index_opt base ':' with
    | Some i when i + 1 < String.length base && base.[i + 1] = ':' ->
      let app_name = String.sub base 0 i in
      let var = String.sub base (i + 2) (String.length base - i - 2) in
      List.find_map
        (fun (app : Rule.smartapp) ->
          if app.Rule.name = app_name then Rule.capability_of_input app var else None)
        apps
    | _ -> None
  in
  Rule.store_for_vars ~cap_of_var (Formula.free_vars formula)

(* Memoized satisfiability of the two rules' combined formulas. The
   solved formula [conj [f1; f2]] is symmetric in the two rules, so the
   key is ordered canonically: a reverse-direction query hits the cache
   entry of the forward solve instead of solving again. The key also
   carries the budget fingerprint, so an [Unknown] obtained under one
   budget is never replayed as the answer for a different budget. *)
let solve_overlap ctx ~situation ((app1, r1) : tagged_rule) ((app2, r2) : tagged_rule) =
  let kind = if situation then "sit" else "cond" in
  let key =
    let id1 = app1.Rule.name ^ "/" ^ r1.Rule.rule_id
    and id2 = app2.Rule.name ^ "/" ^ r2.Rule.rule_id in
    let lo, hi = if id1 <= id2 then (id1, id2) else (id2, id1) in
    (kind ^ ":" ^ ctx.fingerprint ^ ":" ^ lo, hi)
  in
  let compute () =
    let rename = unifier ctx app1 app2 in
    let f1 = qualified_formula ctx ~situation app1 r1 (fun v -> v) in
    let f2 = qualified_formula ctx ~situation app2 r2 rename in
    let f = Formula.conj [ f1; f2 ] in
    let store = store_for ctx [ app1; app2 ] f in
    let bindings =
      qualified_bindings ctx app1 @ qualified_bindings ctx ~rename app2
    in
    cached_solve ctx ~kind
      ~apps:(app1.Rule.name, app2.Rule.name)
      ~bindings store f
  in
  if not ctx.config.reuse then compute ()
  else
    match Hashtbl.find_opt ctx.overlap_cache key with
    | Some r -> r
    | None ->
      let r = compute () in
      Hashtbl.replace ctx.overlap_cache key r;
      r

(** Overlapping situations: trigger+condition of both rules jointly
    satisfiable (used by AR, GC). *)
let situations_overlap ctx p1 p2 = solve_overlap ctx ~situation:true p1 p2

(** Overlapping conditions only (used by trigger/condition interference). *)
let conditions_overlap ctx p1 p2 = solve_overlap ctx ~situation:false p1 p2

(* -- Action-Interference (AR, GC) ----------------------------------------- *)

let same_action_target ctx (app1, a1) (app2, a2) =
  match (a1.Rule.target, a2.Rule.target) with
  | Rule.Act_device v1, Rule.Act_device v2 -> same_device ctx app1 v1 app2 v2
  | Rule.Act_location_mode, Rule.Act_location_mode -> true
  | _ -> false

let const_param a = match a.Rule.params with (Term.Int _ | Term.Str _) as t :: _ -> Some t | _ -> None

(* Contradictory commands: declared opposites, or same command with
   different constant parameters. *)
let commands_contradict ctx (app1, (a1 : Rule.action)) (app2, (a2 : Rule.action)) =
  ignore app1;
  ignore app2;
  let opposite = commands_opposite ctx a1.Rule.command a2.Rule.command in
  let conflicting_params =
    a1.Rule.command = a2.Rule.command
    &&
    match (const_param a1, const_param a2) with
    | Some p1, Some p2 -> p1 <> p2
    | _ -> false
  in
  opposite || conflicting_params

(** Actuator-Race candidate: some pair of actions issues contradictory
    commands to the same actuator. *)
let ar_candidate ctx ((app1, r1) : tagged_rule) ((app2, r2) : tagged_rule) =
  List.exists
    (fun a1 ->
      List.exists
        (fun a2 ->
          same_action_target ctx (app1, a1) (app2, a2)
          && commands_contradict ctx (app1, a1) (app2, a2))
        r2.Rule.actions)
    r1.Rule.actions

let triggers_unify ctx ((app1, r1) : tagged_rule) ((app2, r2) : tagged_rule) =
  match (r1.Rule.trigger, r2.Rule.trigger) with
  | Rule.Event e1, Rule.Event e2 -> (
    e1.attribute = e2.attribute
    &&
    match (e1.subject, e2.subject) with
    | Rule.Device v1, Rule.Device v2 -> same_device ctx app1 v1 app2 v2
    | Rule.Location, Rule.Location -> true
    | Rule.App_touch, Rule.App_touch -> true
    | _ -> false)
  | Rule.Scheduled s1, Rule.Scheduled s2 -> (
    (* two fixed times must coincide; anything involving a period or an
       unknown time may overlap *)
    match (s1.at_minutes, s2.at_minutes) with
    | Some a1, Some a2 -> a1 = a2
    | _ -> true)
  | _ -> false

(* AR uses the conditions-only overlap: the paper's formalism asks for
   identical triggers, but its evaluation reports races between rules
   whose independent triggers merely can co-occur (e.g. LetThereBeDark's
   door-close vs UndeadEarlyWarning's door-open, §VIII-B item 4), and
   Fig 9 has CT/SD/LT reusing "the solving result of AR" — which is
   exactly this conditions overlap. Mutually exclusive *conditions*
   still rule the race out. *)
let detect_ar ctx p1 p2 =
  if ar_candidate ctx p1 p2 then begin
    let app1, r1 = p1 and app2, r2 = p2 in
    let detail =
      Printf.sprintf "contradictory commands on the same actuator (%s vs %s)"
        (String.concat "," (List.map (fun a -> a.Rule.command) r1.Rule.actions))
        (String.concat "," (List.map (fun a -> a.Rule.command) r2.Rule.actions))
    in
    match conditions_overlap ctx p1 p2 with
    | Budget.Sat witness -> [ Threat.make Threat.AR (app1, r1) (app2, r2) ~witness detail ]
    | Budget.Unsat -> []
    | Budget.Unknown reason ->
      (* undecided overlap: the candidate is a *potential* race and must
         be reported, never silently treated as "no threat" *)
      [ Threat.make Threat.AR (app1, r1) (app2, r2) ~severity:(undecided_severity reason) detail ]
  end
  else []

(* Pairs of environment goals the two rules' actions push in opposite
   directions (solver-free; the GC candidate filter). *)
let conflicting_goal_pairs ctx ((app1, r1) : tagged_rule) ((app2, r2) : tagged_rule) =
  List.concat_map
    (fun a1 ->
      List.concat_map
        (fun a2 ->
          if same_action_target ctx (app1, a1) (app2, a2) then []
          else
            Effects.conflicting_goals
              (environment_effects ctx app1 a1)
              (environment_effects ctx app2 a2))
        r2.Rule.actions)
    r1.Rule.actions
  |> List.sort_uniq compare

let detect_gc ctx p1 p2 =
  let app1, r1 = p1 and app2, r2 = p2 in
  let goal_pairs = conflicting_goal_pairs ctx p1 p2 in
  if goal_pairs = [] then []
  else
    let detail =
      Printf.sprintf "actions with contradictory goals over %s"
        (String.concat ", " (List.map Env.to_string goal_pairs))
    in
    match situations_overlap ctx p1 p2 with
    | Budget.Sat witness -> [ Threat.make Threat.GC (app1, r1) (app2, r2) ~witness detail ]
    | Budget.Unsat -> []
    | Budget.Unknown reason ->
      [ Threat.make Threat.GC (app1, r1) (app2, r2) ~severity:(undecided_severity reason) detail ]

(* -- Trigger-Interference (CT, SD, LT) ------------------------------------ *)

(* Does action a1 (of app1/r1) satisfy r2's trigger?  Returns a
   human-readable channel description when it can. [~approx:true] skips
   the written-value compatibility solve (over-approximating: a value
   mismatch is treated as compatible) so the check is solver-free and
   usable as a planning pre-filter. *)
let action_triggers ?(approx = false) ctx ((app1 : Rule.smartapp), (a1 : Rule.action)) ((app2, r2) : tagged_rule) =
  match r2.Rule.trigger with
  | Rule.Scheduled _ -> None
  | Rule.Event { subject; attribute; constraint_ } -> (
    (* way 1: direct attribute write *)
    let direct =
      List.find_map
        (fun (w : Channels.attr_write) ->
          let subject_matches =
            match (w.Channels.w_target, subject) with
            | Rule.Act_device v1, Rule.Device v2 ->
              same_device ctx app1 v1 app2 v2 && w.Channels.w_attr = attribute
            | Rule.Act_location_mode, Rule.Location -> attribute = "mode"
            | _ -> false
          in
          if not subject_matches then None
          else
            (* value compatibility: written value must satisfy the
               trigger constraint *)
            let subject_var =
              match subject with
              | Rule.Device v2 -> qualify app2.Rule.name (v2 ^ "." ^ attribute)
              | Rule.Location -> "location.mode"
              | Rule.App_touch -> "app.touch"
            in
            let trig =
              rename_formula (fun v -> qualify app2.Rule.name v) constraint_
            in
            let value_ok =
              match w.Channels.w_value with
              | Some ((Term.Int _ | Term.Str _) as value) when not approx -> (
                let f = Formula.conj [ trig; Formula.eq (Term.Var subject_var) value ] in
                match
                  cached_solve ctx ~kind:"ct"
                    ~apps:(app1.Rule.name, app2.Rule.name)
                    ~bindings:(qualified_bindings ctx app2)
                    (store_for ctx [ app1; app2 ] f)
                    f
                with
                | Budget.Sat _ -> true
                | Budget.Unsat -> false
                (* undecided compatibility is treated as compatible: the
                   over-approximation may flag a spurious edge but can
                   never hide a real one *)
                | Budget.Unknown _ -> true)
              | _ -> true
            in
            if value_ok then
              Some
                (Printf.sprintf "command %s sets %s, the trigger of %s" a1.Rule.command
                   attribute r2.Rule.rule_id)
            else None)
        (attribute_writes ctx app1 a1)
    in
    match direct with
    | Some _ -> direct
    | None -> (
      (* way 2: through the environment *)
      match Channels.sensed_feature_of_trigger r2.Rule.trigger with
      | None -> None
      | Some feature ->
        let effects = environment_effects ctx app1 a1 in
        List.find_map
          (fun (f, pol) ->
            if f <> feature then None
            else
              let subject_var =
                match subject with
                | Rule.Device v2 -> v2 ^ "." ^ attribute
                | Rule.Location -> "location." ^ attribute
                | Rule.App_touch -> "app.touch"
              in
              let compatible =
                constraint_ = Formula.True
                || Channels.polarity_can_satisfy constraint_ subject_var pol
              in
              if compatible then
                Some
                  (Printf.sprintf "command %s changes %s sensed by %s's trigger"
                     a1.Rule.command (Env.to_string f) r2.Rule.rule_id)
              else None)
          effects))

(* A triggering edge: [Some (witness, severity, detail)]. A decisive
   non-overlap kills the edge; an undecided overlap keeps it alive as a
   potential edge (no witness, [Undecided] severity). *)
let ct_edge ctx ((app1, r1) as p1 : tagged_rule) ((app2, r2) as p2 : tagged_rule) =
  if r1.Rule.rule_id = r2.Rule.rule_id && app1.Rule.name = app2.Rule.name then None
  else
    let channel =
      List.find_map (fun a1 -> action_triggers ctx (app1, a1) (app2, r2)) r1.Rule.actions
    in
    match channel with
    | None -> None
    | Some detail -> (
      match conditions_overlap ctx p1 p2 with
      | Budget.Sat witness -> Some (Some witness, Threat.Confirmed, detail)
      | Budget.Unsat -> None
      | Budget.Unknown reason -> Some (None, undecided_severity reason, detail))

(* The worse of two edge severities: a threat built from edges is only
   [Confirmed] when every contributing edge is. *)
let worst_severity s1 s2 = if Threat.is_undecided s1 then s1 else s2

let detect_trigger_interference ctx p1 p2 =
  let app1, r1 = p1 and app2, r2 = p2 in
  let e12 = ct_edge ctx p1 p2 in
  let e21 = ct_edge ctx p2 p1 in
  let ar_cand = ar_candidate ctx p1 p2 in
  let edge_threat cat pa pb (witness, severity, detail) =
    { (Threat.make cat pa pb ~severity detail) with Threat.witness }
  in
  let ct_threats =
    (match e12 with
    | Some e -> [ edge_threat Threat.CT (app1, r1) (app2, r2) e ]
    | None -> [])
    @
    match e21 with
    | Some e -> [ edge_threat Threat.CT (app2, r2) (app1, r1) e ]
    | None -> []
  in
  let sd_threats =
    match (e12, ar_cand) with
    | Some (w, sev, _), true ->
      [
        edge_threat Threat.SD (app1, r1) (app2, r2)
          ( w, sev,
            Printf.sprintf "%s triggers %s whose action undoes it" r1.Rule.rule_id
              r2.Rule.rule_id );
      ]
    | _ -> (
      match (e21, ar_cand) with
      | Some (w, sev, _), true ->
        [
          edge_threat Threat.SD (app2, r2) (app1, r1)
            ( w, sev,
              Printf.sprintf "%s triggers %s whose action undoes it" r2.Rule.rule_id
                r1.Rule.rule_id );
        ]
      | _ -> [])
  in
  let lt_threats =
    match (e12, e21, ar_cand) with
    | Some (w, sev12, _), Some (_, sev21, _), true ->
      [
        edge_threat Threat.LT (app1, r1) (app2, r2)
          (w, worst_severity sev12 sev21, "rules trigger each other with contradictory actions");
      ]
    | _ -> []
  in
  ct_threats @ sd_threats @ lt_threats

(* -- Condition-Interference (EC, DC) -------------------------------------- *)

(* Effect constraints of action a1 on r2's condition variables. The
   predicate is used with data constraints expanded so pure bindings
   (e.g. [t = sensor.temperature] feeding only the trigger) don't count
   as condition state. *)
let condition_effects ctx ((app1 : Rule.smartapp), (a1 : Rule.action)) ((app2, r2) : tagged_rule) =
  let cond, cond_vars = expanded_condition ctx app2 r2 in
  (* way 1: direct writes to condition-tested attributes *)
  let direct =
    List.concat_map
      (fun (w : Channels.attr_write) ->
        List.filter_map
          (fun var ->
            let base, attr = split_attr var in
            let matches =
              match (w.Channels.w_target, attr) with
              | Rule.Act_device v1, Some a when a = w.Channels.w_attr ->
                base <> "location" && same_device ctx app1 v1 app2 base
              | Rule.Act_location_mode, Some "mode" -> base = "location"
              | _ -> false
            in
            if not matches then None
            else
              match w.Channels.w_value with
              | Some value -> Some (`Eq (var, value))
              | None -> Some (`Touches var))
          cond_vars)
      (attribute_writes ctx app1 a1)
  in
  (* way 2: environment effects on sensed condition variables *)
  let env_effects =
    List.concat_map
      (fun (feature, pol) ->
        List.map
          (fun var ->
            match (a1.Rule.params, pol) with
            | ((Term.Int _ | Term.Var _) as p) :: _, Effects.Incr
              when a1.Rule.command = "setHeatingSetpoint" ->
              `Ge (var, p)
            | ((Term.Int _ | Term.Var _) as p) :: _, Effects.Decr
              when a1.Rule.command = "setCoolingSetpoint" ->
              `Le (var, p)
            | _ -> `Dir (var, pol))
          (Channels.vars_sensing feature cond))
      (environment_effects ctx app1 a1)
  in
  (direct @ env_effects, cond)

(* One budgeted enable/disable solve: Sat means the write can enable the
   condition (EC, with witness); a decisive Unsat means it provably
   falsifies it (DC). Unknown is reported as a *potential* EC — a tripped
   budget must never masquerade as a proven DC. *)
let solved_effect ctx apps ~bindings f ~verb ~rule_id =
  let app_names =
    match apps with
    | (a1 : Rule.smartapp) :: a2 :: _ -> (a1.Rule.name, a2.Rule.name)
    | [ a1 ] -> (a1.Rule.name, a1.Rule.name)
    | [] -> ("", "")
  in
  match cached_solve ctx ~kind:"fx" ~apps:app_names ~bindings (store_for ctx apps f) f with
  | Budget.Sat w ->
    ( Threat.EC, Some w, Threat.Confirmed,
      Printf.sprintf "%s enabling %s's condition" verb rule_id )
  | Budget.Unsat ->
    ( Threat.DC, None, Threat.Confirmed,
      Printf.sprintf "%s disabling %s's condition" verb rule_id )
  | Budget.Unknown reason ->
    ( Threat.EC, None, undecided_severity reason,
      Printf.sprintf "%s possibly enabling %s's condition" verb rule_id )

let detect_condition_interference_dir ctx ((app1, r1) : tagged_rule)
    ((app2, r2) as p2 : tagged_rule) =
  if r1.Rule.rule_id = r2.Rule.rule_id && app1.Rule.name = app2.Rule.name then []
  else
    let all_effects =
      List.concat_map
        (fun a1 ->
          let effects, cond = condition_effects ctx (app1, a1) p2 in
          List.map (fun e -> (a1, e, cond)) effects)
        r1.Rule.actions
    in
    if all_effects = [] then []
    else
      (* merge effect constraints with R2's condition and solve; solvable
         means the condition may be enabled, otherwise disabled *)
      let qualified_cond rename =
        qualified_formula ctx ~situation:false app2 r2 rename
      in
      (* Rename app1's matched device variables to app2's qualified
         names (as [solve_overlap] does) so an action parameter that
         reads a shared device is the *same* solver variable as the one
         the condition tests. *)
      let rename = unifier ctx app2 app1 in
      let import_term t =
        Term.subst
          (List.map
             (fun v -> (v, Term.Var (rename (qualify app1.Rule.name v))))
             (Term.free_vars t))
          t
      in
      let bindings =
        qualified_bindings ctx app2 @ qualified_bindings ctx ~rename app1
      in
      let results =
        List.filter_map
          (fun (a1, effect, _cond) ->
            let q v = qualify app2.Rule.name v in
            let cond_q = qualified_cond rename in
            match effect with
            | `Eq (var, value) ->
              let f =
                Formula.conj [ cond_q; Formula.eq (Term.Var (q var)) (import_term value) ]
              in
              Some
                (solved_effect ctx [ app1; app2 ] ~bindings f
                   ~verb:(Printf.sprintf "%s sets %s" a1.Rule.command var)
                   ~rule_id:r2.Rule.rule_id)
            | `Ge (var, bound) ->
              let f =
                Formula.conj [ cond_q; Formula.ge (Term.Var (q var)) (import_term bound) ]
              in
              Some
                (solved_effect ctx [ app1; app2 ] ~bindings f
                   ~verb:(Printf.sprintf "%s raises %s" a1.Rule.command var)
                   ~rule_id:r2.Rule.rule_id)
            | `Le (var, bound) ->
              let f =
                Formula.conj [ cond_q; Formula.le (Term.Var (q var)) (import_term bound) ]
              in
              Some
                (solved_effect ctx [ app1; app2 ] ~bindings f
                   ~verb:(Printf.sprintf "%s lowers %s" a1.Rule.command var)
                   ~rule_id:r2.Rule.rule_id)
            | `Dir (var, pol) ->
              let can = Channels.polarity_can_satisfy _cond var pol in
              let opposite =
                Channels.polarity_can_satisfy _cond var
                  (match pol with Effects.Incr -> Effects.Decr | Effects.Decr -> Effects.Incr)
              in
              if can then
                Some
                  (Threat.EC, None, Threat.Confirmed,
                   Printf.sprintf "%s pushes %s toward satisfying %s's condition"
                     a1.Rule.command var r2.Rule.rule_id)
              else if opposite then
                Some
                  (Threat.DC, None, Threat.Confirmed,
                   Printf.sprintf "%s pushes %s away from %s's condition" a1.Rule.command
                     var r2.Rule.rule_id)
              else None
            | `Touches var ->
              Some
                (Threat.EC, None, Threat.Confirmed,
                 Printf.sprintf "%s writes %s used in %s's condition" a1.Rule.command var
                   r2.Rule.rule_id))
          all_effects
      in
      (* report at most one EC and one DC per direction; prefer a
         decisive entry over an undecided one for the same category *)
      let pick cat =
        let of_cat = List.filter (fun (c, _, _, _) -> c = cat) results in
        match List.find_opt (fun (_, _, sev, _) -> not (Threat.is_undecided sev)) of_cat with
        | Some e -> Some e
        | None -> ( match of_cat with e :: _ -> Some e | [] -> None)
      in
      List.filter_map
        (fun entry ->
          match entry with
          | Some (cat, witness, severity, detail) ->
            Some
              { (Threat.make cat (app1, r1) (app2, r2) ~severity detail) with Threat.witness }
          | None -> None)
        [ pick Threat.EC; pick Threat.DC ]

let detect_condition_interference ctx p1 p2 =
  detect_condition_interference_dir ctx p1 p2 @ detect_condition_interference_dir ctx p2 p1

(* -- top level ------------------------------------------------------------- *)

(** All CAI threats between two rules. *)
let detect_pair ctx (p1 : tagged_rule) (p2 : tagged_rule) =
  let app1, r1 = p1 and app2, r2 = p2 in
  if app1.Rule.name = app2.Rule.name && r1.Rule.rule_id = r2.Rule.rule_id then []
  else
    detect_ar ctx p1 p2 @ detect_gc ctx p1 p2
    @ detect_trigger_interference ctx p1 p2
    @ detect_condition_interference ctx p1 p2

(* -- planning and batched parallel execution ------------------------------- *)

(* Something in detect_pair has an action of app1 that can reach r2's
   condition state. Solver-free. *)
let has_condition_effects ctx ((app1, r1) : tagged_rule) ((app2, r2) as p2 : tagged_rule) =
  (not (r1.Rule.rule_id = r2.Rule.rule_id && app1.Rule.name = app2.Rule.name))
  && List.exists
       (fun a1 -> fst (condition_effects ctx (app1, a1) p2) <> [])
       r1.Rule.actions

(** Cheap, solver-free over-approximation of [detect_pair <> []]: the
    per-category candidate pre-filters (action targets, goal effects,
    attribute/environment channel maps) without any constraint solving.
    A pair that fails every pre-filter cannot produce a threat, so the
    planner drops it before scheduling. *)
let pair_candidate ctx ((app1, r1) as p1 : tagged_rule) ((app2, r2) as p2 : tagged_rule) =
  if app1.Rule.name = app2.Rule.name && r1.Rule.rule_id = r2.Rule.rule_id then false
  else
    let may_trigger ((appa, ra) : tagged_rule) pb =
      List.exists
        (fun a -> action_triggers ~approx:true ctx (appa, a) pb <> None)
        ra.Rule.actions
    in
    ar_candidate ctx p1 p2
    || conflicting_goal_pairs ctx p1 p2 <> []
    || may_trigger p1 p2 || may_trigger p2 p1
    || has_condition_effects ctx p1 p2 || has_condition_effects ctx p2 p1

(** The audit plan: every cross-app rule pair that survives the cheap
    pre-filters, in the deterministic sequential enumeration order. *)
let candidate_pairs ctx (apps : Rule.smartapp list) =
  let tagged =
    List.concat_map (fun app -> List.map (fun r -> (app, r)) app.Rule.rules) apps
  in
  let rec pairs = function
    | [] -> []
    | p :: rest -> List.map (fun q -> (p, q)) rest @ pairs rest
  in
  pairs tagged
  |> List.filter (fun (((app1, _) : tagged_rule), ((app2, _) : tagged_rule)) ->
         app1.Rule.name <> app2.Rule.name)
  |> List.filter (fun (p1, p2) -> pair_candidate ctx p1 p2)
  |> Array.of_list

(* -- crash-isolated execution ---------------------------------------------- *)

type failure = {
  pair : string;
  apps : string * string;  (** the two app names, for failure attribution *)
  exn : string;
  backtrace : string;
}

type audit_result = {
  threats : Threat.t list;
  undecided : int;  (** threats carrying an [Undecided] severity *)
  failures : failure list;  (** pairs whose detection crashed twice *)
  retried : int;  (** pairs retried on the coordinator after a crash *)
  shed : int;
      (** pairs never audited because the run was cancelled (deadline or
          load shed). A result with [shed > 0] is incomplete and must be
          treated conservatively — it can support "threats found" but
          never "no threat" *)
}

let pair_label ((app1, r1) : tagged_rule) ((app2, r2) : tagged_rule) =
  Printf.sprintf "%s/%s ~ %s/%s" app1.Rule.name r1.Rule.rule_id app2.Rule.name
    r2.Rule.rule_id

let merge_ctx into c =
  into.solver_calls <- into.solver_calls + c.solver_calls;
  into.escalations <- into.escalations + c.escalations;
  into.undecided_solves <- into.undecided_solves + c.undecided_solves;
  Hashtbl.iter
    (fun k v ->
      if not (Hashtbl.mem into.overlap_cache k) then Hashtbl.add into.overlap_cache k v)
    c.overlap_cache

(* Run a planned pair array with per-item crash isolation. Each pair is
   detected under [Schedule.capture], so one raising pair cannot tear
   down its batch or the audit. [jobs <= 1] detects sequentially in the
   caller's ctx. Otherwise batches fan out across domains, each with its
   own ctx — the overlap cache and counters are mutable and not
   thread-safe — and the per-domain ctxs are merged back *before* the
   coordinator retries failed pairs, so a retry sees the same cache
   state the sequential mode would. Failed pairs are retried exactly
   once on the coordinator domain; pairs that fail both attempts land in
   [failures], in pair order. Per-pair detection does not depend on
   cache contents, so threats, undecided set and failures are identical
   (and identically ordered) for every [jobs]. *)
let run_pairs ~jobs ?(cancel = fun () -> false) ctx
    (pairs : (tagged_rule * tagged_rule) array) =
  (* [None] = never attempted: the run was cancelled before this pair. *)
  let detect_one c (p1, p2) =
    if cancel () then None else Some (Schedule.capture (fun () -> detect_pair c p1 p2))
  in
  let first_pass =
    if jobs <= 1 then Array.map (detect_one ctx) pairs
    else begin
      let results =
        Schedule.map_batches ~cancel ~jobs
          (fun batch ->
            let c = create ctx.config in
            (Array.map (detect_one c) batch, c))
          pairs
      in
      Array.iter (function Some (_, c) -> merge_ctx ctx c | None -> ()) results;
      (* flatten batch slots back to per-pair slots, [None] for whole
         batches the cancellation skipped *)
      let batch_sizes = Array.map Array.length (Schedule.batches ~jobs pairs) in
      Array.concat
        (List.concat
           (List.mapi
              (fun i slot ->
                match slot with
                | Some (rs, _) -> [ rs ]
                | None -> [ Array.make batch_sizes.(i) None ])
              (Array.to_list results)))
    end
  in
  let retried = ref 0 and failures = ref [] and threats = ref [] and shed = ref 0 in
  Array.iteri
    (fun i result ->
      let p1, p2 = pairs.(i) in
      match result with
      | None -> incr shed
      | Some (Ok ts) -> threats := ts :: !threats
      | Some (Error (_ : Schedule.exn_info)) -> (
        incr retried;
        match detect_one ctx (p1, p2) with
        | None -> incr shed
        | Some (Ok ts) -> threats := ts :: !threats
        | Some (Error info) ->
          failures :=
            {
              pair = pair_label p1 p2;
              apps = ((fst p1).Rule.name, (fst p2).Rule.name);
              exn = info.Schedule.exn;
              backtrace = info.Schedule.backtrace;
            }
            :: !failures))
    first_pass;
  let threats = List.concat (List.rev !threats) in
  {
    threats;
    undecided =
      List.length (List.filter (fun t -> Threat.is_undecided t.Threat.severity) threats);
    failures = List.rev !failures;
    retried = !retried;
    shed = !shed;
  }

(** Crash-isolated audit of an explicit pair plan. *)
let audit_pairs ?(jobs = 1) ?cancel ctx pairs = run_pairs ~jobs ?cancel ctx pairs

let new_app_pairs ctx (db : Homeguard_rules.Rule_db.t) (new_app : Rule.smartapp) =
  let installed = Homeguard_rules.Rule_db.all_rules db in
  List.concat_map
    (fun new_rule ->
      List.filter_map
        (fun ((old_app, old_rule) : tagged_rule) ->
          if old_app.Rule.name = new_app.Rule.name then None
          else Some ((new_app, new_rule), (old_app, old_rule)))
        installed)
    new_app.Rule.rules
  |> List.filter (fun (p1, p2) -> pair_candidate ctx p1 p2)
  |> Array.of_list

(** Install-time audit of a newly installed app against every
    already-installed app recorded in [db] (the online flow, §IV-C). *)
let audit_new_app ?(jobs = 1) ?cancel ctx db new_app =
  run_pairs ~jobs ?cancel ctx (new_app_pairs ctx db new_app)

(* -- pair-cached audit ------------------------------------------------------ *)

(* One app pair's full rule-pair matrix, with the same per-pair crash
   isolation and single coordinator retry [run_pairs] gives the flat
   plan. Failed rule pairs land in [failures] and contribute no
   threats, exactly like the flat path. *)
let group_matrix ctx ~failures ~retried (a : Rule.smartapp) (b : Rule.smartapp) :
    pair_matrix =
  let detect p1 p2 =
    match Schedule.capture (fun () -> detect_pair ctx p1 p2) with
    | Ok ts -> ts
    | Error (_ : Schedule.exn_info) -> (
      incr retried;
      match Schedule.capture (fun () -> detect_pair ctx p1 p2) with
      | Ok ts -> ts
      | Error info ->
        failures :=
          {
            pair = pair_label p1 p2;
            apps = (a.Rule.name, b.Rule.name);
            exn = info.Schedule.exn;
            backtrace = info.Schedule.backtrace;
          }
          :: !failures;
        [])
  in
  Array.of_list
    (List.map
       (fun ra ->
         Array.of_list
           (List.map
              (fun rb ->
                let p1 = (a, ra) and p2 = (b, rb) in
                if pair_candidate ctx p1 p2 then detect p1 p2 else [])
              b.Rule.rules))
       a.Rule.rules)

let matrix_has_undecided (m : pair_matrix) =
  Array.exists
    (Array.exists (List.exists (fun t -> Threat.is_undecided t.Threat.severity)))
    m

(* Pair-cached exhaustive audit. Matrices are fetched or computed per
   app pair (in install order — detection is orientation-sensitive),
   then reassembled in the flat plan's enumeration order: for each
   tagged rule, all later apps' rules in order. Threats, failures and
   the undecided count are byte-identical to the flat path; only the
   order in which pairs are *computed* differs, which no detection
   depends on. Groups that crashed or contain an undecided threat are
   never stored — an undecided result is a budget artifact, not a
   verdict, and must be recomputed (and possibly escalated) next time.
   Once [cancel] fires, every remaining group is shed whole: the shed
   count is the groups' full rule-pair cross product, an
   over-approximation of the flat plan's candidate count (counting
   exactly would require planning the groups we are shedding to avoid
   planning), with the same sign: [shed > 0] iff incomplete. *)
let audit_all_grouped ?(cancel = fun () -> false) pc ctx (apps : Rule.smartapp list) =
  let apps_a = Array.of_list apps in
  let n = Array.length apps_a in
  let failures = ref [] and retried = ref 0 in
  let cancelled = ref false and shed = ref 0 in
  let matrices = Hashtbl.create 16 in
  for p = 0 to n - 1 do
    for q = p + 1 to n - 1 do
      let a = apps_a.(p) and b = apps_a.(q) in
      if a.Rule.name <> b.Rule.name then
        if !cancelled || cancel () then begin
          cancelled := true;
          shed := !shed + (List.length a.Rule.rules * List.length b.Rule.rules)
        end
        else begin
        let pa =
          {
            pa_apps = (a, b);
            pa_bindings = (ctx.config.app_constraints a, ctx.config.app_constraints b);
            pa_unify =
              List.concat_map
                (fun v1 ->
                  List.filter_map
                    (fun v2 -> if same_device ctx a v1 b v2 then Some (v1, v2) else None)
                    (device_inputs ctx b))
                (device_inputs ctx a);
            pa_fingerprint = ctx.pair_fp;
          }
        in
        let m =
          match pc.pair_lookup pa with
          | Some m -> m
          | None ->
            let before = !failures in
            let m = group_matrix ctx ~failures ~retried a b in
            if !failures == before && not (matrix_has_undecided m) then
              pc.pair_store pa m;
            m
        in
        Hashtbl.replace matrices (p, q) m
      end
    done
  done;
  let threats = ref [] in
  for p = 0 to n - 1 do
    List.iteri
      (fun i _ ->
        for q = p + 1 to n - 1 do
          match Hashtbl.find_opt matrices (p, q) with
          | Some m -> Array.iter (fun ts -> threats := ts :: !threats) m.(i)
          | None -> ()
        done)
      apps_a.(p).Rule.rules
  done;
  let threats = List.concat (List.rev !threats) in
  {
    threats;
    undecided =
      List.length (List.filter (fun t -> Threat.is_undecided t.Threat.severity) threats);
    failures = List.rev !failures;
    retried = !retried;
    shed = !shed;
  }

(** Exhaustive pairwise audit over a set of apps (the corpus audit,
    §VIII-B). With a [pair_cache] configured the plan is grouped by app
    pair and cached results replace planning and detection wholesale
    ([jobs] is ignored — groups run on the coordinator; output is
    byte-identical to the flat plan at every job count). *)
let audit_all ?(jobs = 1) ?cancel ctx (apps : Rule.smartapp list) =
  match ctx.config.pair_cache with
  | Some pc -> audit_all_grouped ?cancel pc ctx apps
  | None -> run_pairs ~jobs ?cancel ctx (candidate_pairs ctx apps)

(** Threat-list views of the audits, for callers that only consume the
    reports (the structured counts stay available via [audit_*]). *)
let detect_new_app ?jobs ctx db new_app = (audit_new_app ?jobs ctx db new_app).threats

let detect_all ?jobs ctx apps = (audit_all ?jobs ctx apps).threats
