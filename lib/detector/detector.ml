(** The CAI threat detection engine (paper §VI).

    Pairwise analysis of rules: candidate filtering against the action/
    channel maps, then overlapping-condition detection as constraint
    satisfaction. Solver results are memoized per rule pair so CT/SD/LT
    reuse the AR solve and DC reuses the EC solve (Fig 9's green lines);
    pass [~reuse:false] to measure the unmemoized cost (ablation A1). *)

module Rule = Homeguard_rules.Rule
module Formula = Homeguard_solver.Formula
module Term = Homeguard_solver.Term
module Solver = Homeguard_solver.Solver
module Store = Homeguard_solver.Store
module Domain = Homeguard_solver.Domain
module Capability = Homeguard_st.Capability
module Env = Homeguard_st.Env_feature

type tagged_rule = Rule.smartapp * Rule.t

type config = {
  same_device : Rule.smartapp -> string -> Rule.smartapp -> string -> bool;
      (** do two input variables denote the same device? *)
  app_constraints : Rule.smartapp -> (string * Term.t) list;
      (** configuration values: user-input variable bindings *)
  reuse : bool;  (** memoize constraint solving across threat types *)
}

(** Offline corpus mode: two inputs denote the same device when they
    share a capability, with [capability.switch] disambiguated by device
    class from titles/descriptions (paper §VIII-B). A generic,
    unclassifiable switch may be bound to any switch device, so it
    matches every switch class (this is what lets Energy Saver's generic
    "devices to turn off" disable It's Too Hot's air conditioner). *)
let offline_same_device app1 v1 app2 v2 =
  match (Rule.capability_of_input app1 v1, Rule.capability_of_input app2 v2) with
  | Some c1, Some c2 when c1 = c2 ->
    if c1 = "switch" || c1 = "switchLevel" then begin
      let cls1 = Effects.classify app1 v1 and cls2 = Effects.classify app2 v2 in
      cls1 = cls2 || cls1 = Effects.Generic_switch || cls2 = Effects.Generic_switch
    end
    else true
  | _ -> false

let offline_config = { same_device = offline_same_device; app_constraints = (fun _ -> []); reuse = true }

type ctx = {
  config : config;
  overlap_cache : (string * string, Solver.model option) Hashtbl.t;
  mutable solver_calls : int;  (** number of actual constraint solves *)
}

let create config = { config; overlap_cache = Hashtbl.create 64; solver_calls = 0 }

(* -- variable qualification and unification ------------------------------ *)

let is_shared_var var =
  var = "location.mode" || var = "app.touch"
  || (String.length var > 5 && String.sub var 0 5 = "time.")
  || (String.length var > 4 && String.sub var 0 4 = "env.")

let qualify app_name var = if is_shared_var var then var else app_name ^ "::" ^ var

(* Split a qualified variable "App::v.attr" into its base and attribute. *)
let split_attr var =
  match String.rindex_opt var '.' with
  | Some i -> (String.sub var 0 i, Some (String.sub var (i + 1) (String.length var - i - 1)))
  | None -> (var, None)

(* Build the unification renaming: matched device variables of app2 are
   renamed to app1's qualified name so shared state is shared in the
   solver. *)
let unifier ctx (app1 : Rule.smartapp) (app2 : Rule.smartapp) =
  let pairs =
    List.concat_map
      (fun v1 ->
        List.filter_map
          (fun v2 ->
            if ctx.config.same_device app1 v1 app2 v2 then
              Some (qualify app2.Rule.name v2, qualify app1.Rule.name v1)
            else None)
          (Rule.device_inputs app2))
      (Rule.device_inputs app1)
  in
  fun var ->
    let base, attr = split_attr var in
    match List.assoc_opt base pairs with
    | Some base' -> ( match attr with Some a -> base' ^ "." ^ a | None -> base')
    | None -> var

let rename_formula rename f =
  let sub = List.map (fun v -> (v, Term.Var (rename v))) (Formula.free_vars f) in
  Formula.subst sub f

(* Qualified situation (trigger constraint + data + predicate) of a rule,
   with app-level config-value constraints folded in. *)
let qualified_formula ctx ~situation (app : Rule.smartapp) (rule : Rule.t) rename =
  let base = if situation then Rule.situation rule else
      Formula.conj
        (List.map (fun (v, t) -> Formula.eq (Term.Var v) t) rule.Rule.condition.Rule.data
        @ [ rule.Rule.condition.Rule.predicate ])
  in
  let config_eqs =
    List.map
      (fun (v, t) -> Formula.eq (Term.Var v) t)
      (ctx.config.app_constraints app)
  in
  let f = Formula.conj (base :: config_eqs) in
  let qualified =
    rename_formula (fun v -> rename (qualify app.Rule.name v)) f
  in
  qualified

(* Store typing qualified variables by resolving each base back to its
   app's input declarations. *)
let store_for ctx apps formula =
  ignore ctx;
  let cap_of_var base =
    match String.index_opt base ':' with
    | Some i when i + 1 < String.length base && base.[i + 1] = ':' ->
      let app_name = String.sub base 0 i in
      let var = String.sub base (i + 2) (String.length base - i - 2) in
      List.find_map
        (fun (app : Rule.smartapp) ->
          if app.Rule.name = app_name then Rule.capability_of_input app var else None)
        apps
    | _ -> None
  in
  Rule.store_for_vars ~cap_of_var (Formula.free_vars formula)

(* Memoized satisfiability of the two rules' combined formulas. The
   solved formula [conj [f1; f2]] is symmetric in the two rules, so the
   key is ordered canonically: a reverse-direction query hits the cache
   entry of the forward solve instead of solving again. *)
let solve_overlap ctx ~situation ((app1, r1) : tagged_rule) ((app2, r2) : tagged_rule) =
  let key =
    let id1 = app1.Rule.name ^ "/" ^ r1.Rule.rule_id
    and id2 = app2.Rule.name ^ "/" ^ r2.Rule.rule_id in
    let lo, hi = if id1 <= id2 then (id1, id2) else (id2, id1) in
    ((if situation then "sit:" else "cond:") ^ lo, hi)
  in
  let compute () =
    ctx.solver_calls <- ctx.solver_calls + 1;
    let rename = unifier ctx app1 app2 in
    let f1 = qualified_formula ctx ~situation app1 r1 (fun v -> v) in
    let f2 = qualified_formula ctx ~situation app2 r2 rename in
    let f = Formula.conj [ f1; f2 ] in
    let store = store_for ctx [ app1; app2 ] f in
    Solver.satisfiable store f
  in
  if not ctx.config.reuse then compute ()
  else
    match Hashtbl.find_opt ctx.overlap_cache key with
    | Some r -> r
    | None ->
      let r = compute () in
      Hashtbl.replace ctx.overlap_cache key r;
      r

(** Overlapping situations: trigger+condition of both rules jointly
    satisfiable (used by AR, GC). *)
let situations_overlap ctx p1 p2 = solve_overlap ctx ~situation:true p1 p2

(** Overlapping conditions only (used by trigger/condition interference). *)
let conditions_overlap ctx p1 p2 = solve_overlap ctx ~situation:false p1 p2

(* -- Action-Interference (AR, GC) ----------------------------------------- *)

let same_action_target ctx (app1, a1) (app2, a2) =
  match (a1.Rule.target, a2.Rule.target) with
  | Rule.Act_device v1, Rule.Act_device v2 -> ctx.config.same_device app1 v1 app2 v2
  | Rule.Act_location_mode, Rule.Act_location_mode -> true
  | _ -> false

let const_param a = match a.Rule.params with (Term.Int _ | Term.Str _) as t :: _ -> Some t | _ -> None

(* Contradictory commands: declared opposites, or same command with
   different constant parameters. *)
let commands_contradict (app1, (a1 : Rule.action)) (app2, (a2 : Rule.action)) =
  ignore app1;
  ignore app2;
  let opposite =
    List.exists
      (fun cap -> Capability.contradicts cap a1.Rule.command a2.Rule.command)
      (Capability.capabilities_with_command a1.Rule.command)
  in
  let conflicting_params =
    a1.Rule.command = a2.Rule.command
    &&
    match (const_param a1, const_param a2) with
    | Some p1, Some p2 -> p1 <> p2
    | _ -> false
  in
  opposite || conflicting_params

(** Actuator-Race candidate: some pair of actions issues contradictory
    commands to the same actuator. *)
let ar_candidate ctx ((app1, r1) : tagged_rule) ((app2, r2) : tagged_rule) =
  List.exists
    (fun a1 ->
      List.exists
        (fun a2 ->
          same_action_target ctx (app1, a1) (app2, a2)
          && commands_contradict (app1, a1) (app2, a2))
        r2.Rule.actions)
    r1.Rule.actions

let triggers_unify ctx ((app1, r1) : tagged_rule) ((app2, r2) : tagged_rule) =
  match (r1.Rule.trigger, r2.Rule.trigger) with
  | Rule.Event e1, Rule.Event e2 -> (
    e1.attribute = e2.attribute
    &&
    match (e1.subject, e2.subject) with
    | Rule.Device v1, Rule.Device v2 -> ctx.config.same_device app1 v1 app2 v2
    | Rule.Location, Rule.Location -> true
    | Rule.App_touch, Rule.App_touch -> true
    | _ -> false)
  | Rule.Scheduled s1, Rule.Scheduled s2 -> (
    (* two fixed times must coincide; anything involving a period or an
       unknown time may overlap *)
    match (s1.at_minutes, s2.at_minutes) with
    | Some a1, Some a2 -> a1 = a2
    | _ -> true)
  | _ -> false

(* AR uses the conditions-only overlap: the paper's formalism asks for
   identical triggers, but its evaluation reports races between rules
   whose independent triggers merely can co-occur (e.g. LetThereBeDark's
   door-close vs UndeadEarlyWarning's door-open, §VIII-B item 4), and
   Fig 9 has CT/SD/LT reusing "the solving result of AR" — which is
   exactly this conditions overlap. Mutually exclusive *conditions*
   still rule the race out. *)
let detect_ar ctx p1 p2 =
  if ar_candidate ctx p1 p2 then
    match conditions_overlap ctx p1 p2 with
    | Some witness ->
      let app1, r1 = p1 and app2, r2 = p2 in
      let detail =
        Printf.sprintf "contradictory commands on the same actuator (%s vs %s)"
          (String.concat "," (List.map (fun a -> a.Rule.command) r1.Rule.actions))
          (String.concat "," (List.map (fun a -> a.Rule.command) r2.Rule.actions))
      in
      [ Threat.make Threat.AR (app1, r1) (app2, r2) ~witness detail ]
    | None -> []
  else []

(* Pairs of environment goals the two rules' actions push in opposite
   directions (solver-free; the GC candidate filter). *)
let conflicting_goal_pairs ctx ((app1, r1) : tagged_rule) ((app2, r2) : tagged_rule) =
  List.concat_map
    (fun a1 ->
      List.concat_map
        (fun a2 ->
          if same_action_target ctx (app1, a1) (app2, a2) then []
          else
            Effects.conflicting_goals
              (Effects.effects_of_action app1 a1)
              (Effects.effects_of_action app2 a2))
        r2.Rule.actions)
    r1.Rule.actions
  |> List.sort_uniq compare

let detect_gc ctx p1 p2 =
  let app1, r1 = p1 and app2, r2 = p2 in
  let goal_pairs = conflicting_goal_pairs ctx p1 p2 in
  if goal_pairs = [] then []
  else
    match situations_overlap ctx p1 p2 with
    | Some witness ->
      let detail =
        Printf.sprintf "actions with contradictory goals over %s"
          (String.concat ", " (List.map Env.to_string goal_pairs))
      in
      [ Threat.make Threat.GC (app1, r1) (app2, r2) ~witness detail ]
    | None -> []

(* -- Trigger-Interference (CT, SD, LT) ------------------------------------ *)

(* Does action a1 (of app1/r1) satisfy r2's trigger?  Returns a
   human-readable channel description when it can. [~approx:true] skips
   the written-value compatibility solve (over-approximating: a value
   mismatch is treated as compatible) so the check is solver-free and
   usable as a planning pre-filter. *)
let action_triggers ?(approx = false) ctx ((app1 : Rule.smartapp), (a1 : Rule.action)) ((app2, r2) : tagged_rule) =
  match r2.Rule.trigger with
  | Rule.Scheduled _ -> None
  | Rule.Event { subject; attribute; constraint_ } -> (
    (* way 1: direct attribute write *)
    let direct =
      List.find_map
        (fun (w : Channels.attr_write) ->
          let subject_matches =
            match (w.Channels.w_target, subject) with
            | Rule.Act_device v1, Rule.Device v2 ->
              ctx.config.same_device app1 v1 app2 v2 && w.Channels.w_attr = attribute
            | Rule.Act_location_mode, Rule.Location -> attribute = "mode"
            | _ -> false
          in
          if not subject_matches then None
          else
            (* value compatibility: written value must satisfy the
               trigger constraint *)
            let subject_var =
              match subject with
              | Rule.Device v2 -> qualify app2.Rule.name (v2 ^ "." ^ attribute)
              | Rule.Location -> "location.mode"
              | Rule.App_touch -> "app.touch"
            in
            let trig =
              rename_formula (fun v -> qualify app2.Rule.name v) constraint_
            in
            let value_ok =
              match w.Channels.w_value with
              | Some ((Term.Int _ | Term.Str _) as value) when not approx ->
                let f = Formula.conj [ trig; Formula.eq (Term.Var subject_var) value ] in
                ctx.solver_calls <- ctx.solver_calls + 1;
                Solver.sat (store_for ctx [ app1; app2 ] f) f
              | _ -> true
            in
            if value_ok then
              Some
                (Printf.sprintf "command %s sets %s, the trigger of %s" a1.Rule.command
                   attribute r2.Rule.rule_id)
            else None)
        (Channels.attribute_writes app1 a1)
    in
    match direct with
    | Some _ -> direct
    | None -> (
      (* way 2: through the environment *)
      match Channels.sensed_feature_of_trigger r2.Rule.trigger with
      | None -> None
      | Some feature ->
        let effects = Channels.environment_effects app1 a1 in
        List.find_map
          (fun (f, pol) ->
            if f <> feature then None
            else
              let subject_var =
                match subject with
                | Rule.Device v2 -> v2 ^ "." ^ attribute
                | Rule.Location -> "location." ^ attribute
                | Rule.App_touch -> "app.touch"
              in
              let compatible =
                constraint_ = Formula.True
                || Channels.polarity_can_satisfy constraint_ subject_var pol
              in
              if compatible then
                Some
                  (Printf.sprintf "command %s changes %s sensed by %s's trigger"
                     a1.Rule.command (Env.to_string f) r2.Rule.rule_id)
              else None)
          effects))

let ct_edge ctx ((app1, r1) as p1 : tagged_rule) ((app2, r2) as p2 : tagged_rule) =
  if r1.Rule.rule_id = r2.Rule.rule_id && app1.Rule.name = app2.Rule.name then None
  else
    let channel =
      List.find_map (fun a1 -> action_triggers ctx (app1, a1) (app2, r2)) r1.Rule.actions
    in
    match channel with
    | None -> None
    | Some detail -> (
      match conditions_overlap ctx p1 p2 with
      | Some witness -> Some (witness, detail)
      | None -> None)

let detect_trigger_interference ctx p1 p2 =
  let app1, r1 = p1 and app2, r2 = p2 in
  let e12 = ct_edge ctx p1 p2 in
  let e21 = ct_edge ctx p2 p1 in
  let ar_cand = ar_candidate ctx p1 p2 in
  let ct_threats =
    (match e12 with
    | Some (w, detail) -> [ Threat.make Threat.CT (app1, r1) (app2, r2) ~witness:w detail ]
    | None -> [])
    @
    match e21 with
    | Some (w, detail) -> [ Threat.make Threat.CT (app2, r2) (app1, r1) ~witness:w detail ]
    | None -> []
  in
  let sd_threats =
    match (e12, ar_cand) with
    | Some (w, _), true ->
      [
        Threat.make Threat.SD (app1, r1) (app2, r2) ~witness:w
          (Printf.sprintf "%s triggers %s whose action undoes it" r1.Rule.rule_id
             r2.Rule.rule_id);
      ]
    | _ -> (
      match (e21, ar_cand) with
      | Some (w, _), true ->
        [
          Threat.make Threat.SD (app2, r2) (app1, r1) ~witness:w
            (Printf.sprintf "%s triggers %s whose action undoes it" r2.Rule.rule_id
               r1.Rule.rule_id);
        ]
      | _ -> [])
  in
  let lt_threats =
    match (e12, e21, ar_cand) with
    | Some (w, _), Some _, true ->
      [
        Threat.make Threat.LT (app1, r1) (app2, r2) ~witness:w
          "rules trigger each other with contradictory actions";
      ]
    | _ -> []
  in
  ct_threats @ sd_threats @ lt_threats

(* -- Condition-Interference (EC, DC) -------------------------------------- *)

(* Effect constraints of action a1 on r2's condition variables. The
   predicate is used with data constraints expanded so pure bindings
   (e.g. [t = sensor.temperature] feeding only the trigger) don't count
   as condition state. *)
let condition_effects ctx ((app1 : Rule.smartapp), (a1 : Rule.action)) ((app2, r2) : tagged_rule) =
  let cond = Rule.expanded_predicate r2 in
  let cond_vars = Formula.free_vars cond in
  (* way 1: direct writes to condition-tested attributes *)
  let direct =
    List.concat_map
      (fun (w : Channels.attr_write) ->
        List.filter_map
          (fun var ->
            let base, attr = split_attr var in
            let matches =
              match (w.Channels.w_target, attr) with
              | Rule.Act_device v1, Some a when a = w.Channels.w_attr ->
                base <> "location" && ctx.config.same_device app1 v1 app2 base
              | Rule.Act_location_mode, Some "mode" -> base = "location"
              | _ -> false
            in
            if not matches then None
            else
              match w.Channels.w_value with
              | Some value -> Some (`Eq (var, value))
              | None -> Some (`Touches var))
          cond_vars)
      (Channels.attribute_writes app1 a1)
  in
  (* way 2: environment effects on sensed condition variables *)
  let env_effects =
    List.concat_map
      (fun (feature, pol) ->
        List.map
          (fun var ->
            match (a1.Rule.params, pol) with
            | ((Term.Int _ | Term.Var _) as p) :: _, Effects.Incr
              when a1.Rule.command = "setHeatingSetpoint" ->
              `Ge (var, p)
            | ((Term.Int _ | Term.Var _) as p) :: _, Effects.Decr
              when a1.Rule.command = "setCoolingSetpoint" ->
              `Le (var, p)
            | _ -> `Dir (var, pol))
          (Channels.vars_sensing feature cond))
      (Channels.environment_effects app1 a1)
  in
  (direct @ env_effects, cond)

let detect_condition_interference_dir ctx ((app1, r1) : tagged_rule)
    ((app2, r2) as p2 : tagged_rule) =
  if r1.Rule.rule_id = r2.Rule.rule_id && app1.Rule.name = app2.Rule.name then []
  else
    let all_effects =
      List.concat_map
        (fun a1 ->
          let effects, cond = condition_effects ctx (app1, a1) p2 in
          List.map (fun e -> (a1, e, cond)) effects)
        r1.Rule.actions
    in
    if all_effects = [] then []
    else
      (* merge effect constraints with R2's condition and solve; solvable
         means the condition may be enabled, otherwise disabled *)
      let qualified_cond rename =
        qualified_formula ctx ~situation:false app2 r2 rename
      in
      (* Rename app1's matched device variables to app2's qualified
         names (as [solve_overlap] does) so an action parameter that
         reads a shared device is the *same* solver variable as the one
         the condition tests. *)
      let rename = unifier ctx app2 app1 in
      let import_term t =
        Term.subst
          (List.map
             (fun v -> (v, Term.Var (rename (qualify app1.Rule.name v))))
             (Term.free_vars t))
          t
      in
      let results =
        List.filter_map
          (fun (a1, effect, _cond) ->
            let q v = qualify app2.Rule.name v in
            let cond_q = qualified_cond rename in
            match effect with
            | `Eq (var, value) ->
              let f =
                Formula.conj [ cond_q; Formula.eq (Term.Var (q var)) (import_term value) ]
              in
              ctx.solver_calls <- ctx.solver_calls + 1;
              let sat = Solver.satisfiable (store_for ctx [ app1; app2 ] f) f in
              Some
                (match sat with
                | Some w ->
                  (Threat.EC, Some w,
                   Printf.sprintf "%s sets %s enabling %s's condition" a1.Rule.command var
                     r2.Rule.rule_id)
                | None ->
                  (Threat.DC, None,
                   Printf.sprintf "%s sets %s disabling %s's condition" a1.Rule.command var
                     r2.Rule.rule_id))
            | `Ge (var, bound) ->
              let f =
                Formula.conj [ cond_q; Formula.ge (Term.Var (q var)) (import_term bound) ]
              in
              ctx.solver_calls <- ctx.solver_calls + 1;
              let sat = Solver.satisfiable (store_for ctx [ app1; app2 ] f) f in
              Some
                (match sat with
                | Some w ->
                  (Threat.EC, Some w,
                   Printf.sprintf "%s raises %s enabling %s's condition" a1.Rule.command var
                     r2.Rule.rule_id)
                | None ->
                  (Threat.DC, None,
                   Printf.sprintf "%s raises %s disabling %s's condition" a1.Rule.command
                     var r2.Rule.rule_id))
            | `Le (var, bound) ->
              let f =
                Formula.conj [ cond_q; Formula.le (Term.Var (q var)) (import_term bound) ]
              in
              ctx.solver_calls <- ctx.solver_calls + 1;
              let sat = Solver.satisfiable (store_for ctx [ app1; app2 ] f) f in
              Some
                (match sat with
                | Some w ->
                  (Threat.EC, Some w,
                   Printf.sprintf "%s lowers %s enabling %s's condition" a1.Rule.command var
                     r2.Rule.rule_id)
                | None ->
                  (Threat.DC, None,
                   Printf.sprintf "%s lowers %s disabling %s's condition" a1.Rule.command
                     var r2.Rule.rule_id))
            | `Dir (var, pol) ->
              let can = Channels.polarity_can_satisfy _cond var pol in
              let opposite =
                Channels.polarity_can_satisfy _cond var
                  (match pol with Effects.Incr -> Effects.Decr | Effects.Decr -> Effects.Incr)
              in
              if can then
                Some
                  (Threat.EC, None,
                   Printf.sprintf "%s pushes %s toward satisfying %s's condition"
                     a1.Rule.command var r2.Rule.rule_id)
              else if opposite then
                Some
                  (Threat.DC, None,
                   Printf.sprintf "%s pushes %s away from %s's condition" a1.Rule.command
                     var r2.Rule.rule_id)
              else None
            | `Touches var ->
              Some
                (Threat.EC, None,
                 Printf.sprintf "%s writes %s used in %s's condition" a1.Rule.command var
                   r2.Rule.rule_id))
          all_effects
      in
      (* report at most one EC and one DC per direction *)
      let pick cat =
        List.find_map
          (fun (c, w, d) -> if c = cat then Some (c, w, d) else None)
          results
      in
      List.filter_map
        (fun entry ->
          match entry with
          | Some (cat, witness, detail) ->
            Some { (Threat.make cat (app1, r1) (app2, r2) detail) with Threat.witness }
          | None -> None)
        [ pick Threat.EC; pick Threat.DC ]

let detect_condition_interference ctx p1 p2 =
  detect_condition_interference_dir ctx p1 p2 @ detect_condition_interference_dir ctx p2 p1

(* -- top level ------------------------------------------------------------- *)

(** All CAI threats between two rules. *)
let detect_pair ctx (p1 : tagged_rule) (p2 : tagged_rule) =
  let app1, r1 = p1 and app2, r2 = p2 in
  if app1.Rule.name = app2.Rule.name && r1.Rule.rule_id = r2.Rule.rule_id then []
  else
    detect_ar ctx p1 p2 @ detect_gc ctx p1 p2
    @ detect_trigger_interference ctx p1 p2
    @ detect_condition_interference ctx p1 p2

(* -- planning and batched parallel execution ------------------------------- *)

(* Something in detect_pair has an action of app1 that can reach r2's
   condition state. Solver-free. *)
let has_condition_effects ctx ((app1, r1) : tagged_rule) ((app2, r2) as p2 : tagged_rule) =
  (not (r1.Rule.rule_id = r2.Rule.rule_id && app1.Rule.name = app2.Rule.name))
  && List.exists
       (fun a1 -> fst (condition_effects ctx (app1, a1) p2) <> [])
       r1.Rule.actions

(** Cheap, solver-free over-approximation of [detect_pair <> []]: the
    per-category candidate pre-filters (action targets, goal effects,
    attribute/environment channel maps) without any constraint solving.
    A pair that fails every pre-filter cannot produce a threat, so the
    planner drops it before scheduling. *)
let pair_candidate ctx ((app1, r1) as p1 : tagged_rule) ((app2, r2) as p2 : tagged_rule) =
  if app1.Rule.name = app2.Rule.name && r1.Rule.rule_id = r2.Rule.rule_id then false
  else
    let may_trigger ((appa, ra) : tagged_rule) pb =
      List.exists
        (fun a -> action_triggers ~approx:true ctx (appa, a) pb <> None)
        ra.Rule.actions
    in
    ar_candidate ctx p1 p2
    || conflicting_goal_pairs ctx p1 p2 <> []
    || may_trigger p1 p2 || may_trigger p2 p1
    || has_condition_effects ctx p1 p2 || has_condition_effects ctx p2 p1

(** The audit plan: every cross-app rule pair that survives the cheap
    pre-filters, in the deterministic sequential enumeration order. *)
let candidate_pairs ctx (apps : Rule.smartapp list) =
  let tagged =
    List.concat_map (fun app -> List.map (fun r -> (app, r)) app.Rule.rules) apps
  in
  let rec pairs = function
    | [] -> []
    | p :: rest -> List.map (fun q -> (p, q)) rest @ pairs rest
  in
  pairs tagged
  |> List.filter (fun (((app1, _) : tagged_rule), ((app2, _) : tagged_rule)) ->
         app1.Rule.name <> app2.Rule.name)
  |> List.filter (fun (p1, p2) -> pair_candidate ctx p1 p2)
  |> Array.of_list

(* Run a planned pair array. [jobs <= 1] detects sequentially in the
   caller's ctx (the default-compatible mode). Otherwise batches are
   fanned out across domains, each with its own ctx — the overlap cache
   and the solver-call counter are mutable and not thread-safe — and the
   per-domain ctxs are merged back afterwards. Per-pair detection does
   not depend on cache contents, so the threat list is identical (and
   identically ordered) for every [jobs]. *)
let run_pairs ~jobs ctx (pairs : (tagged_rule * tagged_rule) array) =
  if jobs <= 1 then
    List.concat_map (fun (p1, p2) -> detect_pair ctx p1 p2) (Array.to_list pairs)
  else begin
    let results =
      Schedule.map_batches ~jobs
        (fun batch ->
          let c = create ctx.config in
          let threats =
            List.concat_map (fun (p1, p2) -> detect_pair c p1 p2) (Array.to_list batch)
          in
          (threats, c))
        pairs
    in
    Array.iter
      (fun (_, c) ->
        ctx.solver_calls <- ctx.solver_calls + c.solver_calls;
        Hashtbl.iter
          (fun k v ->
            if not (Hashtbl.mem ctx.overlap_cache k) then Hashtbl.add ctx.overlap_cache k v)
          c.overlap_cache)
      results;
    List.concat_map fst (Array.to_list results)
  end

(** Threats between a newly installed app and every already-installed
    app recorded in [db] (the online install-time flow, §IV-C). *)
let detect_new_app ?(jobs = 1) ctx (db : Homeguard_rules.Rule_db.t) (new_app : Rule.smartapp) =
  let installed = Homeguard_rules.Rule_db.all_rules db in
  let pairs =
    List.concat_map
      (fun new_rule ->
        List.filter_map
          (fun ((old_app, old_rule) : tagged_rule) ->
            if old_app.Rule.name = new_app.Rule.name then None
            else Some ((new_app, new_rule), (old_app, old_rule)))
          installed)
      new_app.Rule.rules
    |> List.filter (fun (p1, p2) -> pair_candidate ctx p1 p2)
    |> Array.of_list
  in
  run_pairs ~jobs ctx pairs

(** Exhaustive pairwise detection over a set of apps (the corpus audit,
    §VIII-B). *)
let detect_all ?(jobs = 1) ctx (apps : Rule.smartapp list) =
  run_pairs ~jobs ctx (candidate_pairs ctx apps)
