(** Chained CAI threats (paper §VI-D).

    Users may keep apps despite reported pairwise threats; those pairs
    are recorded in the [Allowed] list. When a new rule r1 interferes
    with an installed rule r2, r1 may also interfere *indirectly* with
    rules r2 already (admittedly) interferes with. This module closes
    covert-triggering edges transitively over the Allowed list. *)

module Rule = Homeguard_rules.Rule

(** A pairwise interference the user decided to keep. *)
type allowed_edge = {
  from_rule : string;  (** rule id *)
  to_rule : string;
  category : Threat.category;
}

type t = { mutable edges : allowed_edge list }

let create () = { edges = [] }

(** Record all directional edges of accepted threats. *)
let allow t (threats : Threat.t list) =
  let edges =
    List.concat_map
      (fun (th : Threat.t) ->
        let fwd =
          {
            from_rule = th.Threat.rule1.Rule.rule_id;
            to_rule = th.Threat.rule2.Rule.rule_id;
            category = th.Threat.category;
          }
        in
        if Threat.is_directional th.Threat.category then [ fwd ]
        else
          [
            fwd;
            {
              from_rule = th.Threat.rule2.Rule.rule_id;
              to_rule = th.Threat.rule1.Rule.rule_id;
              category = th.Threat.category;
            };
          ])
      threats
  in
  t.edges <- edges @ t.edges

(** Drop every allowed edge touching a rule id with this prefix — used
    when an app is uninstalled (rule ids are ["<app>#<n>"], so the
    prefix ["<app>#"] selects exactly its rules). *)
let disallow_prefix t prefix =
  let p = String.length prefix in
  let touches id = String.length id >= p && String.sub id 0 p = prefix in
  t.edges <- List.filter (fun e -> not (touches e.from_rule || touches e.to_rule)) t.edges

let allowed_edges t = t.edges

(** A chained threat: a path of covert-triggering (or enabling) edges
    from a new rule through allowed pairs. *)
type chain = { rules : string list; categories : Threat.category list }

let chain_to_string c =
  String.concat " -> " c.rules
  ^ " ["
  ^ String.concat "," (List.map Threat.category_to_string c.categories)
  ^ "]"

(* Edges that propagate influence forward. *)
let propagating = function Threat.CT | Threat.EC -> true | _ -> false

(** [find_chains t new_threats] — starting from each freshly detected
    propagating edge, follow allowed propagating edges to longer chains
    (3+ rules, cycle-free). *)
let find_chains t (new_threats : Threat.t list) =
  let all_edges =
    t.edges
    @ List.map
        (fun (th : Threat.t) ->
          {
            from_rule = th.Threat.rule1.Rule.rule_id;
            to_rule = th.Threat.rule2.Rule.rule_id;
            category = th.Threat.category;
          })
        new_threats
  in
  let successors rule_id =
    List.filter (fun e -> e.from_rule = rule_id && propagating e.category) all_edges
  in
  let max_len = 6 in
  let rec extend visited cats rule_id =
    let chains_here =
      if List.length visited >= 3 then
        [ { rules = List.rev visited; categories = List.rev cats } ]
      else []
    in
    if List.length visited >= max_len then chains_here
    else
      chains_here
      @ List.concat_map
          (fun e ->
            if List.mem e.to_rule visited then []
            else extend (e.to_rule :: visited) (e.category :: cats) e.to_rule)
          (successors rule_id)
  in
  List.concat_map
    (fun (th : Threat.t) ->
      if not (propagating th.Threat.category) then []
      else
        let r1 = th.Threat.rule1.Rule.rule_id and r2 = th.Threat.rule2.Rule.rule_id in
        extend [ r2; r1 ] [ th.Threat.category ] r2)
    new_threats
  |> List.sort_uniq compare
