(** Chained CAI threats through the Allowed list (paper §VI-D). *)

type allowed_edge = {
  from_rule : string;
  to_rule : string;
  category : Threat.category;
}

type t

val create : unit -> t

val allow : t -> Threat.t list -> unit
(** Record the edges of threats the user decided to keep. *)

val disallow_prefix : t -> string -> unit
(** Drop every allowed edge touching a rule id with this prefix
    (["<app>#"] removes an uninstalled app's edges). *)

val allowed_edges : t -> allowed_edge list

type chain = { rules : string list; categories : Threat.category list }

val chain_to_string : chain -> string

val find_chains : t -> Threat.t list -> chain list
(** Extend freshly detected propagating edges (CT/EC) through allowed
    edges into chains of three or more rules. *)
