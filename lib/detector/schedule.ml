(** Batched parallel scheduling for detection workloads.

    Work items are split into contiguous batches; a [Mutex]/[Condition]
    work queue hands batches to [jobs] worker domains; per-batch results
    land in a slot array indexed by batch, so output order never depends
    on domain interleaving. The scheduler is generic: the detection
    engine supplies a function over a batch and merges any mutable state
    (per-domain detection contexts) after the join. *)

let default_jobs () = Stdlib.Domain.recommended_domain_count ()

(* -- crash isolation -------------------------------------------------------- *)

type exn_info = { exn : string; backtrace : string }

let exn_info_of e =
  { exn = Printexc.to_string e; backtrace = Printexc.get_backtrace () }

(** [capture f] runs one work item, turning a raised exception into
    [Error] so one crashing item cannot tear down its batch, the worker
    domain, or the audit. *)
let capture f =
  match f () with
  | v -> Ok v
  | exception e -> Error (exn_info_of e)

(* Several batches per domain so a slow batch (one heavy solver pair)
   doesn't leave the other domains idle at the tail. *)
let batches_per_domain = 4

let batches ~jobs (items : 'a array) =
  let n = Array.length items in
  if n = 0 then [||]
  else begin
    let target = max 1 (min n (max 1 jobs * batches_per_domain)) in
    let size = (n + target - 1) / target in
    let count = (n + size - 1) / size in
    Array.init count (fun i ->
        let lo = i * size in
        Array.sub items lo (min size (n - lo)))
  end

(* A closeable FIFO guarded by a mutex. Workers block on the condition
   until an item arrives or the queue is closed and drained. *)
module Work_queue = struct
  type 'a t = {
    q : 'a Queue.t;
    m : Mutex.t;
    c : Condition.t;
    mutable closed : bool;
  }

  let create () =
    { q = Queue.create (); m = Mutex.create (); c = Condition.create (); closed = false }

  let push t x =
    Mutex.lock t.m;
    Queue.push x t.q;
    Condition.signal t.c;
    Mutex.unlock t.m

  let close t =
    Mutex.lock t.m;
    t.closed <- true;
    Condition.broadcast t.c;
    Mutex.unlock t.m

  (* [None] once the queue is closed and empty. *)
  let pop t =
    Mutex.lock t.m;
    let rec take () =
      match Queue.take_opt t.q with
      | Some x ->
        Mutex.unlock t.m;
        Some x
      | None ->
        if t.closed then begin
          Mutex.unlock t.m;
          None
        end
        else begin
          Condition.wait t.c t.m;
          take ()
        end
    in
    take ()
end

(* Cooperative cancellation: [cancel] is polled before each batch runs.
   Once it reports [true], no further batch starts — on any domain — and
   the skipped batches' slots stay [None]. A batch already in flight
   finishes (its [f] may poll [cancel] itself for finer granularity), so
   a cancelled map overshoots the cancellation point by at most one
   batch per domain. *)
let map_batches ?(cancel = fun () -> false) ~jobs f (items : 'a array) =
  let bs = batches ~jobs items in
  let n = Array.length bs in
  if jobs <= 1 || n <= 1 then
    Array.map (fun b -> if cancel () then None else Some (f b)) bs
  else begin
    let queue = Work_queue.create () in
    Array.iteri (fun i b -> Work_queue.push queue (i, b)) bs;
    Work_queue.close queue;
    (* Distinct slots per batch: workers write disjoint indices. *)
    let slots = Array.make n None in
    let worker () =
      let rec loop () =
        if cancel () then ()
        else
          match Work_queue.pop queue with
          | None -> ()
          | Some (i, batch) ->
            slots.(i) <- Some (f batch);
            loop ()
      in
      loop ()
    in
    let domains = List.init (min jobs n) (fun _ -> Stdlib.Domain.spawn worker) in
    List.iter Stdlib.Domain.join domains;
    slots
  end
