(** The CAI threat detection engine (paper §VI): pairwise candidate
    filtering followed by overlapping-condition constraint solving, with
    memoized solver results shared across threat types (Fig 9). *)

module Rule = Homeguard_rules.Rule

type tagged_rule = Rule.smartapp * Rule.t

type config = {
  same_device : Rule.smartapp -> string -> Rule.smartapp -> string -> bool;
  app_constraints : Rule.smartapp -> (string * Homeguard_solver.Term.t) list;
  reuse : bool;
}

val offline_same_device : Rule.smartapp -> string -> Rule.smartapp -> string -> bool
(** Same-capability matching with switch classes disambiguated by
    titles/descriptions; generic switches act as wildcards. *)

val offline_config : config
(** Corpus-audit mode: device-type matching, no config constraints. *)

type ctx = {
  config : config;
  overlap_cache : (string * string, Homeguard_solver.Solver.model option) Hashtbl.t;
  mutable solver_calls : int;
}

val create : config -> ctx

val situations_overlap :
  ctx -> tagged_rule -> tagged_rule -> Homeguard_solver.Solver.model option
(** Joint satisfiability of both rules' trigger+condition formulas, with
    variables of matched devices unified. *)

val conditions_overlap :
  ctx -> tagged_rule -> tagged_rule -> Homeguard_solver.Solver.model option
(** Conditions-only variant (memoized; shared by AR and CT/SD/LT). *)

val ar_candidate : ctx -> tagged_rule -> tagged_rule -> bool
val triggers_unify : ctx -> tagged_rule -> tagged_rule -> bool

val detect_ar : ctx -> tagged_rule -> tagged_rule -> Threat.t list
val detect_gc : ctx -> tagged_rule -> tagged_rule -> Threat.t list
val detect_trigger_interference : ctx -> tagged_rule -> tagged_rule -> Threat.t list
val detect_condition_interference : ctx -> tagged_rule -> tagged_rule -> Threat.t list

val detect_pair : ctx -> tagged_rule -> tagged_rule -> Threat.t list
(** All seven categories between two rules. *)

val pair_candidate : ctx -> tagged_rule -> tagged_rule -> bool
(** Solver-free over-approximation of [detect_pair <> []]: the
    per-category candidate pre-filters only. Used by the planner. *)

val candidate_pairs :
  ctx -> Rule.smartapp list -> (tagged_rule * tagged_rule) array
(** The audit plan: every cross-app rule pair surviving the cheap
    pre-filters, in the deterministic sequential enumeration order. *)

val detect_new_app :
  ?jobs:int -> ctx -> Homeguard_rules.Rule_db.t -> Rule.smartapp -> Threat.t list
(** Install-time flow: the new app against every installed rule.
    [~jobs] > 1 fans candidate pairs out across domains via {!Schedule}
    (default [1]: sequential in the caller's ctx). *)

val detect_all : ?jobs:int -> ctx -> Rule.smartapp list -> Threat.t list
(** Exhaustive pairwise audit across distinct apps. The threat list is
    identical, and identically ordered, for every [~jobs] value; with
    [~jobs] > 1 each domain detects on its own ctx and the solver-call
    counts and overlap caches are merged back afterwards. *)
