(** The CAI threat detection engine (paper §VI): pairwise candidate
    filtering followed by overlapping-condition constraint solving, with
    memoized solver results shared across threat types (Fig 9).

    Every solve runs under a resource budget ({!Budget.spec}); an
    exhausted solve is retried once with an escalated budget and, if
    still undecided, surfaced as a *potential* threat ([Undecided]
    severity) rather than dropped. Pair detection is crash-isolated: a
    raising pair is retried once on the coordinator and otherwise lands
    in the audit's structured error summary. *)

module Rule = Homeguard_rules.Rule
module Budget = Homeguard_solver.Budget

type tagged_rule = Rule.smartapp * Rule.t

type solve_query = {
  q_kind : string;  (** "sit" | "cond" | "ct" | "fx" — debug partition *)
  q_apps : string * string;  (** order-normalized app-pair identity *)
  q_formula : Homeguard_solver.Formula.t;
  q_store : Homeguard_solver.Store.t;
  q_bindings : (string * Homeguard_solver.Term.t) list;
      (** per-home configuration-value equalities appearing in the
          formula (qualified, post-unification) — what an external
          cache abstracts into equivalence-class cells *)
  q_fingerprint : string;  (** {!solve_fingerprint} of the ctx config *)
}
(** One detector solve as described to a fleet-shared verdict cache.
    The formula and store are exactly what the local budgeted solve
    would receive; a hook must return either its compute thunk's result
    or a verdict byte-identical to it. *)

type config = {
  same_device : Rule.smartapp -> string -> Rule.smartapp -> string -> bool;
  app_constraints : Rule.smartapp -> (string * Homeguard_solver.Term.t) list;
  reuse : bool;
  budget : Budget.spec;
      (** per-solve resource budget; exhausted solves are retried once
          with {!Budget.escalate}, then reported [Undecided] *)
  escalate : bool;
      (** retry exhausted solves with an 8x budget (default). Disabled
          for deadline-derived budgets, where escalating the wall-clock
          timeout would outlive the request deadline it was cut from *)
  shared_cache :
    (solve_query -> (unit -> Homeguard_solver.Solver.verdict) -> Homeguard_solver.Solver.verdict)
    option;
      (** fleet-shared verdict cache hook ([None] = solve locally) *)
  pair_cache : pair_cache option;
      (** pair-level result cache: [audit_all] groups its plan by app
          pair, and a hit replaces planning and detection for the whole
          pair ([None] = plan flat) *)
}

and pair_audit = {
  pa_apps : Rule.smartapp * Rule.smartapp;
      (** in home install order — detection is orientation-sensitive *)
  pa_bindings :
    (string * Homeguard_solver.Term.t) list * (string * Homeguard_solver.Term.t) list;
      (** [app_constraints] of each app, same order as [pa_apps] *)
  pa_unify : (string * string) list;
      (** the same-device relation over the two apps' device inputs —
          homes with different device assignments never share a key *)
  pa_fingerprint : string;  (** {!pair_fingerprint} of the ctx config *)
}
(** One whole app-pair audit as described to a pair-result cache. A hit
    skips candidate pre-filtering and every per-category analysis for
    the pair, so the key must cover both apps' rule structure, both
    configuration-binding sets and the solve fingerprint. *)

and pair_matrix = Threat.t list array array
(** Threats per rule pair: [m.(i).(j)] is [detect_pair] of the first
    app's rule [i] against the second app's rule [j]. *)

and pair_cache = {
  pair_lookup : pair_audit -> pair_matrix option;
  pair_store : pair_audit -> pair_matrix -> unit;
}

val solve_fingerprint : config -> string
(** The one cache-key fingerprint shared by the in-process overlap
    cache and any fleet-wide cache behind [shared_cache]: budget tier,
    solver A/B flags ({!Homeguard_solver.Solver.flags_fingerprint}),
    and the escalation switch. *)

val pair_fingerprint : config -> string
(** {!solve_fingerprint} plus the solver-result [reuse] switch — the
    pair-tier cache fingerprint. *)

val offline_same_device : Rule.smartapp -> string -> Rule.smartapp -> string -> bool
(** Same-capability matching with switch classes disambiguated by
    titles/descriptions; generic switches act as wildcards. *)

val offline_config : config
(** Corpus-audit mode: device-type matching, no config constraints,
    {!Budget.default_spec} budgets. *)

type caches
(** Per-ctx memo tables for pure, solver-free planning facts (device
    matching, channel maps, expanded conditions). One per ctx — worker
    domains each own a ctx, so the tables need no locking. *)

val create_caches : unit -> caches
(** Fresh planning-fact tables, for sharing across ctxs via
    {!create}'s [?caches]: sound only when every sharing config's
    [same_device] behaves identically (the other facts are
    config-independent), and only from one domain at a time — the
    tables are unsynchronized. *)

type ctx = {
  config : config;
  overlap_cache : (string * string, Homeguard_solver.Solver.verdict) Hashtbl.t;
      (** keys carry the budget fingerprint, so an [Unknown] cached
          under a small budget never answers for a larger one *)
  caches : caches;  (** memoized solver-free planning facts *)
  fingerprint : string;  (** {!solve_fingerprint} of [config], memoized *)
  pair_fp : string;  (** {!pair_fingerprint} of [config], memoized *)
  mutable solver_calls : int;
  mutable escalations : int;  (** undecided solves retried with a bigger budget *)
  mutable undecided_solves : int;  (** solves undecided even after escalation *)
}

val create : ?caches:caches -> config -> ctx
(** A detection context. [?caches] shares planning facts with other
    ctxs — see {!create_caches} for when that is sound. *)

val situations_overlap :
  ctx -> tagged_rule -> tagged_rule -> Homeguard_solver.Solver.verdict
(** Joint satisfiability of both rules' trigger+condition formulas, with
    variables of matched devices unified. *)

val conditions_overlap :
  ctx -> tagged_rule -> tagged_rule -> Homeguard_solver.Solver.verdict
(** Conditions-only variant (memoized; shared by AR and CT/SD/LT). *)

val ar_candidate : ctx -> tagged_rule -> tagged_rule -> bool
val triggers_unify : ctx -> tagged_rule -> tagged_rule -> bool

val detect_ar : ctx -> tagged_rule -> tagged_rule -> Threat.t list
val detect_gc : ctx -> tagged_rule -> tagged_rule -> Threat.t list
val detect_trigger_interference : ctx -> tagged_rule -> tagged_rule -> Threat.t list
val detect_condition_interference : ctx -> tagged_rule -> tagged_rule -> Threat.t list

val detect_pair : ctx -> tagged_rule -> tagged_rule -> Threat.t list
(** All seven categories between two rules. *)

val pair_candidate : ctx -> tagged_rule -> tagged_rule -> bool
(** Solver-free over-approximation of [detect_pair <> []]: the
    per-category candidate pre-filters only. Used by the planner. *)

val candidate_pairs :
  ctx -> Rule.smartapp list -> (tagged_rule * tagged_rule) array
(** The audit plan: every cross-app rule pair surviving the cheap
    pre-filters, in the deterministic sequential enumeration order. *)

(** {2 Crash-isolated audits} *)

type failure = {
  pair : string;
  apps : string * string;  (** the two app names, for failure attribution *)
  exn : string;
  backtrace : string;
}
(** One pair whose detection raised on both the worker attempt and the
    coordinator retry. *)

type audit_result = {
  threats : Threat.t list;
  undecided : int;  (** threats carrying an [Undecided] severity *)
  failures : failure list;  (** pairs whose detection crashed twice *)
  retried : int;  (** pairs retried on the coordinator after a crash *)
  shed : int;
      (** pairs never audited because [?cancel] fired (deadline or load
          shed). [shed > 0] marks the result incomplete: it may support
          "threats found" but never "no threat" *)
}

val audit_pairs :
  ?jobs:int ->
  ?cancel:(unit -> bool) ->
  ctx ->
  (tagged_rule * tagged_rule) array ->
  audit_result
(** Run an explicit pair plan with per-pair crash isolation. Failed
    pairs are retried once on the coordinator domain; double failures
    land in [failures] (pair order), and the rest of the audit still
    completes. Threats, undecided set and failures are identical, and
    identically ordered, for every [~jobs] value.

    [?cancel] is polled cooperatively before every pair (and before each
    parallel batch): once it reports [true] the remaining pairs are
    counted in [shed] instead of audited, so an in-flight batched audit
    stops within one pair (sequential) or one batch (parallel) of the
    cancellation point. *)

val audit_new_app :
  ?jobs:int ->
  ?cancel:(unit -> bool) ->
  ctx ->
  Homeguard_rules.Rule_db.t ->
  Rule.smartapp ->
  audit_result
(** Install-time flow: the new app against every installed rule. *)

val audit_all :
  ?jobs:int -> ?cancel:(unit -> bool) -> ctx -> Rule.smartapp list -> audit_result
(** Exhaustive pairwise audit across distinct apps. With [~jobs] > 1
    each domain detects on its own ctx; per-domain caches and counters
    are merged back before the coordinator retries any failed pair.
    With a [pair_cache] configured the plan is instead grouped by app
    pair on the coordinator ([jobs] is ignored) and cache hits replace
    planning and detection wholesale; output is byte-identical to the
    flat plan at every job count. A cancelled grouped audit sheds
    remaining groups whole, counting their full rule-pair cross
    product ([shed > 0] iff incomplete, as in the flat plan). *)

val detect_new_app :
  ?jobs:int -> ctx -> Homeguard_rules.Rule_db.t -> Rule.smartapp -> Threat.t list
(** [(audit_new_app ...).threats]. *)

val detect_all : ?jobs:int -> ctx -> Rule.smartapp list -> Threat.t list
(** [(audit_all ...).threats]. *)
