(** Per-threat handling decisions (paper §VII): the decision model and
    the store consulted when compiling a {!Mediator}. *)

module Rule = Homeguard_rules.Rule
module Threat = Homeguard_detector.Threat

type decision =
  | Allow
  | Prioritize of { winner : string }
  | Block of { rule : string }
  | Break_chain of { hop_budget : int }
  | Confirm

val rule_key : Rule.smartapp -> Rule.t -> string
(** ["<app name>/<rule id>"] — the key rules are known by at runtime. *)

val threat_keys : Threat.t -> string * string

val threat_id : Threat.t -> string
(** Stable id ["CAT:k1->k2"] (directional) or ["CAT:ka<->kb"]
    (symmetric, keys canonicalized) — independent of detection order. *)

val default_hop_budget : Threat.category -> int

val default_decision : Threat.t -> decision
(** Per-category recommendation: AR prioritizes rule1, GC blocks rule2,
    CT/SD break the chain immediately, LT allows two loop iterations,
    EC is allowed with logging, DC requires confirmation. *)

val describe : decision -> string

type store

val create : unit -> store
val set : store -> Threat.t -> decision -> unit
val set_by_id : store -> string -> decision -> unit
val explicit : store -> Threat.t -> decision option
val decision_for : store -> Threat.t -> decision
(** The explicit decision if one was recorded, else the default. *)

val decisions : store -> (string * decision) list
(** All explicit decisions, sorted by threat id. *)
