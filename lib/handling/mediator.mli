(** Runtime reference monitor: compiles detected threats plus handling
    decisions into per-rule / per-(rule, command) lookups and judges
    every actuator command before dispatch. *)

module Rule = Homeguard_rules.Rule
module Threat = Homeguard_detector.Threat

type verdict =
  | Allow
  | Suppress of string  (** reason *)
  | Defer of { delay_ms : int; reason : string }
      (** re-enqueue the command after [delay_ms]; the caller bumps the
          deferral count *)

type log_entry = {
  at : int;
  threat : string;
  app : string;
  rule : string;
  device : string;
  command : string;
  outcome : string;
}

type query = {
  app : string;
  rule : string;
  device : string;
  command : string;
  provenance : (string * string) list;
      (** (app name, rule id) hops that causally led here, oldest first *)
  deferrals : int;
}

type stats = { consulted : int; allowed : int; suppressed : int; deferred : int }

type t

val create : ?defer_delay_ms:int -> ?max_deferrals:int -> Policy.store -> Threat.t list -> t
(** Compile the threats under the store's decisions ([Policy.decision_for]
    per threat). [defer_delay_ms] (default 60s) is the Defer re-enqueue
    delay; after [max_deferrals] (default 3) an unconfirmed command is
    suppressed instead. *)

val judge : t -> at:int -> query -> verdict
(** Precedence: blocked rule > lost actuator priority > broken trigger
    chain > pending confirmation > Allow. Non-Allow verdicts (and
    confirmed Allows) are appended to the enforcement log. *)

val confirm : t -> string -> unit
(** [confirm t threat_id] — the user confirmed the threat; subsequent
    Confirm-gated commands under it are allowed. *)

val log : t -> log_entry list
(** Enforcement log, oldest first. *)

val stats : t -> stats
val log_entry_to_string : log_entry -> string
val log_to_string : t -> string
