(** The runtime reference monitor (paper §VII "handling").

    Compiles detected threats plus the user's per-threat decisions into
    fast lookup tables consulted once per actuator command: a blocked
    set (per rule), an actuator-priority loser set (per rule × command),
    trigger-chain edges (per downstream rule, matched against the causal
    provenance the simulator threads through events), and a
    confirm-pending set (per rule, driving Defer verdicts). Every
    non-Allow verdict is appended to the enforcement log. *)

module Rule = Homeguard_rules.Rule
module Threat = Homeguard_detector.Threat

type verdict =
  | Allow
  | Suppress of string  (** reason, for the trace and the log *)
  | Defer of { delay_ms : int; reason : string }
      (** re-enqueue the command; the engine bumps the deferral count *)

type log_entry = {
  at : int;
  threat : string;  (** stable threat id the verdict enforces *)
  app : string;
  rule : string;
  device : string;
  command : string;
  outcome : string;  (** ["suppressed: ..."], ["deferred"], ["allowed: confirmed"] *)
}

type query = {
  app : string;
  rule : string;
  device : string;
  command : string;
  provenance : (string * string) list;
      (** (app, rule) hops that causally led to this command, oldest first *)
  deferrals : int;  (** how many times this command was already deferred *)
}

type chain_edge = { upstream : string; hop_budget : int; edge_threat : string }

type stats = { consulted : int; allowed : int; suppressed : int; deferred : int }

type t = {
  blocked : (string, string) Hashtbl.t;  (** rule key -> threat id *)
  losers : (string * string, string) Hashtbl.t;  (** (rule key, command) -> threat id *)
  chains : (string, chain_edge list) Hashtbl.t;  (** downstream rule key -> edges *)
  confirms : (string, string) Hashtbl.t;  (** rule key -> threat id awaiting confirmation *)
  confirmed : (string, unit) Hashtbl.t;  (** threat ids the user confirmed *)
  defer_delay_ms : int;
  max_deferrals : int;
  mutable n_consulted : int;
  mutable n_allowed : int;
  mutable n_suppressed : int;
  mutable n_deferred : int;
  mutable log_rev : log_entry list;
}

(* -- compilation ------------------------------------------------------------ *)

let device_commands (r : Rule.t) =
  List.filter_map
    (fun (a : Rule.action) ->
      match a.Rule.target with
      | Rule.Act_device _ | Rule.Act_location_mode -> Some a.Rule.command
      | Rule.Act_messaging | Rule.Act_http | Rule.Act_hub -> None)
    r.Rule.actions
  |> List.sort_uniq compare

let add_edge t ~downstream edge =
  let existing = Option.value ~default:[] (Hashtbl.find_opt t.chains downstream) in
  if not (List.mem edge existing) then Hashtbl.replace t.chains downstream (existing @ [ edge ])

let compile_threat t store (threat : Threat.t) =
  let tid = Policy.threat_id threat in
  let k1, k2 = Policy.threat_keys threat in
  let rule_of key =
    if key = k1 then Some threat.Threat.rule1
    else if key = k2 then Some threat.Threat.rule2
    else None
  in
  match Policy.decision_for store threat with
  | Policy.Allow -> ()
  | Policy.Block { rule } -> Hashtbl.replace t.blocked rule tid
  | Policy.Prioritize { winner } ->
    let losers =
      match List.filter (fun k -> k <> winner) [ k1; k2 ] with
      | [] -> []
      | [ _; _ ] -> [ k2 ]  (* winner names neither rule: rule1 wins by default *)
      | ls -> List.sort_uniq compare ls
    in
    List.iter
      (fun loser ->
        match rule_of loser with
        | None -> ()
        | Some r ->
          List.iter
            (fun cmd -> Hashtbl.replace t.losers (loser, cmd) tid)
            (device_commands r))
      losers
  | Policy.Break_chain { hop_budget } ->
    let edge up = { upstream = up; hop_budget; edge_threat = tid } in
    if Threat.is_directional threat.Threat.category then
      add_edge t ~downstream:k2 (edge k1)
    else begin
      (* symmetric (LT, or an explicit chain-break on AR/GC): either rule
         re-fired through the other — or through itself, the self-loop
         case — counts against the budget *)
      add_edge t ~downstream:k2 (edge k1);
      add_edge t ~downstream:k1 (edge k2);
      add_edge t ~downstream:k1 (edge k1);
      add_edge t ~downstream:k2 (edge k2)
    end
  | Policy.Confirm ->
    Hashtbl.replace t.confirms k1 tid;
    if not (Threat.is_directional threat.Threat.category) then
      Hashtbl.replace t.confirms k2 tid

let create ?(defer_delay_ms = 60_000) ?(max_deferrals = 3) store threats =
  let t =
    {
      blocked = Hashtbl.create 16;
      losers = Hashtbl.create 16;
      chains = Hashtbl.create 16;
      confirms = Hashtbl.create 16;
      confirmed = Hashtbl.create 16;
      defer_delay_ms;
      max_deferrals;
      n_consulted = 0;
      n_allowed = 0;
      n_suppressed = 0;
      n_deferred = 0;
      log_rev = [];
    }
  in
  List.iter (compile_threat t store) threats;
  t

let confirm t threat_id = Hashtbl.replace t.confirmed threat_id ()

(* -- judging ---------------------------------------------------------------- *)

let hops upstream provenance =
  List.length (List.filter (fun (a, r) -> a ^ "/" ^ r = upstream) provenance)

let judge t ~at (q : query) =
  t.n_consulted <- t.n_consulted + 1;
  let key = q.app ^ "/" ^ q.rule in
  let record threat outcome =
    t.log_rev <-
      { at; threat; app = q.app; rule = q.rule; device = q.device; command = q.command; outcome }
      :: t.log_rev
  in
  let suppress threat reason =
    t.n_suppressed <- t.n_suppressed + 1;
    record threat ("suppressed: " ^ reason);
    Suppress reason
  in
  match Hashtbl.find_opt t.blocked key with
  | Some tid -> suppress tid (Printf.sprintf "rule blocked by handling decision %s" tid)
  | None -> (
    match Hashtbl.find_opt t.losers (key, q.command) with
    | Some tid -> suppress tid (Printf.sprintf "lost actuator priority under %s" tid)
    | None -> (
      let edges = Option.value ~default:[] (Hashtbl.find_opt t.chains key) in
      match
        List.find_opt (fun e -> hops e.upstream q.provenance > e.hop_budget) edges
      with
      | Some e ->
        suppress e.edge_threat
          (Printf.sprintf "trigger chain broken: %d hop(s) via %s exceed budget %d under %s"
             (hops e.upstream q.provenance) e.upstream e.hop_budget e.edge_threat)
      | None -> (
        match Hashtbl.find_opt t.confirms key with
        | Some tid when Hashtbl.mem t.confirmed tid ->
          t.n_allowed <- t.n_allowed + 1;
          record tid "allowed: confirmed";
          Allow
        | Some tid ->
          if q.deferrals >= t.max_deferrals then
            suppress tid
              (Printf.sprintf "unconfirmed after %d deferral(s) under %s" q.deferrals tid)
          else begin
            t.n_deferred <- t.n_deferred + 1;
            record tid "deferred";
            Defer
              {
                delay_ms = t.defer_delay_ms;
                reason = Printf.sprintf "awaiting confirmation of %s" tid;
              }
          end
        | None ->
          t.n_allowed <- t.n_allowed + 1;
          Allow)))

(* -- reporting -------------------------------------------------------------- *)

let log t = List.rev t.log_rev

let stats t =
  {
    consulted = t.n_consulted;
    allowed = t.n_allowed;
    suppressed = t.n_suppressed;
    deferred = t.n_deferred;
  }

let log_entry_to_string e =
  Printf.sprintf "%6dms  %s/%s -> %s.%s()  %s  [%s]" e.at e.app e.rule e.device e.command
    e.outcome e.threat

let log_to_string t = String.concat "\n" (List.map log_entry_to_string (log t))
