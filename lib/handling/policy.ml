(** Per-threat handling decisions (paper §VII).

    Detection only pays off when the user's verdict on each reported
    threat is recorded and enforceable: the paper's handling section
    assigns every category a remedy — priorities for actuator races,
    blocking for goal conflicts, chain breaking for trigger
    interference, and allow/block/confirm for condition interference.
    This module models those decisions and stores them keyed by a
    *stable threat id*, so a decision made at install time still applies
    after re-detection or reordering. *)

module Rule = Homeguard_rules.Rule
module Threat = Homeguard_detector.Threat

type decision =
  | Allow  (** accept the interference; mediation only logs it *)
  | Prioritize of { winner : string }
      (** AR: the winning rule keeps the actuator; the loser's contested
          commands are suppressed (rule keys, [rule_key]) *)
  | Block of { rule : string }
      (** GC (and explicit EC/DC blocks): suppress every command the
          named rule issues *)
  | Break_chain of { hop_budget : int }
      (** CT/SD/LT: suppress an execution once the triggering rule
          appears in its causal provenance more than [hop_budget] times *)
  | Confirm
      (** EC/DC notify-and-confirm: defer the interfering action until
          the user confirms the threat; unconfirmed deferrals expire
          into suppression *)

(* -- stable identities ------------------------------------------------------ *)

let rule_key (app : Rule.smartapp) (r : Rule.t) = app.Rule.name ^ "/" ^ r.Rule.rule_id

let threat_keys (t : Threat.t) =
  (rule_key t.Threat.app1 t.Threat.rule1, rule_key t.Threat.app2 t.Threat.rule2)

(** Stable id: category plus the two rule keys. Directional categories
    keep the interference direction; symmetric ones are canonicalized,
    so the id is independent of detection order. *)
let threat_id (t : Threat.t) =
  let k1, k2 = threat_keys t in
  let cat = Threat.category_to_string t.Threat.category in
  if Threat.is_directional t.Threat.category then Printf.sprintf "%s:%s->%s" cat k1 k2
  else
    let a, b = if String.compare k1 k2 <= 0 then (k1, k2) else (k2, k1) in
    Printf.sprintf "%s:%s<->%s" cat a b

(* -- defaults (paper §VII, one per category) -------------------------------- *)

let default_hop_budget = function Threat.LT -> 2 | _ -> 0

(** The recommended decision presented at install time: AR keeps the
    first-detected rule as winner, GC blocks the second (losing) rule,
    trigger interference breaks the chain immediately (LT is granted two
    loop iterations so legitimate feedback can settle), EC is allowed
    with logging, DC — silently disabling another rule — requires
    confirmation. *)
let default_decision (t : Threat.t) =
  let k1, k2 = threat_keys t in
  match t.Threat.category with
  | Threat.AR -> Prioritize { winner = k1 }
  | Threat.GC -> Block { rule = k2 }
  | (Threat.CT | Threat.SD | Threat.LT) as c -> Break_chain { hop_budget = default_hop_budget c }
  | Threat.EC -> Allow
  | Threat.DC -> Confirm

let describe = function
  | Allow -> "allow (log only)"
  | Prioritize { winner } ->
    Printf.sprintf "prioritize %s (suppress the losing rule's contested commands)" winner
  | Block { rule } -> Printf.sprintf "block rule %s" rule
  | Break_chain { hop_budget } ->
    Printf.sprintf "break the trigger chain beyond %d hop(s)" hop_budget
  | Confirm -> "notify and await confirmation (defer, expire into suppression)"

(* -- the decision store ----------------------------------------------------- *)

type store = { table : (string, decision) Hashtbl.t }

let create () = { table = Hashtbl.create 16 }

let set s threat d = Hashtbl.replace s.table (threat_id threat) d

let set_by_id s id d = Hashtbl.replace s.table id d

let explicit s threat = Hashtbl.find_opt s.table (threat_id threat)

(** The decision in force: the user's explicit choice, or the
    per-category default. *)
let decision_for s threat =
  match explicit s threat with Some d -> d | None -> default_decision threat

let decisions s =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) s.table [] |> List.sort compare
