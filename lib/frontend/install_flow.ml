(** The one-time install-time decision flow (paper §IV-C, §VIII-D1).

    When a new app is installed: configuration arrives from the
    instrumented app, rules are fetched from the backend, threats are
    detected against everything already installed, and the user makes a
    single keep/reject/reconfigure decision. Accepted threat pairs join
    the Allowed list so future installs can detect chained threats. *)

module Rule = Homeguard_rules.Rule
module Rule_db = Homeguard_rules.Rule_db
module Detector = Homeguard_detector.Detector
module Threat = Homeguard_detector.Threat
module Chain = Homeguard_detector.Chain
module Policy = Homeguard_handling.Policy
module Mediator = Homeguard_handling.Mediator

type decision = Keep | Reject | Reconfigure

type report = {
  app : Rule.smartapp;
  rules_text : string;  (** rule interpreter output *)
  threats : Threat.t list;
  chains : Chain.chain list;
  threats_text : string;  (** threat interpreter output *)
  recommendations : (Threat.t * Policy.decision) list;
      (** each threat with the handling decision that will be enforced
          (explicit if the user already set one, else the default) *)
  handling_text : string;  (** rendered recommendations *)
}

type t = {
  db : Rule_db.t;
  allowed : Chain.t;
  mutable pending : report option;
  detector_config : Detector.config;
  policies : Policy.store;  (** per-threat handling decisions *)
  mutable kept : Threat.t list;
      (** threats the user accepted at install time; these are what the
          runtime mediator enforces *)
}

let create ?(detector_config = Detector.offline_config) () =
  {
    db = Rule_db.create ();
    allowed = Chain.create ();
    pending = None;
    detector_config;
    policies = Policy.create ();
    kept = [];
  }

let render_recommendations recs =
  recs
  |> List.map (fun (threat, d) ->
         Printf.sprintf "  [%s] %s" (Policy.threat_id threat) (Policy.describe d))
  |> String.concat "\n"

(** Step 1-3: collect config (already folded into [detector_config] when
    using a {!Homeguard_config.Recorder}), fetch rules, detect threats.
    Returns the report to present to the user. *)
let propose t (app : Rule.smartapp) =
  let ctx = Detector.create t.detector_config in
  let threats = Detector.detect_new_app ctx t.db app in
  let chains = Chain.find_chains t.allowed threats in
  let recommendations =
    List.map (fun threat -> (threat, Policy.decision_for t.policies threat)) threats
  in
  let report =
    {
      app;
      rules_text = Rule_interpreter.describe_app app;
      threats;
      chains;
      threats_text = Threat_interpreter.describe_all threats;
      recommendations;
      handling_text = render_recommendations recommendations;
    }
  in
  t.pending <- Some report;
  report

exception No_pending_install

(** Step 4: the user's one-time decision. [Keep] installs the app and
    records its threat pairs as allowed; [Reject] discards it;
    [Reconfigure] discards the proposal so the user can re-run with a
    different configuration. *)
let decide t decision =
  match t.pending with
  | None -> raise No_pending_install
  | Some report ->
    t.pending <- None;
    (match decision with
    | Keep ->
      ignore (Rule_db.install t.db report.app);
      Chain.allow t.allowed report.threats;
      t.kept <- t.kept @ report.threats
    | Reject | Reconfigure -> ())

let installed_apps t = Rule_db.installed_apps t.db

let pending t = t.pending

(** Remove an installed app: its rules leave the database, its kept
    threats leave the mediator's input, and its allowed edges leave the
    chain detector (rule ids are ["<app>#<n>"]). *)
let uninstall t name =
  Rule_db.uninstall t.db name;
  t.kept <-
    List.filter
      (fun (th : Threat.t) ->
        th.Threat.app1.Rule.name <> name && th.Threat.app2.Rule.name <> name)
      t.kept;
  Chain.disallow_prefix t.allowed (name ^ "#")

(* -- handling ---------------------------------------------------------------- *)

(** Override the handling decision for one threat (by stable id); in
    force for every mediator compiled afterwards. *)
let set_decision t threat_id decision = Policy.set_by_id t.policies threat_id decision

let policies t = t.policies

let kept_threats t = t.kept

(** Compile the runtime reference monitor for everything kept so far,
    under the current decisions. *)
let mediator ?defer_delay_ms ?max_deferrals t =
  Mediator.create ?defer_delay_ms ?max_deferrals t.policies t.kept
