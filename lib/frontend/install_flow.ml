(** The one-time install-time decision flow (paper §IV-C, §VIII-D1).

    When a new app is installed: configuration arrives from the
    instrumented app, rules are fetched from the backend, threats are
    detected against everything already installed, and the user makes a
    single keep/reject/reconfigure decision. Accepted threat pairs join
    the Allowed list so future installs can detect chained threats. *)

module Rule = Homeguard_rules.Rule
module Rule_db = Homeguard_rules.Rule_db
module Detector = Homeguard_detector.Detector
module Threat = Homeguard_detector.Threat
module Chain = Homeguard_detector.Chain
module Policy = Homeguard_handling.Policy
module Mediator = Homeguard_handling.Mediator

type decision = Keep | Reject | Reconfigure

type report = {
  app : Rule.smartapp;
  rules_text : string;  (** rule interpreter output *)
  threats : Threat.t list;
  chains : Chain.chain list;
  threats_text : string;  (** threat interpreter output *)
  recommendations : (Threat.t * Policy.decision) list;
      (** each threat with the handling decision that will be enforced
          (explicit if the user already set one, else the default) *)
  handling_text : string;  (** rendered recommendations *)
  audit : Detector.audit_result;
      (** the structured install-time audit; [audit.shed > 0] means the
          detection was cut short (deadline/shed) and the threat list is
          a lower bound, never a clean bill *)
  quarantine_note : string option;
      (** set when the proposed app is quarantined (distinct
          recommendation: reject) or when quarantined installed apps
          were excluded from this audit *)
}

type t = {
  db : Rule_db.t;
  allowed : Chain.t;
  mutable pending : report option;
  detector_config : Detector.config;
  policies : Policy.store;  (** per-threat handling decisions *)
  mutable kept : Threat.t list;
      (** threats the user accepted at install time; these are what the
          runtime mediator enforces *)
  mutable quarantined : (string * string) list;
      (** poison apps (name, reason): excluded from detection and
          surfaced with a reject recommendation *)
}

let create ?(detector_config = Detector.offline_config) () =
  {
    db = Rule_db.create ();
    allowed = Chain.create ();
    pending = None;
    detector_config;
    policies = Policy.create ();
    kept = [];
    quarantined = [];
  }

let render_recommendations recs =
  recs
  |> List.map (fun (threat, d) ->
         Printf.sprintf "  [%s] %s" (Policy.threat_id threat) (Policy.describe d))
  |> String.concat "\n"

(* -- quarantine -------------------------------------------------------------- *)

let quarantine t name ~reason =
  if not (List.mem_assoc name t.quarantined) then
    t.quarantined <- t.quarantined @ [ (name, reason) ]

let unquarantine t name =
  let had = List.mem_assoc name t.quarantined in
  t.quarantined <- List.filter (fun (n, _) -> n <> name) t.quarantined;
  had

let quarantined t = t.quarantined
let is_quarantined t name = List.mem_assoc name t.quarantined

(* The detection database minus quarantined apps: a poison app's rules
   must not be able to crash every later install's audit. *)
let detection_db t =
  if t.quarantined = [] then t.db
  else begin
    let db = Rule_db.create () in
    List.iter
      (fun (a : Rule.smartapp) ->
        if not (is_quarantined t a.Rule.name) then ignore (Rule_db.install db a))
      (Rule_db.installed_apps t.db);
    db
  end

let quarantine_note t (app : Rule.smartapp) =
  match List.assoc_opt app.Rule.name t.quarantined with
  | Some reason ->
    Some
      (Printf.sprintf
         "%s is quarantined (%s): its analysis keeps failing, so threats cannot be \
          ruled out — recommend Reject (or clear the quarantine first)"
         app.Rule.name reason)
  | None ->
    let excluded =
      List.filter (fun (n, _) -> Rule_db.find t.db n <> None) t.quarantined
    in
    if excluded = [] then None
    else
      Some
        (Printf.sprintf
           "quarantined app(s) excluded from this audit: %s — interference with them \
            cannot be ruled out"
           (String.concat ", " (List.map fst excluded)))

(** Step 1-3: collect config (already folded into [detector_config] when
    using a {!Homeguard_config.Recorder}), fetch rules, detect threats.
    Returns the report to present to the user. [?config] overrides the
    detector configuration for this proposal only (e.g. a
    deadline-derived budget); [?cancel] cooperatively cuts the audit
    short, leaving [report.audit.shed > 0]. *)
let propose ?config ?cancel t (app : Rule.smartapp) =
  let ctx = Detector.create (Option.value ~default:t.detector_config config) in
  let audit = Detector.audit_new_app ?cancel ctx (detection_db t) app in
  let threats = audit.Detector.threats in
  let chains = Chain.find_chains t.allowed threats in
  let recommendations =
    List.map (fun threat -> (threat, Policy.decision_for t.policies threat)) threats
  in
  let report =
    {
      app;
      rules_text = Rule_interpreter.describe_app app;
      threats;
      chains;
      threats_text = Threat_interpreter.describe_all threats;
      recommendations;
      handling_text = render_recommendations recommendations;
      audit;
      quarantine_note = quarantine_note t app;
    }
  in
  t.pending <- Some report;
  report

exception No_pending_install

(** Step 4: the user's one-time decision. [Keep] installs the app and
    records its threat pairs as allowed; [Reject] discards it;
    [Reconfigure] discards the proposal so the user can re-run with a
    different configuration. *)
let decide t decision =
  match t.pending with
  | None -> raise No_pending_install
  | Some report ->
    t.pending <- None;
    (match decision with
    | Keep ->
      ignore (Rule_db.install t.db report.app);
      Chain.allow t.allowed report.threats;
      t.kept <- t.kept @ report.threats
    | Reject | Reconfigure -> ())

let installed_apps t = Rule_db.installed_apps t.db

let pending t = t.pending

(** Remove an installed app: its rules leave the database, its kept
    threats leave the mediator's input, and its allowed edges leave the
    chain detector (rule ids are ["<app>#<n>"]). *)
let uninstall t name =
  Rule_db.uninstall t.db name;
  t.kept <-
    List.filter
      (fun (th : Threat.t) ->
        th.Threat.app1.Rule.name <> name && th.Threat.app2.Rule.name <> name)
      t.kept;
  Chain.disallow_prefix t.allowed (name ^ "#")

(* -- handling ---------------------------------------------------------------- *)

(** Override the handling decision for one threat (by stable id); in
    force for every mediator compiled afterwards. *)
let set_decision t threat_id decision = Policy.set_by_id t.policies threat_id decision

let policies t = t.policies

let kept_threats t = t.kept

(** Compile the runtime reference monitor for everything kept so far,
    under the current decisions. *)
let mediator ?defer_delay_ms ?max_deferrals t =
  Mediator.create ?defer_delay_ms ?max_deferrals t.policies t.kept
