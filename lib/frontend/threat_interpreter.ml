(** Threat interpreter: explain detected CAI threats to the homeowner
    (paper §IV-C), including the concrete situation the solver found. *)

module Rule = Homeguard_rules.Rule
module Threat = Homeguard_detector.Threat
module Domain = Homeguard_solver.Domain

let strip_qualifier var =
  match String.index_opt var ':' with
  | Some i when i + 1 < String.length var && var.[i + 1] = ':' ->
    String.sub var (i + 2) (String.length var - i - 2)
  | _ -> var

(* Hide solver-internal symbols and render app-qualified names. *)
let describe_witness model =
  let visible =
    List.filter_map
      (fun (var, value) ->
        let name = strip_qualifier var in
        let internal =
          (String.length name >= 4 && String.sub name 0 4 = "sym_")
          || (match value with
             | Domain.Str s -> s = Homeguard_solver.Store.other_value
             | Domain.Int _ -> false)
        in
        if internal then None
        else Some (Printf.sprintf "%s = %s" name (Domain.value_to_string value)))
      model
  in
  match visible with
  | [] -> None
  | bindings -> Some (String.concat ", " bindings)

let risk_note = function
  | Threat.AR ->
    "The final device state is unpredictable; the device may be damaged or left in an unsafe state."
  | Threat.GC -> "The two automations work against each other and waste energy or comfort."
  | Threat.CT ->
    "A covert rule is formed: installing this app makes something happen that neither app describes alone."
  | Threat.SD -> "The triggered rule immediately undoes this rule's action."
  | Threat.LT ->
    "The rules can trigger each other in a loop (e.g. flashing lights), risking device damage."
  | Threat.EC -> "This app can silently arm another rule's condition."
  | Threat.DC ->
    "This app can silently disarm another rule's condition (e.g. disabling a security check)."

(** Multi-line, user-facing explanation of one threat. An undecided
    threat is clearly marked as unconfirmed rather than presented like a
    proven interference. *)
let describe (t : Threat.t) =
  let buf = Buffer.create 256 in
  let undecided = Threat.is_undecided t.Threat.severity in
  Buffer.add_string buf
    (Printf.sprintf "%s (%s)%s\n"
       (Threat.category_name t.Threat.category)
       (Threat.category_to_string t.Threat.category)
       (if undecided then " — UNDECIDED" else ""));
  Buffer.add_string buf
    (Printf.sprintf "  Between %s (%s) and %s (%s)\n" t.Threat.rule1.Rule.rule_id
       t.Threat.app1.Rule.name t.Threat.rule2.Rule.rule_id t.Threat.app2.Rule.name);
  Buffer.add_string buf (Printf.sprintf "  How: %s\n" t.Threat.detail);
  (match t.Threat.severity with
  | Threat.Undecided reason ->
    Buffer.add_string buf
      (Printf.sprintf
         "  Status: analysis ran out of budget (%s); treat as a potential threat\n" reason)
  | Threat.Confirmed -> ());
  (match Option.bind t.Threat.witness describe_witness with
  | Some situation -> Buffer.add_string buf (Printf.sprintf "  Example situation: %s\n" situation)
  | None -> ());
  Buffer.add_string buf (Printf.sprintf "  Risk: %s" (risk_note t.Threat.category));
  Buffer.contents buf

(** Summary block for the install screen. *)
let describe_all threats =
  match threats with
  | [] -> "No cross-app interference threats detected."
  | threats ->
    let undecided = List.length (List.filter (fun t -> Threat.is_undecided t.Threat.severity) threats) in
    let undecided_note =
      if undecided = 0 then ""
      else Printf.sprintf " (%d undecided: solver budget exhausted, shown conservatively)" undecided
    in
    Printf.sprintf "%d potential cross-app interference threat(s) detected%s:\n\n%s"
      (List.length threats) undecided_note
      (String.concat "\n\n" (List.map describe threats))
