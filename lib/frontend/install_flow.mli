(** The one-time install-time decision flow (paper §IV-C, §VIII-D1). *)

module Rule = Homeguard_rules.Rule

type decision = Keep | Reject | Reconfigure

type report = {
  app : Rule.smartapp;
  rules_text : string;
  threats : Homeguard_detector.Threat.t list;
  chains : Homeguard_detector.Chain.chain list;
  threats_text : string;
  recommendations :
    (Homeguard_detector.Threat.t * Homeguard_handling.Policy.decision) list;
  handling_text : string;
  audit : Homeguard_detector.Detector.audit_result;
      (** structured install-time audit; [audit.shed > 0] marks a
          detection cut short by a deadline or load shed — the threat
          list is then a lower bound, never a clean bill *)
  quarantine_note : string option;
      (** the distinct recommendation when the proposed app is
          quarantined, or a warning that quarantined installed apps were
          excluded from the audit *)
}

type t

exception No_pending_install

val create : ?detector_config:Homeguard_detector.Detector.config -> unit -> t

val propose :
  ?config:Homeguard_detector.Detector.config ->
  ?cancel:(unit -> bool) ->
  t ->
  Rule.smartapp ->
  report
(** Detect threats against the installed home; the report is what the
    user sees. [?config] overrides the detector configuration for this
    proposal only (deadline-derived budgets); [?cancel] cooperatively
    cuts the audit short. Quarantined apps are excluded from detection
    and noted in [quarantine_note]. *)

val decide : t -> decision -> unit
(** [Keep] installs and records the threat pairs as allowed; [Reject]
    and [Reconfigure] discard the proposal. *)

val installed_apps : t -> Rule.smartapp list

val pending : t -> report option
(** The proposal awaiting a decision, if any. *)

val uninstall : t -> string -> unit
(** Remove an installed app, its kept threats and its allowed edges. *)

(** {2 Poison-app quarantine}

    A quarantined app stays installed but its rules are excluded from
    every subsequent install-time detection (a poison app must not be
    able to crash every later audit), and proposals involving it carry a
    distinct reject recommendation in [quarantine_note]. Durability is
    the caller's concern ({!Homeguard_store.Home} journals quarantine
    events and replays them back through these setters). *)

val quarantine : t -> string -> reason:string -> unit
val unquarantine : t -> string -> bool
(** [false] when the app was not quarantined. *)

val quarantined : t -> (string * string) list
(** [(app, reason)] pairs, in quarantine order. *)

val is_quarantined : t -> string -> bool

val set_decision : t -> string -> Homeguard_handling.Policy.decision -> unit
(** Override the handling decision for a threat (by stable id); applies
    to every mediator compiled afterwards. *)

val policies : t -> Homeguard_handling.Policy.store

val kept_threats : t -> Homeguard_detector.Threat.t list
(** Threats accepted (via [Keep]) so far — the mediator's input. *)

val mediator :
  ?defer_delay_ms:int -> ?max_deferrals:int -> t -> Homeguard_handling.Mediator.t
(** Compile the runtime reference monitor over all kept threats under
    the current decisions. *)
