(** The one-time install-time decision flow (paper §IV-C, §VIII-D1). *)

module Rule = Homeguard_rules.Rule

type decision = Keep | Reject | Reconfigure

type report = {
  app : Rule.smartapp;
  rules_text : string;
  threats : Homeguard_detector.Threat.t list;
  chains : Homeguard_detector.Chain.chain list;
  threats_text : string;
  recommendations :
    (Homeguard_detector.Threat.t * Homeguard_handling.Policy.decision) list;
  handling_text : string;
}

type t

exception No_pending_install

val create : ?detector_config:Homeguard_detector.Detector.config -> unit -> t

val propose : t -> Rule.smartapp -> report
(** Detect threats against the installed home; the report is what the
    user sees. *)

val decide : t -> decision -> unit
(** [Keep] installs and records the threat pairs as allowed; [Reject]
    and [Reconfigure] discard the proposal. *)

val installed_apps : t -> Rule.smartapp list

val pending : t -> report option
(** The proposal awaiting a decision, if any. *)

val uninstall : t -> string -> unit
(** Remove an installed app, its kept threats and its allowed edges. *)

val set_decision : t -> string -> Homeguard_handling.Policy.decision -> unit
(** Override the handling decision for a threat (by stable id); applies
    to every mediator compiled afterwards. *)

val policies : t -> Homeguard_handling.Policy.store

val kept_threats : t -> Homeguard_detector.Threat.t list
(** Threats accepted (via [Keep]) so far — the mediator's input. *)

val mediator :
  ?defer_delay_ms:int -> ?max_deferrals:int -> t -> Homeguard_handling.Mediator.t
(** Compile the runtime reference monitor over all kept threats under
    the current decisions. *)
