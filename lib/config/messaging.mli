(** SMS / HTTP(FCM) transport between the cloud and the HomeGuard phone
    app, as a latency model calibrated to the paper's §VIII-C
    measurements, with optional loss injection. *)

type transport = Sms | Http

val transport_to_string : transport -> string

val cloud_processing_mean : float
val sms_delivery_mean : float
val http_delivery_mean : float

type t

val create : ?seed:int -> ?loss_per_thousand:int -> unit -> t

val sample_latency : t -> transport -> float
(** One delivery's latency in ms, including cloud-side processing. *)

val send : t -> transport -> string -> float option
(** Deliver a URI; [None] when loss injection drops it. *)

val send_with_retry :
  ?max_attempts:int ->
  ?backoff_ms:float ->
  ?max_backoff_ms:float ->
  ?deadline_ms:float ->
  t ->
  transport ->
  string ->
  (float * int) option
(** Deliver with up to [max_attempts] (default 4) sends under capped
    decorrelated-jitter backoff: each simulated wait is drawn uniformly
    from [[backoff_ms, min (max_backoff_ms, prev * 3)]] (defaults 250 ms
    and 8 s), so retrying fleets desynchronize while a given [?seed]
    still replays exactly. [?deadline_ms] caps the total backoff spend —
    a retry whose wait would push past the caller's deadline is
    abandoned ([None]) instead of slept, so retries and backoff can
    never outlive the request that asked for them. Returns the total
    elapsed time (backoff included) and the attempts used, or [None]
    when every attempt was lost or the deadline cut retrying short. *)

val measure_mean : t -> transport -> trials:int -> float
val delivered : t -> (transport * string * float) list
val lost_count : t -> int
