(** Configuration recorder: per-home history of install-time bindings.

    Keeps the device-variable → 128-bit-device-id map and the user value
    map for every installed app (paper §IV-C). It supplies the detector's
    online notion of "same device" — exact id equality — and the
    configuration-value constraints (e.g. [threshold1 = 30]) that make
    overlap detection precise. *)

module Rule = Homeguard_rules.Rule
module Term = Homeguard_solver.Term

type app_config = {
  app_name : string;
  devices : (string * string) list;  (** var -> device id *)
  values : (string * Term.t) list;  (** var -> configured value *)
}

type t = { mutable configs : app_config list }

let create () = { configs = [] }

let record t config =
  t.configs <-
    config :: List.filter (fun c -> c.app_name <> config.app_name) t.configs

(** Plain-decimal integer parse. [int_of_string_opt] also accepts OCaml
    literal syntax — ["0x1f"], ["0b10"], ["1_000"] — which a URI value
    never means: a user who typed ["0x1f"] configured a string, and
    treating it as 31 silently changes solver constraints. *)
let decimal_of_string_opt s =
  let n = String.length s in
  let digits_from i =
    n > i
    && (let ok = ref true in
        String.iteri (fun j c -> if j >= i && not (c >= '0' && c <= '9') then ok := false) s;
        !ok)
  in
  if digits_from (if n > 0 && s.[0] = '-' then 1 else 0) then int_of_string_opt s else None

(** Record from a received configuration URI. Values that parse as
    plain decimal integers become numeric terms; everything else —
    including ["0x1f"]-style literals — stays a string. *)
let record_uri t (uri : Config_uri.t) =
  record t
    {
      app_name = uri.Config_uri.app_name;
      devices = uri.Config_uri.devices;
      values =
        List.map
          (fun (var, v) ->
            match decimal_of_string_opt v with
            | Some n -> (var, Term.Int n)
            | None -> (var, Term.Str v))
          uri.Config_uri.values;
    }

let find t app_name = List.find_opt (fun c -> c.app_name = app_name) t.configs

let device_id t app_name var =
  Option.bind (find t app_name) (fun c -> List.assoc_opt var c.devices)

(** Online same-device test: identical 128-bit device ids. *)
let same_device t (app1 : Rule.smartapp) v1 (app2 : Rule.smartapp) v2 =
  match (device_id t app1.Rule.name v1, device_id t app2.Rule.name v2) with
  | Some id1, Some id2 -> id1 = id2
  | _ -> false

(** Configured value constraints for an app (fed to the solver). *)
let app_constraints t (app : Rule.smartapp) =
  match find t app.Rule.name with Some c -> c.values | None -> []

(** A detector configuration backed by this recorder (the online,
    deployment-accurate mode). *)
let detector_config t : Homeguard_detector.Detector.config =
  {
    Homeguard_detector.Detector.same_device = same_device t;
    app_constraints = app_constraints t;
    reuse = true;
    budget = Homeguard_solver.Budget.default_spec;
    escalate = true;
    shared_cache = None;
    pair_cache = None;
  }
