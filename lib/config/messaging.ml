(** Messaging transport between the SmartThings cloud and the HomeGuard
    phone app (paper §VII-B).

    The real deployment uses SMS ([sendSmsMessage]) or HTTP relayed
    through Firebase Cloud Messaging. In this reproduction the transport
    is a latency model calibrated to the paper's measurements (§VIII-C):
    cloud-side processing ≈ 27 ms, SMS delivery ≈ 3120 ms, HTTP/FCM
    delivery ≈ 1058 ms (averages over 100 trials). Jitter is produced by
    a seeded LCG so experiments are reproducible. *)

type transport = Sms | Http

let transport_to_string = function Sms -> "SMS" | Http -> "HTTP"

(* Latency model parameters (milliseconds). *)
let cloud_processing_mean = 27.0
let sms_delivery_mean = 3120.0
let http_delivery_mean = 1058.0

type t = {
  mutable rng : int;
  mutable delivered : (transport * string * float) list;  (** newest first *)
  mutable lost : int;
  loss_per_thousand : int;  (** message-loss injection for failure tests *)
}

let create ?(seed = 7) ?(loss_per_thousand = 0) () =
  { rng = (seed * 48_271) land 0x3FFFFFFF; delivered = []; lost = 0; loss_per_thousand }

let next t =
  t.rng <- ((t.rng * 1_103_515_245) + 12_345) land 0x3FFFFFFF;
  t.rng

(* Positive noise with mean ~= spread/2 (sum of two uniforms, roughly
   triangular — enough to give realistic-looking variance). *)
let noise t spread =
  let a = float_of_int (next t mod spread) and b = float_of_int (next t mod spread) in
  (a +. b) /. 2.0

(** Latency of one delivery over [transport], in milliseconds,
    including cloud-side processing. *)
let sample_latency t transport =
  let processing = cloud_processing_mean -. 8.0 +. noise t 16 in
  let delivery =
    match transport with
    | Sms -> sms_delivery_mean -. 600.0 +. noise t 1200
    | Http -> http_delivery_mean -. 250.0 +. noise t 500
  in
  processing +. delivery

(** Deliver a configuration URI; returns the observed latency, or [None]
    if the message was lost (when loss injection is enabled). *)
let send t transport uri =
  if t.loss_per_thousand > 0 && next t mod 1000 < t.loss_per_thousand then begin
    t.lost <- t.lost + 1;
    None
  end
  else begin
    let latency = sample_latency t transport in
    t.delivered <- (transport, uri, latency) :: t.delivered;
    Some latency
  end

(** Deliver with retries under capped decorrelated-jitter backoff: up to
    [max_attempts] sends, waiting (in simulated time) a random interval
    in [[backoff_ms, min (max_backoff_ms, prev * 3)]] before each
    re-send. Decorrelating the waits keeps a fleet of homes that lost
    the same broadcast from re-sending in lockstep, and the cap bounds
    the worst-case wait; jitter draws come from the transport's seeded
    generator, so a given seed still replays exactly. Returns
    [Some (total_ms, attempts)] — delivery latency plus all backoff
    spent — or [None] when every attempt was lost. *)
let send_with_retry ?(max_attempts = 4) ?(backoff_ms = 250.0) ?(max_backoff_ms = 8_000.0)
    ?deadline_ms t transport uri =
  let base = Float.max 1.0 backoff_ms in
  let cap = Float.max base max_backoff_ms in
  let jittered prev =
    let hi = Float.min cap (prev *. 3.0) in
    let u = float_of_int (next t mod 1024) /. 1023.0 in
    base +. (u *. (hi -. base))
  in
  (* the caller's deadline caps the total backoff spend: a retry whose
     wait would push past it is abandoned instead of slept *)
  let within waited =
    match deadline_ms with None -> true | Some d -> waited <= d
  in
  let rec go attempt prev waited =
    match send t transport uri with
    | Some latency -> Some (waited +. latency, attempt)
    | None ->
      if attempt >= max_attempts then None
      else
        let sleep = jittered prev in
        if not (within (waited +. sleep)) then None
        else go (attempt + 1) sleep (waited +. sleep)
  in
  if max_attempts <= 0 || not (within 0.0) then None else go 1 base 0.0

(** Mean latency over [trials] deliveries (the §VIII-C experiment). *)
let measure_mean t transport ~trials =
  let total = ref 0.0 and count = ref 0 in
  for _ = 1 to trials do
    match send t transport "http://my.com/appname:probe/" with
    | Some l ->
      total := !total +. l;
      incr count
    | None -> ()
  done;
  if !count = 0 then 0.0 else !total /. float_of_int !count

let delivered t = List.rev t.delivered
let lost_count t = t.lost
