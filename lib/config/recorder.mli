(** Per-home configuration recorder: device-id bindings and user values
    for each installed app; backs the online (exact-identity) detector
    configuration. *)

module Rule = Homeguard_rules.Rule
module Term = Homeguard_solver.Term

type app_config = {
  app_name : string;
  devices : (string * string) list;
  values : (string * Term.t) list;
}

type t

val create : unit -> t
val record : t -> app_config -> unit

val decimal_of_string_opt : string -> int option
(** Plain decimal (["-"? digits]) only — rejects the OCaml literal
    forms ["0x1f"], ["0b10"], ["1_000"] that [int_of_string_opt]
    accepts. *)

(** Values parsing as plain decimal integers become [Term.Int];
    everything else stays [Term.Str]. *)
val record_uri : t -> Config_uri.t -> unit
val find : t -> string -> app_config option
val device_id : t -> string -> string -> string option
val same_device : t -> Rule.smartapp -> string -> Rule.smartapp -> string -> bool
val app_constraints : t -> Rule.smartapp -> (string * Term.t) list
val detector_config : t -> Homeguard_detector.Detector.config
