(** Request deadlines, propagated from admission down to the solver. *)

module Budget = Homeguard_solver.Budget

type clock = unit -> float
(** Milliseconds; only differences matter. Injectable for tests. *)

val wall_clock : clock

type t

val make : ?clock:clock -> ?timeout_ms:float -> unit -> t
(** Fix the deadline [timeout_ms] from now; omit it for an unbounded
    request. *)

val unbounded : t -> bool
val remaining_ms : t -> float
(** Never negative; [infinity] when unbounded. *)

val expired : t -> bool

val budget_spec : base:Budget.spec -> t -> Budget.spec
(** [base] with its wall-clock timeout clamped to the remaining
    allowance ({!Budget.of_deadline}); [base] unchanged when
    unbounded. Callers should also disable budget escalation — an 8x
    retry would outlive the deadline the budget was cut from. *)

val cancel : t -> unit -> bool
(** Cooperative-cancellation probe: [true] once the deadline passes. *)
