(** Load shedding: structured refusals and degraded results. A shed
    audit may report threats found so far but never "no threat". *)

type reason =
  | Queue_full of { retry_after_ms : int }
  | Deadline_expired
  | Overloaded
  | Shard_unavailable of { shard : string; retry_after_ms : int }
      (** breaker open or shard down awaiting restart *)

type 'a outcome =
  | Completed of 'a
  | Degraded of { reason : reason; partial : 'a option; shard : string option }
      (** [partial] is a lower bound on the threats present, never a
          clean bill; [shard] attributes the degradation to a worker
          when known *)

val describe_reason : reason -> string

val should_shed : Admission.t -> threshold:float -> Admission.priority -> bool
(** Interactive work is never shed here (it is bounded at admission);
    background work is shed once occupancy reaches [threshold]. *)

val conclusive : 'a outcome -> bool
(** Only a [Completed] outcome may support a "no threat" conclusion. *)
