(** The request broker: admission control, deadline propagation, load
    shedding and poison-app quarantine wired over one {!Home}.

    The division of labour: {!Admission} owns the bounds, {!Deadline}
    owns the clock, {!Shed} owns the refusal vocabulary, {!Quarantine}
    owns the K-failure counter, and {!Homeguard_store.Home} owns
    durability. The broker sequences them — admit, derive a budget from
    what remains of the deadline, run, attribute failures, journal
    quarantines — and turns the result into a structured reply the
    serve loop can print.

    Interactive installs run immediately under their deadline;
    background full re-audits are queued ({!submit_audit}) holding an
    admission ticket, and {!drain} runs or sheds them in order. *)

module Rule = Homeguard_rules.Rule
module Budget = Homeguard_solver.Budget
module Detector = Homeguard_detector.Detector
module Threat = Homeguard_detector.Threat
module Extract = Homeguard_symexec.Extract
module Install_flow = Homeguard_frontend.Install_flow
module Home = Homeguard_store.Home

type config = {
  max_queue : int;  (** per-home admission bound (queued + running) *)
  max_global : int;
  interactive_reserve : int;
  deadline_ms : float option;  (** default request deadline *)
  quarantine_after : int;  (** consecutive failures before quarantine *)
  shed_threshold : float;  (** occupancy at which background work sheds *)
  est_service_ms : int;
  clock : Deadline.clock;
  jobs : int;  (** audit parallelism *)
}

let default_config =
  {
    max_queue = 4;
    max_global = 16;
    interactive_reserve = 2;
    deadline_ms = None;
    quarantine_after = 3;
    shed_threshold = 0.75;
    est_service_ms = 50;
    clock = Deadline.wall_clock;
    jobs = 1;
  }

type job = { id : int; ticket : Admission.ticket; job_deadline : Deadline.t }

type t = {
  home : Home.t;
  config : config;
  admission : Admission.t;
  quarantine : Quarantine.t;
  mutable queue : job list;  (** FIFO; each job holds its ticket *)
  mutable next_job : int;
}

(* A broker fronts exactly one home; the per-home bound keys on this. *)
let home_key = "home"

let create ?(config = default_config) home =
  let admission =
    Admission.create ~max_per_home:config.max_queue ~max_global:config.max_global
      ~interactive_reserve:config.interactive_reserve
      ~est_service_ms:config.est_service_ms ()
  in
  let quarantine = Quarantine.create ~threshold:config.quarantine_after () in
  (* the journal is the authority: re-seed the counter's view from it *)
  List.iter
    (fun (app, reason) -> Quarantine.restore quarantine ~app ~reason)
    (Home.quarantined home);
  { home; config; admission; quarantine; queue = []; next_job = 1 }

let home t = t.home
let admission t = t.admission
let pending_jobs t = List.length t.queue

(* -- failure attribution ------------------------------------------------------ *)

(* One failure against [app]; tripping the threshold journals the
   quarantine so it survives restarts. *)
let note_failure t ~app ~reason =
  match Quarantine.note_failure t.quarantine ~app ~reason with
  | `Quarantined why ->
    Home.quarantine t.home ~app ~reason:why;
    true
  | `Counted _ -> false

(** Attribute an audit's crashes — and, when the run was healthy, its
    budget exhaustions — to apps, and reset the streak of every app
    that came through clean. Budget exhaustion under a degraded run
    (deadline-clamped budget, shed batches) says the service was
    overloaded, not that the app is poison, so it does not count. *)
let note_audit_result t ~degraded ~involved (r : Detector.audit_result) =
  let failed = Hashtbl.create 8 in
  let mark app reason =
    Hashtbl.replace failed app ();
    ignore (note_failure t ~app ~reason)
  in
  List.iter
    (fun (f : Detector.failure) ->
      let a1, a2 = f.apps in
      let reason = "pair detection crashed: " ^ f.exn in
      mark a1 reason;
      mark a2 reason)
    r.Detector.failures;
  if not degraded then
    List.iter
      (fun (th : Threat.t) ->
        if Threat.is_undecided th.Threat.severity then begin
          mark th.Threat.app1.Rule.name "solver budget exhausted";
          mark th.Threat.app2.Rule.name "solver budget exhausted"
        end)
      r.Detector.threats;
  List.iter
    (fun app ->
      if not (Hashtbl.mem failed app) then Quarantine.note_success t.quarantine app)
    involved

(* -- interactive installs ----------------------------------------------------- *)

type install_reply =
  | Proposed of {
      report : Install_flow.report;
      degraded : bool;
          (** the deadline cut the audit short: the threat list is a
              lower bound, never a clean bill *)
      elapsed_ms : float;
    }
  | Busy of { retry_after_ms : int }
  | Quarantined_app of { app : string; reason : string }
  | Install_failed of {
      app : string;
      error : string;
      quarantined : bool;  (** this failure tripped the threshold *)
    }

let install t ?deadline_ms ~name ~source () =
  match Home.quarantined t.home |> List.assoc_opt name with
  | Some reason -> Quarantined_app { app = name; reason }
  | None -> (
    match Admission.try_admit t.admission ~home:home_key Admission.Interactive with
    | Error retry_after_ms -> Busy { retry_after_ms }
    | Ok ticket ->
      Fun.protect ~finally:(fun () -> Admission.release t.admission ticket)
      @@ fun () ->
      let started = t.config.clock () in
      let timeout_ms =
        match deadline_ms with Some _ -> deadline_ms | None -> t.config.deadline_ms
      in
      let dl = Deadline.make ~clock:t.config.clock ?timeout_ms () in
      let fail error =
        let quarantined = note_failure t ~app:name ~reason:error in
        Install_failed { app = name; error; quarantined }
      in
      (match Extract.extract_source ~name source with
      | exception Extract.Extraction_error m -> fail ("extraction failed: " ^ m)
      | exception e -> fail ("extraction crashed: " ^ Printexc.to_string e)
      | { Extract.app; _ } -> (
        let budget = Deadline.budget_spec ~base:(Home.config t.home).Detector.budget dl in
        match Home.propose ~budget ~cancel:(Deadline.cancel dl) t.home app with
        | exception e -> fail ("audit crashed: " ^ Printexc.to_string e)
        | report ->
          let degraded =
            report.Install_flow.audit.Detector.shed > 0 || Deadline.expired dl
          in
          note_audit_result t ~degraded ~involved:[ name ]
            report.Install_flow.audit;
          Proposed { report; degraded; elapsed_ms = t.config.clock () -. started })))

(* -- background re-audits ----------------------------------------------------- *)

(** Enqueue a full re-audit. The job holds an admission ticket from the
    moment it is accepted, so queued background work counts against the
    bounds and later submissions see honest backpressure. *)
let submit_audit t ?deadline_ms () =
  match Admission.try_admit t.admission ~home:home_key Admission.Background with
  | Error retry_after_ms -> Error retry_after_ms
  | Ok ticket ->
    let timeout_ms =
      match deadline_ms with Some _ -> deadline_ms | None -> t.config.deadline_ms
    in
    let job_deadline = Deadline.make ~clock:t.config.clock ?timeout_ms () in
    let id = t.next_job in
    t.next_job <- id + 1;
    t.queue <- t.queue @ [ { id; ticket; job_deadline } ];
    Ok id

type audit_outcome =
  | Audited of {
      id : int;
      result : Detector.audit_result;
      degraded : bool;
      elapsed_ms : float;
    }
  | Shed_job of { id : int; reason : Shed.reason }

(** Run (or shed) every queued job, in submission order. A job whose
    deadline already passed is shed outright; under high occupancy
    background jobs are shed to protect interactive latency. Either way
    the reply is a structured [Degraded] — never a silent drop, never
    "no threat". *)
let drain t =
  let jobs = t.queue in
  t.queue <- [];
  List.map
    (fun job ->
      Fun.protect ~finally:(fun () -> Admission.release t.admission job.ticket)
      @@ fun () ->
      if Deadline.expired job.job_deadline then
        Shed_job { id = job.id; reason = Shed.Deadline_expired }
      else if
        Shed.should_shed t.admission ~threshold:t.config.shed_threshold
          Admission.Background
      then Shed_job { id = job.id; reason = Shed.Overloaded }
      else begin
        let started = t.config.clock () in
        let involved =
          List.filter_map
            (fun (a : Rule.smartapp) ->
              if Home.is_quarantined t.home a.Rule.name then None
              else Some a.Rule.name)
            (Home.installed_apps t.home)
        in
        let result =
          Home.audit ~jobs:t.config.jobs ~cancel:(Deadline.cancel job.job_deadline)
            t.home
        in
        let degraded =
          result.Detector.shed > 0 || Deadline.expired job.job_deadline
        in
        note_audit_result t ~degraded ~involved result;
        Audited
          { id = job.id; result; degraded; elapsed_ms = t.config.clock () -. started }
      end)
    jobs

(* -- quarantine management ---------------------------------------------------- *)

let quarantined t = Home.quarantined t.home

let clear_quarantine t app =
  let in_policy = Quarantine.clear t.quarantine app in
  let in_home = Home.unquarantine t.home app in
  in_policy || in_home

let status t =
  Printf.sprintf
    "in-flight %d/%d (home %d/%d) queued-jobs %d occupancy %.2f quarantined %d"
    (Admission.in_flight t.admission)
    t.config.max_global
    (Admission.home_in_flight t.admission home_key)
    t.config.max_queue (pending_jobs t)
    (Admission.occupancy t.admission)
    (List.length (quarantined t))
