(** The request broker: admission control, deadline propagation, load
    shedding and poison-app quarantine wired over a set of {!Home}s.

    The division of labour: {!Admission} owns the bounds, {!Deadline}
    owns the clock, {!Shed} owns the refusal vocabulary, {!Quarantine}
    owns the per-home K-failure counters, and {!Homeguard_store.Home}
    owns durability. The broker sequences them — admit, derive a budget
    from what remains of the deadline, run, attribute failures, journal
    quarantines — and turns the result into a structured reply the
    serve loop can print.

    A broker fronts any number of homes, each an explicit value added
    with {!add_home}: per-home admission bounds key on the real home
    id, and every reply and queued job carries the home it belongs to.
    This is what makes a fleet shard "just a map of homes" — a shard
    worker is one broker plus the homes the supervisor assigned it.

    Interactive installs run immediately under their deadline;
    background full re-audits are queued ({!submit_audit}) holding an
    admission ticket, and {!drain} runs or sheds them in order. *)

module Rule = Homeguard_rules.Rule
module Budget = Homeguard_solver.Budget
module Detector = Homeguard_detector.Detector
module Threat = Homeguard_detector.Threat
module Extract = Homeguard_symexec.Extract
module Install_flow = Homeguard_frontend.Install_flow
module Home = Homeguard_store.Home
module Fence = Homeguard_store.Fence

type config = {
  max_queue : int;  (** per-home admission bound (queued + running) *)
  max_global : int;
  interactive_reserve : int;
  deadline_ms : float option;  (** default request deadline *)
  quarantine_after : int;  (** consecutive failures before quarantine *)
  shed_threshold : float;  (** occupancy at which background work sheds *)
  est_service_ms : int;
  clock : Deadline.clock;
  jobs : int;  (** audit parallelism *)
}

let default_config =
  {
    max_queue = 4;
    max_global = 16;
    interactive_reserve = 2;
    deadline_ms = None;
    quarantine_after = 3;
    shed_threshold = 0.75;
    est_service_ms = 50;
    clock = Deadline.wall_clock;
    jobs = 1;
  }

type job = {
  home_id : string;
  id : int;
  ticket : Admission.ticket;
  job_deadline : Deadline.t;
}

(* Each home pairs its durable state with its own failure-streak
   counter: one poison home must not consume another home's strikes. *)
type entry = { home : Home.t; quarantine : Quarantine.t }

type t = {
  config : config;
  admission : Admission.t;
  mutable homes : (string * entry) list;  (** registration order *)
  mutable queue : job list;  (** FIFO; each job holds its ticket *)
  mutable next_job : int;
}

let create ?(config = default_config) () =
  let admission =
    Admission.create ~max_per_home:config.max_queue ~max_global:config.max_global
      ~interactive_reserve:config.interactive_reserve
      ~est_service_ms:config.est_service_ms ()
  in
  { config; admission; homes = []; queue = []; next_job = 1 }

let add_home t ~id home =
  if List.mem_assoc id t.homes then
    invalid_arg (Printf.sprintf "Broker.add_home: duplicate home %S" id);
  let quarantine = Quarantine.create ~threshold:t.config.quarantine_after () in
  (* the journal is the authority: re-seed the counter's view from it *)
  List.iter
    (fun (app, reason) -> Quarantine.restore quarantine ~app ~reason)
    (Home.quarantined home);
  t.homes <- t.homes @ [ (id, { home; quarantine }) ]

let remove_home t id =
  match List.assoc_opt id t.homes with
  | None -> None
  | Some entry ->
    t.homes <- List.remove_assoc id t.homes;
    (* queued jobs for the departing home release their tickets and
       vanish: their home is moving shards, not being dropped silently *)
    let stays, goes = List.partition (fun j -> j.home_id <> id) t.queue in
    List.iter (fun j -> Admission.release t.admission j.ticket) goes;
    t.queue <- stays;
    Some entry.home

let entry t id =
  match List.assoc_opt id t.homes with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "Broker: unknown home %S" id)

let home t id = (entry t id).home
let home_opt t id = Option.map (fun e -> e.home) (List.assoc_opt id t.homes)
let home_ids t = List.map fst t.homes
let homes t = List.map (fun (id, e) -> (id, e.home)) t.homes
let admission t = t.admission
let pending_jobs t = List.length t.queue

(* -- failure attribution ------------------------------------------------------ *)

(* One failure against [app] in [e]'s home; tripping the threshold
   journals the quarantine so it survives restarts. *)
let note_failure e ~app ~reason =
  match Quarantine.note_failure e.quarantine ~app ~reason with
  | `Quarantined why -> (
    match Home.quarantine e.home ~app ~reason:why with
    | () -> true
    | exception Fence.Stale _ ->
      (* this broker's home handle holds a stale ownership epoch: the
         journal refused the write, and the home's rightful owner will
         do its own failure accounting — a fenced-off shard must not
         poison the app *)
      false)
  | `Counted _ -> false

(** Attribute an audit's crashes — and, when the run was healthy, its
    budget exhaustions — to apps, and reset the streak of every app
    that came through clean. Budget exhaustion under a degraded run
    (deadline-clamped budget, shed batches) says the service was
    overloaded, not that the app is poison, so it does not count. *)
let note_audit_result e ~degraded ~involved (r : Detector.audit_result) =
  let failed = Hashtbl.create 8 in
  let mark app reason =
    Hashtbl.replace failed app ();
    ignore (note_failure e ~app ~reason)
  in
  List.iter
    (fun (f : Detector.failure) ->
      let a1, a2 = f.apps in
      let reason = "pair detection crashed: " ^ f.exn in
      mark a1 reason;
      mark a2 reason)
    r.Detector.failures;
  if not degraded then
    List.iter
      (fun (th : Threat.t) ->
        if Threat.is_undecided th.Threat.severity then begin
          mark th.Threat.app1.Rule.name "solver budget exhausted";
          mark th.Threat.app2.Rule.name "solver budget exhausted"
        end)
      r.Detector.threats;
  List.iter
    (fun app ->
      if not (Hashtbl.mem failed app) then Quarantine.note_success e.quarantine app)
    involved

(* -- interactive installs ----------------------------------------------------- *)

type install_reply =
  | Proposed of {
      report : Install_flow.report;
      degraded : bool;
          (** the deadline cut the audit short: the threat list is a
              lower bound, never a clean bill *)
      elapsed_ms : float;
    }
  | Busy of { retry_after_ms : int }
  | Quarantined_app of { app : string; reason : string }
  | Install_failed of {
      app : string;
      error : string;
      quarantined : bool;  (** this failure tripped the threshold *)
    }

let install t ~home:home_id ?deadline_ms ~name ~source () =
  let e = entry t home_id in
  match Home.quarantined e.home |> List.assoc_opt name with
  | Some reason -> Quarantined_app { app = name; reason }
  | None -> (
    match Admission.try_admit t.admission ~home:home_id Admission.Interactive with
    | Error retry_after_ms -> Busy { retry_after_ms }
    | Ok ticket ->
      Fun.protect ~finally:(fun () -> Admission.release t.admission ticket)
      @@ fun () ->
      let started = t.config.clock () in
      let timeout_ms =
        match deadline_ms with Some _ -> deadline_ms | None -> t.config.deadline_ms
      in
      let dl = Deadline.make ~clock:t.config.clock ?timeout_ms () in
      let fail error =
        let quarantined = note_failure e ~app:name ~reason:error in
        Install_failed { app = name; error; quarantined }
      in
      (match Extract.extract_source ~name source with
      | exception Extract.Extraction_error m -> fail ("extraction failed: " ^ m)
      | exception ex -> fail ("extraction crashed: " ^ Printexc.to_string ex)
      | { Extract.app; _ } -> (
        let budget = Deadline.budget_spec ~base:(Home.config e.home).Detector.budget dl in
        match Home.propose ~budget ~cancel:(Deadline.cancel dl) e.home app with
        | exception ex -> fail ("audit crashed: " ^ Printexc.to_string ex)
        | report ->
          let degraded =
            report.Install_flow.audit.Detector.shed > 0 || Deadline.expired dl
          in
          note_audit_result e ~degraded ~involved:[ name ]
            report.Install_flow.audit;
          Proposed { report; degraded; elapsed_ms = t.config.clock () -. started })))

(* -- background re-audits ----------------------------------------------------- *)

(** Enqueue a full re-audit of one home. The job holds an admission
    ticket from the moment it is accepted, so queued background work
    counts against the bounds and later submissions see honest
    backpressure. *)
let submit_audit t ~home:home_id ?deadline_ms () =
  ignore (entry t home_id);
  match Admission.try_admit t.admission ~home:home_id Admission.Background with
  | Error retry_after_ms -> Error retry_after_ms
  | Ok ticket ->
    let timeout_ms =
      match deadline_ms with Some _ -> deadline_ms | None -> t.config.deadline_ms
    in
    let job_deadline = Deadline.make ~clock:t.config.clock ?timeout_ms () in
    let id = t.next_job in
    t.next_job <- id + 1;
    t.queue <- t.queue @ [ { home_id; id; ticket; job_deadline } ];
    Ok id

type audit_outcome =
  | Audited of {
      home : string;
      id : int;
      result : Detector.audit_result;
      degraded : bool;
      elapsed_ms : float;
    }
  | Shed_job of { home : string; id : int; reason : Shed.reason }

(** Run (or shed) every queued job, in submission order. A job whose
    deadline already passed is shed outright; under high occupancy
    background jobs are shed to protect interactive latency. Either way
    the reply is a structured [Degraded] — never a silent drop, never
    "no threat". *)
let drain t =
  let jobs = t.queue in
  t.queue <- [];
  List.map
    (fun job ->
      Fun.protect ~finally:(fun () -> Admission.release t.admission job.ticket)
      @@ fun () ->
      if Deadline.expired job.job_deadline then
        Shed_job { home = job.home_id; id = job.id; reason = Shed.Deadline_expired }
      else if
        Shed.should_shed t.admission ~threshold:t.config.shed_threshold
          Admission.Background
      then Shed_job { home = job.home_id; id = job.id; reason = Shed.Overloaded }
      else
        match List.assoc_opt job.home_id t.homes with
        | None ->
          (* the home moved shards between submit and drain *)
          Shed_job { home = job.home_id; id = job.id; reason = Shed.Overloaded }
        | Some e ->
          let started = t.config.clock () in
          let involved =
            List.filter_map
              (fun (a : Rule.smartapp) ->
                if Home.is_quarantined e.home a.Rule.name then None
                else Some a.Rule.name)
              (Home.installed_apps e.home)
          in
          let result =
            Home.audit ~jobs:t.config.jobs
              ~cancel:(Deadline.cancel job.job_deadline) e.home
          in
          let degraded =
            result.Detector.shed > 0 || Deadline.expired job.job_deadline
          in
          note_audit_result e ~degraded ~involved result;
          Audited
            {
              home = job.home_id;
              id = job.id;
              result;
              degraded;
              elapsed_ms = t.config.clock () -. started;
            })
    jobs

(* -- quarantine management ---------------------------------------------------- *)

let quarantined t ~home:home_id = Home.quarantined (home t home_id)

let clear_quarantine t ~home:home_id app =
  let e = entry t home_id in
  let in_policy = Quarantine.clear e.quarantine app in
  let in_home = Home.unquarantine e.home app in
  in_policy || in_home

let quarantined_total t =
  List.fold_left
    (fun acc (_, e) -> acc + List.length (Home.quarantined e.home))
    0 t.homes

let status t =
  Printf.sprintf
    "homes %d in-flight %d/%d queued-jobs %d occupancy %.2f quarantined %d"
    (List.length t.homes)
    (Admission.in_flight t.admission)
    t.config.max_global (pending_jobs t)
    (Admission.occupancy t.admission)
    (quarantined_total t)
