(** Request deadlines, propagated from the front end down to the solver.

    A deadline is fixed when the request is admitted and only shrinks
    from there: time spent queueing, extracting and planning all come
    out of the same allowance, and whatever remains when a solve starts
    becomes its {!Budget.spec} wall-clock timeout (via
    {!Budget.of_deadline}). The clock is injectable so tests can move
    time by hand. *)

module Budget = Homeguard_solver.Budget

type clock = unit -> float
(** Monotonic-enough milliseconds; only differences are used. *)

let wall_clock () = Unix.gettimeofday () *. 1000.0

type t = {
  clock : clock;
  expires_at : float option;  (** absolute, in the clock's timebase *)
}

let make ?(clock = wall_clock) ?timeout_ms () =
  { clock; expires_at = Option.map (fun ms -> clock () +. ms) timeout_ms }

let unbounded t = t.expires_at = None

let remaining_ms t =
  match t.expires_at with
  | None -> infinity
  | Some e -> Float.max 0.0 (e -. t.clock ())

let expired t =
  match t.expires_at with None -> false | Some e -> t.clock () >= e

(** The per-solve budget for whatever remains of the request: the base
    budget with its timeout clamped to the remaining allowance. An
    unbounded deadline returns [base] unchanged. *)
let budget_spec ~base t =
  match t.expires_at with
  | None -> base
  | Some _ -> Budget.of_deadline ~base (remaining_ms t)

(** A cancellation probe for {!Detector.audit_pairs} and friends:
    batches stop being claimed the moment the deadline passes. *)
let cancel t () = expired t
