(** Load shedding: the structured way a request is refused or cut short.

    The one invariant that matters: a shed or degraded audit may report
    the threats it did find, but it may {e never} claim "no threat" —
    an attacker must not be able to launder a poison workload into a
    clean bill of health by overloading the detector (the conservatism
    rule of {!Homeguard_detector.Detector.audit_result.shed}, lifted to
    the request level). *)

type reason =
  | Queue_full of { retry_after_ms : int }
      (** refused at admission; retry after the hint *)
  | Deadline_expired  (** the request's allowance ran out *)
  | Overloaded  (** background work shed to protect interactive latency *)
  | Shard_unavailable of { shard : string; retry_after_ms : int }
      (** the owning shard's circuit breaker is open, or the shard is
          down awaiting restart; retry after the hint *)

type 'a outcome =
  | Completed of 'a
  | Degraded of { reason : reason; partial : 'a option; shard : string option }
      (** [partial] is whatever was computed before the cut — a lower
          bound on the threats present, never a clean bill. [shard]
          names the shard that degraded the request, when it is known,
          so operators can attribute shed traffic to a failing worker. *)

let describe_reason = function
  | Queue_full { retry_after_ms } ->
    Printf.sprintf "queue-full retry-after-ms=%d" retry_after_ms
  | Deadline_expired -> "deadline-expired"
  | Overloaded -> "overloaded"
  | Shard_unavailable { shard; retry_after_ms } ->
    Printf.sprintf "shard-unavailable shard=%s retry-after-ms=%d" shard retry_after_ms

(** Whether to shed a unit of work given current occupancy. Interactive
    work is never shed here (it is bounded at admission instead);
    background work is shed once occupancy reaches the threshold. *)
let should_shed admission ~threshold = function
  | Admission.Interactive -> false
  | Admission.Background -> Admission.occupancy admission >= threshold

(** [true] when the outcome may support a "no threat" conclusion:
    only a completed, non-degraded result can. *)
let conclusive = function Completed _ -> true | Degraded _ -> false
