(** Admission control: bounded per-home and global work queues with
    explicit backpressure replies. *)

type priority =
  | Interactive  (** install-time audits; a user is waiting *)
  | Background  (** full re-audits, post-recovery sweeps *)

type t
type ticket

val create :
  ?max_per_home:int ->
  ?max_global:int ->
  ?interactive_reserve:int ->
  ?est_service_ms:int ->
  unit ->
  t
(** Defaults: 4 per home, 16 global, 2 slots reserved for interactive
    work, 50 ms service estimate.
    @raise Invalid_argument on non-positive bounds or a reserve that
    consumes the whole global allowance. *)

val try_admit : t -> home:string -> priority -> (ticket, int) result
(** Admit or refuse immediately; [Error retry_after_ms] is the
    backpressure reply ([busy retry-after-ms=N]), always positive and
    proportional to the depth of the queue ahead of the caller
    ([est_service_ms] per queued request), so a deeper backlog pushes
    shed clients further out instead of recalling the whole cohort
    after one constant interval. Background admission is capped at
    [max_global - interactive_reserve] so maintenance bursts cannot
    starve the interactive path; the per-home bound applies to both
    priorities. *)

val release : t -> ticket -> unit
(** Idempotent; every admitted ticket must be released exactly once
    (extra releases are ignored). *)

val in_flight : t -> int
val home_in_flight : t -> string -> int

val occupancy : t -> float
(** Fraction of the global allowance in use, in [0, 1]. *)

val est_service_ms : t -> int
