(** Poison-app quarantine policy: K consecutive analysis failures trip
    quarantine. In-memory counting only — durability belongs to
    {!Homeguard_store.Home}, which journals quarantine events; the
    broker bridges the two. *)

type t

val create : ?threshold:int -> unit -> t
(** Default threshold: 3 consecutive failures.
    @raise Invalid_argument when [threshold < 1]. *)

val threshold : t -> int

val note_failure :
  t -> app:string -> reason:string -> [ `Counted of int | `Quarantined of string ]
(** [`Quarantined reason] on the K-th consecutive failure and every
    failure after; [`Counted n] below the threshold. *)

val note_success : t -> string -> unit
(** Reset the consecutive-failure counter (streaks trip quarantine, not
    lifetime totals). No effect on already-quarantined apps. *)

val restore : t -> app:string -> reason:string -> unit
(** Seed a quarantine recovered from the journal, without counting. *)

val clear : t -> string -> bool
(** Lift a quarantine and forget the history; [false] if not
    quarantined. *)

val is_quarantined : t -> string -> bool
val quarantined : t -> (string * string) list
val failure_count : t -> string -> int
