(** Poison-app quarantine policy: count per-app failures, trip at K.

    This module is the in-memory counting policy only; durability is
    {!Homeguard_store.Home}'s concern (it journals [Quarantine] events
    and replays them across restarts). The broker wires the two
    together: a [`Quarantined] verdict here becomes a journaled event
    there, and at startup the journal's survivors are {!restore}d here
    so the counter and the durable record agree. *)

type t = {
  threshold : int;  (** failures before quarantine trips *)
  failures : (string, int * string) Hashtbl.t;
      (** app -> (consecutive failures, last reason) *)
  mutable quarantined : (string * string) list;  (** (app, reason), trip order *)
}

let create ?(threshold = 3) () =
  if threshold < 1 then invalid_arg "Quarantine.create: threshold < 1";
  { threshold; failures = Hashtbl.create 16; quarantined = [] }

let threshold t = t.threshold
let is_quarantined t app = List.mem_assoc app t.quarantined
let quarantined t = t.quarantined

(** Record one failure against [app]. Returns [`Quarantined reason] the
    moment the K-th consecutive failure lands (and on every failure
    after — quarantine is sticky until {!clear}ed). *)
let note_failure t ~app ~reason =
  match List.assoc_opt app t.quarantined with
  | Some why -> `Quarantined why
  | None ->
    let count =
      match Hashtbl.find_opt t.failures app with Some (n, _) -> n + 1 | None -> 1
    in
    if count >= t.threshold then begin
      Hashtbl.remove t.failures app;
      let why =
        Printf.sprintf "%d consecutive analysis failures (last: %s)" count reason
      in
      t.quarantined <- t.quarantined @ [ (app, why) ];
      `Quarantined why
    end
    else begin
      Hashtbl.replace t.failures app (count, reason);
      `Counted count
    end

(** A clean analysis resets the consecutive-failure counter — only a
    streak of K failures trips quarantine, not K failures spread over a
    long, mostly-healthy history. No effect on already-quarantined
    apps. *)
let note_success t app = if not (is_quarantined t app) then Hashtbl.remove t.failures app

(** Seed a quarantine recovered from the journal (no re-counting). *)
let restore t ~app ~reason =
  if not (is_quarantined t app) then t.quarantined <- t.quarantined @ [ (app, reason) ]

(** Lift a quarantine and forget the failure history; [false] when the
    app was not quarantined. *)
let clear t app =
  let had = is_quarantined t app in
  t.quarantined <- List.filter (fun (a, _) -> a <> app) t.quarantined;
  Hashtbl.remove t.failures app;
  had

let failure_count t app =
  match Hashtbl.find_opt t.failures app with Some (n, _) -> n | None -> 0
