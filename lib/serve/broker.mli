(** The request broker: admission control, deadline propagation, load
    shedding and poison-app quarantine over one {!Homeguard_store.Home}. *)

module Detector = Homeguard_detector.Detector
module Install_flow = Homeguard_frontend.Install_flow
module Home = Homeguard_store.Home

type config = {
  max_queue : int;  (** per-home admission bound (queued + running) *)
  max_global : int;
  interactive_reserve : int;
  deadline_ms : float option;  (** default request deadline *)
  quarantine_after : int;  (** consecutive failures before quarantine *)
  shed_threshold : float;  (** occupancy at which background work sheds *)
  est_service_ms : int;
  clock : Deadline.clock;
  jobs : int;  (** audit parallelism *)
}

val default_config : config
(** max_queue 4, max_global 16, interactive_reserve 2, no default
    deadline, quarantine after 3, shed at 0.75 occupancy, 50 ms
    estimate, wall clock, 1 job. *)

type t

val create : ?config:config -> Home.t -> t
(** Quarantines recovered from the home's journal seed the in-memory
    counter, so durable state and policy agree from the first request. *)

val home : t -> Home.t
val admission : t -> Admission.t

(** {2 Interactive installs} *)

type install_reply =
  | Proposed of {
      report : Install_flow.report;
      degraded : bool;
          (** the deadline cut the audit short: the threat list is a
              lower bound, never a clean bill *)
      elapsed_ms : float;
    }
  | Busy of { retry_after_ms : int }  (** backpressure; retry later *)
  | Quarantined_app of { app : string; reason : string }
      (** refused before extraction: the app is quarantined *)
  | Install_failed of {
      app : string;
      error : string;
      quarantined : bool;  (** this failure tripped the threshold *)
    }

val install :
  t -> ?deadline_ms:float -> name:string -> source:string -> unit -> install_reply
(** Admit (Interactive), extract, audit against the home under the
    remaining deadline (budget via {!Deadline.budget_spec}, escalation
    off, cooperative cancellation). Extraction/audit crashes count
    toward quarantine; a successful proposal leaves the report pending
    in the home for [keep]/[reject]. *)

(** {2 Background re-audits} *)

val submit_audit : t -> ?deadline_ms:float -> unit -> (int, int) result
(** Enqueue a full re-audit; the job holds its admission ticket from
    acceptance, so queued work counts against the bounds.
    [Error retry_after_ms] is the backpressure reply. *)

type audit_outcome =
  | Audited of {
      id : int;
      result : Detector.audit_result;
      degraded : bool;
      elapsed_ms : float;
    }
  | Shed_job of { id : int; reason : Shed.reason }

val drain : t -> audit_outcome list
(** Run or shed every queued job in submission order: expired deadlines
    and over-threshold occupancy shed (structured, never a silent drop),
    the rest run with cooperative cancellation. *)

val pending_jobs : t -> int

(** {2 Quarantine management} *)

val quarantined : t -> (string * string) list
val clear_quarantine : t -> string -> bool

val status : t -> string
(** One-line occupancy/queue/quarantine summary for the serve loop. *)
