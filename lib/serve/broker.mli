(** The request broker: admission control, deadline propagation, load
    shedding and poison-app quarantine over a set of
    {!Homeguard_store.Home}s. A fleet shard is one broker plus the
    homes its supervisor assigned it; every reply and queued job
    carries the home id it belongs to. *)

module Detector = Homeguard_detector.Detector
module Install_flow = Homeguard_frontend.Install_flow
module Home = Homeguard_store.Home

type config = {
  max_queue : int;  (** per-home admission bound (queued + running) *)
  max_global : int;
  interactive_reserve : int;
  deadline_ms : float option;  (** default request deadline *)
  quarantine_after : int;  (** consecutive failures before quarantine *)
  shed_threshold : float;  (** occupancy at which background work sheds *)
  est_service_ms : int;
  clock : Deadline.clock;
  jobs : int;  (** audit parallelism *)
}

val default_config : config
(** max_queue 4, max_global 16, interactive_reserve 2, no default
    deadline, quarantine after 3, shed at 0.75 occupancy, 50 ms
    estimate, wall clock, 1 job. *)

type t

val create : ?config:config -> unit -> t
(** An empty broker; populate it with {!add_home}. *)

val add_home : t -> id:string -> Home.t -> unit
(** Register a home under [id]. Quarantines recovered from the home's
    journal seed its in-memory counter, so durable state and policy
    agree from the first request. Each home gets its own failure-streak
    counter; per-home admission bounds key on [id].
    @raise Invalid_argument on a duplicate id. *)

val remove_home : t -> string -> Home.t option
(** Unregister and return a home (for handing to another shard).
    Queued jobs for it release their tickets and are dropped; the
    caller owns closing or re-homing the returned value. [None] when
    the id is unknown. *)

val home : t -> string -> Home.t
(** @raise Invalid_argument on an unknown id. *)

val home_opt : t -> string -> Home.t option
val home_ids : t -> string list
val homes : t -> (string * Home.t) list
val admission : t -> Admission.t

(** {2 Interactive installs} *)

type install_reply =
  | Proposed of {
      report : Install_flow.report;
      degraded : bool;
          (** the deadline cut the audit short: the threat list is a
              lower bound, never a clean bill *)
      elapsed_ms : float;
    }
  | Busy of { retry_after_ms : int }
      (** backpressure; the hint scales with the queue depth ahead *)
  | Quarantined_app of { app : string; reason : string }
      (** refused before extraction: the app is quarantined *)
  | Install_failed of {
      app : string;
      error : string;
      quarantined : bool;  (** this failure tripped the threshold *)
    }

val install :
  t ->
  home:string ->
  ?deadline_ms:float ->
  name:string ->
  source:string ->
  unit ->
  install_reply
(** Admit (Interactive) against [home]'s bound, extract, audit against
    that home under the remaining deadline (budget via
    {!Deadline.budget_spec}, escalation off, cooperative cancellation).
    Extraction/audit crashes count toward that home's quarantine
    counter; a successful proposal leaves the report pending in the
    home for [keep]/[reject].
    @raise Invalid_argument on an unknown home id. *)

(** {2 Background re-audits} *)

val submit_audit : t -> home:string -> ?deadline_ms:float -> unit -> (int, int) result
(** Enqueue a full re-audit of [home]; the job holds its admission
    ticket from acceptance, so queued work counts against the bounds.
    [Error retry_after_ms] is the backpressure reply.
    @raise Invalid_argument on an unknown home id. *)

type audit_outcome =
  | Audited of {
      home : string;
      id : int;
      result : Detector.audit_result;
      degraded : bool;
      elapsed_ms : float;
    }
  | Shed_job of { home : string; id : int; reason : Shed.reason }

val drain : t -> audit_outcome list
(** Run or shed every queued job in submission order: expired deadlines
    and over-threshold occupancy shed (structured, never a silent drop),
    the rest run with cooperative cancellation. Every outcome names its
    home. *)

val pending_jobs : t -> int

(** {2 Quarantine management} *)

val quarantined : t -> home:string -> (string * string) list
val clear_quarantine : t -> home:string -> string -> bool
val quarantined_total : t -> int

val status : t -> string
(** One-line homes/occupancy/queue/quarantine summary for the serve
    loop. *)
