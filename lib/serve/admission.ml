(** Admission control: bounded per-home and global work queues with
    explicit backpressure.

    Every request must win a ticket before any work happens; a request
    that cannot be admitted is told so immediately, with a retry hint
    derived from the estimated service time and the depth of the queue
    ahead of it — overload surfaces as a fast, explicit [busy] reply
    instead of unbounded queueing and silent latency collapse.

    Interactive requests (install-time audits, a user is waiting) may
    use the whole global allowance; background work (full re-audits,
    post-recovery sweeps) is capped below it, so a burst of maintenance
    can never starve the interactive path. *)

type priority = Interactive | Background

type t = {
  max_per_home : int;
  max_global : int;
  interactive_reserve : int;
      (** global slots background work may never occupy *)
  est_service_ms : int;  (** per-request service estimate for retry hints *)
  mutex : Mutex.t;
  mutable per_home : (string * int) list;
  mutable global : int;
}

type ticket = { home : string; mutable released : bool }

let create ?(max_per_home = 4) ?(max_global = 16) ?(interactive_reserve = 2)
    ?(est_service_ms = 50) () =
  if max_per_home < 1 then invalid_arg "Admission.create: max_per_home < 1";
  if max_global < 1 then invalid_arg "Admission.create: max_global < 1";
  if interactive_reserve < 0 || interactive_reserve >= max_global then
    invalid_arg "Admission.create: interactive_reserve out of range";
  {
    max_per_home;
    max_global;
    interactive_reserve;
    est_service_ms;
    mutex = Mutex.create ();
    per_home = [];
    global = 0;
  }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let home_count t home =
  match List.assoc_opt home t.per_home with Some n -> n | None -> 0

let set_home_count t home n =
  t.per_home <-
    (if n = 0 then List.remove_assoc home t.per_home
     else if List.mem_assoc home t.per_home then
       List.map (fun (h, v) -> if h = home then (h, n) else (h, v)) t.per_home
     else (home, n) :: t.per_home)

(** How long until our turn, assuming the [depth] requests ahead of us
    drain at [est_service_ms] each. Scaling with the whole depth — not
    just the excess over the bound, which is ~1 for every refused
    client — spreads retries out proportionally to the actual backlog
    instead of having the entire shed cohort hammer back after one
    constant interval. Never zero: the caller must back off, not
    spin. *)
let retry_after t ~depth = t.est_service_ms * max 1 depth

let try_admit t ~home priority =
  with_lock t @@ fun () ->
  let global_cap =
    match priority with
    | Interactive -> t.max_global
    | Background -> t.max_global - t.interactive_reserve
  in
  let here = home_count t home in
  if here >= t.max_per_home then Error (retry_after t ~depth:here)
  else if t.global >= global_cap then Error (retry_after t ~depth:t.global)
  else begin
    set_home_count t home (here + 1);
    t.global <- t.global + 1;
    Ok { home; released = false }
  end

let release t ticket =
  with_lock t @@ fun () ->
  if not ticket.released then begin
    ticket.released <- true;
    set_home_count t ticket.home (max 0 (home_count t ticket.home - 1));
    t.global <- max 0 (t.global - 1)
  end

let in_flight t = with_lock t @@ fun () -> t.global
let home_in_flight t home = with_lock t @@ fun () -> home_count t home

(** Fraction of the global allowance in use, in [0, 1]. The shed policy
    compares this against its threshold. *)
let occupancy t =
  with_lock t @@ fun () -> float_of_int t.global /. float_of_int t.max_global

let est_service_ms t = t.est_service_ms
