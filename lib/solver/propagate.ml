(** Constraint propagation over a conjunct of atoms (HC4-style).

    Each atom is revised by a forward interval-evaluation of both term
    sides followed by backward narrowing through the term tree (the HC4
    algorithm used in interval CP solvers). Enum-typed atoms use set
    intersection/removal. Revision iterates to a fixpoint, capped by
    {!max_rounds} for safety — the cap never compromises soundness, only
    how much search has to do. *)

module SMap = Map.Make (String)

exception Unsat

type approx =
  | A_int of int * int  (** interval hull *)
  | A_enum of string list

let approx_of_domain = function
  | Domain.Ints [] -> raise Unsat
  | (Domain.Ints _ | Domain.Bits _) as d ->
    A_int (Option.get (Domain.min_int_opt d), Option.get (Domain.max_int_opt d))
  | Domain.Enums [] -> raise Unsat
  | Domain.Enums vs -> A_enum vs

(* Saturating arithmetic guards against overflow on the ±1e6 defaults. *)
let sat_add a b =
  let r = a + b in
  if a > 0 && b > 0 && r < 0 then max_int else if a < 0 && b < 0 && r > 0 then min_int else r

let sat_sub a b = sat_add a (if b = min_int then max_int else -b)

let sat_mul a b =
  if a = 0 || b = 0 then 0
  else
    let r = a * b in
    if r / b <> a then if (a > 0) = (b > 0) then max_int else min_int else r

let mul_bounds (la, ha) (lb, hb) =
  let products = [ sat_mul la lb; sat_mul la hb; sat_mul ha lb; sat_mul ha hb ] in
  (List.fold_left min max_int products, List.fold_left max min_int products)

type state = { mutable domains : Domain.t SMap.t; mutable dirty : bool }

let get st v =
  match SMap.find_opt v st.domains with
  | Some d -> d
  | None -> invalid_arg ("Propagate: variable not in store: " ^ v)

(* Only a strictly-narrowed domain marks the state dirty (and pays the
   map update); the fixpoint loop then just reads the flag instead of
   comparing whole-map snapshots every round. *)
let set st v d =
  if Domain.is_empty d then raise Unsat;
  let old = SMap.find_opt v st.domains in
  match old with
  | Some old when Domain.equal old d -> ()
  | _ ->
    st.dirty <- true;
    st.domains <- SMap.add v d st.domains

(* Forward: interval/set approximation of a term. *)
let rec forward st = function
  | Term.Int n -> A_int (n, n)
  | Term.Str s -> A_enum [ s ]
  | Term.Var v -> approx_of_domain (get st v)
  | Term.Add (a, b) -> (
    match (forward st a, forward st b) with
    | A_int (la, ha), A_int (lb, hb) -> A_int (sat_add la lb, sat_add ha hb)
    | _ -> invalid_arg "Propagate: arithmetic on enum term")
  | Term.Sub (a, b) -> (
    match (forward st a, forward st b) with
    | A_int (la, ha), A_int (lb, hb) -> A_int (sat_sub la hb, sat_sub ha lb)
    | _ -> invalid_arg "Propagate: arithmetic on enum term")
  | Term.Mul (a, b) -> (
    match (forward st a, forward st b) with
    | A_int (la, ha), A_int (lb, hb) ->
      let lo, hi = mul_bounds (la, ha) (lb, hb) in
      A_int (lo, hi)
    | _ -> invalid_arg "Propagate: arithmetic on enum term")
  | Term.Neg a -> (
    match forward st a with
    | A_int (la, ha) -> A_int (-ha, -la)
    | A_enum _ -> invalid_arg "Propagate: negation of enum term")

(* Backward: narrow a term's variables so the term fits [lo, hi]. *)
let rec narrow_int st term lo hi =
  if lo > hi then raise Unsat;
  match term with
  | Term.Int n -> if n < lo || n > hi then raise Unsat
  | Term.Str _ -> invalid_arg "Propagate: narrowing enum term with interval"
  | Term.Var v ->
    let d = get st v in
    set st v (Domain.at_least lo (Domain.at_most hi d))
  | Term.Add (a, b) -> (
    match (forward st a, forward st b) with
    | A_int (la, ha), A_int (lb, hb) ->
      narrow_int st a (max la (sat_sub lo hb)) (min ha (sat_sub hi lb));
      narrow_int st b (max lb (sat_sub lo ha)) (min hb (sat_sub hi la))
    | _ -> invalid_arg "Propagate: arithmetic on enum term")
  | Term.Sub (a, b) -> (
    (* a - b in [lo, hi]  =>  a in [lo + lb, hi + hb], b in [la - hi, ha - lo] *)
    match (forward st a, forward st b) with
    | A_int (la, ha), A_int (lb, hb) ->
      narrow_int st a (max la (sat_add lo lb)) (min ha (sat_add hi hb));
      narrow_int st b (max lb (sat_sub la hi)) (min hb (sat_sub ha lo))
    | _ -> invalid_arg "Propagate: arithmetic on enum term")
  | Term.Mul (a, b) -> (
    (* Narrow only through constant factors (the common linear case). *)
    match (a, b) with
    | Term.Int k, other | other, Term.Int k ->
      if k > 0 then
        (* k*x in [lo,hi] => x in [ceil(lo/k), floor(hi/k)] *)
        let ceil_div p q = if p >= 0 then (p + q - 1) / q else p / q in
        let floor_div p q = if p >= 0 then p / q else -((-p + q - 1) / q) in
        narrow_int st other (ceil_div lo k) (floor_div hi k)
      else if k < 0 then
        let k' = -k in
        let ceil_div p q = if p >= 0 then (p + q - 1) / q else p / q in
        let floor_div p q = if p >= 0 then p / q else -((-p + q - 1) / q) in
        narrow_int st other (ceil_div (-hi) k') (floor_div (-lo) k')
      else if lo > 0 || hi < 0 then raise Unsat
    | _ -> () (* sound: no narrowing for var*var *))
  | Term.Neg a -> narrow_int st a (-hi) (-lo)

let narrow_enum st term allowed =
  match term with
  | Term.Str s -> if not (List.mem s allowed) then raise Unsat
  | Term.Var v ->
    let d = get st v in
    set st v (Domain.inter d (Domain.enums allowed))
  | _ -> invalid_arg "Propagate: enum narrowing of arithmetic term"

(* Classify an atom's sides: both enum, both int, or mixed. *)
type side_type = S_int | S_enum

let rec side_type st = function
  | Term.Int _ -> S_int
  | Term.Str _ -> S_enum
  | Term.Var v -> (
    match get st v with
    | Domain.Ints _ | Domain.Bits _ -> S_int
    | Domain.Enums _ -> S_enum)
  | Term.Add _ | Term.Sub _ | Term.Mul _ -> S_int
  | Term.Neg t -> side_type st t

let revise_atom st (cmp, a, b) =
  match (side_type st a, side_type st b) with
  | S_int, S_int -> (
    match (forward st a, forward st b) with
    | A_int (la, ha), A_int (lb, hb) -> (
      match cmp with
      | Formula.Eq ->
        let lo = max la lb and hi = min ha hb in
        narrow_int st a lo hi;
        narrow_int st b lo hi
      | Formula.Le ->
        narrow_int st a la (min ha hb);
        narrow_int st b (max la lb) hb
      | Formula.Lt ->
        narrow_int st a la (min ha (sat_sub hb 1));
        narrow_int st b (max (sat_add la 1) lb) hb
      | Formula.Ge ->
        narrow_int st a (max la lb) ha;
        narrow_int st b lb (min ha hb)
      | Formula.Gt ->
        narrow_int st a (max la (sat_add lb 1)) ha;
        narrow_int st b lb (min hb (sat_sub ha 1))
      | Formula.Neq -> (
        if la = ha && lb = hb && la = lb then raise Unsat
        else
          (* prune only the bare-variable-vs-singleton cases *)
          match (a, b) with
          | Term.Var v, _ when lb = hb -> set st v (Domain.remove_int lb (get st v))
          | _, Term.Var v when la = ha -> set st v (Domain.remove_int la (get st v))
          | _ -> ()))
    | _ -> assert false)
  | S_enum, S_enum -> (
    match (forward st a, forward st b) with
    | A_enum va, A_enum vb -> (
      match cmp with
      | Formula.Eq ->
        let common = List.filter (fun v -> List.mem v vb) va in
        narrow_enum st a common;
        narrow_enum st b common
      | Formula.Neq -> (
        match (va, vb) with
        | [ x ], [ y ] when x = y -> raise Unsat
        | [ x ], _ -> (
          match b with
          | Term.Var v -> set st v (Domain.remove_str x (get st v))
          | _ -> ())
        | _, [ y ] -> (
          match a with
          | Term.Var v -> set st v (Domain.remove_str y (get st v))
          | _ -> ())
        | _ -> ())
      | Formula.Lt | Formula.Le | Formula.Gt | Formula.Ge ->
        invalid_arg "Propagate: ordering on enum terms")
    | _ -> assert false)
  | _ -> (
    (* mixed int/enum: equality is impossible, disequality trivial *)
    match cmp with
    | Formula.Eq -> raise Unsat
    | Formula.Neq -> ()
    | _ -> invalid_arg "Propagate: ordering between int and enum terms")

let max_rounds = 100

(** [run ?budget domains atoms] propagates to fixpoint. Returns the
    narrowed domains; raises {!Unsat} on wipe-out. Each atom revision
    spends one step of [budget]'s propagation fuel, so an exhausted
    budget surfaces as {!Budget.Exhausted} — never as {!Unsat}. *)
let run ?budget domains atoms =
  let st = { domains; dirty = true } in
  let spend =
    match budget with
    | None -> fun () -> ()
    | Some b -> fun () -> Budget.spend_prop b ~where:"Propagate.run"
  in
  let rounds = ref 0 in
  while st.dirty && !rounds < max_rounds do
    incr rounds;
    st.dirty <- false;
    List.iter
      (fun atom ->
        spend ();
        revise_atom st atom)
      atoms;
  done;
  st.domains
