(** Finite domains for solver variables: interval sets over integers and
    enumerated string sets. *)

type iset = (int * int) list
(** Sorted, disjoint, non-adjacent closed intervals. *)

type t =
  | Ints of iset
  | Bits of { off : int; bits : int }
      (** Packed small-domain fast path: the set [{off + i | bit i set}].
          Canonical — non-empty, bit 0 set, span within one word. *)
  | Enums of string list

type value = Int of int | Str of string
(** A concrete domain member. *)

val bitset_enabled : bool ref
(** When false, constructors always produce the interval-set
    representation. The representations are semantically equivalent;
    this is an A/B switch for benchmarking and an escape hatch. *)

val to_iset : t -> iset
(** Interval-set view of an integer domain (either representation).
    Raises [Invalid_argument] on enum domains. *)

val empty_ints : t
val empty_enums : t

val interval : int -> int -> t
(** [interval lo hi] — all integers in [lo..hi]. *)

val int_singleton : int -> t
val enums : string list -> t
(** Duplicates are removed; order is normalised. *)

val enum_singleton : string -> t
val is_empty : t -> bool
val size : t -> int
val mem_int : int -> t -> bool
val mem_str : string -> t -> bool
val min_int_opt : t -> int option
val max_int_opt : t -> int option

exception Type_clash
(** Raised when combining an integer domain with an enum domain. *)

val inter : t -> t -> t
val union : t -> t -> t
val remove_int : int -> t -> t
val remove_str : string -> t -> t

val at_most : int -> t -> t
(** Keep only values [<= hi] (identity on enums). *)

val at_least : int -> t -> t

val value_to_string : value -> string
val singleton_value : t -> value option

val choose : t -> value option
(** A representative member — for ints, the one closest to zero. *)

val distance_to_zero : t -> int
(** 0 when 0 is a member; used to order search branches. *)

val split : t -> t * t
(** Bisect a domain of size >= 2 into two non-empty halves. *)

val values : t -> value list
(** All members, smallest first. Linear in {!size}. *)

val to_string : t -> string
val equal : t -> t -> bool
