(** Finite domains for solver variables.

    Integer domains are interval sets: sorted lists of disjoint,
    non-adjacent closed intervals — the classic FD-solver representation
    (JaCoP's IntervalDomain, which the paper uses, has the same shape).
    Narrow integer domains (span < 63) additionally carry a packed
    bitset representation: most rule domains are tiny enums or short
    intervals, and bit operations make the inner propagation loop cheap.
    Enumerated domains are sorted string lists.

    Representation invariants for [Bits { off; bits }]: [bits <> 0],
    bit 0 is set (so [off] is the least member) and all set bits lie in
    0..62. The canonical form makes structural comparison of two [Bits]
    values coincide with semantic equality. *)

type iset = (int * int) list  (** sorted, disjoint, non-adjacent [lo,hi] *)

type t =
  | Ints of iset
  | Bits of { off : int; bits : int }  (** {off + i | bit i of bits set} *)
  | Enums of string list  (** sorted, distinct *)

(** When false, integer domains always use the interval-set
    representation. The two representations are semantically
    indistinguishable; the flag exists for A/B benchmarking and as an
    escape hatch. *)
let bitset_enabled = ref true

(* Bits can hold spans of at most this many values (bit indices 0..62;
   shifts by >= Sys.int_size - 1 are unspecified in OCaml, so stay clear). *)
let max_bits = 62

let empty_ints : t = Ints []
let empty_enums : t = Enums []

(* -- interval-set algebra ------------------------------------------------ *)

(* Normalise a list of possibly overlapping intervals. *)
let normalize intervals =
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) intervals in
  let rec merge = function
    | [] -> []
    | [ iv ] -> [ iv ]
    | (a1, b1) :: (a2, b2) :: rest ->
      (* [b1 = max_int] always merges — [b1 + 1] would wrap negative *)
      if b1 = max_int || a2 <= b1 + 1 then merge ((a1, max b1 b2) :: rest)
      else (a1, b1) :: merge ((a2, b2) :: rest)
  in
  merge (List.filter (fun (a, b) -> a <= b) sorted)

let iset_mem n iv = List.exists (fun (a, b) -> a <= n && n <= b) iv

let iset_inter xs ys =
  let rec go xs ys acc =
    match (xs, ys) with
    | [], _ | _, [] -> List.rev acc
    | (a1, b1) :: xs', (a2, b2) :: ys' ->
      let lo = max a1 a2 and hi = min b1 b2 in
      let acc = if lo <= hi then (lo, hi) :: acc else acc in
      if b1 < b2 then go xs' ys acc else go xs ys' acc
  in
  go xs ys []

let iset_union xs ys = normalize (xs @ ys)

let iset_remove n iv =
  List.concat_map
    (fun (a, b) ->
      if n < a || n > b then [ (a, b) ]
      else
        (if a <= n - 1 && n > min_int then [ (a, n - 1) ] else [])
        @ if n + 1 <= b && n < max_int then [ (n + 1, b) ] else [])
    iv

(* Keep only values <= hi. *)
let iset_at_most hi iv =
  List.filter_map (fun (a, b) -> if a > hi then None else Some (a, min b hi)) iv

let iset_at_least lo iv =
  List.filter_map (fun (a, b) -> if b < lo then None else Some (max a lo, b)) iv

(* -- bitset representation ----------------------------------------------- *)

(* Span [hi - lo] computed overflow-safely: a mathematical difference
   beyond max_int wraps negative, so [d >= 0] also rejects overflow. *)
let span_fits lo hi =
  let d = hi - lo in
  d >= 0 && d < max_bits

let iset_of_bits off bits =
  let rec runs i acc =
    if i > max_bits then List.rev acc
    else if bits land (1 lsl i) = 0 then runs (i + 1) acc
    else begin
      let j = ref i in
      while !j <= max_bits && bits land (1 lsl !j) <> 0 do
        incr j
      done;
      runs !j ((off + i, off + !j - 1) :: acc)
    end
  in
  runs 0 []

(* Lowest set bit index of a non-zero word. *)
let lowest_bit bits =
  let rec go i = if bits land (1 lsl i) <> 0 then i else go (i + 1) in
  go 0

let highest_bit bits =
  let rec go i = if bits land (1 lsl i) <> 0 then i else go (i - 1) in
  go max_bits

let popcount bits =
  let rec go b acc = if b = 0 then acc else go (b land (b - 1)) (acc + 1) in
  go bits 0

(* Canonicalise: shift so bit 0 is set; empty becomes [Ints []]. *)
let of_bits off bits =
  if bits = 0 then Ints []
  else
    let l = lowest_bit bits in
    Bits { off = off + l; bits = bits lsr l }

(* Choose the representation for a normalised interval set. *)
let of_iset iv : t =
  match iv with
  | [] -> Ints []
  | (lo, _) :: _ when !bitset_enabled ->
    let rec last = function [ (_, b) ] -> b | _ :: rest -> last rest | [] -> assert false in
    let hi = last iv in
    if span_fits lo hi then
      Bits
        { off = lo;
          bits =
            List.fold_left
              (fun acc (a, b) ->
                let rec fill acc i = if i > b - lo then acc else fill (acc lor (1 lsl i)) (i + 1) in
                fill acc (a - lo))
              0 iv }
    else Ints iv
  | _ -> Ints iv

(** The interval-set view of any integer domain. *)
let to_iset = function
  | Ints iv -> iv
  | Bits { off; bits } -> iset_of_bits off bits
  | Enums _ -> invalid_arg "Domain.to_iset: enum domain"

(* -- constructors -------------------------------------------------------- *)

let interval lo hi : t = of_iset (normalize [ (lo, hi) ])
let int_singleton n : t = of_iset [ (n, n) ]

let enums values : t = Enums (List.sort_uniq compare values)
let enum_singleton v : t = Enums [ v ]

let is_empty = function Ints iv -> iv = [] | Bits _ -> false | Enums vs -> vs = []

let size = function
  | Ints iv -> List.fold_left (fun acc (a, b) -> acc + (b - a + 1)) 0 iv
  | Bits { bits; _ } -> popcount bits
  | Enums vs -> List.length vs

let mem_int n = function
  | Ints iv -> iset_mem n iv
  | Bits { off; bits } ->
    (* [n >= off] first, comparison not subtraction: [n - off] can wrap
       either way at the extremes of the int range *)
    n >= off
    &&
    let d = n - off in
    d >= 0 && d <= max_bits && bits land (1 lsl d) <> 0
  | Enums _ -> false

let mem_str s = function Enums vs -> List.mem s vs | Ints _ | Bits _ -> false

let min_int_opt = function
  | Ints ((a, _) :: _) -> Some a
  | Bits { off; _ } -> Some off
  | _ -> None

let max_int_opt = function
  | Ints iv -> ( match List.rev iv with (_, b) :: _ -> Some b | [] -> None)
  | Bits { off; bits } -> Some (off + highest_bit bits)
  | Enums _ -> None

exception Type_clash

(** Intersection; raises {!Type_clash} on int/enum mismatch. *)
let inter d1 d2 =
  match (d1, d2) with
  | Bits b1, Bits b2 ->
    (* Align both words to the larger offset; members below it cannot be
       common, and both spans end within 62 bits of it. A wrapped
       (negative) shift distance means the true distance exceeds the
       span, i.e. no overlap. *)
    let off = max b1.off b2.off in
    let shift boff bbits =
      let s = off - boff in
      if s < 0 || s > max_bits then 0 else bbits lsr s
    in
    of_bits off (shift b1.off b1.bits land shift b2.off b2.bits)
  | (Ints _ | Bits _), (Ints _ | Bits _) -> of_iset (iset_inter (to_iset d1) (to_iset d2))
  | Enums x, Enums y -> Enums (List.filter (fun v -> List.mem v y) x)
  | _ -> raise Type_clash

let union d1 d2 =
  match (d1, d2) with
  | Bits b1, Bits b2 -> (
    let off = min b1.off b2.off in
    let s1 = b1.off - off and s2 = b2.off - off in
    (* joint span must still fit one word. Check each shift distance
       against [max_bits] BEFORE summing with the span: a wrapped
       (negative) or huge distance would overflow the sum right back
       into range and let a garbage shift through the guard *)
    let fits s bits = s >= 0 && s <= max_bits && s + highest_bit bits <= max_bits in
    if fits s1 b1.bits && fits s2 b2.bits then
      of_bits off ((b1.bits lsl s1) lor (b2.bits lsl s2))
    else of_iset (iset_union (to_iset d1) (to_iset d2)))
  | (Ints _ | Bits _), (Ints _ | Bits _) -> of_iset (iset_union (to_iset d1) (to_iset d2))
  | Enums x, Enums y -> Enums (List.sort_uniq compare (x @ y))
  | _ -> raise Type_clash

let remove_int n = function
  | Ints iv -> Ints (iset_remove n iv)
  | Bits { off; bits } ->
    if n >= off then
      let d = n - off in
      if d >= 0 && d <= max_bits then of_bits off (bits land lnot (1 lsl d))
      else Bits { off; bits }
    else Bits { off; bits }
  | Enums _ as d -> d

let remove_str s = function
  | Enums vs -> Enums (List.filter (fun v -> v <> s) vs)
  | (Ints _ | Bits _) as d -> d

let at_most hi = function
  | Ints iv -> Ints (iset_at_most hi iv)
  | Bits { off; bits } as d ->
    if hi < off then Ints []
    else
      let k = hi - off in
      (* wrapped-negative k means hi is far above the whole span *)
      if k < 0 || k >= max_bits then d
      else of_bits off (bits land ((1 lsl (k + 1)) - 1))
  | Enums _ as d -> d

let at_least lo = function
  | Ints iv -> Ints (iset_at_least lo iv)
  | Bits { off; bits } as d ->
    if lo <= off then d
    else
      let k = lo - off in
      if k < 0 || k > max_bits then Ints [] (* wrapped or past the span *)
      else of_bits off (bits land lnot ((1 lsl k) - 1))
  | Enums _ as d -> d

(** The single value if the domain is a singleton. *)
type value = Int of int | Str of string

let value_to_string = function Int n -> string_of_int n | Str s -> s

let singleton_value = function
  | Ints [ (a, b) ] when a = b -> Some (Int a)
  | Bits { off; bits } when bits = 1 -> Some (Int off)
  | Enums [ v ] -> Some (Str v)
  | _ -> None

(* Magnitude that is safe on [min_int]: [abs min_int] is negative in
   OCaml, which silently misorders "closest to zero" comparisons. *)
let mag n = if n >= 0 then n else if n = min_int then max_int else -n

(** Any representative value — for ints, the member closest to zero, so
    witness models read naturally. *)
let choose d =
  match d with
  | Ints [] | Enums [] -> None
  | Enums (v :: _) -> Some (Str v)
  | Ints _ | Bits _ ->
    let iv = to_iset d in
    let best (a, b) = if a <= 0 && 0 <= b then 0 else if mag a < mag b then a else b in
    let candidates = List.map best iv in
    Some
      (Int
         (List.fold_left
            (fun acc n -> if mag n < mag acc then n else acc)
            (List.hd candidates) candidates))

(** Distance from the domain to zero (0 when 0 is a member); used to
    order search branches so models prefer small-magnitude values.
    Saturates at [max_int] for far-away or empty domains. *)
let distance_to_zero d =
  match d with
  | Enums _ -> 0
  | Ints _ | Bits _ -> (
    match choose d with Some (Int n) -> mag n | _ -> max_int)

(** Split a domain into two non-empty halves for search (requires
    [size >= 2]). *)
let split = function
  | (Ints _ | Bits _) as d ->
    let lo = Option.get (min_int_opt d) and hi = Option.get (max_int_opt d) in
    (* Same sign: [hi - lo] cannot overflow. Mixed signs: [lo + hi]
       cannot, and [asr] floors so [mid < hi] even for [(-1, 0)]. *)
    let mid =
      if lo >= 0 = (hi >= 0) then lo + ((hi - lo) / 2) else (lo + hi) asr 1
    in
    (at_most mid d, at_least (mid + 1) d)
  | Enums vs ->
    let n = List.length vs / 2 in
    let rec take k = function
      | x :: rest when k > 0 ->
        let l, r = take (k - 1) rest in
        (x :: l, r)
      | rest -> ([], rest)
    in
    let l, r = take (max 1 n) vs in
    (Enums l, Enums r)

let values = function
  | (Ints _ | Bits _) as d ->
    List.concat_map (fun (a, b) -> List.init (b - a + 1) (fun i -> Int (a + i))) (to_iset d)
  | Enums vs -> List.map (fun v -> Str v) vs

let to_string = function
  | (Ints _ | Bits _) as d ->
    let part (a, b) = if a = b then string_of_int a else Printf.sprintf "%d..%d" a b in
    "{" ^ String.concat ", " (List.map part (to_iset d)) ^ "}"
  | Enums vs -> "{" ^ String.concat ", " vs ^ "}"

(** Semantic equality: the interval-set and bitset representations of
    the same integer set compare equal. *)
let equal d1 d2 =
  match (d1, d2) with
  | Ints a, Ints b -> a = b
  | Bits a, Bits b -> a.off = b.off && a.bits = b.bits
  | Enums a, Enums b -> a = b
  | (Ints _ | Bits _), (Ints _ | Bits _) -> to_iset d1 = to_iset d2
  | _ -> false
