(** Solver resource budgets (propagation fuel, search-node fuel,
    wall-clock deadline) and the three-valued {!verdict} that keeps
    budget exhaustion distinct from unsatisfiability. *)

type trip = Prop_fuel | Node_fuel | Deadline | Depth

type reason = { trip : trip; where : string }
(** Which budget tripped, and in which solver stage. *)

exception Exhausted of reason

val trip_to_string : trip -> string
val reason_to_string : reason -> string

type 'a verdict = Sat of 'a | Unsat | Unknown of reason
(** [Unknown] means "budget ran out before deciding"; no solver or
    detector path may convert it into [Unsat] / "no threat". *)

type spec = {
  prop_steps : int option;
  search_nodes : int option;
  timeout_ms : float option;
}
(** Immutable budget configuration; [None] fields are unlimited. *)

val unlimited_spec : spec

val default_spec : spec
(** Generous caps that rule-sized formulas never approach: the full
    corpus audit reports zero undecided pairs under this spec. *)

val spec_of_nodes : int -> spec
(** From the CLI's single [--solver-budget] knob: [n] search nodes with
    proportional propagation fuel; [n <= 0] is unlimited. *)

val of_deadline : ?base:spec -> float -> spec
(** [of_deadline ~base remaining_ms]: [base] (default {!default_spec})
    with its solve timeout clamped to the caller's remaining wall-clock
    time, so a request never consumes solver time past its own deadline.
    A non-positive remainder produces an already-expired budget. *)

val escalate : ?factor:int -> spec -> spec
(** The retry budget: every finite limit multiplied (default 8x). *)

val fingerprint : spec -> string
(** Stable string identifying the spec, for verdict cache keys. *)

val cache_fingerprint : spec -> string
(** {!fingerprint} with any finite wall-clock timeout collapsed to
    ["tdl"]: definitive verdicts are independent of the remaining
    deadline, so deadline-derived specs (which differ per request only
    in milliseconds left) share cache classes. Fuel tiers stay exact. *)

type t
(** Mutable fuel state for one solve. *)

val wall_clock : unit -> float
(** [Unix.gettimeofday] — the default deadline clock. *)

val set_clock : (unit -> float) -> unit
(** Install the process-default deadline clock (seconds,
    [gettimeofday]-like). Virtual-time harnesses use this so solver
    deadlines trip deterministically; production never calls it. *)

val reset_clock : unit -> unit
(** Restore {!wall_clock} as the process default. *)

val start : ?clock:(unit -> float) -> spec -> t
(** Arm a budget. The deadline (if any) is anchored on [?clock]
    (default: the process-default clock) and polled against it. *)

val unlimited : unit -> t

val spend_prop : t -> where:string -> unit
(** Consume one propagation step; raises {!Exhausted} when fuel or the
    deadline runs out. *)

val spend_node : t -> where:string -> unit
(** Consume one search node; raises {!Exhausted} on exhaustion. *)

val check_deadline : t -> where:string -> unit
