(** Disjunctive normal form of quantifier-free formulas.

    After NNF (negations pushed into comparators) a formula is a
    positive combination of atoms; DNF yields a list of conjuncts, each a
    plain atom list. Rule formulas are small, so the exponential
    worst case is bounded by {!max_conjuncts} as a safety valve. *)

exception Too_large

type atom = Formula.cmp * Term.t * Term.t

type conjunct = atom list

let max_conjuncts = 4096

(* Cartesian conjunction of two DNFs. *)
let cross d1 d2 =
  let result = List.concat_map (fun c1 -> List.map (fun c2 -> c1 @ c2) d2) d1 in
  if List.length result > max_conjuncts then raise Too_large;
  result

let of_formula_uncached f =
  let rec go = function
    | Formula.True -> [ [] ]
    | Formula.False -> []
    | Formula.Atom (cmp, a, b) -> [ [ (cmp, a, b) ] ]
    | Formula.And fs -> List.fold_left (fun acc f -> cross acc (go f)) [ [] ] fs
    | Formula.Or fs ->
      let result = List.concat_map go fs in
      if List.length result > max_conjuncts then raise Too_large;
      result
    | Formula.Not _ -> invalid_arg "Dnf.of_formula: formula not in NNF"
  in
  go (Formula.nnf f)

(* DNF conversions memoized per OCaml domain, keyed on the hash-consed
   formula. [Too_large] is cached as [None] so pathological formulas pay
   the blowup once per worker rather than once per solve. *)
let memo_key : (Formula.t, conjunct list option) Hashtbl.t Stdlib.Domain.DLS.key =
  Stdlib.Domain.DLS.new_key (fun () -> Hashtbl.create 256)

let memo_limit = 4096

(** [of_formula f] converts to DNF. An empty list means unsatisfiable
    ([False]); a list containing an empty conjunct means [True]. *)
let of_formula f =
  if not !Formula.memo_enabled then of_formula_uncached f
  else begin
    let f = Formula.hashcons f in
    let tbl = Stdlib.Domain.DLS.get memo_key in
    match Hashtbl.find_opt tbl f with
    | Some (Some conjuncts) -> conjuncts
    | Some None -> raise Too_large
    | None ->
      let result = match of_formula_uncached f with
        | conjuncts -> Some conjuncts
        | exception Too_large -> None
      in
      if Hashtbl.length tbl >= memo_limit then Hashtbl.reset tbl;
      Hashtbl.add tbl f result;
      (match result with Some conjuncts -> conjuncts | None -> raise Too_large)
  end

let conjunct_to_formula atoms =
  Formula.conj (List.map (fun (cmp, a, b) -> Formula.Atom (cmp, a, b)) atoms)

let to_formula conjuncts = Formula.disj (List.map conjunct_to_formula conjuncts)
