(** Top-level constraint-satisfaction interface — HomeGuard's substitute
    for the JaCoP solver: satisfiability of quantifier-free formulas
    over bounded integers and enumerated strings, with witness models
    and three-valued, budget-aware verdicts. *)

type model = Search.model

type verdict = model Budget.verdict
(** [Sat model | Unsat | Unknown of Budget.reason]. [Unknown] records
    which budget tripped and where; it is never collapsed to [Unsat]. *)

val flags_fingerprint : unit -> string
(** Stable rendering of the solver's A/B switches
    ({!Domain.bitset_enabled}, [Formula.memo_enabled]) for verdict
    cache keys: the two modes must never serve each other's answers. *)

val solve : ?budget:Budget.t -> Store.t -> Formula.t -> verdict
(** DNF + propagate-and-split per conjunct; the store is closed over
    free variables via {!Store.infer}. Falls back to {!solve_dpll} when
    the DNF would exceed {!Dnf.max_conjuncts}. The default budget is
    unlimited. *)

val solve_dpll : ?budget:Budget.t -> Store.t -> Formula.t -> verdict
(** Lazy DPLL-style splitting on disjunctions (ablation A3 variant). *)

val satisfiable : Store.t -> Formula.t -> model option
(** Definitely-sat wrapper over {!solve} with an unlimited budget:
    [None] strictly means unsat. An undecided solve (depth cap, or a
    test-only injected fault) raises {!Budget.Exhausted} rather than
    masquerading as unsat. *)

val satisfiable_dpll : Store.t -> Formula.t -> model option
(** Same contract as {!satisfiable}, over {!solve_dpll}. *)

val sat : Store.t -> Formula.t -> bool

val entails : Store.t -> Formula.t -> Formula.t -> bool
(** [entails store f g]: every model of [f] satisfies [g]. *)

val conflicts : Store.t -> Formula.t -> Formula.t -> bool
(** [conflicts store f g]: [f] and [g] have no common model. *)
