(** HC4-style constraint propagation over a conjunct of atoms. *)

module SMap : Map.S with type key = string

exception Unsat
(** A domain was wiped out: the conjunct has no model. *)

val max_rounds : int

val run : ?budget:Budget.t -> Domain.t SMap.t -> Dnf.conjunct -> Domain.t SMap.t
(** Revise every atom to fixpoint (bounded by {!max_rounds} rounds,
    which never compromises soundness). Each revision spends one step of
    [budget]'s propagation fuel; exhaustion raises {!Budget.Exhausted},
    never {!Unsat}. *)
