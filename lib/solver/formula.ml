(** Quantifier-free formulas over {!Term}s.

    Negation can always be pushed onto atoms by flipping the comparator,
    so normal forms contain positive atoms only. *)

type cmp = Eq | Neq | Lt | Le | Gt | Ge

type t =
  | True
  | False
  | Atom of cmp * Term.t * Term.t
  | And of t list
  | Or of t list
  | Not of t

let atom cmp a b = Atom (cmp, a, b)
let eq a b = Atom (Eq, a, b)
let neq a b = Atom (Neq, a, b)
let lt a b = Atom (Lt, a, b)
let le a b = Atom (Le, a, b)
let gt a b = Atom (Gt, a, b)
let ge a b = Atom (Ge, a, b)

(** n-ary conjunction with unit/zero simplification. *)
let conj fs =
  let fs = List.filter (fun f -> f <> True) fs in
  if List.exists (fun f -> f = False) fs then False
  else match fs with [] -> True | [ f ] -> f | fs -> And fs

let disj fs =
  let fs = List.filter (fun f -> f <> False) fs in
  if List.exists (fun f -> f = True) fs then True
  else match fs with [] -> False | [ f ] -> f | fs -> Or fs

let flip_cmp = function Eq -> Neq | Neq -> Eq | Lt -> Ge | Le -> Gt | Gt -> Le | Ge -> Lt

(** Negation-normal form: [Not] eliminated by comparator flipping. *)
let rec nnf_rec = function
  | True -> True
  | False -> False
  | Atom _ as a -> a
  | And fs -> And (List.map nnf_rec fs)
  | Or fs -> Or (List.map nnf_rec fs)
  | Not f -> nnf_neg f

and nnf_neg = function
  | True -> False
  | False -> True
  | Atom (cmp, a, b) -> Atom (flip_cmp cmp, a, b)
  | And fs -> Or (List.map nnf_neg fs)
  | Or fs -> And (List.map nnf_neg fs)
  | Not f -> nnf_rec f

(* -- hash-consing and NNF memoization ------------------------------------ *)

(** When false, {!hashcons} is the identity and {!nnf} recomputes every
    call. An A/B switch for benchmarking, mirrors
    {!Domain.bitset_enabled}. *)
let memo_enabled = ref true

(* Per-OCaml-domain tables: detector workers run on separate domains, so
   thread-local storage avoids both locking and cross-domain races.
   Tables are bounded and simply reset when full — formulas in one audit
   cluster around a few hundred shapes, so resets are rare. *)
let memo_limit = 8192

let dls_table () = Stdlib.Domain.DLS.new_key (fun () -> Hashtbl.create 256)

let hc_key : (t, t) Hashtbl.t Stdlib.Domain.DLS.key = dls_table ()
let nnf_key : (t, t) Hashtbl.t Stdlib.Domain.DLS.key = dls_table ()

let memo_find key build f =
  let tbl = Stdlib.Domain.DLS.get key in
  match Hashtbl.find_opt tbl f with
  | Some g -> g
  | None ->
    let g = build f in
    if Hashtbl.length tbl >= memo_limit then Hashtbl.reset tbl;
    Hashtbl.add tbl f g;
    g

(** [hashcons f] returns a canonical physically-shared representative of
    [f]: structurally equal formulas map to the same heap value, so
    later structural comparisons and memo probes short-circuit on
    physical equality. *)
let hashcons f = if !memo_enabled then memo_find hc_key (fun f -> f) f else f

(** Memoizing wrapper over the recursive NNF. *)
let nnf f = if !memo_enabled then memo_find nnf_key nnf_rec f else nnf_rec f

(** Flatten nested conjunctions into a list of non-[And] conjuncts. *)
let rec conjuncts = function
  | True -> []
  | And fs -> List.concat_map conjuncts fs
  | f -> [ f ]

let rec free_vars_acc acc = function
  | True | False -> acc
  | Atom (_, a, b) -> Term.vars (Term.vars acc a) b
  | And fs | Or fs -> List.fold_left free_vars_acc acc fs
  | Not f -> free_vars_acc acc f

let free_vars f = List.rev (free_vars_acc [] f)

let cmp_to_string = function
  | Eq -> "=="
  | Neq -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let rec to_string = function
  | True -> "true"
  | False -> "false"
  | Atom (cmp, a, b) ->
    Printf.sprintf "%s %s %s" (Term.to_string a) (cmp_to_string cmp) (Term.to_string b)
  | And fs -> "(" ^ String.concat " && " (List.map to_string fs) ^ ")"
  | Or fs -> "(" ^ String.concat " || " (List.map to_string fs) ^ ")"
  | Not f -> "!(" ^ to_string f ^ ")"

(** Substitute variables by terms throughout. *)
let rec subst map = function
  | (True | False) as f -> f
  | Atom (cmp, a, b) -> Atom (cmp, Term.subst map a, Term.subst map b)
  | And fs -> And (List.map (subst map) fs)
  | Or fs -> Or (List.map (subst map) fs)
  | Not f -> Not (subst map f)

(** Evaluate under a total assignment [env : string -> Domain.value].
    Raises [Not_found] if a variable is unbound; comparisons between
    ints and strings are false except [Neq]. *)
let eval env f =
  let rec term = function
    | Term.Int n -> Domain.Int n
    | Term.Str s -> Domain.Str s
    | Term.Var v -> env v
    | Term.Add (a, b) -> arith ( + ) a b
    | Term.Sub (a, b) -> arith ( - ) a b
    | Term.Mul (a, b) -> arith ( * ) a b
    | Term.Neg a -> ( match term a with
      | Domain.Int n -> Domain.Int (-n)
      | Domain.Str _ -> invalid_arg "negation of string")
  and arith op a b =
    match (term a, term b) with
    | Domain.Int x, Domain.Int y -> Domain.Int (op x y)
    | _ -> invalid_arg "arithmetic on string"
  in
  let compare_values cmp va vb =
    match (va, vb) with
    | Domain.Int x, Domain.Int y -> (
      match cmp with
      | Eq -> x = y
      | Neq -> x <> y
      | Lt -> x < y
      | Le -> x <= y
      | Gt -> x > y
      | Ge -> x >= y)
    | Domain.Str x, Domain.Str y -> (
      match cmp with
      | Eq -> x = y
      | Neq -> x <> y
      | Lt | Le | Gt | Ge -> invalid_arg "ordering on strings")
    | _ -> ( match cmp with Neq -> true | _ -> false)
  in
  let rec go = function
    | True -> true
    | False -> false
    | Atom (cmp, a, b) -> compare_values cmp (term a) (term b)
    | And fs -> List.for_all go fs
    | Or fs -> List.exists go fs
    | Not f -> not (go f)
  in
  go f
