(** Backtracking propagate-and-split search over a conjunct of atoms. *)

type model = (string * Domain.value) list

val max_depth : int

val relevant_vars : Dnf.conjunct -> string list
(** Variables the atoms mention, in first-occurrence order, without
    duplicates (a witness model carries one binding per variable). *)

val solve : Store.t -> Dnf.conjunct -> model option
(** Find a model of the conjunction. Every variable mentioned by the
    atoms must be typed in the store. *)
