(** Backtracking propagate-and-split search over a conjunct of atoms. *)

type model = (string * Domain.value) list

val max_depth : int

val relevant_vars : Dnf.conjunct -> string list
(** Variables the atoms mention, in first-occurrence order, without
    duplicates (a witness model carries one binding per variable). *)

val solve :
  ?budget:Budget.t -> ?max_depth:int -> Store.t -> Dnf.conjunct -> model Budget.verdict
(** Decide the conjunction: [Sat model], [Unsat], or [Unknown reason]
    when [budget] (default: unlimited) or the depth cap trips first.
    Budget exhaustion is never mapped to [Unsat]. Every variable
    mentioned by the atoms must be typed in the store. *)
