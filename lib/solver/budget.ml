(** Resource budgets for constraint solving, and the three-valued
    verdict that makes exhaustion explicit.

    Historically {!Search.solve} answered [model option], so a tripped
    depth cap was indistinguishable from "unsat" — a real threat could
    read as "no threat" (the silent-soundness hole this module closes).
    A budget carries propagation-step fuel, search-node fuel and an
    optional wall-clock deadline; when any of them runs out the solver
    reports {!Unknown} with the {!reason} recording which budget tripped
    and where, never [Unsat]. *)

(** Which resource ran out. *)
type trip =
  | Prop_fuel  (** propagation-step fuel exhausted *)
  | Node_fuel  (** search-node fuel exhausted *)
  | Deadline  (** wall-clock deadline passed *)
  | Depth  (** the backtracking-depth cap was hit *)

type reason = { trip : trip; where : string }

exception Exhausted of reason

let trip_to_string = function
  | Prop_fuel -> "propagation fuel exhausted"
  | Node_fuel -> "search-node fuel exhausted"
  | Deadline -> "deadline exceeded"
  | Depth -> "depth cap reached"

let reason_to_string r = Printf.sprintf "%s in %s" (trip_to_string r.trip) r.where

(** Three-valued solver answer. [Unknown] is an honest "ran out of
    budget before deciding" — it must never be collapsed into [Unsat]. *)
type 'a verdict = Sat of 'a | Unsat | Unknown of reason

(** Immutable budget configuration. [None] means unlimited. *)
type spec = {
  prop_steps : int option;  (** atom revisions across the whole solve *)
  search_nodes : int option;  (** backtracking-search nodes visited *)
  timeout_ms : float option;  (** wall-clock deadline per solve *)
}

let unlimited_spec = { prop_steps = None; search_nodes = None; timeout_ms = None }

(* Generous for rule-sized formulas: the corpus audit never comes close
   (a typical overlap solve visits tens of nodes), so honesty costs
   nothing on the real workload; a pathological pair still terminates. *)
let default_spec =
  { prop_steps = Some 2_000_000; search_nodes = Some 100_000; timeout_ms = None }

(** Budget derived from a single search-node knob (the CLI's
    [--solver-budget]): propagation fuel scales with it, [n <= 0] means
    unlimited. *)
let spec_of_nodes n =
  if n <= 0 then unlimited_spec
  else { prop_steps = Some (Stdlib.min max_int (50 * n)); search_nodes = Some n; timeout_ms = None }

(** Budget derived from a request deadline: the caller has
    [remaining_ms] of wall-clock left, so no single solve may run past
    it. Fuel limits come from [base] (default {!default_spec}); the
    solve timeout is the remaining time, clamped below any timeout
    [base] already imposed. A non-positive remainder yields an
    already-expired budget — the solve reports [Unknown] at its first
    deadline poll instead of starting work it cannot finish. *)
let of_deadline ?(base = default_spec) remaining_ms =
  let remaining = Float.max 0.0 remaining_ms in
  let timeout_ms =
    match base.timeout_ms with
    | None -> Some remaining
    | Some t -> Some (Float.min t remaining)
  in
  { base with timeout_ms }

(** Escalated retry budget: every finite limit multiplied by [factor]. *)
let escalate ?(factor = 8) spec =
  let mul = Option.map (fun n -> if n > max_int / factor then max_int else n * factor) in
  {
    prop_steps = mul spec.prop_steps;
    search_nodes = mul spec.search_nodes;
    timeout_ms = Option.map (fun ms -> ms *. float_of_int factor) spec.timeout_ms;
  }

(** Stable cache-key component: verdicts computed under different specs
    must never answer for each other (an [Unknown] under a small budget
    is not a definitive answer under a larger one). *)
let fingerprint spec =
  let f = function None -> "inf" | Some n -> string_of_int n in
  Printf.sprintf "p%s.n%s.t%s" (f spec.prop_steps) (f spec.search_nodes)
    (match spec.timeout_ms with None -> "inf" | Some ms -> string_of_float ms)

(** Like {!fingerprint}, but any finite wall-clock timeout collapses to
    ["tdl"]: deadline-derived specs differ per request only in their
    remaining milliseconds, and a definitive [Sat]/[Unsat] does not
    depend on how much wall clock was left when it was computed. Fuel
    tiers ([prop_steps]/[search_nodes]) stay exact — [Unknown] verdicts
    are budget-relative, and any cache serving them across specs must
    key on the fuel tier. *)
let cache_fingerprint spec =
  let f = function None -> "inf" | Some n -> string_of_int n in
  Printf.sprintf "p%s.n%s.%s" (f spec.prop_steps) (f spec.search_nodes)
    (match spec.timeout_ms with None -> "tinf" | Some _ -> "tdl")

(* How a deadline reads the time: [Unix.gettimeofday]-like seconds.
   Wall clock by default; virtual-time harnesses (the chaos campaign,
   deadline tests) install their own process default so solver
   deadlines are deterministic, and a single solve can still pin an
   explicit clock via [start ?clock]. *)
let wall_clock = Unix.gettimeofday
let default_clock : (unit -> float) Atomic.t = Atomic.make wall_clock
let set_clock f = Atomic.set default_clock f
let reset_clock () = Atomic.set default_clock wall_clock

(** Mutable fuel state threaded through one solve. *)
type t = {
  mutable prop_fuel : int;  (** [max_int] = unlimited *)
  mutable node_fuel : int;
  deadline : float option;  (** absolute time on [clock] *)
  clock : unit -> float;
  mutable ticks : int;  (** throttles the deadline clock read *)
}

let start ?clock spec =
  let clock =
    match clock with Some c -> c | None -> Atomic.get default_clock
  in
  {
    prop_fuel = Option.value ~default:max_int spec.prop_steps;
    node_fuel = Option.value ~default:max_int spec.search_nodes;
    deadline = Option.map (fun ms -> clock () +. (ms /. 1000.0)) spec.timeout_ms;
    clock;
    ticks = 0;
  }

let unlimited () = start unlimited_spec

(* The deadline is polled every 256 spends: a clock read per atom
   revision would dominate the solve it is guarding. *)
let check_deadline b ~where =
  match b.deadline with
  | None -> ()
  | Some dl ->
    b.ticks <- b.ticks + 1;
    if b.ticks land 255 = 0 && b.clock () > dl then
      raise (Exhausted { trip = Deadline; where })

let spend_prop b ~where =
  if b.prop_fuel <> max_int then begin
    if b.prop_fuel <= 0 then raise (Exhausted { trip = Prop_fuel; where });
    b.prop_fuel <- b.prop_fuel - 1
  end;
  check_deadline b ~where

let spend_node b ~where =
  if b.node_fuel <> max_int then begin
    if b.node_fuel <= 0 then raise (Exhausted { trip = Node_fuel; where });
    b.node_fuel <- b.node_fuel - 1
  end;
  check_deadline b ~where
