(** Backtracking search over a conjunct of atoms.

    Propagate-and-split: after {!Propagate.run} reaches a fixpoint, pick
    the unfixed variable with the smallest domain, bisect it, and recurse.
    Domains are finite so the search terminates; a generous depth cap and
    the caller's {!Budget.t} guard against pathological inputs, and both
    surface as an honest [Unknown] verdict rather than "no model". *)

module SMap = Propagate.SMap

type model = (string * Domain.value) list

let max_depth = 10_000

(* Restrict the domain map to variables the atoms mention; everything
   else is unconstrained and can take any value. Order-preserving and
   duplicate-free: [model_of_domains] folds over this list, so a
   repeated variable would yield a witness with duplicate bindings. *)
let relevant_vars atoms =
  let vs =
    List.fold_left (fun acc (_, a, b) -> Term.vars (Term.vars acc a) b) [] atoms
  in
  let seen = Hashtbl.create 16 in
  List.filter
    (fun v ->
      if Hashtbl.mem seen v then false
      else begin
        Hashtbl.add seen v ();
        true
      end)
    vs

let model_of_domains vars domains =
  List.filter_map
    (fun v ->
      match SMap.find_opt v domains with
      | Some d -> Option.map (fun value -> (v, value)) (Domain.choose d)
      | None -> None)
    vars

let all_atoms_hold domains atoms =
  let env v =
    match SMap.find_opt v domains with
    | Some d -> ( match Domain.choose d with Some value -> value | None -> raise Not_found)
    | None -> raise Not_found
  in
  List.for_all
    (fun (cmp, a, b) -> Formula.eval env (Formula.Atom (cmp, a, b)))
    atoms

(** [solve ?budget ?max_depth store atoms] decides the conjunction with
    a three-valued verdict: [Sat model], [Unsat], or [Unknown reason]
    when the depth cap or a budget trips before the search concludes.
    Budget exhaustion is never reported as [Unsat] — that silent
    conversion was a soundness hole (a real threat read as "no
    threat"). *)
let solve ?budget ?(max_depth = max_depth) (store : Store.t) (atoms : Dnf.conjunct) :
    model Budget.verdict =
  let budget = match budget with Some b -> b | None -> Budget.unlimited () in
  let vars = relevant_vars atoms in
  let domains =
    List.fold_left
      (fun m v ->
        match Store.find_opt v store with
        | Some d -> SMap.add v d m
        | None -> invalid_arg ("Search.solve: variable not in store: " ^ v))
      SMap.empty vars
  in
  let rec go domains depth : model Budget.verdict =
    Budget.spend_node budget ~where:"Search.solve";
    if depth > max_depth then
      Budget.Unknown
        { Budget.trip = Budget.Depth;
          where = Printf.sprintf "Search.solve (depth cap %d)" max_depth }
    else
      match Propagate.run ~budget domains atoms with
      | exception Propagate.Unsat -> Budget.Unsat
      | domains when all_atoms_hold domains atoms ->
        (* Greedy model check: the canonical closest-to-zero assignment
           already satisfies every atom at this fixpoint, so no further
           splitting is needed. This collapses the deep bisection of the
           wide default domains for most Sat cases, and yields the same
           witness the zero-first descent would converge to. *)
        Budget.Sat (model_of_domains vars domains)
      | domains ->
        let unfixed =
          SMap.fold
            (fun v d acc ->
              let n = Domain.size d in
              match acc with
              | Some (_, best) when best <= n -> acc
              | _ -> if n >= 2 then Some (v, n) else acc)
            domains None
        in
        (match unfixed with
        | None -> Budget.Unsat
        | Some (v, _) ->
          let d = SMap.find v domains in
          let left, right = Domain.split d in
          (* explore the half nearer zero first for natural witnesses *)
          let first, second =
            if Domain.distance_to_zero right < Domain.distance_to_zero left then (right, left)
            else (left, right)
          in
          let try_branch half = go (SMap.add v half domains) (depth + 1) in
          (match try_branch first with
          | Budget.Sat m -> Budget.Sat m
          | Budget.Unsat -> try_branch second
          | Budget.Unknown r -> (
            (* a branch that hit the depth cap leaves the verdict
               undecided unless the other branch finds a model *)
            match try_branch second with
            | Budget.Sat m -> Budget.Sat m
            | Budget.Unsat | Budget.Unknown _ -> Budget.Unknown r)))
  in
  match go domains 0 with
  | verdict -> verdict
  | exception Budget.Exhausted reason -> Budget.Unknown reason
