(** Top-level constraint-satisfaction interface.

    This is HomeGuard's substitute for the JaCoP solver: decide
    satisfiability of quantifier-free formulas over bounded integers and
    enumerated strings, and return a witness model used to explain under
    which situation two rules interfere (paper §VI-A2).

    The primary entry points {!solve} and {!solve_dpll} answer with the
    three-valued {!verdict}: [Sat model], [Unsat], or [Unknown reason]
    when the caller's {!Budget.t} (or the search depth cap, or a
    test-only injected fault) trips before the solve concludes. The
    legacy [option]-returning wrappers are kept for callers that
    genuinely only need "definitely sat" — they raise on [Unknown]
    instead of silently conflating it with unsat. *)

type model = Search.model

type verdict = model Budget.verdict
(** [Sat model | Unsat | Unknown of Budget.reason]. *)

(** The A/B representation switches change which code paths a solve
    exercises; any cache shared across processes or runs must key on
    them so one mode never serves the other's stored answers. *)
let flags_fingerprint () =
  Printf.sprintf "bs%c.mm%c"
    (if !Domain.bitset_enabled then '1' else '0')
    (if !Formula.memo_enabled then '1' else '0')

(* Three-valued "or" over a sequence of sub-solves: any Sat wins, all
   Unsat is Unsat, otherwise the first Unknown is reported. *)
let fold_verdicts solve_one items : verdict =
  List.fold_left
    (fun acc item ->
      match acc with
      | Budget.Sat _ -> acc
      | _ -> (
        match solve_one item with
        | Budget.Sat m -> Budget.Sat m
        | Budget.Unsat -> acc
        | Budget.Unknown r -> (
          match acc with Budget.Unknown _ -> acc | _ -> Budget.Unknown r)))
    Budget.Unsat items

(* The fault-injection key is the formula itself: deterministic for a
   given solve regardless of call order or domain count. *)
let inject_faults f = if Fault.armed () then Fault.check (Formula.to_string f)

(** Lazy DPLL-style solving (also the ablation A3 variant): split on
    disjunctions without materialising the full DNF. *)
let solve_dpll ?budget store f : verdict =
  let store = Store.infer store f in
  let nnf = Formula.nnf f in
  let budget = match budget with Some b -> b | None -> Budget.unlimited () in
  (* Separate a conjunction into literal atoms and remaining disjunctions. *)
  let rec flatten acc_atoms acc_ors = function
    | [] -> (acc_atoms, List.rev acc_ors)
    | Formula.True :: rest -> flatten acc_atoms acc_ors rest
    | Formula.False :: _ -> raise Exit
    | Formula.Atom (cmp, a, b) :: rest -> flatten ((cmp, a, b) :: acc_atoms) acc_ors rest
    | Formula.And fs :: rest -> flatten acc_atoms acc_ors (fs @ rest)
    | (Formula.Or _ as f) :: rest -> flatten acc_atoms (f :: acc_ors) rest
    | Formula.Not _ :: _ -> invalid_arg "solve_dpll: not in NNF"
  in
  let rec go fs : verdict =
    match flatten [] [] fs with
    | exception Exit -> Budget.Unsat
    | atoms, [] -> Search.solve ~budget store atoms
    | atoms, Formula.Or disjuncts :: ors ->
      fold_verdicts
        (fun d ->
          go (d :: ors @ List.map (fun (cmp, a, b) -> Formula.Atom (cmp, a, b)) atoms))
        disjuncts
    | _, _ :: _ -> assert false
  in
  match
    inject_faults f;
    go [ nnf ]
  with
  | verdict -> verdict
  | exception Budget.Exhausted reason -> Budget.Unknown reason

(** [solve ?budget store f] — DNF + propagate-and-split per conjunct; the
    store is closed over free variables via {!Store.infer}. Formulas
    whose DNF would explode fall back to the lazy splitting above. *)
let solve ?budget store f : verdict =
  let store' = Store.infer store f in
  let budget = match budget with Some b -> b | None -> Budget.unlimited () in
  match
    inject_faults f;
    match Dnf.of_formula f with
    | conjuncts -> fold_verdicts (fun c -> Search.solve ~budget store' c) conjuncts
    | exception Dnf.Too_large -> solve_dpll ~budget store f
  with
  | verdict -> verdict
  | exception Budget.Exhausted reason -> Budget.Unknown reason

(* -- definitely-sat wrappers ------------------------------------------------ *)

(* With an unlimited budget only the depth cap or an injected fault can
   leave a verdict Unknown; raising keeps the invariant that no code
   path converts exhaustion into "unsat". *)
let require_decided = function
  | Budget.Sat m -> Some m
  | Budget.Unsat -> None
  | Budget.Unknown reason -> raise (Budget.Exhausted reason)

(** [satisfiable store f] — a witness model, or [None] when [f] is
    definitely unsatisfiable. Raises {!Budget.Exhausted} if the solve
    is undecided (callers needing graceful degradation use {!solve}). *)
let satisfiable store f : model option = require_decided (solve store f)

(** Option-returning DPLL wrapper with the same "definitely sat"
    contract as {!satisfiable}. *)
let satisfiable_dpll store f : model option = require_decided (solve_dpll store f)

(** [sat store f] — satisfiability as a boolean. *)
let sat store f = Option.is_some (satisfiable store f)

(** [entails store f g]: every model of [f] satisfies [g]
    (i.e. f ∧ ¬g is unsatisfiable). *)
let entails store f g = not (sat store (Formula.conj [ f; Formula.Not g ]))

(** [conflicts store f g]: f ∧ g has no model. *)
let conflicts store f g = not (sat store (Formula.conj [ f; g ]))
