(** Deterministic, test-only fault injection for the solver: make
    solves raise, time out or exhaust their budget on demand. Disarmed
    by default; whether a solve fails depends only on the armed seed and
    the solve's key, never on call order or domain count. *)

exception Injected of string

type mode = Raise | Exhaust | Timeout

val arm : ?once:bool -> ?seed:int -> rate_per_thousand:int -> mode -> unit
(** Arm the hook. [~once] fires each selected key only on its first
    solve (so a retry succeeds); the default fires on every solve of a
    selected key. *)

val disarm : unit -> unit
val armed : unit -> bool

val check : string -> unit
(** Called by the solver with the solve's key; raises {!Injected} or
    {!Budget.Exhausted} when the armed plan selects the key. *)
