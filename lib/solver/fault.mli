(** Deterministic, test-only fault injection for the solver: make
    solves raise, time out or exhaust their budget on demand. Disarmed
    by default; whether a solve fails depends only on the armed seed and
    the solve's key, never on call order or domain count. *)

exception Injected of string

type mode =
  | Raise
  | Exhaust
  | Timeout
  | Stall of float
      (** latency injection: the selected solve sleeps that many
          wall-clock milliseconds and then proceeds normally — a slow
          solver rather than a broken one, for overload, deadline and
          load-shedding tests *)

val arm : ?once:bool -> ?seed:int -> ?only:string -> rate_per_thousand:int -> mode -> unit
(** Arm the hook. [~once] fires each selected key only on its first
    solve (so a retry succeeds); the default fires on every solve of a
    selected key. [~only] restricts selection to keys containing that
    substring — solve keys are formula texts carrying qualified
    ["App::var"] names, so [~only:"PoisonApp:"] targets exactly the
    solves touching one app. *)

val disarm : unit -> unit
val armed : unit -> bool

val check : string -> unit
(** Called by the solver with the solve's key; raises {!Injected} or
    {!Budget.Exhausted} when the armed plan selects the key. *)

val set_sleeper : (float -> unit) -> unit
(** Replace how a [Stall] passes its milliseconds. Wall-clock
    ([Unix.sleepf]) by default; virtual-time harnesses install a
    function that advances their injectable clock instead, so stall
    windows cost no real time in CI. *)

val reset_sleeper : unit -> unit
(** Restore the wall-clock sleeper. *)

(** {2 Storage faults}

    A second, independent hook for the durable journal: simulated
    process crashes at named crash points, torn (partial) writes and
    single-bit flips of a frame about to be written. Selection is a pure
    function of the armed seed and the point/write key, optionally
    restricted to keys with a given prefix — so a test can target
    exactly one crash point of one append ([~only:"journal/append/synced:journal#3"])
    or fan out probabilistically. *)

exception Crashed of string
(** The simulated process crash. *)

type storage_mode =
  | Crash  (** raise {!Crashed} at the selected {!crash_point} *)
  | Torn  (** truncate the selected write; the writer then crashes *)
  | Flip  (** flip one deterministic bit of the selected write (silent) *)

val arm_storage :
  ?seed:int -> ?rate_per_thousand:int -> ?only:string -> storage_mode -> unit
(** Defaults: seed 1, rate 1000 (every selected key fires — pair with
    [~only] to aim at one point), no prefix restriction. *)

val disarm_storage : unit -> unit
val storage_armed : unit -> bool

val crash_point : string -> unit
(** Called by the journal at its crash points; raises {!Crashed} when a
    [Crash] plan selects the key. *)

val on_write : string -> string -> [ `Write of string | `Torn of string ]
(** Pass a frame about to be written through the armed corruption plan:
    [`Write data] is written as-is (possibly bit-flipped under [Flip]);
    [`Torn prefix] means only the prefix reaches the disk and the caller
    must simulate the crash by raising {!Crashed} after writing it. *)
