(** Test-only fault injection for the solver.

    The detection pipeline's crash isolation and three-valued verdicts
    need a way to make the solver raise, time out or exhaust its budget
    on demand. The hook is armed globally (disarmed by default and in
    production); whether a given solve fails is a pure function of the
    armed seed and the solve's key, so injection is deterministic and
    independent of call order and of how many domains run the audit —
    [detect_all ~jobs:1] and [~jobs:N] fail the same solves. *)

exception Injected of string
(** The injected crash (the [Raise] mode). *)

type mode =
  | Raise  (** raise {!Injected}: a worker crash *)
  | Exhaust  (** raise {!Budget.Exhausted} with {!Budget.Node_fuel} *)
  | Timeout  (** raise {!Budget.Exhausted} with {!Budget.Deadline} *)

type plan = { seed : int; rate_per_thousand : int; mode : mode; once : bool }

let state : plan option Atomic.t = Atomic.make None

(* Keys that already fired, for [once] plans. Guarded: several domains
   consult it concurrently. *)
let fired : (string, unit) Hashtbl.t = Hashtbl.create 64
let lock = Mutex.create ()

let arm ?(once = false) ?(seed = 1) ~rate_per_thousand mode =
  Mutex.lock lock;
  Hashtbl.reset fired;
  Atomic.set state (Some { seed; rate_per_thousand; mode; once });
  Mutex.unlock lock

let disarm () =
  Mutex.lock lock;
  Atomic.set state None;
  Hashtbl.reset fired;
  Mutex.unlock lock

let armed () = Atomic.get state <> None

(* Order-independent decision: hash of (seed, key), not an RNG stream. *)
let selects plan key = Hashtbl.hash (plan.seed, key) mod 1000 < plan.rate_per_thousand

let check key =
  match Atomic.get state with
  | None -> ()
  | Some plan ->
    if selects plan key then begin
      let fire =
        if not plan.once then true
        else begin
          Mutex.lock lock;
          let first = not (Hashtbl.mem fired key) in
          if first then Hashtbl.add fired key ();
          Mutex.unlock lock;
          first
        end
      in
      if fire then
        match plan.mode with
        | Raise -> raise (Injected key)
        | Exhaust ->
          raise
            (Budget.Exhausted
               { Budget.trip = Budget.Node_fuel; where = "fault injection: " ^ key })
        | Timeout ->
          raise
            (Budget.Exhausted
               { Budget.trip = Budget.Deadline; where = "fault injection: " ^ key })
    end
