(** Test-only fault injection for the solver.

    The detection pipeline's crash isolation and three-valued verdicts
    need a way to make the solver raise, time out or exhaust its budget
    on demand. The hook is armed globally (disarmed by default and in
    production); whether a given solve fails is a pure function of the
    armed seed and the solve's key, so injection is deterministic and
    independent of call order and of how many domains run the audit —
    [detect_all ~jobs:1] and [~jobs:N] fail the same solves. *)

exception Injected of string
(** The injected crash (the [Raise] mode). *)

type mode =
  | Raise  (** raise {!Injected}: a worker crash *)
  | Exhaust  (** raise {!Budget.Exhausted} with {!Budget.Node_fuel} *)
  | Timeout  (** raise {!Budget.Exhausted} with {!Budget.Deadline} *)
  | Stall of float
      (** sleep that many wall-clock milliseconds, then continue: a slow
          solve rather than a failed one, for overload/deadline tests *)

type plan = {
  seed : int;
  rate_per_thousand : int;
  mode : mode;
  once : bool;
  only : string option;  (** fire only on keys containing this substring *)
}

let state : plan option Atomic.t = Atomic.make None

(* How a [Stall] actually passes time. Wall-clock by default; virtual-
   time harnesses (the chaos campaign, deadline tests) install their
   own so an injected stall advances the injectable clock instead of
   blocking CI for real milliseconds. *)
let default_sleeper ms = if ms > 0.0 then Unix.sleepf (ms /. 1000.0)
let sleeper : (float -> unit) Atomic.t = Atomic.make default_sleeper
let set_sleeper f = Atomic.set sleeper f
let reset_sleeper () = Atomic.set sleeper default_sleeper

(* Keys that already fired, for [once] plans. Guarded: several domains
   consult it concurrently. *)
let fired : (string, unit) Hashtbl.t = Hashtbl.create 64
let lock = Mutex.create ()

let arm ?(once = false) ?(seed = 1) ?only ~rate_per_thousand mode =
  Mutex.lock lock;
  Hashtbl.reset fired;
  Atomic.set state (Some { seed; rate_per_thousand; mode; once; only });
  Mutex.unlock lock

let disarm () =
  Mutex.lock lock;
  Atomic.set state None;
  Hashtbl.reset fired;
  Mutex.unlock lock

let armed () = Atomic.get state <> None

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  n = 0
  ||
  let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
  at 0

(* Order-independent decision: hash of (seed, key), not an RNG stream. *)
let selects plan key =
  (match plan.only with None -> true | Some sub -> contains ~sub key)
  && Hashtbl.hash (plan.seed, key) mod 1000 < plan.rate_per_thousand

let check key =
  match Atomic.get state with
  | None -> ()
  | Some plan ->
    if selects plan key then begin
      let fire =
        if not plan.once then true
        else begin
          Mutex.lock lock;
          let first = not (Hashtbl.mem fired key) in
          if first then Hashtbl.add fired key ();
          Mutex.unlock lock;
          first
        end
      in
      if fire then
        match plan.mode with
        | Raise -> raise (Injected key)
        | Exhaust ->
          raise
            (Budget.Exhausted
               { Budget.trip = Budget.Node_fuel; where = "fault injection: " ^ key })
        | Timeout ->
          raise
            (Budget.Exhausted
               { Budget.trip = Budget.Deadline; where = "fault injection: " ^ key })
        | Stall ms -> if ms > 0.0 then (Atomic.get sleeper) ms
    end

(* -- storage faults ---------------------------------------------------------- *)

exception Crashed of string

type storage_mode = Crash | Torn | Flip

type storage_plan = {
  sseed : int;
  srate : int;  (** rate per thousand, keyed like {!selects} *)
  only : string option;  (** fire only on keys with this prefix *)
  smode : storage_mode;
}

let storage_state : storage_plan option Atomic.t = Atomic.make None

let arm_storage ?(seed = 1) ?(rate_per_thousand = 1000) ?only mode =
  Atomic.set storage_state
    (Some { sseed = seed; srate = rate_per_thousand; only; smode = mode })

let disarm_storage () = Atomic.set storage_state None
let storage_armed () = Atomic.get storage_state <> None

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let storage_selects plan key =
  (match plan.only with None -> true | Some p -> has_prefix ~prefix:p key)
  && Hashtbl.hash (plan.sseed, key) mod 1000 < plan.srate

let crash_point key =
  match Atomic.get storage_state with
  | Some ({ smode = Crash; _ } as plan) when storage_selects plan key ->
    raise (Crashed key)
  | _ -> ()

let on_write key frame =
  match Atomic.get storage_state with
  | Some ({ smode = Torn; _ } as plan)
    when storage_selects plan key && String.length frame > 0 ->
    `Torn (String.sub frame 0 (Hashtbl.hash (plan.sseed, key, "cut") mod String.length frame))
  | Some ({ smode = Flip; _ } as plan)
    when storage_selects plan key && String.length frame > 0 ->
    let bit = Hashtbl.hash (plan.sseed, key, "bit") mod (8 * String.length frame) in
    let b = Bytes.of_string frame in
    Bytes.set b (bit / 8)
      (Char.chr (Char.code (Bytes.get b (bit / 8)) lxor (1 lsl (bit mod 8))));
    `Write (Bytes.to_string b)
  | _ -> `Write frame
