(** Tiny order statistics for bench reporting. All functions are total:
    an empty sample yields [None] instead of raising, so a bench section
    that completed zero requests reports that honestly rather than
    crashing on [List.nth]. *)

let mean = function
  | [] -> None
  | xs -> Some (List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs))

(** Nearest-rank percentile: the smallest value with at least [p]
    (in [0,1]) of the sample at or below it, i.e. 1-based rank
    [ceil (p * n)]. Unlike truncating [int_of_float (p * n)], this
    never overshoots into a higher rank (p95 of 20 samples is the 19th
    value, not the maximum). *)
let percentile p = function
  | [] -> None
  | xs ->
    let sorted = List.sort compare xs in
    let n = List.length sorted in
    let rank = int_of_float (Float.ceil (p *. float_of_int n)) in
    let idx = min (n - 1) (max 0 (rank - 1)) in
    Some (List.nth sorted idx)
