(** In-process recursive file-tree removal, replacing [Sys.command
    "rm -rf ..."] shell-outs: no shell quoting surface, works the same
    on any platform with a Unix layer, and errors carry the failing
    path. Symlinks are unlinked, never followed. Missing paths are not
    an error. *)

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun entry -> rm_rf (Filename.concat path entry)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Unix.unlink path
