(** Minimal JSON: just enough for the bench-trajectory files.

    Hand-rolled on purpose — the repo carries no JSON dependency, and
    the bench format needs only objects, arrays, strings and numbers.
    The printer always emits valid JSON; the parser accepts standard
    JSON with the usual escapes ([\uXXXX] is decoded to UTF-8). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* -- printing ------------------------------------------------------------ *)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

(** Pretty-printed (2-space indent) rendering. *)
let to_string v =
  let buf = Buffer.create 256 in
  let pad n = Buffer.add_string buf (String.make n ' ') in
  let rec go indent = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int n -> Buffer.add_string buf (string_of_int n)
    | Float f -> Buffer.add_string buf (float_to_string f)
    | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape_string s);
      Buffer.add_char buf '"'
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (indent + 2);
          go (indent + 2) item)
        items;
      Buffer.add_char buf '\n';
      pad indent;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (indent + 2);
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape_string k);
          Buffer.add_string buf "\": ";
          go (indent + 2) item)
        fields;
      Buffer.add_char buf '\n';
      pad indent;
      Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.contents buf

(* -- parsing ------------------------------------------------------------- *)

exception Parse_error of string

let parse_error fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance c;
    skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> parse_error "expected '%c' at offset %d, found '%c'" ch c.pos x
  | None -> parse_error "expected '%c' at offset %d, found end of input" ch c.pos

let expect_word c word value =
  if
    c.pos + String.length word <= String.length c.src
    && String.sub c.src c.pos (String.length word) = word
  then begin
    c.pos <- c.pos + String.length word;
    value
  end
  else parse_error "invalid literal at offset %d" c.pos

(* Encode a Unicode code point as UTF-8. *)
let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse_string_body c =
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> parse_error "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
      advance c;
      match peek c with
      | Some '"' -> advance c; Buffer.add_char buf '"'; go ()
      | Some '\\' -> advance c; Buffer.add_char buf '\\'; go ()
      | Some '/' -> advance c; Buffer.add_char buf '/'; go ()
      | Some 'n' -> advance c; Buffer.add_char buf '\n'; go ()
      | Some 't' -> advance c; Buffer.add_char buf '\t'; go ()
      | Some 'r' -> advance c; Buffer.add_char buf '\r'; go ()
      | Some 'b' -> advance c; Buffer.add_char buf '\b'; go ()
      | Some 'f' -> advance c; Buffer.add_char buf '\012'; go ()
      | Some 'u' ->
        advance c;
        if c.pos + 4 > String.length c.src then parse_error "truncated \\u escape";
        let hex = String.sub c.src c.pos 4 in
        c.pos <- c.pos + 4;
        (match int_of_string_opt ("0x" ^ hex) with
        | Some cp -> add_utf8 buf cp
        | None -> parse_error "invalid \\u escape '%s'" hex);
        go ()
      | _ -> parse_error "invalid escape at offset %d" c.pos)
    | Some ch ->
      advance c;
      Buffer.add_char buf ch;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek c with Some ch -> is_num_char ch | None -> false) do
    advance c
  done;
  let text = String.sub c.src start (c.pos - start) in
  match int_of_string_opt text with
  | Some n -> Int n
  | None -> (
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> parse_error "invalid number '%s' at offset %d" text start)

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> parse_error "unexpected end of input"
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin advance c; Obj [] end
    else begin
      let fields = ref [] in
      let rec fields_loop () =
        skip_ws c;
        expect c '"';
        let key = parse_string_body c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        fields := (key, v) :: !fields;
        skip_ws c;
        match peek c with
        | Some ',' -> advance c; fields_loop ()
        | Some '}' -> advance c
        | _ -> parse_error "expected ',' or '}' at offset %d" c.pos
      in
      fields_loop ();
      Obj (List.rev !fields)
    end
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin advance c; List [] end
    else begin
      let items = ref [] in
      let rec items_loop () =
        let v = parse_value c in
        items := v :: !items;
        skip_ws c;
        match peek c with
        | Some ',' -> advance c; items_loop ()
        | Some ']' -> advance c
        | _ -> parse_error "expected ',' or ']' at offset %d" c.pos
      in
      items_loop ();
      List (List.rev !items)
    end
  | Some '"' ->
    advance c;
    Str (parse_string_body c)
  | Some 't' -> expect_word c "true" (Bool true)
  | Some 'f' -> expect_word c "false" (Bool false)
  | Some 'n' -> expect_word c "null" Null
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> parse_error "unexpected '%c' at offset %d" ch c.pos

(** [of_string s] parses [s]; trailing garbage is an error. *)
let of_string s =
  let c = { src = s; pos = 0 } in
  match parse_value c with
  | v ->
    skip_ws c;
    if c.pos <> String.length s then Error (Printf.sprintf "trailing input at offset %d" c.pos)
    else Ok v
  | exception Parse_error msg -> Error msg

(* -- accessors ----------------------------------------------------------- *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_list = function List items -> Some items | _ -> None

let to_str = function Str s -> Some s | _ -> None

let to_number = function Int n -> Some (float_of_int n) | Float f -> Some f | _ -> None
