(** The bench-trajectory file format (DESIGN.md §12).

    A trajectory file ([BENCH_<tag>.json]) is one benchmark run frozen
    to disk, keyed by everything that legitimately changes the numbers:
    the dataset snapshot (hash of the corpus sources), the run config
    (jobs, budget fingerprint, quota) and the code version. [compare]
    diffs two files metric-by-metric; each metric carries its own
    direction, so deterministic counters (threat counts, solver calls)
    gate exactly while wall-clock timings are advisory unless the
    threshold says otherwise. *)

let format_version = "homeguard-bench/1"

type direction =
  | Lower_better  (** timings, solver calls: regression = value grew *)
  | Higher_better  (** throughput: regression = value shrank *)
  | Exact  (** deterministic counters: any drift is a regression *)
  | Info  (** recorded for the trajectory, never gated *)

type metric = {
  name : string;
  value : float;
  unit_ : string;
  direction : direction;
}

type section = { title : string; metrics : metric list }

type key = {
  dataset_id : string;
  snapshot_hash : string;  (** MD5 over the corpus entries (names + sources) *)
  config : string;  (** jobs / budget fingerprint / quota, human-readable *)
  code_version : string;
}

type t = { key : key; sections : section list }

let metric ?(unit_ = "") ~direction name value = { name; value; unit_; direction }

(* -- (de)serialization --------------------------------------------------- *)

let direction_to_string = function
  | Lower_better -> "lower_better"
  | Higher_better -> "higher_better"
  | Exact -> "exact"
  | Info -> "info"

let direction_of_string = function
  | "lower_better" -> Some Lower_better
  | "higher_better" -> Some Higher_better
  | "exact" -> Some Exact
  | "info" -> Some Info
  | _ -> None

let to_json t =
  Json.Obj
    [
      ("format", Json.Str format_version);
      ( "key",
        Json.Obj
          [
            ("dataset_id", Json.Str t.key.dataset_id);
            ("snapshot_hash", Json.Str t.key.snapshot_hash);
            ("config", Json.Str t.key.config);
            ("code_version", Json.Str t.key.code_version);
          ] );
      ( "sections",
        Json.List
          (List.map
             (fun s ->
               Json.Obj
                 [
                   ("title", Json.Str s.title);
                   ( "metrics",
                     Json.List
                       (List.map
                          (fun m ->
                            Json.Obj
                              [
                                ("name", Json.Str m.name);
                                ("value", Json.Float m.value);
                                ("unit", Json.Str m.unit_);
                                ("direction", Json.Str (direction_to_string m.direction));
                              ])
                          s.metrics) );
                 ])
             t.sections) );
    ]

let to_string t = Json.to_string (to_json t) ^ "\n"

let ( let* ) = Result.bind

let field name j =
  match Json.member name j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let str_field name j =
  let* v = field name j in
  match Json.to_str v with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "field %S is not a string" name)

let metric_of_json j =
  let* name = str_field "name" j in
  let* unit_ = str_field "unit" j in
  let* dir_s = str_field "direction" j in
  let* direction =
    match direction_of_string dir_s with
    | Some d -> Ok d
    | None -> Error (Printf.sprintf "metric %S: unknown direction %S" name dir_s)
  in
  let* vj = field "value" j in
  match Json.to_number vj with
  | Some value -> Ok { name; value; unit_; direction }
  | None -> Error (Printf.sprintf "metric %S: value is not a number" name)

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
    let* y = f x in
    let* ys = map_result f rest in
    Ok (y :: ys)

let section_of_json j =
  let* title = str_field "title" j in
  let* mj = field "metrics" j in
  match Json.to_list mj with
  | None -> Error (Printf.sprintf "section %S: metrics is not a list" title)
  | Some items ->
    let* metrics = map_result metric_of_json items in
    Ok { title; metrics }

let of_json j =
  let* fmt = str_field "format" j in
  if fmt <> format_version then Error (Printf.sprintf "unsupported format %S" fmt)
  else
    let* kj = field "key" j in
    let* dataset_id = str_field "dataset_id" kj in
    let* snapshot_hash = str_field "snapshot_hash" kj in
    let* config = str_field "config" kj in
    let* code_version = str_field "code_version" kj in
    let* sj = field "sections" j in
    match Json.to_list sj with
    | None -> Error "sections is not a list"
    | Some items ->
      let* sections = map_result section_of_json items in
      Ok { key = { dataset_id; snapshot_hash; config; code_version }; sections }

let of_string s =
  let* j = Json.of_string s in
  of_json j

(* -- comparison ---------------------------------------------------------- *)

type status =
  | Unchanged
  | Improved
  | Regressed
  | Missing  (** in baseline, absent from current *)
  | Added  (** in current, absent from baseline *)

type delta = {
  section_title : string;
  metric_name : string;
  baseline : float option;
  current : float option;
  change_pct : float option;  (** (current - baseline) / |baseline| * 100 *)
  status : status;
}

let change_pct base cur =
  if base = 0.0 then (if cur = 0.0 then Some 0.0 else None)
  else Some ((cur -. base) /. Float.abs base *. 100.0)

let judge ~threshold_pct (m : metric) base cur =
  let pct = change_pct base cur in
  let beyond sign =
    match pct with
    | None -> cur <> base  (* baseline 0, current not: direction decides below *)
    | Some p -> sign *. p > threshold_pct
  in
  match m.direction with
  | Info -> Unchanged
  | Exact -> if cur = base then Unchanged else Regressed
  | Lower_better ->
    if beyond 1.0 then Regressed else if beyond (-1.0) then Improved else Unchanged
  | Higher_better ->
    if beyond (-1.0) then Regressed else if beyond 1.0 then Improved else Unchanged

(** Diff [current] against [baseline]. A metric present in only one
    file is reported ([Missing]/[Added]) but never fails the
    comparison; only [Regressed] rows do. *)
let compare ~threshold_pct ~baseline ~current =
  let find_section t title = List.find_opt (fun s -> s.title = title) t.sections in
  let deltas = ref [] in
  let emit d = deltas := d :: !deltas in
  List.iter
    (fun bs ->
      match find_section current bs.title with
      | None ->
        List.iter
          (fun m ->
            emit
              {
                section_title = bs.title;
                metric_name = m.name;
                baseline = Some m.value;
                current = None;
                change_pct = None;
                status = Missing;
              })
          bs.metrics
      | Some cs ->
        List.iter
          (fun (bm : metric) ->
            match List.find_opt (fun (cm : metric) -> cm.name = bm.name) cs.metrics with
            | None ->
              emit
                {
                  section_title = bs.title;
                  metric_name = bm.name;
                  baseline = Some bm.value;
                  current = None;
                  change_pct = None;
                  status = Missing;
                }
            | Some cm ->
              emit
                {
                  section_title = bs.title;
                  metric_name = bm.name;
                  baseline = Some bm.value;
                  current = Some cm.value;
                  change_pct = change_pct bm.value cm.value;
                  status = judge ~threshold_pct bm bm.value cm.value;
                })
          bs.metrics;
        List.iter
          (fun (cm : metric) ->
            if not (List.exists (fun (bm : metric) -> bm.name = cm.name) bs.metrics) then
              emit
                {
                  section_title = bs.title;
                  metric_name = cm.name;
                  baseline = None;
                  current = Some cm.value;
                  change_pct = None;
                  status = Added;
                })
          cs.metrics)
    baseline.sections;
  List.iter
    (fun cs ->
      if not (List.exists (fun bs -> bs.title = cs.title) baseline.sections) then
        List.iter
          (fun (m : metric) ->
            emit
              {
                section_title = cs.title;
                metric_name = m.name;
                baseline = None;
                current = Some m.value;
                change_pct = None;
                status = Added;
              })
          cs.metrics)
    current.sections;
  List.rev !deltas

let has_regression deltas = List.exists (fun d -> d.status = Regressed) deltas

(** Comparing runs with different keys is allowed (that is the point of
    a trajectory) but the differing key fields should be surfaced. *)
let key_drift ~baseline ~current =
  let pick name get =
    if get baseline.key <> get current.key then
      Some (Printf.sprintf "%s: %S -> %S" name (get baseline.key) (get current.key))
    else None
  in
  List.filter_map Fun.id
    [
      pick "dataset_id" (fun k -> k.dataset_id);
      pick "snapshot_hash" (fun k -> k.snapshot_hash);
      pick "config" (fun k -> k.config);
      pick "code_version" (fun k -> k.code_version);
    ]
