(** Process-wide epoch fencing for journal ownership: the registry of
    the highest ownership epoch granted per home, consulted on every
    durable append so a stalled-then-revived writer can never corrupt a
    home that was rebalanced away from it. *)

exception Stale of { key : string; held : int; current : int }
(** Raised by {!check} when a later epoch has been granted for the key:
    the caller is a split-brain writer and must not touch the disk. *)

val acquire : string -> int -> int
(** [acquire key epoch] registers [epoch] as granted for [key] (keeping
    the maximum — an old grant never lowers the fence) and returns the
    current epoch after the acquire. *)

val current : string -> int
(** Highest epoch granted for the key ([0] when never granted). *)

val check : key:string -> epoch:int -> unit
(** Gate one append made under [epoch].
    @raise Stale (counted) when the fence holds a later epoch. *)

val rejections : unit -> int
(** Stale appends rejected process-wide since the last {!reset}. *)

val rejections_for : string -> int

val reset : unit -> unit
(** Forget all grants and counts — test/campaign isolation only. *)

val set_enforced : bool -> unit
(** [set_enforced false] turns {!check} into a no-op — the deliberately
    reintroduced split-brain bug that chaos campaigns use to prove the
    invariants (and the repro shrinker) catch an unfenced fleet.
    Test/campaign only; production never clears it. *)
