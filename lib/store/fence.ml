(** Process-wide epoch fencing for journal ownership.

    A supervisor hands each successive owner of a home a strictly larger
    {e ownership epoch}; every durable append is made under that epoch.
    The fence is the registry of the highest epoch granted per key (one
    key per home): an append whose writer holds a smaller epoch than the
    registry's current value is a split-brain write — a stalled shard
    that woke up after its home was rebalanced — and is rejected with
    {!Stale} before it reaches the disk.

    The registry is process-global because the failure it guards against
    is two live writers {e in the same fleet} disagreeing about
    ownership; epochs are also stamped into every journal frame
    ({!Journal.frame_epoch}), so the floor survives restarts — recovery
    re-seeds the fence from the highest epoch found on disk.

    Rejections are counted (globally and per key): "zero stale-epoch
    appends accepted, N rejected" is a chaos-campaign invariant, and a
    nonzero rejection count is the expected trace of a survived
    split-brain window, not an error. *)

exception Stale of { key : string; held : int; current : int }

let table : (string, int) Hashtbl.t = Hashtbl.create 64
let rejected : (string, int) Hashtbl.t = Hashtbl.create 16
let total_rejected = ref 0
let lock = Mutex.create ()

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let current key = with_lock (fun () -> Option.value ~default:0 (Hashtbl.find_opt table key))

(** Register [epoch] as granted for [key]; the registry keeps the max,
    so re-acquiring an old epoch never lowers the fence. Returns the
    registry's current epoch after the acquire. *)
let acquire key epoch =
  with_lock (fun () ->
      let cur = Option.value ~default:0 (Hashtbl.find_opt table key) in
      let next = max cur epoch in
      Hashtbl.replace table key next;
      next)

(* Enforcement switch: [false] turns {!check} into a no-op, restoring
   the pre-fencing behaviour where stale writers reach the disk. This
   exists only so chaos campaigns can deliberately reintroduce the
   split-brain bug and prove the invariants (and the repro shrinker)
   catch it; production never clears it. *)
let enforced = Atomic.make true
let set_enforced v = Atomic.set enforced v

(** Gate one append made under [epoch]. Raises {!Stale} (and counts the
    rejection) when a later epoch has been granted for [key]. *)
let check ~key ~epoch =
  if not (Atomic.get enforced) then ()
  else
  let stale =
    with_lock (fun () ->
        let cur = Option.value ~default:0 (Hashtbl.find_opt table key) in
        if epoch < cur then begin
          incr total_rejected;
          Hashtbl.replace rejected key
            (1 + Option.value ~default:0 (Hashtbl.find_opt rejected key));
          Some cur
        end
        else None)
  in
  match stale with
  | Some current -> raise (Stale { key; held = epoch; current })
  | None -> ()

let rejections () = !total_rejected

let rejections_for key =
  with_lock (fun () -> Option.value ~default:0 (Hashtbl.find_opt rejected key))

(** Forget every grant and rejection — test/campaign isolation only;
    a production fence is never reset while writers are live. *)
let reset () =
  with_lock (fun () ->
      Hashtbl.reset table;
      Hashtbl.reset rejected;
      total_rejected := 0)
