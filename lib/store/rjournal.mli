(** Replicated journal: R copies of one append-only journal under
    distinct replica roots, appended in order behind one epoch-fence
    check, recovered by merging every record that survived on at least
    one replica (shortest-common-supersequence read-repair). *)

(** {2 Appending} *)

type t

val open_append :
  ?fsync:bool -> ?epoch:int -> ?fence_key:string -> string list -> t
(** One writer per replica path, in order. [~epoch] stamps every frame;
    [~fence_key] gates every {!append} through {!Fence.check} under that
    key. Multi-replica writers derive replica-distinct storage-fault
    keys from the last three path components, so a deterministic fault
    plan cannot tear the same logical append on every replica. *)

val append : t -> string -> unit
(** Fence-check once, then append the framed payload to every replica
    in order. May raise {!Fence.Stale} (stale owner: nothing written)
    or {!Homeguard_solver.Fault.Crashed} (mid-sequence crash: earlier
    replicas keep the record, later ones never see it — absorbed by
    merged recovery). *)

val epoch : t -> int
val sync : t -> unit
val close : t -> unit

val mkdirs : string -> unit
(** Recursively create a (replica) directory if missing. *)

val write_atomic_all : ?fsync:bool -> ?epoch:int -> string list -> string list -> unit
(** [write_atomic_all paths payloads] atomically replaces every replica
    with a journal holding exactly [payloads], creating missing replica
    directories. *)

val merge_records : string list list -> string list
(** The shortest common supersequence of the replicas' record streams —
    every record that survived anywhere, in a consistent order. *)

(** {2 Recovery} *)

type replica_report = {
  path : string;
  present : bool;
  records : int;
  torn_bytes : int;
  quarantined : int;
  damage_index : int option;
  repaired : bool;  (** rewritten to the merged stream *)
}

type recovery = {
  recovered : string list;  (** the merged record stream *)
  replicas : replica_report list;
  torn_bytes : int;
  quarantined : int;
  damage_index : int option;
      (** most conservative (lowest) first-damage index across replicas *)
  max_epoch : int;  (** fencing floor across all replicas *)
  diverged : bool;
  healed : int;  (** records restored to replicas that had lost them *)
  all_replicas_damaged : bool;
      (** every replica was damaged or missing (and at least one was
          actually damaged): only then can the merge itself have lost
          acknowledged records *)
}

val recover : ?fsync:bool -> string list -> recovery
(** Scan all replicas, merge, quarantine each replica's damage into its
    own sidecar, and rewrite every stale, damaged or missing replica
    with the merged stream (re-stamped at the highest epoch seen). *)
