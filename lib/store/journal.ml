(** Append-only write-ahead journal with CRC-framed records.

    Every record is framed

    {v HGJ1 <len:8 hex> <crc32:8 hex>\n<payload bytes>\n v}

    so the file is length-delimited (payloads may contain anything),
    self-checking (CRC-32 over the payload) and resynchronizable (a
    damaged header is skipped by scanning for the next ["\nHGJ1 "]).

    Durability contract: [append] returns only after the frame has been
    written, flushed and (unless the journal was opened with
    [~fsync:false]) fsynced — the fsync point. Recovery ({!recover})
    truncates a torn tail (an incomplete final frame: the classic
    crash-mid-write), moves CRC-invalid but fully framed records to a
    [.quarantine] sidecar, and rewrites the journal atomically
    (temp file + rename) with only the surviving records.

    All writes pass through {!Fault.on_write} and bracket
    {!Fault.crash_point}s, so the deterministic storage-fault matrix can
    crash, tear or bit-flip any individual append. *)

module Fault = Homeguard_solver.Fault

let magic = "HGJ1 "
let header_len = 23 (* "HGJ1 " + 8 hex + ' ' + 8 hex + '\n' *)

let frame payload =
  Printf.sprintf "%s%08x %08x\n%s\n" magic (String.length payload) (Crc32.string payload)
    payload

(* -- appending --------------------------------------------------------------- *)

type t = {
  path : string;
  mutable oc : out_channel option;
  fsync : bool;
  mutable appended : int;  (** appends since open; part of the fault key *)
}

let open_append ?(fsync = true) path =
  let oc = open_out_gen [ Open_wronly; Open_append; Open_creat; Open_binary ] 0o644 path in
  { path; oc = Some oc; fsync; appended = 0 }

let channel t =
  match t.oc with Some oc -> oc | None -> invalid_arg ("Journal: closed: " ^ t.path)

let fsync_channel oc =
  flush oc;
  try Unix.fsync (Unix.descr_of_out_channel oc) with Unix.Unix_error _ -> ()

let append t payload =
  let oc = channel t in
  t.appended <- t.appended + 1;
  let key = Printf.sprintf "%s#%d" (Filename.basename t.path) t.appended in
  Fault.crash_point ("journal/append/enter:" ^ key);
  (match Fault.on_write ("journal/write:" ^ key) (frame payload) with
  | `Write data -> output_string oc data
  | `Torn prefix ->
    (* a torn write is a crash mid-write: the prefix reaches the disk,
       the rest never does *)
    output_string oc prefix;
    fsync_channel oc;
    raise (Fault.Crashed ("torn write: " ^ key)));
  flush oc;
  Fault.crash_point ("journal/append/written:" ^ key);
  if t.fsync then fsync_channel oc;
  Fault.crash_point ("journal/append/synced:" ^ key)

let sync t = fsync_channel (channel t)

let close t =
  match t.oc with
  | None -> ()
  | Some oc ->
    t.oc <- None;
    (try flush oc with Sys_error _ -> ());
    close_out_noerr oc

(** Replace [path] with a journal holding exactly [payloads], via temp
    file + atomic rename (with a crash point just before the rename). *)
let write_atomic ?(fsync = true) path payloads =
  let tmp = path ^ ".tmp" in
  let oc = open_out_gen [ Open_wronly; Open_trunc; Open_creat; Open_binary ] 0o644 tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      List.iter (fun p -> output_string oc (frame p)) payloads;
      flush oc;
      if fsync then fsync_channel oc);
  Fault.crash_point ("journal/rename:" ^ Filename.basename path);
  Sys.rename tmp path

(* -- scanning ---------------------------------------------------------------- *)

type damage =
  | Torn_tail of { offset : int; raw : string }
  | Corrupt of { offset : int; raw : string }

type scan = {
  records : string list;
  damage : damage list;
  first_damage_index : int option;
      (** number of valid records preceding the first damaged region *)
}

let is_hex = function '0' .. '9' | 'a' .. 'f' -> true | _ -> false

let header_ok s pos =
  String.sub s pos 5 = magic
  && s.[pos + 13] = ' '
  && s.[pos + 22] = '\n'
  &&
  let ok = ref true in
  for i = 5 to 12 do
    if not (is_hex s.[pos + i]) then ok := false
  done;
  for i = 14 to 21 do
    if not (is_hex s.[pos + i]) then ok := false
  done;
  !ok

let scan_string s =
  let n = String.length s in
  let records = ref [] and damage = ref [] and first = ref None in
  let note d =
    if !first = None then first := Some (List.length !records);
    damage := d :: !damage
  in
  (* position of the next "\nHGJ1 " strictly after [from], at the 'H' *)
  let find_resync from =
    let rec go i =
      if i + 1 + String.length magic > n then None
      else if s.[i] = '\n' && String.sub s (i + 1) (String.length magic) = magic then
        Some (i + 1)
      else go (i + 1)
    in
    go from
  in
  let skip_damage pos =
    match find_resync pos with
    | Some next ->
      note (Corrupt { offset = pos; raw = String.sub s pos (next - pos) });
      Some next
    | None ->
      note (Corrupt { offset = pos; raw = String.sub s pos (n - pos) });
      None
  in
  let rec step pos =
    if pos >= n then ()
    else if n - pos < header_len then
      (* shorter than a header: a write torn before the frame completed *)
      note (Torn_tail { offset = pos; raw = String.sub s pos (n - pos) })
    else if not (header_ok s pos) then (
      match skip_damage pos with Some next -> step next | None -> ())
    else
      let plen = int_of_string ("0x" ^ String.sub s (pos + 5) 8) in
      let crc = int_of_string ("0x" ^ String.sub s (pos + 14) 8) in
      let fin = pos + header_len + plen + 1 in
      if fin > n then (
        (* The frame claims to extend past EOF. Only a frame with no
           frame boundary after it is a genuinely torn tail; if valid
           frames follow, the length field itself was corrupted and
           treating the rest of the file as torn would silently drop
           every good record after it — resynchronize instead. *)
        match find_resync pos with
        | Some next ->
          note (Corrupt { offset = pos; raw = String.sub s pos (next - pos) });
          step next
        | None -> note (Torn_tail { offset = pos; raw = String.sub s pos (n - pos) }))
      else
        let payload = String.sub s (pos + header_len) plen in
        if s.[fin - 1] = '\n' && Crc32.string payload = crc then begin
          records := payload :: !records;
          step fin
        end
        else if s.[fin - 1] = '\n' then begin
          (* framing held but the payload (or crc field) was flipped:
             quarantine just this record and continue *)
          note (Corrupt { offset = pos; raw = String.sub s pos (fin - pos) });
          step fin
        end
        else
          (* the length field itself is suspect: resynchronize *)
          match skip_damage pos with Some next -> step next | None -> ()
  in
  step 0;
  { records = List.rev !records; damage = List.rev !damage; first_damage_index = !first }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let scan path = if Sys.file_exists path then scan_string (read_file path) else scan_string ""

(* -- recovery ---------------------------------------------------------------- *)

type recovery = {
  recovered : string list;
  torn_bytes : int;
  quarantined : int;
  damage_index : int option;
  rewritten : bool;
}

let damage_bytes = function Torn_tail { raw; _ } | Corrupt { raw; _ } -> String.length raw

(** Scan [path]; when damaged, move each damaged region into the
    [quarantine] sidecar (default [path ^ ".quarantine"], appended with
    a readable header per region) and atomically rewrite the journal
    with only the valid records. Sound on a missing file. *)
let recover ?quarantine ?(fsync = true) path =
  let sc = scan path in
  let torn, corrupt =
    List.partition (function Torn_tail _ -> true | Corrupt _ -> false) sc.damage
  in
  let torn_bytes = List.fold_left (fun a d -> a + damage_bytes d) 0 torn in
  if sc.damage <> [] then begin
    let qpath = match quarantine with Some q -> q | None -> path ^ ".quarantine" in
    let oc = open_out_gen [ Open_wronly; Open_append; Open_creat; Open_binary ] 0o644 qpath in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        List.iter
          (fun d ->
            let kind, offset, raw =
              match d with
              | Torn_tail { offset; raw } -> ("torn", offset, raw)
              | Corrupt { offset; raw } -> ("corrupt", offset, raw)
            in
            Printf.fprintf oc "## %s kind=%s offset=%d bytes=%d\n%s\n" (Filename.basename path)
              kind offset (String.length raw) raw)
          sc.damage;
        flush oc);
    write_atomic ~fsync path sc.records
  end;
  {
    recovered = sc.records;
    torn_bytes;
    quarantined = List.length corrupt;
    damage_index = sc.first_damage_index;
    rewritten = sc.damage <> [];
  }
