(** Append-only write-ahead journal with CRC-framed records.

    Every record is framed in one of two self-describing forms:

    {v HGJ1 <len:8 hex> <crc32:8 hex>\n<payload bytes>\n v}
    {v HGJ2 <len:8 hex> <crc32:8 hex> <epoch:8 hex>\n<payload bytes>\n v}

    so the file is length-delimited (payloads may contain anything),
    self-checking (CRC-32 over the payload) and resynchronizable (a
    damaged header is skipped by scanning for the next ["\nHGJ1 "] or
    ["\nHGJ2 "]). The [HGJ2] form additionally stamps each frame with
    the writer's {e ownership epoch} — the fencing token a supervisor
    hands the current owner of the journal. Epochs along a well-formed
    journal are non-decreasing; {!scan} counts regressions (a frame
    stamped below the running maximum), which is the durable trace of a
    stale writer whose append was wrongly accepted.

    Durability contract: [append] returns only after the frame has been
    written, flushed and (unless the journal was opened with
    [~fsync:false]) fsynced — the fsync point. Recovery ({!recover})
    truncates a torn tail (an incomplete final frame: the classic
    crash-mid-write), moves CRC-invalid but fully framed records to a
    [.quarantine] sidecar, and rewrites the journal atomically
    (temp file + rename + parent-directory fsync) with only the
    surviving records.

    All writes pass through {!Fault.on_write} and bracket
    {!Fault.crash_point}s, so the deterministic storage-fault matrix can
    crash, tear or bit-flip any individual append. *)

module Fault = Homeguard_solver.Fault

let magic = "HGJ1 "
let magic2 = "HGJ2 "
let header_len = 23 (* "HGJ1 " + 8 hex + ' ' + 8 hex + '\n' *)
let header_len2 = 32 (* "HGJ2 " + 8 hex + ' ' + 8 hex + ' ' + 8 hex + '\n' *)

let frame payload =
  Printf.sprintf "%s%08x %08x\n%s\n" magic (String.length payload) (Crc32.string payload)
    payload

(** Epoch-stamped frame; epoch 0 renders in the legacy [HGJ1] form so
    unfenced writers stay byte-compatible with pre-epoch journals. *)
let frame_epoch ~epoch payload =
  if epoch = 0 then frame payload
  else
    Printf.sprintf "%s%08x %08x %08x\n%s\n" magic2 (String.length payload)
      (Crc32.string payload) epoch payload

(* -- appending --------------------------------------------------------------- *)

type t = {
  path : string;
  mutable oc : out_channel option;
  fsync : bool;
  epoch : int;  (** stamped on every frame this writer appends *)
  fault_key : string;  (** storage-fault key base (replica-distinct) *)
  mutable appended : int;  (** appends since open; part of the fault key *)
}

let open_append ?(fsync = true) ?(epoch = 0) ?fault_key path =
  let oc = open_out_gen [ Open_wronly; Open_append; Open_creat; Open_binary ] 0o644 path in
  let fault_key =
    match fault_key with Some k -> k | None -> Filename.basename path
  in
  { path; oc = Some oc; fsync; epoch; fault_key; appended = 0 }

let channel t =
  match t.oc with Some oc -> oc | None -> invalid_arg ("Journal: closed: " ^ t.path)

let fsync_channel oc =
  flush oc;
  try Unix.fsync (Unix.descr_of_out_channel oc) with Unix.Unix_error _ -> ()

(* After renaming (or creating) a directory entry, the entry itself
   lives in the parent directory's data: without fsyncing the parent, a
   power failure can forget the rename even though the file contents
   were fsynced. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let append t payload =
  let oc = channel t in
  t.appended <- t.appended + 1;
  let key = Printf.sprintf "%s#%d" t.fault_key t.appended in
  Fault.crash_point ("journal/append/enter:" ^ key);
  (match Fault.on_write ("journal/write:" ^ key) (frame_epoch ~epoch:t.epoch payload) with
  | `Write data -> output_string oc data
  | `Torn prefix ->
    (* a torn write is a crash mid-write: the prefix reaches the disk,
       the rest never does *)
    output_string oc prefix;
    fsync_channel oc;
    raise (Fault.Crashed ("torn write: " ^ key)));
  flush oc;
  Fault.crash_point ("journal/append/written:" ^ key);
  if t.fsync then fsync_channel oc;
  Fault.crash_point ("journal/append/synced:" ^ key)

let sync t = fsync_channel (channel t)

let close t =
  match t.oc with
  | None -> ()
  | Some oc ->
    t.oc <- None;
    (try flush oc with Sys_error _ -> ());
    close_out_noerr oc

(** Replace [path] with a journal holding exactly [payloads] (stamped
    with [epoch] when given), via temp file + atomic rename + parent
    directory fsync (with crash points just before the rename and in
    the rename-durable window before the dirfd fsync). *)
let write_atomic ?(fsync = true) ?(epoch = 0) path payloads =
  let tmp = path ^ ".tmp" in
  let oc = open_out_gen [ Open_wronly; Open_trunc; Open_creat; Open_binary ] 0o644 tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      List.iter (fun p -> output_string oc (frame_epoch ~epoch p)) payloads;
      flush oc;
      if fsync then fsync_channel oc);
  Fault.crash_point ("journal/rename:" ^ Filename.basename path);
  Sys.rename tmp path;
  (* the rename is not durable until the parent directory is: a crash
     here may roll the file back to its pre-rename contents *)
  Fault.crash_point ("journal/rename/unsynced:" ^ Filename.basename path);
  if fsync then fsync_dir (Filename.dirname path)

(* -- scanning ---------------------------------------------------------------- *)

type damage =
  | Torn_tail of { offset : int; raw : string }
  | Corrupt of { offset : int; raw : string }

type scan = {
  records : string list;
  frames : string list;
      (** the exact on-disk frame bytes of each valid record, in
          [records] order — what frame-level repair patches with *)
  epochs : int list;  (** the epoch stamped on each valid frame *)
  damage : damage list;
  first_damage_index : int option;
      (** number of valid records preceding the first damaged region *)
  max_epoch : int;  (** highest epoch stamped on any valid frame *)
  epoch_regressions : int;
      (** valid frames stamped below the running epoch maximum — the
          durable fingerprint of an accepted stale-epoch append *)
}

let is_hex = function '0' .. '9' | 'a' .. 'f' -> true | _ -> false

let hex_run_ok s pos len =
  let ok = ref true in
  for i = pos to pos + len - 1 do
    if not (is_hex s.[i]) then ok := false
  done;
  !ok

(* A syntactically valid header at [pos]: (payload-len, crc, epoch,
   header-len), for either frame form. *)
let parse_header s pos =
  let m = String.sub s pos 5 in
  if m = magic then
    if
      s.[pos + 13] = ' '
      && s.[pos + 22] = '\n'
      && hex_run_ok s (pos + 5) 8
      && hex_run_ok s (pos + 14) 8
    then
      Some
        ( int_of_string ("0x" ^ String.sub s (pos + 5) 8),
          int_of_string ("0x" ^ String.sub s (pos + 14) 8),
          0,
          header_len )
    else None
  else if m = magic2 then
    if
      s.[pos + 13] = ' '
      && s.[pos + 22] = ' '
      && s.[pos + 31] = '\n'
      && hex_run_ok s (pos + 5) 8
      && hex_run_ok s (pos + 14) 8
      && hex_run_ok s (pos + 23) 8
    then
      Some
        ( int_of_string ("0x" ^ String.sub s (pos + 5) 8),
          int_of_string ("0x" ^ String.sub s (pos + 14) 8),
          int_of_string ("0x" ^ String.sub s (pos + 23) 8),
          header_len2 )
    else None
  else None

let scan_string s =
  let n = String.length s in
  let records = ref [] and damage = ref [] and first = ref None in
  let frames = ref [] and epochs = ref [] in
  let max_epoch = ref 0 and regressions = ref 0 in
  let note d =
    if !first = None then first := Some (List.length !records);
    damage := d :: !damage
  in
  (* position of the next "\nHGJ1 " or "\nHGJ2 " strictly after [from],
     at the 'H' *)
  let find_resync from =
    let rec go i =
      if i + 1 + String.length magic > n then None
      else if
        s.[i] = '\n'
        &&
        let m = String.sub s (i + 1) (String.length magic) in
        m = magic || m = magic2
      then Some (i + 1)
      else go (i + 1)
    in
    go from
  in
  let skip_damage pos =
    match find_resync pos with
    | Some next ->
      note (Corrupt { offset = pos; raw = String.sub s pos (next - pos) });
      Some next
    | None ->
      note (Corrupt { offset = pos; raw = String.sub s pos (n - pos) });
      None
  in
  let rec step pos =
    if pos >= n then ()
    else if
      n - pos < header_len
      || (String.sub s pos 5 = magic2 && n - pos < header_len2)
    then
      (* shorter than its header: a write torn before the frame completed *)
      note (Torn_tail { offset = pos; raw = String.sub s pos (n - pos) })
    else
      match parse_header s pos with
      | None -> (
        match skip_damage pos with Some next -> step next | None -> ())
      | Some (plen, crc, epoch, hlen) ->
        let fin = pos + hlen + plen + 1 in
        if fin > n then (
          (* The frame claims to extend past EOF. Only a frame with no
             frame boundary after it is a genuinely torn tail; if valid
             frames follow, the length field itself was corrupted and
             treating the rest of the file as torn would silently drop
             every good record after it — resynchronize instead. *)
          match find_resync pos with
          | Some next ->
            note (Corrupt { offset = pos; raw = String.sub s pos (next - pos) });
            step next
          | None -> note (Torn_tail { offset = pos; raw = String.sub s pos (n - pos) }))
        else
          let payload = String.sub s (pos + hlen) plen in
          if s.[fin - 1] = '\n' && Crc32.string payload = crc then begin
            records := payload :: !records;
            frames := String.sub s pos (fin - pos) :: !frames;
            epochs := epoch :: !epochs;
            if epoch < !max_epoch then incr regressions
            else max_epoch := epoch;
            step fin
          end
          else if s.[fin - 1] = '\n' then begin
            (* framing held but the payload (or crc field) was flipped:
               quarantine just this record and continue *)
            note (Corrupt { offset = pos; raw = String.sub s pos (fin - pos) });
            step fin
          end
          else
            (* the length field itself is suspect: resynchronize *)
            match skip_damage pos with Some next -> step next | None -> ()
  in
  step 0;
  {
    records = List.rev !records;
    frames = List.rev !frames;
    epochs = List.rev !epochs;
    damage = List.rev !damage;
    first_damage_index = !first;
    max_epoch = !max_epoch;
    epoch_regressions = !regressions;
  }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let scan path = if Sys.file_exists path then scan_string (read_file path) else scan_string ""

(* -- recovery ---------------------------------------------------------------- *)

type recovery = {
  recovered : string list;
  torn_bytes : int;
  quarantined : int;
  damage_index : int option;
  rewritten : bool;
  max_epoch : int;
}

let damage_bytes = function Torn_tail { raw; _ } | Corrupt { raw; _ } -> String.length raw

(** Append each damaged region of [path]'s scan to the [quarantine]
    sidecar with a readable header per region. *)
let quarantine_damage ?quarantine path damage =
  if damage <> [] then begin
    let qpath = match quarantine with Some q -> q | None -> path ^ ".quarantine" in
    let oc = open_out_gen [ Open_wronly; Open_append; Open_creat; Open_binary ] 0o644 qpath in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        List.iter
          (fun d ->
            let kind, offset, raw =
              match d with
              | Torn_tail { offset; raw } -> ("torn", offset, raw)
              | Corrupt { offset; raw } -> ("corrupt", offset, raw)
            in
            Printf.fprintf oc "## %s kind=%s offset=%d bytes=%d\n%s\n" (Filename.basename path)
              kind offset (String.length raw) raw)
          damage;
        flush oc)
  end

(** Scan [path]; when damaged, move each damaged region into the
    [quarantine] sidecar (default [path ^ ".quarantine"], appended with
    a readable header per region) and atomically rewrite the journal
    with only the valid records (re-stamped at the scan's highest
    epoch, preserving the fencing floor). Sound on a missing file. *)
let recover ?quarantine ?(fsync = true) path =
  let sc = scan path in
  let torn, corrupt =
    List.partition (function Torn_tail _ -> true | Corrupt _ -> false) sc.damage
  in
  let torn_bytes = List.fold_left (fun a d -> a + damage_bytes d) 0 torn in
  if sc.damage <> [] then begin
    quarantine_damage ?quarantine path sc.damage;
    write_atomic ~fsync ~epoch:sc.max_epoch path sc.records
  end;
  {
    recovered = sc.records;
    torn_bytes;
    quarantined = List.length corrupt;
    damage_index = sc.first_damage_index;
    rewritten = sc.damage <> [];
    max_epoch = sc.max_epoch;
  }
