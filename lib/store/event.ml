(** Home-state events: the journal's payloads.

    One constructor per state-changing operation on a home — app
    installs (the full rule file, via {!Rule_json}, so recovery is
    self-contained), uninstalls, configuration-URI deliveries (with
    their ingestion sequence number when they arrived sequenced),
    per-threat handling overrides, and the dedup watermark emitted by
    compaction. Encoded as JSON, one event per journal record.

    Replay of an event sequence is {e idempotent}: installing an app
    that is already installed with an identical rule file, re-recording
    a configuration, or re-setting a decision all leave the state
    unchanged — which is what makes the crash window between the
    snapshot rename and the journal truncation (and redelivered
    messages generally) harmless. *)

module Rule = Homeguard_rules.Rule
module Rule_json = Homeguard_rules.Rule_json
module Json = Homeguard_rules.Json
module Policy = Homeguard_handling.Policy

type t =
  | Install of Rule.smartapp  (** the user kept the app *)
  | Uninstall of string
  | Config of { seq : int option; uri : string }
  | Decision of { threat_id : string; decision : Policy.decision }
  | Watermark of int  (** highest contiguously applied sequence number *)
  | Quarantine of { app : string; reason : string }
      (** the app's extraction/audit failed repeatedly; exclude it from
          batch audits until explicitly cleared *)
  | Unquarantine of string
  | Epoch of int
      (** ownership handover: the supervisor granted this epoch to the
          home's new owner *)

exception Decode_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Decode_error m)) fmt

let decision_to_json = function
  | Policy.Allow -> Json.Obj [ ("allow", Json.Null) ]
  | Policy.Prioritize { winner } -> Json.Obj [ ("prioritize", Json.String winner) ]
  | Policy.Block { rule } -> Json.Obj [ ("block", Json.String rule) ]
  | Policy.Break_chain { hop_budget } -> Json.Obj [ ("break", Json.Int hop_budget) ]
  | Policy.Confirm -> Json.Obj [ ("confirm", Json.Null) ]

let decision_of_json = function
  | Json.Obj [ ("allow", Json.Null) ] -> Policy.Allow
  | Json.Obj [ ("prioritize", Json.String winner) ] -> Policy.Prioritize { winner }
  | Json.Obj [ ("block", Json.String rule) ] -> Policy.Block { rule }
  | Json.Obj [ ("break", Json.Int hop_budget) ] -> Policy.Break_chain { hop_budget }
  | Json.Obj [ ("confirm", Json.Null) ] -> Policy.Confirm
  | j -> fail "bad decision: %s" (Json.to_string j)

let to_json = function
  | Install app -> Json.Obj [ ("install", Rule_json.smartapp_to_json app) ]
  | Uninstall name -> Json.Obj [ ("uninstall", Json.String name) ]
  | Config { seq; uri } ->
    Json.Obj
      [
        ( "config",
          Json.Obj
            [
              ("seq", match seq with Some s -> Json.Int s | None -> Json.Null);
              ("uri", Json.String uri);
            ] );
      ]
  | Decision { threat_id; decision } ->
    Json.Obj
      [
        ( "decision",
          Json.Obj [ ("id", Json.String threat_id); ("d", decision_to_json decision) ] );
      ]
  | Watermark n -> Json.Obj [ ("watermark", Json.Int n) ]
  | Quarantine { app; reason } ->
    Json.Obj
      [
        ( "quarantine",
          Json.Obj [ ("app", Json.String app); ("reason", Json.String reason) ] );
      ]
  | Unquarantine app -> Json.Obj [ ("unquarantine", Json.String app) ]
  | Epoch n -> Json.Obj [ ("epoch", Json.Int n) ]

let of_json = function
  | Json.Obj [ ("install", app) ] -> Install (Rule_json.smartapp_of_json app)
  | Json.Obj [ ("uninstall", Json.String name) ] -> Uninstall name
  | Json.Obj [ ("config", Json.Obj [ ("seq", seq); ("uri", Json.String uri) ]) ] ->
    Config { seq = (match seq with Json.Int s -> Some s | _ -> None); uri }
  | Json.Obj [ ("decision", Json.Obj [ ("id", Json.String threat_id); ("d", d) ]) ] ->
    Decision { threat_id; decision = decision_of_json d }
  | Json.Obj [ ("watermark", Json.Int n) ] -> Watermark n
  | Json.Obj
      [
        ( "quarantine",
          Json.Obj [ ("app", Json.String app); ("reason", Json.String reason) ] );
      ] ->
    Quarantine { app; reason }
  | Json.Obj [ ("unquarantine", Json.String app) ] -> Unquarantine app
  | Json.Obj [ ("epoch", Json.Int n) ] -> Epoch n
  | j -> fail "bad event: %s" (Json.to_string j)

let to_string e = Json.to_string (to_json e)

let of_string s =
  try of_json (Json.of_string s) with
  | Json.Parse_error m -> fail "unparseable event: %s" m
  | Rule_json.Decode_error m -> fail "bad rule file in event: %s" m

let describe = function
  | Install app -> "install " ^ app.Rule.name
  | Uninstall name -> "uninstall " ^ name
  | Config { seq = Some s; uri } -> Printf.sprintf "config #%d %s" s uri
  | Config { seq = None; uri } -> "config " ^ uri
  | Decision { threat_id; decision } ->
    Printf.sprintf "decision %s -> %s" threat_id (Policy.describe decision)
  | Watermark n -> Printf.sprintf "watermark %d" n
  | Quarantine { app; reason } -> Printf.sprintf "quarantine %s (%s)" app reason
  | Unquarantine app -> "unquarantine " ^ app
  | Epoch n -> Printf.sprintf "epoch %d" n
