(** CRC-32 (IEEE 802.3, the zlib polynomial), table-driven.

    Journal records are framed with a CRC over their payload so recovery
    can tell a torn or bit-flipped record from a good one. Pure OCaml —
    the container must not need zlib bindings. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

(** CRC-32 of [s], as a non-negative int below 2^32. *)
let string s =
  let t = Lazy.force table in
  let c = ref 0xFFFFFFFF in
  String.iter (fun ch -> c := t.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8)) s;
  !c lxor 0xFFFFFFFF
