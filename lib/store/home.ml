(** The durable per-home state: a write-ahead journal in front of the
    in-memory {!Rule_db} + {!Recorder} + {!Install_flow} triple.

    Every state-changing operation — keeping an app, uninstalling one,
    recording a configuration URI, overriding a handling decision — is
    appended to the journal (and fsynced) {e before} it mutates the
    in-memory state, so a crash at any instant loses at most the
    operation in flight. {!open_} recovers by letting {!Journal.recover}
    truncate a torn tail and quarantine corrupted records, then
    replaying the snapshot and journal events in order; install events
    re-run the install-time detection ({!Install_flow.propose} +
    [Keep]), which is deterministic, so the recovered state — rule
    database, recorder bindings, allowed list, kept threats and hence
    the compiled mediator — matches the pre-crash state exactly.

    Replay is idempotent (duplicate installs, configs and decisions are
    absorbed), which makes the two windows a crash can leave behind —
    a journal holding events already folded into a fresh snapshot, and
    a client re-running its workload after recovery — both harmless.

    Sequenced configuration deliveries ({!deliver}) go through an
    {!Ingest} receiver: duplicates are dropped, bounded out-of-order
    arrivals are buffered, and the contiguous watermark survives
    recovery (it is journaled with each applied config and re-emitted by
    compaction as a [Watermark] event). *)

module Rule = Homeguard_rules.Rule
module Rule_db = Homeguard_rules.Rule_db
module Rule_json = Homeguard_rules.Rule_json
module Recorder = Homeguard_config.Recorder
module Config_uri = Homeguard_config.Config_uri
module Detector = Homeguard_detector.Detector
module Threat = Homeguard_detector.Threat
module Install_flow = Homeguard_frontend.Install_flow
module Threat_interpreter = Homeguard_frontend.Threat_interpreter
module Policy = Homeguard_handling.Policy
module Mediator = Homeguard_handling.Mediator

type mode = Mixed | Online | Offline

type t = {
  dir : string;  (** primary replica directory (also the fence key) *)
  dirs : string list;  (** all replica directories, primary first *)
  snap_paths : string list;
  journal_paths : string list;
  fsync : bool;
  mode : mode;
  epoch : int;  (** effective ownership epoch stamped on every append *)
  mutable journal : Rjournal.t option;
  recorder : Recorder.t;
  flow : Install_flow.t;
  dconfig : Detector.config;
  mutable configs : (string * (int option * string)) list;
      (** app -> (seq, last raw URI), oldest-first; compaction's source *)
  mutable ingest : Ingest.t option;
  mutable skipped : int;  (** replayed records that would not decode *)
  mutable replayed_epoch : int;  (** highest [Event.Epoch] seen in replay *)
}

type recovery_report = {
  snapshot_records : int;
  journal_records : int;
  skipped_events : int;
  torn_bytes : int;
  quarantined : int;
  changed_apps : string list;
      (** apps installed at or after the first damaged record — the
          incremental re-audit set *)
  repaired_replicas : int;
      (** replica files rewritten or recreated by merged recovery *)
  healed_records : int;
      (** records restored to replicas that had lost them *)
  all_replicas_damaged : bool;
      (** some file's every replica was damaged or missing — only then
          can this recovery have lost acknowledged records *)
  epoch : int;  (** the effective ownership epoch granted to this open *)
}

let detector_config mode recorder =
  match mode with
  | Offline -> Detector.offline_config
  | Online -> Recorder.detector_config recorder
  | Mixed ->
    (* offline device-type matching (no instrumented bindings needed)
       but the recorder's configured values still constrain the solver *)
    {
      Detector.offline_config with
      Detector.app_constraints = (fun app -> Recorder.app_constraints recorder app);
    }

let journal t =
  match t.journal with Some j -> j | None -> invalid_arg "Home: journal not open"

let ingest t =
  match t.ingest with Some i -> i | None -> invalid_arg "Home: no ingest receiver"

let installed_apps t = Install_flow.installed_apps t.flow

let find_installed t name =
  List.find_opt (fun (a : Rule.smartapp) -> a.Rule.name = name) (installed_apps t)

let last_seq t = Ingest.ack (ingest t)
let flow t = t.flow
let recorder t = t.recorder
let config t = t.dconfig

(* -- state mutation (no journaling; shared by live ops and replay) ----------- *)

let set_config t app_name ~seq uri =
  if List.mem_assoc app_name t.configs then
    t.configs <-
      List.map (fun (n, v) -> if n = app_name then (n, (seq, uri)) else (n, v)) t.configs
  else t.configs <- t.configs @ [ (app_name, (seq, uri)) ]

let apply_config t ~seq uri =
  match Config_uri.decode uri with
  | u ->
    Recorder.record_uri t.recorder u;
    set_config t u.Config_uri.app_name ~seq uri
  | exception Config_uri.Malformed _ -> t.skipped <- t.skipped + 1

let install_now t app =
  ignore (Install_flow.propose t.flow app);
  Install_flow.decide t.flow Install_flow.Keep

let same_rule_file a b = Rule_json.to_string a = Rule_json.to_string b

(** Idempotent event application: replaying a journal whose events were
    already (partially) folded into the state leaves it unchanged. *)
let apply_event t = function
  | Event.Install app -> (
    match find_installed t app.Rule.name with
    | Some existing when same_rule_file existing app -> ()
    | Some _ ->
      Install_flow.uninstall t.flow app.Rule.name;
      install_now t app
    | None -> install_now t app)
  | Event.Uninstall name -> Install_flow.uninstall t.flow name
  | Event.Config { seq; uri } ->
    let stale = match seq with Some s -> s <= Ingest.ack (ingest t) | None -> false in
    if not stale then begin
      apply_config t ~seq uri;
      Option.iter (Ingest.force_last (ingest t)) seq
    end
  | Event.Decision { threat_id; decision } ->
    Install_flow.set_decision t.flow threat_id decision
  | Event.Watermark n -> Ingest.force_last (ingest t) n
  | Event.Quarantine { app; reason } -> Install_flow.quarantine t.flow app ~reason
  | Event.Unquarantine app -> ignore (Install_flow.unquarantine t.flow app)
  | Event.Epoch n -> if n > t.replayed_epoch then t.replayed_epoch <- n

(* -- journaled operations ---------------------------------------------------- *)

let log_event t ev = Rjournal.append (journal t) (Event.to_string ev)

(** Install-time proposal. [?budget] replaces the per-solve budget for
    this proposal only (a deadline-derived {!Budget.of_deadline} spec;
    escalation is disabled so no solve outlives the request deadline);
    [?cancel] cuts the audit short cooperatively. *)
let propose ?budget ?cancel t app =
  let config =
    Option.map
      (fun b -> { t.dconfig with Detector.budget = b; Detector.escalate = false })
      budget
  in
  Install_flow.propose ?config ?cancel t.flow app

exception No_pending_install = Install_flow.No_pending_install

(** The user's install-time verdict. [Keep] is journaled (the full rule
    file) before it takes effect; [Reject]/[Reconfigure] change no
    durable state. *)
let decide t decision =
  match decision with
  | Install_flow.Keep -> (
    match Install_flow.pending t.flow with
    | None -> raise No_pending_install
    | Some r ->
      log_event t (Event.Install r.Install_flow.app);
      Install_flow.decide t.flow Install_flow.Keep)
  | Install_flow.Reject | Install_flow.Reconfigure -> Install_flow.decide t.flow decision

type install_outcome =
  | Installed of Install_flow.report
  | Updated of Install_flow.report
  | Unchanged

(** Idempotent one-shot install: propose + [Keep], skipping apps already
    installed with an identical rule file and reinstalling (config
    update) apps whose rules changed. Re-running a whole workload after
    crash recovery converges through this path. *)
let install_app t app =
  match find_installed t app.Rule.name with
  | Some existing when same_rule_file existing app -> Unchanged
  | Some _ ->
    log_event t (Event.Uninstall app.Rule.name);
    Install_flow.uninstall t.flow app.Rule.name;
    let r = propose t app in
    decide t Install_flow.Keep;
    Updated r
  | None ->
    let r = propose t app in
    decide t Install_flow.Keep;
    Installed r

let uninstall t name =
  match find_installed t name with
  | None -> false
  | Some _ ->
    log_event t (Event.Uninstall name);
    Install_flow.uninstall t.flow name;
    true

type delivery = Accepted of Ingest.outcome | Malformed of string

(** An unsequenced configuration URI (trusted, in-order transport). *)
let record_uri t uri =
  match Config_uri.decode uri with
  | _ ->
    log_event t (Event.Config { seq = None; uri });
    apply_config t ~seq:None uri;
    Accepted (Ingest.Applied 1)
  | exception Config_uri.Malformed m -> Malformed m

(** A sequenced delivery from the lossy transport: validated, then run
    through the dedup / reorder window. Each message applied journals a
    [Config] event carrying its sequence number. *)
let deliver t ~seq uri =
  if seq < 1 then Malformed "sequence numbers start at 1"
  else
    match Config_uri.decode uri with
    | _ -> Accepted (Ingest.receive (ingest t) ~seq uri)
    | exception Config_uri.Malformed m -> Malformed m

let set_decision t threat_id decision =
  log_event t (Event.Decision { threat_id; decision });
  Install_flow.set_decision t.flow threat_id decision

(* -- poison-app quarantine (journaled) --------------------------------------- *)

let quarantine t ~app ~reason =
  if not (Install_flow.is_quarantined t.flow app) then begin
    log_event t (Event.Quarantine { app; reason });
    Install_flow.quarantine t.flow app ~reason
  end

let unquarantine t app =
  if Install_flow.is_quarantined t.flow app then begin
    log_event t (Event.Unquarantine app);
    Install_flow.unquarantine t.flow app
  end
  else false

let quarantined t = Install_flow.quarantined t.flow
let is_quarantined t app = Install_flow.is_quarantined t.flow app

let mediator ?defer_delay_ms ?max_deferrals t =
  Install_flow.mediator ?defer_delay_ms ?max_deferrals t.flow

(* -- recovery ---------------------------------------------------------------- *)

let rec mkdirs dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdirs (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let replay t records =
  List.iter
    (fun payload ->
      match Event.of_string payload with
      | ev -> apply_event t ev
      | exception Event.Decode_error _ -> t.skipped <- t.skipped + 1)
    records

(* app names introduced by Install events from record index [idx] on *)
let installs_from records idx =
  List.filteri (fun i _ -> i >= idx) records
  |> List.filter_map (fun p ->
         match Event.of_string p with
         | Event.Install app -> Some app.Rule.name
         | _ -> None
         | exception Event.Decode_error _ -> None)

let open_ ?(fsync = true) ?(mode = Mixed) ?(window = 64) ?(configure = Fun.id)
    ?(replicas = []) ?epoch ~dir () =
  let dirs = dir :: replicas in
  List.iter mkdirs dirs;
  let snap_paths = List.map (fun d -> Filename.concat d "snapshot") dirs in
  let journal_paths = List.map (fun d -> Filename.concat d "journal") dirs in
  let rs = Rjournal.recover ~fsync snap_paths in
  let rj = Rjournal.recover ~fsync journal_paths in
  (* the effective ownership epoch: a fenced open must exceed both the
     on-disk floor (frames survive restarts) and any earlier in-process
     grant; an unfenced open adopts the floor, so a later fenced owner
     still outranks it *)
  let floor = max rs.Rjournal.max_epoch rj.Rjournal.max_epoch in
  let eff =
    match epoch with None -> floor | Some e -> if e > floor then e else floor + 1
  in
  ignore (Fence.acquire dir eff);
  let recorder = Recorder.create () in
  let dconfig = configure (detector_config mode recorder) in
  let flow = Install_flow.create ~detector_config:dconfig () in
  let t =
    {
      dir;
      dirs;
      snap_paths;
      journal_paths;
      fsync;
      mode;
      epoch = eff;
      journal = None;
      recorder;
      flow;
      dconfig;
      configs = [];
      ingest = None;
      skipped = 0;
      replayed_epoch = 0;
    }
  in
  t.ingest <-
    Some
      (Ingest.create ~window (fun ~seq uri ->
           log_event t (Event.Config { seq = Some seq; uri });
           apply_config t ~seq:(Some seq) uri));
  replay t rs.Rjournal.recovered;
  replay t rj.Rjournal.recovered;
  t.journal <-
    Some (Rjournal.open_append ~fsync ~epoch:eff ~fence_key:dir journal_paths);
  (* a fenced handover is journaled: the grant survives even a journal
     whose only other frames predate the new epoch *)
  if epoch <> None && eff > floor then begin
    log_event t (Event.Epoch eff);
    apply_event t (Event.Epoch eff)
  end;
  let changed =
    (* a damaged replica whose records all survived on a sibling loses
       nothing — only when every replica surfaced damage can the merged
       stream itself be incomplete, so only then is anything suspect
       (for a single replica this is exactly the old "any damage" rule) *)
    let suspect (r : Rjournal.recovery) =
      if r.Rjournal.all_replicas_damaged then r.Rjournal.damage_index else None
    in
    match (suspect rs, suspect rj) with
    | Some _, _ ->
      (* the snapshot itself was damaged: everything is suspect *)
      List.map (fun (a : Rule.smartapp) -> a.Rule.name) (installed_apps t)
    | None, Some idx -> installs_from rj.Rjournal.recovered idx
    | None, None -> []
  in
  let changed =
    List.sort_uniq compare (List.filter (fun n -> find_installed t n <> None) changed)
  in
  let repaired =
    List.length
      (List.filter
         (fun (r : Rjournal.replica_report) -> r.Rjournal.repaired)
         (rs.Rjournal.replicas @ rj.Rjournal.replicas))
  in
  ( t,
    {
      snapshot_records = List.length rs.Rjournal.recovered;
      journal_records = List.length rj.Rjournal.recovered;
      skipped_events = t.skipped;
      torn_bytes = rs.Rjournal.torn_bytes + rj.Rjournal.torn_bytes;
      quarantined = rs.Rjournal.quarantined + rj.Rjournal.quarantined;
      changed_apps = changed;
      repaired_replicas = repaired;
      healed_records = rs.Rjournal.healed + rj.Rjournal.healed;
      all_replicas_damaged =
        rs.Rjournal.all_replicas_damaged || rj.Rjournal.all_replicas_damaged;
      epoch = eff;
    } )

let close t =
  match t.journal with
  | None -> ()
  | Some j ->
    t.journal <- None;
    Rjournal.close j

(* -- compaction -------------------------------------------------------------- *)

(** Fold the whole history into a minimal snapshot — current configs
    (in arrival order, before the installs that may depend on them),
    currently installed apps (install order), explicit decisions, and
    the ingestion watermark — then truncate the journal. Both file
    replacements are atomic renames; a crash between them leaves a
    journal whose events replay idempotently over the new snapshot. *)
let compact (t : t) =
  let events =
    (if t.epoch > 0 then [ Event.Epoch t.epoch ] else [])
    @ List.map (fun (_, (seq, uri)) -> Event.Config { seq; uri }) t.configs
    @ List.map (fun a -> Event.Install a) (installed_apps t)
    @ List.map
        (fun (threat_id, decision) -> Event.Decision { threat_id; decision })
        (Policy.decisions (Install_flow.policies t.flow))
    @ List.map
        (fun (app, reason) -> Event.Quarantine { app; reason })
        (Install_flow.quarantined t.flow)
    @ [ Event.Watermark (Ingest.ack (ingest t)) ]
  in
  close t;
  Rjournal.write_atomic_all ~fsync:t.fsync ~epoch:t.epoch t.snap_paths
    (List.map Event.to_string events);
  Rjournal.write_atomic_all ~fsync:t.fsync ~epoch:t.epoch t.journal_paths [];
  t.journal <-
    Some
      (Rjournal.open_append ~fsync:t.fsync ~epoch:t.epoch ~fence_key:t.dir
         t.journal_paths)

(* -- anti-entropy ------------------------------------------------------------- *)

(** Scrub this (live) home's replica set: park the journal writers, run
    the offline {!Scrub.scrub_home} read-repair pass, reopen. Safe
    because the in-memory state is exactly the replay of the appends the
    writers made, every one of which survives on the healthiest replica
    the merge starts from. *)
let scrub (t : t) =
  close t;
  let report = Scrub.scrub_home ~fsync:t.fsync t.dirs in
  t.journal <-
    Some
      (Rjournal.open_append ~fsync:t.fsync ~epoch:t.epoch ~fence_key:t.dir
         t.journal_paths);
  report

let file_size path = if Sys.file_exists path then (Unix.stat path).Unix.st_size else 0
let journal_size t = file_size (List.hd t.journal_paths)
let snapshot_size t = file_size (List.hd t.snap_paths)
let dir t = t.dir
let replica_dirs t = t.dirs
let epoch (t : t) = t.epoch

(* -- canonical durable state -------------------------------------------------- *)

(** Canonical rendering of every piece of durable state — the full rule
    files of the installed apps (the {!Rule_db} contents), the kept
    threats and explicit decisions (the {!Install_flow} state feeding
    the mediator), configs, quarantine and the ingestion watermark —
    without running any audit. Two recoveries of the same journal must
    produce byte-identical [state_text]; that is the fleet's
    replay-determinism invariant, checkable in microseconds per home
    where {!audit_text} costs a full detection pass. *)
let state_text t =
  let b = Buffer.create 1024 in
  Buffer.add_string b "apps:\n";
  List.iter
    (fun (a : Rule.smartapp) ->
      Buffer.add_string b (" " ^ Rule_json.to_string a ^ "\n"))
    (installed_apps t);
  Buffer.add_string b "kept:";
  List.iter
    (fun th -> Buffer.add_string b (" " ^ Policy.threat_id th))
    (Install_flow.kept_threats t.flow);
  Buffer.add_char b '\n';
  Buffer.add_string b "decisions:";
  List.iter
    (fun (id, d) -> Buffer.add_string b (Printf.sprintf " [%s -> %s]" id (Policy.describe d)))
    (Policy.decisions (Install_flow.policies t.flow));
  Buffer.add_char b '\n';
  Buffer.add_string b "configs:";
  List.iter
    (fun (app, (seq, uri)) ->
      Buffer.add_string b
        (Printf.sprintf " [%s#%s %s]" app
           (match seq with Some s -> string_of_int s | None -> "-")
           uri))
    t.configs;
  Buffer.add_char b '\n';
  Buffer.add_string b "quarantined:";
  List.iter
    (fun (app, reason) -> Buffer.add_string b (Printf.sprintf " [%s: %s]" app reason))
    (Install_flow.quarantined t.flow);
  Buffer.add_char b '\n';
  Buffer.add_string b (Printf.sprintf "ack: %d\n" (last_seq t));
  Buffer.contents b

let state_digest t = Digest.to_hex (Digest.string (state_text t))

(** Count of [kind=corrupt] regions recorded in the quarantine sidecars
    under [dir] — the durable trace that some past recovery had to
    quarantine a corrupted record. Torn-tail regions are excluded: a
    torn append raises to the caller before it is acknowledged, so
    truncating it can never lose acknowledged state, while a corrupt
    mid-journal record can. Survives any number of restarts, unlike the
    in-memory recovery reports. *)
let surfaced_corruption ?(replicas = []) ~dir () =
  let contains ~sub s =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  let count path =
    let side = path ^ ".quarantine" in
    if not (Sys.file_exists side) then 0
    else
      let ic = open_in_bin side in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let n = ref 0 in
          (try
             while true do
               let line = input_line ic in
               if
                 String.length line >= 2
                 && String.sub line 0 2 = "##"
                 && contains ~sub:"kind=corrupt" line
               then incr n
             done
           with End_of_file -> ());
          !n)
  in
  List.fold_left
    (fun acc d ->
      acc
      + count (Filename.concat d "snapshot")
      + count (Filename.concat d "journal"))
    0 (dir :: replicas)

(* -- re-audit ---------------------------------------------------------------- *)

(* Quarantined apps stay installed but are excluded from batch audits:
   a poison app must not be able to crash every later re-audit. *)
let auditable_apps t =
  List.filter
    (fun (a : Rule.smartapp) -> not (Install_flow.is_quarantined t.flow a.Rule.name))
    (installed_apps t)

let audit ?(jobs = 1) ?cancel t =
  let ctx = Detector.create t.dconfig in
  Detector.audit_all ~jobs ?cancel ctx (auditable_apps t)

(** Canonical rendering of a full re-audit plus the durable state that
    feeds the mediator. Recovery's acceptance invariant is that this is
    byte-identical before a crash and after replaying the journal. *)
let audit_text t =
  let b = Buffer.create 512 in
  let result = audit t in
  Buffer.add_string b "installed:";
  List.iter
    (fun (a : Rule.smartapp) -> Buffer.add_string b (" " ^ a.Rule.name))
    (installed_apps t);
  Buffer.add_char b '\n';
  Buffer.add_string b
    (Printf.sprintf "threats: %d (undecided %d, failed %d)\n"
       (List.length result.Detector.threats)
       result.Detector.undecided
       (List.length result.Detector.failures));
  Buffer.add_string b (Threat_interpreter.describe_all result.Detector.threats);
  Buffer.add_char b '\n';
  Buffer.add_string b "kept:";
  List.iter
    (fun th -> Buffer.add_string b (" " ^ Policy.threat_id th))
    (Install_flow.kept_threats t.flow);
  Buffer.add_char b '\n';
  Buffer.add_string b "decisions:";
  List.iter
    (fun (id, d) -> Buffer.add_string b (Printf.sprintf " [%s -> %s]" id (Policy.describe d)))
    (Policy.decisions (Install_flow.policies t.flow));
  Buffer.add_char b '\n';
  Buffer.add_string b "configs:";
  List.iter
    (fun (app, (seq, uri)) ->
      Buffer.add_string b
        (Printf.sprintf " [%s#%s %s]" app
           (match seq with Some s -> string_of_int s | None -> "-")
           uri))
    t.configs;
  Buffer.add_char b '\n';
  Buffer.add_string b "quarantined:";
  List.iter
    (fun (app, reason) -> Buffer.add_string b (Printf.sprintf " [%s: %s]" app reason))
    (Install_flow.quarantined t.flow);
  Buffer.add_char b '\n';
  Buffer.add_string b (Printf.sprintf "ack: %d\n" (last_seq t));
  Buffer.contents b

(** Incremental re-audit of the apps a recovery marked as changed: each
    is audited against the rest of the recovered home through the
    install-time ({!Detector.audit_new_app}) machinery. *)
let reaudit_changed ?(jobs = 1) t (report : recovery_report) =
  List.filter_map
    (fun name ->
      match find_installed t name with
      | None -> None
      | Some _ when Install_flow.is_quarantined t.flow name -> None
      | Some app ->
        let db = Rule_db.create () in
        List.iter
          (fun (a : Rule.smartapp) ->
            if a.Rule.name <> name then ignore (Rule_db.install db a))
          (auditable_apps t);
        let ctx = Detector.create t.dconfig in
        Some (name, Detector.audit_new_app ~jobs ctx db app))
    report.changed_apps
