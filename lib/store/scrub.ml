(** Anti-entropy scrub over a home's replica set.

    A scrub pass CRC-scans the snapshot and journal of every replica
    directory, compares the replicas' {e record-stream digests} (replay
    is deterministic — the replay-determinism property suite pins this
    — so byte-identical record streams imply byte-identical
    {!Home.state_digest}s without paying a detection pass per replica),
    and when anything is missing, damaged or diverged repairs at {e
    frame granularity}: the merged record stream is aligned against each
    replica's surviving frames, a byte-exact target image is built that
    keeps every frame the replica already holds and splices donor frames
    only where records are missing, and the replica file is patched in
    place between the first and last differing byte. Repair I/O is
    bounded by the damage ([repair_bytes], [patched_frames]), not by the
    file size — a single flipped byte costs a single-byte write, where
    the old read-repair rewrote the whole replica set. A healthy home is
    untouched — a second pass over a repaired fleet reports all-healthy
    and writes nothing.

    The in-place patch is not atomic: a crash mid-patch leaves a frame
    whose CRC fails, which the next scrub quarantines and re-repairs
    from the surviving replicas — convergence is reached by retry, never
    lost. The same pass serves any journal-framed surface: [~files]
    selects the logical file names, so the verdict cache's
    [cache.snapshot]/[cache.journal] replicas converge under the exact
    contract (and counters) as home journals. *)

let default_files = [ "snapshot"; "journal" ]

let files_of_dir dir = [ Filename.concat dir "snapshot"; Filename.concat dir "journal" ]

(** Record-stream digest of one replica directory: the digest of every
    valid record of every file in [~files] order. Missing files digest
    as empty streams, so a destroyed replica simply disagrees with its
    healthy siblings. *)
let dir_digest ?(files = default_files) dir =
  let b = Buffer.create 1024 in
  List.iter
    (fun name ->
      let sc = Journal.scan (Filename.concat dir name) in
      List.iter
        (fun r ->
          Buffer.add_string b (string_of_int (String.length r));
          Buffer.add_char b ':';
          Buffer.add_string b r)
        sc.Journal.records;
      Buffer.add_char b '|')
    files;
  Digest.to_hex (Digest.string (Buffer.contents b))

type home_report = {
  dirs : string list;
  healthy : bool;  (** nothing to do: present, undamaged, converged *)
  converged : bool;  (** all replicas share one digest after the pass *)
  digest : string;  (** the (post-repair) record-stream digest *)
  repaired_replicas : int;  (** replica files patched by read-repair *)
  recreated_replicas : int;  (** replica files that were missing entirely *)
  frames_quarantined : int;
  torn_bytes : int;
  records_healed : int;  (** records restored to replicas that lost them *)
  patched_frames : int;  (** frames overlapping the patched byte ranges *)
  repair_bytes : int;  (** bytes actually written by repair — bounded by damage *)
  epoch : int;  (** fencing floor across the replica set *)
}

(* -- frame-level repair of one logical file across the replica set ------------- *)

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> ""
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))

let rec mkdirs dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdirs (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let write_all fd b =
  let rec go off rem =
    if rem > 0 then begin
      let n = Unix.write fd b off rem in
      go (off + n) (rem - n)
    end
  in
  go 0 (Bytes.length b)

(** Patch [path] in place so its bytes become [target], writing only
    between the first and last differing byte. Returns the byte range
    written as [(offset, length)] — the repair-I/O bound. Not atomic: a
    crash mid-patch leaves a CRC-failing frame that the next pass
    quarantines and repairs again. *)
let patch_file ~fsync path ~current ~target =
  let cl = String.length current and tl = String.length target in
  let maxp = min cl tl in
  let p = ref 0 in
  while !p < maxp && current.[!p] = target.[!p] do incr p done;
  let prefix = !p in
  mkdirs (Filename.dirname path);
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let range =
        if cl = tl then begin
          (* equal length: share the common suffix too, patch the middle *)
          let s = ref 0 in
          while
            !s < tl - prefix && current.[cl - 1 - !s] = target.[tl - 1 - !s]
          do
            incr s
          done;
          let len = tl - !s - prefix in
          if len > 0 then begin
            ignore (Unix.lseek fd prefix Unix.SEEK_SET);
            write_all fd (Bytes.of_string (String.sub target prefix len))
          end;
          (prefix, len)
        end
        else begin
          (* length changed: rewrite from the first divergence, truncate *)
          ignore (Unix.lseek fd prefix Unix.SEEK_SET);
          write_all fd (Bytes.of_string (String.sub target prefix (tl - prefix)));
          Unix.ftruncate fd tl;
          (prefix, tl - prefix)
        end
      in
      if fsync then Unix.fsync fd;
      range)

type file_repair = {
  f_repaired : int;
  f_recreated : int;
  f_quarantined : int;
  f_torn_bytes : int;
  f_healed : int;
  f_patched_frames : int;
  f_repair_bytes : int;
  f_max_epoch : int;
}

(** Repair one logical file (e.g. ["journal"]) across the replica
    directories at frame granularity. Each replica's surviving records
    form a subsequence of the merged stream (the {!Rjournal} merge
    guarantee), so a greedy walk aligns every replica's frames against
    the merged order; each replica's target image keeps its own frame
    bytes wherever it holds the record and splices a sibling's frame (or
    a re-framed payload) only where it lost one. Donor frames stamped
    below the running epoch of the target are re-framed at the running
    epoch, so splicing never manufactures an epoch regression. *)
let repair_file ~fsync dirs name =
  let infos =
    List.map
      (fun d ->
        let path = Filename.concat d name in
        (path, Sys.file_exists path, Journal.scan path))
      dirs
  in
  let merged =
    Rjournal.merge_records (List.map (fun (_, _, sc) -> sc.Journal.records) infos)
  in
  let marr = Array.of_list merged in
  let n = Array.length marr in
  (* greedy subsequence embedding: own.(k) = this replica's frame bytes
     and epoch for merged record k, if the replica holds it *)
  let embeddings =
    List.map
      (fun (_, _, (sc : Journal.scan)) ->
        let recs = Array.of_list sc.Journal.records in
        let frs = Array.of_list sc.Journal.frames in
        let eps = Array.of_list sc.Journal.epochs in
        let own = Array.make (max n 1) None in
        let i = ref 0 in
        for k = 0 to n - 1 do
          if !i < Array.length recs && recs.(!i) = marr.(k) then begin
            own.(k) <- Some (frs.(!i), eps.(!i));
            incr i
          end
        done;
        own)
      infos
  in
  let donor k = List.find_map (fun own -> own.(k)) embeddings in
  (* byte-exact target image for one replica, plus each target frame's
     [start, stop) offsets for the patched-frame count *)
  let target_of own =
    let running = ref 0 in
    let buf = Buffer.create 4096 in
    let spans = ref [] in
    for k = 0 to n - 1 do
      let fr, ep =
        match own.(k) with
        | Some fe -> fe
        | None -> (
          match donor k with
          | Some fe -> fe
          | None -> (Journal.frame_epoch ~epoch:!running marr.(k), !running))
      in
      let fr, ep =
        if ep < !running then (Journal.frame_epoch ~epoch:!running marr.(k), !running)
        else (fr, ep)
      in
      running := max !running ep;
      let start = Buffer.length buf in
      Buffer.add_string buf fr;
      spans := (start, Buffer.length buf) :: !spans
    done;
    (Buffer.contents buf, List.rev !spans)
  in
  let zero =
    {
      f_repaired = 0;
      f_recreated = 0;
      f_quarantined = 0;
      f_torn_bytes = 0;
      f_healed = 0;
      f_patched_frames = 0;
      f_repair_bytes = 0;
      f_max_epoch =
        List.fold_left
          (fun a (_, _, (sc : Journal.scan)) -> max a sc.Journal.max_epoch)
          0 infos;
    }
  in
  List.fold_left2
    (fun acc (path, present, (sc : Journal.scan)) own ->
      if sc.Journal.damage <> [] then Journal.quarantine_damage path sc.Journal.damage;
      let torn_bytes =
        List.fold_left
          (fun a -> function
            | Journal.Torn_tail { raw; _ } -> a + String.length raw
            | Journal.Corrupt _ -> a)
          0 sc.Journal.damage
      in
      let corrupt =
        List.length
          (List.filter
             (function Journal.Corrupt _ -> true | Journal.Torn_tail _ -> false)
             sc.Journal.damage)
      in
      let target, spans = target_of own in
      let current = if present then read_file path else "" in
      (* an absent file with nothing to hold is a fresh open, not a lost
         replica — creating it would make every first open look like a
         repair *)
      let wrote =
        if current = target || ((not present) && target = "") then None
        else Some (patch_file ~fsync path ~current ~target)
      in
      let patched_frames =
        match wrote with
        | None | Some (_, 0) -> 0
        | Some (off, len) ->
          let stop = off + len in
          List.length
            (List.filter (fun (s, e) -> s < stop && e > off) spans)
      in
      {
        acc with
        f_repaired = (acc.f_repaired + if wrote <> None && present then 1 else 0);
        f_recreated = (acc.f_recreated + if wrote <> None && not present then 1 else 0);
        f_quarantined = acc.f_quarantined + corrupt;
        f_torn_bytes = acc.f_torn_bytes + torn_bytes;
        f_healed = acc.f_healed + (n - List.length sc.Journal.records);
        f_patched_frames = acc.f_patched_frames + patched_frames;
        f_repair_bytes =
          (acc.f_repair_bytes + match wrote with None -> 0 | Some (_, len) -> len);
      })
    zero infos embeddings

(** Scrub one home given its replica directories. Safe only when no
    live writer holds the journals open (a live {!Home} scrubs itself
    via {!Home.scrub}, which parks its writers around this). [~files]
    selects the journal-framed surface — home journals by default, the
    verdict cache's [cache.snapshot]/[cache.journal] for cache dirs. *)
let scrub_home ?(fsync = true) ?(files = default_files) dirs =
  if dirs = [] then invalid_arg "Scrub.scrub_home: no replica dirs";
  let digests = List.map (dir_digest ~files) dirs in
  let scans =
    List.concat_map
      (fun d -> List.map (fun f -> Journal.scan (Filename.concat d f)) files)
      dirs
  in
  let damage = List.exists (fun sc -> sc.Journal.damage <> []) scans in
  let converged_before =
    match digests with [] -> true | d :: ds -> List.for_all (( = ) d) ds
  in
  (* converged + undamaged means read-repair would write nothing: a
     replica missing a file that holds records anywhere diverges the
     digests, and a file absent everywhere (e.g. no snapshot before the
     first compaction) needs no repair — counting it "missing" would
     leave such homes permanently unhealthy and break idempotence *)
  let healthy = converged_before && not damage in
  if healthy then
    {
      dirs;
      healthy = true;
      converged = true;
      digest = (match digests with d :: _ -> d | [] -> "");
      repaired_replicas = 0;
      recreated_replicas = 0;
      frames_quarantined = 0;
      torn_bytes = 0;
      records_healed = 0;
      patched_frames = 0;
      repair_bytes = 0;
      epoch =
        List.fold_left (fun a (sc : Journal.scan) -> max a sc.Journal.max_epoch) 0 scans;
    }
  else begin
    let repairs = List.map (repair_file ~fsync dirs) files in
    let sum f = List.fold_left (fun a r -> a + f r) 0 repairs in
    let digests = List.map (dir_digest ~files) dirs in
    let converged =
      match digests with [] -> true | d :: ds -> List.for_all (( = ) d) ds
    in
    {
      dirs;
      healthy = false;
      converged;
      digest = (match digests with d :: _ -> d | [] -> "");
      repaired_replicas = sum (fun r -> r.f_repaired);
      recreated_replicas = sum (fun r -> r.f_recreated);
      frames_quarantined = sum (fun r -> r.f_quarantined);
      torn_bytes = sum (fun r -> r.f_torn_bytes);
      records_healed = sum (fun r -> r.f_healed);
      patched_frames = sum (fun r -> r.f_patched_frames);
      repair_bytes = sum (fun r -> r.f_repair_bytes);
      epoch = List.fold_left (fun a r -> max a r.f_max_epoch) 0 repairs;
    }
  end

(* -- fleet-level counters ------------------------------------------------------ *)

type counters = {
  homes : int;
  healthy : int;
  repaired_homes : int;  (** homes where read-repair wrote anything *)
  repaired_replicas : int;
  recreated_replicas : int;
  frames_quarantined : int;
  torn_bytes : int;
  records_healed : int;
  patched_frames : int;
  repair_bytes : int;
  unconverged : int;  (** homes still diverged after repair — must be 0 *)
}

let zero =
  {
    homes = 0;
    healthy = 0;
    repaired_homes = 0;
    repaired_replicas = 0;
    recreated_replicas = 0;
    frames_quarantined = 0;
    torn_bytes = 0;
    records_healed = 0;
    patched_frames = 0;
    repair_bytes = 0;
    unconverged = 0;
  }

let add c (r : home_report) =
  {
    homes = c.homes + 1;
    healthy = (c.healthy + if r.healthy then 1 else 0);
    repaired_homes =
      (c.repaired_homes
      + if r.repaired_replicas > 0 || r.recreated_replicas > 0 then 1 else 0);
    repaired_replicas = c.repaired_replicas + r.repaired_replicas;
    recreated_replicas = c.recreated_replicas + r.recreated_replicas;
    frames_quarantined = c.frames_quarantined + r.frames_quarantined;
    torn_bytes = c.torn_bytes + r.torn_bytes;
    records_healed = c.records_healed + r.records_healed;
    patched_frames = c.patched_frames + r.patched_frames;
    repair_bytes = c.repair_bytes + r.repair_bytes;
    unconverged = (c.unconverged + if r.converged then 0 else 1);
  }

let counters_text c =
  Printf.sprintf
    "homes=%d healthy=%d repaired-homes=%d repaired-replicas=%d \
     recreated-replicas=%d quarantined-frames=%d torn-bytes=%d healed-records=%d \
     patched-frames=%d repair-bytes=%d unconverged=%d"
    c.homes c.healthy c.repaired_homes c.repaired_replicas c.recreated_replicas
    c.frames_quarantined c.torn_bytes c.records_healed c.patched_frames
    c.repair_bytes c.unconverged
