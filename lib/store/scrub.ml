(** Anti-entropy scrub over a home's replica set.

    A scrub pass CRC-scans the snapshot and journal of every replica
    directory, compares the replicas' {e record-stream digests} (replay
    is deterministic — the replay-determinism property suite pins this
    — so byte-identical record streams imply byte-identical
    {!Home.state_digest}s without paying a detection pass per replica),
    and when anything is missing, damaged or diverged runs the merged
    {!Rjournal} recovery as read-repair: damage is quarantined into the
    damaged replica's own sidecar and every replica is rewritten with
    the merged stream. A healthy home is untouched — a second pass over
    a repaired fleet reports all-healthy and rewrites nothing. *)

let files_of_dir dir = [ Filename.concat dir "snapshot"; Filename.concat dir "journal" ]

(** Record-stream digest of one replica directory: the digest of every
    valid snapshot record then every valid journal record, in order.
    Missing files digest as empty streams, so a destroyed replica
    simply disagrees with its healthy siblings. *)
let dir_digest dir =
  let b = Buffer.create 1024 in
  List.iter
    (fun path ->
      let sc = Journal.scan path in
      List.iter
        (fun r ->
          Buffer.add_string b (string_of_int (String.length r));
          Buffer.add_char b ':';
          Buffer.add_string b r)
        sc.Journal.records;
      Buffer.add_char b '|')
    (files_of_dir dir);
  Digest.to_hex (Digest.string (Buffer.contents b))

type home_report = {
  dirs : string list;
  healthy : bool;  (** nothing to do: present, undamaged, converged *)
  converged : bool;  (** all replicas share one digest after the pass *)
  digest : string;  (** the (post-repair) record-stream digest *)
  repaired_replicas : int;  (** replica files rewritten by read-repair *)
  recreated_replicas : int;  (** replica files that were missing entirely *)
  frames_quarantined : int;
  torn_bytes : int;
  records_healed : int;  (** records restored to replicas that lost them *)
  epoch : int;  (** fencing floor across the replica set *)
}

(** Scrub one home given its replica directories. Safe only when no
    live writer holds the journals open (a live {!Home} scrubs itself
    via {!Home.scrub}, which parks its writers around this). *)
let scrub_home ?(fsync = true) dirs =
  if dirs = [] then invalid_arg "Scrub.scrub_home: no replica dirs";
  let digests = List.map dir_digest dirs in
  let scans =
    List.concat_map (fun d -> List.map Journal.scan (files_of_dir d)) dirs
  in
  let damage = List.exists (fun sc -> sc.Journal.damage <> []) scans in
  let converged_before =
    match digests with [] -> true | d :: ds -> List.for_all (( = ) d) ds
  in
  (* converged + undamaged means read-repair would rewrite nothing: a
     replica missing a file that holds records anywhere diverges the
     digests, and a file absent everywhere (e.g. no snapshot before the
     first compaction) needs no repair — counting it "missing" would
     leave such homes permanently unhealthy and break idempotence *)
  let healthy = converged_before && not damage in
  if healthy then
    {
      dirs;
      healthy = true;
      converged = true;
      digest = (match digests with d :: _ -> d | [] -> "");
      repaired_replicas = 0;
      recreated_replicas = 0;
      frames_quarantined = 0;
      torn_bytes = 0;
      records_healed = 0;
      epoch =
        List.fold_left (fun a (sc : Journal.scan) -> max a sc.Journal.max_epoch) 0 scans;
    }
  else begin
    let snap = Rjournal.recover ~fsync (List.map (fun d -> Filename.concat d "snapshot") dirs) in
    let jour = Rjournal.recover ~fsync (List.map (fun d -> Filename.concat d "journal") dirs) in
    let count f = List.length (List.filter f snap.Rjournal.replicas)
                  + List.length (List.filter f jour.Rjournal.replicas) in
    let digests = List.map dir_digest dirs in
    let converged =
      match digests with [] -> true | d :: ds -> List.for_all (( = ) d) ds
    in
    {
      dirs;
      healthy = false;
      converged;
      digest = (match digests with d :: _ -> d | [] -> "");
      repaired_replicas = count (fun r -> r.Rjournal.repaired && r.Rjournal.present);
      recreated_replicas = count (fun r -> r.Rjournal.repaired && not r.Rjournal.present);
      frames_quarantined = snap.Rjournal.quarantined + jour.Rjournal.quarantined;
      torn_bytes = snap.Rjournal.torn_bytes + jour.Rjournal.torn_bytes;
      records_healed = snap.Rjournal.healed + jour.Rjournal.healed;
      epoch = max snap.Rjournal.max_epoch jour.Rjournal.max_epoch;
    }
  end

(* -- fleet-level counters ------------------------------------------------------ *)

type counters = {
  homes : int;
  healthy : int;
  repaired_homes : int;  (** homes where read-repair rewrote anything *)
  repaired_replicas : int;
  recreated_replicas : int;
  frames_quarantined : int;
  torn_bytes : int;
  records_healed : int;
  unconverged : int;  (** homes still diverged after repair — must be 0 *)
}

let zero =
  {
    homes = 0;
    healthy = 0;
    repaired_homes = 0;
    repaired_replicas = 0;
    recreated_replicas = 0;
    frames_quarantined = 0;
    torn_bytes = 0;
    records_healed = 0;
    unconverged = 0;
  }

let add c (r : home_report) =
  {
    homes = c.homes + 1;
    healthy = (c.healthy + if r.healthy then 1 else 0);
    repaired_homes =
      (c.repaired_homes
      + if r.repaired_replicas > 0 || r.recreated_replicas > 0 then 1 else 0);
    repaired_replicas = c.repaired_replicas + r.repaired_replicas;
    recreated_replicas = c.recreated_replicas + r.recreated_replicas;
    frames_quarantined = c.frames_quarantined + r.frames_quarantined;
    torn_bytes = c.torn_bytes + r.torn_bytes;
    records_healed = c.records_healed + r.records_healed;
    unconverged = (c.unconverged + if r.converged then 0 else 1);
  }

let counters_text c =
  Printf.sprintf
    "homes=%d healthy=%d repaired-homes=%d repaired-replicas=%d \
     recreated-replicas=%d quarantined-frames=%d torn-bytes=%d healed-records=%d \
     unconverged=%d"
    c.homes c.healthy c.repaired_homes c.repaired_replicas c.recreated_replicas
    c.frames_quarantined c.torn_bytes c.records_healed c.unconverged
