(** Durable per-home state: a write-ahead journal in front of the
    in-memory {!Homeguard_rules.Rule_db} + {!Homeguard_config.Recorder}
    + {!Homeguard_frontend.Install_flow} triple. Every state change is
    journaled (and fsynced) before it applies; {!open_} replays the
    snapshot + journal — truncating torn tails, quarantining corrupt
    records — to reconstruct the exact pre-crash state, including the
    inputs of the compiled mediator. *)

module Rule = Homeguard_rules.Rule
module Detector = Homeguard_detector.Detector
module Recorder = Homeguard_config.Recorder
module Install_flow = Homeguard_frontend.Install_flow
module Policy = Homeguard_handling.Policy
module Mediator = Homeguard_handling.Mediator

type t

(** How the detector matches devices across apps: [Mixed] (default)
    uses offline device-type matching plus the recorder's configured
    value constraints; [Online] requires exact recorded device ids;
    [Offline] ignores recorded configuration entirely. *)
type mode = Mixed | Online | Offline

type recovery_report = {
  snapshot_records : int;
  journal_records : int;
  skipped_events : int;  (** records that recovered but would not decode *)
  torn_bytes : int;  (** truncated torn-tail bytes across both files *)
  quarantined : int;  (** corrupt records moved to sidecar files *)
  changed_apps : string list;
      (** apps installed at or after the first damaged record — the
          incremental re-audit set for {!reaudit_changed} *)
  repaired_replicas : int;
      (** replica files rewritten or recreated by merged recovery *)
  healed_records : int;
      (** records restored to replicas that had lost them *)
  all_replicas_damaged : bool;
      (** some file's every replica was damaged or missing — only then
          can this recovery have lost acknowledged records *)
  epoch : int;  (** the effective ownership epoch granted to this open *)
}

val open_ :
  ?fsync:bool ->
  ?mode:mode ->
  ?window:int ->
  ?configure:(Detector.config -> Detector.config) ->
  ?replicas:string list ->
  ?epoch:int ->
  dir:string ->
  unit ->
  t * recovery_report
(** Open (creating if needed) the home rooted at [dir], recovering
    [dir/snapshot] and [dir/journal] and replaying both. [window] bounds
    the out-of-order buffer for sequenced deliveries. [configure]
    post-processes the detector configuration (e.g. to attach a shared
    verdict cache) before any audit uses it.

    [replicas] adds further replica directories: recovery merges every
    record surviving on at least one replica (read-repair), and every
    append goes to all replicas in order. [epoch] makes this a {e
    fenced} open: the effective epoch is the larger of [epoch] and one
    past the on-disk floor, it is registered with {!Fence} under [dir],
    stamped into every frame, and journaled as an [Epoch] event — after
    which any writer still holding an older epoch for this home gets
    {!Fence.Stale} instead of a durable append. Without [epoch] the home
    adopts the floor found on disk (standalone CLI use). *)

val close : t -> unit

(** {2 Install flow (journaled)} *)

exception No_pending_install

val propose :
  ?budget:Homeguard_solver.Budget.spec ->
  ?cancel:(unit -> bool) ->
  t ->
  Rule.smartapp ->
  Install_flow.report
(** [?budget] replaces the per-solve budget for this proposal only
    (typically a deadline-derived {!Homeguard_solver.Budget.of_deadline}
    spec; escalation is disabled so no retry outlives the request
    deadline); [?cancel] cuts the audit short cooperatively, leaving
    [report.audit.shed > 0]. *)

val decide : t -> Install_flow.decision -> unit
(** [Keep] journals the full rule file before installing; [Reject] and
    [Reconfigure] touch no durable state.
    @raise No_pending_install when nothing was proposed. *)

type install_outcome =
  | Installed of Install_flow.report
  | Updated of Install_flow.report  (** same name, different rules: reinstall *)
  | Unchanged  (** identical rule file already installed *)

val install_app : t -> Rule.smartapp -> install_outcome
(** Idempotent propose + [Keep]; re-running a workload after crash
    recovery converges through this path. *)

val uninstall : t -> string -> bool
(** [false] when no such app is installed. *)

(** {2 Configuration ingestion (journaled)} *)

type delivery =
  | Accepted of Ingest.outcome
  | Malformed of string  (** rejected before journaling *)

val record_uri : t -> string -> delivery
(** An unsequenced configuration URI from a trusted, in-order source. *)

val deliver : t -> seq:int -> string -> delivery
(** A sequenced delivery from the lossy transport: deduplicated and
    reordered through the ingest window; each applied message journals
    a [Config] event carrying its sequence number. *)

val last_seq : t -> int
(** Contiguous ingestion watermark — the ack to return to senders. *)

(** {2 Handling} *)

val set_decision : t -> string -> Policy.decision -> unit
val mediator : ?defer_delay_ms:int -> ?max_deferrals:int -> t -> Mediator.t

(** {2 Poison-app quarantine (journaled)}

    A quarantined app stays installed but is excluded from every batch
    audit and install-time detection, and proposals involving it carry a
    distinct recommendation. Quarantine events are journaled before they
    apply and re-emitted by {!compact}, so quarantine survives restarts
    and compaction. *)

val quarantine : t -> app:string -> reason:string -> unit
(** Idempotent: quarantining an already-quarantined app journals
    nothing. *)

val unquarantine : t -> string -> bool
(** [false] when the app was not quarantined (nothing journaled). *)

val quarantined : t -> (string * string) list
(** [(app, reason)] pairs, in quarantine order. *)

val is_quarantined : t -> string -> bool

(** {2 Inspection} *)

val installed_apps : t -> Rule.smartapp list
val flow : t -> Install_flow.t
val recorder : t -> Recorder.t
val config : t -> Detector.config
val journal_size : t -> int
val snapshot_size : t -> int
val dir : t -> string

val replica_dirs : t -> string list
(** All replica directories, primary first. *)

val epoch : t -> int
(** The effective ownership epoch this open stamps on appends. *)

val state_text : t -> string
(** Canonical rendering of every piece of durable state — installed rule
    files, kept threats, decisions, configs, quarantine, ingestion
    watermark — without running any audit. Two recoveries of the same
    journal must produce byte-identical [state_text] (the fleet's
    replay-determinism invariant); unlike {!audit_text} it costs no
    detection pass, so it is checkable per-home at fleet scale. *)

val state_digest : t -> string
(** Hex digest of {!state_text}. *)

val surfaced_corruption : ?replicas:string list -> dir:string -> unit -> int
(** Count of [kind=corrupt] regions in the quarantine sidecars under
    [dir] (and any [replicas]) — durable, restart-proof evidence that a
    past recovery quarantined corrupted records (i.e. possibly
    acknowledged state was lost {e and surfaced}). Torn-tail regions
    don't count: a torn append raises before it is acknowledged. *)

(** {2 Maintenance} *)

val compact : t -> unit
(** Fold the history into a minimal snapshot (configs, installed apps,
    explicit decisions, ingestion watermark) and truncate the journal;
    both replacements are atomic renames and a crash between them is
    absorbed by idempotent replay. All replicas are rewritten. *)

val scrub : t -> Scrub.home_report
(** Anti-entropy pass over this (live) home's replica set: park the
    journal writers, CRC-scan and read-repair every replica via
    {!Scrub.scrub_home}, reopen. A healthy home is untouched. *)

(** {2 Re-audit} *)

val audit : ?jobs:int -> ?cancel:(unit -> bool) -> t -> Detector.audit_result
(** Full re-audit of the installed (non-quarantined) apps. [?cancel]
    cuts the batched run short; skipped pairs are counted in
    [audit_result.shed], never reported threat-free. *)

val audit_text : t -> string
(** Canonical rendering of a full re-audit plus the durable state
    feeding the mediator; recovery's acceptance invariant is that this
    is byte-identical before a crash and after replay. *)

val reaudit_changed :
  ?jobs:int -> t -> recovery_report -> (string * Detector.audit_result) list
(** Incremental install-time re-audit of each recovered-but-suspect app
    against the rest of the home. *)
