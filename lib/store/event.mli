(** Home-state events — the journal's payloads, JSON-encoded, with
    idempotent replay semantics. *)

module Rule = Homeguard_rules.Rule
module Policy = Homeguard_handling.Policy

type t =
  | Install of Rule.smartapp
  | Uninstall of string
  | Config of { seq : int option; uri : string }
  | Decision of { threat_id : string; decision : Policy.decision }
  | Watermark of int
  | Quarantine of { app : string; reason : string }
      (** poison-app quarantine: exclude the app from batch audits until
          explicitly cleared (survives restarts through replay) *)
  | Unquarantine of string
  | Epoch of int
      (** ownership handover: the supervisor granted this epoch to the
          home's new owner; replay keeps the highest seen as the
          fencing floor *)

exception Decode_error of string

val decision_to_json : Policy.decision -> Homeguard_rules.Json.t
val decision_of_json : Homeguard_rules.Json.t -> Policy.decision

val to_json : t -> Homeguard_rules.Json.t
val of_json : Homeguard_rules.Json.t -> t
val to_string : t -> string
val of_string : string -> t
val describe : t -> string
