(** Anti-entropy scrub over a home's replica set: CRC-scan every
    replica, compare record-stream digests, read-repair anything
    missing, damaged or diverged from the merged quorum stream. *)

val files_of_dir : string -> string list
(** The journal files of one replica directory:
    [[dir/snapshot; dir/journal]]. *)

val dir_digest : string -> string
(** Record-stream digest of one replica directory (valid snapshot
    records then valid journal records). Replay determinism makes
    equal digests imply equal {!Home.state_digest}s. *)

type home_report = {
  dirs : string list;
  healthy : bool;  (** nothing to do: present, undamaged, converged *)
  converged : bool;  (** one digest across all replicas after the pass *)
  digest : string;
  repaired_replicas : int;
  recreated_replicas : int;  (** replica files that were missing entirely *)
  frames_quarantined : int;
  torn_bytes : int;
  records_healed : int;
  epoch : int;  (** fencing floor across the replica set *)
}

val scrub_home : ?fsync:bool -> string list -> home_report
(** Scrub one home given its replica directories. Callers must ensure
    no live writer holds the journals open (a live {!Home} scrubs
    itself via {!Home.scrub}). *)

type counters = {
  homes : int;
  healthy : int;
  repaired_homes : int;
  repaired_replicas : int;
  recreated_replicas : int;
  frames_quarantined : int;
  torn_bytes : int;
  records_healed : int;
  unconverged : int;  (** homes still diverged after repair — must be 0 *)
}

val zero : counters
val add : counters -> home_report -> counters
val counters_text : counters -> string
