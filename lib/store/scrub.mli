(** Anti-entropy scrub over a replica set of journal-framed files:
    CRC-scan every replica, compare record-stream digests, and repair
    anything missing, damaged or diverged at {e frame granularity} —
    only the damaged frames are rewritten, so repair I/O is bounded by
    the damage ([repair_bytes]), not the file size. Serves both home
    journals (default [~files]) and the verdict cache's
    [cache.snapshot]/[cache.journal] surface. *)

val files_of_dir : string -> string list
(** The journal files of one replica directory:
    [[dir/snapshot; dir/journal]]. *)

val dir_digest : ?files:string list -> string -> string
(** Record-stream digest of one replica directory (valid records of
    every file in [~files] order — default [snapshot] then [journal]).
    Replay determinism makes equal digests imply equal
    {!Home.state_digest}s. *)

type home_report = {
  dirs : string list;
  healthy : bool;  (** nothing to do: present, undamaged, converged *)
  converged : bool;  (** one digest across all replicas after the pass *)
  digest : string;
  repaired_replicas : int;  (** replica files patched by read-repair *)
  recreated_replicas : int;  (** replica files that were missing entirely *)
  frames_quarantined : int;
  torn_bytes : int;
  records_healed : int;
  patched_frames : int;  (** frames overlapping the patched byte ranges *)
  repair_bytes : int;  (** bytes written by repair — bounded by damage *)
  epoch : int;  (** fencing floor across the replica set *)
}

val scrub_home : ?fsync:bool -> ?files:string list -> string list -> home_report
(** Scrub one surface given its replica directories. [~files] names the
    journal-framed files within each directory (default
    [["snapshot"; "journal"]]; the verdict cache passes
    [["cache.snapshot"; "cache.journal"]]). Callers must ensure no live
    writer holds the journals open (a live {!Home} scrubs itself via
    {!Home.scrub}). *)

type counters = {
  homes : int;
  healthy : int;
  repaired_homes : int;
  repaired_replicas : int;
  recreated_replicas : int;
  frames_quarantined : int;
  torn_bytes : int;
  records_healed : int;
  patched_frames : int;
  repair_bytes : int;
  unconverged : int;  (** homes still diverged after repair — must be 0 *)
}

val zero : counters
val add : counters -> home_report -> counters
val counters_text : counters -> string
