(** Idempotent, sequenced message ingestion (paper §VII-A transports).

    The SMS/HTTP transport loses, duplicates and reorders deliveries,
    and {!Homeguard_config.Messaging.send_with_retry} deliberately
    redelivers. The receiver side therefore tracks a per-home sequence
    number: duplicates (seq at or below the contiguous watermark, or
    already buffered) are dropped, bounded out-of-order arrivals are
    buffered until the gap fills, and everything applied is acked by the
    highest {e contiguous} sequence number — so a sender may retry any
    unacked message blindly and the receiver's state is unchanged by
    redelivery or reordering. *)

module Messaging = Homeguard_config.Messaging

type outcome =
  | Applied of int  (** messages applied now — the arrival plus any buffered run it freed *)
  | Duplicate  (** already applied or already buffered; dropped *)
  | Buffered  (** out of order, held until the gap fills *)
  | Overflow  (** beyond the reorder window; the sender must retry later *)

let outcome_to_string = function
  | Applied n -> Printf.sprintf "applied(%d)" n
  | Duplicate -> "duplicate"
  | Buffered -> "buffered"
  | Overflow -> "overflow"

type t = {
  window : int;
  apply : seq:int -> string -> unit;
  mutable last : int;  (** highest contiguously applied sequence number *)
  buffer : (int, string) Hashtbl.t;  (** last < seq <= last + window *)
}

let create ?(window = 64) ?(last = 0) apply =
  if window < 1 then invalid_arg "Ingest.create: window must be >= 1";
  { window; apply; last; buffer = Hashtbl.create 16 }

let ack t = t.last
let buffered t = Hashtbl.length t.buffer

(** Raise the watermark without applying (recovery replay: the journal
    already holds the applied messages). Buffered entries at or below
    the new watermark are dropped. *)
let force_last t n =
  if n > t.last then begin
    t.last <- n;
    Hashtbl.iter (fun s _ -> if s <= n then Hashtbl.remove t.buffer s) (Hashtbl.copy t.buffer)
  end

let receive t ~seq payload =
  if seq <= t.last || Hashtbl.mem t.buffer seq then Duplicate
  else if seq > t.last + t.window then Overflow
  else if seq = t.last + 1 then begin
    t.apply ~seq payload;
    t.last <- seq;
    let applied = ref 1 in
    let rec drain () =
      match Hashtbl.find_opt t.buffer (t.last + 1) with
      | Some p ->
        Hashtbl.remove t.buffer (t.last + 1);
        t.apply ~seq:(t.last + 1) p;
        t.last <- t.last + 1;
        incr applied;
        drain ()
      | None -> ()
    in
    drain ();
    Applied !applied
  end
  else begin
    Hashtbl.add t.buffer seq payload;
    Buffered
  end

(* -- the wire envelope and the sending side ---------------------------------- *)

let envelope_magic = "hgm1"

let encode ~home ~seq payload = Printf.sprintf "%s|%s|%d|%s" envelope_magic home seq payload

let decode s =
  match String.split_on_char '|' s with
  | m :: home :: seq :: rest when m = envelope_magic -> (
    match int_of_string_opt seq with
    | Some seq when seq > 0 -> Some (home, seq, String.concat "|" rest)
    | _ -> None)
  | _ -> None

type sender = {
  messaging : Messaging.t;
  transport : Messaging.transport;
  home : string;
  mutable next_seq : int;
}

let sender ?(first_seq = 1) messaging transport ~home =
  { messaging; transport; home; next_seq = first_seq }

(** Assign the next sequence number and deliver with retries; the
    receiver's dedup makes the redeliveries harmless. Returns the
    sequence number used and the transport outcome. *)
let post ?max_attempts ?backoff_ms ?max_backoff_ms s payload =
  let seq = s.next_seq in
  s.next_seq <- seq + 1;
  let wire = encode ~home:s.home ~seq payload in
  (seq, Messaging.send_with_retry ?max_attempts ?backoff_ms ?max_backoff_ms s.messaging s.transport wire)
