(** Idempotent, sequenced message ingestion over the lossy config
    transport: per-home sequence numbers, duplicate suppression, a
    bounded reorder buffer and contiguous acks. *)

module Messaging = Homeguard_config.Messaging

type outcome = Applied of int | Duplicate | Buffered | Overflow

val outcome_to_string : outcome -> string

type t

val create : ?window:int -> ?last:int -> (seq:int -> string -> unit) -> t
(** [apply ~seq payload] runs for each message as it becomes contiguous.
    [window] (default 64) bounds the out-of-order buffer; [last] seeds
    the watermark (recovery). *)

val receive : t -> seq:int -> string -> outcome
val ack : t -> int
(** Highest contiguously applied sequence number. *)

val buffered : t -> int
val force_last : t -> int -> unit
(** Raise the watermark without applying (journal replay). *)

(** {2 Wire envelope and sender} *)

val encode : home:string -> seq:int -> string -> string
val decode : string -> (string * int * string) option
(** [Some (home, seq, payload)] for a well-formed envelope. *)

type sender

val sender : ?first_seq:int -> Messaging.t -> Messaging.transport -> home:string -> sender

val post :
  ?max_attempts:int ->
  ?backoff_ms:float ->
  ?max_backoff_ms:float ->
  sender ->
  string ->
  int * (float * int) option
(** Sequence and deliver one payload with retries; returns the sequence
    number and the transport's [(total_ms, attempts)] outcome. *)
