(** Replicated journal: R copies of one append-only journal under
    distinct replica roots, written in order, recovered by merging.

    Appends go to every replica in sequence through the normal
    {!Journal} framing (CRC, epoch stamp, storage-fault hooks with
    replica-distinct keys, per-replica fsync points), after a single
    {!Fence.check} — the epoch fence gates the logical append, not each
    copy. A crash between replica writes leaves one replica a record
    ahead of the others; recovery absorbs that the same way it absorbs
    damage.

    Recovery scans every replica and {e merges}: because all replicas
    receive the same append sequence, each replica's valid records form
    a subsequence of the true history, so the shortest common
    supersequence (computed pairwise via LCS and folded over the
    replicas) restores every record that survived on at least one
    replica — the "no acked record lost while one replica survives"
    guarantee. Damage on each replica is quarantined into that
    replica's own sidecar, and every replica is atomically rewritten
    with the merged records (read-repair), re-stamped at the highest
    epoch seen so the fencing floor survives. *)

module Fault = Homeguard_solver.Fault

(* -- merged record streams ----------------------------------------------------- *)

(* Shortest common supersequence of two lists, via the LCS backtrack:
   both are subsequences of one true history, so their SCS is the
   minimal stream containing every record either replica kept, in a
   consistent order. *)
let scs (a : string list) (b : string list) =
  match (a, b) with
  | [], ys -> ys
  | xs, [] -> xs
  | _ ->
    let xa = Array.of_list a and xb = Array.of_list b in
    let n = Array.length xa and m = Array.length xb in
    let lcs = Array.make_matrix (n + 1) (m + 1) 0 in
    for i = n - 1 downto 0 do
      for j = m - 1 downto 0 do
        lcs.(i).(j) <-
          (if xa.(i) = xb.(j) then 1 + lcs.(i + 1).(j + 1)
           else max lcs.(i + 1).(j) lcs.(i).(j + 1))
      done
    done;
    let out = ref [] in
    let i = ref 0 and j = ref 0 in
    while !i < n && !j < m do
      if xa.(!i) = xb.(!j) then begin
        out := xa.(!i) :: !out;
        incr i;
        incr j
      end
      else if lcs.(!i + 1).(!j) >= lcs.(!i).(!j + 1) then begin
        out := xa.(!i) :: !out;
        incr i
      end
      else begin
        out := xb.(!j) :: !out;
        incr j
      end
    done;
    while !i < n do
      out := xa.(!i) :: !out;
      incr i
    done;
    while !j < m do
      out := xb.(!j) :: !out;
      incr j
    done;
    List.rev !out

let merge_records = function
  | [] -> []
  | first :: rest -> List.fold_left scs first rest

(* -- appending ----------------------------------------------------------------- *)

type t = {
  writers : Journal.t list;  (** one per replica, in replica order *)
  fence_key : string option;
  epoch : int;
}

(* Replica-distinct storage-fault keys: the last three path components
   ("r1/h_kitchen/journal") when the replica layout provides them, so a
   deterministic fault plan never tears the same logical append on
   every replica at once. A single-replica journal keeps the bare
   basename, preserving the established fault-matrix keys. *)
let fault_key_of path =
  let base = Filename.basename path in
  let p1 = Filename.dirname path in
  let p2 = Filename.dirname p1 in
  Printf.sprintf "%s/%s/%s" (Filename.basename p2) (Filename.basename p1) base

let open_append ?(fsync = true) ?(epoch = 0) ?fence_key paths =
  match paths with
  | [] -> invalid_arg "Rjournal.open_append: no replica paths"
  | [ path ] ->
    {
      writers = [ Journal.open_append ~fsync ~epoch path ];
      fence_key;
      epoch;
    }
  | paths ->
    {
      writers =
        List.map
          (fun path ->
            Journal.open_append ~fsync ~epoch ~fault_key:(fault_key_of path) path)
          paths;
      fence_key;
      epoch;
    }

let epoch t = t.epoch

let append t payload =
  (match t.fence_key with
  | Some key -> Fence.check ~key ~epoch:t.epoch
  | None -> ());
  List.iter (fun j -> Journal.append j payload) t.writers

let sync t = List.iter Journal.sync t.writers
let close t = List.iter Journal.close t.writers

let rec mkdirs dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdirs (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(** Atomically replace every replica with a journal holding exactly
    [payloads], creating missing replica directories. *)
let write_atomic_all ?(fsync = true) ?(epoch = 0) paths payloads =
  List.iter
    (fun path ->
      mkdirs (Filename.dirname path);
      Journal.write_atomic ~fsync ~epoch path payloads)
    paths

(* -- recovery ------------------------------------------------------------------ *)

type replica_report = {
  path : string;
  present : bool;  (** the file existed before recovery *)
  records : int;  (** valid records this replica held *)
  torn_bytes : int;
  quarantined : int;
  damage_index : int option;
  repaired : bool;  (** rewritten to the merged records *)
}

type recovery = {
  recovered : string list;  (** the merged record stream *)
  replicas : replica_report list;
  torn_bytes : int;
  quarantined : int;
  damage_index : int option;
      (** most conservative (lowest) first-damage index across replicas *)
  max_epoch : int;
  diverged : bool;  (** replicas disagreed before repair *)
  healed : int;
      (** records restored to at least one replica that had lost them *)
  all_replicas_damaged : bool;
      (** every replica surfaced damage: merged recovery may still have
          lost acknowledged records (the honest-loss case) *)
}

let damage_bytes = function
  | Journal.Torn_tail { raw; _ } | Journal.Corrupt { raw; _ } -> String.length raw

(** Scan all replicas of one journal, merge the surviving records,
    quarantine damage into each replica's own sidecar and rewrite every
    stale/damaged/missing replica with the merged stream. *)
let recover ?(fsync = true) paths =
  if paths = [] then invalid_arg "Rjournal.recover: no replica paths";
  let scans = List.map (fun p -> (p, Sys.file_exists p, Journal.scan p)) paths in
  let merged = merge_records (List.map (fun (_, _, sc) -> sc.Journal.records) scans) in
  let max_epoch =
    List.fold_left (fun a (_, _, (sc : Journal.scan)) -> max a sc.Journal.max_epoch) 0 scans
  in
  let replicas =
    List.map
      (fun (path, present, sc) ->
        let torn, corrupt =
          List.partition
            (function Journal.Torn_tail _ -> true | Journal.Corrupt _ -> false)
            sc.Journal.damage
        in
        let needs_rewrite =
          (* an absent file with nothing to hold is a fresh open, not a
             lost replica — creating it would make every first open look
             like a repair *)
          if present then sc.Journal.damage <> [] || sc.Journal.records <> merged
          else merged <> []
        in
        if sc.Journal.damage <> [] then
          Journal.quarantine_damage path sc.Journal.damage;
        if needs_rewrite then begin
          mkdirs (Filename.dirname path);
          Journal.write_atomic ~fsync ~epoch:max_epoch path merged
        end;
        {
          path;
          present;
          records = List.length sc.Journal.records;
          torn_bytes = List.fold_left (fun a d -> a + damage_bytes d) 0 torn;
          quarantined = List.length corrupt;
          damage_index = sc.Journal.first_damage_index;
          repaired = needs_rewrite;
        })
      scans
  in
  let hurt (r : replica_report) = r.torn_bytes > 0 || r.quarantined > 0 in
  let merged_len = List.length merged in
  {
    recovered = merged;
    replicas;
    torn_bytes = List.fold_left (fun a (r : replica_report) -> a + r.torn_bytes) 0 replicas;
    quarantined = List.fold_left (fun a (r : replica_report) -> a + r.quarantined) 0 replicas;
    damage_index =
      List.fold_left
        (fun acc (r : replica_report) ->
          match (acc, r.damage_index) with
          | None, d | d, None -> d
          | Some a, Some b -> Some (min a b))
        None replicas;
    max_epoch;
    diverged =
      List.exists
        (fun (_, _, sc) -> sc.Journal.records <> merged)
        scans;
    healed =
      List.fold_left (fun a r -> a + (merged_len - r.records)) 0 replicas;
    all_replicas_damaged =
      (* a missing replica contributed nothing to the merge, so damage
         everywhere-else plus a destroyed copy is still honest loss; a
         merely-missing set with no damage anywhere is a fresh open *)
      List.exists hurt replicas
      && List.for_all (fun (r : replica_report) -> hurt r || not r.present) replicas;
  }
