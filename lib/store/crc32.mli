(** CRC-32 (IEEE 802.3) used to frame journal records. *)

val string : string -> int
(** CRC-32 of the whole string, in [0, 2^32). *)
