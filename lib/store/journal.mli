(** Append-only write-ahead journal with CRC-framed, epoch-stampable
    records, fsync-point appends, torn-tail truncation and corruption
    quarantine. *)

val frame : string -> string
(** The legacy on-disk framing of one payload:
    ["HGJ1 <len:8hex> <crc32:8hex>\n<payload>\n"]. *)

val frame_epoch : epoch:int -> string -> string
(** Epoch-stamped framing:
    ["HGJ2 <len:8hex> <crc32:8hex> <epoch:8hex>\n<payload>\n"].
    Epoch [0] renders in the legacy [HGJ1] form. *)

val header_len : int
(** Bytes before the payload in a legacy ([HGJ1]) frame. *)

val header_len2 : int
(** Bytes before the payload in an epoch-stamped ([HGJ2]) frame. *)

(** {2 Appending} *)

type t

val open_append : ?fsync:bool -> ?epoch:int -> ?fault_key:string -> string -> t
(** Open (creating if missing) for appends. [~fsync] (default [true])
    makes every {!append} an fsync point. [~epoch] (default [0]) stamps
    every appended frame with the writer's ownership epoch.
    [~fault_key] (default: the file's basename) distinguishes this
    writer in storage-fault keys, so faults against one replica do not
    correlate with the same append on another. *)

val append : t -> string -> unit
(** Frame and append one payload; returns after flush (+ fsync). Passes
    through the {!Homeguard_solver.Fault} storage hooks, so it may raise
    {!Homeguard_solver.Fault.Crashed} under an armed fault plan. *)

val sync : t -> unit
val close : t -> unit

val write_atomic : ?fsync:bool -> ?epoch:int -> string -> string list -> unit
(** Replace the file with a journal holding exactly these payloads
    (stamped with [epoch]), via temp file + atomic rename + parent
    directory fsync — without the dirfd fsync a power failure after the
    rename could resurrect the replaced contents. Used by compaction
    and recovery. *)

(** {2 Scanning and recovery} *)

type damage =
  | Torn_tail of { offset : int; raw : string }
      (** an incomplete final frame: crash mid-write *)
  | Corrupt of { offset : int; raw : string }
      (** a fully framed record whose CRC fails, or an unframeable
          region skipped by resynchronization *)

type scan = {
  records : string list;  (** valid payloads, in order *)
  frames : string list;
      (** the exact on-disk frame bytes of each valid record, in
          [records] order — what frame-level repair patches with *)
  epochs : int list;  (** the epoch stamped on each valid frame *)
  damage : damage list;
  first_damage_index : int option;
      (** number of valid records preceding the first damaged region *)
  max_epoch : int;  (** highest epoch stamped on any valid frame *)
  epoch_regressions : int;
      (** valid frames stamped below the running epoch maximum — the
          durable fingerprint of an accepted stale-epoch append; [0] on
          any journal written only by properly fenced owners *)
}

val scan_string : string -> scan
val scan : string -> scan
(** Read-only; a missing file scans as empty. *)

type recovery = {
  recovered : string list;
  torn_bytes : int;  (** bytes truncated from the torn tail *)
  quarantined : int;  (** corrupt regions moved to the sidecar *)
  damage_index : int option;
  rewritten : bool;  (** the journal was rewritten without the damage *)
  max_epoch : int;  (** fencing floor recovered from the frames *)
}

val quarantine_damage : ?quarantine:string -> string -> damage list -> unit
(** Append damaged regions to [path]'s quarantine sidecar (default
    [path ^ ".quarantine"]), one readable header per region. *)

val recover : ?quarantine:string -> ?fsync:bool -> string -> recovery
(** Scan; when damaged, append each damaged region to the quarantine
    sidecar (default [path ^ ".quarantine"]) and atomically rewrite the
    journal with only the valid records, re-stamped at the scan's
    highest epoch so the fencing floor survives the rewrite. *)
