(** Append-only write-ahead journal with CRC-framed records, fsync-point
    appends, torn-tail truncation and corruption quarantine. *)

val frame : string -> string
(** The on-disk framing of one payload:
    ["HGJ1 <len:8hex> <crc32:8hex>\n<payload>\n"]. *)

val header_len : int
(** Bytes before the payload in a frame. *)

(** {2 Appending} *)

type t

val open_append : ?fsync:bool -> string -> t
(** Open (creating if missing) for appends. [~fsync] (default [true])
    makes every {!append} an fsync point. *)

val append : t -> string -> unit
(** Frame and append one payload; returns after flush (+ fsync). Passes
    through the {!Homeguard_solver.Fault} storage hooks, so it may raise
    {!Homeguard_solver.Fault.Crashed} under an armed fault plan. *)

val sync : t -> unit
val close : t -> unit

val write_atomic : ?fsync:bool -> string -> string list -> unit
(** Replace the file with a journal holding exactly these payloads, via
    temp file + atomic rename. Used by compaction and recovery. *)

(** {2 Scanning and recovery} *)

type damage =
  | Torn_tail of { offset : int; raw : string }
      (** an incomplete final frame: crash mid-write *)
  | Corrupt of { offset : int; raw : string }
      (** a fully framed record whose CRC fails, or an unframeable
          region skipped by resynchronization *)

type scan = {
  records : string list;  (** valid payloads, in order *)
  damage : damage list;
  first_damage_index : int option;
      (** number of valid records preceding the first damaged region *)
}

val scan_string : string -> scan
val scan : string -> scan
(** Read-only; a missing file scans as empty. *)

type recovery = {
  recovered : string list;
  torn_bytes : int;  (** bytes truncated from the torn tail *)
  quarantined : int;  (** corrupt regions moved to the sidecar *)
  damage_index : int option;
  rewritten : bool;  (** the journal was rewritten without the damage *)
}

val recover : ?quarantine:string -> ?fsync:bool -> string -> recovery
(** Scan; when damaged, append each damaged region to the quarantine
    sidecar (default [path ^ ".quarantine"]) and atomically rewrite the
    journal with only the valid records. *)
