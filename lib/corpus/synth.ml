(** Seeded synthetic-home generator.

    Fleet chaos campaigns and the F1 bench need hundreds of distinct
    homes, not the one fixed demo corpus: each synthetic home draws a
    heavy-tailed subset of the benign device-controlling pool
    ({!Corpus.audit_apps}) and a set of install-time configuration
    bindings in the phone-app URI format (§VII-A) — enough variety that
    shard placement, journal recovery and admission bounds are
    exercised over genuinely different workloads, while the same seed
    reproduces the same fleet byte-for-byte. *)

type home = {
  id : string;
  apps : App_entry.t list;  (** distinct; install order *)
  configs : string list;
      (** configuration URIs ([http://my.com/appname:...]) in delivery
          order *)
}

let hex_digits = "0123456789abcdef"
let hex_id st = String.init 32 (fun _ -> hex_digits.[Random.State.int st 16])

(* Heavy-tailed app count: geometric with continue-probability 2/3
   (mean 3), capped by the pool. A few homes are much bigger than the
   median — those are the ones that find quadratic-audit cliffs. *)
let app_count st ~max_apps =
  let rec go n = if n < max_apps && Random.State.int st 3 > 0 then go (n + 1) else n in
  go 1

(* Fisher–Yates over a copy of the pool; take the prefix. *)
let sample st pool n =
  let arr = Array.of_list pool in
  let len = Array.length arr in
  for i = len - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list (Array.sub arr 0 (min n len))

let config_uri st (app : App_entry.t) =
  let buf = Buffer.create 128 in
  Buffer.add_string buf ("http://my.com/appname:" ^ app.App_entry.name ^ "/");
  let devices = 1 + Random.State.int st 2 in
  for d = 1 to devices do
    Buffer.add_string buf (Printf.sprintf "dev%d:%s/" d (hex_id st))
  done;
  let values = Random.State.int st 3 in
  for v = 1 to values do
    Buffer.add_string buf (Printf.sprintf "threshold%d:%d/" v (Random.State.int st 100))
  done;
  Buffer.contents buf

let generate ?(max_apps = 8) ~pool ~seed ~n_homes () =
  if n_homes < 0 then invalid_arg "Synth.generate: n_homes < 0";
  if pool = [] then invalid_arg "Synth.generate: empty app pool";
  let st = Random.State.make [| 0x5eed; seed |] in
  List.init n_homes (fun i ->
      let id = Printf.sprintf "h%04d" i in
      let apps = sample st pool (app_count st ~max_apps) in
      let configs =
        List.filter_map
          (fun app ->
            (* two homes in three configure a given app *)
            if Random.State.int st 3 < 2 then Some (config_uri st app) else None)
          apps
      in
      { id; apps; configs })
