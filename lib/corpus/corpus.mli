(** The full evaluation corpus, partitioned as in paper §VIII-B. *)

val benign : App_entry.t list
val web_services : App_entry.t list
val malicious : App_entry.t list
val all : App_entry.t list

val rule_defining : App_entry.t list
(** Apps that define automation rules (the paper's 146-analogue). *)

val audit_apps : App_entry.t list
(** Benign device-controlling apps: the pairwise-audit pool (the
    paper's 90-analogue). *)

val find : string -> App_entry.t option
val stats : unit -> string

val synth : seed:int -> n_homes:int -> Synth.home list
(** Seeded synthetic homes over {!audit_apps}; see {!Synth.generate}. *)
