(** The full evaluation corpus.

    Mirrors the paper's §VIII-B corpus construction: rule-defining apps
    plus web-services apps (which define no rules) plus the Table III
    malicious apps. {!audit_apps} is the 90-app-style subset: benign,
    rule-defining, device-controlling apps used for pairwise CAI
    detection; {!rule_defining} is the 146-app-style extraction set. *)

let benign : App_entry.t list =
  Apps_demo.all @ Apps_lighting.all @ Apps_climate.all @ Apps_security.all
  @ Apps_energy.all @ Apps_modes.all @ Apps_safety.all @ Apps_convenience.all
  @ Apps_notification.all @ Apps_misc.all @ Apps_extra.all

let web_services : App_entry.t list = Apps_webservice.all

let malicious : App_entry.t list = Apps_malicious.all

let all : App_entry.t list = benign @ web_services @ malicious

(** Apps that define automation rules (web-services apps removed), the
    analogue of the paper's 146. *)
let rule_defining : App_entry.t list = benign

(** Benign, device-controlling apps: the pairwise-audit pool (the
    analogue of the paper's 90). *)
let audit_apps : App_entry.t list =
  List.filter (fun (e : App_entry.t) -> e.App_entry.controls_devices) benign

let find name = List.find_opt (fun (e : App_entry.t) -> e.App_entry.name = name) all

let stats () =
  Printf.sprintf
    "corpus: %d apps total (%d benign rule-defining, %d web-service, %d malicious); %d in audit pool"
    (List.length all) (List.length benign) (List.length web_services)
    (List.length malicious) (List.length audit_apps)

let synth ~seed ~n_homes = Synth.generate ~pool:audit_apps ~seed ~n_homes ()
