(** Seeded synthetic-home generator for fleet-scale benches and chaos
    campaigns: heavy-tailed app subsets of the audit pool plus
    configuration-URI bindings, fully determined by the seed. *)

type home = {
  id : string;
  apps : App_entry.t list;  (** distinct; install order *)
  configs : string list;
      (** configuration URIs ([http://my.com/appname:...]) in delivery
          order *)
}

val generate :
  ?max_apps:int -> pool:App_entry.t list -> seed:int -> n_homes:int -> unit -> home list
(** [generate ~pool ~seed ~n_homes ()] is deterministic in [seed]: the
    same seed yields byte-identical homes. [Corpus.synth] applies the
    standard pool ({!Corpus.audit_apps}); [max_apps] (default 8) caps
    the heavy-tailed per-home app count.
    @raise Invalid_argument on a negative count or an empty pool. *)
