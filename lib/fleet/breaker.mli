(** Per-shard circuit breaker: Closed / Open / Half_open over
    consecutive shard-level failures, with honest retry hints while
    open and bounded probing before closing again. *)

type state = Closed | Open | Half_open
type t

val create :
  ?failure_threshold:int ->
  ?reset_timeout_ms:float ->
  ?half_open_probes:int ->
  Homeguard_serve.Deadline.clock ->
  t
(** Defaults: trip after 3 consecutive failures, probe after 1000 ms,
    close after 2 probe successes.
    @raise Invalid_argument on non-positive parameters. *)

val state : t -> state

val allow : t -> [ `Admit | `Probe | `Reject of float ]
(** Admission decision for one request; [`Reject ms] is the time until
    the next probe window. An [Open] breaker whose reset timeout has
    elapsed transitions to [Half_open] here and admits the probe. *)

val note_success : t -> unit
(** Resets the failure streak; in [Half_open], counts toward closing. *)

val note_failure : t -> unit
(** One shard-level failure. Trips at the threshold; a [Half_open]
    probe failure re-opens immediately and restarts the reset clock. *)

val begin_probing : t -> unit
(** Move a non-[Closed] breaker straight to [Half_open] — used after a
    supervised restart, whose backoff already served as the shed
    window. *)

val retry_after_ms : t -> float
(** Remaining shed window (0 unless [Open]). *)

val trips : t -> int
(** Times the breaker has opened (monotonic). *)

val describe : t -> string
