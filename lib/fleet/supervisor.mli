(** The fleet supervisor: consistent-hash home placement over N shard
    workers, heartbeat health checks, per-shard circuit breakers,
    supervised journal-replay restarts under a bounded budget with
    jittered exponential backoff, and rebalance-on-permanent-failure.
    Deterministic under an injectable clock and seed. *)

module Home = Homeguard_store.Home
module Broker = Homeguard_serve.Broker
module Deadline = Homeguard_serve.Deadline
module Shed = Homeguard_serve.Shed
module Vcache = Homeguard_vcache.Vcache

type config = {
  shards : int;
  replicas : int;
      (** journal replicas per home (>= 1); replica [k] lives under the
          distinct replica root [dir/r<k>] *)
  heartbeat_interval_ms : float;
  miss_threshold : int;  (** whole missed intervals before a restart *)
  failure_threshold : int;  (** consecutive failures tripping the breaker *)
  reset_timeout_ms : float;  (** breaker Open → Half_open delay *)
  half_open_probes : int;
  restart_budget : int;  (** restart attempts per shard before Dead *)
  backoff_base_ms : float;
  backoff_cap_ms : float;
  seed : int;  (** jitter determinism *)
  fsync : bool;
  mode : Home.mode;
  clock : Deadline.clock;
  broker : Broker.config;  (** per-shard; its clock is overridden by [clock] *)
  vcache : bool;
      (** share one persistent verdict cache ([dir/vcache]) across all
          shards' detectors; warm across restarts *)
}

val default_config : config
(** 4 shards, 2 replicas per home journal, 1000 ms heartbeats (restart
    after 3 missed), breaker trips after 3 failures / probes after 1000
    ms / closes after 2 probe successes, 5 restart attempts per shard,
    250–8000 ms decorrelated-jitter backoff, fsync on, wall clock. *)

type t

val create : ?config:config -> dir:string -> homes:string list -> unit -> t
(** Open the fleet rooted at [dir]: place every home on the ring,
    open each shard's homes (journal recovery), start all breakers
    closed and all heartbeats fresh.
    @raise Invalid_argument on duplicate home ids or bad config. *)

val tick : t -> unit
(** One supervision pass: restart shards whose heartbeat failed
    ({!Health.Failed}) and bring shards whose backoff elapsed back up
    via journal replay. A restart that crashes mid-recovery is charged
    to the budget and rescheduled; a shard out of budget goes [Dead]
    and its homes rebalance to the survivors. *)

(** {2 Request routing} *)

type 'a reply =
  | Done of { shard : int; value : 'a }
  | Unavailable of { shard : int; retry_after_ms : int; reason : string }
      (** breaker open, restart pending, shard dead, or the shard's
          ownership epoch went stale; the hint is the max of the
          breaker's shed window and the restart schedule *)
  | Crashed of { shard : int; retry_after_ms : int; error : string }
      (** the request crashed its shard; a restart is scheduled and the
          hint points at it, same contract as [Unavailable] *)

val to_outcome : 'a reply -> 'a Shed.outcome
(** [Unavailable]/[Crashed] become [Degraded] with
    [Shed.Shard_unavailable] naming the shard — never a clean bill. *)

val run : t -> home:string -> (Shard.t -> 'a) -> 'a reply
(** Route one unit of work to [home]'s owner. {!Fault.Crashed} escaping
    [f] counts as a shard crash: close, schedule restart, honest
    [Crashed] reply.
    @raise Invalid_argument on an unknown home. *)

val install :
  t ->
  home:string ->
  ?deadline_ms:float ->
  name:string ->
  source:string ->
  unit ->
  Broker.install_reply reply

val deliver : t -> home:string -> seq:int -> string -> Home.delivery reply
val submit_audit : t -> home:string -> ?deadline_ms:float -> unit -> (int, int) result reply
val drain : t -> shard:int -> Broker.audit_outcome list reply

(** {2 Health and chaos hooks} *)

val kill : t -> int -> bool
(** Inject a crash; [false] when the shard is not running. *)

val wedge : t -> int -> Shard.t option
(** Wedge a running shard: schedule its replacement exactly as {!kill}
    does, but do {e not} close the worker — the returned handle keeps
    its journal writers open, modelling a stalled process that revives
    after its homes were reassigned. Every append the zombie attempts
    raises {!Homeguard_store.Fence.Stale}; its verdict-cache handle is
    likewise superseded the moment the replacement attaches, so its
    cache writes are refused at the fence. Chaos' split-brain window
    drives this handle directly. [None] when the shard is not
    running. *)

val cache_handle : t -> int -> Vcache.handle option
(** Shard [idx]'s current handle on the shared verdict cache — chaos
    probes a wedged shard's {e retained} handle against this one. *)

val scrub : t -> Homeguard_store.Scrub.counters
(** Anti-entropy pass over every home: live homes scrub in place
    (writers parked around the repair), homes on down/dead shards scrub
    offline. A second pass over an undamaged fleet reports
    all-healthy. *)

val scrub_cache : t -> Homeguard_store.Scrub.home_report option
(** Anti-entropy pass over the verdict-cache surface (the cache's
    replica roots converge at frame granularity, writer parked around
    the repair); [None] when the fleet runs without a cache. [fleet
    scrub] and the chaos campaign run this alongside {!scrub}. *)

val beat : t -> int -> unit
(** Heartbeat from one shard (requests beat implicitly on success).
    Chaos stalls a shard by advancing the clock while withholding its
    beat. *)

val beat_all : t -> unit

(** {2 Introspection} *)

val shard_label : int -> string
val owner_of : t -> string -> int option
val shard_state : t -> int -> [ `Running | `Restarting | `Dead ]
val running : t -> int list
val shard : t -> int -> Shard.t option
val homes_of : t -> int -> string list
val home_ids : t -> string list

type stats = {
  shards : int;
  running_shards : int;
  dead_shards : int;
  kills : int;
  restarts : int;
  rebalanced_homes : int;
  breaker_trips : int;
  recoveries : int;
  stale_rejections : int;
      (** fenced appends rejected process-wide — the durable trace of a
          survived split-brain window, not an error *)
  stale_replies : int;
      (** requests {!run} refused because the routed shard's epoch was
          stale *)
  cache_entries : int;  (** live entries in the shared verdict cache *)
  cache : Vcache.counters option;  (** summed across all shard handles *)
}

val stats : t -> stats

val vcache_store : t -> Vcache.store option
(** The shared verdict cache, when enabled — chaos invariants and the
    CLI inspect it directly. *)

val recoveries : t -> (string * Home.recovery_report) list
(** Every journal recovery any shard performed (restarts, rebalances,
    initial opens), most recent first — the honest-loss accounting the
    chaos invariants consult. *)

val status : t -> string
val close : t -> unit
