(** The fleet supervisor: partitions homes across N shard workers by
    consistent hashing, watches their heartbeats, restarts crashed or
    stalled shards from their journals under a bounded budget with
    jittered exponential backoff (the PR 4 retry policy), shields
    callers from a failing shard with a per-shard circuit breaker, and
    reassigns a permanently dead shard's homes to the survivors.

    Everything is driven by an injectable clock and a seeded RNG, so a
    whole failure campaign — kills, stalls, backoff waits, probes — is
    deterministic and replayable. *)

module Home = Homeguard_store.Home
module Fence = Homeguard_store.Fence
module Scrub = Homeguard_store.Scrub
module Broker = Homeguard_serve.Broker
module Deadline = Homeguard_serve.Deadline
module Shed = Homeguard_serve.Shed
module Fault = Homeguard_solver.Fault
module Vcache = Homeguard_vcache.Vcache

type config = {
  shards : int;
  replicas : int;  (** journal replicas per home (>= 1) *)
  heartbeat_interval_ms : float;
  miss_threshold : int;  (** whole missed intervals before a restart *)
  failure_threshold : int;  (** consecutive failures tripping the breaker *)
  reset_timeout_ms : float;  (** breaker Open → Half_open delay *)
  half_open_probes : int;
  restart_budget : int;  (** restart attempts per shard before Dead *)
  backoff_base_ms : float;
  backoff_cap_ms : float;
  seed : int;  (** jitter determinism *)
  fsync : bool;
  mode : Home.mode;
  clock : Deadline.clock;
  broker : Broker.config;  (** per-shard; its clock is overridden by [clock] *)
  vcache : bool;
      (** share one persistent verdict cache ([dir/vcache]) across all
          shards' detectors *)
}

let default_config =
  {
    shards = 4;
    replicas = 2;
    heartbeat_interval_ms = 1_000.0;
    miss_threshold = 3;
    failure_threshold = 3;
    reset_timeout_ms = 1_000.0;
    half_open_probes = 2;
    restart_budget = 5;
    backoff_base_ms = 250.0;
    backoff_cap_ms = 8_000.0;
    seed = 1;
    fsync = true;
    mode = Home.Mixed;
    clock = Deadline.wall_clock;
    broker = Broker.default_config;
    vcache = true;
  }

type slot_state =
  | Running of Shard.t
  | Restarting of { until : float; attempts : int; prev_backoff : float }
  | Dead

type slot = {
  index : int;
  mutable state : slot_state;
  breaker : Breaker.t;
  health : Health.t;
  mutable cache : Vcache.handle option;
      (** this shard's handle on the shared cache, re-minted with a
          fresh ownership epoch on every (re)open so a wedged previous
          incarnation's handle is fenced off the cache surface; totals
          stay cumulative because the store sums every handle ever
          attached *)
  mutable homes : string list;  (** current assignment *)
  mutable restarts : int;  (** successful supervised restarts *)
  mutable attempts_used : int;  (** restart attempts charged to the budget *)
  mutable last_error : string;
}

type t = {
  dir : string;
  config : config;
  slots : slot array;
  ring : (int * int) array;  (** (point, shard) sorted by point *)
  assignment : (string, int) Hashtbl.t;
  epochs : (string, int) Hashtbl.t;
      (** last ownership epoch granted per home; every (re)open of a
          home gets the next one, so a revived stale owner is fenced *)
  cache_store : Vcache.store option;
  rng : Random.State.t;
  mutable kills : int;  (** crashes observed (injected or organic) *)
  mutable rebalances : int;  (** homes moved off dead shards *)
  mutable stale_replies : int;
      (** requests refused because the routed shard held a stale epoch *)
  mutable recoveries : (string * Home.recovery_report) list;
      (** every journal recovery any shard performed, most recent first *)
}

let shard_label i = Printf.sprintf "shard-%d" i

(* -- consistent hash ring ----------------------------------------------------- *)

(* 32 virtual points per shard smooth the partition; the masks keep
   Hashtbl.hash's 30-bit output strictly non-negative. *)
let vpoints = 32
let point shard k = Hashtbl.hash ("hg-fleet-shard", shard, k) land 0x3FFFFFFF
let home_point id = Hashtbl.hash ("hg-fleet-home", id) land 0x3FFFFFFF

let make_ring shards =
  let pts =
    List.concat
      (List.init shards (fun s -> List.init vpoints (fun k -> (point s k, s))))
  in
  let arr = Array.of_list pts in
  Array.sort compare arr;
  arr

(** First clockwise ring point owned by a shard [alive] accepts —
    consistent hashing's placement rule, so removing a dead shard
    moves only that shard's homes. [None] when no shard qualifies. *)
let owner t ~alive id =
  let n = Array.length t.ring in
  let hp = home_point id in
  (* binary search for the first point >= hp *)
  let rec bsearch lo hi = if lo >= hi then lo else
    let mid = (lo + hi) / 2 in
    if fst t.ring.(mid) < hp then bsearch (mid + 1) hi else bsearch lo mid
  in
  let start = bsearch 0 n in
  let rec walk i remaining =
    if remaining = 0 then None
    else
      let _, s = t.ring.(i mod n) in
      if alive s then Some s else walk (i + 1) (remaining - 1)
  in
  walk start n

let slot_alive slot = match slot.state with Dead -> false | _ -> true

(* -- construction ------------------------------------------------------------- *)

let jittered t prev =
  let base = Float.max 1.0 t.config.backoff_base_ms in
  let cap = Float.max base t.config.backoff_cap_ms in
  let hi = Float.min cap (prev *. 3.0) in
  let u = float_of_int (Random.State.int t.rng 1024) /. 1023.0 in
  base +. (u *. (hi -. base))

(* A fresh, strictly larger ownership epoch for [id]: granted on every
   (re)open, so whichever shard last opened the home outranks any
   revived previous owner at the fence. *)
let next_epoch t id =
  let n = 1 + Option.value ~default:0 (Hashtbl.find_opt t.epochs id) in
  Hashtbl.replace t.epochs id n;
  n

let open_shard t slot =
  let broker_config = { t.config.broker with Broker.clock = t.config.clock } in
  (* a fresh cache handle (and cache-surface ownership epoch) per
     incarnation: attaching fences the previous incarnation's handle,
     so a wedged zombie that still holds it cannot write a stale solve
     class while this replacement serves the same homes *)
  (match t.cache_store with
  | Some st -> slot.cache <- Some (Vcache.attach st ~owner:(shard_label slot.index))
  | None -> ());
  (* record each home's recovery as it happens — a later home crashing
     this open must not discard the evidence (the journal repair it
     performed is already durable) *)
  Shard.open_ ~broker_config ~fsync:t.config.fsync ~mode:t.config.mode
    ~replicas:t.config.replicas
    ~epoch_of:(fun id -> Some (next_epoch t id))
    ~on_recovery:(fun id report -> t.recoveries <- (id, report) :: t.recoveries)
    ?vcache:slot.cache ~fleet_dir:t.dir ~index:slot.index ~home_ids:slot.homes ()

let create ?(config = default_config) ~dir ~homes () =
  if config.shards < 1 then invalid_arg "Supervisor.create: shards < 1";
  if config.restart_budget < 0 then invalid_arg "Supervisor.create: restart_budget < 0";
  if config.replicas < 1 then invalid_arg "Supervisor.create: replicas < 1";
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let cache_store =
    if config.vcache then
      (* the cache surface replicates exactly like home journals: one
         copy per replica root, converged by scrub, recovered merged *)
      let cache_replicas =
        List.init (config.replicas - 1) (fun k ->
            Filename.concat
              (Filename.concat dir (Printf.sprintf "r%d" (k + 1)))
              "vcache")
      in
      Some
        (Vcache.open_store ~fsync:config.fsync ~replicas:cache_replicas
           ~dir:(Filename.concat dir "vcache") ())
    else None
  in
  let slots =
    Array.init config.shards (fun index ->
        {
          index;
          state = Dead;  (* populated below *)
          breaker =
            Breaker.create ~failure_threshold:config.failure_threshold
              ~reset_timeout_ms:config.reset_timeout_ms
              ~half_open_probes:config.half_open_probes config.clock;
          health =
            Health.create ~interval_ms:config.heartbeat_interval_ms
              ~miss_threshold:config.miss_threshold config.clock;
          cache = None;  (* attached (with an epoch grant) by open_shard *)
          homes = [];
          restarts = 0;
          attempts_used = 0;
          last_error = "";
        })
  in
  let t =
    {
      dir;
      config;
      slots;
      ring = make_ring config.shards;
      assignment = Hashtbl.create (List.length homes);
      epochs = Hashtbl.create (List.length homes);
      cache_store;
      rng = Random.State.make [| 0xf1ee7; config.seed |];
      kills = 0;
      rebalances = 0;
      stale_replies = 0;
      recoveries = [];
    }
  in
  List.iter
    (fun id ->
      if Hashtbl.mem t.assignment id then
        invalid_arg (Printf.sprintf "Supervisor.create: duplicate home %S" id);
      match owner t ~alive:(fun _ -> true) id with
      | None -> assert false  (* ring is non-empty *)
      | Some s ->
        Hashtbl.replace t.assignment id s;
        slots.(s).homes <- slots.(s).homes @ [ id ])
    homes;
  Array.iter (fun slot -> slot.state <- Running (open_shard t slot)) slots;
  t

(* -- failure handling --------------------------------------------------------- *)

let rec mark_dead t slot =
  (match slot.state with
  | Running sh -> ( try Shard.close sh with _ -> ())
  | _ -> ());
  slot.state <- Dead;
  let orphans = slot.homes in
  slot.homes <- [];
  (* Reassign by the same ring walk, restricted to surviving shards:
     only the dead shard's homes move. A surviving-but-down shard
     (Restarting) still accepts assignments — it picks the home up
     when its restart replays the journals. *)
  List.iter
    (fun id ->
      match owner t ~alive:(fun s -> slot_alive t.slots.(s)) id with
      | None ->
        (* whole fleet is dead: keep the home on its (dead) owner so
           routing still answers Unavailable and {!scrub} still covers
           it offline, instead of forgetting the home exists *)
        slot.homes <- slot.homes @ [ id ]
      | Some s ->
        let dst = t.slots.(s) in
        dst.homes <- dst.homes @ [ id ];
        Hashtbl.replace t.assignment id s;
        t.rebalances <- t.rebalances + 1;
        (match dst.state with
        | Running sh -> (
          match Shard.add_home sh id with
          | report -> t.recoveries <- (id, report) :: t.recoveries
          | exception Fault.Crashed msg ->
            (* recovering the orphan crashed the destination too *)
            crash t dst ~error:("rebalance recovery crashed: " ^ msg))
        | Restarting _ | Dead -> ()))
    orphans

and schedule_restart t slot ~prev =
  if slot.attempts_used >= t.config.restart_budget then mark_dead t slot
  else begin
    slot.attempts_used <- slot.attempts_used + 1;
    let sleep = jittered t prev in
    slot.state <-
      Restarting
        { until = t.config.clock () +. sleep;
          attempts = slot.attempts_used;
          prev_backoff = sleep;
        }
  end

and crash t slot ~error =
  (match slot.state with
  | Running sh -> ( try Shard.close sh with _ -> ())
  | _ -> ());
  t.kills <- t.kills + 1;
  slot.last_error <- error;
  schedule_restart t slot ~prev:t.config.backoff_base_ms

(** Supervision pass: detect stalled shards (missed heartbeats) and
    bring Restarting shards whose backoff elapsed back up via journal
    replay. A restart that crashes mid-recovery is charged to the
    budget and rescheduled with escalated backoff. *)
let tick t =
  Array.iter
    (fun slot ->
      match slot.state with
      | Running _ -> (
        match Health.status slot.health with
        | Health.Failed m ->
          crash t slot
            ~error:(Printf.sprintf "stalled: missed %d heartbeat(s)" m)
        | Health.Alive | Health.Late _ -> ())
      | Restarting { until; prev_backoff; _ } when t.config.clock () >= until -> (
        match open_shard t slot with
        | sh ->
          slot.state <- Running sh;
          slot.restarts <- slot.restarts + 1;
          Health.beat slot.health;
          (* recovery already served as the shed window *)
          Breaker.begin_probing slot.breaker
        | exception e ->
          slot.last_error <- "restart failed: " ^ Printexc.to_string e;
          schedule_restart t slot ~prev:prev_backoff)
      | Restarting _ | Dead -> ())
    t.slots

(* -- request routing ---------------------------------------------------------- *)

type 'a reply =
  | Done of { shard : int; value : 'a }
  | Unavailable of { shard : int; retry_after_ms : int; reason : string }
      (** breaker open, restart pending, or shard dead *)
  | Crashed of { shard : int; retry_after_ms : int; error : string }
      (** the request crashed its shard; a restart is scheduled and the
          hint points at it, same contract as [Unavailable] *)

let to_outcome = function
  | Done { value; _ } -> Shed.Completed value
  | Unavailable { shard; retry_after_ms; _ } | Crashed { shard; retry_after_ms; _ } ->
    Shed.Degraded
      {
        reason = Shed.Shard_unavailable { shard = shard_label shard; retry_after_ms };
        partial = None;
        shard = Some (shard_label shard);
      }

let owner_of t home = Hashtbl.find_opt t.assignment home

(** Route one unit of work to [home]'s shard. The breaker and the
    restart schedule gate admission; {!Fault.Crashed} escaping the work
    counts as a shard crash (close, schedule restart, honest reply).
    The retry hint while down is the max of the breaker's shed window
    and the time until the next restart attempt — breaker state scales
    the backpressure, per the admission contract. *)
let run t ~home f =
  match owner_of t home with
  | None -> invalid_arg (Printf.sprintf "Supervisor.run: unknown home %S" home)
  | Some idx -> (
    let slot = t.slots.(idx) in
    let hint ms =
      int_of_float (Float.max 1.0 (Float.max ms (Breaker.retry_after_ms slot.breaker)))
    in
    match slot.state with
    | Dead ->
      Unavailable
        { shard = idx; retry_after_ms = hint 1.0; reason = "shard dead" }
    | Restarting { until; _ } ->
      Unavailable
        {
          shard = idx;
          retry_after_ms = hint (until -. t.config.clock ());
          reason = "restart pending";
        }
    | Running sh -> (
      match Breaker.allow slot.breaker with
      | `Reject ms ->
        Unavailable { shard = idx; retry_after_ms = hint ms; reason = "breaker open" }
      | `Admit | `Probe -> (
        match f sh with
        | v ->
          Breaker.note_success slot.breaker;
          Health.beat slot.health;
          Done { shard = idx; value = v }
        | exception Fault.Crashed msg ->
          Breaker.note_failure slot.breaker;
          crash t slot ~error:msg;
          let retry_after_ms =
            match slot.state with
            | Restarting { until; _ } -> hint (until -. t.config.clock ())
            | _ -> hint 1.0
          in
          Crashed { shard = idx; retry_after_ms; error = msg }
        | exception Fence.Stale { held; current; _ } ->
          (* the routed shard holds an out-of-date ownership epoch —
             nothing reached the disk; refuse honestly, don't crash *)
          t.stale_replies <- t.stale_replies + 1;
          Unavailable
            {
              shard = idx;
              retry_after_ms = hint 1.0;
              reason =
                Printf.sprintf "stale epoch (held %d < current %d)" held current;
            })))

let install t ~home ?deadline_ms ~name ~source () =
  run t ~home (fun sh ->
      Shard.Broker.install (Shard.broker sh) ~home ?deadline_ms ~name ~source ())

let deliver t ~home ~seq uri =
  run t ~home (fun sh -> Home.deliver (Broker.home (Shard.broker sh) home) ~seq uri)

let submit_audit t ~home ?deadline_ms () =
  run t ~home (fun sh -> Broker.submit_audit (Shard.broker sh) ~home ?deadline_ms ())

let drain t ~shard:idx =
  match t.slots.(idx).state with
  | Running sh -> (
    match Broker.drain (Shard.broker sh) with
    | outcomes ->
      Breaker.note_success t.slots.(idx).breaker;
      Health.beat t.slots.(idx).health;
      Done { shard = idx; value = outcomes }
    | exception Fault.Crashed msg ->
      Breaker.note_failure t.slots.(idx).breaker;
      crash t t.slots.(idx) ~error:msg;
      let retry_after_ms =
        match t.slots.(idx).state with
        | Restarting { until; _ } ->
          int_of_float (Float.max 1.0 (until -. t.config.clock ()))
        | _ -> 1
      in
      Crashed { shard = idx; retry_after_ms; error = msg })
  | Restarting { until; _ } ->
    Unavailable
      {
        shard = idx;
        retry_after_ms =
          int_of_float (Float.max 1.0 (until -. t.config.clock ()));
        reason = "restart pending";
      }
  | Dead -> Unavailable { shard = idx; retry_after_ms = 1; reason = "shard dead" }

(* -- chaos / introspection hooks ---------------------------------------------- *)

(** Inject a crash (chaos' shard kill). [false] when the shard is not
    running. *)
let kill t idx =
  let slot = t.slots.(idx) in
  match slot.state with
  | Running _ ->
    Breaker.note_failure slot.breaker;
    crash t slot ~error:"injected kill";
    true
  | Restarting _ | Dead -> false

(** Wedge a running shard: the supervisor gives up on it (schedules a
    replacement restart exactly as {!kill} does) but the worker itself
    is {e not} closed — the returned handle still holds every journal
    writer it had, modelling a stalled process that wakes up after its
    homes were reassigned. Everything the zombie tries to append is
    fenced: the replacement opens granted fresh epochs, so the zombie's
    writes raise {!Fence.Stale} instead of reaching the disk. Chaos'
    split-brain window drives this handle directly. *)
let wedge t idx =
  let slot = t.slots.(idx) in
  match slot.state with
  | Running sh ->
    Breaker.note_failure slot.breaker;
    t.kills <- t.kills + 1;
    slot.last_error <- "wedged (stall-then-revive)";
    schedule_restart t slot ~prev:t.config.backoff_base_ms;
    Some sh
  | Restarting _ | Dead -> None

(** Anti-entropy pass over every home in the fleet: homes on a running
    shard scrub live (writers parked and reopened around the repair);
    homes whose owner is down or dead scrub offline. Returns the summed
    per-kind counters; a second pass over an undamaged fleet reports
    all-healthy. *)
let scrub t =
  List.fold_left
    (fun acc id ->
      let report =
        match Hashtbl.find_opt t.assignment id with
        | Some idx -> (
          match t.slots.(idx).state with
          | Running sh -> (
            match Broker.home_opt (Shard.broker sh) id with
            | Some home -> Home.scrub home
            | None ->
              Scrub.scrub_home ~fsync:t.config.fsync
                (Shard.home_dirs ~fleet_dir:t.dir ~replicas:t.config.replicas id))
          | Restarting _ | Dead ->
            Scrub.scrub_home ~fsync:t.config.fsync
              (Shard.home_dirs ~fleet_dir:t.dir ~replicas:t.config.replicas id))
        | None ->
          Scrub.scrub_home ~fsync:t.config.fsync
            (Shard.home_dirs ~fleet_dir:t.dir ~replicas:t.config.replicas id)
      in
      Scrub.add acc report)
    Scrub.zero
    (List.sort compare (Hashtbl.fold (fun id _ acc -> id :: acc) t.assignment []))

(** Anti-entropy pass over the verdict-cache surface: park the shared
    writer, converge the cache replicas at frame granularity, reopen.
    [None] when the fleet runs without a cache. Kept separate from
    {!scrub} (whose counters are per-home) so callers can assert on
    each surface independently; [fleet scrub] and the chaos campaign
    run both. *)
let scrub_cache t = Option.map Vcache.scrub t.cache_store

(** Heartbeat from shard [idx]; chaos stalls a shard by advancing the
    clock while withholding its beat. *)
let beat t idx =
  let slot = t.slots.(idx) in
  match slot.state with Running _ -> Health.beat slot.health | _ -> ()

let beat_all t = Array.iter (fun s -> beat t s.index) t.slots

let shard_state t idx =
  match t.slots.(idx).state with
  | Running _ -> `Running
  | Restarting _ -> `Restarting
  | Dead -> `Dead

let running t =
  Array.to_list t.slots
  |> List.filter_map (fun s ->
         match s.state with Running _ -> Some s.index | _ -> None)

let shard t idx =
  match t.slots.(idx).state with Running sh -> Some sh | _ -> None

let cache_handle t idx = t.slots.(idx).cache
let homes_of t idx = t.slots.(idx).homes
let home_ids t = Hashtbl.fold (fun id _ acc -> id :: acc) t.assignment []

type stats = {
  shards : int;
  running_shards : int;
  dead_shards : int;
  kills : int;
  restarts : int;
  rebalanced_homes : int;
  breaker_trips : int;
  recoveries : int;
  stale_rejections : int;
      (** fenced appends rejected process-wide ({!Fence.rejections}) *)
  stale_replies : int;
      (** requests refused by {!run} because the shard's epoch was stale *)
  cache_entries : int;  (** live entries in the shared verdict cache *)
  cache : Vcache.counters option;  (** summed across all shard handles *)
}

let vcache_store t = t.cache_store

let stats t =
  let restarts = Array.fold_left (fun a (s : slot) -> a + s.restarts) 0 t.slots in
  let trips = Array.fold_left (fun a (s : slot) -> a + Breaker.trips s.breaker) 0 t.slots in
  let dead =
    Array.fold_left
      (fun a (s : slot) -> a + match s.state with Dead -> 1 | _ -> 0)
      0 t.slots
  in
  {
    shards = t.config.shards;
    running_shards = List.length (running t);
    dead_shards = dead;
    kills = t.kills;
    restarts;
    rebalanced_homes = t.rebalances;
    breaker_trips = trips;
    recoveries = List.length t.recoveries;
    stale_rejections = Fence.rejections ();
    stale_replies = t.stale_replies;
    cache_entries =
      (match t.cache_store with None -> 0 | Some st -> Vcache.entries st);
    cache = Option.map Vcache.total_counters t.cache_store;
  }

let recoveries (t : t) = t.recoveries

let status t =
  let b = Buffer.create 256 in
  Array.iter
    (fun slot ->
      let state =
        match slot.state with
        | Running sh -> "running " ^ Broker.status (Shard.broker sh)
        | Restarting { until; attempts; _ } ->
          Printf.sprintf "restarting attempt=%d in-ms=%.0f" attempts
            (Float.max 0.0 (until -. t.config.clock ()))
        | Dead -> "dead"
      in
      Buffer.add_string b
        (Printf.sprintf "%s: homes=%d breaker=%s health=%s restarts=%d %s\n"
           (shard_label slot.index) (List.length slot.homes)
           (Breaker.describe slot.breaker)
           (Health.describe slot.health) slot.restarts state);
      match slot.cache with
      | None -> ()
      | Some h ->
        Buffer.add_string b
          (Printf.sprintf "%s: cache %s\n" (shard_label slot.index)
             (Vcache.counters_text (Vcache.counters h))))
    t.slots;
  (match t.cache_store with
  | None -> ()
  | Some st ->
    Buffer.add_string b
      (Printf.sprintf "vcache: entries=%d damage=%d total %s\n"
         (Vcache.entries st) (Vcache.replay_damage st)
         (Vcache.counters_text (Vcache.total_counters st))));
  Buffer.contents b

let close t =
  Array.iter
    (fun slot ->
      match slot.state with
      | Running sh ->
        (try Shard.close sh with _ -> ());
        slot.state <- Dead
      | _ -> slot.state <- Dead)
    t.slots;
  match t.cache_store with
  | None -> ()
  | Some st -> ( try Vcache.close_store st with _ -> ())
