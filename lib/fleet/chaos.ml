(** The chaos-campaign harness: a seeded schedule of shard kills,
    stalls and storage faults layered over a synthetic-home workload,
    with the four fleet invariants verified at the end:

    {ol
    {- {b No silent acked loss} — every install, config ingest,
       decision and quarantine the fleet acknowledged is present after
       final recovery, unless a recovery {e reported} damage
       (quarantined/skipped records) for that home. Honest, surfaced
       loss — a flipped frame moved to the corruption sidecar — is the
       storage model working; silent loss is the violation.}
    {- {b Replay determinism} — recovering each home twice yields
       byte-identical canonical state ({!Home.state_text}).}
    {- {b Quarantine and handling survival} — acked quarantines and
       handling decisions are in the recovered state (same honest-loss
       carve-out as invariant 1).}
    {- {b No false clean bill} — no outcome whose work was cut
       (shed > 0, shard unavailable, crashed) was ever classified as
       conclusive.}}

    Everything — the workload, the kill schedule, fault windows,
    backoff jitter — is a pure function of the seed, so a failing
    campaign replays exactly. *)

module Home = Homeguard_store.Home
module Fence = Homeguard_store.Fence
module Scrub = Homeguard_store.Scrub
module Journal = Homeguard_store.Journal
module Broker = Homeguard_serve.Broker
module Shed = Homeguard_serve.Shed
module Install_flow = Homeguard_frontend.Install_flow
module Policy = Homeguard_handling.Policy
module Detector = Homeguard_detector.Detector
module Fault = Homeguard_solver.Fault
module Corpus = Homeguard_corpus.Corpus
module Synth = Homeguard_corpus.Synth
module App_entry = Homeguard_corpus.App_entry
module Rule = Homeguard_rules.Rule
module Vcache = Homeguard_vcache.Vcache

type config = {
  seed : int;
  shards : int;
  homes : int;
  steps : int;
  step_ms : float;  (** simulated clock advance per step *)
  forced_kills : int;
      (** deterministic kills at evenly spaced steps, rotating victims
          — guarantees the campaign exercises kill+recover even at
          small step counts *)
  kill_per_thousand : int;  (** extra random kills, per step *)
  stall_per_thousand : int;  (** wedge a shard past its heartbeat window *)
  fault_window_per_thousand : int;
      (** chance per step to open a storage-fault window
          (crash/torn/flip cycling) for the next few steps *)
  audit_per_thousand : int;  (** background re-audit + drain *)
  vcache : bool;  (** shared verdict cache on + cache invariants *)
  replicas : int;  (** journal replicas per home *)
  replica_loss_per_thousand : int;
      (** chance per step to destroy one non-primary replica of a random
          home (the primary always survives destruction windows, so
          "some replica survives" holds by construction; primary damage
          comes from the corruption window and storage faults) *)
  replica_corrupt_per_thousand : int;
      (** chance per step to flip one byte in one replica file of a
          random home — any replica, including the primary *)
  split_brains : int;
      (** forced stall-then-revive windows: wedge a shard (its worker
          keeps its journal writers), let the fleet rebalance, then
          drive the zombie's handles expecting every append fenced *)
}

let default_config =
  {
    seed = 42;
    shards = 4;
    homes = 24;
    steps = 400;
    step_ms = 50.0;
    forced_kills = 3;
    kill_per_thousand = 5;
    stall_per_thousand = 8;
    fault_window_per_thousand = 25;
    audit_per_thousand = 40;
    vcache = true;
    replicas = 2;
    replica_loss_per_thousand = 12;
    replica_corrupt_per_thousand = 12;
    split_brains = 1;
  }

let smoke_config =
  { default_config with homes = 10; steps = 150; fault_window_per_thousand = 20 }

type invariant = { name : string; ok : bool; detail : string }

type report = {
  config : config;
  ops : int;
  installs_acked : int;
  configs_acked : int;
  decisions_acked : int;
  quarantines_acked : int;
  degraded_replies : int;  (** Unavailable/Crashed routing outcomes *)
  busy_replies : int;
  stalled_timeouts : int;
  served_while_impaired : int;
      (** ops completed by healthy shards while some shard was down *)
  fault_windows : int;
  replicas_destroyed : int;  (** replica files removed by loss windows *)
  replicas_corrupted : int;  (** replica files bit-flipped by corruption windows *)
  zombie_rejected : int;  (** fenced appends the split-brain zombies attempted *)
  zombie_accepted : int;  (** must be 0: stale appends that reached the disk *)
  scrub : Scrub.counters;  (** the post-campaign anti-entropy pass *)
  scrub_second : Scrub.counters;  (** must be all-healthy: repair is idempotent *)
  stats : Supervisor.stats;
  shards_killed : int;  (** distinct shards that went down *)
  shards_recovered : int;  (** distinct shards that came back *)
  invariants : invariant list;
}

let passed r = List.for_all (fun i -> i.ok) r.invariants

(* Per-home ledger of what the fleet acknowledged: the ground truth the
   final recovery is audited against. *)
type expect = {
  synth : Synth.home;
  mutable next_app : int;
  mutable next_seq : int;
  mutable installed : string list;
  mutable acked_seq : int;
  mutable decisions : (string * Policy.decision) list;
  mutable quarantined : string list;
  mutable threat_ids : string list;  (** ids seen in kept reports *)
}

type campaign = {
  cfg : config;
  dir : string;  (** the fleet root *)
  sup : Supervisor.t;
  rng : Random.State.t;
  now : float ref;
  expects : (string * expect) list;
  stalled : int array;  (** steps of withheld heartbeats left, per shard *)
  mutable zombies : Shard.t list;  (** wedged workers still holding writers *)
  mutable zombie_rejected : int;
  mutable zombie_accepted : int;
  mutable replicas_destroyed : int;
  mutable replicas_corrupted : int;
  mutable fault_steps_left : int;
  mutable fault_windows : int;
  mutable ops : int;
  mutable busy : int;
  mutable degraded : int;
  mutable stalled_timeouts : int;
  mutable served_while_impaired : int;
  mutable false_clean : int;
  mutable outcomes_checked : int;
  mutable killed : int list;  (** distinct shards seen down *)
  mutable recovered : int list;  (** distinct killed shards seen back up *)
}

let add_distinct x xs = if List.mem x xs then xs else x :: xs

let impaired c =
  List.exists
    (fun i -> Supervisor.shard_state c.sup i <> `Running)
    (List.init c.cfg.shards Fun.id)

(* Structural invariant-4 accounting: every reply passes through here. *)
let classify c reply =
  c.ops <- c.ops + 1;
  let was_impaired = impaired c in
  (match reply with
  | Supervisor.Done _ -> if was_impaired then
      c.served_while_impaired <- c.served_while_impaired + 1
  | Supervisor.Unavailable _ | Supervisor.Crashed _ ->
    c.degraded <- c.degraded + 1;
    c.outcomes_checked <- c.outcomes_checked + 1;
    if Shed.conclusive (Supervisor.to_outcome reply) then
      c.false_clean <- c.false_clean + 1);
  reply

let check_audit_outcome c = function
  | Broker.Audited { result; degraded; _ } ->
    c.outcomes_checked <- c.outcomes_checked + 1;
    if result.Detector.shed > 0 && not degraded then
      c.false_clean <- c.false_clean + 1
  | Broker.Shed_job _ -> c.outcomes_checked <- c.outcomes_checked + 1

(* -- workload ops ------------------------------------------------------------- *)

let op_install c (id, ex) =
  if ex.next_app < List.length ex.synth.Synth.apps then begin
    let app = List.nth ex.synth.Synth.apps ex.next_app in
    let name = app.App_entry.name and source = app.App_entry.source in
    match
      classify c
        (Supervisor.run c.sup ~home:id (fun sh ->
             let broker = Shard.broker sh in
             match Broker.install broker ~home:id ~name ~source () with
             | Broker.Proposed { report; degraded; _ } ->
               Home.decide (Broker.home broker id) Install_flow.Keep;
               `Kept (report, degraded)
             | Broker.Busy { retry_after_ms } -> `Busy retry_after_ms
             | Broker.Quarantined_app _ -> `Refused
             | Broker.Install_failed { quarantined; _ } -> `Failed quarantined))
    with
    | Supervisor.Done { value = `Kept (report, degraded); _ } ->
      c.outcomes_checked <- c.outcomes_checked + 1;
      if report.Install_flow.audit.Detector.shed > 0 && not degraded then
        c.false_clean <- c.false_clean + 1;
      ex.installed <- add_distinct name ex.installed;
      ex.next_app <- ex.next_app + 1;
      ex.threat_ids <-
        List.fold_left
          (fun acc th -> add_distinct (Policy.threat_id th) acc)
          ex.threat_ids report.Install_flow.threats;
      `Acked_install
    | Supervisor.Done { value = `Busy _; _ } ->
      c.busy <- c.busy + 1;
      `Other
    | Supervisor.Done { value = `Failed quarantined; _ } ->
      if quarantined then ex.quarantined <- add_distinct name ex.quarantined;
      ex.next_app <- ex.next_app + 1;  (* don't wedge on a poisoned app *)
      `Other
    | Supervisor.Done { value = `Refused; _ } ->
      ex.next_app <- ex.next_app + 1;
      `Other
    | Supervisor.Unavailable _ | Supervisor.Crashed _ -> `Other
  end
  else `Other

let op_deliver c (id, ex) =
  match ex.synth.Synth.configs with
  | [] -> `Other
  | configs ->
    let uri = List.nth configs (ex.next_seq mod List.length configs) in
    let seq = ex.next_seq + 1 in
    (match classify c (Supervisor.deliver c.sup ~home:id ~seq uri) with
    | Supervisor.Done { value = Home.Accepted _; _ } ->
      ex.next_seq <- seq;
      ex.acked_seq <- max ex.acked_seq seq;
      `Acked_config
    | Supervisor.Done { value = Home.Malformed _; _ } ->
      ex.next_seq <- seq;
      `Other
    | Supervisor.Unavailable _ | Supervisor.Crashed _ -> `Other)

let op_decision c (id, ex) =
  match ex.threat_ids with
  | [] -> `Other
  | ids ->
    let tid = List.nth ids (Random.State.int c.rng (List.length ids)) in
    let d = if Random.State.bool c.rng then Policy.Allow else Policy.Confirm in
    (match
       classify c
         (Supervisor.run c.sup ~home:id (fun sh ->
              Home.set_decision (Broker.home (Shard.broker sh) id) tid d))
     with
    | Supervisor.Done _ ->
      ex.decisions <- (tid, d) :: List.remove_assoc tid ex.decisions;
      `Acked_decision
    | Supervisor.Unavailable _ | Supervisor.Crashed _ -> `Other)

let op_quarantine c (id, ex) =
  match ex.installed with
  | [] -> `Other
  | apps ->
    let app = List.nth apps (Random.State.int c.rng (List.length apps)) in
    (match
       classify c
         (Supervisor.run c.sup ~home:id (fun sh ->
              Home.quarantine
                (Broker.home (Shard.broker sh) id)
                ~app ~reason:"chaos-injected"))
     with
    | Supervisor.Done _ ->
      ex.quarantined <- add_distinct app ex.quarantined;
      `Acked_quarantine
    | Supervisor.Unavailable _ | Supervisor.Crashed _ -> `Other)

let op_audit c (id, _ex) =
  match classify c (Supervisor.submit_audit c.sup ~home:id ()) with
  | Supervisor.Done { value = Ok _; shard } -> (
    match classify c (Supervisor.drain c.sup ~shard) with
    | Supervisor.Done { value = outcomes; _ } ->
      List.iter (check_audit_outcome c) outcomes;
      `Other
    | Supervisor.Unavailable _ | Supervisor.Crashed _ -> `Other)
  | Supervisor.Done { value = Error _; _ } ->
    c.busy <- c.busy + 1;
    `Other
  | Supervisor.Unavailable _ | Supervisor.Crashed _ -> `Other

(* -- replica damage windows --------------------------------------------------- *)

let random_home c = fst (List.nth c.expects (Random.State.int c.rng (List.length c.expects)))

(* Destroy one non-primary replica of a random home — disk death. The
   home's live writer keeps appending to the unlinked inode; the next
   recovery or scrub recreates the replica from a surviving sibling.
   Quarantine sidecars are left alone: they are the durable damage
   evidence the loss invariants consult. *)
let destroy_replica c =
  let id = random_home c in
  let dirs = Shard.home_dirs ~fleet_dir:c.dir ~replicas:c.cfg.replicas id in
  match List.tl dirs with
  | [] -> ()
  | victims ->
    let vdir = List.nth victims (Random.State.int c.rng (List.length victims)) in
    let removed = ref false in
    List.iter
      (fun p ->
        if Sys.file_exists p then begin
          (try Sys.remove p with Sys_error _ -> ());
          removed := true
        end)
      [ Filename.concat vdir "snapshot"; Filename.concat vdir "journal" ];
    if !removed then c.replicas_destroyed <- c.replicas_destroyed + 1

(* Flip one byte in one replica file of a random home — bit rot. May hit
   the primary: read-repair must heal whichever copy is damaged. *)
let corrupt_replica c =
  let id = random_home c in
  let dirs = Shard.home_dirs ~fleet_dir:c.dir ~replicas:c.cfg.replicas id in
  let vdir = List.nth dirs (Random.State.int c.rng (List.length dirs)) in
  let file =
    Filename.concat vdir (if Random.State.bool c.rng then "journal" else "snapshot")
  in
  if Sys.file_exists file then begin
    let size = (Unix.stat file).Unix.st_size in
    if size > 0 then begin
      let off = Random.State.int c.rng size in
      let fd = Unix.openfile file [ Unix.O_RDWR ] 0o644 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          ignore (Unix.lseek fd off Unix.SEEK_SET);
          let b = Bytes.create 1 in
          if Unix.read fd b 0 1 = 1 then begin
            Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x20));
            ignore (Unix.lseek fd off Unix.SEEK_SET);
            ignore (Unix.write fd b 0 1);
            c.replicas_corrupted <- c.replicas_corrupted + 1
          end)
    end
  end

(* Drive every wedged worker's home handles once a successor epoch has
   been granted (the "revive after rebalance" moment): each journaling
   attempt must be fenced. An append that reaches the disk is a stale
   write accepted — the split-brain failure this PR exists to prevent. *)
let drive_zombies c =
  List.iter
    (fun z ->
      List.iter
        (fun (_, h) ->
          (* if no successor epoch was ever granted (the slot died past
             its restart budget before any reopen), grant it now:
             ownership always moves before a wedged worker revives,
             never the other way around *)
          if Fence.current (Home.dir h) <= Home.epoch h then
            ignore (Fence.acquire (Home.dir h) (Home.epoch h + 1) : int);
          if Fence.current (Home.dir h) > Home.epoch h then
            match Home.set_decision h "chaos-zombie" Policy.Allow with
            | () -> c.zombie_accepted <- c.zombie_accepted + 1
            | exception Fence.Stale _ -> c.zombie_rejected <- c.zombie_rejected + 1
            | exception Fault.Crashed _ ->
              (* the fence passed (it is checked first) and then a
                 storage fault killed the write: still a stale append
                 that was let through *)
              c.zombie_accepted <- c.zombie_accepted + 1)
        (Broker.homes (Shard.broker z)))
    c.zombies

(* -- the campaign loop -------------------------------------------------------- *)

let storage_modes = [| Fault.Crash; Fault.Torn; Fault.Flip |]

let note_states c =
  List.iter
    (fun i ->
      match Supervisor.shard_state c.sup i with
      | `Restarting | `Dead -> c.killed <- add_distinct i c.killed
      | `Running ->
        if List.mem i c.killed then c.recovered <- add_distinct i c.recovered)
    (List.init c.cfg.shards Fun.id)

let step c ~step_index counters =
  let cfg = c.cfg in
  (* fault windows: arm a storage-fault plan for a few steps, cycling
     the mode so crash, torn and flip are all exercised *)
  if c.fault_steps_left > 0 then begin
    c.fault_steps_left <- c.fault_steps_left - 1;
    if c.fault_steps_left = 0 then Fault.disarm_storage ()
  end
  else if Random.State.int c.rng 1000 < cfg.fault_window_per_thousand then begin
    let mode = storage_modes.(c.fault_windows mod Array.length storage_modes) in
    Fault.arm_storage ~seed:(cfg.seed + c.fault_windows) ~rate_per_thousand:80 mode;
    c.fault_windows <- c.fault_windows + 1;
    c.fault_steps_left <- 8
  end;
  (* forced kills at evenly spaced steps, rotating victims *)
  let forced =
    List.init cfg.forced_kills (fun i ->
        (cfg.steps * (i + 1) / (cfg.forced_kills + 1), i mod cfg.shards))
  in
  List.iter
    (fun (at, victim) ->
      if at = step_index then begin
        if Supervisor.kill c.sup victim then c.killed <- add_distinct victim c.killed
      end)
    forced;
  if Random.State.int c.rng 1000 < cfg.kill_per_thousand then begin
    let victim = Random.State.int c.rng cfg.shards in
    if Supervisor.kill c.sup victim then c.killed <- add_distinct victim c.killed
  end;
  if Random.State.int c.rng 1000 < cfg.stall_per_thousand then begin
    let victim = Random.State.int c.rng cfg.shards in
    (* withhold beats long enough to blow the heartbeat window *)
    c.stalled.(victim) <- 8
  end;
  (* replica damage windows *)
  if cfg.replicas > 1 && Random.State.int c.rng 1000 < cfg.replica_loss_per_thousand
  then destroy_replica c;
  if Random.State.int c.rng 1000 < cfg.replica_corrupt_per_thousand then
    corrupt_replica c;
  (* forced split-brain windows: wedge a shard (its worker keeps every
     journal writer), offset from the kill victims so both happen. A
     window that finds no running shard (every slot mid-restart or out
     of budget) stays open: it retries each following step until a live
     worker exists to turn into a zombie, so a scheduled split-brain is
     never silently skipped *)
  List.iter
    (fun (i, at, victim) ->
      if step_index >= at && List.length c.zombies <= i then
        (* scan from the scheduled victim for a shard that is actually
           running — a wedge needs a live worker to turn into a zombie *)
        let rec try_wedge k =
          if k < cfg.shards then begin
            let v = (victim + k) mod cfg.shards in
            match Supervisor.wedge c.sup v with
            | Some z ->
              c.killed <- add_distinct v c.killed;
              c.zombies <- z :: c.zombies
            | None -> try_wedge (k + 1)
          end
        in
        try_wedge 0)
    (* windows sit in the first half of the campaign, while the slots
       still have restart budget to grant successor epochs; a late
       campaign can run its whole fleet out of restarts, after which
       there is no live worker left to wedge *)
    (List.init cfg.split_brains (fun i ->
         ( i,
           cfg.steps * (i + 1) / (2 * (cfg.split_brains + 1)),
           (i + 1) mod cfg.shards )));
  drive_zombies c;
  (* workload: a couple of ops against random homes; ops to a stalled
     shard time out instead of completing (a wedged worker does not
     answer) *)
  let n_ops = 1 + Random.State.int c.rng 2 in
  for _ = 1 to n_ops do
    let home = List.nth c.expects (Random.State.int c.rng (List.length c.expects)) in
    let target = Supervisor.owner_of c.sup (fst home) in
    let target_stalled =
      match target with Some i -> c.stalled.(i) > 0 | None -> false
    in
    if target = None then
      (* the whole fleet is dead: the home has no owner left, so the
         op degrades instead of routing *)
      c.degraded <- c.degraded + 1
    else if target_stalled then c.stalled_timeouts <- c.stalled_timeouts + 1
    else begin
      let r = Random.State.int c.rng 100 in
      let res =
        if r < 45 then op_install c home
        else if r < 75 then op_deliver c home
        else if r < 85 then op_decision c home
        else if r < 90 then op_quarantine c home
        else if r < 90 + (cfg.audit_per_thousand / 10) then op_audit c home
        else op_deliver c home
      in
      (match res with
      | `Acked_install -> counters.(0) <- counters.(0) + 1
      | `Acked_config -> counters.(1) <- counters.(1) + 1
      | `Acked_decision -> counters.(2) <- counters.(2) + 1
      | `Acked_quarantine -> counters.(3) <- counters.(3) + 1
      | `Other -> ())
    end
  done;
  (* heartbeats from every live, un-stalled shard; then advance time
     and run a supervision pass *)
  List.iter
    (fun i ->
      if c.stalled.(i) > 0 then c.stalled.(i) <- c.stalled.(i) - 1
      else Supervisor.beat c.sup i)
    (List.init cfg.shards Fun.id);
  c.now := !(c.now) +. cfg.step_ms;
  Supervisor.tick c.sup;
  note_states c

(* -- final verification ------------------------------------------------------- *)

let subset ~of_:ys xs = List.for_all (fun x -> List.mem x ys) xs

type recovered_home = {
  r_installed : string list;
  r_decisions : (string * Policy.decision) list;
  r_quarantined : string list;
  r_last_seq : int;
  r_text : string;
  r_text2 : string;  (** second, independent recovery *)
  r_honest_damage : bool;  (** some recovery surfaced damage for this home *)
}

let recover_home ~fleet_dir ~replicas ~campaign_damage id =
  let dirs = Shard.home_dirs ~fleet_dir ~replicas id in
  let dir = List.hd dirs and extra = List.tl dirs in
  (* first open repairs (truncates torn tails, quarantines corrupt
     frames, merges the replicas); the determinism check is over the
     two subsequent recoveries of the repaired journal *)
  let h1, r1 = Home.open_ ~fsync:false ~replicas:extra ~dir () in
  let r_installed =
    List.map (fun (a : Rule.smartapp) -> a.Rule.name) (Home.installed_apps h1)
  in
  let r_decisions = Policy.decisions (Install_flow.policies (Home.flow h1)) in
  let r_quarantined = List.map fst (Home.quarantined h1) in
  let r_last_seq = Home.last_seq h1 in
  let r_text = Home.state_text h1 in
  Home.close h1;
  let h2, r2 = Home.open_ ~fsync:false ~replicas:extra ~dir () in
  let r_text2 = Home.state_text h2 in
  Home.close h2;
  (* With replication the loss carve-out tightens: a damaged replica
     whose records survived on a sibling lost nothing (the merge heals
     it), so damage is honest only when some file's every replica was
     damaged or missing. For a single replica this is the old rule. *)
  let damaged (r : Home.recovery_report) =
    (r.Home.quarantined > 0 && r.Home.all_replicas_damaged)
    || r.Home.skipped_events > 0
  in
  (* The quarantine sidecar is the durable form of the same evidence:
     an in-memory recovery report can be lost when the recovering open
     itself crashes on a later home (the journal repair it already
     performed persists, so the retry replays clean), but the sidecar
     written by that repair survives any number of restarts. Every
     replica directory must show corruption for the carve-out to hold. *)
  let sidecar_corruption =
    List.for_all (fun d -> Home.surfaced_corruption ~dir:d () > 0) dirs
  in
  {
    r_installed;
    r_decisions;
    r_quarantined;
    r_last_seq;
    r_text;
    r_text2;
    r_honest_damage =
      campaign_damage || damaged r1 || damaged r2 || sidecar_corruption;
  }

(* Cache invariants, against [live] (the dump captured just before the
   final shutdown) and [totals] (the summed shard counters):
   - two independent reopens of the cache journal replay to
     byte-identical state (the kill-mid-cache-write case: whatever
     prefix survived, it replays deterministically);
   - no poisoned entry: a reopened entry for a key the live fleet held
     never flips verdict kind (torn/corrupt frames must be dropped, not
     decoded into a different verdict);
   - no conflicts: no fresh solve ever contradicted a cached decisive
     verdict — the abstraction-soundness alarm stayed silent;
   - warm restart: the reopened cache holds entries whenever any entry
     was durably journaled (honest-loss carve-out for surfaced frame
     damage, same as the home-journal invariants). *)
let verify_cache ~fleet_dir ~live ~totals =
  match (live, totals) with
  | None, _ | _, None -> []
  | Some live, Some (totals : Vcache.counters) ->
    let dir = Filename.concat fleet_dir "vcache" in
    let st1 = Vcache.open_store ~fsync:false ~dir () in
    let d1 = Vcache.dump st1 in
    let dmg = Vcache.replay_damage st1 in
    let n1 = Vcache.entries st1 in
    Vcache.close_store st1;
    let st2 = Vcache.open_store ~fsync:false ~dir () in
    let d2 = Vcache.dump st2 in
    Vcache.close_store st2;
    let kind e = if e = "" then '?' else e.[0] in
    let poisoned =
      List.filter
        (fun (k, e) ->
          match List.assoc_opt k live with
          | Some le -> kind e <> kind le
          | None -> false)
        d1
    in
    let inv name ok detail = { name; ok; detail } in
    [
      inv "cache-replay-determinism" (d1 = d2)
        (Printf.sprintf "%d entries reopened twice, %d damaged frame(s) dropped"
           (List.length d1) dmg);
      inv "cache-no-poisoned-entry" (poisoned = [])
        (Printf.sprintf "%d reopened entries checked against live state%s"
           (List.length d1)
           (match poisoned with
           | [] -> ""
           | ps -> ": " ^ String.concat "," (List.map fst ps)));
      inv "cache-no-conflicts"
        (totals.Vcache.conflicts = 0)
        (Printf.sprintf "hits=%d misses=%d conflicts=%d" totals.Vcache.hits
           totals.Vcache.misses totals.Vcache.conflicts);
      inv "cache-warm-restart"
        (n1 > 0 || totals.Vcache.inserts = 0 || dmg > 0)
        (Printf.sprintf "entries=%d inserts=%d evicts=%d journal-drops=%d" n1
           totals.Vcache.inserts totals.Vcache.evicts totals.Vcache.journal_drops);
    ]

let verify c ~fleet_dir =
  let campaign_damaged =
    (* homes whose mid-campaign recoveries already surfaced possible
       loss — damage on every replica, or undecodable records *)
    List.filter_map
      (fun (id, (r : Home.recovery_report)) ->
        if
          (r.Home.quarantined > 0 && r.Home.all_replicas_damaged)
          || r.Home.skipped_events > 0
        then Some id
        else None)
      (Supervisor.recoveries c.sup)
  in
  let recovered =
    List.map
      (fun (id, ex) ->
        ( id,
          ex,
          recover_home ~fleet_dir ~replicas:c.cfg.replicas
            ~campaign_damage:(List.mem id campaign_damaged)
            id ))
      c.expects
  in
  let inv name ok detail = { name; ok; detail } in
  let failures pred =
    List.filter_map (fun (id, ex, r) -> if pred ex r then None else Some id) recovered
  in
  let inv1_bad =
    failures (fun ex r ->
        r.r_honest_damage
        || (subset ~of_:r.r_installed ex.installed && ex.acked_seq <= r.r_last_seq))
  in
  let inv2_bad = failures (fun _ r -> r.r_text = r.r_text2) in
  let inv3_bad =
    failures (fun ex r ->
        r.r_honest_damage
        || (subset ~of_:r.r_quarantined ex.quarantined
           && subset ~of_:r.r_decisions ex.decisions))
  in
  let honest = List.length (List.filter (fun (_, _, r) -> r.r_honest_damage) recovered) in
  let list = function [] -> "" | ids -> ": " ^ String.concat "," ids in
  [
    inv "no-acked-loss" (inv1_bad = [])
      (Printf.sprintf
         "%d installs, %d configs acked across %d homes; %d home(s) with \
          surfaced damage%s"
         (List.fold_left (fun a (_, ex, _) -> a + List.length ex.installed) 0 recovered)
         (List.fold_left (fun a (_, ex, _) -> a + ex.acked_seq) 0 recovered)
         (List.length recovered) honest (list inv1_bad));
    inv "replay-determinism" (inv2_bad = [])
      (Printf.sprintf "%d homes recovered twice%s" (List.length recovered)
         (list inv2_bad));
    inv "quarantine-decision-survival" (inv3_bad = [])
      (Printf.sprintf "%d decisions, %d quarantines acked%s"
         (List.fold_left (fun a (_, ex, _) -> a + List.length ex.decisions) 0 recovered)
         (List.fold_left (fun a (_, ex, _) -> a + List.length ex.quarantined) 0 recovered)
         (list inv3_bad));
    inv "no-false-clean-bill" (c.false_clean = 0)
      (Printf.sprintf "%d outcome(s) checked, %d false clean" c.outcomes_checked
         c.false_clean);
  ]

(* -- entry point -------------------------------------------------------------- *)

let run ?(config = default_config) ~dir () =
  if config.shards < 1 || config.homes < 1 || config.steps < 1 then
    invalid_arg "Chaos.run: shards, homes and steps must be positive";
  let rng = Random.State.make [| 0xc4a05; config.seed |] in
  let synth_homes = Corpus.synth ~seed:config.seed ~n_homes:config.homes in
  let now = ref 0.0 in
  let clock () = !now in
  let sup_config =
    {
      Supervisor.default_config with
      Supervisor.shards = config.shards;
      replicas = config.replicas;
      heartbeat_interval_ms = config.step_ms *. 2.0;
      miss_threshold = 3;
      failure_threshold = 2;
      reset_timeout_ms = config.step_ms *. 4.0;
      half_open_probes = 2;
      restart_budget = 6;
      backoff_base_ms = config.step_ms;
      backoff_cap_ms = config.step_ms *. 10.0;
      seed = config.seed;
      fsync = false;
      clock;
      broker = { Broker.default_config with Broker.clock = clock };
      vcache = config.vcache;
    }
  in
  let sup =
    Supervisor.create ~config:sup_config ~dir
      ~homes:(List.map (fun h -> h.Synth.id) synth_homes)
      ()
  in
  let c =
    {
      cfg = config;
      dir;
      sup;
      rng;
      now;
      expects =
        List.map
          (fun h ->
            ( h.Synth.id,
              {
                synth = h;
                next_app = 0;
                next_seq = 0;
                installed = [];
                acked_seq = 0;
                decisions = [];
                quarantined = [];
                threat_ids = [];
              } ))
          synth_homes;
      stalled = Array.make config.shards 0;
      zombies = [];
      zombie_rejected = 0;
      zombie_accepted = 0;
      replicas_destroyed = 0;
      replicas_corrupted = 0;
      fault_steps_left = 0;
      fault_windows = 0;
      ops = 0;
      busy = 0;
      degraded = 0;
      stalled_timeouts = 0;
      served_while_impaired = 0;
      false_clean = 0;
      outcomes_checked = 0;
      killed = [];
      recovered = [];
    }
  in
  let counters = Array.make 4 0 in
  Fun.protect
    ~finally:(fun () ->
      Fault.disarm ();
      Fault.disarm_storage ())
  @@ fun () ->
  for step_index = 1 to config.steps do
    step c ~step_index counters
  done;
  Fault.disarm_storage ();
  c.fault_steps_left <- 0;
  (* settle: let every pending restart complete (or exhaust its budget
     and rebalance) before verifying *)
  let settled = ref 0 in
  while
    !settled < 200
    && List.exists
         (fun i -> Supervisor.shard_state c.sup i = `Restarting)
         (List.init config.shards Fun.id)
  do
    incr settled;
    c.now := !(c.now) +. config.step_ms;
    Supervisor.beat_all c.sup;
    Supervisor.tick c.sup;
    note_states c
  done;
  (* split-brain epilogue: give every zombie one last revived write
     attempt, then close its writers before anything rewrites files *)
  drive_zombies c;
  List.iter (fun z -> try Shard.close z with _ -> ()) c.zombies;
  (* durable fingerprint of any accepted stale append: a frame stamped
     below the running epoch maximum. Scanned before scrub and final
     recovery rewrite (and so re-stamp) the files. *)
  let epoch_regressions =
    List.fold_left
      (fun acc (id, _) ->
        List.fold_left
          (fun acc d ->
            List.fold_left
              (fun acc f -> acc + (Journal.scan f).Journal.epoch_regressions)
              acc
              [ Filename.concat d "snapshot"; Filename.concat d "journal" ])
          acc
          (Shard.home_dirs ~fleet_dir:dir ~replicas:config.replicas id))
      0 c.expects
  in
  let scrub = Supervisor.scrub c.sup in
  let scrub_second = Supervisor.scrub c.sup in
  let stats = Supervisor.stats c.sup in
  let live_cache = Option.map Vcache.dump (Supervisor.vcache_store c.sup) in
  Supervisor.close c.sup;
  let inv name ok detail = { name; ok; detail } in
  let replication_invariants =
    [
      inv "no-stale-epoch-accepted"
        (c.zombie_accepted = 0 && epoch_regressions = 0)
        (Printf.sprintf
           "%d zombie append(s) fenced, %d accepted, %d epoch regression(s) on \
            disk, %d stale replies"
           c.zombie_rejected c.zombie_accepted epoch_regressions
           stats.Supervisor.stale_replies);
      inv "scrub-convergence"
        (scrub.Scrub.unconverged = 0)
        (Scrub.counters_text scrub);
      inv "scrub-idempotent"
        (scrub_second.Scrub.unconverged = 0
        && scrub_second.Scrub.repaired_homes = 0
        && scrub_second.Scrub.healthy = scrub_second.Scrub.homes)
        (Scrub.counters_text scrub_second);
    ]
  in
  let invariants =
    verify c ~fleet_dir:dir
    @ replication_invariants
    @ verify_cache ~fleet_dir:dir ~live:live_cache ~totals:stats.Supervisor.cache
  in
  {
    config;
    ops = c.ops;
    installs_acked = counters.(0);
    configs_acked = counters.(1);
    decisions_acked = counters.(2);
    quarantines_acked = counters.(3);
    degraded_replies = c.degraded;
    busy_replies = c.busy;
    stalled_timeouts = c.stalled_timeouts;
    served_while_impaired = c.served_while_impaired;
    fault_windows = c.fault_windows;
    replicas_destroyed = c.replicas_destroyed;
    replicas_corrupted = c.replicas_corrupted;
    zombie_rejected = c.zombie_rejected;
    zombie_accepted = c.zombie_accepted;
    scrub;
    scrub_second;
    stats;
    shards_killed = List.length c.killed;
    shards_recovered = List.length c.recovered;
    invariants;
  }

let render r =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf
       "chaos campaign: seed=%d shards=%d homes=%d steps=%d\n" r.config.seed
       r.config.shards r.config.homes r.config.steps);
  Buffer.add_string b
    (Printf.sprintf
       "workload: ops=%d acked installs=%d configs=%d decisions=%d \
        quarantines=%d busy=%d degraded=%d stalled-timeouts=%d\n"
       r.ops r.installs_acked r.configs_acked r.decisions_acked
       r.quarantines_acked r.busy_replies r.degraded_replies r.stalled_timeouts);
  Buffer.add_string b
    (Printf.sprintf
       "faults: windows=%d kills=%d restarts=%d breaker-trips=%d \
        rebalanced-homes=%d dead-shards=%d\n"
       r.fault_windows r.stats.Supervisor.kills r.stats.Supervisor.restarts
       r.stats.Supervisor.breaker_trips r.stats.Supervisor.rebalanced_homes
       r.stats.Supervisor.dead_shards);
  Buffer.add_string b
    (Printf.sprintf
       "isolation: shards-killed=%d shards-recovered=%d served-while-impaired=%d\n"
       r.shards_killed r.shards_recovered r.served_while_impaired);
  Buffer.add_string b
    (Printf.sprintf
       "replication: replicas=%d destroyed=%d corrupted=%d split-brains=%d \
        zombie-rejected=%d zombie-accepted=%d stale-replies=%d\n"
       r.config.replicas r.replicas_destroyed r.replicas_corrupted
       r.config.split_brains r.zombie_rejected r.zombie_accepted
       r.stats.Supervisor.stale_replies);
  Buffer.add_string b (Printf.sprintf "scrub:   %s\n" (Scrub.counters_text r.scrub));
  Buffer.add_string b
    (Printf.sprintf "rescrub: %s\n" (Scrub.counters_text r.scrub_second));
  (match r.stats.Supervisor.cache with
  | None -> ()
  | Some cc ->
    Buffer.add_string b
      (Printf.sprintf "vcache: entries=%d %s\n" r.stats.Supervisor.cache_entries
         (Homeguard_vcache.Vcache.counters_text cc)));
  List.iter
    (fun i ->
      Buffer.add_string b
        (Printf.sprintf "invariant %-28s %s (%s)\n" i.name
           (if i.ok then "OK" else "VIOLATED")
           i.detail))
    r.invariants;
  Buffer.add_string b
    (if passed r then "campaign passed\n" else "campaign FAILED\n");
  Buffer.contents b
