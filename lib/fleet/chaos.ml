(** The chaos-campaign harness: an {e explicit, seeded fault schedule}
    of shard kills, stalls, storage-fault windows, replica and
    cache-replica damage and stall-then-revive (split-brain) windows
    layered over a synthetic-home workload, with the fleet invariants
    verified at the end:

    {ol
    {- {b No silent acked loss} — every install, config ingest,
       decision and quarantine the fleet acknowledged is present after
       final recovery, unless a recovery {e reported} damage
       (quarantined/skipped records) for that home. Honest, surfaced
       loss — a flipped frame moved to the corruption sidecar — is the
       storage model working; silent loss is the violation.}
    {- {b Replay determinism} — recovering each home twice yields
       byte-identical canonical state ({!Home.state_text}).}
    {- {b Quarantine and handling survival} — acked quarantines and
       handling decisions are in the recovered state (same honest-loss
       carve-out as invariant 1).}
    {- {b No false clean bill} — no outcome whose work was cut
       (shed > 0, shard unavailable, crashed) was ever classified as
       conclusive.}}

    plus the replication invariants (no stale-epoch append accepted,
    scrub convergence and idempotence) and — when the shared verdict
    cache is on — the cache-surface invariants (no stale-epoch cache
    byte, cache-scrub convergence/idempotence, and a warm reopened
    cache auditing byte-identically to a cold one).

    The schedule is derived up front from a dedicated fault RNG (the
    workload runs off a second, independent stream), so a campaign can
    be re-run with any {e subset} of its fault events: {!shrink}
    delta-debugs a failing schedule down to a minimal reproduction. *)

module Home = Homeguard_store.Home
module Fence = Homeguard_store.Fence
module Scrub = Homeguard_store.Scrub
module Journal = Homeguard_store.Journal
module Broker = Homeguard_serve.Broker
module Shed = Homeguard_serve.Shed
module Install_flow = Homeguard_frontend.Install_flow
module Policy = Homeguard_handling.Policy
module Detector = Homeguard_detector.Detector
module Fault = Homeguard_solver.Fault
module Budget = Homeguard_solver.Budget
module Corpus = Homeguard_corpus.Corpus
module Synth = Homeguard_corpus.Synth
module App_entry = Homeguard_corpus.App_entry
module Rule = Homeguard_rules.Rule
module Vcache = Homeguard_vcache.Vcache

type config = {
  seed : int;
  shards : int;
  homes : int;
  steps : int;
  step_ms : float;  (** simulated clock advance per step *)
  forced_kills : int;
      (** deterministic kills at evenly spaced steps, rotating victims
          — guarantees the campaign exercises kill+recover even at
          small step counts *)
  kill_per_thousand : int;  (** extra random kills, per step *)
  stall_per_thousand : int;  (** wedge a shard past its heartbeat window *)
  fault_window_per_thousand : int;
      (** chance per step to open a storage-fault window
          (crash/torn/flip cycling) for the next few steps *)
  audit_per_thousand : int;  (** background re-audit + drain *)
  vcache : bool;  (** shared verdict cache on + cache invariants *)
  replicas : int;  (** journal replicas per home *)
  replica_loss_per_thousand : int;
      (** chance per step to destroy one non-primary replica of a random
          home (the primary always survives destruction windows, so
          "some replica survives" holds by construction; primary damage
          comes from the corruption window and storage faults) *)
  replica_corrupt_per_thousand : int;
      (** chance per step to flip one byte in one replica file of a
          random home — any replica, including the primary *)
  cache_loss_per_thousand : int;
      (** chance per step to destroy one non-primary replica of the
          shared verdict cache (same primary-survives rule as
          [replica_loss_per_thousand]) *)
  cache_corrupt_per_thousand : int;
      (** chance per step to flip one byte in one cache replica file —
          any replica, including the primary *)
  split_brains : int;
      (** forced stall-then-revive windows: wedge a shard (its worker
          keeps its journal writers {e and} its verdict-cache handle),
          let the fleet rebalance, then drive the zombie's handles
          expecting every append — home journal and cache alike —
          fenced *)
}

let default_config =
  {
    seed = 42;
    shards = 4;
    homes = 24;
    steps = 400;
    step_ms = 50.0;
    forced_kills = 3;
    kill_per_thousand = 5;
    stall_per_thousand = 8;
    fault_window_per_thousand = 25;
    audit_per_thousand = 40;
    vcache = true;
    replicas = 2;
    replica_loss_per_thousand = 12;
    replica_corrupt_per_thousand = 12;
    cache_loss_per_thousand = 10;
    cache_corrupt_per_thousand = 10;
    split_brains = 1;
  }

let smoke_config =
  { default_config with homes = 10; steps = 150; fault_window_per_thousand = 20 }

(* -- the explicit fault schedule ---------------------------------------------- *)

(** One scheduled fault. Every parameter the fault needs is minted at
    derivation time (home/replica/file indices, corruption salts), so an
    event fires identically whether it runs inside the full schedule or
    a shrunk subset. *)
type fault_event =
  | Kill of { victim : int }
  | Stall of { victim : int }
  | Storage_window of { mode : int; salt : int }
      (** open a crash/torn/flip window ([mode] indexes the cycling
          order) armed with [salt] as the storage-fault seed *)
  | Replica_destroy of { home : int; replica : int }
      (** [home] indexes the synthetic homes; [replica] the non-primary
          replica list *)
  | Replica_corrupt of { home : int; replica : int; file : int; salt : int }
      (** flip byte [salt mod size] of the [file]th journal file of the
          [replica]th directory (primary included) *)
  | Cache_destroy of { replica : int }  (** non-primary cache replicas only *)
  | Cache_corrupt of { replica : int; file : int; salt : int }
  | Split_brain of { victim : int }

type scheduled = { at : int; ev : fault_event }

let storage_modes = [| Fault.Crash; Fault.Torn; Fault.Flip |]

(** Derive the full fault schedule for a config — a pure function of
    the seed, independent of the workload RNG. Forced kills and
    split-brain windows become ordinary schedule entries, so the
    schedule is the {e complete} fault plan: replaying a subset of it
    replays exactly those faults and nothing else. *)
let schedule_of_config config =
  let rng = Random.State.make [| 0xfa5eed; config.seed |] in
  let events = ref [] in
  let emit at ev = events := { at; ev } :: !events in
  let salt () = Random.State.int rng 0x3FFFFFFF in
  (* forced kills at evenly spaced steps, rotating victims *)
  List.iter
    (fun (at, victim) -> emit at (Kill { victim }))
    (List.init config.forced_kills (fun i ->
         (config.steps * (i + 1) / (config.forced_kills + 1), i mod config.shards)));
  (* split-brain windows sit in the first half of the campaign, while
     the slots still have restart budget to grant successor epochs *)
  List.iter
    (fun (at, victim) -> emit at (Split_brain { victim }))
    (List.init config.split_brains (fun i ->
         ( config.steps * (i + 1) / (2 * (config.split_brains + 1)),
           (i + 1) mod config.shards )));
  let window_until = ref 0 and windows = ref 0 in
  for at = 1 to config.steps do
    if
      at >= !window_until
      && Random.State.int rng 1000 < config.fault_window_per_thousand
    then begin
      emit at
        (Storage_window
           {
             mode = !windows mod Array.length storage_modes;
             salt = config.seed + !windows;
           });
      incr windows;
      window_until := at + 9
    end;
    if Random.State.int rng 1000 < config.kill_per_thousand then
      emit at (Kill { victim = Random.State.int rng config.shards });
    if Random.State.int rng 1000 < config.stall_per_thousand then
      emit at (Stall { victim = Random.State.int rng config.shards });
    if
      config.replicas > 1
      && Random.State.int rng 1000 < config.replica_loss_per_thousand
    then
      emit at
        (Replica_destroy
           {
             home = Random.State.int rng config.homes;
             replica = Random.State.int rng (config.replicas - 1);
           });
    if Random.State.int rng 1000 < config.replica_corrupt_per_thousand then
      emit at
        (Replica_corrupt
           {
             home = Random.State.int rng config.homes;
             replica = Random.State.int rng config.replicas;
             file = Random.State.int rng 2;
             salt = salt ();
           });
    if
      config.vcache && config.replicas > 1
      && Random.State.int rng 1000 < config.cache_loss_per_thousand
    then
      emit at (Cache_destroy { replica = Random.State.int rng (config.replicas - 1) });
    if config.vcache && Random.State.int rng 1000 < config.cache_corrupt_per_thousand
    then
      emit at
        (Cache_corrupt
           {
             replica = Random.State.int rng config.replicas;
             file = Random.State.int rng 2;
             salt = salt ();
           })
  done;
  List.stable_sort (fun a b -> compare a.at b.at) (List.rev !events)

type invariant = { name : string; ok : bool; detail : string }

type report = {
  config : config;
  schedule : scheduled list;  (** the fault plan this campaign executed *)
  ops : int;
  installs_acked : int;
  configs_acked : int;
  decisions_acked : int;
  quarantines_acked : int;
  degraded_replies : int;  (** Unavailable/Crashed routing outcomes *)
  busy_replies : int;
  stalled_timeouts : int;
  served_while_impaired : int;
      (** ops completed by healthy shards while some shard was down *)
  fault_windows : int;
  replicas_destroyed : int;  (** replica files removed by loss windows *)
  replicas_corrupted : int;  (** replica files bit-flipped by corruption windows *)
  cache_destroyed : int;  (** cache replica files removed *)
  cache_corrupted : int;  (** cache replica files bit-flipped *)
  zombie_rejected : int;  (** fenced appends the split-brain zombies attempted *)
  zombie_accepted : int;  (** must be 0: stale appends that reached the disk *)
  cache_probe_fenced : int;  (** zombie cache writes refused at the fence *)
  cache_probe_accepted : int;  (** must be 0: stale cache writes gone durable *)
  scrub : Scrub.counters;  (** the post-campaign anti-entropy pass *)
  scrub_second : Scrub.counters;  (** must be all-healthy: repair is idempotent *)
  cache_scrub : Scrub.home_report option;  (** cache-surface anti-entropy pass *)
  cache_scrub_second : Scrub.home_report option;  (** must be healthy *)
  stats : Supervisor.stats;
  shards_killed : int;  (** distinct shards that went down *)
  shards_recovered : int;  (** distinct shards that came back *)
  invariants : invariant list;
}

let passed r = List.for_all (fun i -> i.ok) r.invariants

(* Per-home ledger of what the fleet acknowledged: the ground truth the
   final recovery is audited against. *)
type expect = {
  synth : Synth.home;
  mutable next_app : int;
  mutable next_seq : int;
  mutable installed : string list;
  mutable acked_seq : int;
  mutable decisions : (string * Policy.decision) list;
  mutable quarantined : string list;
  mutable threat_ids : string list;  (** ids seen in kept reports *)
}

type campaign = {
  cfg : config;
  dir : string;  (** the fleet root *)
  sup : Supervisor.t;
  schedule : scheduled list;
  rng : Random.State.t;  (** the workload stream — never consulted by faults *)
  now : float ref;
  expects : (string * expect) list;
  stalled : int array;  (** steps of withheld heartbeats left, per shard *)
  mutable pending_splits : int list;
      (** split-brain victims still waiting for a live worker to wedge *)
  mutable zombies : Shard.t list;  (** wedged workers still holding writers *)
  mutable zombie_rejected : int;
  mutable zombie_accepted : int;
  mutable cache_probe_fenced : int;
  mutable cache_probe_accepted : int;
  mutable replicas_destroyed : int;
  mutable replicas_corrupted : int;
  mutable cache_destroyed : int;
  mutable cache_corrupted : int;
  mutable fault_steps_left : int;
  mutable fault_windows : int;
  mutable ops : int;
  mutable busy : int;
  mutable degraded : int;
  mutable stalled_timeouts : int;
  mutable served_while_impaired : int;
  mutable false_clean : int;
  mutable outcomes_checked : int;
  mutable killed : int list;  (** distinct shards seen down *)
  mutable recovered : int list;  (** distinct killed shards seen back up *)
}

let add_distinct x xs = if List.mem x xs then xs else x :: xs

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  n = 0
  ||
  let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
  at 0

let impaired c =
  List.exists
    (fun i -> Supervisor.shard_state c.sup i <> `Running)
    (List.init c.cfg.shards Fun.id)

(* Structural invariant-4 accounting: every reply passes through here. *)
let classify c reply =
  c.ops <- c.ops + 1;
  let was_impaired = impaired c in
  (match reply with
  | Supervisor.Done _ -> if was_impaired then
      c.served_while_impaired <- c.served_while_impaired + 1
  | Supervisor.Unavailable _ | Supervisor.Crashed _ ->
    c.degraded <- c.degraded + 1;
    c.outcomes_checked <- c.outcomes_checked + 1;
    if Shed.conclusive (Supervisor.to_outcome reply) then
      c.false_clean <- c.false_clean + 1);
  reply

let check_audit_outcome c = function
  | Broker.Audited { result; degraded; _ } ->
    c.outcomes_checked <- c.outcomes_checked + 1;
    if result.Detector.shed > 0 && not degraded then
      c.false_clean <- c.false_clean + 1
  | Broker.Shed_job _ -> c.outcomes_checked <- c.outcomes_checked + 1

(* -- workload ops ------------------------------------------------------------- *)

let op_install c (id, ex) =
  if ex.next_app < List.length ex.synth.Synth.apps then begin
    let app = List.nth ex.synth.Synth.apps ex.next_app in
    let name = app.App_entry.name and source = app.App_entry.source in
    match
      classify c
        (Supervisor.run c.sup ~home:id (fun sh ->
             let broker = Shard.broker sh in
             match Broker.install broker ~home:id ~name ~source () with
             | Broker.Proposed { report; degraded; _ } ->
               Home.decide (Broker.home broker id) Install_flow.Keep;
               `Kept (report, degraded)
             | Broker.Busy { retry_after_ms } -> `Busy retry_after_ms
             | Broker.Quarantined_app _ -> `Refused
             | Broker.Install_failed { quarantined; _ } -> `Failed quarantined))
    with
    | Supervisor.Done { value = `Kept (report, degraded); _ } ->
      c.outcomes_checked <- c.outcomes_checked + 1;
      if report.Install_flow.audit.Detector.shed > 0 && not degraded then
        c.false_clean <- c.false_clean + 1;
      ex.installed <- add_distinct name ex.installed;
      ex.next_app <- ex.next_app + 1;
      ex.threat_ids <-
        List.fold_left
          (fun acc th -> add_distinct (Policy.threat_id th) acc)
          ex.threat_ids report.Install_flow.threats;
      `Acked_install
    | Supervisor.Done { value = `Busy _; _ } ->
      c.busy <- c.busy + 1;
      `Other
    | Supervisor.Done { value = `Failed quarantined; _ } ->
      if quarantined then ex.quarantined <- add_distinct name ex.quarantined;
      ex.next_app <- ex.next_app + 1;  (* don't wedge on a poisoned app *)
      `Other
    | Supervisor.Done { value = `Refused; _ } ->
      ex.next_app <- ex.next_app + 1;
      `Other
    | Supervisor.Unavailable _ | Supervisor.Crashed _ -> `Other
  end
  else `Other

let op_deliver c (id, ex) =
  match ex.synth.Synth.configs with
  | [] -> `Other
  | configs ->
    let uri = List.nth configs (ex.next_seq mod List.length configs) in
    let seq = ex.next_seq + 1 in
    (match classify c (Supervisor.deliver c.sup ~home:id ~seq uri) with
    | Supervisor.Done { value = Home.Accepted _; _ } ->
      ex.next_seq <- seq;
      ex.acked_seq <- max ex.acked_seq seq;
      `Acked_config
    | Supervisor.Done { value = Home.Malformed _; _ } ->
      ex.next_seq <- seq;
      `Other
    | Supervisor.Unavailable _ | Supervisor.Crashed _ -> `Other)

let op_decision c (id, ex) =
  match ex.threat_ids with
  | [] -> `Other
  | ids ->
    let tid = List.nth ids (Random.State.int c.rng (List.length ids)) in
    let d = if Random.State.bool c.rng then Policy.Allow else Policy.Confirm in
    (match
       classify c
         (Supervisor.run c.sup ~home:id (fun sh ->
              Home.set_decision (Broker.home (Shard.broker sh) id) tid d))
     with
    | Supervisor.Done _ ->
      ex.decisions <- (tid, d) :: List.remove_assoc tid ex.decisions;
      `Acked_decision
    | Supervisor.Unavailable _ | Supervisor.Crashed _ -> `Other)

let op_quarantine c (id, ex) =
  match ex.installed with
  | [] -> `Other
  | apps ->
    let app = List.nth apps (Random.State.int c.rng (List.length apps)) in
    (match
       classify c
         (Supervisor.run c.sup ~home:id (fun sh ->
              Home.quarantine
                (Broker.home (Shard.broker sh) id)
                ~app ~reason:"chaos-injected"))
     with
    | Supervisor.Done _ ->
      ex.quarantined <- add_distinct app ex.quarantined;
      `Acked_quarantine
    | Supervisor.Unavailable _ | Supervisor.Crashed _ -> `Other)

let op_audit c (id, _ex) =
  match classify c (Supervisor.submit_audit c.sup ~home:id ()) with
  | Supervisor.Done { value = Ok _; shard } -> (
    match classify c (Supervisor.drain c.sup ~shard) with
    | Supervisor.Done { value = outcomes; _ } ->
      List.iter (check_audit_outcome c) outcomes;
      `Other
    | Supervisor.Unavailable _ | Supervisor.Crashed _ -> `Other)
  | Supervisor.Done { value = Error _; _ } ->
    c.busy <- c.busy + 1;
    `Other
  | Supervisor.Unavailable _ | Supervisor.Crashed _ -> `Other

(* -- damage windows ----------------------------------------------------------- *)

let home_files = [ "snapshot"; "journal" ]
let cache_files = [ "cache.snapshot"; "cache.journal" ]

(* The cache surface's replica roots, mirroring the supervisor's layout:
   primary at [dir/vcache], replica [k] at [dir/r<k>/vcache]. *)
let cache_dirs ~fleet_dir ~replicas =
  Filename.concat fleet_dir "vcache"
  :: List.init
       (max 0 (replicas - 1))
       (fun k ->
         Filename.concat
           (Filename.concat fleet_dir (Printf.sprintf "r%d" (k + 1)))
           "vcache")

(* Flip one byte (a case-flip, so text and binary both corrupt) at a
   salt-chosen offset — bit rot with a schedule-replayable position. *)
let flip_byte path ~salt =
  Sys.file_exists path
  &&
  let size = (Unix.stat path).Unix.st_size in
  size > 0
  &&
  let off = salt mod size in
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      ignore (Unix.lseek fd off Unix.SEEK_SET);
      let b = Bytes.create 1 in
      Unix.read fd b 0 1 = 1
      && begin
           Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x20));
           ignore (Unix.lseek fd off Unix.SEEK_SET);
           ignore (Unix.write fd b 0 1);
           true
         end)

let remove_files dir files =
  List.fold_left
    (fun removed f ->
      let p = Filename.concat dir f in
      if Sys.file_exists p then begin
        (try Sys.remove p with Sys_error _ -> ());
        true
      end
      else removed)
    false files

(* Destroy one non-primary replica of the scheduled home — disk death.
   The home's live writer keeps appending to the unlinked inode; the
   next recovery or scrub recreates the replica from a surviving
   sibling. Quarantine sidecars are left alone: they are the durable
   damage evidence the loss invariants consult. *)
let destroy_replica c ~home ~replica =
  let id = fst (List.nth c.expects (home mod List.length c.expects)) in
  let dirs = Shard.home_dirs ~fleet_dir:c.dir ~replicas:c.cfg.replicas id in
  match List.tl dirs with
  | [] -> ()
  | victims ->
    let vdir = List.nth victims (replica mod List.length victims) in
    if remove_files vdir home_files then
      c.replicas_destroyed <- c.replicas_destroyed + 1

(* Flip one byte in one replica file of the scheduled home — bit rot.
   May hit the primary: read-repair must heal whichever copy is
   damaged. *)
let corrupt_replica c ~home ~replica ~file ~salt =
  let id = fst (List.nth c.expects (home mod List.length c.expects)) in
  let dirs = Shard.home_dirs ~fleet_dir:c.dir ~replicas:c.cfg.replicas id in
  let vdir = List.nth dirs (replica mod List.length dirs) in
  let path = Filename.concat vdir (List.nth home_files (file mod 2)) in
  if flip_byte path ~salt then c.replicas_corrupted <- c.replicas_corrupted + 1

(* Same two windows for the verdict-cache surface: the cache is a
   durable replica set like any home journal, so it gets the same
   treatment — destruction spares the primary, corruption does not. *)
let destroy_cache_replica c ~replica =
  if c.cfg.vcache then
    match List.tl (cache_dirs ~fleet_dir:c.dir ~replicas:c.cfg.replicas) with
    | [] -> ()
    | victims ->
      let vdir = List.nth victims (replica mod List.length victims) in
      if remove_files vdir cache_files then
        c.cache_destroyed <- c.cache_destroyed + 1

let corrupt_cache_replica c ~replica ~file ~salt =
  if c.cfg.vcache then begin
    let dirs = cache_dirs ~fleet_dir:c.dir ~replicas:c.cfg.replicas in
    let vdir = List.nth dirs (replica mod List.length dirs) in
    let path = Filename.concat vdir (List.nth cache_files (file mod 2)) in
    if flip_byte path ~salt then c.cache_corrupted <- c.cache_corrupted + 1
  end

(* Drive every wedged worker's handles once a successor epoch has been
   granted (the "revive after rebalance" moment): each journaling
   attempt — home journal and verdict cache alike — must be fenced. An
   append that reaches the disk is a stale write accepted — the
   split-brain failure this harness exists to catch. *)
let drive_zombies c =
  List.iter
    (fun z ->
      List.iter
        (fun (_, h) ->
          (* if no successor epoch was ever granted (the slot died past
             its restart budget before any reopen), grant it now:
             ownership always moves before a wedged worker revives,
             never the other way around *)
          if Fence.current (Home.dir h) <= Home.epoch h then
            ignore (Fence.acquire (Home.dir h) (Home.epoch h + 1) : int);
          if Fence.current (Home.dir h) > Home.epoch h then
            match Home.set_decision h "chaos-zombie" Policy.Allow with
            | () -> c.zombie_accepted <- c.zombie_accepted + 1
            | exception Fence.Stale _ -> c.zombie_rejected <- c.zombie_rejected + 1
            | exception Fault.Crashed _ ->
              (* the fence passed (it is checked first) and then a
                 storage fault killed the write: still a stale append
                 that was let through *)
              c.zombie_accepted <- c.zombie_accepted + 1)
        (Broker.homes (Shard.broker z));
      (* the zombie's retained verdict-cache handle gets the same
         treatment: grant the successor ownership epoch if the real
         replacement never attached, then probe one durable write *)
      match Shard.vcache z with
      | None -> ()
      | Some h ->
        let k = Vcache.fence_key h and e = Vcache.handle_epoch h in
        if Fence.current k <= e then ignore (Fence.acquire k (e + 1) : int);
        (match Vcache.probe_write h with
        | `Fenced -> c.cache_probe_fenced <- c.cache_probe_fenced + 1
        | `Accepted -> c.cache_probe_accepted <- c.cache_probe_accepted + 1
        | `Dropped ->
          (* fence passed, storage fault killed the append: a stale
             write let through, same rule as the home path *)
          c.cache_probe_accepted <- c.cache_probe_accepted + 1))
    c.zombies

(* -- the campaign loop -------------------------------------------------------- *)

(* Wedge the first running shard at or after the scheduled victim — a
   split-brain needs a live worker to turn into a zombie. [false] when
   no shard is running: the caller keeps the window open and retries
   next step, so a scheduled split-brain is never silently skipped. *)
let try_wedge c victim =
  let cfg = c.cfg in
  let rec go k =
    k < cfg.shards
    &&
    let v = (victim + k) mod cfg.shards in
    match Supervisor.wedge c.sup v with
    | Some z ->
      c.killed <- add_distinct v c.killed;
      c.zombies <- z :: c.zombies;
      true
    | None -> go (k + 1)
  in
  go 0

let fire c ev =
  let cfg = c.cfg in
  match ev with
  | Kill { victim } ->
    let v = victim mod cfg.shards in
    if Supervisor.kill c.sup v then c.killed <- add_distinct v c.killed
  | Stall { victim } ->
    (* withhold beats long enough to blow the heartbeat window *)
    c.stalled.(victim mod cfg.shards) <- 8
  | Storage_window { mode; salt } ->
    if c.fault_steps_left = 0 then begin
      Fault.arm_storage ~seed:salt ~rate_per_thousand:80
        storage_modes.(mode mod Array.length storage_modes);
      c.fault_windows <- c.fault_windows + 1;
      c.fault_steps_left <- 8
    end
  | Replica_destroy { home; replica } -> destroy_replica c ~home ~replica
  | Replica_corrupt { home; replica; file; salt } ->
    corrupt_replica c ~home ~replica ~file ~salt
  | Cache_destroy { replica } -> destroy_cache_replica c ~replica
  | Cache_corrupt { replica; file; salt } ->
    corrupt_cache_replica c ~replica ~file ~salt
  | Split_brain { victim } ->
    c.pending_splits <- c.pending_splits @ [ victim mod cfg.shards ]

let note_states c =
  List.iter
    (fun i ->
      match Supervisor.shard_state c.sup i with
      | `Restarting | `Dead -> c.killed <- add_distinct i c.killed
      | `Running ->
        if List.mem i c.killed then c.recovered <- add_distinct i c.recovered)
    (List.init c.cfg.shards Fun.id)

let step c ~step_index counters =
  let cfg = c.cfg in
  (* close an elapsed storage-fault window *)
  if c.fault_steps_left > 0 then begin
    c.fault_steps_left <- c.fault_steps_left - 1;
    if c.fault_steps_left = 0 then Fault.disarm_storage ()
  end;
  (* fire this step's scheduled faults *)
  List.iter (fun s -> if s.at = step_index then fire c s.ev) c.schedule;
  (* split-brain windows that found no live worker retry each step *)
  c.pending_splits <- List.filter (fun v -> not (try_wedge c v)) c.pending_splits;
  drive_zombies c;
  (* workload: a couple of ops against random homes; ops to a stalled
     shard time out instead of completing (a wedged worker does not
     answer) *)
  let n_ops = 1 + Random.State.int c.rng 2 in
  for _ = 1 to n_ops do
    let home = List.nth c.expects (Random.State.int c.rng (List.length c.expects)) in
    let target = Supervisor.owner_of c.sup (fst home) in
    let target_stalled =
      match target with Some i -> c.stalled.(i) > 0 | None -> false
    in
    if target = None then
      (* the whole fleet is dead: the home has no owner left, so the
         op degrades instead of routing *)
      c.degraded <- c.degraded + 1
    else if target_stalled then c.stalled_timeouts <- c.stalled_timeouts + 1
    else begin
      let r = Random.State.int c.rng 100 in
      let res =
        if r < 45 then op_install c home
        else if r < 75 then op_deliver c home
        else if r < 85 then op_decision c home
        else if r < 90 then op_quarantine c home
        else if r < 90 + (cfg.audit_per_thousand / 10) then op_audit c home
        else op_deliver c home
      in
      (match res with
      | `Acked_install -> counters.(0) <- counters.(0) + 1
      | `Acked_config -> counters.(1) <- counters.(1) + 1
      | `Acked_decision -> counters.(2) <- counters.(2) + 1
      | `Acked_quarantine -> counters.(3) <- counters.(3) + 1
      | `Other -> ())
    end
  done;
  (* heartbeats from every live, un-stalled shard; then advance time
     and run a supervision pass *)
  List.iter
    (fun i ->
      if c.stalled.(i) > 0 then c.stalled.(i) <- c.stalled.(i) - 1
      else Supervisor.beat c.sup i)
    (List.init cfg.shards Fun.id);
  c.now := !(c.now) +. cfg.step_ms;
  Supervisor.tick c.sup;
  note_states c

(* -- final verification ------------------------------------------------------- *)

let subset ~of_:ys xs = List.for_all (fun x -> List.mem x ys) xs

type recovered_home = {
  r_installed : string list;
  r_decisions : (string * Policy.decision) list;
  r_quarantined : string list;
  r_last_seq : int;
  r_text : string;
  r_text2 : string;  (** second, independent recovery *)
  r_honest_damage : bool;  (** some recovery surfaced damage for this home *)
}

let recover_home ~fleet_dir ~replicas ~campaign_damage id =
  let dirs = Shard.home_dirs ~fleet_dir ~replicas id in
  let dir = List.hd dirs and extra = List.tl dirs in
  (* first open repairs (truncates torn tails, quarantines corrupt
     frames, merges the replicas); the determinism check is over the
     two subsequent recoveries of the repaired journal *)
  let h1, r1 = Home.open_ ~fsync:false ~replicas:extra ~dir () in
  let r_installed =
    List.map (fun (a : Rule.smartapp) -> a.Rule.name) (Home.installed_apps h1)
  in
  let r_decisions = Policy.decisions (Install_flow.policies (Home.flow h1)) in
  let r_quarantined = List.map fst (Home.quarantined h1) in
  let r_last_seq = Home.last_seq h1 in
  let r_text = Home.state_text h1 in
  Home.close h1;
  let h2, r2 = Home.open_ ~fsync:false ~replicas:extra ~dir () in
  let r_text2 = Home.state_text h2 in
  Home.close h2;
  (* With replication the loss carve-out tightens: a damaged replica
     whose records survived on a sibling lost nothing (the merge heals
     it), so damage is honest only when some file's every replica was
     damaged or missing. For a single replica this is the old rule. *)
  let damaged (r : Home.recovery_report) =
    (r.Home.quarantined > 0 && r.Home.all_replicas_damaged)
    || r.Home.skipped_events > 0
  in
  (* The quarantine sidecar is the durable form of the same evidence:
     an in-memory recovery report can be lost when the recovering open
     itself crashes on a later home (the journal repair it already
     performed persists, so the retry replays clean), but the sidecar
     written by that repair survives any number of restarts. Every
     replica directory must show corruption for the carve-out to hold. *)
  let sidecar_corruption =
    List.for_all (fun d -> Home.surfaced_corruption ~dir:d () > 0) dirs
  in
  {
    r_installed;
    r_decisions;
    r_quarantined;
    r_last_seq;
    r_text;
    r_text2;
    r_honest_damage =
      campaign_damage || damaged r1 || damaged r2 || sidecar_corruption;
  }

let cache_scrub_text (r : Scrub.home_report) =
  Printf.sprintf
    "converged=%b repaired=%d recreated=%d quarantined=%d healed=%d \
     patched-frames=%d repair-bytes=%d"
    r.Scrub.converged r.Scrub.repaired_replicas r.Scrub.recreated_replicas
    r.Scrub.frames_quarantined r.Scrub.records_healed r.Scrub.patched_frames
    r.Scrub.repair_bytes

(* Cache invariants, against [live] (the dump captured just before the
   final shutdown) and [totals] (the summed shard counters):
   - no stale-epoch cache byte: every zombie probe was fenced, no
     [~chaos/] record reached any replica file and none survives into a
     warm reopen, and no frame is epoch-stamped below a predecessor;
   - two independent reopens of the cache journal replay to
     byte-identical state (the kill-mid-cache-write case: whatever
     prefix survived, it replays deterministically);
   - no poisoned entry: a reopened entry for a key the live fleet held
     never flips verdict kind (torn/corrupt frames must be dropped, not
     decoded into a different verdict);
   - no conflicts: no fresh solve ever contradicted a cached decisive
     verdict — the abstraction-soundness alarm stayed silent;
   - warm restart: the reopened cache holds entries whenever any entry
     was durably journaled (honest-loss carve-out for surfaced frame
     damage, same as the home-journal invariants);
   - warm equals cold: re-auditing every home against the warm reopened
     cache renders byte-identically to an uncached audit;
   - cache-scrub convergence and idempotence (from the pre-shutdown
     {!Supervisor.scrub_cache} passes). *)
let verify_cache c ~fleet_dir ~live ~totals ~cscrub ~cscrub2 =
  match (live, totals) with
  | None, _ | _, None -> []
  | Some live, Some (totals : Vcache.counters) ->
    let cdirs = cache_dirs ~fleet_dir ~replicas:c.cfg.replicas in
    (* durable stale-write evidence, scanned before any reopen rewrites
       the replica files *)
    let chaos_records, cache_regressions =
      List.fold_left
        (fun acc d ->
          List.fold_left
            (fun (ck, er) f ->
              let sc = Journal.scan (Filename.concat d f) in
              ( ck
                + List.length
                    (List.filter (contains ~sub:"~chaos/") sc.Journal.records),
                er + sc.Journal.epoch_regressions ))
            acc cache_files)
        (0, 0) cdirs
    in
    let dir = List.hd cdirs and crep = List.tl cdirs in
    let st1 = Vcache.open_store ~fsync:false ~replicas:crep ~dir () in
    let d1 = Vcache.dump st1 in
    let dmg = Vcache.replay_damage st1 in
    let n1 = Vcache.entries st1 in
    Vcache.close_store st1;
    let st2 = Vcache.open_store ~fsync:false ~replicas:crep ~dir () in
    let d2 = Vcache.dump st2 in
    Vcache.close_store st2;
    let chaos_dump = List.filter (fun (k, _) -> contains ~sub:"~chaos/" k) d1 in
    let kind e = if e = "" then '?' else e.[0] in
    let poisoned =
      List.filter
        (fun (k, e) ->
          match List.assoc_opt k live with
          | Some le -> kind e <> kind le
          | None -> false)
        d1
    in
    (* warm-vs-cold: the reopened cache must never change an audit *)
    let stw = Vcache.open_store ~fsync:false ~replicas:crep ~dir () in
    let hw = Vcache.attach stw ~owner:"warm-audit" in
    let warm_bad =
      List.filter_map
        (fun (id, _) ->
          let dirs = Shard.home_dirs ~fleet_dir ~replicas:c.cfg.replicas id in
          let hdir = List.hd dirs and extra = List.tl dirs in
          let hwarm, _ =
            Home.open_ ~fsync:false ~replicas:extra
              ~configure:(Vcache.configure hw) ~dir:hdir ()
          in
          let warm = Home.audit_text hwarm in
          Home.close hwarm;
          let hcold, _ = Home.open_ ~fsync:false ~replicas:extra ~dir:hdir () in
          let cold = Home.audit_text hcold in
          Home.close hcold;
          if warm = cold then None else Some id)
        c.expects
    in
    Vcache.close_store stw;
    let inv name ok detail = { name; ok; detail } in
    let list = function [] -> "" | ids -> ": " ^ String.concat "," ids in
    let scrub_invs =
      match (cscrub, cscrub2) with
      | Some (r1 : Scrub.home_report), Some (r2 : Scrub.home_report) ->
        [
          inv "cache-scrub-convergence" r1.Scrub.converged (cache_scrub_text r1);
          inv "cache-scrub-idempotent"
            (r2.Scrub.healthy && r2.Scrub.converged && r2.Scrub.repair_bytes = 0)
            (cache_scrub_text r2);
        ]
      | _ -> []
    in
    [
      inv "cache-no-stale-epoch-byte"
        (c.cache_probe_accepted = 0 && chaos_records = 0 && chaos_dump = []
        && cache_regressions = 0)
        (Printf.sprintf
           "%d probe(s) fenced, %d accepted, %d chaos record(s) on disk, %d \
            reopened, %d epoch regression(s)"
           c.cache_probe_fenced c.cache_probe_accepted chaos_records
           (List.length chaos_dump) cache_regressions);
      inv "cache-replay-determinism" (d1 = d2)
        (Printf.sprintf "%d entries reopened twice, %d damaged frame(s) dropped"
           (List.length d1) dmg);
      inv "cache-no-poisoned-entry" (poisoned = [])
        (Printf.sprintf "%d reopened entries checked against live state%s"
           (List.length d1)
           (match poisoned with
           | [] -> ""
           | ps -> ": " ^ String.concat "," (List.map fst ps)));
      inv "cache-no-conflicts"
        (totals.Vcache.conflicts = 0)
        (Printf.sprintf "hits=%d misses=%d conflicts=%d" totals.Vcache.hits
           totals.Vcache.misses totals.Vcache.conflicts);
      inv "cache-warm-restart"
        (n1 > 0 || totals.Vcache.inserts = 0 || dmg > 0)
        (Printf.sprintf "entries=%d inserts=%d evicts=%d journal-drops=%d" n1
           totals.Vcache.inserts totals.Vcache.evicts totals.Vcache.journal_drops);
      inv "cache-warm-equals-cold" (warm_bad = [])
        (Printf.sprintf "%d home(s) audited warm vs cold%s"
           (List.length c.expects) (list warm_bad));
    ]
    @ scrub_invs

let verify c ~fleet_dir =
  let campaign_damaged =
    (* homes whose mid-campaign recoveries already surfaced possible
       loss — damage on every replica, or undecodable records *)
    List.filter_map
      (fun (id, (r : Home.recovery_report)) ->
        if
          (r.Home.quarantined > 0 && r.Home.all_replicas_damaged)
          || r.Home.skipped_events > 0
        then Some id
        else None)
      (Supervisor.recoveries c.sup)
  in
  let recovered =
    List.map
      (fun (id, ex) ->
        ( id,
          ex,
          recover_home ~fleet_dir ~replicas:c.cfg.replicas
            ~campaign_damage:(List.mem id campaign_damaged)
            id ))
      c.expects
  in
  let inv name ok detail = { name; ok; detail } in
  let failures pred =
    List.filter_map (fun (id, ex, r) -> if pred ex r then None else Some id) recovered
  in
  let inv1_bad =
    failures (fun ex r ->
        r.r_honest_damage
        || (subset ~of_:r.r_installed ex.installed && ex.acked_seq <= r.r_last_seq))
  in
  let inv2_bad = failures (fun _ r -> r.r_text = r.r_text2) in
  let inv3_bad =
    failures (fun ex r ->
        r.r_honest_damage
        || (subset ~of_:r.r_quarantined ex.quarantined
           && subset ~of_:r.r_decisions ex.decisions))
  in
  let honest = List.length (List.filter (fun (_, _, r) -> r.r_honest_damage) recovered) in
  let list = function [] -> "" | ids -> ": " ^ String.concat "," ids in
  [
    inv "no-acked-loss" (inv1_bad = [])
      (Printf.sprintf
         "%d installs, %d configs acked across %d homes; %d home(s) with \
          surfaced damage%s"
         (List.fold_left (fun a (_, ex, _) -> a + List.length ex.installed) 0 recovered)
         (List.fold_left (fun a (_, ex, _) -> a + ex.acked_seq) 0 recovered)
         (List.length recovered) honest (list inv1_bad));
    inv "replay-determinism" (inv2_bad = [])
      (Printf.sprintf "%d homes recovered twice%s" (List.length recovered)
         (list inv2_bad));
    inv "quarantine-decision-survival" (inv3_bad = [])
      (Printf.sprintf "%d decisions, %d quarantines acked%s"
         (List.fold_left (fun a (_, ex, _) -> a + List.length ex.decisions) 0 recovered)
         (List.fold_left (fun a (_, ex, _) -> a + List.length ex.quarantined) 0 recovered)
         (list inv3_bad));
    inv "no-false-clean-bill" (c.false_clean = 0)
      (Printf.sprintf "%d outcome(s) checked, %d false clean" c.outcomes_checked
         c.false_clean);
  ]

(* -- entry point -------------------------------------------------------------- *)

let run ?(config = default_config) ?schedule ~dir () =
  if config.shards < 1 || config.homes < 1 || config.steps < 1 then
    invalid_arg "Chaos.run: shards, homes and steps must be positive";
  let schedule =
    match schedule with Some s -> s | None -> schedule_of_config config
  in
  let rng = Random.State.make [| 0xc4a05; config.seed |] in
  let synth_homes = Corpus.synth ~seed:config.seed ~n_homes:config.homes in
  let now = ref 0.0 in
  let clock () = !now in
  let sup_config =
    {
      Supervisor.default_config with
      Supervisor.shards = config.shards;
      replicas = config.replicas;
      heartbeat_interval_ms = config.step_ms *. 2.0;
      miss_threshold = 3;
      failure_threshold = 2;
      reset_timeout_ms = config.step_ms *. 4.0;
      half_open_probes = 2;
      restart_budget = 6;
      backoff_base_ms = config.step_ms;
      backoff_cap_ms = config.step_ms *. 10.0;
      seed = config.seed;
      fsync = false;
      clock;
      broker = { Broker.default_config with Broker.clock = clock };
      vcache = config.vcache;
    }
  in
  let sup =
    Supervisor.create ~config:sup_config ~dir
      ~homes:(List.map (fun h -> h.Synth.id) synth_homes)
      ()
  in
  let c =
    {
      cfg = config;
      dir;
      sup;
      schedule;
      rng;
      now;
      expects =
        List.map
          (fun h ->
            ( h.Synth.id,
              {
                synth = h;
                next_app = 0;
                next_seq = 0;
                installed = [];
                acked_seq = 0;
                decisions = [];
                quarantined = [];
                threat_ids = [];
              } ))
          synth_homes;
      stalled = Array.make config.shards 0;
      pending_splits = [];
      zombies = [];
      zombie_rejected = 0;
      zombie_accepted = 0;
      cache_probe_fenced = 0;
      cache_probe_accepted = 0;
      replicas_destroyed = 0;
      replicas_corrupted = 0;
      cache_destroyed = 0;
      cache_corrupted = 0;
      fault_steps_left = 0;
      fault_windows = 0;
      ops = 0;
      busy = 0;
      degraded = 0;
      stalled_timeouts = 0;
      served_while_impaired = 0;
      false_clean = 0;
      outcomes_checked = 0;
      killed = [];
      recovered = [];
    }
  in
  let counters = Array.make 4 0 in
  Fun.protect
    ~finally:(fun () ->
      Fault.disarm ();
      Fault.disarm_storage ();
      Fault.reset_sleeper ();
      Budget.reset_clock ())
  @@ fun () ->
  (* injected stalls advance the campaign's virtual clock instead of
     blocking real time, and solver deadlines poll the same clock — a
     whole campaign with stall windows costs no wall-clock sleeps *)
  Fault.set_sleeper (fun ms -> now := !now +. ms);
  Budget.set_clock (fun () -> !now /. 1000.0);
  for step_index = 1 to config.steps do
    step c ~step_index counters
  done;
  Fault.disarm_storage ();
  c.fault_steps_left <- 0;
  (* settle: let every pending restart complete (or exhaust its budget
     and rebalance) before verifying *)
  let settled = ref 0 in
  while
    !settled < 200
    && List.exists
         (fun i -> Supervisor.shard_state c.sup i = `Restarting)
         (List.init config.shards Fun.id)
  do
    incr settled;
    c.now := !(c.now) +. config.step_ms;
    Supervisor.beat_all c.sup;
    Supervisor.tick c.sup;
    note_states c
  done;
  (* split-brain epilogue: give every zombie one last revived write
     attempt, then close its writers before anything rewrites files *)
  drive_zombies c;
  List.iter (fun z -> try Shard.close z with _ -> ()) c.zombies;
  (* durable fingerprint of any accepted stale append: a frame stamped
     below the running epoch maximum. Scanned before scrub and final
     recovery rewrite (and so re-stamp) the files. *)
  let epoch_regressions =
    List.fold_left
      (fun acc (id, _) ->
        List.fold_left
          (fun acc d ->
            List.fold_left
              (fun acc f -> acc + (Journal.scan f).Journal.epoch_regressions)
              acc
              [ Filename.concat d "snapshot"; Filename.concat d "journal" ])
          acc
          (Shard.home_dirs ~fleet_dir:dir ~replicas:config.replicas id))
      0 c.expects
  in
  let scrub = Supervisor.scrub c.sup in
  let scrub_second = Supervisor.scrub c.sup in
  let cache_scrub = Supervisor.scrub_cache c.sup in
  let cache_scrub_second = Supervisor.scrub_cache c.sup in
  let stats = Supervisor.stats c.sup in
  let live_cache = Option.map Vcache.dump (Supervisor.vcache_store c.sup) in
  Supervisor.close c.sup;
  let inv name ok detail = { name; ok; detail } in
  let replication_invariants =
    [
      inv "no-stale-epoch-accepted"
        (c.zombie_accepted = 0 && epoch_regressions = 0)
        (Printf.sprintf
           "%d zombie append(s) fenced, %d accepted, %d epoch regression(s) on \
            disk, %d stale replies"
           c.zombie_rejected c.zombie_accepted epoch_regressions
           stats.Supervisor.stale_replies);
      inv "scrub-convergence"
        (scrub.Scrub.unconverged = 0)
        (Scrub.counters_text scrub);
      inv "scrub-idempotent"
        (scrub_second.Scrub.unconverged = 0
        && scrub_second.Scrub.repaired_homes = 0
        && scrub_second.Scrub.healthy = scrub_second.Scrub.homes)
        (Scrub.counters_text scrub_second);
    ]
  in
  let invariants =
    verify c ~fleet_dir:dir
    @ replication_invariants
    @ verify_cache c ~fleet_dir:dir ~live:live_cache
        ~totals:stats.Supervisor.cache ~cscrub:cache_scrub
        ~cscrub2:cache_scrub_second
  in
  {
    config;
    schedule;
    ops = c.ops;
    installs_acked = counters.(0);
    configs_acked = counters.(1);
    decisions_acked = counters.(2);
    quarantines_acked = counters.(3);
    degraded_replies = c.degraded;
    busy_replies = c.busy;
    stalled_timeouts = c.stalled_timeouts;
    served_while_impaired = c.served_while_impaired;
    fault_windows = c.fault_windows;
    replicas_destroyed = c.replicas_destroyed;
    replicas_corrupted = c.replicas_corrupted;
    cache_destroyed = c.cache_destroyed;
    cache_corrupted = c.cache_corrupted;
    zombie_rejected = c.zombie_rejected;
    zombie_accepted = c.zombie_accepted;
    cache_probe_fenced = c.cache_probe_fenced;
    cache_probe_accepted = c.cache_probe_accepted;
    scrub;
    scrub_second;
    cache_scrub;
    cache_scrub_second;
    stats;
    shards_killed = List.length c.killed;
    shards_recovered = List.length c.recovered;
    invariants;
  }

(* -- the shrinker ------------------------------------------------------------- *)

let violates r ~invariant =
  List.exists (fun i -> i.name = invariant && not i.ok) r.invariants

let split_chunks n xs =
  let len = List.length xs in
  let base = len / n and rem = len mod n in
  let rec take k xs acc =
    if k = 0 then (List.rev acc, xs)
    else match xs with [] -> (List.rev acc, []) | h :: t -> take (k - 1) t (h :: acc)
  in
  let rec go i xs acc =
    if i >= n then List.rev acc
    else
      let chunk, rest = take (base + if i < rem then 1 else 0) xs [] in
      go (i + 1) rest (chunk :: acc)
  in
  go 0 xs []

let rec mkdir_p d =
  if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let shrink ?(config = smoke_config) ?(enforce_fence = true) ~dir ~invariant
    schedule =
  let trials = ref 0 in
  let fails sched =
    incr trials;
    let tdir = Filename.concat dir (Printf.sprintf "trial-%04d" !trials) in
    mkdir_p tdir;
    let campaign () = run ~config ~schedule:sched ~dir:tdir () in
    let r =
      if enforce_fence then campaign ()
      else begin
        (* the deliberately reintroduced split-brain bug: trials run
           with the fence disabled, restored on every exit path *)
        Fence.set_enforced false;
        Fun.protect ~finally:(fun () -> Fence.set_enforced true) campaign
      end
    in
    violates r ~invariant
  in
  if not (fails schedule) then
    invalid_arg "Chaos.shrink: the schedule does not violate the invariant";
  (* classic ddmin over the event list: try each chunk alone, then each
     complement, doubling granularity until single events *)
  let rec ddmin events n =
    let len = List.length events in
    if len <= 1 || n > len then events
    else
      let chunks = split_chunks n events in
      match
        List.find_opt (fun ch -> ch <> [] && List.length ch < len && fails ch) chunks
      with
      | Some ch -> ddmin ch 2
      | None -> (
        let complements =
          List.mapi
            (fun i _ -> List.concat (List.filteri (fun j _ -> j <> i) chunks))
            chunks
        in
        match
          List.find_opt
            (fun comp -> comp <> [] && List.length comp < len && fails comp)
            complements
        with
        | Some comp -> ddmin comp (max 2 (n - 1))
        | None -> if n < len then ddmin events (min len (2 * n)) else events)
  in
  let minimal = ddmin schedule 2 in
  (minimal, !trials)

(* -- rendering ---------------------------------------------------------------- *)

let render r =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf
       "chaos campaign: seed=%d shards=%d homes=%d steps=%d\n" r.config.seed
       r.config.shards r.config.homes r.config.steps);
  let count p = List.length (List.filter (fun s -> p s.ev) r.schedule) in
  Buffer.add_string b
    (Printf.sprintf
       "schedule: events=%d kills=%d stalls=%d storage-windows=%d \
        replica-loss=%d replica-corrupt=%d cache-loss=%d cache-corrupt=%d \
        splits=%d\n"
       (List.length r.schedule)
       (count (function Kill _ -> true | _ -> false))
       (count (function Stall _ -> true | _ -> false))
       (count (function Storage_window _ -> true | _ -> false))
       (count (function Replica_destroy _ -> true | _ -> false))
       (count (function Replica_corrupt _ -> true | _ -> false))
       (count (function Cache_destroy _ -> true | _ -> false))
       (count (function Cache_corrupt _ -> true | _ -> false))
       (count (function Split_brain _ -> true | _ -> false)));
  Buffer.add_string b
    (Printf.sprintf
       "workload: ops=%d acked installs=%d configs=%d decisions=%d \
        quarantines=%d busy=%d degraded=%d stalled-timeouts=%d\n"
       r.ops r.installs_acked r.configs_acked r.decisions_acked
       r.quarantines_acked r.busy_replies r.degraded_replies r.stalled_timeouts);
  Buffer.add_string b
    (Printf.sprintf
       "faults: windows=%d kills=%d restarts=%d breaker-trips=%d \
        rebalanced-homes=%d dead-shards=%d\n"
       r.fault_windows r.stats.Supervisor.kills r.stats.Supervisor.restarts
       r.stats.Supervisor.breaker_trips r.stats.Supervisor.rebalanced_homes
       r.stats.Supervisor.dead_shards);
  Buffer.add_string b
    (Printf.sprintf
       "isolation: shards-killed=%d shards-recovered=%d served-while-impaired=%d\n"
       r.shards_killed r.shards_recovered r.served_while_impaired);
  Buffer.add_string b
    (Printf.sprintf
       "replication: replicas=%d destroyed=%d corrupted=%d split-brains=%d \
        zombie-rejected=%d zombie-accepted=%d stale-replies=%d\n"
       r.config.replicas r.replicas_destroyed r.replicas_corrupted
       r.config.split_brains r.zombie_rejected r.zombie_accepted
       r.stats.Supervisor.stale_replies);
  Buffer.add_string b (Printf.sprintf "scrub:   %s\n" (Scrub.counters_text r.scrub));
  Buffer.add_string b
    (Printf.sprintf "rescrub: %s\n" (Scrub.counters_text r.scrub_second));
  (match r.stats.Supervisor.cache with
  | None -> ()
  | Some cc ->
    Buffer.add_string b
      (Printf.sprintf "vcache: entries=%d %s\n" r.stats.Supervisor.cache_entries
         (Homeguard_vcache.Vcache.counters_text cc));
    Buffer.add_string b
      (Printf.sprintf
         "cache-replication: destroyed=%d corrupted=%d probes-fenced=%d \
          probes-accepted=%d\n"
         r.cache_destroyed r.cache_corrupted r.cache_probe_fenced
         r.cache_probe_accepted);
    (match r.cache_scrub with
    | Some cs ->
      Buffer.add_string b
        (Printf.sprintf "cache-scrub:   %s\n" (cache_scrub_text cs))
    | None -> ());
    (match r.cache_scrub_second with
    | Some cs ->
      Buffer.add_string b
        (Printf.sprintf "cache-rescrub: %s\n" (cache_scrub_text cs))
    | None -> ()));
  List.iter
    (fun i ->
      Buffer.add_string b
        (Printf.sprintf "invariant %-28s %s (%s)\n" i.name
           (if i.ok then "OK" else "VIOLATED")
           i.detail))
    r.invariants;
  Buffer.add_string b
    (if passed r then "campaign passed\n" else "campaign FAILED\n");
  Buffer.contents b
