(** Heartbeat health check for one shard.

    A live shard beats whenever it completes work (and on supervisor
    ticks while idle); the supervisor reads {!status} against the
    injectable clock. [Late] is informational; [Failed] — the shard
    missed [miss_threshold] whole beat intervals — is what triggers a
    supervised restart, catching the failure mode crash detection
    can't: a shard wedged mid-request ({!Homeguard_solver.Fault.Stall})
    that will never raise. *)

module Deadline = Homeguard_serve.Deadline

type t = {
  clock : Deadline.clock;
  interval_ms : float;
  miss_threshold : int;
  mutable last_beat : float;
  mutable beats : int;
}

type status = Alive | Late of int | Failed of int

let create ?(interval_ms = 1_000.0) ?(miss_threshold = 3) clock =
  if interval_ms <= 0.0 then invalid_arg "Health.create: interval_ms <= 0";
  if miss_threshold < 1 then invalid_arg "Health.create: miss_threshold < 1";
  { clock; interval_ms; miss_threshold; last_beat = clock (); beats = 0 }

let beat t =
  t.last_beat <- t.clock ();
  t.beats <- t.beats + 1

let missed t =
  int_of_float (Float.max 0.0 ((t.clock () -. t.last_beat) /. t.interval_ms))

let status t =
  let m = missed t in
  if m = 0 then Alive else if m < t.miss_threshold then Late m else Failed m

let beats t = t.beats

let describe t =
  match status t with
  | Alive -> "alive"
  | Late m -> Printf.sprintf "late missed-beats=%d" m
  | Failed m -> Printf.sprintf "failed missed-beats=%d" m
