(** Heartbeat health check: missed-beat detection against an
    injectable clock, so a stalled (not just crashed) shard is caught
    and restarted. *)

type t
type status = Alive | Late of int | Failed of int

val create : ?interval_ms:float -> ?miss_threshold:int -> Homeguard_serve.Deadline.clock -> t
(** Defaults: 1000 ms beat interval, failed after 3 whole missed
    intervals. The creation instant counts as the first beat.
    @raise Invalid_argument on non-positive parameters. *)

val beat : t -> unit
val missed : t -> int

val status : t -> status
(** [Late] is informational; [Failed] (missed >= threshold) triggers a
    supervised restart. *)

val beats : t -> int
val describe : t -> string
