(** Text serialization and replay of minimized chaos schedules. The
    format is deliberately dumb — one [key=value] token stream per line,
    no quoting, every field explicit — so a checked-in repro stays
    readable in review and diffs meaningfully when re-minimized:

    {v
    hg-chaos-repro v1
    invariant cache-no-stale-epoch-byte
    fence-enforced false
    config seed=42 shards=4 homes=10 steps=150 step-ms=50 ...
    event at=37 split-brain victim=1
    event at=52 storage-window mode=0 salt=42
    v} *)

module Fence = Homeguard_store.Fence

type t = {
  config : Chaos.config;
  schedule : Chaos.scheduled list;
  invariant : string;
  fence_enforced : bool;
}

let version_line = "hg-chaos-repro v1"

let fail fmt = Printf.ksprintf failwith fmt

(* -- rendering ---------------------------------------------------------------- *)

let config_text (c : Chaos.config) =
  Printf.sprintf
    "config seed=%d shards=%d homes=%d steps=%d step-ms=%g forced-kills=%d \
     kill=%d stall=%d fault-window=%d audit=%d vcache=%b replicas=%d \
     replica-loss=%d replica-corrupt=%d cache-loss=%d cache-corrupt=%d \
     split-brains=%d"
    c.Chaos.seed c.Chaos.shards c.Chaos.homes c.Chaos.steps c.Chaos.step_ms
    c.Chaos.forced_kills c.Chaos.kill_per_thousand c.Chaos.stall_per_thousand
    c.Chaos.fault_window_per_thousand c.Chaos.audit_per_thousand c.Chaos.vcache
    c.Chaos.replicas c.Chaos.replica_loss_per_thousand
    c.Chaos.replica_corrupt_per_thousand c.Chaos.cache_loss_per_thousand
    c.Chaos.cache_corrupt_per_thousand c.Chaos.split_brains

let event_text { Chaos.at; ev } =
  match ev with
  | Chaos.Kill { victim } -> Printf.sprintf "event at=%d kill victim=%d" at victim
  | Chaos.Stall { victim } ->
    Printf.sprintf "event at=%d stall victim=%d" at victim
  | Chaos.Storage_window { mode; salt } ->
    Printf.sprintf "event at=%d storage-window mode=%d salt=%d" at mode salt
  | Chaos.Replica_destroy { home; replica } ->
    Printf.sprintf "event at=%d replica-destroy home=%d replica=%d" at home
      replica
  | Chaos.Replica_corrupt { home; replica; file; salt } ->
    Printf.sprintf "event at=%d replica-corrupt home=%d replica=%d file=%d salt=%d"
      at home replica file salt
  | Chaos.Cache_destroy { replica } ->
    Printf.sprintf "event at=%d cache-destroy replica=%d" at replica
  | Chaos.Cache_corrupt { replica; file; salt } ->
    Printf.sprintf "event at=%d cache-corrupt replica=%d file=%d salt=%d" at
      replica file salt
  | Chaos.Split_brain { victim } ->
    Printf.sprintf "event at=%d split-brain victim=%d" at victim

let to_text t =
  String.concat "\n"
    (version_line
     :: Printf.sprintf "invariant %s" t.invariant
     :: Printf.sprintf "fence-enforced %b" t.fence_enforced
     :: config_text t.config
     :: List.map event_text t.schedule)
  ^ "\n"

(* -- parsing ------------------------------------------------------------------ *)

let kv line tok =
  match String.index_opt tok '=' with
  | Some i ->
    (String.sub tok 0 i, String.sub tok (i + 1) (String.length tok - i - 1))
  | None -> fail "repro line %d: malformed token %S (expected key=value)" line tok

let field line m k =
  match List.assoc_opt k m with
  | Some v -> v
  | None -> fail "repro line %d: missing field %s" line k

let int_field line m k =
  match int_of_string_opt (field line m k) with
  | Some n -> n
  | None -> fail "repro line %d: field %s is not an integer" line k

let float_field line m k =
  match float_of_string_opt (field line m k) with
  | Some f -> f
  | None -> fail "repro line %d: field %s is not a number" line k

let bool_field line m k =
  match bool_of_string_opt (field line m k) with
  | Some b -> b
  | None -> fail "repro line %d: field %s is not a boolean" line k

let parse_config line toks =
  let m = List.map (kv line) toks in
  let i = int_field line m and f = float_field line m and b = bool_field line m in
  {
    Chaos.seed = i "seed";
    shards = i "shards";
    homes = i "homes";
    steps = i "steps";
    step_ms = f "step-ms";
    forced_kills = i "forced-kills";
    kill_per_thousand = i "kill";
    stall_per_thousand = i "stall";
    fault_window_per_thousand = i "fault-window";
    audit_per_thousand = i "audit";
    vcache = b "vcache";
    replicas = i "replicas";
    replica_loss_per_thousand = i "replica-loss";
    replica_corrupt_per_thousand = i "replica-corrupt";
    cache_loss_per_thousand = i "cache-loss";
    cache_corrupt_per_thousand = i "cache-corrupt";
    split_brains = i "split-brains";
  }

let parse_event line toks =
  match toks with
  | at_tok :: name :: rest ->
    let at =
      match kv line at_tok with
      | "at", v -> (
        match int_of_string_opt v with
        | Some n -> n
        | None -> fail "repro line %d: at=%S is not an integer" line v)
      | k, _ -> fail "repro line %d: expected at=<step>, got %s" line k
    in
    let m = List.map (kv line) rest in
    let i = int_field line m in
    let ev =
      match name with
      | "kill" -> Chaos.Kill { victim = i "victim" }
      | "stall" -> Chaos.Stall { victim = i "victim" }
      | "storage-window" ->
        Chaos.Storage_window { mode = i "mode"; salt = i "salt" }
      | "replica-destroy" ->
        Chaos.Replica_destroy { home = i "home"; replica = i "replica" }
      | "replica-corrupt" ->
        Chaos.Replica_corrupt
          { home = i "home"; replica = i "replica"; file = i "file"; salt = i "salt" }
      | "cache-destroy" -> Chaos.Cache_destroy { replica = i "replica" }
      | "cache-corrupt" ->
        Chaos.Cache_corrupt
          { replica = i "replica"; file = i "file"; salt = i "salt" }
      | "split-brain" -> Chaos.Split_brain { victim = i "victim" }
      | other -> fail "repro line %d: unknown event kind %S" line other
    in
    { Chaos.at; ev }
  | _ -> fail "repro line %d: event needs at=<step> and a kind" line

let of_text text =
  let lines =
    String.split_on_char '\n' text
    |> List.mapi (fun i l -> (i + 1, String.trim l))
    |> List.filter (fun (_, l) -> l <> "" && l.[0] <> '#')
  in
  match lines with
  | [] -> fail "repro: empty input"
  | (vline, v) :: rest ->
    if v <> version_line then
      fail "repro line %d: expected %S, got %S" vline version_line v;
    let invariant = ref None
    and fence_enforced = ref None
    and config = ref None
    and events = ref [] in
    List.iter
      (fun (n, l) ->
        match String.split_on_char ' ' l |> List.filter (fun t -> t <> "") with
        | "invariant" :: [ name ] -> invariant := Some name
        | "fence-enforced" :: [ v ] -> (
          match bool_of_string_opt v with
          | Some b -> fence_enforced := Some b
          | None -> fail "repro line %d: fence-enforced %S is not a boolean" n v)
        | "config" :: toks -> config := Some (parse_config n toks)
        | "event" :: toks -> events := parse_event n toks :: !events
        | directive :: _ -> fail "repro line %d: unknown directive %S" n directive
        | [] -> ())
      rest;
    let req what = function
      | Some v -> v
      | None -> fail "repro: missing %s line" what
    in
    {
      config = req "config" !config;
      schedule =
        List.stable_sort
          (fun a b -> compare a.Chaos.at b.Chaos.at)
          (List.rev !events);
      invariant = req "invariant" !invariant;
      fence_enforced = Option.value ~default:true !fence_enforced;
    }

(* -- persistence -------------------------------------------------------------- *)

let save t ~path =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> try close_out oc with Sys_error _ -> ())
    (fun () -> output_string oc (to_text t));
  Sys.rename tmp path

let load ~path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> try close_in ic with Sys_error _ -> ())
    (fun () -> of_text (really_input_string ic (in_channel_length ic)))

(* -- replay ------------------------------------------------------------------- *)

let replay ?enforce_fence t ~dir =
  let enforce = Option.value ~default:t.fence_enforced enforce_fence in
  let campaign () = Chaos.run ~config:t.config ~schedule:t.schedule ~dir () in
  if enforce then campaign ()
  else begin
    Fence.set_enforced false;
    Fun.protect ~finally:(fun () -> Fence.set_enforced true) campaign
  end

let reproduces report t = Chaos.violates report ~invariant:t.invariant
