(** One shard worker: a {!Broker} plus the homes the supervisor
    assigned it.

    Every home is an explicit value rooted in its own directory under
    the fleet root, so shard ownership is purely logical — "moving" a
    home to another shard means the new owner replays its journal
    ({!Homeguard_store.Home.open_}), no files move. That is what makes
    rebalance-after-permanent-failure and supervised restart the same
    operation: open the journal, recover, serve. *)

module Home = Homeguard_store.Home
module Broker = Homeguard_serve.Broker
module Vcache = Homeguard_vcache.Vcache

type t = {
  index : int;
  fleet_dir : string;
  fsync : bool;
  mode : Home.mode;
  replicas : int;  (** replica count per home journal (>= 1) *)
  epoch_of : string -> int option;
      (** the ownership epoch the supervisor granted this shard for a
          home; [None] opens unfenced *)
  configure : Homeguard_detector.Detector.config -> Homeguard_detector.Detector.config;
  vcache : Vcache.handle option;
      (** this incarnation's cache handle — retained so chaos can drive
          a wedged shard's {e stale} handle against the fence *)
  broker : Broker.t;
  mutable recoveries : (string * Home.recovery_report) list;
      (** most recent first; every open this shard performed *)
}

(* Home ids are caller-chosen; keep the mapping to directories
   injective and filesystem-safe. *)
let home_dir ~fleet_dir id =
  let safe =
    String.map
      (function ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_') as c -> c | _ -> '.')
      id
  in
  Filename.concat fleet_dir ("h_" ^ safe)

(* Replica k (k >= 1) of a home lives under the distinct replica root
   [fleet_dir/r<k>]; the primary keeps the original layout, so an R=1
   fleet is byte-compatible with a pre-replication one. *)
let home_dirs ~fleet_dir ~replicas id =
  home_dir ~fleet_dir id
  :: List.init
       (max 0 (replicas - 1))
       (fun k ->
         home_dir ~fleet_dir:(Filename.concat fleet_dir (Printf.sprintf "r%d" (k + 1))) id)

let index t = t.index
let broker t = t.broker
let vcache t = t.vcache
let home_ids t = Broker.home_ids t.broker
let recoveries t = t.recoveries

let add_home t id =
  let dirs = home_dirs ~fleet_dir:t.fleet_dir ~replicas:t.replicas id in
  let home, report =
    Home.open_ ~fsync:t.fsync ~mode:t.mode ~configure:t.configure
      ~replicas:(List.tl dirs) ?epoch:(t.epoch_of id) ~dir:(List.hd dirs) ()
  in
  Broker.add_home t.broker ~id home;
  t.recoveries <- (id, report) :: t.recoveries;
  report

let open_ ?(broker_config = Broker.default_config) ?(fsync = true)
    ?(mode = Home.Mixed) ?(replicas = 1) ?(epoch_of = fun _ -> None)
    ?(on_recovery = fun _ _ -> ()) ?vcache ~fleet_dir ~index ~home_ids () =
  if replicas < 1 then invalid_arg "Shard.open_: replicas < 1";
  let t =
    {
      index;
      fleet_dir;
      fsync;
      mode;
      replicas;
      epoch_of;
      configure =
        (match vcache with None -> Fun.id | Some h -> Vcache.configure h);
      vcache;
      broker = Broker.create ~config:broker_config ();
      recoveries = [];
    }
  in
  (* Opening is all-or-nothing: a recovery crash mid-way must not leak
     the homes already opened. [on_recovery] fires per home as it
     opens, so the reports of the homes recovered before a crash are
     not lost with the failed attempt — a recovery that quarantined a
     corrupt record repairs the journal on disk, and a retry would
     replay the repaired journal cleanly, silently erasing the
     in-memory evidence of the damage. *)
  (try
     List.iter
       (fun id ->
         let report = add_home t id in
         on_recovery id report)
       home_ids
   with e ->
     List.iter (fun (_, h) -> try Home.close h with _ -> ()) (Broker.homes t.broker);
     raise e);
  t

let release_home t id =
  match Broker.remove_home t.broker id with
  | None -> false
  | Some home ->
    Home.close home;
    true

let close t =
  List.iter
    (fun (id, _) -> ignore (release_home t id))
    (Broker.homes t.broker)
