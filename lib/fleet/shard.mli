(** One shard worker: a broker plus the homes the supervisor assigned
    it, each recovered from its own journal directory under the fleet
    root. Ownership is logical — rebalance and restart are both "open
    the journal, recover, serve". *)

module Home = Homeguard_store.Home
module Broker = Homeguard_serve.Broker

type t

val home_dir : fleet_dir:string -> string -> string
(** Where a home's primary journal lives, independent of which shard
    owns it. *)

val home_dirs : fleet_dir:string -> replicas:int -> string -> string list
(** All of a home's replica directories, primary first; replica [k]
    lives under the distinct replica root [fleet_dir/r<k>], so an R=1
    fleet keeps the original layout. *)

val open_ :
  ?broker_config:Broker.config ->
  ?fsync:bool ->
  ?mode:Home.mode ->
  ?replicas:int ->
  ?epoch_of:(string -> int option) ->
  ?on_recovery:(string -> Home.recovery_report -> unit) ->
  ?vcache:Homeguard_vcache.Vcache.handle ->
  fleet_dir:string ->
  index:int ->
  home_ids:string list ->
  unit ->
  t
(** Open (recovering) every assigned home. All-or-nothing: on a
    recovery crash the already-opened homes are closed and the
    exception propagates — the supervisor's restart backoff owns the
    retry. [on_recovery] fires per home as it opens, including on
    attempts that later fail, so damage surfaced by a recovery is never
    erased by a clean retry of the repaired journal. *)

val index : t -> int
val broker : t -> Broker.t
val home_ids : t -> string list

val vcache : t -> Homeguard_vcache.Vcache.handle option
(** The cache handle this incarnation was opened with. After the shard
    is wedged and replaced, the handle's epoch is stale — chaos drives
    it against the fence via {!Homeguard_vcache.Vcache.probe_write}. *)

val recoveries : t -> (string * Home.recovery_report) list
(** Every recovery this shard performed, most recent first — the
    honest-loss accounting (quarantined/skipped counts) chaos
    invariants consult. *)

val add_home : t -> string -> Home.recovery_report
(** Take ownership of one home (rebalance-in): journal-backed
    recovery. *)

val release_home : t -> string -> bool
(** Close and unregister one home (rebalance-out). *)

val close : t -> unit
(** Close every home. Also the "kill" path in chaos campaigns: durable
    state is only what the journal holds. *)
