(** Seeded chaos campaigns over a synthetic-home fleet: a deterministic
    schedule of shard kills, stalls and storage-fault windows layered
    over install/config/decision/audit traffic, verified against the
    four fleet invariants — no silent acked loss, replay-deterministic
    recovery, quarantine/decision survival, no false clean bill — plus,
    when the shared verdict cache is on, the cache invariants (its
    journal replays prefix-consistent after a kill mid cache-write and
    no poisoned or torn entry is ever served). *)

type config = {
  seed : int;
  shards : int;
  homes : int;
  steps : int;
  step_ms : float;  (** simulated clock advance per step *)
  forced_kills : int;  (** evenly spaced deterministic kills *)
  kill_per_thousand : int;
  stall_per_thousand : int;
  fault_window_per_thousand : int;
  audit_per_thousand : int;
  vcache : bool;
      (** run the campaign with the shared verdict cache enabled and
          verify the cache invariants (replay-deterministic reopen, no
          poisoned or torn entry served, no verdict conflicts, warm
          across the final restart) *)
}

val default_config : config
(** seed 42, 4 shards, 24 homes, 400 steps, 3 forced kills. *)

val smoke_config : config
(** A short CI-sized campaign (10 homes, 150 steps). *)

type invariant = { name : string; ok : bool; detail : string }

type report = {
  config : config;
  ops : int;
  installs_acked : int;
  configs_acked : int;
  decisions_acked : int;
  quarantines_acked : int;
  degraded_replies : int;
  busy_replies : int;
  stalled_timeouts : int;
  served_while_impaired : int;
      (** ops completed by healthy shards while some shard was down —
          the fault-isolation liveness signal *)
  fault_windows : int;
  stats : Supervisor.stats;
  shards_killed : int;
  shards_recovered : int;
  invariants : invariant list;
}

val run : ?config:config -> dir:string -> unit -> report
(** Run one campaign in [dir] (created if missing). Deterministic in
    [config.seed]. Fault hooks are disarmed on every exit path. *)

val passed : report -> bool
val render : report -> string
