(** Seeded chaos campaigns over a synthetic-home fleet: an {e explicit,
    up-front fault schedule} of shard kills, stalls, storage-fault
    windows, replica and cache-replica destruction/corruption and
    stall-then-revive (split-brain) windows layered over
    install/config/decision/audit traffic, verified against the fleet
    invariants — no silent acked loss while one replica survives, zero
    stale-epoch appends accepted, scrub convergence and idempotence,
    replay-deterministic recovery, quarantine/decision survival, no
    false clean bill — plus, when the shared verdict cache is on, the
    cache-surface invariants: no stale-epoch cache byte (every zombie
    cache write fenced, nothing reaches disk), replay-deterministic
    reopen, no poisoned or torn entry served, no verdict conflicts,
    warm across the final restart, a warm reopened cache auditing
    byte-identically to a cold one, and cache-scrub
    convergence/idempotence.

    The schedule is a pure function of the config seed, derived from a
    fault RNG independent of the workload stream — so any {e subset} of
    it can be replayed ({!run} with [?schedule]) and a failing schedule
    can be delta-debugged down to a minimal reproduction ({!shrink}). *)

type config = {
  seed : int;
  shards : int;
  homes : int;
  steps : int;
  step_ms : float;  (** simulated clock advance per step *)
  forced_kills : int;  (** evenly spaced deterministic kills *)
  kill_per_thousand : int;
  stall_per_thousand : int;
  fault_window_per_thousand : int;
  audit_per_thousand : int;
  vcache : bool;
      (** run the campaign with the shared verdict cache enabled and
          verify the cache-surface invariants *)
  replicas : int;  (** replica count per home (1 = unreplicated) *)
  replica_loss_per_thousand : int;
      (** per-step chance of destroying one non-primary replica *)
  replica_corrupt_per_thousand : int;
      (** per-step chance of flipping bits in one replica file *)
  cache_loss_per_thousand : int;
      (** per-step chance of destroying one non-primary cache replica *)
  cache_corrupt_per_thousand : int;
      (** per-step chance of flipping a byte in one cache replica file *)
  split_brains : int;
      (** evenly spaced stall-then-revive windows: a shard is wedged
          (killed without closing its writers {e or} its verdict-cache
          handle), its homes rebalance to a higher epoch, and the
          zombie keeps trying to append — to home journals and to the
          cache *)
}

val default_config : config
(** seed 42, 4 shards, 24 homes, 400 steps, 3 forced kills. *)

val smoke_config : config
(** A short CI-sized campaign (10 homes, 150 steps). *)

(** {2 The fault schedule} *)

(** One scheduled fault. Every parameter the fault needs — victim,
    home/replica/file indices, corruption salts — is minted at
    derivation time, so an event fires identically whether it runs
    inside the full schedule or a shrunk subset. *)
type fault_event =
  | Kill of { victim : int }
  | Stall of { victim : int }
  | Storage_window of { mode : int; salt : int }
      (** open a crash/torn/flip storage-fault window; [mode] indexes
          the cycling order, [salt] seeds the fault stream *)
  | Replica_destroy of { home : int; replica : int }
  | Replica_corrupt of { home : int; replica : int; file : int; salt : int }
  | Cache_destroy of { replica : int }  (** non-primary cache replicas *)
  | Cache_corrupt of { replica : int; file : int; salt : int }
  | Split_brain of { victim : int }

type scheduled = { at : int; ev : fault_event }
(** [ev] fires at workload step [at] (1-based). *)

val schedule_of_config : config -> scheduled list
(** The complete fault plan for a config — a pure function of
    [config.seed], sorted by step, independent of the workload RNG.
    [run ~config ()] executes exactly this schedule. *)

type invariant = { name : string; ok : bool; detail : string }

type report = {
  config : config;
  schedule : scheduled list;  (** the fault plan this campaign executed *)
  ops : int;
  installs_acked : int;
  configs_acked : int;
  decisions_acked : int;
  quarantines_acked : int;
  degraded_replies : int;
  busy_replies : int;
  stalled_timeouts : int;
  served_while_impaired : int;
      (** ops completed by healthy shards while some shard was down —
          the fault-isolation liveness signal *)
  fault_windows : int;
  replicas_destroyed : int;
  replicas_corrupted : int;
  cache_destroyed : int;  (** cache replica files removed *)
  cache_corrupted : int;  (** cache replica files bit-flipped *)
  zombie_rejected : int;  (** stale-epoch appends fenced off *)
  zombie_accepted : int;  (** stale-epoch appends that went durable — must be 0 *)
  cache_probe_fenced : int;  (** zombie cache writes refused at the fence *)
  cache_probe_accepted : int;
      (** stale cache writes that went durable — must be 0 *)
  scrub : Homeguard_store.Scrub.counters;  (** first anti-entropy pass *)
  scrub_second : Homeguard_store.Scrub.counters;
      (** second pass — must find nothing to repair *)
  cache_scrub : Homeguard_store.Scrub.home_report option;
      (** cache-surface anti-entropy pass (when the cache is on) *)
  cache_scrub_second : Homeguard_store.Scrub.home_report option;
      (** second cache pass — must be healthy with zero repair bytes *)
  stats : Supervisor.stats;
  shards_killed : int;
  shards_recovered : int;
  invariants : invariant list;
}

val run : ?config:config -> ?schedule:scheduled list -> dir:string -> unit -> report
(** Run one campaign in [dir] (created if missing). Deterministic in
    [config.seed]; [?schedule] (default {!schedule_of_config}) replaces
    the fault plan — pass a subset to replay only those faults. Fault
    hooks, the injected sleeper and the solver clock are restored on
    every exit path. *)

val passed : report -> bool
val violates : report -> invariant:string -> bool
(** The named invariant exists in the report and failed. *)

val shrink :
  ?config:config ->
  ?enforce_fence:bool ->
  dir:string ->
  invariant:string ->
  scheduled list ->
  scheduled list * int
(** [shrink ~dir ~invariant schedule] delta-debugs (ddmin) a failing
    fault schedule down to a locally-minimal event list that still
    violates [invariant], running each trial campaign in a fresh
    subdirectory of [dir]. Returns the minimal schedule and the number
    of trial campaigns run. [~enforce_fence:false] runs every trial
    with {!Homeguard_store.Fence.set_enforced}[ false] (the
    deliberately reintroduced split-brain bug), restored on every exit
    path. Raises [Invalid_argument] if the full schedule does not
    violate the invariant. *)

val render : report -> string
