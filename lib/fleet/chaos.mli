(** Seeded chaos campaigns over a synthetic-home fleet: a deterministic
    schedule of shard kills, stalls, storage-fault windows, replica
    destruction/corruption and stall-then-revive (split-brain) windows
    layered over install/config/decision/audit traffic, verified
    against the fleet invariants — no silent acked loss while one
    replica survives, zero stale-epoch appends accepted, scrub
    convergence and idempotence, replay-deterministic recovery,
    quarantine/decision survival, no false clean bill — plus, when the
    shared verdict cache is on, the cache invariants (its journal
    replays prefix-consistent after a kill mid cache-write and no
    poisoned or torn entry is ever served). *)

type config = {
  seed : int;
  shards : int;
  homes : int;
  steps : int;
  step_ms : float;  (** simulated clock advance per step *)
  forced_kills : int;  (** evenly spaced deterministic kills *)
  kill_per_thousand : int;
  stall_per_thousand : int;
  fault_window_per_thousand : int;
  audit_per_thousand : int;
  vcache : bool;
      (** run the campaign with the shared verdict cache enabled and
          verify the cache invariants (replay-deterministic reopen, no
          poisoned or torn entry served, no verdict conflicts, warm
          across the final restart) *)
  replicas : int;  (** replica count per home (1 = unreplicated) *)
  replica_loss_per_thousand : int;
      (** per-step chance of destroying one non-primary replica *)
  replica_corrupt_per_thousand : int;
      (** per-step chance of flipping bits in one replica file *)
  split_brains : int;
      (** evenly spaced stall-then-revive windows: a shard is wedged
          (killed without closing its writers), its homes rebalance to
          a higher epoch, and the zombie keeps trying to append *)
}

val default_config : config
(** seed 42, 4 shards, 24 homes, 400 steps, 3 forced kills. *)

val smoke_config : config
(** A short CI-sized campaign (10 homes, 150 steps). *)

type invariant = { name : string; ok : bool; detail : string }

type report = {
  config : config;
  ops : int;
  installs_acked : int;
  configs_acked : int;
  decisions_acked : int;
  quarantines_acked : int;
  degraded_replies : int;
  busy_replies : int;
  stalled_timeouts : int;
  served_while_impaired : int;
      (** ops completed by healthy shards while some shard was down —
          the fault-isolation liveness signal *)
  fault_windows : int;
  replicas_destroyed : int;
  replicas_corrupted : int;
  zombie_rejected : int;  (** stale-epoch appends fenced off *)
  zombie_accepted : int;  (** stale-epoch appends that went durable — must be 0 *)
  scrub : Homeguard_store.Scrub.counters;  (** first anti-entropy pass *)
  scrub_second : Homeguard_store.Scrub.counters;
      (** second pass — must find nothing to repair *)
  stats : Supervisor.stats;
  shards_killed : int;
  shards_recovered : int;
  invariants : invariant list;
}

val run : ?config:config -> dir:string -> unit -> report
(** Run one campaign in [dir] (created if missing). Deterministic in
    [config.seed]. Fault hooks are disarmed on every exit path. *)

val passed : report -> bool
val render : report -> string
