(** Replayable chaos reproductions: a campaign config, an explicit
    fault schedule (usually a {!Chaos.shrink}-minimized one), the
    invariant the schedule violates and the fence setting it violates
    it under, serialized to a line-oriented text file
    ([hg-chaos-repro v1]) so a failure found by one campaign can be
    checked in and re-run forever as a regression test.

    The double-sided regression contract of a checked-in repro:
    - replayed {e as recorded} (fence disabled — the deliberately
      reintroduced split-brain bug), the invariant must still be
      violated: the repro is alive and the harness still catches the
      bug it was minimized against;
    - replayed with the fence {e enforced}, the same schedule must
      pass: the fix holds. *)

type t = {
  config : Chaos.config;
  schedule : Chaos.scheduled list;
  invariant : string;  (** the invariant this schedule violates *)
  fence_enforced : bool;
      (** [false] replays with
          {!Homeguard_store.Fence.set_enforced}[ false] — the
          reintroduced bug the schedule was minimized against *)
}

val to_text : t -> string
val of_text : string -> t
(** Raises [Failure] with a line-precise message on any malformed or
    version-mismatched input. [of_text (to_text t) = t]. *)

val save : t -> path:string -> unit
val load : path:string -> t
(** Raises [Sys_error] on unreadable paths, [Failure] on bad content. *)

val replay : ?enforce_fence:bool -> t -> dir:string -> Chaos.report
(** Run the recorded schedule under the recorded config in [dir].
    [?enforce_fence] (default [t.fence_enforced]) overrides the fence
    setting — replaying a bug repro with [~enforce_fence:true] checks
    that the fix holds. The fence is restored on every exit path. *)

val reproduces : Chaos.report -> t -> bool
(** The report violates the repro's recorded invariant. *)
