(** Per-shard circuit breaker.

    A shard that keeps crashing must not keep receiving traffic: the
    breaker counts consecutive shard-level failures and, once tripped,
    sheds requests immediately with an honest retry hint instead of
    queueing them into a black hole. After [reset_timeout_ms] it lets a
    bounded number of probes through ([Half_open]); probe successes
    close it again, a probe failure re-opens it and restarts the
    clock.

    Only {e shard-level} faults (journal crashes, stalls detected by
    the health check) count — an app-level failure is the poison-app
    quarantine's business, not the breaker's. *)

module Deadline = Homeguard_serve.Deadline

type state = Closed | Open | Half_open

type t = {
  clock : Deadline.clock;
  failure_threshold : int;  (** consecutive failures that trip it *)
  reset_timeout_ms : float;  (** Open → Half_open delay *)
  half_open_probes : int;  (** probe successes needed to close *)
  mutable state : state;
  mutable consecutive_failures : int;
  mutable opened_at : float;
  mutable probe_successes : int;
  mutable trips : int;
}

let create ?(failure_threshold = 3) ?(reset_timeout_ms = 1_000.0)
    ?(half_open_probes = 2) clock =
  if failure_threshold < 1 then invalid_arg "Breaker.create: failure_threshold < 1";
  if reset_timeout_ms <= 0.0 then invalid_arg "Breaker.create: reset_timeout_ms <= 0";
  if half_open_probes < 1 then invalid_arg "Breaker.create: half_open_probes < 1";
  {
    clock;
    failure_threshold;
    reset_timeout_ms;
    half_open_probes;
    state = Closed;
    consecutive_failures = 0;
    opened_at = 0.0;
    probe_successes = 0;
    trips = 0;
  }

let state t = t.state
let trips t = t.trips

let trip t =
  t.state <- Open;
  t.opened_at <- t.clock ();
  t.probe_successes <- 0;
  t.trips <- t.trips + 1

(** Admission decision for one request. [`Reject ms] carries the time
    until the next probe window — the honest retry hint. *)
let allow t =
  match t.state with
  | Closed -> `Admit
  | Half_open -> `Probe
  | Open ->
    let elapsed = t.clock () -. t.opened_at in
    if elapsed >= t.reset_timeout_ms then begin
      t.state <- Half_open;
      t.probe_successes <- 0;
      `Probe
    end
    else `Reject (t.reset_timeout_ms -. elapsed)

let note_success t =
  match t.state with
  | Closed -> t.consecutive_failures <- 0
  | Half_open ->
    t.probe_successes <- t.probe_successes + 1;
    if t.probe_successes >= t.half_open_probes then begin
      t.state <- Closed;
      t.consecutive_failures <- 0;
      t.probe_successes <- 0
    end
  | Open -> ()  (* a straggler finishing after the trip; ignore *)

let note_failure t =
  match t.state with
  | Closed ->
    t.consecutive_failures <- t.consecutive_failures + 1;
    if t.consecutive_failures >= t.failure_threshold then trip t
  | Half_open -> trip t  (* the probe failed: back to Open, clock restarts *)
  | Open -> ()

(** A restarted shard starts probing immediately: its recovery already
    cost the backoff delay, so the breaker should not add a second
    full [reset_timeout_ms] of blind shedding on top. *)
let begin_probing t =
  if t.state <> Closed then begin
    t.state <- Half_open;
    t.probe_successes <- 0
  end

(** Remaining shed window in ms (0 unless [Open]). *)
let retry_after_ms t =
  match t.state with
  | Open -> Float.max 0.0 (t.reset_timeout_ms -. (t.clock () -. t.opened_at))
  | Closed | Half_open -> 0.0

let describe t =
  match t.state with
  | Closed -> "closed"
  | Open -> Printf.sprintf "open retry-after-ms=%.0f" (retry_after_ms t)
  | Half_open ->
    Printf.sprintf "half-open probes=%d/%d" t.probe_successes t.half_open_probes
