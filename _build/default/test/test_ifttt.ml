(** IFTTT template-rule tests: the §VIII-D4 multi-platform path —
    template parsing, lowering into the shared rule IR, and cross-platform
    CAI detection against SmartApps. *)

module Ifttt = Homeguard_ifttt.Ifttt
module Rule = Homeguard_rules.Rule
module Formula = Homeguard_solver.Formula
module Term = Homeguard_solver.Term
module Detector = Homeguard_detector.Detector
module Threat = Homeguard_detector.Threat
open Helpers

let parse_state_applet =
  test "IF ... IS ... THEN ... DO parses" (fun () ->
      let a = Ifttt.parse "IF porch.motion IS active THEN porchLight DO on" in
      (match a.Ifttt.trigger with
      | Ifttt.On_state { device = "porch"; attribute = "motion"; value = "active" } -> ()
      | _ -> Alcotest.fail "wrong trigger");
      match a.Ifttt.action with
      | Ifttt.Do_command { device = "porchLight"; command = "on"; arg = None } -> ()
      | _ -> Alcotest.fail "wrong action")

let parse_filters =
  test "WHILE filters parse" (fun () ->
      let a =
        Ifttt.parse
          "IF door.contact IS open WHILE lux.illuminance IS 10 THEN hallLight DO on"
      in
      check_int "one filter" 1 (List.length a.Ifttt.filters))

let parse_daily =
  test "EVERY DAY AT parses to minutes" (fun () ->
      let a = Ifttt.parse "EVERY DAY AT 07:30 THEN coffeeMaker DO on" in
      match a.Ifttt.trigger with
      | Ifttt.Daily_at 450 -> ()
      | _ -> Alcotest.fail "wrong time")

let parse_mode_action =
  test "THEN MODE parses" (fun () ->
      let a = Ifttt.parse "IF everyone.presence IS not_present THEN MODE Away" in
      match a.Ifttt.action with
      | Ifttt.Set_mode "Away" -> ()
      | _ -> Alcotest.fail "wrong action")

let parse_with_arg =
  test "WITH argument parses" (fun () ->
      let a = Ifttt.parse "EVERY DAY AT 21:00 THEN bedroomDimmer DO setLevel WITH 20" in
      match a.Ifttt.action with
      | Ifttt.Do_command { command = "setLevel"; arg = Some "20"; _ } -> ()
      | _ -> Alcotest.fail "wrong action")

let parse_errors =
  test "malformed applets raise Parse_error" (fun () ->
      List.iter
        (fun line ->
          match Ifttt.parse line with
          | exception Ifttt.Parse_error _ -> ()
          | _ -> Alcotest.failf "expected error on %S" line)
        [
          "WHEN x.y IS z THEN a DO b";
          "IF door.contact IS open";
          "IF nodot IS open THEN a DO b";
          "EVERY DAY AT noon THEN a DO b";
          "IF a.b IS c THEN MODE";
        ])

let lowering_infers_capabilities =
  test "lowering infers input capabilities from usage" (fun () ->
      let app =
        Ifttt.parse_recipes ~name:"Recipes"
          "IF porch.motion IS active THEN frontLock DO unlock"
      in
      check_bool "motion sensor inferred" true
        (Rule.capability_of_input app "porch" = Some "motionSensor");
      check_bool "lock inferred" true (Rule.capability_of_input app "frontLock" = Some "lock"))

let lowering_builds_rules =
  test "lowering produces TCA rules with constraints" (fun () ->
      let app =
        Ifttt.parse_recipes ~name:"Recipes"
          "IF door.contact IS open WHILE lux.illuminance IS 10 THEN hallLight DO on"
      in
      let r = the_rule app in
      (match r.Rule.trigger with
      | Rule.Event { attribute = "contact"; constraint_; _ } ->
        check_string "trigger" "door.contact == \"open\"" (Formula.to_string constraint_)
      | _ -> Alcotest.fail "wrong trigger");
      check_string "filter becomes predicate" "lux.illuminance == 10"
        (Formula.to_string r.Rule.condition.Rule.predicate))

let recipes_multi_line =
  test "multi-line recipe files parse with comments" (fun () ->
      let app =
        Ifttt.parse_recipes ~name:"Recipes"
          {|
# my recipes
IF porch.motion IS active THEN porchLight DO on

EVERY DAY AT 23:00 THEN porchLight DO off
|}
      in
      check_int "two rules" 2 (List.length app.Rule.rules))

let cross_platform_detection =
  test "IFTTT applets and SmartApps interfere in one detector" (fun () ->
      (* an IFTTT applet turns the night lamp ON at any motion; the
         SmartApp NightCare turns the same lamp off in Night mode: the
         applet's ON covertly triggers NightCare *)
      let applet_app =
        Ifttt.parse_recipes ~name:"IftttMotionLamp"
          "IF hall.motion IS active THEN floorLamp DO on"
      in
      let night_care = extract_corpus "NightCare" in
      let ctx = Detector.create Detector.offline_config in
      let threats =
        List.concat_map
          (fun r1 ->
            List.concat_map
              (fun r2 -> Detector.detect_pair ctx (applet_app, r1) (night_care, r2))
              night_care.Rule.rules)
          applet_app.Rule.rules
      in
      check_bool "cross-platform CT detected" true
        (List.exists (fun (t : Threat.t) -> t.Threat.category = Threat.CT) threats);
      check_bool "cross-platform SD detected (off undoes on)" true
        (List.exists (fun (t : Threat.t) -> t.Threat.category = Threat.SD) threats))

let cross_platform_race =
  test "IFTTT vs SmartApp actuator race" (fun () ->
      let applet_app =
        Ifttt.parse_recipes ~name:"IftttEveningLamp" "EVERY DAY AT 19:00 THEN lamp DO on"
      in
      let good_night = extract_corpus "GoodNightLights" in
      let ctx = Detector.create Detector.offline_config in
      let threats =
        List.concat_map
          (fun r1 ->
            List.concat_map
              (fun r2 -> Detector.detect_pair ctx (applet_app, r1) (good_night, r2))
              good_night.Rule.rules)
          applet_app.Rule.rules
      in
      check_bool "AR across platforms" true
        (List.exists (fun (t : Threat.t) -> t.Threat.category = Threat.AR) threats))

let tests =
  [
    parse_state_applet;
    parse_filters;
    parse_daily;
    parse_mode_action;
    parse_with_arg;
    parse_errors;
    lowering_infers_capabilities;
    lowering_builds_rules;
    recipes_multi_line;
    cross_platform_detection;
    cross_platform_race;
  ]
