(** Lexer unit tests: token classes, newline suppression, string forms,
    error reporting. *)

open Homeguard_groovy

let toks src = List.map (fun l -> l.Lexer.tok) (Lexer.tokenize src)

let tok_list = Alcotest.testable (fun fmt t -> Format.fprintf fmt "%s" (Token.to_string t)) ( = )

let check_toks name src expected =
  Helpers.test name (fun () ->
      Alcotest.(check (list tok_list)) name expected (toks src))

let numbers =
  check_toks "numbers" "1 42 3.5"
    [ Token.INT 1; Token.INT 42; Token.FLOAT 3.5; Token.EOF ]

let identifiers =
  check_toks "identifiers and keywords" "def x if else tv1 _y"
    [
      Token.KW_DEF; Token.IDENT "x"; Token.KW_IF; Token.KW_ELSE; Token.IDENT "tv1";
      Token.IDENT "_y"; Token.EOF;
    ]

let operators =
  check_toks "operators" "== != <= >= && || ?: ?. -> .. ++ +="
    [
      Token.EQ; Token.NEQ; Token.LE; Token.GE; Token.AND_AND; Token.OR_OR; Token.ELVIS;
      Token.SAFE_DOT; Token.ARROW; Token.DOTDOT; Token.PLUS_PLUS; Token.PLUS_ASSIGN;
      Token.EOF;
    ]

let sq_string =
  check_toks "single-quoted string" "'hello world'"
    [ Token.STRING "hello world"; Token.EOF ]

let sq_escapes =
  check_toks "string escapes" {|'a\'b\nc'|} [ Token.STRING "a'b\nc"; Token.EOF ]

let dq_plain =
  check_toks "double-quoted without interpolation" {|"plain"|}
    [ Token.DSTRING [ Token.G_text "plain" ]; Token.EOF ]

let dq_interp =
  check_toks "GString interpolation" {|"a${x + 1}b"|}
    [
      Token.DSTRING [ Token.G_text "a"; Token.G_code "x + 1"; Token.G_text "b" ]; Token.EOF;
    ]

let dq_dollar_ident =
  check_toks "GString $ident form" {|"v=$val.x"|}
    [ Token.DSTRING [ Token.G_text "v="; Token.G_code "val.x" ]; Token.EOF ]

let nested_interp =
  Helpers.test "nested braces inside interpolation" (fun () ->
      match toks {|"x${ [a: 1].size() }y"|} with
      | [ Token.DSTRING [ Token.G_text "x"; Token.G_code code; Token.G_text "y" ]; Token.EOF ]
        ->
        Helpers.check_string "code" " [a: 1].size() " code
      | _ -> Alcotest.fail "unexpected token shape")

let comments =
  check_toks "comments are skipped" "1 // line\n/* block\nmore */ 2"
    [ Token.INT 1; Token.NEWLINE; Token.INT 2; Token.EOF ]

let newline_statement_break =
  check_toks "newline separates statements" "a\nb"
    [ Token.IDENT "a"; Token.NEWLINE; Token.IDENT "b"; Token.EOF ]

let newline_suppressed_after_operator =
  check_toks "newline suppressed after operator" "a +\nb"
    [ Token.IDENT "a"; Token.PLUS; Token.IDENT "b"; Token.EOF ]

let newline_suppressed_in_parens =
  check_toks "newline suppressed inside parens" "f(a,\nb)"
    [
      Token.IDENT "f"; Token.LPAREN; Token.IDENT "a"; Token.COMMA; Token.IDENT "b";
      Token.RPAREN; Token.EOF;
    ]

let newline_suppressed_after_comma =
  check_toks "newline suppressed after comma in list" "[a,\nb]"
    [
      Token.LBRACKET; Token.IDENT "a"; Token.COMMA; Token.IDENT "b"; Token.RBRACKET;
      Token.EOF;
    ]

let newline_kept_after_rparen =
  check_toks "newline kept after closing paren" "f()\ng()"
    [
      Token.IDENT "f"; Token.LPAREN; Token.RPAREN; Token.NEWLINE; Token.IDENT "g";
      Token.LPAREN; Token.RPAREN; Token.EOF;
    ]

let unterminated_string =
  Helpers.test "unterminated string raises" (fun () ->
      match Lexer.tokenize "'abc" with
      | exception Lexer.Error (_, 1) -> ()
      | _ -> Alcotest.fail "expected lexer error")

let unterminated_comment =
  Helpers.test "unterminated block comment raises" (fun () ->
      match Lexer.tokenize "/* abc" with
      | exception Lexer.Error (_, _) -> ()
      | _ -> Alcotest.fail "expected lexer error")

let bad_char =
  Helpers.test "unexpected character raises with line" (fun () ->
      match Lexer.tokenize "a\n#" with
      | exception Lexer.Error (_, 2) -> ()
      | _ -> Alcotest.fail "expected lexer error at line 2")

let line_tracking =
  Helpers.test "line numbers track newlines" (fun () ->
      let located = Lexer.tokenize "a\nb\nc" in
      let lines = List.filter_map (fun l ->
          match l.Lexer.tok with Token.IDENT _ -> Some l.Lexer.line | _ -> None) located in
      Alcotest.(check (list int)) "lines" [ 1; 2; 3 ] lines)

let tests =
  [
    numbers;
    identifiers;
    operators;
    sq_string;
    sq_escapes;
    dq_plain;
    dq_interp;
    dq_dollar_ident;
    nested_interp;
    comments;
    newline_statement_break;
    newline_suppressed_after_operator;
    newline_suppressed_in_parens;
    newline_suppressed_after_comma;
    newline_kept_after_rparen;
    unterminated_string;
    unterminated_comment;
    bad_char;
    line_tracking;
  ]
