(** Interval-set domain algebra: unit tests and QCheck laws. *)

open Homeguard_solver

let dom = Alcotest.testable (fun fmt d -> Format.fprintf fmt "%s" (Domain.to_string d)) Domain.equal

let interval_normalizes =
  Helpers.test "adjacent intervals merge" (fun () ->
      Alcotest.check dom "merge"
        (Domain.interval 1 10)
        (Domain.union (Domain.interval 1 5) (Domain.interval 6 10)))

let inter_basic =
  Helpers.test "intersection" (fun () ->
      Alcotest.check dom "inter"
        (Domain.interval 3 5)
        (Domain.inter (Domain.interval 1 5) (Domain.interval 3 9)))

let inter_disjoint =
  Helpers.test "disjoint intersection is empty" (fun () ->
      Helpers.check_bool "empty" true
        (Domain.is_empty (Domain.inter (Domain.interval 1 2) (Domain.interval 5 6))))

let remove_splits =
  Helpers.test "removing an interior value splits the interval" (fun () ->
      let d = Domain.remove_int 5 (Domain.interval 1 10) in
      Helpers.check_int "size" 9 (Domain.size d);
      Helpers.check_bool "5 gone" false (Domain.mem_int 5 d);
      Helpers.check_bool "4 stays" true (Domain.mem_int 4 d))

let at_most_at_least =
  Helpers.test "at_most / at_least clamp" (fun () ->
      let d = Domain.interval 0 100 in
      Alcotest.check dom "at_most" (Domain.interval 0 10) (Domain.at_most 10 d);
      Alcotest.check dom "at_least" (Domain.interval 90 100) (Domain.at_least 90 d))

let enum_ops =
  Helpers.test "enum domains" (fun () ->
      let d = Domain.enums [ "on"; "off" ] in
      Helpers.check_bool "mem" true (Domain.mem_str "on" d);
      let d' = Domain.remove_str "on" d in
      Helpers.check_bool "removed" false (Domain.mem_str "on" d');
      Helpers.check_int "size" 1 (Domain.size d'))

let enums_dedup =
  Helpers.test "enum constructor deduplicates" (fun () ->
      Helpers.check_int "size" 2 (Domain.size (Domain.enums [ "a"; "b"; "a" ])))

let type_clash =
  Helpers.test "int/enum intersection raises" (fun () ->
      match Domain.inter (Domain.interval 0 1) (Domain.enums [ "x" ]) with
      | exception Domain.Type_clash -> ()
      | _ -> Alcotest.fail "expected Type_clash")

let split_preserves =
  Helpers.test "split partitions the domain" (fun () ->
      let d = Domain.interval 0 9 in
      let l, r = Domain.split d in
      Helpers.check_int "sizes" 10 (Domain.size l + Domain.size r);
      Helpers.check_bool "disjoint" true (Domain.is_empty (Domain.inter l r)))

let singleton_value =
  Helpers.test "singleton detection" (fun () ->
      Helpers.check_bool "int singleton" true
        (Domain.singleton_value (Domain.int_singleton 5) = Some (Domain.Int 5));
      Helpers.check_bool "enum singleton" true
        (Domain.singleton_value (Domain.enum_singleton "x") = Some (Domain.Str "x"));
      Helpers.check_bool "not singleton" true
        (Domain.singleton_value (Domain.interval 1 2) = None))

(* -- QCheck laws ----------------------------------------------------------- *)

let gen_iset =
  let open QCheck2.Gen in
  let* pairs = list_size (int_range 0 4) (pair (int_range (-50) 50) (int_range 0 10)) in
  return
    (List.fold_left
       (fun acc (lo, len) -> Domain.union acc (Domain.interval lo (lo + len)))
       (Domain.Ints []) pairs)

let law_inter_comm =
  Helpers.qtest "intersection commutes" (QCheck2.Gen.pair gen_iset gen_iset) (fun (a, b) ->
      Domain.equal (Domain.inter a b) (Domain.inter b a))

let law_union_assoc =
  Helpers.qtest "union associates"
    (QCheck2.Gen.triple gen_iset gen_iset gen_iset)
    (fun (a, b, c) ->
      Domain.equal (Domain.union a (Domain.union b c)) (Domain.union (Domain.union a b) c))

let law_inter_subset =
  Helpers.qtest "intersection size bounded" (QCheck2.Gen.pair gen_iset gen_iset) (fun (a, b) ->
      let i = Domain.inter a b in
      Domain.size i <= min (Domain.size a) (Domain.size b))

let law_membership =
  Helpers.qtest "membership agrees with values"
    (QCheck2.Gen.pair gen_iset (QCheck2.Gen.int_range (-60) 60))
    (fun (d, n) ->
      Domain.mem_int n d = List.mem (Domain.Int n) (Domain.values d))

let law_split =
  Helpers.qtest "split halves are non-empty and partition" gen_iset (fun d ->
      if Domain.size d < 2 then true
      else
        let l, r = Domain.split d in
        (not (Domain.is_empty l))
        && (not (Domain.is_empty r))
        && Domain.size l + Domain.size r = Domain.size d
        && Domain.is_empty (Domain.inter l r))

let law_remove =
  Helpers.qtest "remove_int removes exactly one value"
    (QCheck2.Gen.pair gen_iset (QCheck2.Gen.int_range (-60) 60))
    (fun (d, n) ->
      let d' = Domain.remove_int n d in
      (not (Domain.mem_int n d'))
      && Domain.size d' = Domain.size d - (if Domain.mem_int n d then 1 else 0))

let tests =
  [
    interval_normalizes;
    inter_basic;
    inter_disjoint;
    remove_splits;
    at_most_at_least;
    enum_ops;
    enums_dedup;
    type_clash;
    split_preserves;
    singleton_value;
    law_inter_comm;
    law_union_assoc;
    law_inter_subset;
    law_membership;
    law_split;
    law_remove;
  ]
