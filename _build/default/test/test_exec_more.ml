(** Additional symbolic-execution coverage: loops, exception handling,
    collections, receiver forms and budget behaviour. *)

module Rule = Homeguard_rules.Rule
module Formula = Homeguard_solver.Formula
module Term = Homeguard_solver.Term
open Helpers

let wrap body =
  Printf.sprintf
    {|
input "sw1", "capability.switch"
input "lock1", "capability.lock"
input "lights", "capability.switch", multiple: true
def installed() {
  subscribe(sw1, "switch.on", handler)
}
%s
|}
    body

let for_in_list_unrolls =
  test "for-in over a literal list unrolls fully" (fun () ->
      let app =
        extract
          (wrap
             {|def handler(evt) {
  def levels = [1, 2, 3]
  for (x in levels) {
    sendPush("x")
  }
}|})
      in
      let r = the_rule app in
      check_int "three notifications" 3 (List.length r.Rule.actions))

let for_in_devices_once =
  test "for-in over a device collection runs once symbolically" (fun () ->
      let app = extract (wrap {|def handler(evt) {
  for (l in lights) {
    l.off()
  }
}|}) in
      let r = the_rule app in
      check_int "one action" 1 (List.length r.Rule.actions))

let while_unrolls_once =
  test "while loops unroll once plus the skip path" (fun () ->
      let app =
        extract
          (wrap
             {|def handler(evt) {
  while (state.counter < 3) {
    sw1.off()
  }
}|})
      in
      (* one rule from the loop-taken path; the skip path has no sink *)
      check_int "one rule" 1 (List.length app.Rule.rules))

let break_stops_loop =
  test "break leaves the loop" (fun () ->
      let app =
        extract
          (wrap
             {|def handler(evt) {
  for (x in [1, 2, 3]) {
    sendPush("once")
    break
  }
}|})
      in
      let r = the_rule app in
      check_int "only one notification" 1 (List.length r.Rule.actions))

let continue_skips_iteration =
  test "continue resumes the next iteration" (fun () ->
      let app =
        extract
          (wrap
             {|def handler(evt) {
  for (x in [1, 2]) {
    continue
    sendPush("never")
  }
}|})
      in
      check_int "no rules (unreachable sink)" 0 (List.length app.Rule.rules))

let try_catch_both_paths =
  test "try/catch explores body and handler" (fun () ->
      let app =
        extract
          (wrap
             {|def handler(evt) {
  try {
    sw1.off()
  } catch (e) {
    sendPush("failed")
  }
}|})
      in
      check_int "two rules" 2 (List.length app.Rule.rules))

let location_set_mode_receiver =
  test "location.setMode is recognised as the mode actuator" (fun () ->
      let app = extract (wrap {|def handler(evt) { location.setMode("Away") }|}) in
      let r = the_rule app in
      match r.Rule.actions with
      | [ { Rule.target = Rule.Act_location_mode; params = [ Term.Str "Away" ]; _ } ] -> ()
      | _ -> Alcotest.fail "expected mode action")

let location_mode_assignment =
  test "location.mode = ... is recognised as the mode actuator" (fun () ->
      let app = extract (wrap {|def handler(evt) { location.mode = "Night" }|}) in
      let r = the_rule app in
      match r.Rule.actions with
      | [ { Rule.target = Rule.Act_location_mode; params = [ Term.Str "Night" ]; _ } ] -> ()
      | _ -> Alcotest.fail "expected mode action")

let safe_navigation_tolerated =
  test "safe navigation evaluates like property access" (fun () ->
      let app =
        extract (wrap {|def handler(evt) {
  if (sw1?.currentSwitch == "on") { lock1.lock() }
}|})
      in
      let r = the_rule app in
      check_bool "condition on switch state" true
        (List.mem "sw1.switch" (Formula.free_vars r.Rule.condition.Rule.predicate)))

let in_operator_over_list =
  test "the in operator over a literal list becomes a disjunction" (fun () ->
      let app =
        extract
          (wrap
             {|def handler(evt) {
  if (location.mode in ["Home", "Night"]) { sw1.off() }
}|})
      in
      let r = the_rule app in
      match r.Rule.condition.Rule.predicate with
      | Formula.Or [ _; _ ] -> ()
      | f -> Alcotest.failf "expected 2-way disjunction, got %s" (Formula.to_string f))

let unreachable_branch_still_recorded =
  test "statically contradictory branches still produce (unsat) rules" (fun () ->
      (* the detector's solver, not the extractor, decides feasibility *)
      let app =
        extract
          (wrap
             {|def handler(evt) {
  def x = 5
  if (x > 10) { sw1.off() }
}|})
      in
      (* constant folding is not performed: the path exists with 5 > 10 *)
      match app.Rule.rules with
      | [ r ] ->
        check_string "contradictory predicate" "5 > 10"
          (Formula.to_string r.Rule.condition.Rule.predicate)
      | rs -> Alcotest.failf "expected 1 rule, got %d" (List.length rs))

let string_concat_folds =
  test "constant string concatenation folds" (fun () ->
      let app = extract (wrap {|def handler(evt) {
  def msg = "a" + "b"
  sendPush(msg)
}|}) in
      let r = the_rule app in
      match r.Rule.actions with
      | [ { Rule.params = [ Term.Str "ab" ]; _ } ] -> ()
      | _ -> Alcotest.fail "expected folded concatenation")

let method_return_values_flow =
  test "helper-method return values flow into constraints" (fun () ->
      let app =
        extract
          (wrap
             {|def handler(evt) {
  def lim = limit()
  if (sw1.currentSwitch == "off") { sendPush("low ${lim}") }
}

def limit() {
  return 42
}|})
      in
      check_int "one rule" 1 (List.length app.Rule.rules))

let deep_recursion_capped =
  test "recursive helpers hit the inlining cap, not a loop" (fun () ->
      let app =
        extract
          (wrap {|def handler(evt) { spin() }
def spin() { spin() }|})
      in
      check_int "no sinks, no rules" 0 (List.length app.Rule.rules))

let multiple_subscriptions_one_handler =
  test "multiple subscriptions to one handler yield distinct rules" (fun () ->
      let app =
        extract
          {|
input "sw1", "capability.switch"
input "sw2", "capability.switch"
def installed() {
  subscribe(sw1, "switch.on", h)
  subscribe(sw2, "switch.on", h)
}
def h(evt) { sendPush("hi") }
|}
      in
      check_int "two rules" 2 (List.length app.Rule.rules);
      let subjects =
        List.filter_map
          (fun (r : Rule.t) ->
            match r.Rule.trigger with
            | Rule.Event { subject = Rule.Device d; _ } -> Some d
            | _ -> None)
          app.Rule.rules
      in
      Alcotest.(check (list string)) "both subjects" [ "sw1"; "sw2" ] (List.sort compare subjects))

let tests =
  [
    for_in_list_unrolls;
    for_in_devices_once;
    while_unrolls_once;
    break_stops_loop;
    continue_skips_iteration;
    try_catch_both_paths;
    location_set_mode_receiver;
    location_mode_assignment;
    safe_navigation_tolerated;
    in_operator_over_list;
    unreachable_branch_still_recorded;
    string_concat_folds;
    method_return_values_flow;
    deep_recursion_capped;
    multiple_subscriptions_one_handler;
  ]
