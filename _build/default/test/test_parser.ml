(** Parser unit tests plus the print/parse round-trip property. *)

open Homeguard_groovy

let parse_e src =
  match Parser.parse src with
  | [ Ast.Top_stmt (Ast.Expr_stmt e) ] -> e
  | _ -> Alcotest.failf "not a single expression: %s" src

let expr = Alcotest.testable (fun fmt e -> Format.fprintf fmt "%s" (Pretty.expr_to_string e)) ( = )

let check_expr name src expected =
  Helpers.test name (fun () -> Alcotest.check expr name expected (parse_e src))

open Ast

let precedence_arith =
  check_expr "arithmetic precedence" "1 + 2 * 3"
    (Binop (Add, Lit (Int 1), Binop (Mul, Lit (Int 2), Lit (Int 3))))

let precedence_bool =
  check_expr "boolean precedence" "a || b && c"
    (Binop (Or, Ident "a", Binop (And, Ident "b", Ident "c")))

let precedence_cmp =
  check_expr "comparison binds tighter than &&" "a < 1 && b > 2"
    (Binop (And, Binop (Lt, Ident "a", Lit (Int 1)), Binop (Gt, Ident "b", Lit (Int 2))))

let ternary =
  check_expr "ternary" "a ? 1 : 2" (Ternary (Ident "a", Lit (Int 1), Lit (Int 2)))

let elvis = check_expr "elvis" "a ?: 2" (Binop (Elvis, Ident "a", Lit (Int 2)))

let safe_nav = check_expr "safe navigation" "a?.b" (Safe_prop (Ident "a", "b"))

let prop_chain =
  check_expr "property chains" "a.b.c" (Prop (Prop (Ident "a", "b"), "c"))

let method_chain =
  check_expr "method call chains" "a.b(1).c()"
    (Call (Some (Call (Some (Ident "a"), "b", [ Pos (Lit (Int 1)) ])), "c", []))

let index = check_expr "indexing" "a[0]" (Index (Ident "a", Lit (Int 0)))

let list_lit =
  check_expr "list literal" "[1, 2]" (List_lit [ Lit (Int 1); Lit (Int 2) ])

let map_lit =
  check_expr "map literal" "[a: 1, b: 2]" (Map_lit [ ("a", Lit (Int 1)); ("b", Lit (Int 2)) ])

let empty_map = check_expr "empty map" "[:]" (Map_lit [])

let named_args =
  check_expr "named arguments" "f(x: 1, 2)"
    (Call (None, "f", [ Named ("x", Lit (Int 1)); Pos (Lit (Int 2)) ]))

let trailing_closure =
  check_expr "trailing closure after parens" "f(1) { x -> x }"
    (Call (None, "f", [ Pos (Lit (Int 1)); Pos (Closure ([ "x" ], [ Expr_stmt (Ident "x") ])) ]))

let bare_closure_call =
  Helpers.test "bare trailing closure statement" (fun () ->
      match Parser.parse "preferences { input 'a', 'b' }" with
      | [ Top_stmt (Expr_stmt (Call (None, "preferences", [ Pos (Closure ([], _)) ]))) ] -> ()
      | _ -> Alcotest.fail "unexpected parse")

let command_call =
  Helpers.test "command-style call" (fun () ->
      match Parser.parse "input \"tv1\", \"capability.switch\", title: \"Which?\"" with
      | [
       Top_stmt
         (Expr_stmt
           (Call
             ( None,
               "input",
               [ Pos (Lit (Str "tv1")); Pos (Lit (Str "capability.switch")); Named ("title", _) ]
             )));
      ] ->
        ()
      | _ -> Alcotest.fail "unexpected parse")

let label_statement =
  Helpers.test "labeled statement (mappings action:)" (fun () ->
      match Parser.parse "action: [GET: \"list\"]" with
      | [ Top_stmt (Expr_stmt (Call (None, "action", [ Named ("action", Map_lit _) ]))) ] -> ()
      | _ -> Alcotest.fail "unexpected parse")

let if_else_chain =
  Helpers.test "if / else if / else" (fun () ->
      match Parser.parse "if (a) { f() } else if (b) { g() } else { h() }" with
      | [ Top_stmt (If (Ident "a", [ _ ], [ If (Ident "b", [ _ ], [ _ ]) ])) ] -> ()
      | _ -> Alcotest.fail "unexpected parse")

let else_on_next_line =
  Helpers.test "else on its own line" (fun () ->
      match Parser.parse "if (a) {\n f()\n}\nelse {\n g()\n}" with
      | [ Top_stmt (If (Ident "a", [ _ ], [ _ ])) ] -> ()
      | _ -> Alcotest.fail "unexpected parse")

let single_stmt_branches =
  Helpers.test "braceless if branch" (fun () ->
      match Parser.parse "if (a) f()" with
      | [ Top_stmt (If (Ident "a", [ Expr_stmt (Call _) ], [])) ] -> ()
      | _ -> Alcotest.fail "unexpected parse")

let switch_cases =
  Helpers.test "switch with cases and default" (fun () ->
      match Parser.parse "switch (x) {\ncase 'a':\n f()\n break\ndefault:\n g()\n}" with
      | [ Top_stmt (Switch (Ident "x", [ Case (Lit (Str "a"), [ _; Break ]); Default [ _ ] ])) ]
        ->
        ()
      | _ -> Alcotest.fail "unexpected parse")

let for_in_loop =
  Helpers.test "for-in loop" (fun () ->
      match Parser.parse "for (s in switches) { s.off() }" with
      | [ Top_stmt (For_in ("s", Ident "switches", [ _ ])) ] -> ()
      | _ -> Alcotest.fail "unexpected parse")

let while_loop =
  Helpers.test "while loop" (fun () ->
      match Parser.parse "while (x < 3) { x = x + 1 }" with
      | [ Top_stmt (While (Binop (Lt, _, _), [ _ ])) ] -> ()
      | _ -> Alcotest.fail "unexpected parse")

let try_catch =
  Helpers.test "try/catch" (fun () ->
      match Parser.parse "try {\n f()\n} catch (e) {\n g()\n}" with
      | [ Top_stmt (Try ([ _ ], "e", [ _ ])) ] -> ()
      | _ -> Alcotest.fail "unexpected parse")

let method_def =
  Helpers.test "method definition" (fun () ->
      match Parser.parse "def handler(evt) {\n return evt\n}" with
      | [ Method { name = "handler"; params = [ "evt" ]; body = [ Return (Some (Ident "evt")) ] } ]
        ->
        ()
      | _ -> Alcotest.fail "unexpected parse")

let compound_assign =
  check_expr "compound assignment desugars" "x += 2"
    (Assign (Ident "x", Binop (Add, Ident "x", Lit (Int 2))))

let increment =
  check_expr "postfix increment desugars" "x++"
    (Assign (Ident "x", Binop (Add, Ident "x", Lit (Int 1))))

let gstring_parses =
  Helpers.test "GString interpolation parses its holes" (fun () ->
      match parse_e {|"a${x + 1}b"|} with
      | Gstring [ Text "a"; Interp (Binop (Add, Ident "x", Lit (Int 1))); Text "b" ] -> ()
      | _ -> Alcotest.fail "unexpected parse")

let plain_dstring_is_literal =
  check_expr "uninterpolated GString collapses to Str" {|"plain"|} (Lit (Str "plain"))

let parse_error_has_line =
  Helpers.test "parse error carries a line" (fun () ->
      match Parser.parse "def f() {\n if (\n}" with
      | exception Parser.Error (_, line) -> Helpers.check_bool "line >= 2" true (line >= 2)
      | _ -> Alcotest.fail "expected parse error")

(* -- round-trip property -------------------------------------------------- *)

let gen_ident = QCheck2.Gen.oneofl [ "a"; "b"; "tv1"; "x"; "evt"; "dev" ]
let gen_name = QCheck2.Gen.oneofl [ "on"; "off"; "value"; "currentSwitch"; "size" ]

let gen_expr =
  let open QCheck2.Gen in
  sized (fun n ->
      fix
        (fun self n ->
          let leaf =
            oneof
              [
                map (fun i -> Lit (Int i)) (int_bound 1000);
                map (fun s -> Lit (Str s)) (oneofl [ "on"; "off"; "Home"; "rainy" ]);
                return (Lit (Bool true));
                return (Lit Null);
                map (fun v -> Ident v) gen_ident;
              ]
          in
          if n <= 0 then leaf
          else
            let sub = self (n / 2) in
            oneof
              [
                leaf;
                map2 (fun a b -> Binop (Add, a, b)) sub sub;
                map2 (fun a b -> Binop (Eq, a, b)) sub sub;
                map2 (fun a b -> Binop (And, a, b)) sub sub;
                map2 (fun a b -> Binop (Elvis, a, b)) sub sub;
                map (fun a -> Unop (Not, a)) sub;
                map3 (fun a b c -> Ternary (a, b, c)) sub sub sub;
                map2 (fun e nm -> Prop (e, nm)) sub gen_name;
                map2 (fun e nm -> Safe_prop (e, nm)) sub gen_name;
                map2 (fun e i -> Index (e, i)) sub sub;
                map3 (fun r nm arg -> Call (Some r, nm, [ Pos arg ])) sub gen_name sub;
                map2 (fun nm arg -> Call (None, nm, [ Pos arg; Named ("title", Lit (Str "t")) ])) gen_name sub;
                map (fun es -> List_lit es) (list_size (int_bound 3) sub);
                map (fun e -> Map_lit [ ("k", e) ]) sub;
                map2 (fun a b -> Range (a, b)) sub sub;
              ])
        (min n 8))

let gen_stmt =
  let open QCheck2.Gen in
  oneof
    [
      map (fun e -> Expr_stmt e) gen_expr;
      map2 (fun v e -> Def_var (v, Some e)) gen_ident gen_expr;
      map (fun e -> Return (Some e)) gen_expr;
      map3 (fun c a b -> If (c, [ Expr_stmt a ], [ Expr_stmt b ])) gen_expr gen_expr gen_expr;
      map2 (fun v e -> Expr_stmt (Assign (Ident v, e))) gen_ident gen_expr;
      map2 (fun v e -> For_in (v, e, [ Expr_stmt (Ident v) ])) gen_ident gen_expr;
    ]

let gen_program =
  let open QCheck2.Gen in
  let gen_method =
    map2
      (fun name body -> Method { name = "m" ^ name; params = [ "evt" ]; body })
      (oneofl [ "1"; "2"; "handler" ])
      (list_size (int_range 1 4) gen_stmt)
  in
  list_size (int_range 1 5) (oneof [ gen_method; map (fun s -> Top_stmt s) gen_stmt ])

let roundtrip_expr =
  Helpers.qtest ~count:500 "pretty/parse round-trip (expressions)" gen_expr (fun e ->
      let printed = Pretty.expr_to_string e in
      match Parser.parse printed with
      | [ Top_stmt (Expr_stmt e') ] -> e = e'
      | _ -> false)

let roundtrip_program =
  Helpers.qtest ~count:300 "pretty/parse round-trip (programs)" gen_program (fun prog ->
      let printed = Pretty.program_to_string prog in
      Parser.parse printed = prog)

let tests =
  [
    precedence_arith;
    precedence_bool;
    precedence_cmp;
    ternary;
    elvis;
    safe_nav;
    prop_chain;
    method_chain;
    index;
    list_lit;
    map_lit;
    empty_map;
    named_args;
    trailing_closure;
    bare_closure_call;
    command_call;
    label_statement;
    if_else_chain;
    else_on_next_line;
    single_stmt_branches;
    switch_cases;
    for_in_loop;
    while_loop;
    try_catch;
    method_def;
    compound_assign;
    increment;
    gstring_parses;
    plain_dstring_is_literal;
    parse_error_has_line;
    roundtrip_expr;
    roundtrip_program;
  ]
